// Partial affine expressions: the paper's Figure 7, both cases.
//
// Case 1: a function's local array may land at a different address per
// call chain — the accesses inside the function are regular, the base is
// not. Case 2: a global array indexed through a data-dependent offset
// parameter. In both, FORAY-GEN recovers a *partial* affine expression
// over the innermost M iterators, which downstream SPM analysis can still
// use "as if no other outer loops existed".
#include <cstdio>

#include "foray/emitter.h"
#include "foray/pipeline.h"

namespace {

void report(const char* title, const char* src) {
  using namespace foray;
  std::printf("== %s ==\n", title);
  core::PipelineOptions opts;
  opts.filter.min_exec = 1;
  opts.filter.min_locations = 1;
  auto res = core::run_pipeline(src, opts);
  if (!res.ok()) {
    std::fprintf(stderr, "pipeline error: %s\n", res.error().c_str());
    std::exit(1);
  }
  int full = 0, partial = 0;
  for (const auto& r : res.model.refs) {
    if (r.n() < 2) continue;  // focus on the nested array traffic
    std::printf("  %s\n", core::describe_reference(r).c_str());
    (r.partial() ? partial : full)++;
  }
  std::printf("  -> %d full, %d partial affine references\n\n", full,
              partial);
}

}  // namespace

int main() {
  // Figure 7, case 2: offset passed as a data-dependent parameter.
  // (Shown first because it is the cleaner illustration.)
  report(
      "Figure 7 case 2: data-dependent offset parameter",
      "int A[4000]; int lines[10] = {0, 317, 71, 1400, 905, 2212, 1733, "
      "60, 2801, 3010};\n"
      "int foo(int offset) {\n"
      "  int ret = 0;\n"
      "  for (int i = 0; i < 10; i++)\n"
      "    for (int j = 0; j < 10; j++)\n"
      "      ret += A[j + 10 * i + offset];\n"
      "  return ret;\n"
      "}\n"
      "int main(void) {\n"
      "  int tmp = 0;\n"
      "  for (int x = 0; x < 10; x++)\n"
      "    for (int y = 0; y < 10; y++)\n"
      "      tmp += foo(lines[x]);\n"
      "  return tmp & 255;\n"
      "}\n");

  // Figure 7, case 1: a local array whose address depends on the call
  // chain — reached through two different call depths.
  report(
      "Figure 7 case 1: local array at varying stack depths",
      "int deep(int levels);\n"
      "int foo(void) {\n"
      "  int ret = 0;\n"
      "  int A[100];\n"
      "  for (int i = 0; i < 10; i++)\n"
      "    for (int j = 0; j < 10; j++) {\n"
      "      A[j + 10 * i] = i + j;\n"
      "      ret += A[j + 10 * i];\n"
      "    }\n"
      "  return ret;\n"
      "}\n"
      "int deep(int levels) {\n"
      "  int pad[16];\n"
      "  pad[0] = levels;\n"
      "  if (levels > 0) return deep(levels - 1) + pad[0];\n"
      "  return foo();\n"
      "}\n"
      "int depths[6] = {0, 3, 1, 5, 2, 4};\n"
      "int main(void) {\n"
      "  int tmp = 0;\n"
      "  for (int x = 0; x < 6; x++)\n"
      "    for (int y = 0; y < 3; y++)\n"
      "      tmp += deep(depths[x]);  // irregular stack depth per x\n"
      "  return tmp & 255;\n"
      "}\n");

  std::printf(
      "Downstream meaning: an SPM technique can still buffer the inner\n"
      "M loops of a partial reference (the function body's loops in\n"
      "Figure 7) as if the outer loops did not exist.\n");
  return 0;
}
