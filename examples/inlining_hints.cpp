// Inter-function optimization hints: the paper's Figure 9.
//
// foo() is called from two loops with different strides. Because the
// FORAY model treats functions as inlined, its loop subtree appears
// twice with *different* recovered access patterns — the advisor turns
// that into a "consider duplicating foo()" hint so each call site can be
// optimized separately.
#include <cstdio>

#include "foray/inline_advisor.h"
#include "foray/pipeline.h"

int main() {
  using namespace foray;
  const char* kFigure9 =
      "int A[1000];\n"
      "int foo(int offset) {\n"
      "  int ret = 0;\n"
      "  for (int i = 0; i < 10; i++) ret += A[i + offset];\n"
      "  return ret;\n"
      "}\n"
      "int main(void) {\n"
      "  int tmp = 0;\n"
      "  for (int x = 0; x < 10; x++) tmp += foo(10 * x);\n"
      "  for (int y = 0; y < 20; y++) tmp += foo(2 * y);\n"
      "  return tmp & 255;\n"
      "}\n";

  std::printf("== Figure 9 program ==\n%s\n", kFigure9);

  core::PipelineOptions opts;
  opts.filter.min_exec = 1;
  opts.filter.min_locations = 1;
  auto res = core::run_pipeline(kFigure9, opts);
  if (!res.ok()) {
    std::fprintf(stderr, "pipeline error: %s\n", res.error().c_str());
    return 1;
  }

  std::printf("== FORAY model (functions appear inlined) ==\n%s\n",
              res.foray_paper_style.c_str());

  auto hints = core::compute_inline_hints(res.model, res.loop_sites);
  std::printf("== duplication hints ==\n");
  if (hints.empty()) {
    std::printf("(none)\n");
    return 1;
  }
  for (const auto& h : hints) {
    std::printf("function '%s': reached from %d dynamic contexts; access "
                "patterns %s\n",
                h.func_name.c_str(), h.contexts,
                h.patterns_differ ? "DIFFER - consider duplicating so each "
                                    "copy is optimized for its caller"
                                  : "match");
    for (const auto& d : h.details) std::printf("  context: %s\n", d.c_str());
  }
  return 0;
}
