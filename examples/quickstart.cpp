// Quickstart: the paper's Figure 4 worked end to end.
//
// Takes the small pointer-walking program of Figure 4(a), shows the
// checkpoint-annotated view (4b), an excerpt of the profiling trace (4c),
// and the extracted FORAY model (4d) in both the paper's display form and
// as a runnable MiniC program.
#include <cstdio>

#include "foray/pipeline.h"
#include "minic/parser.h"
#include "minic/printer.h"
#include "sim/interpreter.h"
#include "trace/io.h"
#include "trace/sink.h"

int main() {
  using namespace foray;

  const char* kFigure4a =
      "char q[10000];\n"
      "int main(void) {\n"
      "  char *ptr = q;\n"
      "  int i; int t1 = 98;\n"
      "  while (t1 < 100) {\n"
      "    t1++;\n"
      "    ptr += 100;\n"
      "    for (i = 40; i > 37; i--) {\n"
      "      *ptr++ = i * i % 256;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n";

  std::printf("== Figure 4(a): the original program ==\n%s\n", kFigure4a);

  // Step 1 of Algorithm 1: annotate the loops (Figure 4b view).
  util::DiagList diags;
  auto prog = minic::parse_and_check(kFigure4a, &diags);
  if (!prog) {
    std::fprintf(stderr, "front-end error:\n%s", diags.str().c_str());
    return 1;
  }
  instrument::annotate_loops(prog.get());
  minic::PrintOptions popts;
  popts.annotate_checkpoints = true;
  std::printf("== Figure 4(b): checkpoint-annotated program ==\n%s\n",
              minic::print_program(*prog, popts).c_str());

  // Step 2: profile on the simulator, materializing the trace so we can
  // show it (production use runs the analyzer online instead).
  trace::VectorSink sink;
  sim::RunResult run = sim::run_program(*prog, &sink);
  std::printf("== Figure 4(c): trace file (%zu records, first 24) ==\n",
              sink.size());
  int shown = 0;
  for (const auto& r : sink.records()) {
    if (r.type() == trace::RecordType::Access &&
        r.kind() != trace::AccessKind::Data) {
      continue;  // keep the excerpt readable, as the paper's figure does
    }
    std::printf("%s\n", trace::record_to_text(r).c_str());
    if (++shown >= 24) break;
  }

  // Steps 3+4 via the one-call pipeline (relaxed filter: the example's
  // six-execution store would be dropped by the paper's Nexec=20).
  core::PipelineOptions opts;
  opts.filter.min_exec = 1;
  opts.filter.min_locations = 1;
  auto res = core::run_pipeline(kFigure4a, opts);
  if (!res.ok()) {
    std::fprintf(stderr, "pipeline error: %s\n", res.error().c_str());
    return 1;
  }

  std::printf("\n== Figure 4(d): FORAY model (paper display form) ==\n%s\n",
              res.foray_paper_style.c_str());
  std::printf("== FORAY model as a runnable MiniC program ==\n%s\n",
              res.foray_source.c_str());

  // Demonstrate the model is executable: run it through the simulator.
  util::DiagList diags2;
  auto model_prog = minic::parse_and_check(res.foray_source, &diags2);
  if (!model_prog) {
    std::fprintf(stderr, "emitted model failed to parse:\n%s",
                 diags2.str().c_str());
    return 1;
  }
  instrument::annotate_loops(model_prog.get());
  trace::CountingSink counter;
  sim::RunResult model_run = sim::run_program(*model_prog, &counter);
  std::printf("model executed: ok=%d, %llu trace records\n", model_run.ok(),
              static_cast<unsigned long long>(counter.total()));
  return model_run.ok() && run.ok() ? 0 : 1;
}
