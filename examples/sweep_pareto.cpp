// Design-space sweep in ~40 lines: declare a multi-axis grid, run it,
// read the Pareto surface.
//
// The grid below explores the gsm-like kernel across SPM capacity,
// energy-model technology corner and selection algorithm — 4 × 3 × 2 =
// 24 design points from ONE profiling run (Phase I runs once per
// program; every grid point is a cheap Phase II re-solve). The Pareto
// frontier then answers the designer's actual question: which (SPM
// bytes, energy saved) trade-offs are worth building?
#include <cstdio>

#include "benchsuite/suite.h"
#include "driver/sweep.h"

int main() {
  using namespace foray;

  driver::SweepOptions opts;
  opts.threads = 4;
  opts.spec.parse_axis("capacity", "512,1024,4096,16384");
  opts.spec.parse_axis("energy", "default,dram-heavy,fast-spm");
  opts.spec.parse_axis("algorithm", "dp,greedy");

  const auto& bench = benchsuite::get_benchmark("gsm");
  driver::SweepDriver sweep(opts);
  auto report =
      sweep.run({driver::SweepJob{bench.name, bench.source}});
  std::printf("swept %zu design points (%zu capacities x %zu energy "
              "models x %zu algorithms)\n\n",
              report.items.size(), report.grid.capacities.size(),
              report.grid.energy_models.size(),
              report.grid.algorithms.size());

  for (const auto& item : report.items) {
    if (!item.status.ok()) {
      std::fprintf(stderr, "point failed: %s\n",
                   item.status.message().c_str());
      return 1;
    }
  }

  std::printf("Pareto frontier (SPM bytes used -> nJ saved):\n");
  for (const auto& p : report.pareto(0)) {
    const driver::SweepItem& item = report.at(p.key);
    std::printf("  %5lluB -> %9.1f nJ   (%uB SPM, %s energy, %s)\n",
                static_cast<unsigned long long>(p.bytes_used), p.saved_nj,
                item.point.capacity_bytes,
                item.point.energy_name.c_str(),
                driver::algorithm_name(item.point.algorithm));
  }
  std::printf("\nEvery dominated point (same or more SPM bytes, same or "
              "less energy saved) was pruned;\nthe full grid is available "
              "as NDJSON via `foraygen sweep --ndjson`.\n");
  return 0;
}
