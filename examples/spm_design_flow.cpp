// The full design flow of the paper's Figure 3 on a realistic kernel:
//
//   Phase I   FORAY-GEN: legacy C -> FORAY model        (this library)
//   Phase II  SPM analysis: reuse -> buffers -> DSE      (spm/ substrate)
//   Phase III back-annotation                             (designer; we
//             print exactly what they would need)
//
// The input is the susan-like benchmark: its hottest traffic flows
// through pointer walks a static tool cannot see.
#include <cstdio>

#include "benchsuite/suite.h"
#include "util/strings.h"
#include "foray/emitter.h"
#include "foray/pipeline.h"
#include "spm/dse.h"
#include "spm/replay.h"
#include "spm/reuse.h"
#include "spm/spm_sim.h"
#include "spm/transform.h"

int main() {
  using namespace foray;
  const auto& bench = benchsuite::get_benchmark("susan");
  std::printf("Input: %s — %s\n\n", bench.name.c_str(),
              bench.description.c_str());

  // Phase I: extract the FORAY model.
  auto res = core::run_pipeline(bench.source);
  if (!res.ok()) {
    std::fprintf(stderr, "pipeline error: %s\n", res.error().c_str());
    return 1;
  }
  std::printf("Phase I: FORAY model has %zu references over %d loops\n",
              res.model.refs.size(), res.model.distinct_loops());

  // Phase II step 2: data-reuse analysis -> buffer candidates.
  auto cands = spm::enumerate_candidates(res.model);
  std::printf("Phase II: %zu buffer candidates from reuse analysis\n",
              cands.size());
  for (size_t i = 0; i < cands.size() && i < 8; ++i) {
    std::printf("  %s\n",
                spm::describe_candidate(cands[i], res.model).c_str());
  }

  // Phase II step 3: design-space exploration across SPM sizes.
  std::printf("\nSPM capacity sweep (group-knapsack selection):\n");
  std::printf("  %8s %10s %12s %10s\n", "SPM", "buffers", "bytes used",
              "savings");
  spm::DseOptions best_opts;
  spm::Selection best_sel;
  double best_savings = -1.0;
  for (uint32_t cap : {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    spm::DseOptions opts;
    opts.spm_capacity = cap;
    auto sel = spm::select_buffers(cands, opts);
    auto rep = spm::evaluate_selection(res.model, sel, opts);
    std::printf("  %7uB %10zu %11lluB %9.1f%%\n", cap, sel.chosen.size(),
                static_cast<unsigned long long>(sel.bytes_used),
                rep.savings_pct());
    if (rep.savings_pct() > best_savings) {
      best_savings = rep.savings_pct();
      best_sel = sel;
      best_opts = opts;
    }
  }

  // Phase III: what the designer back-annotates.
  std::printf("\nPhase III: back-annotation worklist (selected buffers):\n");
  auto names = core::assign_array_names(res.model);
  for (const auto& c : best_sel.chosen) {
    const auto& ref = res.model.refs[c.ref_index];
    std::printf("  map %s (%s) into a %llu-byte SPM buffer covering its "
                "innermost %d loop(s)\n",
                names[c.ref_index].c_str(),
                core::describe_reference(ref).c_str(),
                static_cast<unsigned long long>(c.size_bytes), c.level);
  }
  std::printf("\nBest configuration: %uB SPM, %.1f%% energy saved vs "
              "all-DRAM.\n",
              best_opts.spm_capacity, best_savings);
  std::printf("Note: only %zu of the program's references need manual "
              "back-annotation — the point of the paper's Phase III.\n",
              best_sel.chosen.size());

  // Phase II's actual output artifact: the transformed FORAY model code
  // with SPM buffers and transfer loops (excerpt).
  std::string transformed = spm::emit_transformed(res.model, best_sel);
  std::printf("\n== transformed FORAY model (first 30 lines) ==\n");
  size_t pos = 0;
  for (int line = 0; line < 30 && pos != std::string::npos; ++line) {
    size_t next = transformed.find('\n', pos);
    std::printf("%s\n",
                transformed.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  std::printf("[... %d more lines]\n",
              util::count_lines(transformed) - 30);

  // Phase II exit check: execute that artifact and confirm its actual
  // SPM / main-memory / transfer traffic equals the analytic counters
  // the DSE was solved with.
  spm::ReplayOptions ropts;
  ropts.dse = best_opts;
  auto replay = spm::replay_selection(res.model, best_sel, ropts);
  std::printf("\n== transform replay (analytic vs simulated) ==\n%s",
              spm::describe_replay_report(replay, res.model).c_str());
  if (!replay.matches()) {
    std::fprintf(stderr, "transform replay diverged!\n");
    return 1;
  }
  return 0;
}
