#include <gtest/gtest.h>

#include "foray/pipeline.h"
#include "spm/address_stream.h"
#include "spm/cache_sim.h"
#include "spm/dse.h"
#include "spm/energy.h"
#include "spm/reuse.h"
#include "spm/spm_sim.h"

namespace foray::spm {
namespace {

core::ModelReference make_ref(std::vector<int64_t> coefs_outer_first,
                              std::vector<int64_t> trips,
                              int64_t base = 0x10000000, uint8_t size = 4,
                              bool write = false) {
  core::ModelReference r;
  r.instr = 0x400100;
  r.fn.const_term = base;
  r.fn.coefs = coefs_outer_first;
  r.fn.known.assign(coefs_outer_first.size(), true);
  r.fn.m = static_cast<int>(coefs_outer_first.size());
  r.trips = trips;
  for (size_t i = 0; i < trips.size(); ++i) {
    r.loop_path.push_back(static_cast<int>(i));
  }
  r.access_size = size;
  r.has_write = write;
  r.has_read = !write;
  uint64_t execs = 1;
  for (int64_t t : trips) execs *= static_cast<uint64_t>(t);
  r.exec_count = execs;
  r.footprint = execs;  // good enough for tests
  return r;
}

// -- energy model -------------------------------------------------------------

TEST(Energy, SpmEnergyGrowsWithCapacity) {
  EnergyModel e;
  EXPECT_LT(e.spm_access_nj(1024), e.spm_access_nj(4096));
  EXPECT_LT(e.spm_access_nj(4096), e.spm_access_nj(65536));
}

TEST(Energy, SpmCheaperThanCacheOfSameSize) {
  EnergyModel e;
  for (uint32_t size : {1024u, 4096u, 16384u}) {
    EXPECT_LT(e.spm_access_nj(size), e.cache_access_nj(size, 1));
  }
}

TEST(Energy, CacheEnergyGrowsWithAssociativity) {
  EnergyModel e;
  EXPECT_LT(e.cache_access_nj(4096, 1), e.cache_access_nj(4096, 4));
}

TEST(Energy, DramDominatesOnChip) {
  EnergyModel e;
  EXPECT_GT(e.dram_nj, e.cache_access_nj(16384, 4));
}

// -- reuse analysis -----------------------------------------------------------

TEST(Reuse, InnerLevelCandidateForReusedRow) {
  // a[i][j] style: 10 outer x 64 inner x 4B, re-read 10 times... model:
  // outer trip 10 re-reads the same 256B row (coef 0 outer).
  auto ref = make_ref({0, 4}, {10, 64});
  auto cands = candidates_for(ref, 0);
  ASSERT_FALSE(cands.empty());
  const auto& c1 = cands[0];
  EXPECT_EQ(c1.level, 1);
  EXPECT_EQ(c1.size_bytes, 4u + 63u * 4u);
  EXPECT_EQ(c1.spm_accesses, 640u);
  // One fill services all ten outer iterations' worth? No: fills happen
  // per outer iteration (10 fills of 64 words) — reuse factor 1 per
  // fill... with coef 0 the sliding delta is 0 -> not sliding; fills=10.
  EXPECT_EQ(c1.transfer_words, 640u);
}

TEST(Reuse, Level2CapturesFullReuse) {
  auto ref = make_ref({0, 4}, {10, 64});
  auto cands = candidates_for(ref, 0);
  // The level-2 candidate holds the whole 256B footprint; outer
  // iterations then hit the SPM with a single fill.
  const BufferCandidate* l2 = nullptr;
  for (const auto& c : cands) {
    if (c.level == 2) l2 = &c;
  }
  ASSERT_NE(l2, nullptr);
  EXPECT_EQ(l2->size_bytes, 4u + 63u * 4u);
  EXPECT_EQ(l2->transfer_words, 64u);
  EXPECT_EQ(l2->spm_accesses, 640u);
  EXPECT_NEAR(l2->reuse_factor(), 10.0, 1e-9);
}

TEST(Reuse, SlidingWindowReducesTraffic) {
  // Stencil-style: inner window of 16 elements, outer advances 4 bytes.
  auto ref = make_ref({4, 4}, {100, 16});
  auto cands = candidates_for(ref, 0);
  const BufferCandidate* l1 = nullptr;
  for (const auto& c : cands) {
    if (c.level == 1) l1 = &c;
  }
  ASSERT_NE(l1, nullptr);
  EXPECT_TRUE(l1->sliding_window);
  // Full first fill (16+... span) + 99 delta fills of 1 word each,
  // instead of 100 x 16-word fills.
  EXPECT_LT(l1->transfer_words, 120u);
  EXPECT_GT(l1->reuse_factor(), 10.0);
}

TEST(Reuse, WriteReferencesPayWriteback) {
  auto rd = make_ref({0, 4}, {10, 64}, 0x1000, 4, false);
  auto wr = make_ref({0, 4}, {10, 64}, 0x1000, 4, true);
  auto cr = candidates_for(rd, 0);
  auto cw = candidates_for(wr, 0);
  ASSERT_FALSE(cr.empty());
  ASSERT_FALSE(cw.empty());
  EXPECT_EQ(cw.back().transfer_words, 2 * cr.back().transfer_words);
}

TEST(Reuse, OversizedBuffersDiscarded) {
  auto ref = make_ref({65536, 4}, {1000, 16384});  // ~64MB span
  ReuseOptions opts;
  opts.max_buffer_bytes = 1u << 16;
  auto cands = candidates_for(ref, 0, opts);
  for (const auto& c : cands) {
    EXPECT_LE(c.size_bytes, opts.max_buffer_bytes);
  }
}

TEST(Reuse, NoReuseNoCandidates) {
  // Streaming access touched exactly once: reuse factor 1 everywhere
  // (and 2x transfers for the write), so min_reuse > 1 drops everything.
  auto ref = make_ref({4}, {1000}, 0x1000, 4, true);
  ReuseOptions opts;
  opts.min_reuse = 1.01;
  auto cands = candidates_for(ref, 0, opts);
  EXPECT_TRUE(cands.empty());
}

// -- DSE ----------------------------------------------------------------------

TEST(Dse, PicksBestCandidatePerReference) {
  auto ref = make_ref({0, 4}, {10, 64});
  auto cands = candidates_for(ref, 0);
  DseOptions opts;
  opts.spm_capacity = 4096;
  Selection sel = select_buffers(cands, opts);
  ASSERT_EQ(sel.chosen.size(), 1u);  // one buffer per reference
  EXPECT_EQ(sel.chosen[0].level, 2);  // full-reuse candidate wins
  EXPECT_GT(sel.saved_nj, 0.0);
}

TEST(Dse, RespectsCapacity) {
  std::vector<BufferCandidate> cands;
  for (size_t r = 0; r < 8; ++r) {
    auto ref = make_ref({0, 4}, {10, 64}, 0x1000 + 0x1000 * r);
    for (auto& c : candidates_for(ref, r)) cands.push_back(c);
  }
  DseOptions opts;
  opts.spm_capacity = 600;  // fits two 256B buffers
  Selection sel = select_buffers(cands, opts);
  EXPECT_LE(sel.bytes_used, opts.spm_capacity);
  EXPECT_EQ(sel.chosen.size(), 2u);
}

TEST(Dse, KnapsackAtLeastAsGoodAsGreedy) {
  std::vector<BufferCandidate> cands;
  // Heterogeneous candidates to create a non-trivial packing problem.
  const int64_t sizes[] = {60, 100, 120, 31, 255, 77, 190};
  for (size_t r = 0; r < std::size(sizes); ++r) {
    auto ref = make_ref({0, 4}, {5 + static_cast<int64_t>(r), sizes[r] / 4},
                        0x1000 + 0x1000 * r);
    for (auto& c : candidates_for(ref, r)) cands.push_back(c);
  }
  DseOptions opts;
  opts.spm_capacity = 256;
  Selection dp = select_buffers(cands, opts);
  Selection greedy = select_buffers_greedy(cands, opts);
  EXPECT_GE(dp.saved_nj, greedy.saved_nj - 1e-9);
  EXPECT_LE(dp.bytes_used, opts.spm_capacity);
  EXPECT_LE(greedy.bytes_used, opts.spm_capacity);
}

TEST(Dse, NoCandidatesNoSelection) {
  DseOptions opts;
  Selection sel = select_buffers({}, opts);
  EXPECT_TRUE(sel.chosen.empty());
  EXPECT_EQ(sel.saved_nj, 0.0);
}

// -- SPM evaluation -------------------------------------------------------------

TEST(SpmSim, SelectionReducesEnergy) {
  core::ForayModel model;
  model.refs.push_back(make_ref({0, 4}, {10, 64}));
  auto cands = enumerate_candidates(model);
  DseOptions opts;
  Selection sel = select_buffers(cands, opts);
  EnergyReport base = evaluate_baseline(model, opts.energy);
  EnergyReport with = evaluate_selection(model, sel, opts);
  EXPECT_LT(with.total_nj, base.baseline_nj);
  EXPECT_GT(with.savings_pct(), 50.0);
  EXPECT_EQ(with.spm_accesses, 640u);
  EXPECT_EQ(with.dram_accesses, 0u);
}

TEST(SpmSim, UnselectedReferencesStayInDram) {
  core::ForayModel model;
  model.refs.push_back(make_ref({0, 4}, {10, 64}, 0x1000));
  model.refs.push_back(make_ref({4}, {100}, 0x8000));  // no reuse
  auto cands = enumerate_candidates(model);
  DseOptions opts;
  Selection sel = select_buffers(cands, opts);
  EnergyReport with = evaluate_selection(model, sel, opts);
  EXPECT_GE(with.dram_accesses, 100u);
}

TEST(SpmSim, ReplayMatchesAnalyticAccessCount) {
  core::ForayModel model;
  model.refs.push_back(make_ref({0, 4}, {10, 64}));
  model.refs.push_back(make_ref({256, 4}, {8, 32}, 0x9000));
  auto cands = enumerate_candidates(model);
  DseOptions opts;
  Selection sel = select_buffers(cands, opts);
  uint64_t analytic = 0;
  for (const auto& c : sel.chosen) analytic += c.spm_accesses;
  EXPECT_EQ(replay_spm_accesses(model, sel), analytic);
}

// -- address streams ------------------------------------------------------------

TEST(Stream, SingleRefLexicographicOrder) {
  auto ref = make_ref({100, 4}, {2, 3}, 1000);
  auto addrs = addresses_of(ref);
  ASSERT_EQ(addrs.size(), 6u);
  EXPECT_EQ(addrs[0], 1000u);
  EXPECT_EQ(addrs[1], 1004u);
  EXPECT_EQ(addrs[2], 1008u);
  EXPECT_EQ(addrs[3], 1100u);
  EXPECT_EQ(addrs[5], 1108u);
}

TEST(Stream, CountMatchesTripProduct) {
  auto ref = make_ref({1, 7, 49}, {3, 4, 5});
  uint64_t n = 0;
  for_each_address(ref, [&](uint32_t) { ++n; });
  EXPECT_EQ(n, 60u);
}

TEST(Stream, ModelInterleavesSharedNest) {
  core::ForayModel model;
  model.refs.push_back(make_ref({0, 4}, {2, 2}, 0));
  model.refs.push_back(make_ref({0, 4}, {2, 2}, 1000));
  std::vector<uint32_t> addrs;
  uint64_t n = for_each_address(model, [&](uint32_t a) {
    addrs.push_back(a);
  });
  EXPECT_EQ(n, 8u);
  ASSERT_EQ(addrs.size(), 8u);
  // Per iteration both refs emit: 0, 1000, 4, 1004, ...
  EXPECT_EQ(addrs[0], 0u);
  EXPECT_EQ(addrs[1], 1000u);
  EXPECT_EQ(addrs[2], 4u);
  EXPECT_EQ(addrs[3], 1004u);
}

// -- cache simulator --------------------------------------------------------------

TEST(Cache, ColdMissThenHit) {
  CacheSim cache(CacheConfig{1024, 32, 1});
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1004));
  EXPECT_TRUE(cache.access(0x101f));
  EXPECT_FALSE(cache.access(0x1020));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(Cache, DirectMappedConflict) {
  CacheSim cache(CacheConfig{1024, 32, 1});
  cache.access(0x0000);
  cache.access(0x0400);  // same set, different tag: evicts
  EXPECT_FALSE(cache.access(0x0000));
}

TEST(Cache, AssociativityResolvesConflict) {
  CacheSim cache(CacheConfig{1024, 32, 2});
  cache.access(0x0000);
  cache.access(0x0400);
  EXPECT_TRUE(cache.access(0x0000));  // both ways hold the pair
}

TEST(Cache, LruEvictionOrder) {
  CacheSim cache(CacheConfig{64, 32, 2});  // 1 set, 2 ways
  cache.access(0x0000);
  cache.access(0x0020);
  cache.access(0x0000);      // refresh line 0
  cache.access(0x0040);      // evicts 0x0020 (LRU)
  EXPECT_TRUE(cache.access(0x0000));
  EXPECT_FALSE(cache.access(0x0020));
}

TEST(Cache, ResetClearsState) {
  CacheSim cache(CacheConfig{1024, 32, 2});
  cache.access(0x0);
  cache.reset();
  EXPECT_EQ(cache.accesses(), 0u);
  EXPECT_FALSE(cache.access(0x0));
}

TEST(Cache, SequentialStreamHitRate) {
  CacheSim cache(CacheConfig{4096, 32, 2});
  for (uint32_t a = 0; a < 8192; a += 4) cache.access(a);
  // 8 words per line -> 7/8 hit rate on a cold sequential sweep.
  EXPECT_NEAR(cache.hit_rate(), 7.0 / 8.0, 0.01);
}

TEST(Cache, EnergyAccountsForMissFills) {
  EnergyModel e;
  CacheSim cache(CacheConfig{1024, 32, 1});
  for (uint32_t a = 0; a < 4096; a += 32) cache.access(a);  // all misses
  double all_miss = cache.energy_nj(e);
  cache.reset();
  cache.access(0);
  for (int i = 0; i < 127; ++i) cache.access(0);  // 127 hits
  double mostly_hit = cache.energy_nj(e);
  EXPECT_GT(all_miss, mostly_hit);
}

TEST(Cache, SpmBeatsCacheOnBlockedReuse) {
  // The classic SPM argument: for a kernel with perfect block reuse, an
  // SPM serving the block + one fill beats a cache of the same size.
  core::ForayModel model;
  model.refs.push_back(make_ref({0, 4}, {50, 512}));  // 2KB row, 50 sweeps
  auto cands = enumerate_candidates(model);
  DseOptions opts;
  opts.spm_capacity = 4096;
  Selection sel = select_buffers(cands, opts);
  EnergyReport spm_report = evaluate_selection(model, sel, opts);

  CacheSim cache(CacheConfig{4096, 32, 2});
  for_each_address(model, [&](uint32_t a) { cache.access(a); });
  double cache_nj = cache.energy_nj(opts.energy);
  EXPECT_LT(spm_report.total_nj, cache_nj);
}

}  // namespace
}  // namespace foray::spm
