#include <gtest/gtest.h>

#include "foray/emitter.h"
#include "foray/model.h"
#include "minic/parser.h"

namespace foray::core {
namespace {

using trace::AccessKind;
using trace::CheckpointType;
using trace::Record;

Record enter(int id) { return Record::checkpoint(CheckpointType::LoopEnter, id); }
Record body(int id) { return Record::checkpoint(CheckpointType::BodyBegin, id); }
Record exitl(int id) { return Record::checkpoint(CheckpointType::LoopExit, id); }

/// Builds an extractor holding one 2-deep nest with two references:
/// a write with stride (outer 128, inner 4) and a read with stride
/// (outer -64, inner 8).
Extractor make_two_ref_extraction() {
  Extractor ex;
  ex.on_record(enter(3));
  for (uint32_t i = 0; i < 6; ++i) {
    ex.on_record(body(3));
    ex.on_record(enter(5));
    for (uint32_t j = 0; j < 8; ++j) {
      ex.on_record(body(5));
      ex.on_record(Record::access(0x400100, 0x10000000 + 128 * i + 4 * j, 4,
                                  true, AccessKind::Data));
      ex.on_record(Record::access(0x400104, 0x20000800 - 64 * i + 8 * j, 4,
                                  false, AccessKind::Data));
    }
    ex.on_record(exitl(5));
  }
  ex.on_record(exitl(3));
  return ex;
}

FilterOptions lenient() {
  FilterOptions f;
  f.min_exec = 1;
  f.min_locations = 1;
  return f;
}

TEST(Model, BuildCollectsSurvivors) {
  Extractor ex = make_two_ref_extraction();
  ForayModel m = build_model(ex, lenient());
  ASSERT_EQ(m.refs.size(), 2u);
  EXPECT_EQ(m.build_stats.total_refs, 2);
  EXPECT_EQ(m.build_stats.kept, 2);
}

TEST(Model, ReferencesCarryContextAndTrips) {
  Extractor ex = make_two_ref_extraction();
  ForayModel m = build_model(ex, lenient());
  for (const auto& r : m.refs) {
    ASSERT_EQ(r.loop_path.size(), 2u);
    EXPECT_EQ(r.loop_path[0], 3);
    EXPECT_EQ(r.loop_path[1], 5);
    EXPECT_EQ(r.trips[0], 6);
    EXPECT_EQ(r.trips[1], 8);
    EXPECT_EQ(r.exec_count, 48u);
  }
}

TEST(Model, CoefficientsOutermostFirst) {
  Extractor ex = make_two_ref_extraction();
  ForayModel m = build_model(ex, lenient());
  const ModelReference* wr = nullptr;
  const ModelReference* rd = nullptr;
  for (const auto& r : m.refs) (r.has_write ? wr : rd) = &r;
  ASSERT_NE(wr, nullptr);
  ASSERT_NE(rd, nullptr);
  EXPECT_EQ(wr->fn.coefs, (std::vector<int64_t>{128, 4}));
  EXPECT_EQ(rd->fn.coefs, (std::vector<int64_t>{-64, 8}));
}

TEST(Model, DistinctLoopsAndContexts) {
  Extractor ex = make_two_ref_extraction();
  ForayModel m = build_model(ex, lenient());
  EXPECT_EQ(m.distinct_loops(), 2);
  EXPECT_EQ(m.loop_contexts(), 2);
  EXPECT_EQ(m.total_accesses(), 96u);
}

TEST(Model, FilterStatsBucketDropped) {
  Extractor ex = make_two_ref_extraction();
  FilterOptions strict;
  strict.min_exec = 1000;  // drops everything
  ForayModel m = build_model(ex, strict);
  EXPECT_TRUE(m.refs.empty());
  EXPECT_EQ(m.build_stats.dropped_exec, 2);
}

TEST(Emitter, NamesAreUniquePerContext) {
  ForayModel m;
  for (int ctx = 0; ctx < 3; ++ctx) {
    ModelReference r;
    r.instr = 0x400100;
    r.loop_path = {ctx};
    r.trips = {4};
    r.fn.const_term = 0;
    r.fn.coefs = {4};
    r.fn.known = {true};
    r.fn.m = 1;
    m.refs.push_back(r);
  }
  auto names = assign_array_names(m);
  EXPECT_EQ(names[0], "A400100");
  EXPECT_EQ(names[1], "A400100_c2");
  EXPECT_EQ(names[2], "A400100_c3");
}

TEST(Emitter, MinicOutputParses) {
  Extractor ex = make_two_ref_extraction();
  ForayModel m = build_model(ex, lenient());
  std::string src = emit_minic(m);
  util::DiagList diags;
  auto p = minic::parse_and_check(src, &diags);
  EXPECT_NE(p, nullptr) << diags.str() << "\n" << src;
}

TEST(Emitter, NegativeStrideRebasedToValidArray) {
  Extractor ex = make_two_ref_extraction();
  ForayModel m = build_model(ex, lenient());
  std::string src = emit_minic(m);
  // The -64-stride read must rebase so indices stay >= 0; spot the
  // subtraction in the emitted index expression.
  EXPECT_NE(src.find("- 64 * i3"), std::string::npos) << src;
  util::DiagList diags;
  EXPECT_NE(minic::parse_and_check(src, &diags), nullptr) << diags.str();
}

TEST(Emitter, GroupedSharesOneNest) {
  Extractor ex = make_two_ref_extraction();
  ForayModel m = build_model(ex, lenient());
  EmitOptions grouped;
  grouped.group_by_nest = true;
  std::string g = emit_minic(m, grouped);
  EmitOptions split;
  split.group_by_nest = false;
  std::string s = emit_minic(m, split);
  auto count = [](const std::string& hay, const std::string& needle) {
    int n = 0;
    for (size_t p = hay.find(needle); p != std::string::npos;
         p = hay.find(needle, p + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count(g, "for (int i3"), 1);
  EXPECT_EQ(count(s, "for (int i3"), 2);
}

TEST(Emitter, PaperStyleShowsAbsoluteBase) {
  Extractor ex = make_two_ref_extraction();
  ForayModel m = build_model(ex, lenient());
  std::string s = emit_paper_style(m);
  EXPECT_NE(s.find(std::to_string(0x10000000)), std::string::npos) << s;
  EXPECT_NE(s.find("+4*i5"), std::string::npos);
  EXPECT_NE(s.find("+128*i3"), std::string::npos);
}

TEST(Emitter, DescribeReferenceMentionsPartiality) {
  ModelReference r;
  r.instr = 0x4002a0;
  r.loop_path = {12, 15};
  r.trips = {2, 3};
  r.fn.const_term = 0x7fff5934;
  r.fn.coefs = {103, 1};
  r.fn.known = {true, true};
  r.fn.m = 1;
  r.exec_count = 6;
  r.footprint = 6;
  std::string d = describe_reference(r);
  EXPECT_NE(d.find("partial"), std::string::npos);
  EXPECT_NE(d.find("4002a0"), std::string::npos);
  // Only the innermost M=1 iterator belongs to the partial expression;
  // the excluded outer term must not be displayed.
  EXPECT_NE(d.find("1*i15"), std::string::npos);
  EXPECT_EQ(d.find("103*i12"), std::string::npos);
}

TEST(Emitter, MetadataCommentsToggle) {
  Extractor ex = make_two_ref_extraction();
  ForayModel m = build_model(ex, lenient());
  EmitOptions with;
  with.metadata_comments = true;
  EmitOptions without;
  without.metadata_comments = false;
  EXPECT_NE(emit_minic(m, with).find("instr="), std::string::npos);
  EXPECT_EQ(emit_minic(m, without).find("instr="), std::string::npos);
}

}  // namespace
}  // namespace foray::core
