#include <gtest/gtest.h>

#include "foray/filter.h"

namespace foray::core {
namespace {

/// Builds a RefNode inside a standalone loop node with a synthetic
/// affine history: `execs` accesses with stride 4 over `locations`
/// distinct addresses.
struct Fixture {
  LoopNode node{0, nullptr, true};
  std::unique_ptr<RefNode> ref;

  explicit Fixture(uint64_t execs, uint64_t locations,
                   trace::AccessKind kind = trace::AccessKind::Data) {
    ref = std::make_unique<RefNode>(0x400100, &node, 1u << 20);
    ref->kind = kind;
    for (uint64_t e = 0; e < execs; ++e) {
      int64_t it = static_cast<int64_t>(e % locations);
      std::vector<int64_t> iters = {it};
      int64_t addr = 0x10000000 + 4 * it;
      observe_access(ref->affine, iters, addr);
      ref->note_address(static_cast<uint32_t>(addr));
      ++ref->exec_count;
    }
  }
};

TEST(Filter, PaperDefaultsKeepQualifyingRef) {
  Fixture f(100, 50);
  EXPECT_EQ(classify_reference(*f.ref, FilterOptions{}),
            FilterReason::Kept);
}

TEST(Filter, TooFewExecutionsDropped) {
  Fixture f(19, 19);
  FilterOptions o;
  EXPECT_EQ(classify_reference(*f.ref, o), FilterReason::TooFewExecs);
  o.min_exec = 19;
  EXPECT_EQ(classify_reference(*f.ref, o), FilterReason::Kept);
}

TEST(Filter, TooFewLocationsDropped) {
  Fixture f(100, 9);
  FilterOptions o;
  EXPECT_EQ(classify_reference(*f.ref, o), FilterReason::TooFewLocations);
  o.min_locations = 9;
  EXPECT_EQ(classify_reference(*f.ref, o), FilterReason::Kept);
}

TEST(Filter, BoundaryValuesInclusive) {
  Fixture f(20, 10);
  EXPECT_EQ(classify_reference(*f.ref, FilterOptions{}),
            FilterReason::Kept);
}

TEST(Filter, ConstantRefHasNoIterator) {
  // Same address every time: coefficient solves to zero.
  LoopNode node{0, nullptr, true};
  RefNode ref(0x400200, &node, 1u << 20);
  for (int e = 0; e < 100; ++e) {
    std::vector<int64_t> iters = {e % 10};
    observe_access(ref.affine, iters, 0x10000000);
    ref.note_address(0x10000000);
    ++ref.exec_count;
  }
  EXPECT_EQ(classify_reference(ref, FilterOptions{}),
            FilterReason::NoIterator);
}

TEST(Filter, SystemReferencesExcludedByDefault) {
  Fixture f(100, 50, trace::AccessKind::System);
  FilterOptions o;
  EXPECT_EQ(classify_reference(*f.ref, o), FilterReason::SystemReference);
  o.exclude_system = false;
  EXPECT_EQ(classify_reference(*f.ref, o), FilterReason::Kept);
}

TEST(Filter, NonAnalyzableDropped) {
  LoopNode node{0, nullptr, true};
  RefNode ref(0x400300, &node, 1u << 20);
  std::vector<int64_t> a = {0, 0};
  observe_access(ref.affine, a, 100);
  std::vector<int64_t> b = {1, 1};  // two unknowns change at once
  observe_access(ref.affine, b, 957);
  ref.exec_count = 100;
  for (uint32_t i = 0; i < 64; ++i) ref.note_address(0x1000 + i);
  EXPECT_EQ(classify_reference(ref, FilterOptions{}),
            FilterReason::NonAnalyzable);
}

TEST(Filter, PartialKeptByDefaultDroppableByOption) {
  LoopNode node{0, nullptr, true};
  RefNode ref(0x400400, &node, 1u << 20);
  // Inner regular, outer irregular -> partial with M=1.
  const int64_t bases[] = {1000, 7777, 3333, 9111};
  for (int64_t x = 0; x < 4; ++x) {
    for (int64_t i = 0; i < 32; ++i) {
      std::vector<int64_t> iters = {i, x};
      int64_t addr = bases[x] + 4 * i;
      observe_access(ref.affine, iters, addr);
      ref.note_address(static_cast<uint32_t>(addr));
      ++ref.exec_count;
    }
  }
  ASSERT_TRUE(ref.affine.is_partial());
  FilterOptions o;
  EXPECT_EQ(classify_reference(ref, o), FilterReason::Kept);
  o.keep_partial = false;
  EXPECT_EQ(classify_reference(ref, o), FilterReason::PartialExcluded);
}

TEST(Filter, ReasonNamesAreStable) {
  EXPECT_STREQ(filter_reason_name(FilterReason::Kept), "kept");
  EXPECT_STREQ(filter_reason_name(FilterReason::TooFewExecs),
               "too-few-execs");
  EXPECT_STREQ(filter_reason_name(FilterReason::SystemReference),
               "system-reference");
}

}  // namespace
}  // namespace foray::core
