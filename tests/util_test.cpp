#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <string>

#include "util/json.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace foray::util {
namespace {

TEST(Strings, ToHexBasic) {
  EXPECT_EQ(to_hex(0), "0");
  EXPECT_EQ(to_hex(0x4002a0), "4002a0");
  EXPECT_EQ(to_hex(0x7fff5934), "7fff5934");
}

TEST(Strings, ParseHexRoundTrip) {
  for (uint64_t v : {0ull, 1ull, 0x4002a0ull, 0xffffffffull,
                     0x123456789abcdefull}) {
    uint64_t out = 0;
    ASSERT_TRUE(parse_hex(to_hex(v), &out));
    EXPECT_EQ(out, v);
  }
}

TEST(Strings, ParseHexRejectsGarbage) {
  uint64_t out;
  EXPECT_FALSE(parse_hex("", &out));
  EXPECT_FALSE(parse_hex("xyz", &out));
  EXPECT_FALSE(parse_hex("12g", &out));
}

TEST(Strings, ParseI64) {
  int64_t v;
  ASSERT_TRUE(parse_i64("-42", &v));
  EXPECT_EQ(v, -42);
  ASSERT_TRUE(parse_i64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_FALSE(parse_i64("4x", &v));
  EXPECT_FALSE(parse_i64("", &v));
}

TEST(Strings, SplitWs) {
  auto t = split_ws("  a  bb\tccc \n d ");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "ccc");
  EXPECT_EQ(t[3], "d");
}

TEST(Strings, SplitWsEmpty) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t\n").empty());
}

TEST(Strings, SplitKeepsEmptyTokens) {
  auto t = split("a,,b,", ',');
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "");
  EXPECT_EQ(t[2], "b");
  EXPECT_EQ(t[3], "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("Checkpoint: 12", "Checkpoint:"));
  EXPECT_FALSE(starts_with("Check", "Checkpoint:"));
}

TEST(Strings, CountLines) {
  EXPECT_EQ(count_lines(""), 0);
  EXPECT_EQ(count_lines("a"), 1);
  EXPECT_EQ(count_lines("a\n"), 1);
  EXPECT_EQ(count_lines("a\nb"), 2);
  EXPECT_EQ(count_lines("a\nb\n"), 2);
}

TEST(Strings, Pct) {
  EXPECT_EQ(pct(1, 2), "50.0%");
  EXPECT_EQ(pct(0, 5), "0.0%");
  EXPECT_EQ(pct(3, 0), "n/a");
}

TEST(Strings, HumanCount) {
  EXPECT_EQ(human_count(123), "123");
  EXPECT_EQ(human_count(43'000'000), "43.0M");
  EXPECT_EQ(human_count(8'300'000), "8.30M");
  EXPECT_EQ(human_count(55'000), "55.0K");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
}

TEST(Strings, TablePrinterLaysOutColumns) {
  TablePrinter tp({"name", "value"});
  tp.add_row({"alpha", "1"});
  tp.add_row({"b", "22222"});
  std::string s = tp.str();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22222 |"), std::string::npos);
}

TEST(Json, WriterBuildsObjectsAndArrays) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(int64_t{1});
  w.key("b").begin_array().value(true).value(2.5).end_array();
  w.end_object();
  EXPECT_EQ(w.take(), "{\"a\":1,\"b\":[true,2.5]}");
}

TEST(Json, EscapesQuotesAndBackslashes) {
  // Program names flow into sweep NDJSON verbatim, so hostile names
  // (quotes, backslashes, Windows paths) must stay valid JSON.
  JsonWriter w;
  w.begin_object();
  w.key("na\"me").value("c:\\tmp\\\"quoted\".mc");
  w.end_object();
  EXPECT_EQ(w.take(),
            "{\"na\\\"me\":\"c:\\\\tmp\\\\\\\"quoted\\\".mc\"}");
}

TEST(Json, EscapesControlCharacters) {
  JsonWriter w;
  const std::string ctl{"\n\r\t\x01\x1f"};
  w.begin_object();
  w.key("ctl").value(ctl);
  w.end_object();
  // Named escapes for the common three, \u00xx for the rest — and
  // never a raw newline, which would tear an NDJSON line in half.
  const std::string out = w.take();
  EXPECT_EQ(out, "{\"ctl\":\"\\n\\r\\t\\u0001\\u001f\"}");
  EXPECT_EQ(out.find('\n'), std::string::npos);
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.take(), "[null,null]");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolExtremes) {
  Rng r(5);
  EXPECT_FALSE(r.next_bool(0.0));
  EXPECT_TRUE(r.next_bool(1.0));
}

TEST(Status, DiagListFormatsLines) {
  DiagList d;
  d.add(3, "bad thing");
  d.add(0, "global thing");
  EXPECT_EQ(d.size(), 2u);
  EXPECT_NE(d.str().find("line 3: bad thing"), std::string::npos);
  EXPECT_NE(d.str().find("global thing"), std::string::npos);
}

TEST(Status, ForayCheckThrows) {
  EXPECT_THROW(FORAY_CHECK(false, "boom"), InternalError);
  EXPECT_NO_THROW(FORAY_CHECK(true, "fine"));
}

}  // namespace
}  // namespace foray::util
