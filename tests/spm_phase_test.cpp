// End-to-end Phase II: pipeline -> reuse -> DSE through the SpmPhase,
// on paper-style examples. Locks in that the phases are individually
// invokable and that run_pipeline() is exactly their composition.
#include <gtest/gtest.h>

#include "foray/pipeline.h"

namespace foray::core {
namespace {

// A scaled-up Figure 4: a statically-opaque pointer walk plus a small
// array re-read every outer iteration (the buffer Phase II should pick).
const char* kReuseProgram =
    "char q[8000];\n"
    "int row[32];\n"
    "int main(void) {\n"
    "  char *ptr = q;\n"
    "  int t1 = 0;\n"
    "  while (t1 < 50) {\n"
    "    t1++;\n"
    "    ptr += 100;\n"
    "    for (int i = 0; i < 20; i++) {\n"
    "      *ptr++ = (i + t1) % 256;\n"
    "    }\n"
    "    for (int j = 0; j < 32; j++) {\n"
    "      row[j] = row[j] + t1;\n"
    "    }\n"
    "  }\n"
    "  return row[0];\n"
    "}\n";

PipelineOptions with_spm(uint32_t capacity = 4096) {
  PipelineOptions o;
  o.with_spm = true;
  o.spm.dse.spm_capacity = capacity;
  return o;
}

TEST(SpmPhase, EndToEndSelectsBuffers) {
  auto res = run_pipeline(kReuseProgram, with_spm());
  ASSERT_TRUE(res.ok()) << res.error();
  ASSERT_TRUE(res.spm_ran);

  const SpmReport& spm = res.spm;
  EXPECT_EQ(spm.capacity, 4096u);
  EXPECT_FALSE(spm.candidates.empty());
  ASSERT_FALSE(spm.exact.chosen.empty());
  EXPECT_GT(spm.exact.bytes_used, 0u);
  EXPECT_LE(spm.exact.bytes_used, spm.capacity);
  EXPECT_GT(spm.exact.saved_nj, 0.0);

  // Energy accounting: the SPM configuration must beat the all-DRAM
  // baseline, and the baseline must be the pure-DRAM figure.
  EXPECT_GT(spm.baseline.baseline_nj, 0.0);
  EXPECT_LT(spm.with_spm.total_nj, spm.baseline.baseline_nj);
  EXPECT_GT(spm.with_spm.savings_pct(), 0.0);
  EXPECT_LE(spm.with_spm.savings_pct(), 100.0);
}

TEST(SpmPhase, ExactNeverWorseThanGreedy) {
  for (uint32_t cap : {256u, 1024u, 4096u}) {
    auto res = run_pipeline(kReuseProgram, with_spm(cap));
    ASSERT_TRUE(res.ok()) << res.error();
    EXPECT_GE(res.spm.exact.saved_nj, res.spm.greedy.saved_nj)
        << "capacity " << cap;
  }
}

TEST(SpmPhase, SkippedUnlessRequested) {
  PipelineOptions o;  // with_spm defaults to false
  auto res = run_pipeline(kReuseProgram, o);
  ASSERT_TRUE(res.ok()) << res.error();
  EXPECT_FALSE(res.spm_ran);
  EXPECT_TRUE(res.spm.candidates.empty());
}

TEST(SpmPhase, ManualPhaseChainMatchesRunPipeline) {
  PipelineOptions opts = with_spm();
  PipelineResult manual;
  ASSERT_TRUE(frontend_phase(kReuseProgram, &manual).ok());
  ASSERT_TRUE(instrument_phase(&manual).ok());
  ASSERT_TRUE(profile_phase(opts, &manual).ok());
  ASSERT_TRUE(extract_phase(opts, &manual).ok());
  ASSERT_TRUE(spm_phase(opts.spm, &manual).ok());

  auto composed = run_pipeline(kReuseProgram, opts);
  ASSERT_TRUE(composed.ok()) << composed.error();

  ASSERT_EQ(manual.model.refs.size(), composed.model.refs.size());
  for (size_t i = 0; i < manual.model.refs.size(); ++i) {
    EXPECT_EQ(manual.model.refs[i].instr, composed.model.refs[i].instr);
    EXPECT_EQ(manual.model.refs[i].fn.coefs,
              composed.model.refs[i].fn.coefs);
  }
  EXPECT_EQ(manual.foray_source, composed.foray_source);
  ASSERT_EQ(manual.spm.exact.chosen.size(),
            composed.spm.exact.chosen.size());
  EXPECT_EQ(manual.spm.exact.bytes_used, composed.spm.exact.bytes_used);
  EXPECT_DOUBLE_EQ(manual.spm.exact.saved_nj, composed.spm.exact.saved_nj);
  EXPECT_EQ(describe_spm_report(manual.spm, manual.model),
            describe_spm_report(composed.spm, composed.model));
}

TEST(SpmPhase, RerunReplacesReportWholesale) {
  PipelineOptions opts = with_spm(4096);
  auto res = run_pipeline(kReuseProgram, opts);
  ASSERT_TRUE(res.ok()) << res.error();
  const uint64_t bytes_4k = res.spm.exact.bytes_used;
  ASSERT_GT(bytes_4k, 0u);

  SpmPhaseOptions tiny = opts.spm;
  tiny.dse.spm_capacity = 16;  // nothing fits
  ASSERT_TRUE(spm_phase(tiny, &res).ok());
  EXPECT_EQ(res.spm.capacity, 16u);
  EXPECT_LE(res.spm.exact.bytes_used, 16u);
  EXPECT_LT(res.spm.exact.bytes_used, bytes_4k);

  SpmPhaseOptions back = opts.spm;
  ASSERT_TRUE(spm_phase(back, &res).ok());
  EXPECT_EQ(res.spm.exact.bytes_used, bytes_4k);
}

TEST(SpmPhase, PhaseFailuresCarryPhaseAndLine) {
  PipelineResult r;
  auto st = frontend_phase("int main(void) { return x; }", &r);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.phase(), "sema");
  EXPECT_GT(st.first_line(), 0);
  EXPECT_NE(st.message().find("undeclared"), std::string::npos);

  PipelineResult r2;
  auto st2 = frontend_phase("int main(void) { return 0;", &r2);
  EXPECT_FALSE(st2.ok());
  EXPECT_EQ(st2.phase(), "parse");

  auto res = run_pipeline("int main(void) { int z = 0; return 1 / z; }");
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status.phase(), "simulation");
  EXPECT_GT(res.status.first_line(), 0);
}

TEST(SpmPhase, ReportTextNamesBuffersAndSavings) {
  auto res = run_pipeline(kReuseProgram, with_spm());
  ASSERT_TRUE(res.ok()) << res.error();
  std::string text = describe_spm_report(res.spm, res.model);
  EXPECT_NE(text.find("bytes used"), std::string::npos);
  EXPECT_NE(text.find("predicted saving"), std::string::npos);
  EXPECT_NE(text.find("greedy"), std::string::npos);
  // Every chosen buffer appears with its array name.
  auto names = assign_array_names(res.model);
  for (const auto& c : res.spm.exact.chosen) {
    EXPECT_NE(text.find(names[c.ref_index]), std::string::npos);
  }
}

}  // namespace
}  // namespace foray::core
