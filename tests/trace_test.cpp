#include <gtest/gtest.h>

#include <sstream>

#include "trace/io.h"
#include "trace/record.h"
#include "trace/sink.h"
#include "util/rng.h"

namespace foray::trace {
namespace {

std::vector<Record> sample_records() {
  return {
      Record::checkpoint(CheckpointType::LoopEnter, 12),
      Record::checkpoint(CheckpointType::BodyBegin, 12),
      Record::checkpoint(CheckpointType::LoopEnter, 15),
      Record::checkpoint(CheckpointType::BodyBegin, 15),
      Record::access(0x4002a0, 0x7fff5934, 1, true, AccessKind::Data),
      Record::checkpoint(CheckpointType::BodyEnd, 15),
      Record::checkpoint(CheckpointType::LoopExit, 15),
      Record::call(3),
      Record::access(0x400104, 0x10000010, 4, false, AccessKind::Scalar),
      Record::access(0x400208, 0x20000000, 4, true, AccessKind::System),
      Record::ret(3),
      Record::checkpoint(CheckpointType::BodyEnd, 12),
      Record::checkpoint(CheckpointType::LoopExit, 12),
  };
}

TEST(Record, EqualityDiscriminatesPayload) {
  Record a = Record::access(1, 2, 4, false, AccessKind::Data);
  Record b = a;
  EXPECT_EQ(a, b);
  b = Record::access(1, 3, 4, false, AccessKind::Data);
  EXPECT_FALSE(a == b);
  Record c = Record::checkpoint(CheckpointType::BodyBegin, 5);
  Record d = Record::checkpoint(CheckpointType::BodyEnd, 5);
  EXPECT_FALSE(c == d);
  EXPECT_FALSE(a == c);
}

TEST(TextIo, RecordFormatsMatchPaperStyle) {
  Record r = Record::access(0x4002a0, 0x7fff5934, 1, true, AccessKind::Data);
  EXPECT_EQ(record_to_text(r), "Instr: 4002a0 addr: 7fff5934 wr 1 data");
  Record c = Record::checkpoint(CheckpointType::BodyBegin, 16);
  EXPECT_EQ(record_to_text(c), "Checkpoint: body_begin 16");
}

TEST(TextIo, RoundTrip) {
  auto records = sample_records();
  std::stringstream ss;
  write_text(ss, records);
  std::vector<Record> back;
  util::Status st = read_text(ss, &back);
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_EQ(back.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i], records[i]) << "record " << i;
  }
}

TEST(TextIo, RejectsMalformedLines) {
  std::vector<Record> out;
  std::stringstream ss("Checkpoint: nonsense 12\n");
  util::Status st = read_text(ss, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
  EXPECT_EQ(st.first_line(), 1);
}

TEST(TextIo, RejectsUnknownRecord) {
  std::vector<Record> out;
  std::stringstream ss("Call: 1\nBogus: 1 2 3\n");
  util::Status st = read_text(ss, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
  EXPECT_EQ(st.first_line(), 2);
}

TEST(TextIo, SkipsBlankLines) {
  std::vector<Record> out;
  std::stringstream ss("\nCall: 1\n\nRet: 1\n");
  ASSERT_TRUE(read_text(ss, &out).ok());
  EXPECT_EQ(out.size(), 2u);
}

TEST(BinaryIo, RoundTrip) {
  auto records = sample_records();
  std::stringstream ss;
  write_binary(ss, records);
  std::vector<Record> back;
  util::Status st = read_binary(ss, &back);
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_EQ(back.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i], records[i]) << "record " << i;
  }
}

TEST(BinaryIo, RandomizedRoundTripProperty) {
  util::Rng rng(99);
  std::vector<Record> records;
  for (int i = 0; i < 5000; ++i) {
    switch (rng.next_below(4)) {
      case 0:
        records.push_back(Record::checkpoint(
            static_cast<CheckpointType>(rng.next_below(4)),
            static_cast<int32_t>(rng.next_below(1000))));
        break;
      case 1:
        records.push_back(Record::access(
            static_cast<uint32_t>(rng.next()),
            static_cast<uint32_t>(rng.next()),
            static_cast<uint8_t>(1 + rng.next_below(4)), rng.next_bool(),
            static_cast<AccessKind>(rng.next_below(3))));
        break;
      case 2:
        records.push_back(
            Record::call(static_cast<int32_t>(rng.next_below(100))));
        break;
      default:
        records.push_back(
            Record::ret(static_cast<int32_t>(rng.next_below(100))));
    }
  }
  std::stringstream bin;
  write_binary(bin, records);
  std::vector<Record> back;
  ASSERT_TRUE(read_binary(bin, &back).ok());
  ASSERT_EQ(back.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ASSERT_EQ(back[i], records[i]) << "record " << i;
  }
  // Text round-trip on the same corpus.
  std::stringstream txt;
  write_text(txt, records);
  std::vector<Record> back2;
  util::Status st = read_text(txt, &back2);
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_EQ(back2.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ASSERT_EQ(back2[i], records[i]) << "record " << i;
  }
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream ss("NOPE....");
  std::vector<Record> out;
  util::Status st = read_binary(ss, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
}

TEST(BinaryIo, RejectsTruncatedBody) {
  std::stringstream ss;
  write_binary(ss, sample_records());
  std::string data = ss.str();
  data.resize(data.size() - 3);
  std::stringstream cut(data);
  std::vector<Record> out;
  util::Status st = read_binary(cut, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kIoError);
}

TEST(BinaryIo, RejectsOversizedHeaderCount) {
  // A header claiming 2^31 records backed by a handful of bytes must be
  // rejected before any allocation is sized from the claimed count.
  std::stringstream ss;
  write_binary(ss, sample_records());
  std::string data = ss.str();
  const uint32_t lying = 0x80000000u;
  data[4] = static_cast<char>(lying & 0xff);
  data[5] = static_cast<char>((lying >> 8) & 0xff);
  data[6] = static_cast<char>((lying >> 16) & 0xff);
  data[7] = static_cast<char>((lying >> 24) & 0xff);
  std::stringstream lie(data);
  std::vector<Record> out;
  util::Status st = read_binary(lie, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
}

TEST(BinaryIo, RejectsTruncatedHeader) {
  std::stringstream ss("FTRC\x01");
  std::vector<Record> out;
  util::Status st = read_binary(ss, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kIoError);
}

TEST(Sinks, ChunkDeliveryMatchesRecordDelivery) {
  auto records = sample_records();
  VectorSink via_records, via_chunk;
  for (const auto& r : records) via_records.on_record(r);
  via_chunk.on_chunk(records.data(), records.size());
  ASSERT_EQ(via_chunk.size(), via_records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(via_chunk.records()[i], via_records.records()[i]);
  }
}

TEST(Sinks, ChunkBufferFlushesInOrder) {
  auto records = sample_records();
  VectorSink out;
  {
    ChunkBuffer buf(&out, 4);  // smaller than the record count
    for (const auto& r : records) buf.on_record(r);
    EXPECT_LT(out.size(), records.size()) << "tail should still be buffered";
    buf.flush();
    EXPECT_EQ(out.size(), records.size());
    // An incoming chunk passes through after buffered records.
    buf.on_record(records[0]);
    buf.on_chunk(records.data(), 2);
    EXPECT_EQ(out.size(), records.size() + 3);
  }
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(out.records()[i], records[i]) << "record " << i;
  }
}

TEST(Sinks, ChunkBufferDestructorFlushes) {
  VectorSink out;
  {
    ChunkBuffer buf(&out, 100);
    buf.on_record(Record::call(1));
  }
  EXPECT_EQ(out.size(), 1u);
}

TEST(Sinks, TeeForwardsChunks) {
  auto records = sample_records();
  VectorSink a;
  CountingSink c;
  TeeSink tee{&a, &c};
  tee.on_chunk(records.data(), records.size());
  EXPECT_EQ(a.size(), records.size());
  EXPECT_EQ(c.total(), records.size());
}

TEST(Sinks, VectorSinkCollects) {
  VectorSink sink;
  for (const auto& r : sample_records()) sink.on_record(r);
  EXPECT_EQ(sink.size(), sample_records().size());
}

TEST(Sinks, TeeSinkFansOut) {
  VectorSink a, b;
  TeeSink tee;
  tee.add(&a);
  tee.add(&b);
  for (const auto& r : sample_records()) tee.on_record(r);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), sample_records().size());
}

TEST(Sinks, CountingSinkByType) {
  CountingSink sink;
  for (const auto& r : sample_records()) sink.on_record(r);
  EXPECT_EQ(sink.total(), sample_records().size());
  EXPECT_EQ(sink.accesses(), 3u);
  EXPECT_EQ(sink.calls(), 1u);
  EXPECT_EQ(sink.rets(), 1u);
  EXPECT_EQ(sink.checkpoints(), sample_records().size() - 5);
}

TEST(Sinks, NullSinkIsSilent) {
  NullSink sink;
  for (const auto& r : sample_records()) sink.on_record(r);
  SUCCEED();
}

}  // namespace
}  // namespace foray::trace
