#include <gtest/gtest.h>

#include "benchsuite/suite.h"
#include "foray/pipeline.h"
#include "instrument/annotator.h"
#include "minic/parser.h"
#include "staticforay/pointer_conversion.h"

namespace foray::staticforay {
namespace {

struct Analyzed {
  std::unique_ptr<minic::Program> prog;
  PointerConversion conv;
};

Analyzed analyze_src(std::string_view src) {
  util::DiagList diags;
  Analyzed out;
  out.prog = minic::parse_and_check(src, &diags);
  EXPECT_NE(out.prog, nullptr) << diags.str();
  if (out.prog) {
    instrument::annotate_loops(out.prog.get());
    out.conv = analyze_pointer_conversion(*out.prog);
  }
  return out;
}

TEST(PointerConversion, SimpleWalkInCanonicalForConverts) {
  // The paper's Figure 1 jpeg excerpt: *last_bitpos_ptr++ inside two
  // canonical fors — exactly what Franke-style conversion rescues.
  auto a = analyze_src(
      "int last_bitpos[192];\n"
      "int main(void) {\n"
      "  int *last_bitpos_ptr = last_bitpos;\n"
      "  for (int ci = 0; ci < 3; ci++)\n"
      "    for (int coefi = 0; coefi < 64; coefi++)\n"
      "      *last_bitpos_ptr++ = -1;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(a.conv.convertible_ref_nodes.size(), 1u);
  EXPECT_TRUE(a.conv.convertible_pointers.count("main/last_bitpos_ptr"));
}

TEST(PointerConversion, WalkInWhileLoopDoesNotConvert) {
  // No canonical iterator to convert onto (the FORAY-GEN gap).
  auto a = analyze_src(
      "int v[256];\n"
      "int main(void) {\n"
      "  int *p = v;\n"
      "  int n = 256;\n"
      "  while (n-- > 0) *p++ = n;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(a.conv.convertible_ref_nodes.empty());
}

TEST(PointerConversion, ConstantOffsetBaseAccepted) {
  auto a = analyze_src(
      "int v[256];\n"
      "int main(void) {\n"
      "  int *p = v + 16;\n"
      "  for (int i = 0; i < 64; i++) *p++ = i;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(a.conv.convertible_ref_nodes.size(), 1u);
}

TEST(PointerConversion, AffineSubscriptThroughPointerAccepted) {
  auto a = analyze_src(
      "int v[512];\n"
      "int main(void) {\n"
      "  int *p = v + 64;\n"
      "  int acc = 0;\n"
      "  for (int i = 0; i < 64; i++) acc += p[2 * i + 1] + *(p + i);\n"
      "  return acc;\n"
      "}\n");
  EXPECT_EQ(a.conv.convertible_ref_nodes.size(), 2u);
}

TEST(PointerConversion, ReassignmentFromUnknownDisqualifies) {
  auto a = analyze_src(
      "int v[256];\n"
      "int *get(void) { return v; }\n"
      "int main(void) {\n"
      "  int *p = v;\n"
      "  p = get();\n"
      "  for (int i = 0; i < 64; i++) *p++ = i;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(a.conv.convertible_ref_nodes.empty());
}

TEST(PointerConversion, RebaseByConstantAllowed) {
  auto a = analyze_src(
      "int v[512];\n"
      "int main(void) {\n"
      "  int *p = v;\n"
      "  for (int r = 0; r < 4; r++) {\n"
      "    for (int i = 0; i < 32; i++) *p++ = i;\n"
      "    p = p + 96;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(a.conv.convertible_ref_nodes.size(), 1u);
}

TEST(PointerConversion, AddressTakenDisqualifies) {
  auto a = analyze_src(
      "int v[64];\nvoid touch(int **pp) { *pp = *pp; }\n"
      "int main(void) {\n"
      "  int *p = v;\n"
      "  touch(&p);\n"
      "  for (int i = 0; i < 64; i++) *p++ = i;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(a.conv.convertible_ref_nodes.empty());
}

TEST(PointerConversion, PassingPointerToFunctionDisqualifies) {
  auto a = analyze_src(
      "int v[64];\n"
      "int peek(int *q) { return q[0]; }\n"
      "int main(void) {\n"
      "  int *p = v;\n"
      "  int x = peek(p);\n"
      "  for (int i = 0; i < 64; i++) *p++ = x;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(a.conv.convertible_ref_nodes.empty());
}

TEST(PointerConversion, AliasingAssignmentDisqualifies) {
  auto a = analyze_src(
      "int v[64];\n"
      "int main(void) {\n"
      "  int *p = v;\n"
      "  int *q;\n"
      "  q = p;\n"
      "  for (int i = 0; i < 64; i++) *p++ = i;\n"
      "  return *q;\n"
      "}\n");
  EXPECT_TRUE(a.conv.convertible_ref_nodes.empty());
}

TEST(PointerConversion, DataDependentStrideDisqualifies) {
  auto a = analyze_src(
      "int v[4096]; int step = 7;\n"
      "int main(void) {\n"
      "  int *p = v;\n"
      "  for (int i = 0; i < 64; i++) { *p = i; p += step; }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(a.conv.convertible_ref_nodes.empty());
}

TEST(PointerConversion, PointerFromMallocNotCandidate) {
  auto a = analyze_src(
      "int main(void) {\n"
      "  int *p = (int*)malloc(256);\n"
      "  for (int i = 0; i < 64; i++) *p++ = i;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(a.conv.convertible_ref_nodes.empty());
}

// -- baseline comparison ------------------------------------------------------

TEST(BaselineComparison, ThreeTierOrdering) {
  // One nest visible to plain static analysis, one rescued by pointer
  // conversion, one (while-loop walk) only FORAY-GEN recovers.
  const char* src =
      "int a[256]; int b[256]; int c[256];\n"
      "int main(void) {\n"
      "  for (int i = 0; i < 256; i++) a[i] = i;        // plain static\n"
      "  int *p = b;\n"
      "  for (int i = 0; i < 256; i++) *p++ = i;        // Franke\n"
      "  int *q = c;\n"
      "  int n = 256;\n"
      "  while (n-- > 0) *q++ = n;                      // dynamic only\n"
      "  return a[1] + b[2] + c[3];\n"
      "}\n";
  auto res = core::run_pipeline(src);
  ASSERT_TRUE(res.ok()) << res.error();
  auto analysis = analyze(*res.program);
  auto conv = analyze_pointer_conversion(*res.program);
  auto cmp = compare_baselines(res.model, analysis, conv);
  EXPECT_EQ(cmp.model_refs, 3);
  EXPECT_EQ(cmp.plain_static, 1);
  EXPECT_EQ(cmp.with_conversion, 2);
  EXPECT_EQ(cmp.foray_gen, 3);
  EXPECT_DOUBLE_EQ(cmp.conversion_gain(), 2.0);
  EXPECT_DOUBLE_EQ(cmp.foray_gain_over_conversion(), 1.5);
}

TEST(BaselineComparison, SuiteOrderingHolds) {
  // On every benchmark: plain <= with_conversion <= foray_gen, and
  // jpeg's Figure 1 pointer walk must be rescued by conversion.
  for (const auto& b : benchsuite::all_benchmarks()) {
    auto res = core::run_pipeline(b.source);
    ASSERT_TRUE(res.ok()) << b.name << ": " << res.error();
    auto analysis = analyze(*res.program);
    auto conv = analyze_pointer_conversion(*res.program);
    auto cmp = compare_baselines(res.model, analysis, conv);
    EXPECT_LE(cmp.plain_static, cmp.with_conversion) << b.name;
    EXPECT_LE(cmp.with_conversion, cmp.foray_gen) << b.name;
  }
  auto res = core::run_pipeline(benchsuite::get_benchmark("jpeg").source);
  ASSERT_TRUE(res.ok());
  auto analysis = analyze(*res.program);
  auto conv = analyze_pointer_conversion(*res.program);
  auto cmp = compare_baselines(res.model, analysis, conv);
  EXPECT_GT(cmp.with_conversion, cmp.plain_static);
  EXPECT_GT(cmp.foray_gen, cmp.with_conversion);
}

}  // namespace
}  // namespace foray::staticforay
