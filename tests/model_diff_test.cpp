#include <gtest/gtest.h>

#include "benchsuite/suite.h"
#include "foray/model_diff.h"
#include "foray/pipeline.h"

namespace foray::core {
namespace {

ModelReference make_ref(uint32_t instr, std::vector<int> path,
                        std::vector<int64_t> coefs,
                        std::vector<int64_t> trips) {
  ModelReference r;
  r.instr = instr;
  r.loop_path = std::move(path);
  r.fn.coefs = std::move(coefs);
  r.fn.known.assign(r.fn.coefs.size(), true);
  r.fn.m = static_cast<int>(r.fn.coefs.size());
  r.trips = std::move(trips);
  return r;
}

TEST(ModelDiff, IdenticalModelsFullyStable) {
  ForayModel a;
  a.refs.push_back(make_ref(0x100, {0, 1}, {64, 4}, {8, 16}));
  a.refs.push_back(make_ref(0x104, {0}, {4}, {100}));
  ModelDiff d = diff_models(a, a);
  EXPECT_EQ(d.stable, 2);
  EXPECT_EQ(d.total(), 2);
  EXPECT_DOUBLE_EQ(d.structural_stability(), 1.0);
  EXPECT_DOUBLE_EQ(d.exact_stability(), 1.0);
}

TEST(ModelDiff, TripDriftDetected) {
  ForayModel a, b;
  a.refs.push_back(make_ref(0x100, {0}, {4}, {100}));
  b.refs.push_back(make_ref(0x100, {0}, {4}, {120}));
  ModelDiff d = diff_models(a, b);
  EXPECT_EQ(d.trip_drift, 1);
  EXPECT_EQ(d.stable, 0);
  EXPECT_DOUBLE_EQ(d.structural_stability(), 1.0);
  EXPECT_DOUBLE_EQ(d.exact_stability(), 0.0);
}

TEST(ModelDiff, CoefMismatchDetected) {
  ForayModel a, b;
  a.refs.push_back(make_ref(0x100, {0}, {4}, {100}));
  b.refs.push_back(make_ref(0x100, {0}, {8}, {100}));
  ModelDiff d = diff_models(a, b);
  EXPECT_EQ(d.coef_mismatch, 1);
  EXPECT_DOUBLE_EQ(d.structural_stability(), 0.0);
}

TEST(ModelDiff, PartialDepthChangeIsCoefMismatch) {
  ForayModel a, b;
  auto ra = make_ref(0x100, {0, 1}, {64, 4}, {8, 16});
  auto rb = ra;
  rb.fn.m = 1;  // degraded to partial in run B
  a.refs.push_back(ra);
  b.refs.push_back(rb);
  ModelDiff d = diff_models(a, b);
  EXPECT_EQ(d.coef_mismatch, 1);
}

TEST(ModelDiff, OneSidedReferencesCounted) {
  ForayModel a, b;
  a.refs.push_back(make_ref(0x100, {0}, {4}, {100}));
  a.refs.push_back(make_ref(0x104, {0}, {4}, {100}));
  b.refs.push_back(make_ref(0x100, {0}, {4}, {100}));
  b.refs.push_back(make_ref(0x108, {0}, {4}, {100}));
  ModelDiff d = diff_models(a, b);
  EXPECT_EQ(d.stable, 1);
  EXPECT_EQ(d.only_a, 1);
  EXPECT_EQ(d.only_b, 1);
  EXPECT_EQ(d.total(), 3);
}

TEST(ModelDiff, SameInstrDifferentContextNotMatched) {
  ForayModel a, b;
  a.refs.push_back(make_ref(0x100, {0, 2}, {64, 4}, {8, 16}));
  b.refs.push_back(make_ref(0x100, {1, 2}, {64, 4}, {8, 16}));
  ModelDiff d = diff_models(a, b);
  EXPECT_EQ(d.only_a, 1);
  EXPECT_EQ(d.only_b, 1);
}

TEST(ModelDiff, SummaryMentionsCounts) {
  ForayModel a, b;
  a.refs.push_back(make_ref(0x100, {0}, {4}, {100}));
  b.refs.push_back(make_ref(0x100, {0}, {4}, {120}));
  std::string s = diff_models(a, b).summary();
  EXPECT_NE(s.find("trip-drift"), std::string::npos);
  EXPECT_NE(s.find("100%"), std::string::npos);
}

// -- the future-work experiment, as a regression test -----------------------

TEST(ModelDiff, BenchmarkAffineStructureIsInputIndependent) {
  // Profile with two different input seeds; affine structure of matched
  // references must agree (coefficient mismatches would undermine the
  // whole methodology).
  for (const char* name : {"fft", "susan", "adpcm"}) {
    const auto& b = benchsuite::get_benchmark(name);
    core::PipelineOptions o1, o2;
    o1.run.rng_seed = 11;
    o2.run.rng_seed = 222;
    auto r1 = run_pipeline(b.source, o1);
    auto r2 = run_pipeline(b.source, o2);
    ASSERT_TRUE(r1.ok() && r2.ok()) << name;
    ModelDiff d = diff_models(r1.model, r2.model);
    EXPECT_EQ(d.coef_mismatch, 0) << name << ": " << d.summary();
    EXPECT_GT(d.structural_stability(), 0.9) << name << ": " << d.summary();
  }
}

}  // namespace
}  // namespace foray::core
