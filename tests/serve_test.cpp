// The `foraygen serve` loop (driver/serve.h): per-request sweep
// streaming, structured error rows for malformed requests (the loop
// never dies on bad input), admission control, per-request budgets,
// model-cache reuse across requests, and the kIoError exit when the
// response stream fails.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "driver/model_cache.h"
#include "driver/serve.h"
#include "util/json.h"
#include "util/status.h"

namespace foray::driver {
namespace {

const char* kGood =
    "int a[256];\n"
    "int main(void) {\n"
    "  for (int r = 0; r < 40; r++)\n"
    "    for (int i = 0; i < 256; i++) a[i] = a[i] + r;\n"
    "  return a[0] & 255;\n"
    "}\n";

ServeOptions serve_opts(ModelCache* cache = nullptr) {
  ServeOptions o;
  o.threads = 2;
  o.pipeline.filter.min_exec = 1;
  o.pipeline.filter.min_locations = 1;
  o.model_cache = cache;
  return o;
}

/// One request asking for a 2-point capacity sweep of the inline kGood.
std::string good_request(int id) {
  util::JsonWriter w;
  w.begin_object();
  w.key("id").value(static_cast<int64_t>(id));
  w.key("name").value("alpha");
  w.key("source").value(kGood);
  w.key("axes").begin_object();
  w.key("capacity").value("1024,4096");
  w.end_object();
  w.end_object();
  return w.take();
}

struct ServeRun {
  util::Status status;
  std::vector<std::string> lines;
  std::vector<util::JsonValue> rows;
};

ServeRun run_serve(const std::string& requests, const ServeOptions& opts) {
  ServeRun r;
  std::istringstream in(requests);
  std::ostringstream out;
  r.status = serve_loop(in, out, opts);
  std::istringstream split(out.str());
  std::string line;
  while (std::getline(split, line)) {
    r.lines.push_back(line);
    util::JsonValue v;
    std::string err;
    EXPECT_TRUE(util::parse_json(line, &v, &err)) << line << ": " << err;
    r.rows.push_back(std::move(v));
  }
  return r;
}

std::string kind(const util::JsonValue& v) {
  const util::JsonValue* k = v.find("kind");
  return k != nullptr && k->is_string() ? k->str : "";
}

TEST(Serve, StreamsSweepBetweenAckAndDoneRows) {
  const ServeRun r = run_serve(good_request(7) + "\n", serve_opts());
  EXPECT_TRUE(r.status.ok()) << r.status.message();
  // ack, sweep header, 2 points, program pareto, aggregate pareto, done.
  ASSERT_EQ(r.rows.size(), 7u);
  EXPECT_EQ(kind(r.rows[0]), "request");
  EXPECT_EQ(kind(r.rows[1]), "sweep");
  EXPECT_EQ(kind(r.rows[2]), "point");
  EXPECT_EQ(kind(r.rows[3]), "point");
  EXPECT_EQ(kind(r.rows[4]), "pareto");
  EXPECT_EQ(kind(r.rows[5]), "pareto");
  EXPECT_EQ(kind(r.rows[6]), "done");

  // The ack names the job and grid size; the done row carries ok:true.
  const util::JsonValue* programs = r.rows[0].find("programs");
  ASSERT_NE(programs, nullptr);
  ASSERT_EQ(programs->items.size(), 1u);
  EXPECT_EQ(programs->items[0].str, "alpha");
  EXPECT_EQ(r.rows[0].find("points")->num, 2.0);
  EXPECT_EQ(r.rows[0].find("id")->num, 7.0);
  EXPECT_TRUE(r.rows[6].find("ok")->b);
  for (size_t i = 2; i <= 3; ++i) {
    EXPECT_TRUE(r.rows[i].find("ok")->b) << i;
    EXPECT_EQ(r.rows[i].find("program")->str, "alpha") << i;
  }
}

TEST(Serve, BadRequestsGetErrorRowsAndTheLoopSurvives) {
  // Four broken requests then one good one: the loop must answer all
  // five and exit ok at EOF.
  const std::string requests =
      "this is not json\n"
      "[1,2,3]\n"
      "{\"id\":2,\"axes\":{\"capacity\":\"bogus\"}}\n"
      "{\"id\":3,\"program\":\"no-such-kernel\"}\n" +
      good_request(4) + "\n";
  std::istringstream in(requests);
  std::ostringstream out;
  const util::Status st = serve_loop(in, out, serve_opts());
  EXPECT_TRUE(st.ok()) << st.message();

  std::vector<util::JsonValue> rows;
  std::istringstream split(out.str());
  std::string line;
  while (std::getline(split, line)) {
    util::JsonValue v;
    std::string err;
    ASSERT_TRUE(util::parse_json(line, &v, &err)) << line << ": " << err;
    rows.push_back(std::move(v));
  }

  // Row 0: bad JSON — a done row keyed by input line, not id.
  ASSERT_GE(rows.size(), 2u);
  EXPECT_EQ(kind(rows[0]), "done");
  EXPECT_FALSE(rows[0].find("ok")->b);
  EXPECT_EQ(rows[0].find("error_class")->str, "invalid_input");
  ASSERT_NE(rows[0].find("line"), nullptr);
  EXPECT_EQ(rows[0].find("line")->num, 1.0);
  EXPECT_EQ(rows[0].find("id"), nullptr);

  // Row 1: a JSON array is not a request object.
  EXPECT_EQ(kind(rows[1]), "done");
  EXPECT_FALSE(rows[1].find("ok")->b);
  EXPECT_EQ(rows[1].find("line")->num, 2.0);

  // id 2: bad axis value, classified invalid_input, echoing the id.
  int done_rows = 0;
  for (const auto& row : rows) {
    if (kind(row) == "done") ++done_rows;
  }
  EXPECT_EQ(done_rows, 5);
  const util::JsonValue* bad_axis = nullptr;
  const util::JsonValue* bad_prog = nullptr;
  const util::JsonValue* good = nullptr;
  for (const auto& row : rows) {
    if (kind(row) != "done") continue;
    const util::JsonValue* id = row.find("id");
    if (id == nullptr || !id->is_number()) continue;
    if (id->num == 2.0) bad_axis = &row;
    if (id->num == 3.0) bad_prog = &row;
    if (id->num == 4.0) good = &row;
  }
  ASSERT_NE(bad_axis, nullptr);
  EXPECT_FALSE(bad_axis->find("ok")->b);
  EXPECT_EQ(bad_axis->find("error_class")->str, "invalid_input");
  EXPECT_NE(bad_axis->find("error")->str.find("bogus"), std::string::npos);
  ASSERT_NE(bad_prog, nullptr);
  EXPECT_EQ(bad_prog->find("error_class")->str, "invalid_input");
  EXPECT_NE(bad_prog->find("error")->str.find("no-such-kernel"),
            std::string::npos);
  // ...and the good request after them still ran to completion.
  ASSERT_NE(good, nullptr);
  EXPECT_TRUE(good->find("ok")->b);
}

TEST(Serve, AdmissionControlRefusesOversizedGrids) {
  ServeOptions opts = serve_opts();
  opts.max_points = 1;  // the good request expands to 2 points
  std::istringstream in(good_request(9) + "\n");
  std::ostringstream out;
  ASSERT_TRUE(serve_loop(in, out, opts).ok());

  // Refused before any work: exactly one response row, the done row.
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  std::string line;
  while (std::getline(split, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1u);
  util::JsonValue row;
  std::string err;
  ASSERT_TRUE(util::parse_json(lines[0], &row, &err)) << err;
  EXPECT_EQ(kind(row), "done");
  EXPECT_FALSE(row.find("ok")->b);
  EXPECT_EQ(row.find("error_class")->str, "resource_exhausted");
  EXPECT_EQ(row.find("phase")->str, "serve-admission");
}

TEST(Serve, PerRequestBudgetTripsAsResourceExhausted) {
  util::JsonWriter w;
  w.begin_object();
  w.key("id").value(static_cast<int64_t>(1));
  w.key("source").value(kGood);
  w.key("budget").begin_object();
  w.key("max_steps").value(static_cast<int64_t>(50));
  w.end_object();
  w.end_object();
  std::istringstream in(w.take() + "\n");
  std::ostringstream out;
  ASSERT_TRUE(serve_loop(in, out, serve_opts()).ok());

  // Phase I trips the 50-step budget; the point rows and the done row
  // all report resource_exhausted, and the loop is ready for the next
  // request.
  bool saw_failed_point = false;
  bool saw_done = false;
  std::istringstream split(out.str());
  std::string line;
  while (std::getline(split, line)) {
    util::JsonValue row;
    std::string err;
    ASSERT_TRUE(util::parse_json(line, &row, &err)) << line << ": " << err;
    if (kind(row) == "point" && !row.find("ok")->b) {
      saw_failed_point = true;
      EXPECT_EQ(row.find("error_class")->str, "resource_exhausted");
    }
    if (kind(row) == "done") {
      saw_done = true;
      EXPECT_FALSE(row.find("ok")->b);
      EXPECT_EQ(row.find("error_class")->str, "resource_exhausted");
    }
  }
  EXPECT_TRUE(saw_failed_point);
  EXPECT_TRUE(saw_done);
}

TEST(Serve, StaticAdmissionRefusesProvablyOverBudgetRequests) {
  util::JsonWriter w;
  w.begin_object();
  w.key("id").value(static_cast<int64_t>(1));
  w.key("name").value("big");
  w.key("source").value(kGood);
  w.key("budget").begin_object();
  w.key("max_records").value(static_cast<int64_t>(10));
  w.end_object();
  w.end_object();

  ServeOptions opts = serve_opts();
  opts.static_admission = true;
  const ServeRun r = run_serve(w.take() + "\n", opts);
  EXPECT_TRUE(r.status.ok()) << r.status.message();

  // The static record floor of kGood is far above 10, so the refusal is
  // the ONLY output: no ack, no sweep rows — nothing ran.
  ASSERT_EQ(r.rows.size(), 1u) << r.lines[0];
  EXPECT_EQ(kind(r.rows[0]), "done");
  EXPECT_FALSE(r.rows[0].find("ok")->b);
  EXPECT_EQ(r.rows[0].find("error_class")->str, "resource_exhausted");
  EXPECT_EQ(r.rows[0].find("phase")->str, "lint-admission");
  EXPECT_NE(r.rows[0].find("error")->str.find("static bound"),
            std::string::npos);
}

TEST(Serve, StaticAdmissionKeepsAdmittedResponsesByteIdentical) {
  // A request the checker admits must produce the exact same byte stream
  // whether the gate is on or off — admission is a pure filter.
  const std::string requests = good_request(3) + "\n";
  std::istringstream in_off(requests);
  std::istringstream in_on(requests);
  std::ostringstream out_off;
  std::ostringstream out_on;
  ServeOptions gated = serve_opts();
  gated.static_admission = true;
  ASSERT_TRUE(serve_loop(in_off, out_off, serve_opts()).ok());
  ASSERT_TRUE(serve_loop(in_on, out_on, gated).ok());
  EXPECT_EQ(out_on.str(), out_off.str());
}

TEST(Serve, InvalidBudgetAndUnknownFieldsAreRejected) {
  const std::string requests =
      "{\"id\":1,\"source\":\"int main(void){return 0;}\","
      "\"budget\":{\"max_steps\":-5}}\n"
      "{\"id\":2,\"source\":\"int main(void){return 0;}\","
      "\"budget\":{\"warp_speed\":1}}\n"
      "{\"id\":3,\"frobnicate\":true}\n"
      "{\"id\":4,\"threads\":0}\n";
  std::istringstream in(requests);
  std::ostringstream out;
  ASSERT_TRUE(serve_loop(in, out, serve_opts()).ok());
  std::istringstream split(out.str());
  std::string line;
  int done_rows = 0;
  while (std::getline(split, line)) {
    util::JsonValue row;
    std::string err;
    ASSERT_TRUE(util::parse_json(line, &row, &err)) << err;
    ASSERT_EQ(kind(row), "done") << line;
    ++done_rows;
    EXPECT_FALSE(row.find("ok")->b);
    EXPECT_EQ(row.find("error_class")->str, "invalid_input");
  }
  EXPECT_EQ(done_rows, 4);
}

TEST(Serve, ModelCacheMakesRepeatRequestsPurePhaseTwo) {
  ModelCache cache(ModelCacheOptions{/*dir=*/"", /*memory=*/true});
  const std::string requests =
      good_request(1) + "\n" + good_request(2) + "\n";
  std::istringstream in(requests);
  std::ostringstream out;
  ASSERT_TRUE(serve_loop(in, out, serve_opts(&cache)).ok());

  const ModelCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);       // request 1 extracted
  EXPECT_EQ(s.hits, 1u);         // request 2 reused it
  EXPECT_EQ(s.memory_hits, 1u);  // without touching disk

  // And the two responses' sweep bodies are byte-identical: extract the
  // lines between each ack and done row and compare.
  std::vector<std::vector<std::string>> bodies;
  std::istringstream split(out.str());
  std::string line;
  while (std::getline(split, line)) {
    if (line.find("\"kind\":\"request\"") != std::string::npos) {
      bodies.emplace_back();
    } else if (line.find("\"kind\":\"done\"") != std::string::npos) {
      continue;
    } else if (!bodies.empty()) {
      bodies.back().push_back(line);
    }
  }
  ASSERT_EQ(bodies.size(), 2u);
  EXPECT_EQ(bodies[0], bodies[1]);
  EXPECT_FALSE(bodies[0].empty());
}

/// An ostream whose buffer accepts `budget` bytes, then fails forever —
/// the shape of a client that disconnected mid-response.
class FailAfterBuf : public std::streambuf {
 public:
  explicit FailAfterBuf(size_t budget) : budget_(budget) {}
  const std::string& written() const { return written_; }

 protected:
  int overflow(int ch) override {
    if (budget_ == 0) return traits_type::eof();
    --budget_;
    written_ += static_cast<char>(ch);
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    const std::streamsize take =
        std::min<std::streamsize>(n, static_cast<std::streamsize>(budget_));
    written_.append(s, static_cast<size_t>(take));
    budget_ -= static_cast<size_t>(take);
    return take;
  }

 private:
  size_t budget_;
  std::string written_;
};

TEST(Serve, DisconnectedClientEndsTheLoopWithIoError) {
  FailAfterBuf sink(64);  // enough for the ack, not the sweep
  std::ostream out(&sink);
  std::istringstream in(good_request(1) + "\n" + good_request(2) + "\n");
  const util::Status st = serve_loop(in, out, serve_opts());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kIoError);
  EXPECT_EQ(st.phase(), "serve");
  // The loop died on the first request; the second was never served.
  EXPECT_EQ(sink.written().find("\"id\":2"), std::string::npos);
}

}  // namespace
}  // namespace foray::driver
