// Execution budgets (sim/budget.h): the step guard, the record budget,
// the wall-clock deadline and cooperative cancellation, on both engines
// and through every parallel extraction mode.
//
// The load-bearing contract is "budget plus one chunk": record/deadline/
// cancel checks run at trace-chunk boundaries (check-after-delivery), so
// a faulted run overshoots those budgets by at most RunOptions::
// chunk_records records — and the epilogue flush can never throw. The
// step guard is per-instruction and exact, which is what bounds a
// record-free spin loop.
#include <gtest/gtest.h>

#include "foray/pipeline.h"
#include "instrument/annotator.h"
#include "minic/parser.h"
#include "sim/interpreter.h"
#include "trace/sink.h"
#include "util/status.h"

namespace foray::sim {
namespace {

// Non-terminating, with data traffic on every iteration — the record
// budget and the deadline both get chunk boundaries to trip at.
const char* kSpinWithTraffic =
    "int buf[256];\n"
    "int main(void) {\n"
    "  int i = 0;\n"
    "  while (1) { buf[i & 255] = i; i = i + 1; }\n"
    "  return 0;\n"
    "}\n";

// Non-terminating and record-free: only the step guard can stop it.
const char* kPureSpin =
    "int main(void) {\n"
    "  int i = 0;\n"
    "  while (1) { i = i + 1; }\n"
    "  return 0;\n"
    "}\n";

struct Capture {
  RunResult result;
  size_t records = 0;
};

Capture run_src(std::string_view src, RunOptions opts) {
  util::DiagList diags;
  auto prog = minic::parse_and_check(src, &diags);
  EXPECT_NE(prog, nullptr) << diags.str();
  Capture out;
  if (!prog) return out;
  instrument::annotate_loops(prog.get());
  trace::VectorSink sink;
  out.result = run_program(*prog, &sink, opts);
  out.records = sink.records().size();
  return out;
}

const Engine kEngines[] = {Engine::Ast, Engine::Bytecode, Engine::Jit};

TEST(Budget, DefaultsBoundStepsButNothingElse) {
  Budget b;
  EXPECT_EQ(b.effective_max_steps(), 500'000'000u);
  EXPECT_FALSE(b.has_deadline());
  EXPECT_FALSE(b.chunk_checked());
  b.max_steps = 0;
  EXPECT_EQ(b.effective_max_steps(), UINT64_MAX);
}

TEST(Budget, StepGuardStopsPureSpinOnBothEngines) {
  for (Engine engine : kEngines) {
    RunOptions opts;
    opts.engine = engine;
    opts.budget.max_steps = 50'000;
    Capture c = run_src(kPureSpin, opts);
    EXPECT_EQ(c.result.status.code(), util::ErrorCode::kResourceExhausted)
        << c.result.status.message();
    // The step guard is exact: the engine stops on the first step past
    // the limit.
    EXPECT_LE(c.result.steps, opts.budget.max_steps + 1);
  }
}

TEST(Budget, RecordBudgetAtExactChunkBoundary) {
  for (Engine engine : kEngines) {
    RunOptions opts;
    opts.engine = engine;
    opts.chunk_records = 64;
    opts.budget.max_records = 64;  // trips on the very first flush
    Capture c = run_src(kSpinWithTraffic, opts);
    EXPECT_EQ(c.result.status.code(), util::ErrorCode::kResourceExhausted)
        << c.result.status.message();
    // Check-after-delivery: the chunk that crossed the budget is already
    // in the sink, and nothing after it.
    EXPECT_EQ(c.records, 64u);
  }
}

TEST(Budget, RecordBudgetMidChunkOvershootsByAtMostOneChunk) {
  for (Engine engine : kEngines) {
    RunOptions opts;
    opts.engine = engine;
    opts.chunk_records = 64;
    opts.budget.max_records = 100;  // not a chunk multiple
    Capture c = run_src(kSpinWithTraffic, opts);
    EXPECT_EQ(c.result.status.code(), util::ErrorCode::kResourceExhausted)
        << c.result.status.message();
    EXPECT_GE(c.records, opts.budget.max_records);
    EXPECT_LE(c.records, opts.budget.max_records + opts.chunk_records);
  }
}

TEST(Budget, DeadlineTripsOnBothEngines) {
  for (Engine engine : kEngines) {
    RunOptions opts;
    opts.engine = engine;
    opts.chunk_records = 64;
    // Already expired at the first chunk check; the run still delivers
    // the chunk it was filling (budget plus one chunk).
    opts.budget.timeout_seconds = 1e-9;
    Capture c = run_src(kSpinWithTraffic, opts);
    EXPECT_EQ(c.result.status.code(), util::ErrorCode::kDeadlineExceeded)
        << c.result.status.message();
    EXPECT_LE(c.records, opts.chunk_records);
  }
}

TEST(Budget, CancellationTripsAsCancelled) {
  for (Engine engine : kEngines) {
    RunOptions opts;
    opts.engine = engine;
    opts.chunk_records = 64;
    opts.budget.cancel = std::make_shared<CancelToken>();
    opts.budget.cancel->cancel();  // pre-cancelled: first check trips
    Capture c = run_src(kSpinWithTraffic, opts);
    EXPECT_EQ(c.result.status.code(), util::ErrorCode::kCancelled)
        << c.result.status.message();
    EXPECT_LE(c.records, opts.chunk_records);
  }
}

TEST(Budget, UnbudgetedRunIsUnaffected) {
  const char* kOk =
      "int a[16];\n"
      "int main(void) {\n"
      "  for (int i = 0; i < 16; i++) a[i] = i;\n"
      "  return a[3];\n"
      "}\n";
  for (Engine engine : kEngines) {
    RunOptions opts;
    opts.engine = engine;
    Capture c = run_src(kOk, opts);
    EXPECT_TRUE(c.result.ok()) << c.result.status.message();
    EXPECT_EQ(c.result.exit_code, 3);
  }
}

// -- budgets through the pipeline's parallel extraction modes ----------------
//
// The acceptance bar: a non-terminating program under --max-steps /
// --timeout fails with the right class in every mode, not just the
// plain online run.

core::PipelineOptions mode_opts(int mode, Engine engine) {
  core::PipelineOptions opts;
  opts.run.engine = engine;
  opts.filter.min_exec = 1;
  opts.filter.min_locations = 1;
  switch (mode) {
    case 0: break;                            // online
    case 1: opts.offline = true; break;       // --offline
    case 2: opts.profile_shards = 2; break;   // --shards 2
    case 3: opts.profile_pipeline = true; break;   // --pipeline
    case 4: opts.profile_timeshards = 2; break;    // --timeshards 2
  }
  return opts;
}

TEST(Budget, StepBudgetFaultsEveryExtractionMode) {
  for (Engine engine : kEngines) {
    for (int mode = 0; mode < 5; ++mode) {
      core::PipelineOptions opts = mode_opts(mode, engine);
      opts.run.budget.max_steps = 50'000;
      auto res = core::run_pipeline(kSpinWithTraffic, opts);
      EXPECT_FALSE(res.ok()) << "mode " << mode;
      EXPECT_EQ(res.status.code(), util::ErrorCode::kResourceExhausted)
          << "mode " << mode << ": " << res.status.message();
    }
  }
}

TEST(Budget, DeadlineFaultsEveryExtractionMode) {
  for (Engine engine : kEngines) {
    for (int mode = 0; mode < 5; ++mode) {
      core::PipelineOptions opts = mode_opts(mode, engine);
      opts.run.chunk_records = 64;
      opts.run.budget.timeout_seconds = 1e-9;
      auto res = core::run_pipeline(kSpinWithTraffic, opts);
      EXPECT_FALSE(res.ok()) << "mode " << mode;
      EXPECT_EQ(res.status.code(), util::ErrorCode::kDeadlineExceeded)
          << "mode " << mode << ": " << res.status.message();
    }
  }
}

}  // namespace
}  // namespace foray::sim
