#include <gtest/gtest.h>

#include "instrument/annotator.h"
#include "minic/parser.h"
#include "minic/printer.h"

namespace foray::minic {
namespace {

/// Round-trip helper: parse, print, re-parse; returns the reprint.
std::string reprint(std::string_view src) {
  util::DiagList diags;
  auto p = parse_and_check(src, &diags);
  EXPECT_NE(p, nullptr) << diags.str();
  if (!p) return {};
  return print_program(*p);
}

TEST(Printer, RoundTripIsStable) {
  const char* src =
      "char q[10000];\n"
      "int main(void) {\n"
      "  char *ptr = q;\n"
      "  int i;\n"
      "  int t1 = 98;\n"
      "  while (t1 < 100) {\n"
      "    t1++;\n"
      "    ptr += 100;\n"
      "    for (i = 40; i > 37; i--) {\n"
      "      *ptr++ = (i * i) % 256;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  std::string once = reprint(src);
  ASSERT_FALSE(once.empty());
  std::string twice = reprint(once);
  EXPECT_EQ(once, twice);  // printing is a fixed point after one pass
}

TEST(Printer, PrintedProgramReparsesAndRechecks) {
  const char* src =
      "int tab[4] = {1, 2, 3, 4};\n"
      "float scale = 0.5f;\n"
      "int foo(int a, int *p) { return a + p[0]; }\n"
      "int main(void) {\n"
      "  int acc = 0;\n"
      "  for (int i = 0; i < 4; i++) acc += foo(tab[i], tab);\n"
      "  do { acc--; } while (acc > 100);\n"
      "  return acc > 0 ? acc : -acc;\n"
      "}\n";
  std::string printed = reprint(src);
  util::DiagList diags;
  auto p2 = parse_and_check(printed, &diags);
  EXPECT_NE(p2, nullptr) << diags.str() << "\nprinted was:\n" << printed;
}

TEST(Printer, ExprFormatting) {
  util::DiagList diags;
  auto p = parse_and_check("int x = 1 + 2 * 3;\nint main(void){return x;}",
                           &diags);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(print_expr(*p->globals[0].init), "1 + (2 * 3)");
}

TEST(Printer, StringEscapes) {
  util::DiagList diags;
  auto p = parse_and_check(
      "int main(void) { printf(\"a\\n\\t\\\"b\\\"\"); return 0; }", &diags);
  ASSERT_NE(p, nullptr) << diags.str();
  std::string printed = print_program(*p);
  EXPECT_NE(printed.find("\"a\\n\\t\\\"b\\\"\""), std::string::npos);
  // And the printed text must re-lex correctly.
  util::DiagList diags2;
  EXPECT_NE(parse_and_check(printed, &diags2), nullptr) << diags2.str();
}

TEST(Printer, AnnotatedViewShowsCheckpoints) {
  util::DiagList diags;
  auto p = parse_and_check(
      "int main(void) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < 3; i++) s += i;\n"
      "  while (s > 0) s--;\n"
      "  return s;\n"
      "}\n",
      &diags);
  ASSERT_NE(p, nullptr) << diags.str();
  auto table = instrument::annotate_loops(p.get());
  ASSERT_EQ(table.count(), 2);
  PrintOptions opts;
  opts.annotate_checkpoints = true;
  std::string s = print_program(*p, opts);
  EXPECT_NE(s.find("CHECKPOINT(loop_enter, 0)"), std::string::npos);
  EXPECT_NE(s.find("CHECKPOINT(body_begin, 0)"), std::string::npos);
  EXPECT_NE(s.find("CHECKPOINT(body_end, 0)"), std::string::npos);
  EXPECT_NE(s.find("CHECKPOINT(loop_exit, 1)"), std::string::npos);
}

TEST(Printer, UnannotatedViewHasNoCheckpoints) {
  util::DiagList diags;
  auto p = parse_and_check(
      "int main(void) { for (int i = 0; i < 3; i++) {} return 0; }", &diags);
  ASSERT_NE(p, nullptr);
  instrument::annotate_loops(p.get());
  EXPECT_EQ(print_program(*p).find("CHECKPOINT"), std::string::npos);
}

TEST(Printer, DoWhileAnnotation) {
  util::DiagList diags;
  auto p = parse_and_check(
      "int main(void) { int x = 3; do { x--; } while (x); return x; }",
      &diags);
  ASSERT_NE(p, nullptr);
  instrument::annotate_loops(p.get());
  PrintOptions opts;
  opts.annotate_checkpoints = true;
  std::string s = print_program(*p, opts);
  EXPECT_NE(s.find("do"), std::string::npos);
  EXPECT_NE(s.find("CHECKPOINT(loop_enter, 0)"), std::string::npos);
  // The annotated program structure matches the paper's Figure 4(b) shape:
  // enter checkpoint before the loop, body checkpoints inside.
  EXPECT_LT(s.find("CHECKPOINT(loop_enter, 0)"),
            s.find("CHECKPOINT(body_begin, 0)"));
  EXPECT_LT(s.find("CHECKPOINT(body_begin, 0)"),
            s.find("CHECKPOINT(body_end, 0)"));
}

TEST(Printer, CastAndTernaryPrint) {
  util::DiagList diags;
  auto p = parse_and_check(
      "int main(void) { float f = 2.5f; int x = (int)f; "
      "return x > 0 ? x : 0; }",
      &diags);
  ASSERT_NE(p, nullptr);
  std::string s = print_program(*p);
  EXPECT_NE(s.find("(int)"), std::string::npos);
  EXPECT_NE(s.find("?"), std::string::npos);
  util::DiagList diags2;
  EXPECT_NE(parse_and_check(s, &diags2), nullptr) << diags2.str() << s;
}

TEST(Printer, PointerTypesPrint) {
  util::DiagList diags;
  auto p = parse_and_check(
      "int **pp; int main(void) { return 0; }", &diags);
  ASSERT_NE(p, nullptr);
  EXPECT_NE(print_program(*p).find("int** pp"), std::string::npos);
}

}  // namespace
}  // namespace foray::minic
