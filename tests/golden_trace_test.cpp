// Golden-trace regression tests.
//
// Checked-in binary fixtures (tests/golden/<kernel>.trace) hold the
// first 4096 trace records of three benchsuite kernels, serialized with
// trace::io's binary encoding. Both execution engines must reproduce
// the fixtures byte for byte — this pins the concrete record stream
// (instruction addresses, data addresses, sizes, kinds, checkpoint
// placement) against *any* regression, not just cross-engine drift:
// a change to memory layout, node-id assignment, or emission order
// fails here even if both engines change in lockstep.
//
// Regenerate after an intentional trace-format change with:
//   FORAY_UPDATE_GOLDEN=1 ./golden_trace_test
// (the fixtures are written from the AST reference engine; the same run
// then re-asserts that the bytecode engine matches them).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "benchsuite/suite.h"
#include "instrument/annotator.h"
#include "minic/parser.h"
#include "sim/interp_impl.h"
#include "trace/io.h"
#include "trace/sink.h"

namespace foray {
namespace {

constexpr size_t kGoldenRecords = 4096;
const char* const kKernels[] = {"adpcm", "gsm", "jpeg"};

std::string fixture_path(const std::string& kernel) {
  return std::string(FORAY_SOURCE_DIR) + "/tests/golden/" + kernel +
         ".trace";
}

/// Runs `kernel` on the given engine and returns its first 4096 records
/// serialized in the trace::io binary encoding.
std::string golden_bytes(const std::string& kernel, sim::Engine engine) {
  util::DiagList diags;
  auto prog =
      minic::parse_and_check(benchsuite::get_benchmark(kernel).source,
                             &diags);
  EXPECT_NE(prog, nullptr) << diags.str();
  if (!prog) return "";
  instrument::annotate_loops(prog.get());
  sim::RunOptions opts;
  opts.engine = engine;
  trace::VectorSink sink;
  auto run = sim::run_program_with(*prog, &sink, opts);
  EXPECT_TRUE(run.ok()) << run.error();
  auto records = sink.take();
  EXPECT_GE(records.size(), kGoldenRecords) << kernel;
  std::ostringstream os;
  trace::write_binary(os, records.data(),
                      std::min(records.size(), kGoldenRecords));
  return os.str();
}

std::string read_fixture(const std::string& kernel) {
  std::ifstream in(fixture_path(kernel), std::ios::binary);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool update_requested() {
  return std::getenv("FORAY_UPDATE_GOLDEN") != nullptr;
}

TEST(GoldenTrace, BothEnginesReproduceTheFixturesByteForByte) {
  for (const char* kernel : kKernels) {
    const std::string ast = golden_bytes(kernel, sim::Engine::Ast);
    ASSERT_FALSE(ast.empty()) << kernel;

    if (update_requested()) {
      std::ofstream out(fixture_path(kernel), std::ios::binary);
      ASSERT_TRUE(out.good()) << "cannot write " << fixture_path(kernel);
      out << ast;
    }

    const std::string fixture = read_fixture(kernel);
    ASSERT_FALSE(fixture.empty())
        << "missing fixture " << fixture_path(kernel)
        << " — regenerate with FORAY_UPDATE_GOLDEN=1";
    EXPECT_EQ(fixture.size(), ast.size()) << kernel;
    EXPECT_TRUE(fixture == ast)
        << kernel << ": AST engine trace deviates from the checked-in "
        << "golden fixture";

    const std::string bc = golden_bytes(kernel, sim::Engine::Bytecode);
    EXPECT_TRUE(fixture == bc)
        << kernel << ": bytecode engine trace deviates from the "
        << "checked-in golden fixture";
  }
}

TEST(GoldenTrace, FixturesRoundTripThroughTraceIo) {
  for (const char* kernel : kKernels) {
    const std::string fixture = read_fixture(kernel);
    ASSERT_FALSE(fixture.empty()) << fixture_path(kernel);
    std::istringstream is(fixture);
    std::vector<trace::Record> records;
    util::Status st = trace::read_binary(is, &records);
    ASSERT_TRUE(st.ok()) << st.message();
    ASSERT_EQ(records.size(), kGoldenRecords) << kernel;
    std::ostringstream os;
    trace::write_binary(os, records.data(), records.size());
    EXPECT_TRUE(os.str() == fixture) << kernel;
  }
}

}  // namespace
}  // namespace foray
