// Transform-replay validation: the Phase II exit check (spm/replay.h).
//
// The heart of this suite executes the transformed program Phase II
// emits for every benchsuite kernel — through the full front end and
// both execution engines — and locks the SPM / main-memory / transfer
// traffic it actually generates to the analytic counters the DSE was
// solved with. Any fill, write-back, sliding-window or rebasing slip in
// either the emitter or the analytic model is a concrete counter
// mismatch here.
//
// Also here:
//  - golden fixtures for the transformed source of adpcm/gsm/jpeg
//    (tests/golden/<kernel>.transformed.mc; regenerate intentional
//    changes with FORAY_UPDATE_GOLDEN=1),
//  - the global address map locked against real trace addresses from
//    both engines (sim::global_regions is the third copy of the
//    allocation rule),
//  - regression pins for the sliding-window write-back emission, the
//    partial-nest (re-run) scaling of sliding fill runs, and the
//    degenerate-geometry guards in the reuse analysis and the DP.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "benchsuite/generator.h"
#include "benchsuite/suite.h"
#include "foray/pipeline.h"
#include "instrument/annotator.h"
#include "minic/parser.h"
#include "sim/classify_sink.h"
#include "sim/interp_impl.h"
#include "spm/replay.h"
#include "spm/reuse.h"
#include "trace/sink.h"

namespace foray::spm {
namespace {

constexpr uint32_t kCapacities[] = {1024, 4096, 16384};
constexpr sim::Engine kEngines[] = {sim::Engine::Bytecode,
                                    sim::Engine::Ast};

const char* engine_name(sim::Engine e) {
  return e == sim::Engine::Bytecode ? "bytecode" : "ast";
}

core::ModelReference make_ref(std::vector<int64_t> coefs,
                              std::vector<int64_t> trips, bool write,
                              uint64_t nest_reruns = 1) {
  core::ModelReference r;
  r.instr = 0x400200;
  r.fn.const_term = 0x10000000;
  r.fn.coefs = std::move(coefs);
  r.fn.known.assign(r.fn.coefs.size(), true);
  r.fn.m = static_cast<int>(r.fn.coefs.size());
  r.trips = std::move(trips);
  for (size_t i = 0; i < r.trips.size(); ++i) {
    r.loop_path.push_back(static_cast<int>(i));
  }
  r.access_size = 4;
  r.has_write = write;
  r.has_read = !write;
  r.exec_count = nest_reruns;
  for (int64_t t : r.trips) {
    r.exec_count *= static_cast<uint64_t>(std::max<int64_t>(t, 0));
  }
  r.footprint = r.exec_count;
  return r;
}

/// Replays the level-`level` buffer of a one-reference model.
ReplayReport replay_one(core::ForayModel model, int level,
                        sim::Engine engine = sim::Engine::Bytecode) {
  Selection sel;
  sel.chosen.push_back(candidate_at(model.refs[0], 0, level));
  sel.bytes_used = sel.chosen[0].size_bytes;
  ReplayOptions opts;
  opts.run.engine = engine;
  return replay_selection(model, sel, opts);
}

// ---------------------------------------------------------------------------
// The lock: benchsuite x capacities x engines.

TEST(TransformReplay, BenchsuiteLocksAnalyticToSimulatedCounters) {
  for (sim::Engine engine : kEngines) {
    for (const auto& bench : benchsuite::all_benchmarks()) {
      core::PipelineOptions opts;
      opts.run.engine = engine;
      opts.with_spm = true;
      auto res = core::run_pipeline(bench.source, opts);
      ASSERT_TRUE(res.ok()) << bench.name << ": " << res.error();

      for (uint32_t cap : kCapacities) {
        core::SpmPhaseOptions sopts = opts.spm;
        sopts.dse.spm_capacity = cap;
        ASSERT_TRUE(core::spm_phase(sopts, &res).ok()) << bench.name;
        ASSERT_TRUE(core::spm_replay_phase(opts, &res).ok())
            << bench.name << " @" << cap << " (" << engine_name(engine)
            << "): " << res.error();
        const ReplayReport& rep = res.replay;
        ASSERT_TRUE(rep.ran);
        EXPECT_EQ(rep.unclassified_accesses, 0u)
            << bench.name << " @" << cap;
        EXPECT_TRUE(rep.matches())
            << bench.name << " @" << cap << " (" << engine_name(engine)
            << "):\n"
            << describe_replay_report(rep, res.model);

        // The simulated counters equal the analytic ones on the
        // geometry the emitted program materializes...
        EXPECT_EQ(rep.sim_spm_accesses, rep.ana_spm_accesses);
        EXPECT_EQ(rep.sim_main_accesses, rep.ana_main_accesses);
        EXPECT_EQ(rep.sim_transfer_words, rep.ana_transfer_words);
        // ...and verbatim the evaluate_selection counters whenever the
        // profiled model is rectangular (every exec count equals its
        // trip product). jpeg, susan and adpcm are; pin that so the
        // verbatim form of the lock cannot silently erode.
        if (rep.rectangular) {
          EXPECT_EQ(rep.sim_spm_accesses, rep.model_spm_accesses);
          EXPECT_EQ(rep.sim_main_accesses, rep.model_main_accesses);
          EXPECT_EQ(rep.sim_transfer_words, rep.model_transfer_words);
        }
        if (bench.name == "jpeg" || bench.name == "susan" ||
            bench.name == "adpcm") {
          EXPECT_TRUE(rep.rectangular) << bench.name;
        }
      }
    }
  }
}

TEST(TransformReplay, RunPipelineWithReplayRunsEndToEnd) {
  core::PipelineOptions opts;
  opts.with_replay = true;  // implies the SpmPhase
  auto res = core::run_pipeline(benchsuite::get_benchmark("susan").source,
                                opts);
  ASSERT_TRUE(res.ok()) << res.error();
  ASSERT_TRUE(res.spm_ran);
  ASSERT_TRUE(res.replay_ran);
  EXPECT_TRUE(res.replay.matches())
      << describe_replay_report(res.replay, res.model);
  // susan's selection is the paper-flavored interesting case: one
  // sliding-window buffer. Make sure the lock is not vacuous.
  ASSERT_FALSE(res.spm.exact.chosen.empty());
  EXPECT_TRUE(res.spm.exact.chosen[0].sliding_window);
  EXPECT_GT(res.replay.sim_spm_accesses, 0u);
  EXPECT_GT(res.replay.sim_transfer_words, 0u);
}

// ---------------------------------------------------------------------------
// Seeded affine-generator programs: the same lock over a randomized
// family (pointer walks, varying depths and strides), where write
// references dominate — the write-back paths the benchsuite selections
// exercise only lightly.

TEST(TransformReplay, GeneratorProgramsLockAcrossSeeds) {
  int with_buffers = 0, with_sliding = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    benchsuite::GeneratorOptions gopts;
    gopts.seed = seed;
    auto gen = benchsuite::generate_affine_program(gopts);
    for (uint32_t cap : {512u, 2048u}) {
      core::PipelineOptions opts;
      opts.with_replay = true;
      opts.spm.dse.spm_capacity = cap;
      opts.filter.min_exec = 1;
      opts.filter.min_locations = 1;
      auto res = core::run_pipeline(gen.source, opts);
      ASSERT_TRUE(res.ok()) << "seed " << seed << ": " << res.error();
      ASSERT_TRUE(res.replay_ran);
      EXPECT_TRUE(res.replay.matches())
          << "seed " << seed << " @" << cap << ":\n"
          << describe_replay_report(res.replay, res.model);
      if (!res.spm.exact.chosen.empty()) ++with_buffers;
      for (const auto& c : res.spm.exact.chosen) {
        if (c.sliding_window) {
          ++with_sliding;
          break;
        }
      }
    }
  }
  // The family must actually exercise the machinery.
  EXPECT_GE(with_buffers, 4);
  EXPECT_GE(with_sliding, 2);
}

// ---------------------------------------------------------------------------
// Golden fixtures: the emitted transformed source of three kernels at
// 4096B, byte-for-byte. Emitter drift becomes a reviewable diff;
// regenerate intentional changes with FORAY_UPDATE_GOLDEN=1.

std::string transformed_fixture_path(const std::string& kernel) {
  return std::string(FORAY_SOURCE_DIR) + "/tests/golden/" + kernel +
         ".transformed.mc";
}

TEST(TransformReplay, TransformedSourceMatchesGoldenFixtures) {
  for (const char* kernel : {"adpcm", "gsm", "jpeg"}) {
    core::PipelineOptions opts;
    opts.with_spm = true;
    opts.spm.dse.spm_capacity = 4096;
    auto res = core::run_pipeline(benchsuite::get_benchmark(kernel).source,
                                  opts);
    ASSERT_TRUE(res.ok()) << kernel << ": " << res.error();
    const std::string emitted =
        emit_transformed(res.model, res.spm.exact);

    if (std::getenv("FORAY_UPDATE_GOLDEN") != nullptr) {
      std::ofstream out(transformed_fixture_path(kernel),
                        std::ios::binary);
      ASSERT_TRUE(out.good()) << transformed_fixture_path(kernel);
      out << emitted;
    }
    std::ifstream in(transformed_fixture_path(kernel), std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing fixture " << transformed_fixture_path(kernel)
        << " — regenerate with FORAY_UPDATE_GOLDEN=1";
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), emitted)
        << kernel << ": transformed-source drift; review the diff and "
        << "regenerate with FORAY_UPDATE_GOLDEN=1 if intentional";
  }
}

// ---------------------------------------------------------------------------
// The global address map is the hinge the classification hangs on;
// lock it against real trace addresses from both engines.

TEST(TransformReplay, GlobalRegionsMatchEngineAllocation) {
  const char* source =
      "char a[3];\n"
      "int b;\n"
      "char c[5];\n"
      "short d[2];\n"
      "int e[4];\n"
      "int main(void) {\n"
      "  a[2] = 1; b = 2; c[4] = 3; d[1] = 4; e[3] = 5;\n"
      "  return 0;\n"
      "}\n";
  // Note `b = 2` is Scalar-kind traffic (direct scalar variable), so
  // only the four array stores appear as Data accesses below — which is
  // exactly why the replay classification can ignore foray_acc.
  util::DiagList diags;
  auto prog = minic::parse_and_check(source, &diags);
  ASSERT_NE(prog, nullptr) << diags.str();
  instrument::annotate_loops(prog.get());
  auto regions = sim::global_regions(*prog);
  ASSERT_EQ(regions.size(), 5u);
  // a @+0 (3B), b aligned to +4 (4B), c @+8 (5B), d aligned to +14
  // (2x2B), e aligned to +20 (16B).
  EXPECT_EQ(regions[0].base, sim::Memory::kGlobalBase + 0);
  EXPECT_EQ(regions[1].base, sim::Memory::kGlobalBase + 4);
  EXPECT_EQ(regions[2].base, sim::Memory::kGlobalBase + 8);
  EXPECT_EQ(regions[3].base, sim::Memory::kGlobalBase + 14);
  EXPECT_EQ(regions[4].base, sim::Memory::kGlobalBase + 20);

  for (sim::Engine engine : kEngines) {
    sim::RunOptions ropts;
    ropts.engine = engine;
    trace::VectorSink sink;
    auto run = sim::run_program_with(*prog, &sink, ropts);
    ASSERT_TRUE(run.ok()) << run.error();
    // The four array Data writes land, in order, at the expected
    // element addresses of the computed regions.
    const uint32_t expect[] = {regions[0].base + 2, regions[2].base + 4,
                               regions[3].base + 2, regions[4].base + 12};
    size_t next = 0;
    for (const auto& r : sink.records()) {
      if (r.type() != trace::RecordType::Access ||
          r.kind() != trace::AccessKind::Data || !r.is_write()) {
        continue;
      }
      ASSERT_LT(next, 4u) << engine_name(engine);
      EXPECT_EQ(r.addr(), expect[next]) << engine_name(engine);
      ++next;
    }
    EXPECT_EQ(next, 4u) << engine_name(engine);
  }
}

// ---------------------------------------------------------------------------
// Regression pins for the sliding-window emission. The benchsuite
// selections only exercise read-side sliding; these pin the write-back
// side and the exact word counts of the analytic model.

TEST(TransformReplay, SlidingReadPinsDeltaFillTraffic) {
  // Window 64B, step 4B, 10 iterations: one full fill (16 words) plus
  // nine 1-word delta fills.
  core::ForayModel model;
  model.refs.push_back(make_ref({4, 4}, {10, 16}, false));
  ReplayReport rep = replay_one(std::move(model), 1);
  ASSERT_TRUE(rep.matches()) << describe_replay_report(rep, {});
  EXPECT_EQ(rep.sim_transfer_words, 16u + 9u);
  ASSERT_EQ(rep.buffers.size(), 1u);
  EXPECT_TRUE(rep.buffers[0].sliding);
  EXPECT_EQ(rep.buffers[0].sim_fill_events, 10u);
  EXPECT_EQ(rep.buffers[0].sim_fill_bytes, 64u + 9u * 4u);
}

TEST(TransformReplay, SlidingWriteBackRetracesTheFillStream) {
  // Dirty sliding window: nine outgoing 4B deltas plus the final 64B
  // resident window exactly mirror the fill traffic.
  core::ForayModel model;
  model.refs.push_back(make_ref({4, 4}, {10, 16}, true));
  ReplayReport rep = replay_one(std::move(model), 1);
  ASSERT_TRUE(rep.matches()) << describe_replay_report(rep, {});
  EXPECT_EQ(rep.sim_transfer_words, 2u * (16u + 9u));
  ASSERT_EQ(rep.buffers.size(), 1u);
  EXPECT_EQ(rep.buffers[0].sim_writeback_events, 10u);
  EXPECT_EQ(rep.buffers[0].sim_writeback_bytes, 64u + 9u * 4u);
}

TEST(TransformReplay, NegativeCoefficientSlidingWindow) {
  // The window slides downward; fresh data enters at the low end and
  // evicted data leaves at the high end. Both directions, both kinds.
  for (bool write : {false, true}) {
    core::ForayModel model;
    model.refs.push_back(make_ref({-4, 4}, {10, 16}, write));
    ReplayReport rep = replay_one(std::move(model), 1);
    ASSERT_TRUE(rep.matches())
        << (write ? "write" : "read") << ":\n"
        << describe_replay_report(rep, {});
    EXPECT_EQ(rep.sim_transfer_words, (write ? 2u : 1u) * (16u + 9u));
  }
}

TEST(TransformReplay, MidLevelSlidingInDeeperNest) {
  // Level-2 buffer inside a 3-deep nest: the window covers the two
  // inner loops and slides with the outermost one.
  core::ForayModel model;
  model.refs.push_back(make_ref({4, 8, 4}, {3, 5, 16}, true));
  ReplayReport rep = replay_one(std::move(model), 2);
  ASSERT_TRUE(rep.matches()) << describe_replay_report(rep, {});
  ASSERT_EQ(rep.buffers.size(), 1u);
  EXPECT_TRUE(rep.buffers[0].sliding);
  // Window = 8*4+4*15+4 = 96B (24 words), step 4 (1 word): one full
  // fill plus two delta fills across the 3 outer iterations, written
  // back in kind.
  EXPECT_EQ(rep.sim_transfer_words, 2u * (24u + 2u));
}

TEST(TransformReplay, StepEqualToSpanIsNotSliding) {
  // Adjacent windows touch but do not overlap: plain full refills.
  core::ForayModel model;
  model.refs.push_back(make_ref({16, 4}, {10, 4}, true));
  Selection sel;
  sel.chosen.push_back(candidate_at(model.refs[0], 0, 1));
  EXPECT_FALSE(sel.chosen[0].sliding_window);
  ReplayReport rep = replay_one(std::move(model), 1);
  ASSERT_TRUE(rep.matches()) << describe_replay_report(rep, {});
  EXPECT_EQ(rep.sim_transfer_words, 2u * 10u * 4u);
}

TEST(TransformReplay, PartialNestRerunsScaleSlidingRuns) {
  // A partial reference whose outer context re-runs the nest R times
  // performs R full sliding passes: R times the one-pass traffic, not
  // one pass with R times the delta fills (the pre-fix accounting).
  const auto once = candidate_at(make_ref({4, 4}, {10, 16}, false, 1),
                                 0, 1);
  const auto twice = candidate_at(make_ref({4, 4}, {10, 16}, false, 2),
                                  0, 1);
  ASSERT_TRUE(once.sliding_window);
  ASSERT_TRUE(twice.sliding_window);
  EXPECT_EQ(once.transfer_words, 16u + 9u);
  EXPECT_EQ(twice.transfer_words, 2u * (16u + 9u));
}

// ---------------------------------------------------------------------------
// Degenerate geometry must not produce broken buffers or crash the DP.

TEST(TransformReplay, ZeroTripNestYieldsNoCandidates) {
  // A loop that never ran: no accesses, nothing worth buffering.
  auto ref = make_ref({4, 4}, {0, 16}, false);
  EXPECT_EQ(ref.exec_count, 0u);
  EXPECT_TRUE(candidates_for(ref, 0).empty());
}

TEST(TransformReplay, CandidateLevelIsClampedToTheNest) {
  auto ref = make_ref({0, 4}, {10, 16}, false);
  auto c = candidate_at(ref, 0, 99);
  EXPECT_EQ(c.level, 2);
  EXPECT_GT(c.size_bytes, 0u);
  c = candidate_at(ref, 0, -3);
  EXPECT_EQ(c.level, 1);
  EXPECT_GT(c.size_bytes, 0u);
}

TEST(TransformReplay, ZeroCoefficientDimensionsKeepBuffersNonEmpty) {
  // All-zero coefficients: every iteration touches the same element;
  // the buffer is one access wide, never zero-sized.
  auto ref = make_ref({0, 0}, {10, 16}, false);
  auto c = candidate_at(ref, 0, 2);
  EXPECT_EQ(c.size_bytes, 4u);
  core::ForayModel model;
  model.refs.push_back(ref);
  ReplayReport rep = replay_one(std::move(model), 2);
  EXPECT_TRUE(rep.matches()) << describe_replay_report(rep, {});
}

TEST(TransformReplay, ZeroGranuleQuantizesAsOneByte) {
  auto ref = make_ref({0, 4}, {10, 64}, false);
  auto cands = candidates_for(ref, 0);
  ASSERT_FALSE(cands.empty());
  DseOptions opts;
  opts.spm_capacity = 4096;
  opts.granule = 0;  // must not divide by zero
  Selection sel = select_buffers(cands, opts);
  EXPECT_FALSE(sel.chosen.empty());
  EXPECT_LE(sel.bytes_used, opts.spm_capacity);
}

TEST(TransformReplay, ZeroCapacitySelectsNothing) {
  auto ref = make_ref({0, 4}, {10, 64}, false);
  auto cands = candidates_for(ref, 0);
  DseOptions opts;
  opts.spm_capacity = 0;
  EXPECT_TRUE(select_buffers(cands, opts).chosen.empty());
  EXPECT_TRUE(select_buffers_greedy(cands, opts).chosen.empty());
}

}  // namespace
}  // namespace foray::spm
