// The content-addressed model cache (driver/model_cache.h) and its sweep
// integration: a warm sweep must be byte-identical to a cold one across
// thread counts, a corrupt or stale entry must be detected, classified
// and transparently recomputed (never trusted), and the cache key must
// include exactly the options that can change the extracted model.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/model_cache.h"
#include "driver/sweep.h"
#include "foray/model_io.h"
#include "foray/pipeline.h"
#include "sim/interpreter.h"
#include "util/status.h"

namespace foray::driver {
namespace {

const char* kGood =
    "int a[256];\n"
    "int main(void) {\n"
    "  for (int r = 0; r < 40; r++)\n"
    "    for (int i = 0; i < 256; i++) a[i] = a[i] + r;\n"
    "  return a[0] & 255;\n"
    "}\n";

const char* kGood2 =
    "char buf[4096];\n"
    "int main(void) {\n"
    "  char *p = buf;\n"
    "  int t = 0;\n"
    "  while (t < 30) {\n"
    "    t++;\n"
    "    p += 64;\n"
    "    for (int i = 0; i < 32; i++) *p++ = (i + t) % 256;\n"
    "  }\n"
    "  return 0;\n"
    "}\n";

std::vector<SweepJob> jobs() {
  return {{"alpha", kGood}, {"beta", kGood2}};
}

SweepOptions sweep_opts(int threads, ModelCache* cache) {
  SweepOptions o;
  o.threads = threads;
  o.pipeline.filter.min_exec = 1;
  o.pipeline.filter.min_locations = 1;
  o.spec.capacities = {1024, 4096};
  o.model_cache = cache;
  return o;
}

std::string run_ndjson(int threads, ModelCache* cache) {
  SweepDriver driver(sweep_opts(threads, cache));
  std::ostringstream out;
  util::Status st = driver.run_ndjson(jobs(), out);
  EXPECT_TRUE(st.ok()) << st.message();
  return out.str();
}

class ModelCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("foray_model_cache_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<std::string> entries() const {
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto& e : std::filesystem::directory_iterator(dir_, ec)) {
      out.push_back(e.path().string());
    }
    return out;
  }

  std::string dir_;
};

TEST_F(ModelCacheTest, WarmSweepIsPurePhaseTwoAndByteIdentical) {
  ModelCache cold_cache(ModelCacheOptions{dir_, true});
  const std::string cold = run_ndjson(/*threads=*/1, &cold_cache);
  {
    const ModelCache::Stats s = cold_cache.stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.stores, 2u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.store_failures, 0u);
  }
  EXPECT_EQ(entries().size(), 2u);

  // A fresh process (fresh cache object, same directory), different
  // thread count: all hits, no Phase I, and the same bytes out.
  ModelCache warm_cache(ModelCacheOptions{dir_, true});
  const std::string warm = run_ndjson(/*threads=*/3, &warm_cache);
  EXPECT_EQ(warm, cold);
  {
    const ModelCache::Stats s = warm_cache.stats();
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.stores, 0u);
  }

  // An uncached run agrees too — the cache only moves work, never
  // results.
  EXPECT_EQ(run_ndjson(/*threads=*/2, nullptr), cold);
}

TEST_F(ModelCacheTest, JitSweepHitsBytecodePopulatedCache) {
  // The fingerprint excludes the engine (all engines are locked
  // bit-identical by the equivalence harness), so a --engine jit sweep
  // against a cache populated by a bytecode run must be pure hits and
  // byte-identical output — the jit is a speed choice, never a key.
  ModelCache bc_cache(ModelCacheOptions{dir_, true});
  SweepOptions bc_opts = sweep_opts(/*threads=*/1, &bc_cache);
  bc_opts.pipeline.run.engine = sim::Engine::Bytecode;
  std::ostringstream bc_out;
  {
    SweepDriver driver(bc_opts);
    ASSERT_TRUE(driver.run_ndjson(jobs(), bc_out).ok());
  }
  EXPECT_EQ(bc_cache.stats().stores, 2u);

  ModelCache jit_cache(ModelCacheOptions{dir_, true});
  SweepOptions jit_opts = sweep_opts(/*threads=*/2, &jit_cache);
  jit_opts.pipeline.run.engine = sim::Engine::Jit;
  std::ostringstream jit_out;
  {
    SweepDriver driver(jit_opts);
    ASSERT_TRUE(driver.run_ndjson(jobs(), jit_out).ok());
  }
  EXPECT_EQ(jit_out.str(), bc_out.str());
  const ModelCache::Stats s = jit_cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.stores, 0u);
}

TEST_F(ModelCacheTest, MemoryLayerServesRepeatRunsWithoutDisk) {
  ModelCache cache(ModelCacheOptions{/*dir=*/"", /*memory=*/true});
  const std::string first = run_ndjson(1, &cache);
  const std::string second = run_ndjson(2, &cache);
  EXPECT_EQ(first, second);
  const ModelCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 2u);   // first run
  EXPECT_EQ(s.hits, 2u);     // second run
  EXPECT_EQ(s.memory_hits, 2u);
  EXPECT_EQ(s.store_failures, 0u);  // no dir: disk writes not attempted
}

TEST_F(ModelCacheTest, CorruptEntryIsRejectedRecomputedAndOverwritten) {
  ModelCache seed(ModelCacheOptions{dir_, true});
  const std::string cold = run_ndjson(1, &seed);
  auto files = entries();
  ASSERT_EQ(files.size(), 2u);

  for (const char* mutation : {"truncate", "magic", "version"}) {
    SCOPED_TRACE(mutation);
    // Corrupt the first entry in this round's chosen way.
    std::string bytes;
    {
      std::ifstream in(files[0], std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      bytes = ss.str();
    }
    ASSERT_GE(bytes.size(), 12u);
    std::string mutated = bytes;
    if (std::string(mutation) == "truncate") {
      mutated = bytes.substr(0, bytes.size() / 2);
    } else if (std::string(mutation) == "magic") {
      mutated[0] = static_cast<char>(mutated[0] ^ 0x20);
    } else {
      mutated[4] = static_cast<char>(mutated[4] + 1);  // version bump
    }
    {
      std::ofstream out(files[0], std::ios::binary | std::ios::trunc);
      out << mutated;
    }

    // The direct lookup reports the classified rejection...
    {
      ModelCache probe(ModelCacheOptions{dir_, true});
      const std::string key =
          std::filesystem::path(files[0]).stem().string();
      core::ForayModel model;
      util::Status why;
      EXPECT_FALSE(probe.lookup(key, &model, &why));
      ASSERT_FALSE(why.ok());
      EXPECT_EQ(why.phase(), "model-cache");
      EXPECT_TRUE(why.code() == util::ErrorCode::kInvalidInput ||
                  why.code() == util::ErrorCode::kIoError)
          << why.code_name();
      // ...naming the offending file.
      EXPECT_NE(why.message().find(files[0]), std::string::npos);
      EXPECT_EQ(probe.stats().rejected, 1u);
    }

    // ...and a sweep over the poisoned cache recomputes transparently:
    // same bytes out, one rejection, one re-store.
    ModelCache cache(ModelCacheOptions{dir_, true});
    EXPECT_EQ(run_ndjson(2, &cache), cold);
    const ModelCache::Stats s = cache.stats();
    EXPECT_EQ(s.rejected, 1u);
    EXPECT_EQ(s.hits, 1u);    // the untouched entry
    EXPECT_EQ(s.stores, 1u);  // the recomputed one, rewritten

    // The rewrite healed the entry for the next fresh cache.
    ModelCache healed(ModelCacheOptions{dir_, true});
    EXPECT_EQ(run_ndjson(1, &healed), cold);
    EXPECT_EQ(healed.stats().hits, 2u);
    EXPECT_EQ(healed.stats().rejected, 0u);
  }
}

TEST_F(ModelCacheTest, StoreRoundTripsThroughLookup) {
  core::PipelineOptions popts;
  popts.filter.min_exec = 1;
  popts.filter.min_locations = 1;
  core::PipelineResult res = core::run_pipeline(kGood, popts);
  ASSERT_TRUE(res.status.ok());

  ModelCache cache(ModelCacheOptions{dir_, true});
  const std::string key = ModelCache::key(kGood, popts);
  cache.store(key, res.model);

  // A different cache object must read it back from disk, byte-equal.
  ModelCache other(ModelCacheOptions{dir_, true});
  core::ForayModel loaded;
  util::Status why;
  ASSERT_TRUE(other.lookup(key, &loaded, &why)) << why.message();
  EXPECT_EQ(core::model_to_bytes(loaded), core::model_to_bytes(res.model));
}

TEST_F(ModelCacheTest, SizeBoundEvictsOldestEntriesFirst) {
  core::PipelineOptions popts;
  popts.filter.min_exec = 1;
  popts.filter.min_locations = 1;
  core::PipelineResult res = core::run_pipeline(kGood, popts);
  ASSERT_TRUE(res.status.ok());

  // Measure one entry so the bound can be phrased in whole entries.
  uint64_t entry_size = 0;
  {
    ModelCache probe(ModelCacheOptions{dir_, true});
    probe.store("probe", res.model);
    entry_size = std::filesystem::file_size(dir_ + "/probe.fmodel");
    std::filesystem::remove(dir_ + "/probe.fmodel");
  }
  ASSERT_GT(entry_size, 0u);

  // Room for two entries, not three.
  ModelCache cache(
      ModelCacheOptions{dir_, /*memory=*/true, entry_size * 2 + 1});
  const auto age = [&](const char* key, int hours) {
    std::filesystem::last_write_time(
        dir_ + "/" + key + ".fmodel",
        std::filesystem::file_time_type::clock::now() -
            std::chrono::hours(hours));
  };
  cache.store("aa", res.model);
  age("aa", 3);
  cache.store("bb", res.model);
  age("bb", 2);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(entries().size(), 2u);

  // The third store pushes the directory over the bound; the oldest
  // entry (aa) goes, the fresh one survives.
  cache.store("cc", res.model);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/aa.fmodel"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/bb.fmodel"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/cc.fmodel"));

  // The evicted entry is still served by the memory layer of the cache
  // that stored it; a fresh cache object sees a plain miss.
  core::ForayModel loaded;
  util::Status why;
  EXPECT_TRUE(cache.lookup("aa", &loaded, &why));
  ModelCache fresh(ModelCacheOptions{dir_, true});
  EXPECT_FALSE(fresh.lookup("aa", &loaded, &why));
  EXPECT_TRUE(why.ok()) << why.message();
}

TEST_F(ModelCacheTest, BoundSmallerThanOneEntryEvictsTheFreshStore) {
  core::PipelineOptions popts;
  popts.filter.min_exec = 1;
  popts.filter.min_locations = 1;
  core::PipelineResult res = core::run_pipeline(kGood, popts);
  ASSERT_TRUE(res.status.ok());

  ModelCache cache(ModelCacheOptions{dir_, /*memory=*/true, /*max_bytes=*/1});
  cache.store("aa", res.model);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().store_failures, 0u);  // the write itself worked
  EXPECT_TRUE(entries().empty());
}

TEST(ModelCacheKey, TracksModelChangingOptionsOnly) {
  core::PipelineOptions base;
  const std::string k = ModelCache::key(kGood, base);

  // The engine is bit-identical by the equivalence harness: flipping it
  // must NOT invalidate the cache.
  core::PipelineOptions engine = base;
  engine.run.engine = sim::Engine::Ast;
  EXPECT_EQ(ModelCache::key(kGood, engine), k);
  engine.run.engine = sim::Engine::Jit;
  EXPECT_EQ(ModelCache::key(kGood, engine), k);

  // Parallel-extraction modes are likewise locked bit-identical.
  core::PipelineOptions shards = base;
  shards.profile_shards = 4;
  EXPECT_EQ(ModelCache::key(kGood, shards), k);

  // Budgets never produce a model to store.
  core::PipelineOptions budget = base;
  budget.run.budget.max_steps = 123;
  EXPECT_EQ(ModelCache::key(kGood, budget), k);

  // Phase II options run downstream of extraction.
  core::PipelineOptions spm = base;
  spm.spm.dse.spm_capacity = 512;
  EXPECT_EQ(ModelCache::key(kGood, spm), k);

  // But the Step 4 filter, the seed and the extractor options DO shape
  // the model.
  core::PipelineOptions filter = base;
  filter.filter.min_exec = 1;
  EXPECT_NE(ModelCache::key(kGood, filter), k);

  core::PipelineOptions seed = base;
  seed.run.rng_seed += 1;
  EXPECT_NE(ModelCache::key(kGood, seed), k);

  core::PipelineOptions fpcap = base;
  fpcap.extractor.footprint_cap += 1;
  EXPECT_NE(ModelCache::key(kGood, fpcap), k);

  // And of course the program source.
  EXPECT_NE(ModelCache::key(kGood2, base), k);

  // The fingerprint is pinned to the model format version, so a format
  // bump invalidates wholesale.
  EXPECT_NE(ModelCache::fingerprint(base).find(
                "fmt=" + std::to_string(core::kModelFormatVersion)),
            std::string::npos);
}

}  // namespace
}  // namespace foray::driver
