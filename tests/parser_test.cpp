#include <gtest/gtest.h>

#include "minic/parser.h"
#include "minic/printer.h"

namespace foray::minic {
namespace {

std::unique_ptr<Program> parse_ok(std::string_view src) {
  util::DiagList diags;
  auto prog = parse_program(src, &diags);
  EXPECT_TRUE(diags.empty()) << diags.str();
  return prog;
}

void expect_parse_error(std::string_view src) {
  util::DiagList diags;
  parse_program(src, &diags);
  EXPECT_FALSE(diags.empty()) << "expected a parse error for: " << src;
}

TEST(Parser, EmptyProgram) {
  auto p = parse_ok("");
  EXPECT_TRUE(p->funcs.empty());
  EXPECT_TRUE(p->globals.empty());
}

TEST(Parser, GlobalScalars) {
  auto p = parse_ok("int a; char b; float c = 1.5f; int d = 3;");
  ASSERT_EQ(p->globals.size(), 4u);
  EXPECT_EQ(p->globals[0].name, "a");
  EXPECT_EQ(p->globals[0].type.base, BaseType::Int);
  EXPECT_EQ(p->globals[2].name, "c");
  ASSERT_NE(p->globals[2].init, nullptr);
  EXPECT_EQ(p->globals[3].init->kind, ExprKind::IntLit);
}

TEST(Parser, GlobalArraysAndPointers) {
  auto p = parse_ok("char q[10000]; int *ptr; int **pp; int tab[4] = "
                    "{1, 2, 3, 4};");
  ASSERT_EQ(p->globals.size(), 4u);
  EXPECT_EQ(p->globals[0].array_len, 10000);
  EXPECT_EQ(p->globals[1].type.ptr, 1);
  EXPECT_EQ(p->globals[2].type.ptr, 2);
  EXPECT_EQ(p->globals[3].init_list.size(), 4u);
}

TEST(Parser, MultipleDeclaratorsShareBaseType) {
  auto p = parse_ok("int a, *b, c[8];");
  ASSERT_EQ(p->globals.size(), 3u);
  EXPECT_EQ(p->globals[0].type.ptr, 0);
  EXPECT_EQ(p->globals[1].type.ptr, 1);
  EXPECT_EQ(p->globals[2].array_len, 8);
}

TEST(Parser, FunctionWithParams) {
  auto p = parse_ok("int foo(int offset, char *p, float xs[]) { return 0; }");
  ASSERT_EQ(p->funcs.size(), 1u);
  const auto& f = *p->funcs[0];
  EXPECT_EQ(f.name, "foo");
  ASSERT_EQ(f.params.size(), 3u);
  EXPECT_EQ(f.params[0].type.ptr, 0);
  EXPECT_EQ(f.params[1].type.ptr, 1);
  // Array parameter decays to pointer.
  EXPECT_EQ(f.params[2].type.ptr, 1);
  EXPECT_EQ(f.params[2].type.base, BaseType::Float);
}

TEST(Parser, VoidParamList) {
  auto p = parse_ok("int main(void) { return 0; }");
  EXPECT_TRUE(p->funcs[0]->params.empty());
}

TEST(Parser, PrototypesAreIgnored) {
  auto p = parse_ok("int foo(int x);\nint main(void) { return 0; }");
  ASSERT_EQ(p->funcs.size(), 1u);
  EXPECT_EQ(p->funcs[0]->name, "main");
}

TEST(Parser, ForLoopWithDecl) {
  auto p = parse_ok("int main(void) { for (int i = 0; i < 10; i++) {} "
                    "return 0; }");
  const Stmt& body = *p->funcs[0]->body;
  ASSERT_EQ(body.kind, StmtKind::Block);
  const Stmt& loop = *body.stmts[0];
  EXPECT_EQ(loop.kind, StmtKind::For);
  EXPECT_EQ(loop.init->kind, StmtKind::Decl);
  ASSERT_NE(loop.cond, nullptr);
  ASSERT_NE(loop.step, nullptr);
}

TEST(Parser, ForLoopEmptyClauses) {
  auto p = parse_ok("int main(void) { for (;;) { break; } return 0; }");
  const Stmt& loop = *p->funcs[0]->body->stmts[0];
  EXPECT_EQ(loop.init->kind, StmtKind::Empty);
  EXPECT_EQ(loop.cond, nullptr);
  EXPECT_EQ(loop.step, nullptr);
}

TEST(Parser, WhileAndDoWhile) {
  auto p = parse_ok(
      "int main(void) { int x = 3; while (x) { x--; } "
      "do { x++; } while (x < 3); return x; }");
  const auto& stmts = p->funcs[0]->body->stmts;
  EXPECT_EQ(stmts[1]->kind, StmtKind::While);
  EXPECT_EQ(stmts[2]->kind, StmtKind::DoWhile);
}

TEST(Parser, IfElseChain) {
  auto p = parse_ok(
      "int main(void) { int x = 1; if (x) x = 2; else if (x > 1) x = 3; "
      "else x = 4; return x; }");
  const Stmt& s = *p->funcs[0]->body->stmts[1];
  EXPECT_EQ(s.kind, StmtKind::If);
  ASSERT_NE(s.else_branch, nullptr);
  EXPECT_EQ(s.else_branch->kind, StmtKind::If);
}

TEST(Parser, PrecedenceMulOverAdd) {
  auto p = parse_ok("int x = 1 + 2 * 3;");
  const Expr& e = *p->globals[0].init;
  ASSERT_EQ(e.kind, ExprKind::Binary);
  EXPECT_EQ(e.bin_op, BinaryOp::Add);
  EXPECT_EQ(e.b->bin_op, BinaryOp::Mul);
}

TEST(Parser, PrecedenceShiftVsRelational) {
  auto p = parse_ok("int x = 1 << 2 < 3;");  // (1<<2) < 3
  const Expr& e = *p->globals[0].init;
  EXPECT_EQ(e.bin_op, BinaryOp::Lt);
  EXPECT_EQ(e.a->bin_op, BinaryOp::Shl);
}

TEST(Parser, AssignmentIsRightAssociative) {
  auto p = parse_ok("int main(void) { int a; int b; a = b = 3; return a; }");
  const Expr& e = *p->funcs[0]->body->stmts[2]->expr;
  ASSERT_EQ(e.kind, ExprKind::Assign);
  EXPECT_EQ(e.b->kind, ExprKind::Assign);
}

TEST(Parser, CompoundAssignOps) {
  auto p = parse_ok("int main(void) { int a = 1; a += 2; a <<= 3; a %= 4; "
                    "return a; }");
  EXPECT_EQ(p->funcs[0]->body->stmts[1]->expr->as_op, AssignOp::AddA);
  EXPECT_EQ(p->funcs[0]->body->stmts[2]->expr->as_op, AssignOp::ShlA);
  EXPECT_EQ(p->funcs[0]->body->stmts[3]->expr->as_op, AssignOp::ModA);
}

TEST(Parser, PointerDerefAndPostIncrement) {
  auto p = parse_ok("int main(void) { char q[4]; char *ptr = q; "
                    "*ptr++ = 1; return 0; }");
  const Expr& e = *p->funcs[0]->body->stmts[2]->expr;
  ASSERT_EQ(e.kind, ExprKind::Assign);
  ASSERT_EQ(e.a->kind, ExprKind::Unary);
  EXPECT_EQ(e.a->un_op, UnaryOp::Deref);
  EXPECT_EQ(e.a->a->un_op, UnaryOp::PostInc);
}

TEST(Parser, TernaryExpression) {
  auto p = parse_ok("int x = 1 ? 2 : 3;");
  EXPECT_EQ(p->globals[0].init->kind, ExprKind::Cond);
}

TEST(Parser, CastExpression) {
  auto p = parse_ok("int main(void) { float f = 1.5f; int x = (int)f; "
                    "char *p = (char*)0; return x; }");
  const Expr& cast1 = *p->funcs[0]->body->stmts[1]->decls[0].init;
  ASSERT_EQ(cast1.kind, ExprKind::Cast);
  EXPECT_EQ(cast1.cast_type.base, BaseType::Int);
  const Expr& cast2 = *p->funcs[0]->body->stmts[2]->decls[0].init;
  EXPECT_EQ(cast2.cast_type.ptr, 1);
}

TEST(Parser, ParenthesizedExprIsNotCast) {
  auto p = parse_ok("int y; int x = (y) + 1;");
  EXPECT_EQ(p->globals[1].init->kind, ExprKind::Binary);
}

TEST(Parser, CallsAndNestedIndex) {
  auto p = parse_ok(
      "int foo(int a, int b) { return a + b; }\n"
      "int g[10];\n"
      "int main(void) { return foo(g[2], g[foo(1, 2)]); }");
  const Expr& call = *p->funcs[1]->body->stmts[0]->expr;
  ASSERT_EQ(call.kind, ExprKind::Call);
  EXPECT_EQ(call.args.size(), 2u);
  EXPECT_EQ(call.args[0]->kind, ExprKind::Index);
}

TEST(Parser, AddressOfOperator) {
  auto p = parse_ok("int main(void) { int x; int *p = &x; return *p; }");
  const Expr& addr = *p->funcs[0]->body->stmts[1]->decls[0].init;
  ASSERT_EQ(addr.kind, ExprKind::Unary);
  EXPECT_EQ(addr.un_op, UnaryOp::AddrOf);
}

TEST(Parser, NodeIdsAreUnique) {
  auto p = parse_ok("int main(void) { int a = 1 + 2; int b = a * 3; "
                    "return a + b; }");
  EXPECT_GT(p->num_nodes, 5);
}

TEST(Parser, FigureOneJpegExcerptParses) {
  // First code excerpt from the paper's Figure 1 (adapted to MiniC decls).
  auto p = parse_ok(
      "int num_components = 3;\n"
      "int last_bitpos[256];\n"
      "int main(void) {\n"
      "  int ci; int coefi;\n"
      "  int *last_bitpos_ptr = last_bitpos;\n"
      "  for (ci = 0; ci < num_components; ci++)\n"
      "    for (coefi = 0; coefi < 64; coefi++)\n"
      "      *last_bitpos_ptr++ = -1;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(p->funcs.size(), 1u);
}

TEST(Parser, FigureFourExampleParses) {
  // The worked example of the paper's Figure 4(a).
  auto p = parse_ok(
      "char q[10000];\n"
      "int main(void) {\n"
      "  char *ptr = q;\n"
      "  int i; int t1 = 98;\n"
      "  while (t1 < 100) {\n"
      "    t1++;\n"
      "    ptr += 100;\n"
      "    for (i = 40; i > 37; i--) {\n"
      "      *ptr++ = i * i % 256;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(p->funcs.size(), 1u);
  EXPECT_EQ(p->globals.size(), 1u);
}

TEST(Parser, ErrorMissingSemicolon) { expect_parse_error("int a"); }

TEST(Parser, ErrorBadArrayLength) { expect_parse_error("int a[x];"); }

TEST(Parser, ErrorUnbalancedParens) {
  expect_parse_error("int main(void) { return (1 + 2; }");
}

TEST(Parser, ErrorGarbageAtTopLevel) { expect_parse_error("42;"); }

TEST(Parser, BreakAndContinueParse) {
  auto p = parse_ok(
      "int main(void) { int i; for (i = 0; i < 10; i++) { "
      "if (i == 2) continue; if (i == 5) break; } return i; }");
  EXPECT_EQ(p->funcs.size(), 1u);
}

TEST(Parser, CommentsDoNotAffectStructure) {
  auto p = parse_ok("/* header */ int a; // trailing\nint main(void) "
                    "{ return a; /* mid */ }");
  EXPECT_EQ(p->globals.size(), 1u);
  EXPECT_EQ(p->funcs.size(), 1u);
}

TEST(Parser, LogicalOperatorsShortCircuitShape) {
  auto p = parse_ok("int x = 1 || 0 && 0;");  // 1 || (0 && 0)
  const Expr& e = *p->globals[0].init;
  EXPECT_EQ(e.bin_op, BinaryOp::LogOr);
  EXPECT_EQ(e.b->bin_op, BinaryOp::LogAnd);
}

}  // namespace
}  // namespace foray::minic
