// Hardening corpus for the binary trace reader (trace/io.cpp): every
// systematic mutation of the checked-in golden traces — truncations at
// every interesting offset, flipped magic bytes, lying header counts,
// unknown record tags — must come back as a clean, classified Status
// (kInvalidInput for malformed bytes, kIoError for bytes that end too
// early), never a crash, hang or silently-wrong record list.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/io.h"
#include "util/status.h"

namespace foray::trace {
namespace {

const char* kKernels[] = {"adpcm", "gsm", "jpeg"};

std::string golden_path(const std::string& kernel) {
  return std::string(FORAY_SOURCE_DIR) + "/tests/golden/" + kernel +
         ".trace";
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

util::Status read(const std::string& bytes, std::vector<Record>* out) {
  std::istringstream is(bytes);
  return read_binary(is, out);
}

/// Every mutation must land in one of the two reader failure classes.
void expect_clean_failure(const std::string& bytes, const char* what) {
  std::vector<Record> out;
  util::Status st = read(bytes, &out);
  ASSERT_FALSE(st.ok()) << what;
  EXPECT_TRUE(st.code() == util::ErrorCode::kInvalidInput ||
              st.code() == util::ErrorCode::kIoError)
      << what << ": classified as " << st.code_name();
  EXPECT_FALSE(st.message().empty()) << what;
}

uint32_t header_count(const std::string& bytes) {
  return static_cast<uint32_t>(static_cast<uint8_t>(bytes[4])) |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[5])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[6])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[7])) << 24;
}

void set_header_count(std::string* bytes, uint32_t count) {
  (*bytes)[4] = static_cast<char>(count & 0xff);
  (*bytes)[5] = static_cast<char>((count >> 8) & 0xff);
  (*bytes)[6] = static_cast<char>((count >> 16) & 0xff);
  (*bytes)[7] = static_cast<char>((count >> 24) & 0xff);
}

TEST(TraceCorpus, GoldenTracesReadClean) {
  for (const char* kernel : kKernels) {
    const std::string bytes = read_bytes(golden_path(kernel));
    ASSERT_GE(bytes.size(), 8u) << kernel;
    std::vector<Record> out;
    util::Status st = read(bytes, &out);
    ASSERT_TRUE(st.ok()) << kernel << ": " << st.message();
    EXPECT_EQ(out.size(), header_count(bytes)) << kernel;
  }
}

TEST(TraceCorpus, TruncationAtEveryInterestingOffset) {
  for (const char* kernel : kKernels) {
    const std::string bytes = read_bytes(golden_path(kernel));
    // Every header prefix, the first few record boundaries, and cuts
    // through the middle and the last byte of the body.
    std::vector<size_t> cuts;
    for (size_t n = 0; n <= 16 && n < bytes.size(); ++n) cuts.push_back(n);
    cuts.push_back(bytes.size() / 2);
    cuts.push_back(bytes.size() - 1);
    for (size_t n : cuts) {
      SCOPED_TRACE(std::string(kernel) + " truncated to " +
                   std::to_string(n) + " bytes");
      expect_clean_failure(bytes.substr(0, n), "truncation");
    }
  }
}

TEST(TraceCorpus, FlippedMagicBytesAreInvalidInput) {
  for (const char* kernel : kKernels) {
    const std::string bytes = read_bytes(golden_path(kernel));
    for (size_t i = 0; i < 4; ++i) {
      std::string mutated = bytes;
      mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
      std::vector<Record> out;
      util::Status st = read(mutated, &out);
      ASSERT_FALSE(st.ok()) << kernel << " magic byte " << i;
      EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput)
          << kernel << " magic byte " << i;
    }
  }
}

TEST(TraceCorpus, LyingHeaderCounts) {
  for (const char* kernel : kKernels) {
    const std::string bytes = read_bytes(golden_path(kernel));
    const uint32_t count = header_count(bytes);

    // One record more than the body holds: the reader must report the
    // truncation, not walk off the end.
    std::string one_extra = bytes;
    set_header_count(&one_extra, count + 1);
    {
      std::vector<Record> out;
      util::Status st = read(one_extra, &out);
      ASSERT_FALSE(st.ok()) << kernel;
      EXPECT_EQ(st.code(), util::ErrorCode::kIoError) << kernel;
    }

    // An absurd count: rejected up front by the size plausibility check
    // (seekable stream), long before any allocation is attempted.
    std::string absurd = bytes;
    set_header_count(&absurd, 0x80000000u);
    {
      std::vector<Record> out;
      util::Status st = read(absurd, &out);
      ASSERT_FALSE(st.ok()) << kernel;
      EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput) << kernel;
    }
  }
}

TEST(TraceCorpus, UnknownRecordTagIsInvalidInput) {
  for (const char* kernel : kKernels) {
    std::string bytes = read_bytes(golden_path(kernel));
    ASSERT_GT(bytes.size(), 8u) << kernel;
    bytes[8] = static_cast<char>(0xee);  // first record's tag byte
    std::vector<Record> out;
    util::Status st = read(bytes, &out);
    ASSERT_FALSE(st.ok()) << kernel;
    EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput) << kernel;
  }
}

TEST(TraceCorpus, EmptyAndTinyInputs) {
  expect_clean_failure("", "empty file");
  expect_clean_failure("F", "one byte");
  expect_clean_failure("FTRC", "magic only");
  expect_clean_failure(std::string("FTRC\x01", 5), "truncated count");
  // A header declaring zero records over an empty body is a valid trace.
  std::vector<Record> out;
  util::Status st = read(std::string("FTRC\0\0\0\0", 8), &out);
  EXPECT_TRUE(st.ok()) << st.message();
  EXPECT_TRUE(out.empty());
}

TEST(TraceCorpus, TextReaderClassifiesMalformedLinesWithTheLine) {
  std::istringstream is("A 1 2\nwhat even is this\n");
  std::vector<Record> out;
  util::Status st = read_text(is, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
}

}  // namespace
}  // namespace foray::trace
