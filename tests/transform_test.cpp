#include <gtest/gtest.h>

#include "benchsuite/suite.h"
#include "foray/pipeline.h"
#include "minic/parser.h"
#include "sim/interpreter.h"
#include "spm/spm_sim.h"
#include "spm/transform.h"
#include "trace/sink.h"

namespace foray::spm {
namespace {

core::ModelReference make_ref(std::vector<int64_t> coefs,
                              std::vector<int64_t> trips, bool write) {
  core::ModelReference r;
  r.instr = 0x400200;
  r.fn.const_term = 0x10000000;
  r.fn.coefs = std::move(coefs);
  r.fn.known.assign(r.fn.coefs.size(), true);
  r.fn.m = static_cast<int>(r.fn.coefs.size());
  r.trips = std::move(trips);
  for (size_t i = 0; i < r.trips.size(); ++i) {
    r.loop_path.push_back(static_cast<int>(i));
  }
  r.access_size = 4;
  r.has_write = write;
  r.has_read = !write;
  r.exec_count = 1;
  for (int64_t t : r.trips) {
    r.exec_count *= static_cast<uint64_t>(t);
  }
  r.footprint = r.exec_count;
  return r;
}

Selection select_level(const core::ForayModel& model, int level) {
  auto cands = enumerate_candidates(model);
  Selection sel;
  for (const auto& c : cands) {
    if (c.level == level) {
      sel.chosen.push_back(c);
      sel.bytes_used += c.size_bytes;
    }
  }
  return sel;
}

struct RunOutcome {
  bool ok = false;
  uint64_t data_accesses = 0;
  std::string source;
};

RunOutcome run_transformed(const core::ForayModel& model,
                           const Selection& sel) {
  RunOutcome out;
  out.source = emit_transformed(model, sel);
  util::DiagList diags;
  auto prog = minic::parse_and_check(out.source, &diags);
  EXPECT_NE(prog, nullptr) << diags.str() << "\n" << out.source;
  if (!prog) return out;
  instrument::annotate_loops(prog.get());
  trace::VectorSink sink;
  auto run = sim::run_program(*prog, &sink);
  EXPECT_TRUE(run.ok()) << run.error();
  out.ok = run.ok();
  for (const auto& r : sink.records()) {
    if (r.type() == trace::RecordType::Access &&
        r.kind() == trace::AccessKind::Data) {
      ++out.data_accesses;
    }
  }
  return out;
}

TEST(Transform, UnselectedModelMatchesPlainEmission) {
  core::ForayModel model;
  model.refs.push_back(make_ref({0, 4}, {10, 64}, false));
  Selection none;
  RunOutcome out = run_transformed(model, none);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.data_accesses, 640u);
  EXPECT_EQ(out.source.find("spm_"), std::string::npos);
}

TEST(Transform, BufferedReadAddsFillTraffic) {
  // Row reused 10 times: level-2 buffer -> one fill of the 256B row.
  core::ForayModel model;
  model.refs.push_back(make_ref({0, 4}, {10, 64}, false));
  Selection sel = select_level(model, 2);
  ASSERT_EQ(sel.chosen.size(), 1u);
  RunOutcome out = run_transformed(model, sel);
  ASSERT_TRUE(out.ok);
  EXPECT_NE(out.source.find("spm_"), std::string::npos);
  // 640 buffer accesses + one fill: 256 reads from main + 256 writes to
  // the buffer.
  EXPECT_EQ(out.data_accesses, 640u + 2u * 256u);
}

TEST(Transform, BufferedWriteAddsWriteback) {
  core::ForayModel model;
  model.refs.push_back(make_ref({0, 4}, {10, 64}, true));
  Selection sel = select_level(model, 2);
  ASSERT_EQ(sel.chosen.size(), 1u);
  RunOutcome out = run_transformed(model, sel);
  ASSERT_TRUE(out.ok);
  // Fill + writeback around the 640 buffered stores.
  EXPECT_EQ(out.data_accesses, 640u + 4u * 256u);
}

TEST(Transform, Level1BufferFillsPerOuterIteration) {
  core::ForayModel model;
  model.refs.push_back(make_ref({0, 4}, {10, 64}, false));
  Selection sel = select_level(model, 1);
  ASSERT_EQ(sel.chosen.size(), 1u);
  RunOutcome out = run_transformed(model, sel);
  ASSERT_TRUE(out.ok);
  // The level-1 buffer is refilled on each of the 10 outer iterations.
  EXPECT_EQ(out.data_accesses, 640u + 10u * 2u * 256u);
}

TEST(Transform, NegativeStrideBufferWorks) {
  core::ForayModel model;
  model.refs.push_back(make_ref({-64, 4}, {8, 16}, false));
  Selection sel = select_level(model, 1);
  ASSERT_EQ(sel.chosen.size(), 1u);
  RunOutcome out = run_transformed(model, sel);
  EXPECT_TRUE(out.ok);
}

TEST(Transform, MixedSelectionKeepsOthersInMainMemory) {
  core::ForayModel model;
  model.refs.push_back(make_ref({0, 4}, {10, 64}, false));   // buffered
  model.refs.push_back(make_ref({4}, {50}, true));           // streaming
  auto cands = enumerate_candidates(model);
  Selection sel;
  for (const auto& c : cands) {
    if (c.ref_index == 0 && c.level == 2) sel.chosen.push_back(c);
  }
  RunOutcome out = run_transformed(model, sel);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.data_accesses, 640u + 2u * 256u + 50u);
  // Exactly one buffer was declared.
  size_t first = out.source.find("char spm_");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out.source.find("char spm_", first + 1), std::string::npos);
}

TEST(Transform, BenchmarkEndToEnd) {
  // Full Phase I + II + transformed-code emission on a real benchmark;
  // the transformed program must execute cleanly.
  auto res = core::run_pipeline(benchsuite::get_benchmark("susan").source);
  ASSERT_TRUE(res.ok()) << res.error();
  auto cands = enumerate_candidates(res.model);
  DseOptions opts;
  opts.spm_capacity = 4096;
  Selection sel = select_buffers(cands, opts);
  ASSERT_FALSE(sel.chosen.empty());
  RunOutcome out = run_transformed(res.model, sel);
  EXPECT_TRUE(out.ok);
}

}  // namespace
}  // namespace foray::spm
