// The sweep API: spec parsing, deterministic grid expansion, structured
// PointKey lookup, Pareto extraction, and the two contracts inherited
// from the batch driver and extended to the full multi-axis grid —
// byte-identical reports whatever the thread count (including the
// streaming NDJSON writer) and per-job failure isolation.
#include <gtest/gtest.h>

#include <sstream>

#include "driver/sweep.h"
#include "spm/energy.h"
#include "util/status.h"

namespace foray::driver {
namespace {

const char* kGood =
    "int a[256];\n"
    "int main(void) {\n"
    "  for (int r = 0; r < 40; r++)\n"
    "    for (int i = 0; i < 256; i++) a[i] = a[i] + r;\n"
    "  return a[0] & 255;\n"
    "}\n";

const char* kGood2 =
    "char buf[4096];\n"
    "int main(void) {\n"
    "  char *p = buf;\n"
    "  int t = 0;\n"
    "  while (t < 30) {\n"
    "    t++;\n"
    "    p += 64;\n"
    "    for (int i = 0; i < 32; i++) *p++ = (i + t) % 256;\n"
    "  }\n"
    "  return 0;\n"
    "}\n";

const char* kParseError = "int main(void) { return 0;";  // no brace

std::vector<SweepJob> good_jobs() {
  return {{"alpha", kGood}, {"beta", kGood2}};
}

SweepOptions sweep_opts(int threads) {
  SweepOptions o;
  o.threads = threads;
  o.pipeline.filter.min_exec = 1;
  o.pipeline.filter.min_locations = 1;
  return o;
}

// -- energy presets -----------------------------------------------------------

TEST(EnergyPresets, DefaultFirstAndFindable) {
  const auto& presets = spm::energy_presets();
  ASSERT_FALSE(presets.empty());
  EXPECT_STREQ(presets.front().name, "default");
  EXPECT_DOUBLE_EQ(presets.front().model.dram_nj,
                   spm::EnergyModel{}.dram_nj);
  ASSERT_NE(spm::find_energy_preset("dram-heavy"), nullptr);
  EXPECT_GT(spm::find_energy_preset("dram-heavy")->model.dram_nj,
            spm::EnergyModel{}.dram_nj);
  EXPECT_EQ(spm::find_energy_preset("nope"), nullptr);
}

TEST(EnergyPresets, ParseWithOverrides) {
  spm::EnergyModel m;
  std::string err;
  ASSERT_TRUE(spm::parse_energy_model(
      "default:dram_nj=9.5:spm_1kb_nj=0.01", &m, &err))
      << err;
  EXPECT_DOUBLE_EQ(m.dram_nj, 9.5);
  EXPECT_DOUBLE_EQ(m.spm_1kb_nj, 0.01);
  // Untouched fields keep the preset's values.
  EXPECT_DOUBLE_EQ(m.cache_overhead, spm::EnergyModel{}.cache_overhead);
}

TEST(EnergyPresets, ParseRejectsUnknownsByName) {
  spm::EnergyModel m;
  std::string err;
  EXPECT_FALSE(spm::parse_energy_model("martian", &m, &err));
  EXPECT_NE(err.find("martian"), std::string::npos);
  EXPECT_FALSE(spm::parse_energy_model("default:warp_nj=1", &m, &err));
  EXPECT_NE(err.find("warp_nj"), std::string::npos);
  EXPECT_FALSE(spm::parse_energy_model("default:dram_nj=abc", &m, &err));
  EXPECT_NE(err.find("dram_nj=abc"), std::string::npos);
  // Non-finite overrides would poison the energy counters and the
  // Pareto ordering; they are spec errors.
  EXPECT_FALSE(spm::parse_energy_model("default:dram_nj=nan", &m, &err));
  EXPECT_FALSE(spm::parse_energy_model("default:dram_nj=inf", &m, &err));
  EXPECT_FALSE(spm::parse_energy_model("default:dram_nj=-inf", &m, &err));
}

// -- spec parsing -------------------------------------------------------------

TEST(SweepSpec, ParsesEveryAxis) {
  SweepSpec s;
  ASSERT_TRUE(s.parse_axis("capacity", "512, 1024").ok());
  EXPECT_EQ(s.capacities, (std::vector<uint32_t>{512, 1024}));
  ASSERT_TRUE(s.parse_axis("energy", "default, dram-heavy:dram_nj=9.5").ok());
  ASSERT_EQ(s.energy_models.size(), 2u);
  EXPECT_EQ(s.energy_models[1].name, "dram-heavy:dram_nj=9.5");
  EXPECT_DOUBLE_EQ(s.energy_models[1].model.dram_nj, 9.5);
  ASSERT_TRUE(s.parse_axis("cache", "off, 64x4").ok());
  ASSERT_EQ(s.caches.size(), 2u);
  EXPECT_FALSE(s.caches[0].enabled);
  EXPECT_TRUE(s.caches[1].enabled);
  EXPECT_EQ(s.caches[1].line_bytes, 64u);
  EXPECT_EQ(s.caches[1].assocs, (std::vector<int>{4}));
  ASSERT_TRUE(s.parse_axis("algorithm", "dp, greedy").ok());
  EXPECT_EQ(s.algorithms,
            (std::vector<Algorithm>{Algorithm::kExactDp,
                                    Algorithm::kGreedy}));
  ASSERT_TRUE(s.parse_axis("replay", "off, on").ok());
  EXPECT_EQ(s.replays, (std::vector<bool>{false, true}));
}

TEST(SweepSpec, RejectsBadValuesByName) {
  SweepSpec s;
  util::Status st = s.parse_axis("capacity", "1024,0");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("'0'"), std::string::npos);
  st = s.parse_axis("cache", "32");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("'32'"), std::string::npos);
  st = s.parse_axis("cache", "33x2");  // line not a power of two
  EXPECT_FALSE(st.ok());
  st = s.parse_axis("algorithm", "knapsack");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("knapsack"), std::string::npos);
  st = s.parse_axis("replay", "maybe");
  EXPECT_FALSE(st.ok());
  st = s.parse_axis("turbo", "on");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("turbo"), std::string::npos);
}

TEST(SweepSpec, ParsesSpecFileWithComments) {
  SweepSpec s;
  const char* text =
      "# a sweep spec\n"
      "capacity = 256, 4096   # two sizes\n"
      "\n"
      "energy = default:dram_nj=5.5\n"
      "replay = off\n";
  util::Status st = s.parse_file(text);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(s.capacities, (std::vector<uint32_t>{256, 4096}));
  ASSERT_EQ(s.energy_models.size(), 1u);
  EXPECT_DOUBLE_EQ(s.energy_models[0].model.dram_nj, 5.5);
  EXPECT_EQ(s.replays, (std::vector<bool>{false}));
}

TEST(SweepSpec, SpecFileErrorsCarryLineNumbers) {
  SweepSpec s;
  util::Status st = s.parse_file("capacity = 1024\nwarp = on\n");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.first_line(), 2);
  EXPECT_NE(st.message().find("warp"), std::string::npos);
  st = s.parse_file("just words\n");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.first_line(), 1);
}

// -- grid expansion -----------------------------------------------------------

TEST(SweepGrid, ExpandsRowMajorLastAxisFastest) {
  SweepSpec spec;
  ASSERT_TRUE(spec.parse_axis("capacity", "1024,4096").ok());
  ASSERT_TRUE(spec.parse_axis("energy", "default,dram-heavy").ok());
  ASSERT_TRUE(spec.parse_axis("replay", "off,on").ok());
  SweepGrid grid = SweepGrid::expand(spec, core::PipelineOptions{});
  ASSERT_EQ(grid.points_per_job(), 8u);
  // capacity is the slowest axis, replay the fastest.
  EXPECT_EQ(grid.points[0].capacity_bytes, 1024u);
  EXPECT_EQ(grid.points[0].energy_name, "default");
  EXPECT_FALSE(grid.points[0].replay);
  EXPECT_TRUE(grid.points[1].replay);
  EXPECT_EQ(grid.points[2].energy_name, "dram-heavy");
  EXPECT_EQ(grid.points[4].capacity_bytes, 4096u);
  // flat_index inverts the expansion order.
  for (size_t i = 0; i < grid.points.size(); ++i) {
    EXPECT_EQ(grid.flat_index(grid.points[i].key), i);
  }
}

TEST(SweepGrid, EmptyAxesInheritBaseOptions) {
  core::PipelineOptions base;
  base.spm.dse.spm_capacity = 2048;
  base.spm.compare_cache = true;
  base.with_replay = true;
  SweepGrid grid = SweepGrid::expand(SweepSpec{}, base);
  ASSERT_EQ(grid.points_per_job(), 1u);
  const SweepPoint& p = grid.points[0];
  EXPECT_EQ(p.capacity_bytes, 2048u);
  EXPECT_EQ(p.energy_name, "default");
  EXPECT_TRUE(p.cache.enabled);
  EXPECT_EQ(p.cache.label, "base");
  EXPECT_EQ(p.cache.assocs, base.spm.cache_assocs);
  EXPECT_TRUE(p.replay);
}

TEST(SweepGrid, FlatIndexIsBoundsChecked) {
  SweepGrid grid = SweepGrid::expand(SweepSpec{}, core::PipelineOptions{});
  PointKey bad;
  bad.energy = 1;
  EXPECT_THROW(grid.flat_index(bad), util::InternalError);
}

// -- the driver ---------------------------------------------------------------

TEST(SweepDriver, PointsResolveEveryAxisCombination) {
  SweepOptions o = sweep_opts(2);
  ASSERT_TRUE(o.spec.parse_axis("capacity", "256,4096").ok());
  ASSERT_TRUE(o.spec.parse_axis("energy", "default,dram-heavy").ok());
  ASSERT_TRUE(o.spec.parse_axis("cache", "off,32x2").ok());
  auto report = SweepDriver(o).run(good_jobs());
  ASSERT_EQ(report.items.size(), 2u * 8u);
  for (const auto& item : report.items) {
    ASSERT_TRUE(item.status.ok()) << item.status.message();
    EXPECT_GT(item.model_refs, 0u);
    // The cache axis controls the per-point comparison.
    EXPECT_EQ(item.spm.caches.size(),
              item.point.cache.enabled ? 1u : 0u);
  }
  // A dram-heavy point out-saves the default at the same capacity.
  const SweepItem& def = report.at(PointKey{0, 1, 0, 0, 0, 0});
  const SweepItem& heavy = report.at(PointKey{0, 1, 1, 0, 0, 0});
  EXPECT_GT(heavy.selection().saved_nj, def.selection().saved_nj);
}

TEST(SweepDriver, AtIsBoundsChecked) {
  SweepOptions o = sweep_opts(1);
  ASSERT_TRUE(o.spec.parse_axis("capacity", "256,1024").ok());
  auto report = SweepDriver(o).run(good_jobs());
  PointKey ok_key{1, 1, 0, 0, 0, 0};
  EXPECT_EQ(&report.at(ok_key), &report.items[3]);
  PointKey bad_job{2, 0, 0, 0, 0, 0};
  EXPECT_THROW(report.at(bad_job), util::InternalError);
  PointKey bad_cap{0, 2, 0, 0, 0, 0};
  EXPECT_THROW(report.at(bad_cap), util::InternalError);
}

TEST(SweepDriver, NdjsonByteIdenticalAcrossThreadCounts) {
  SweepOptions seq = sweep_opts(1);
  ASSERT_TRUE(seq.spec.parse_axis("capacity", "256,1024,4096").ok());
  ASSERT_TRUE(seq.spec.parse_axis("energy", "default,fast-spm").ok());
  SweepOptions par = seq;
  par.threads = 4;
  auto jobs = good_jobs();

  SweepReport r1 = SweepDriver(seq).run(jobs);
  SweepReport r4 = SweepDriver(par).run(jobs);
  EXPECT_EQ(r1.ndjson(), r4.ndjson());
  EXPECT_EQ(r1.table(), r4.table());

  // The streaming writer emits the same bytes as the buffered report,
  // whatever the thread count.
  std::ostringstream s1, s4;
  ASSERT_TRUE(SweepDriver(seq).run_ndjson(jobs, s1).ok());
  ASSERT_TRUE(SweepDriver(par).run_ndjson(jobs, s4).ok());
  EXPECT_EQ(s1.str(), r1.ndjson());
  EXPECT_EQ(s4.str(), r1.ndjson());
}

TEST(SweepDriver, GreedyAxisPointsReportGreedySelection) {
  SweepOptions o = sweep_opts(2);
  ASSERT_TRUE(o.spec.parse_axis("capacity", "1024").ok());
  ASSERT_TRUE(o.spec.parse_axis("algorithm", "dp,greedy").ok());
  auto report = SweepDriver(o).run(good_jobs());
  const SweepItem& dp = report.at(PointKey{0, 0, 0, 0, 0, 0});
  const SweepItem& greedy = report.at(PointKey{0, 0, 0, 0, 1, 0});
  EXPECT_EQ(&dp.selection(), &dp.spm.exact);
  EXPECT_EQ(&greedy.selection(), &greedy.spm.greedy);
  // The exact DP point's headline energy is spm_phase's evaluation
  // verbatim; the greedy point's is recomputed for its own selection.
  EXPECT_DOUBLE_EQ(dp.energy.total_nj, dp.spm.with_spm.total_nj);
  EXPECT_GE(greedy.energy.total_nj, dp.energy.total_nj);
  EXPECT_GT(greedy.energy.baseline_nj, 0.0);
}

TEST(SweepDriver, ReplayAxisValidatesPerPoint) {
  SweepOptions o = sweep_opts(1);
  ASSERT_TRUE(o.spec.parse_axis("capacity", "1024").ok());
  ASSERT_TRUE(o.spec.parse_axis("replay", "off,on").ok());
  auto report = SweepDriver(o).run({{"alpha", kGood}});
  const SweepItem& off = report.at(PointKey{0, 0, 0, 0, 0, 0});
  const SweepItem& on = report.at(PointKey{0, 0, 0, 0, 0, 1});
  EXPECT_FALSE(off.replay_ran);
  ASSERT_TRUE(on.replay_ran);
  EXPECT_TRUE(on.replay.matches());
}

TEST(SweepDriver, ParetoFrontierIsStrictlyImproving) {
  SweepOptions o = sweep_opts(2);
  ASSERT_TRUE(o.spec.parse_axis("capacity", "64,256,1024,4096").ok());
  ASSERT_TRUE(o.spec.parse_axis("algorithm", "dp,greedy").ok());
  auto report = SweepDriver(o).run(good_jobs());
  for (size_t j = 0; j < report.programs.size(); ++j) {
    auto front = report.pareto(j);
    ASSERT_FALSE(front.empty());
    for (size_t i = 1; i < front.size(); ++i) {
      // Sorted by bytes, strictly better in both coordinates.
      EXPECT_GT(front[i].bytes_used, front[i - 1].bytes_used);
      EXPECT_GT(front[i].saved_nj, front[i - 1].saved_nj);
    }
    // Frontier points resolve through at() and agree with the item.
    for (const auto& p : front) {
      const SweepItem& item = report.at(p.key);
      EXPECT_EQ(item.selection().bytes_used, p.bytes_used);
      EXPECT_DOUBLE_EQ(item.selection().saved_nj, p.saved_nj);
    }
    // No grid point dominates a frontier point.
    for (const auto& p : front) {
      for (size_t i = 0; i < report.grid.points_per_job(); ++i) {
        const SweepItem& item =
            report.items[j * report.grid.points_per_job() + i];
        if (!item.status.ok()) continue;
        const bool dominates =
            item.selection().bytes_used <= p.bytes_used &&
            item.selection().saved_nj > p.saved_nj;
        EXPECT_FALSE(dominates);
      }
    }
  }
  auto agg = report.pareto_aggregate();
  ASSERT_FALSE(agg.empty());
  for (size_t i = 1; i < agg.size(); ++i) {
    EXPECT_GT(agg[i].bytes_used, agg[i - 1].bytes_used);
    EXPECT_GT(agg[i].saved_nj, agg[i - 1].saved_nj);
  }
}

TEST(SweepDriver, FailingJobIsIsolatedAndSkippedInAggregate) {
  SweepOptions o = sweep_opts(3);
  ASSERT_TRUE(o.spec.parse_axis("capacity", "256,1024").ok());
  auto report = SweepDriver(o).run(
      {{"ok", kGood}, {"bad", kParseError}, {"ok2", kGood2}});
  ASSERT_EQ(report.items.size(), 6u);
  EXPECT_TRUE(report.at(PointKey{0, 1, 0, 0, 0, 0}).status.ok());
  EXPECT_FALSE(report.at(PointKey{1, 0, 0, 0, 0, 0}).status.ok());
  EXPECT_EQ(report.at(PointKey{1, 0, 0, 0, 0, 0}).status.phase(), "parse");
  EXPECT_TRUE(report.at(PointKey{2, 0, 0, 0, 0, 0}).status.ok());
  // The failed program still has table rows and an empty frontier; the
  // aggregate skips points any program failed at — here all of them.
  EXPECT_NE(report.table().find("FAILED"), std::string::npos);
  EXPECT_TRUE(report.pareto(1).empty());
  EXPECT_TRUE(report.pareto_aggregate().empty());
  EXPECT_FALSE(report.pareto(0).empty());
  // The streaming writer surfaces the first failure but writes the
  // whole grid.
  std::ostringstream os;
  util::Status st = SweepDriver(o).run_ndjson(
      {{"ok", kGood}, {"bad", kParseError}, {"ok2", kGood2}}, os);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(os.str(), report.ndjson());
}

TEST(SweepDriver, BrokenProgramYieldsClassifiedRowsOthersUnchanged) {
  // One broken program in the job list: its points become structured
  // error rows (error_class + phase), identical whatever the thread
  // count, and every other program's rows are byte-identical to a run
  // that never included the broken program at all.
  SweepOptions o = sweep_opts(1);
  ASSERT_TRUE(o.spec.parse_axis("capacity", "256,1024").ok());
  const std::vector<SweepJob> with_bad = {
      {"ok", kGood}, {"ok2", kGood2}, {"bad", kParseError}};
  const std::vector<SweepJob> without_bad = {{"ok", kGood},
                                             {"ok2", kGood2}};

  std::ostringstream faulty1, faulty4, clean;
  EXPECT_FALSE(SweepDriver(o).run_ndjson(with_bad, faulty1).ok());
  SweepOptions o4 = sweep_opts(4);
  ASSERT_TRUE(o4.spec.parse_axis("capacity", "256,1024").ok());
  EXPECT_FALSE(SweepDriver(o4).run_ndjson(with_bad, faulty4).ok());
  EXPECT_EQ(faulty1.str(), faulty4.str());
  ASSERT_TRUE(SweepDriver(o).run_ndjson(without_bad, clean).ok());

  auto lines_of = [](const std::string& text) {
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < text.size()) {
      size_t nl = text.find('\n', pos);
      if (nl == std::string::npos) nl = text.size();
      lines.push_back(text.substr(pos, nl - pos));
      pos = nl + 1;
    }
    return lines;
  };
  auto rows_mentioning = [&](const std::string& text, const char* name) {
    std::vector<std::string> rows;
    // Matches point and pareto rows alike; the closing quote keeps "ok"
    // from matching "ok2".
    const std::string needle =
        std::string("\"program\":\"") + name + "\"";
    for (const std::string& line : lines_of(text)) {
      if (line.find(needle) != std::string::npos) rows.push_back(line);
    }
    return rows;
  };

  // Error rows exist, only for "bad", and carry class + phase.
  int error_rows = 0;
  for (const std::string& line : lines_of(faulty1.str())) {
    if (line.find("\"ok\":false") == std::string::npos) continue;
    ++error_rows;
    EXPECT_NE(line.find("\"program\":\"bad\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"error_class\":\"invalid_input\""),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"phase\":\"parse\""), std::string::npos) << line;
  }
  EXPECT_EQ(error_rows, 2);  // one per capacity

  // The healthy programs' rows are byte-identical with and without the
  // broken job (it is last, so their job indices agree).
  EXPECT_EQ(rows_mentioning(faulty1.str(), "ok"),
            rows_mentioning(clean.str(), "ok"));
  EXPECT_EQ(rows_mentioning(faulty1.str(), "ok2"),
            rows_mentioning(clean.str(), "ok2"));
}

TEST(SweepDriver, NdjsonEscapesHostileProgramNames) {
  SweepOptions o = sweep_opts(1);
  ASSERT_TRUE(o.spec.parse_axis("capacity", "1024").ok());
  auto report = SweepDriver(o).run({{"we\"ird\\name\n", kGood}});
  const std::string nd = report.ndjson();
  EXPECT_NE(nd.find("we\\\"ird\\\\name\\n"), std::string::npos);
}

}  // namespace
}  // namespace foray::driver
