#include <gtest/gtest.h>

#include "minic/lexer.h"

namespace foray::minic {
namespace {

std::vector<Token> lex_ok(std::string_view src) {
  util::DiagList diags;
  Lexer lexer(src, &diags);
  auto toks = lexer.lex_all();
  EXPECT_TRUE(diags.empty()) << diags.str();
  return toks;
}

TEST(Lexer, EmptyInputYieldsEof) {
  auto t = lex_ok("");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].kind, Tok::kEof);
}

TEST(Lexer, Keywords) {
  auto t = lex_ok("int char short float void if else for while do "
                  "return break continue const");
  EXPECT_EQ(t[0].kind, Tok::kwInt);
  EXPECT_EQ(t[1].kind, Tok::kwChar);
  EXPECT_EQ(t[2].kind, Tok::kwShort);
  EXPECT_EQ(t[3].kind, Tok::kwFloat);
  EXPECT_EQ(t[4].kind, Tok::kwVoid);
  EXPECT_EQ(t[5].kind, Tok::kwIf);
  EXPECT_EQ(t[6].kind, Tok::kwElse);
  EXPECT_EQ(t[7].kind, Tok::kwFor);
  EXPECT_EQ(t[8].kind, Tok::kwWhile);
  EXPECT_EQ(t[9].kind, Tok::kwDo);
  EXPECT_EQ(t[10].kind, Tok::kwReturn);
  EXPECT_EQ(t[11].kind, Tok::kwBreak);
  EXPECT_EQ(t[12].kind, Tok::kwContinue);
  EXPECT_EQ(t[13].kind, Tok::kwConst);
}

TEST(Lexer, IdentifiersNotKeywords) {
  auto t = lex_ok("form whiled _x x1 int_");
  for (int i = 0; i < 5; ++i) EXPECT_EQ(t[i].kind, Tok::kIdent) << i;
  EXPECT_EQ(t[0].text, "form");
  EXPECT_EQ(t[4].text, "int_");
}

TEST(Lexer, IntLiterals) {
  auto t = lex_ok("0 42 100000 0x1F 0xabc");
  EXPECT_EQ(t[0].int_val, 0);
  EXPECT_EQ(t[1].int_val, 42);
  EXPECT_EQ(t[2].int_val, 100000);
  EXPECT_EQ(t[3].int_val, 0x1F);
  EXPECT_EQ(t[4].int_val, 0xabc);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(t[i].kind, Tok::kIntLit);
}

// Lex a source expected to produce at least one diagnostic; returns the
// diagnostic text for content checks. The offending token must surface
// as Tok::kError, never as a silently-wrong literal.
std::string lex_err(std::string_view src) {
  util::DiagList diags;
  Lexer lexer(src, &diags);
  auto toks = lexer.lex_all();
  EXPECT_FALSE(diags.empty()) << "expected a diagnostic for: " << src;
  bool saw_error = false;
  for (const auto& t : toks) saw_error |= t.kind == Tok::kError;
  EXPECT_TRUE(saw_error) << "expected a kError token for: " << src;
  return diags.str();
}

TEST(Lexer, IntLiteralOverflowIsDiagnosed) {
  // 2^64: strtoull would saturate this to ULLONG_MAX with only errno to
  // show for it. It must be rejected, not silently become a different
  // constant.
  EXPECT_NE(lex_err("18446744073709551616").find("overflows 64 bits"),
            std::string::npos);
  // Same via hex (2^64 as 0x1 followed by sixteen zeros).
  EXPECT_NE(lex_err("0x10000000000000000").find("overflows 64 bits"),
            std::string::npos);
  // A grotesquely long literal, nowhere near representable.
  EXPECT_NE(lex_err("99999999999999999999999999999").find("overflows"),
            std::string::npos);
}

TEST(Lexer, IntLiteralMaxValuesStillLex) {
  // 2^64 - 1 fits in the uint64 parse; it wraps to -1 when stored in the
  // signed token value, matching the simulator's 64-bit wraparound
  // semantics.
  auto t = lex_ok("18446744073709551615 0xFFFFFFFFFFFFFFFF "
                  "9223372036854775807");
  EXPECT_EQ(t[0].kind, Tok::kIntLit);
  EXPECT_EQ(t[0].int_val, -1);
  EXPECT_EQ(t[1].int_val, -1);
  EXPECT_EQ(t[2].int_val, 9223372036854775807LL);
}

TEST(Lexer, BareHexPrefixIsMalformed) {
  // "0x" with no digits: the scanner consumes the prefix, leaving an
  // empty digit string for the converter.
  EXPECT_NE(lex_err("0x").find("malformed integer literal"),
            std::string::npos);
  EXPECT_NE(lex_err("int v = 0x;").find("malformed"), std::string::npos);
}

TEST(Lexer, FloatLiterals) {
  auto t = lex_ok("1.5 0.25 2e3 1.5e-2 3f 2.0f");
  EXPECT_EQ(t[0].kind, Tok::kFloatLit);
  EXPECT_DOUBLE_EQ(t[0].float_val, 1.5);
  EXPECT_DOUBLE_EQ(t[1].float_val, 0.25);
  EXPECT_DOUBLE_EQ(t[2].float_val, 2000.0);
  EXPECT_DOUBLE_EQ(t[3].float_val, 0.015);
  EXPECT_EQ(t[4].kind, Tok::kFloatLit);
  EXPECT_DOUBLE_EQ(t[4].float_val, 3.0);
  EXPECT_DOUBLE_EQ(t[5].float_val, 2.0);
}

TEST(Lexer, CharLiterals) {
  auto t = lex_ok(R"('a' '\n' '\0' '\'' '\\')");
  EXPECT_EQ(t[0].int_val, 'a');
  EXPECT_EQ(t[1].int_val, '\n');
  EXPECT_EQ(t[2].int_val, 0);
  EXPECT_EQ(t[3].int_val, '\'');
  EXPECT_EQ(t[4].int_val, '\\');
}

TEST(Lexer, StringLiterals) {
  auto t = lex_ok(R"("hello" "a\nb" "")");
  EXPECT_EQ(t[0].kind, Tok::kStrLit);
  EXPECT_EQ(t[0].str_val, "hello");
  EXPECT_EQ(t[1].str_val, "a\nb");
  EXPECT_EQ(t[2].str_val, "");
}

TEST(Lexer, OperatorsMaximalMunch) {
  auto t = lex_ok("++ -- += -= *= /= %= <<= >>= &= |= ^= << >> <= >= == != "
                  "&& || < > = + - * / % & | ^ ~ !");
  Tok expect[] = {Tok::kPlusPlus, Tok::kMinusMinus, Tok::kPlusEq,
                  Tok::kMinusEq, Tok::kStarEq, Tok::kSlashEq, Tok::kPercentEq,
                  Tok::kShlEq, Tok::kShrEq, Tok::kAmpEq, Tok::kPipeEq,
                  Tok::kCaretEq, Tok::kShl, Tok::kShr, Tok::kLe, Tok::kGe,
                  Tok::kEqEq, Tok::kNe, Tok::kAmpAmp, Tok::kPipePipe,
                  Tok::kLt, Tok::kGt, Tok::kAssign, Tok::kPlus, Tok::kMinus,
                  Tok::kStar, Tok::kSlash, Tok::kPercent, Tok::kAmp,
                  Tok::kPipe, Tok::kCaret, Tok::kTilde, Tok::kBang};
  for (size_t i = 0; i < std::size(expect); ++i) {
    EXPECT_EQ(t[i].kind, expect[i]) << "token " << i;
  }
}

TEST(Lexer, LineComments) {
  auto t = lex_ok("a // this is ignored ++ --\nb");
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
  EXPECT_EQ(t[2].kind, Tok::kEof);
}

TEST(Lexer, BlockComments) {
  auto t = lex_ok("a /* stuff\nmore */ b");
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
  EXPECT_EQ(t[1].line, 2);
}

TEST(Lexer, LineNumbersTracked) {
  auto t = lex_ok("a\nb\n\nc");
  EXPECT_EQ(t[0].line, 1);
  EXPECT_EQ(t[1].line, 2);
  EXPECT_EQ(t[2].line, 4);
}

TEST(Lexer, UnterminatedBlockCommentDiagnosed) {
  util::DiagList diags;
  Lexer lexer("a /* never closed", &diags);
  lexer.lex_all();
  EXPECT_FALSE(diags.empty());
}

TEST(Lexer, UnterminatedStringDiagnosed) {
  util::DiagList diags;
  Lexer lexer("\"abc", &diags);
  auto t = lexer.lex_all();
  EXPECT_FALSE(diags.empty());
}

TEST(Lexer, UnexpectedCharacterDiagnosed) {
  util::DiagList diags;
  Lexer lexer("int $x;", &diags);
  auto t = lexer.lex_all();
  EXPECT_FALSE(diags.empty());
}

TEST(Lexer, PunctuationAll) {
  auto t = lex_ok("( ) { } [ ] , ; ? :");
  Tok expect[] = {Tok::kLParen, Tok::kRParen, Tok::kLBrace, Tok::kRBrace,
                  Tok::kLBracket, Tok::kRBracket, Tok::kComma, Tok::kSemi,
                  Tok::kQuestion, Tok::kColon};
  for (size_t i = 0; i < std::size(expect); ++i) {
    EXPECT_EQ(t[i].kind, expect[i]);
  }
}

TEST(Lexer, RealisticSnippet) {
  auto t = lex_ok(
      "while (currow < numrows)\n"
      "  for (i = rowsperchunk; i > 0; i--) {\n"
      "    result[currow++] = workspace;\n"
      "  }\n");
  EXPECT_EQ(t[0].kind, Tok::kwWhile);
  // Verify the whole stream lexes without error and ends in EOF.
  EXPECT_EQ(t.back().kind, Tok::kEof);
}

}  // namespace
}  // namespace foray::minic
