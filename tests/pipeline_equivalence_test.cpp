// Pipeline-overlap equivalence: profiling with the simulator as a
// producer thread and extractor consumer thread(s) behind lock-light
// chunk rings (foray/online_pipeline.h) must reproduce the sequential
// fused online extraction bit for bit — loop tree, affine states,
// emitted model AND simulator results — for every benchsuite program,
// seeded stress program, consumer count, chunk size and engine. This is
// the contract that makes --pipeline purely a performance knob.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "benchsuite/generator.h"
#include "benchsuite/suite.h"
#include "foray/extractor.h"
#include "foray/online_pipeline.h"
#include "foray/pipeline.h"
#include "sim/interpreter.h"
#include "trace/sink.h"

namespace foray::core {
namespace {

/// Deterministic deep fingerprint of an extraction (same contract as
/// tests/shard_equivalence_test.cpp).
std::string fingerprint(const Extractor& ex) {
  std::ostringstream os;
  os << "records " << ex.records_processed() << " accesses "
     << ex.accesses_processed() << " checkpoints "
     << ex.checkpoints_processed() << "\n";
  for_each_node(*ex.tree().root(), [&](const LoopNode& node) {
    os << "loop " << node.loop_id() << " depth " << node.depth()
       << " entries " << node.entries << " iters " << node.total_iterations
       << " max_trip " << node.max_trip << "\n";
    for (const auto& ref : node.refs()) {
      uint64_t fp_xor = 0, fp_sum = 0;
      ref->footprint().for_each([&](uint32_t a) {
        fp_xor ^= a;
        fp_sum += a;
      });
      os << "  ref " << ref->instr << " exec " << ref->exec_count << " fp "
         << ref->footprint_size() << ":" << fp_xor << ":" << fp_sum
         << (ref->footprint_saturated() ? "*" : "")
         << (ref->has_read ? " r" : "") << (ref->has_write ? " w" : "")
         << " size " << static_cast<int>(ref->access_size) << " kind "
         << static_cast<int>(ref->kind);
      AffineFunction fn = finalize(ref->affine);
      os << " affine[" << (fn.analyzable ? "a" : "x") << " m=" << fn.m
         << " c=" << fn.const_term;
      for (size_t i = 0; i < fn.coefs.size(); ++i) {
        os << " " << fn.coefs[i] << (fn.known[i] ? "" : "?");
      }
      os << " obs=" << ref->affine.observations << "]\n";
    }
  });
  return os.str();
}

void expect_same_run(const sim::RunResult& got, const sim::RunResult& want,
                     const std::string& what) {
  EXPECT_EQ(got.status.ok(), want.status.ok()) << what;
  EXPECT_EQ(got.exit_code, want.exit_code) << what;
  EXPECT_EQ(got.output, want.output) << what;
  EXPECT_EQ(got.steps, want.steps) << what;
  EXPECT_EQ(got.accesses, want.accesses) << what;
}

class PipelineEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineEquivalence, OverlappedProfilingMatchesFusedOnline) {
  const auto& b = benchsuite::get_benchmark(GetParam());
  PipelineResult res;
  ASSERT_TRUE(frontend_phase(b.source, &res).ok()) << res.error();
  ASSERT_TRUE(instrument_phase(&res).ok());

  for (sim::Engine engine : {sim::Engine::Bytecode, sim::Engine::Ast}) {
    sim::RunOptions ropts;
    ropts.engine = engine;

    Extractor online;
    auto want_run = sim::run_program(*res.program, &online, ropts);
    ASSERT_TRUE(want_run.ok()) << want_run.error();
    const std::string want = fingerprint(online);

    for (int consumers : {1, 2, 3}) {
      const std::string what =
          std::string(b.name) + ": engine=" +
          (engine == sim::Engine::Ast ? "ast" : "bytecode") +
          " consumers=" + std::to_string(consumers);
      Extractor ex;
      ShardReport rep;
      auto run = run_profile_pipelined(*res.program, ropts,
                                       ExtractorOptions{}, consumers, &ex,
                                       &rep);
      expect_same_run(run, want_run, what);
      EXPECT_EQ(fingerprint(ex), want) << what;
      EXPECT_EQ(rep.shards_requested, consumers) << what;
      EXPECT_EQ(rep.records, online.records_processed()) << what;
      if (rep.records > 0) {
        EXPECT_GE(rep.balance, 1.0) << what;
      }
    }
  }
}

TEST_P(PipelineEquivalence, OddChunkSizesSurviveRouting) {
  // Small emitter chunks force many ring runs and frequent slot rolls —
  // the worst case for the run bookkeeping.
  const auto& b = benchsuite::get_benchmark(GetParam());
  PipelineResult res;
  ASSERT_TRUE(frontend_phase(b.source, &res).ok()) << res.error();
  ASSERT_TRUE(instrument_phase(&res).ok());

  sim::RunOptions ropts;
  ropts.chunk_records = 513;
  Extractor online;
  ASSERT_TRUE(sim::run_program(*res.program, &online, ropts).ok());
  const std::string want = fingerprint(online);

  for (int consumers : {1, 3}) {
    Extractor ex;
    auto run = run_profile_pipelined(*res.program, ropts, ExtractorOptions{},
                                     consumers, &ex, nullptr);
    ASSERT_TRUE(run.ok()) << run.error();
    EXPECT_EQ(fingerprint(ex), want)
        << b.name << ": chunk=513 consumers=" << consumers;
  }
}

TEST_P(PipelineEquivalence, PipelinedPipelineModelMatchesSequential) {
  const auto& b = benchsuite::get_benchmark(GetParam());
  auto seq = run_pipeline(b.source);
  ASSERT_TRUE(seq.ok()) << seq.error();

  for (int shards : {1, 2}) {
    PipelineOptions opts;
    opts.profile_pipeline = true;
    opts.profile_shards = shards;
    auto pl = run_pipeline(b.source, opts);
    ASSERT_TRUE(pl.ok()) << b.name << ": " << pl.error();
    EXPECT_EQ(pl.foray_source, seq.foray_source)
        << b.name << ": emitted model differs, pipeline shards=" << shards;
    EXPECT_EQ(pl.foray_paper_style, seq.foray_paper_style)
        << b.name << ": paper-style differs, pipeline shards=" << shards;
    EXPECT_EQ(pl.trace_records, seq.trace_records);
    EXPECT_EQ(pl.shard_report.shards_requested, shards);
  }
}

TEST(PipelineStress, SeededProgramsMatchAcrossConsumerCounts) {
  for (uint64_t seed : {5, 17, 59, 83}) {
    benchsuite::StressOptions sopts;
    sopts.seed = seed;
    const std::string src = benchsuite::generate_stress_program(sopts);
    PipelineResult res;
    ASSERT_TRUE(frontend_phase(src, &res).ok()) << "seed " << seed;
    ASSERT_TRUE(instrument_phase(&res).ok());

    sim::RunOptions ropts;
    Extractor online;
    auto want_run = sim::run_program(*res.program, &online, ropts);
    ASSERT_TRUE(want_run.ok()) << "seed " << seed << ": " << want_run.error();
    const std::string want = fingerprint(online);

    for (int consumers : {2, 4}) {
      Extractor ex;
      auto run = run_profile_pipelined(*res.program, ropts,
                                       ExtractorOptions{}, consumers, &ex,
                                       nullptr);
      expect_same_run(run, want_run,
                      "seed " + std::to_string(seed) +
                          " consumers=" + std::to_string(consumers));
      EXPECT_EQ(fingerprint(ex), want)
          << "seed " << seed << ": consumers=" << consumers;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, PipelineEquivalence,
                         ::testing::Values("jpeg", "lame", "susan", "fft",
                                           "gsm", "adpcm"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

}  // namespace
}  // namespace foray::core
