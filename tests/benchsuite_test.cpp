#include <gtest/gtest.h>

#include <cmath>

#include "benchsuite/suite.h"
#include "foray/inline_advisor.h"
#include "foray/pipeline.h"
#include "staticforay/static_analysis.h"

namespace foray::benchsuite {
namespace {

using core::run_pipeline;

TEST(Suite, HasSixBenchmarksInPaperOrder) {
  const auto& all = all_benchmarks();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "jpeg");
  EXPECT_EQ(all[1].name, "lame");
  EXPECT_EQ(all[2].name, "susan");
  EXPECT_EQ(all[3].name, "fft");
  EXPECT_EQ(all[4].name, "gsm");
  EXPECT_EQ(all[5].name, "adpcm");
}

TEST(Suite, LookupByNameAndUnknownThrows) {
  EXPECT_EQ(get_benchmark("gsm").name, "gsm");
  EXPECT_THROW(get_benchmark("nope"), util::InternalError);
}

// Every benchmark must parse, check, execute cleanly and produce its
// checksum line plus a non-trivial FORAY model.
class BenchmarkRun : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchmarkRun, ExecutesAndExtracts) {
  const Benchmark& b = get_benchmark(GetParam());
  auto res = run_pipeline(b.source);
  ASSERT_TRUE(res.ok()) << b.name << ": " << res.error();
  EXPECT_EQ(res.run.exit_code, 0);
  EXPECT_NE(res.run.output.find("check"), std::string::npos)
      << "output was: " << res.run.output;
  EXPECT_GT(res.model.refs.size(), 0u) << b.name;
  EXPECT_GT(res.model.total_accesses(), 0u);
}

TEST_P(BenchmarkRun, DeterministicAcrossRuns) {
  const Benchmark& b = get_benchmark(GetParam());
  auto r1 = run_pipeline(b.source);
  auto r2 = run_pipeline(b.source);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.run.output, r2.run.output);
  EXPECT_EQ(r1.model.refs.size(), r2.model.refs.size());
  EXPECT_EQ(r1.trace_records, r2.trace_records);
}

INSTANTIATE_TEST_SUITE_P(All, BenchmarkRun,
                         ::testing::Values("jpeg", "lame", "susan", "fft",
                                           "gsm", "adpcm"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

TEST(SuiteShape, AdpcmHasExactlyTwoLoopsOneForOneWhile) {
  auto res = run_pipeline(get_benchmark("adpcm").source);
  ASSERT_TRUE(res.ok()) << res.error();
  auto mix = core::compute_loop_mix(res.extractor->tree(), res.loop_sites,
                                    res.program->source_lines);
  EXPECT_EQ(mix.total, 2);
  EXPECT_EQ(mix.for_loops, 1);
  EXPECT_EQ(mix.while_loops, 1);
}

TEST(SuiteShape, AdpcmFullyDynamic) {
  // Paper Table II: 100% of adpcm's FORAY-form references are NOT in
  // FORAY form in the source.
  auto res = run_pipeline(get_benchmark("adpcm").source);
  ASSERT_TRUE(res.ok()) << res.error();
  auto analysis = staticforay::analyze(*res.program);
  auto cs = staticforay::compute_conversion(res.model, analysis);
  ASSERT_GT(cs.model_refs, 0);
  EXPECT_DOUBLE_EQ(cs.pct_refs_not_foray(), 100.0);
  EXPECT_DOUBLE_EQ(cs.pct_loops_not_foray(), 100.0);
}

TEST(SuiteShape, FftFullyStatic) {
  // Paper Table II: fft is the one benchmark already in FORAY form.
  auto res = run_pipeline(get_benchmark("fft").source);
  ASSERT_TRUE(res.ok()) << res.error();
  auto analysis = staticforay::analyze(*res.program);
  auto cs = staticforay::compute_conversion(res.model, analysis);
  ASSERT_GT(cs.model_refs, 0);
  EXPECT_DOUBLE_EQ(cs.pct_refs_not_foray(), 0.0);
  EXPECT_DOUBLE_EQ(cs.pct_loops_not_foray(), 0.0);
}

TEST(SuiteShape, FftAllForLoops) {
  auto res = run_pipeline(get_benchmark("fft").source);
  ASSERT_TRUE(res.ok());
  auto mix = core::compute_loop_mix(res.extractor->tree(), res.loop_sites,
                                    res.program->source_lines);
  EXPECT_EQ(mix.while_loops, 0);
  EXPECT_EQ(mix.do_loops, 0);
  EXPECT_GT(mix.for_loops, 8);
}

TEST(SuiteShape, LameHasDoLoops) {
  auto res = run_pipeline(get_benchmark("lame").source);
  ASSERT_TRUE(res.ok()) << res.error();
  auto mix = core::compute_loop_mix(res.extractor->tree(), res.loop_sites,
                                    res.program->source_lines);
  EXPECT_GT(mix.do_loops, 0);
  EXPECT_GT(mix.for_loops, mix.while_loops + mix.do_loops);
}

TEST(SuiteShape, JpegLoopMixResemblesPaper) {
  auto res = run_pipeline(get_benchmark("jpeg").source);
  ASSERT_TRUE(res.ok());
  auto mix = core::compute_loop_mix(res.extractor->tree(), res.loop_sites,
                                    res.program->source_lines);
  // for-dominant with a substantial while share (paper: 65%/34%/1%).
  EXPECT_GT(mix.pct_for(), 50.0);
  EXPECT_GT(mix.pct_while(), 10.0);
}

TEST(SuiteShape, JpegConversionGainIsSubstantial) {
  auto res = run_pipeline(get_benchmark("jpeg").source);
  ASSERT_TRUE(res.ok()) << res.error();
  auto analysis = staticforay::analyze(*res.program);
  auto cs = staticforay::compute_conversion(res.model, analysis);
  ASSERT_GT(cs.model_refs, 0);
  // Paper: 38% of jpeg's model references are not statically FORAY.
  EXPECT_GT(cs.pct_refs_not_foray(), 15.0);
  EXPECT_LT(cs.pct_refs_not_foray(), 80.0);
  EXPECT_GT(cs.ref_increase_factor(), 1.2);
}

TEST(SuiteShape, JpegProducesInlineHint) {
  // fdct_block runs from the luma and chroma loops.
  auto res = run_pipeline(get_benchmark("jpeg").source);
  ASSERT_TRUE(res.ok());
  auto hints = core::compute_inline_hints(res.model, res.loop_sites);
  bool found = false;
  for (const auto& h : hints) {
    if (h.func_name == "fdct_block") {
      found = true;
      EXPECT_GE(h.contexts, 2);
      EXPECT_TRUE(h.patterns_differ);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SuiteShape, LamePartialAffineAppears) {
  // The scalefactor-band loop has data-dependent bases.
  auto res = run_pipeline(get_benchmark("lame").source);
  ASSERT_TRUE(res.ok());
  int partials = 0;
  for (const auto& r : res.model.refs) {
    if (r.partial()) ++partials;
  }
  EXPECT_GT(partials, 0);
}

TEST(SuiteShape, SystemTrafficPresentInJpeg) {
  auto res = run_pipeline(get_benchmark("jpeg").source);
  ASSERT_TRUE(res.ok());
  auto b = core::compute_behavior(res.extractor->tree(),
                                  core::FilterOptions{});
  EXPECT_GT(b.system.accesses, 0u);
  EXPECT_GT(b.model.accesses, 0u);
  // Few model refs cover a disproportionate share of accesses (the
  // Table III shape): the model's access share far exceeds its ref share.
  const double ref_share =
      static_cast<double>(b.model.refs) / static_cast<double>(b.total.refs);
  const double access_share = static_cast<double>(b.model.accesses) /
                              static_cast<double>(b.total.accesses);
  // Note: our ISS keeps every scalar in simulated memory, so loop-counter
  // traffic lands in "other"; a compiling toolchain (as in the paper)
  // would register-allocate it and widen this gap further.
  EXPECT_LT(ref_share, 0.2);
  EXPECT_GT(access_share, 1.3 * ref_share);
  EXPECT_GT(access_share, 0.1);
}

TEST(SuiteShape, AverageConversionFactorNearTwo) {
  // The headline claim: on average ~2x more analyzable references.
  double product_log = 0.0;
  int counted = 0;
  for (const auto& b : all_benchmarks()) {
    auto res = run_pipeline(b.source);
    ASSERT_TRUE(res.ok()) << b.name << ": " << res.error();
    auto analysis = staticforay::analyze(*res.program);
    auto cs = staticforay::compute_conversion(res.model, analysis);
    if (cs.model_refs == 0) continue;
    product_log += std::log(cs.ref_increase_factor());
    ++counted;
  }
  ASSERT_GT(counted, 0);
  const double geomean = std::exp(product_log / counted);
  EXPECT_GT(geomean, 1.3);  // substantially more reach than static-only
  EXPECT_LT(geomean, 6.0);
}

}  // namespace
}  // namespace foray::benchsuite
