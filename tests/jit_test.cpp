// The jit subsystem in isolation: encoder golden bytes, W^X memory
// behavior (including classified mapping failures), compiled-image
// statistics and reuse, and the engine-level degradation contract. The
// differential harness (engine_equivalence_test) owns semantic
// equivalence; this file owns the machinery underneath it.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "benchsuite/suite.h"
#include "instrument/annotator.h"
#include "jit/assembler.h"
#include "jit/compiler.h"
#include "jit/engine.h"
#include "jit/exec_memory.h"
#include "minic/parser.h"
#include "trace/sink.h"

namespace foray::jit {
namespace {

#if defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))
constexpr bool kNativeBuild = true;
#else
constexpr bool kNativeBuild = false;
#endif

TEST(JitSupport, MatchesThePlatformGate) {
  EXPECT_EQ(jit_supported(), kNativeBuild);
}

// -- assembler ---------------------------------------------------------------

TEST(JitAssembler, EncodesGoldenBytes) {
  // Spot-check encodings against hand-assembled forms (Intel SDM);
  // these run on every platform since the encoder only fills a vector.
  {
    Assembler a;
    a.mov_rr(R64::r13, R64::rdi);  // mov r13, rdi
    const uint8_t want[] = {0x49, 0x89, 0xFD};
    ASSERT_EQ(a.bytes().size(), sizeof(want));
    EXPECT_EQ(0, std::memcmp(a.bytes().data(), want, sizeof(want)));
  }
  {
    Assembler a;
    a.sub_ri8(R64::r14, 1);  // sub r14, 1
    const uint8_t want[] = {0x49, 0x83, 0xEE, 0x01};
    ASSERT_EQ(a.bytes().size(), sizeof(want));
    EXPECT_EQ(0, std::memcmp(a.bytes().data(), want, sizeof(want)));
  }
  {
    Assembler a;
    a.load_rm(R64::rax, R64::r13, 0x40);  // mov rax, [r13+0x40]
    const uint8_t want[] = {0x49, 0x8B, 0x85, 0x40, 0x00, 0x00, 0x00};
    ASSERT_EQ(a.bytes().size(), sizeof(want));
    EXPECT_EQ(0, std::memcmp(a.bytes().data(), want, sizeof(want)));
  }
  {
    // rsp-based memory operands must carry the SIB byte.
    Assembler a;
    a.store_mr(R64::rsp, 8, R64::rcx);  // mov [rsp+8], rcx
    const uint8_t want[] = {0x48, 0x89, 0x8C, 0x24, 0x08, 0x00, 0x00, 0x00};
    ASSERT_EQ(a.bytes().size(), sizeof(want));
    EXPECT_EQ(0, std::memcmp(a.bytes().data(), want, sizeof(want)));
  }
  {
    Assembler a;
    a.jmp_mem_index8(R64::r12, R64::rax);  // jmp [r12 + rax*8]
    const uint8_t want[] = {0x41, 0xFF, 0x24, 0xC4};
    ASSERT_EQ(a.bytes().size(), sizeof(want));
    EXPECT_EQ(0, std::memcmp(a.bytes().data(), want, sizeof(want)));
  }
}

TEST(JitAssembler, PatchesRelativeJumps) {
  Assembler a;
  const size_t fix = a.jmp();      // jmp rel32 (placeholder)
  const size_t target = a.here();  // lands right after the jump
  a.ret();
  a.patch_rel32(fix, target);
  // rel32 = target - (end of the jump instruction) = 0.
  ASSERT_EQ(a.bytes().size(), 6u);
  EXPECT_EQ(a.bytes()[0], 0xE9);
  uint32_t rel = 0;
  std::memcpy(&rel, a.bytes().data() + fix, 4);
  EXPECT_EQ(rel, 0u);
}

// -- executable memory -------------------------------------------------------

TEST(JitExecMemory, RunsEmittedCodeAfterFinalize) {
  if (!jit_supported()) GTEST_SKIP() << "no native codegen on this build";
  // int f(void) { return 42; }  =>  mov eax, 42; ret
  Assembler a;
  a.mov_ri64(R64::rax, 42);
  a.ret();

  ExecMemory mem;
  ASSERT_TRUE(ExecMemory::allocate(a.bytes().size(), &mem).ok());
  ASSERT_NE(mem.data(), nullptr);
  EXPECT_GE(mem.size(), a.bytes().size());
  std::memcpy(mem.data(), a.bytes().data(), a.bytes().size());
  ASSERT_TRUE(mem.finalize().ok());

  using Fn = uint64_t (*)();
  Fn fn = reinterpret_cast<Fn>(mem.data());
  EXPECT_EQ(fn(), 42u);
}

TEST(JitExecMemory, ClassifiesMappingFailure) {
  if (!jit_supported()) GTEST_SKIP() << "no native codegen on this build";
  // An impossible mapping must come back as a classified status, not a
  // crash — this is the runtime half of the degradation contract.
  ExecMemory mem;
  util::Status st = ExecMemory::allocate(~size_t{0} / 2, &mem);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kIoError);
  EXPECT_EQ(mem.data(), nullptr);
}

TEST(JitExecMemory, UnsupportedPlatformIsInvalidInput) {
  if (jit_supported()) {
    GTEST_SKIP() << "compile-time gate not reachable on a native build";
  }
  ExecMemory mem;
  util::Status st = ExecMemory::allocate(64, &mem);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
}

// -- compiled images ---------------------------------------------------------

std::unique_ptr<minic::Program> prepare(const std::string& source) {
  util::DiagList diags;
  auto prog = minic::parse_and_check(source, &diags);
  EXPECT_NE(prog, nullptr) << diags.str();
  if (prog) instrument::annotate_loops(prog.get());
  return prog;
}

TEST(JitCompile, StatsDescribeTheImage) {
  if (!jit_supported()) GTEST_SKIP() << "no native codegen on this build";
  auto prog = prepare(benchsuite::get_benchmark("gsm").source);
  ASSERT_NE(prog, nullptr);
  JitProgram jp = compile_jit<trace::VectorSink>(*prog);
  ASSERT_TRUE(jp.status.ok()) << jp.status.message();
  ASSERT_NE(jp.native, nullptr);

  const JitStats& s = jp.native->stats();
  EXPECT_EQ(s.num_insns, jp.bytecode.code.size());
  EXPECT_GT(s.total_code_bytes, 0u);
  // A loop-heavy kernel must fuse loop heads, straight-line runs, and
  // whole self-loops.
  EXPECT_GT(s.fused_heads, 0u);
  EXPECT_GT(s.block_runs, 0u);
  EXPECT_GT(s.self_loops, 0u);
  // Per-op counts must account for every compiled instruction. (Bytes
  // are attributed to the head op of fused groups and block runs, so
  // an op can legitimately carry count > 0 with bytes == 0.)
  uint64_t op_count = 0, op_bytes = 0;
  for (const OpStats& os : s.per_op) {
    op_count += os.count;
    op_bytes += os.bytes;
  }
  EXPECT_EQ(op_count, s.num_insns);
  EXPECT_GT(op_bytes, 0u);
  EXPECT_LE(op_bytes, s.total_code_bytes);
  EXPECT_NE(jp.native->entry(), nullptr);
  EXPECT_NE(jp.native->pc_table(), nullptr);
}

TEST(JitCompile, ImageIsReusableAcrossRuns) {
  if (!jit_supported()) GTEST_SKIP() << "no native codegen on this build";
  // Like the CompiledProgram it mirrors, one native image serves many
  // runs: results must be identical run to run and must match the VM.
  auto prog = prepare(benchsuite::get_benchmark("adpcm").source);
  ASSERT_NE(prog, nullptr);
  JitProgram jp = compile_jit<trace::VectorSink>(*prog);
  ASSERT_TRUE(jp.status.ok()) << jp.status.message();

  sim::RunOptions opts;
  opts.digest_memory = true;
  trace::VectorSink s1, s2, sv;
  sim::RunResult r1 = run_jit_compiled(jp.bytecode, *jp.native, &s1, opts);
  sim::RunResult r2 = run_jit_compiled(jp.bytecode, *jp.native, &s2, opts);
  sim::RunResult rv = sim::run_compiled_with(jp.bytecode, &sv, opts);
  ASSERT_TRUE(r1.ok()) << r1.error();
  EXPECT_EQ(r1.output, r2.output);
  EXPECT_EQ(r1.steps, r2.steps);
  EXPECT_EQ(r1.memory_digest, r2.memory_digest);
  EXPECT_EQ(s1.take(), s2.take());
  // And the VM agrees (the full matrix lives in engine_equivalence_test).
  EXPECT_EQ(r1.output, rv.output);
  EXPECT_EQ(r1.steps, rv.steps);
  EXPECT_EQ(r1.memory_digest, rv.memory_digest);
}

TEST(JitEngine, RunFallsBackWhenNativeIsUnavailable) {
  // run_jit_with on any build — native or not — must produce the
  // bytecode VM's exact result; on non-native builds that exercises the
  // degradation path end to end.
  auto prog = prepare(
      "int a[16];\n"
      "int main(void) { for (int i = 0; i < 16; i++) a[i] = i * i; "
      "return a[7]; }");
  ASSERT_NE(prog, nullptr);
  sim::RunOptions opts;
  opts.digest_memory = true;
  trace::VectorSink js, bs;
  opts.engine = sim::Engine::Jit;
  sim::RunResult rj = jit::run_jit_with(*prog, &js, opts);
  sim::RunResult rb = [&] {
    auto code = sim::compile_program(*prog);
    return sim::run_compiled_with(code, &bs, opts);
  }();
  ASSERT_TRUE(rj.ok()) << rj.error();
  EXPECT_EQ(rj.exit_code, rb.exit_code);
  EXPECT_EQ(rj.output, rb.output);
  EXPECT_EQ(rj.memory_digest, rb.memory_digest);
  EXPECT_EQ(js.take(), bs.take());
}

}  // namespace
}  // namespace foray::jit
