// The driver layer: Session lifecycle, ThreadPool, and the SweepDriver's
// two batch contracts — determinism (an N-thread run produces
// byte-identical reports to a 1-thread run) and per-session failure
// isolation. (Grid-axis behavior lives in sweep_test; this file covers
// the capacity-only shape the old batch driver pinned down.)
#include <gtest/gtest.h>

#include <atomic>

#include "driver/session.h"
#include "driver/sweep.h"
#include "util/thread_pool.h"

namespace foray::driver {
namespace {

const char* kGood =
    "int a[256];\n"
    "int main(void) {\n"
    "  for (int r = 0; r < 40; r++)\n"
    "    for (int i = 0; i < 256; i++) a[i] = a[i] + r;\n"
    "  return a[0] & 255;\n"
    "}\n";

const char* kGood2 =
    "char buf[4096];\n"
    "int main(void) {\n"
    "  char *p = buf;\n"
    "  int t = 0;\n"
    "  while (t < 30) {\n"
    "    t++;\n"
    "    p += 64;\n"
    "    for (int i = 0; i < 32; i++) *p++ = (i + t) % 256;\n"
    "  }\n"
    "  return 0;\n"
    "}\n";

const char* kParseError = "int main(void) { return 0;";       // no brace
const char* kSimFault = "int main(void) { int z = 0; return 1 / z; }";

SessionOptions spm_session_opts(uint32_t capacity = 4096) {
  SessionOptions o;
  o.pipeline.with_spm = true;
  o.pipeline.spm.dse.spm_capacity = capacity;
  o.pipeline.filter.min_exec = 1;
  o.pipeline.filter.min_locations = 1;
  return o;
}

// -- thread pool --------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedJob) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  util::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

// -- session ------------------------------------------------------------------

TEST(Session, RunsAllPhasesAndIsIdempotent) {
  Session s("good", kGood, spm_session_opts());
  ASSERT_TRUE(s.run().ok()) << s.status().message();
  EXPECT_TRUE(s.ran());
  EXPECT_TRUE(s.result().spm_ran);
  const void* model_before = &s.result().model;
  const size_t refs = s.result().model.refs.size();
  EXPECT_GT(refs, 0u);
  // A second run() must not redo the work.
  ASSERT_TRUE(s.run().ok());
  EXPECT_EQ(&s.result().model, model_before);
  EXPECT_EQ(s.result().model.refs.size(), refs);
}

TEST(Session, SurfacesFrontendFailureAsStatus) {
  Session s("bad", kParseError);
  EXPECT_FALSE(s.run().ok());
  EXPECT_EQ(s.status().phase(), "parse");
}

TEST(Session, RerunSpmSweepsCapacityWithoutReprofiling) {
  Session s("good", kGood, spm_session_opts(4096));
  ASSERT_TRUE(s.run().ok()) << s.status().message();
  const uint64_t steps = s.result().run.steps;
  const uint64_t bytes_4k = s.result().spm.exact.bytes_used;
  ASSERT_GT(bytes_4k, 0u);

  const core::SpmReport& small = s.rerun_spm(64);
  EXPECT_EQ(small.capacity, 64u);
  EXPECT_LE(small.exact.bytes_used, 64u);
  // Phase I was not re-run.
  EXPECT_EQ(s.result().run.steps, steps);
}

TEST(Session, SpmReportTextEmptyUntilSpmRan) {
  SessionOptions no_spm;
  Session s("good", kGood, no_spm);
  ASSERT_TRUE(s.run().ok());
  EXPECT_EQ(s.spm_report_text(), "");
}

TEST(Session, ResolveMemoizesCandidatesAcrossCapacities) {
  Session s("good", kGood, spm_session_opts(4096));
  ASSERT_TRUE(s.run().ok()) << s.status().message();
  const std::string report_4k = s.spm_report_text();
  const size_t n_candidates = s.result().spm.candidates.size();
  ASSERT_GT(n_candidates, 0u);

  // A capacity-only re-solve reuses the memoized candidate list; coming
  // back to the original capacity must reproduce the first report
  // byte-for-byte.
  s.rerun_spm(64);
  EXPECT_EQ(s.result().spm.candidates.size(), n_candidates);
  s.rerun_spm(4096);
  EXPECT_EQ(s.result().spm.candidates.size(), n_candidates);
  EXPECT_EQ(s.spm_report_text(), report_4k);
}

// -- sweep driver (capacity-only batch shape) ---------------------------------

std::vector<SweepJob> good_jobs() {
  return {{"alpha", kGood}, {"beta", kGood2}, {"gamma", kGood}};
}

SweepOptions batch_opts(int threads,
                        std::vector<uint32_t> capacities = {256, 1024,
                                                            4096}) {
  SweepOptions o;
  o.threads = threads;
  o.spec.capacities = std::move(capacities);
  o.pipeline.filter.min_exec = 1;
  o.pipeline.filter.min_locations = 1;
  return o;
}

TEST(SweepDriver, ParallelRunByteIdenticalToSequential) {
  auto jobs = good_jobs();
  SweepReport seq = SweepDriver(batch_opts(1)).run(jobs);
  SweepReport par = SweepDriver(batch_opts(4)).run(jobs);

  EXPECT_EQ(seq.table(), par.table());
  EXPECT_EQ(seq.to_json(), par.to_json());
  ASSERT_EQ(seq.items.size(), par.items.size());
  ASSERT_EQ(seq.items.size(), jobs.size() * 3);
  for (size_t i = 0; i < seq.items.size(); ++i) {
    EXPECT_EQ(seq.items[i].program, par.items[i].program);
    EXPECT_EQ(seq.items[i].point.capacity_bytes,
              par.items[i].point.capacity_bytes);
    EXPECT_EQ(seq.items[i].report, par.items[i].report);  // byte-identical
    EXPECT_EQ(seq.items[i].spm.exact.bytes_used,
              par.items[i].spm.exact.bytes_used);
    EXPECT_DOUBLE_EQ(seq.items[i].spm.exact.saved_nj,
                     par.items[i].spm.exact.saved_nj);
  }
}

TEST(SweepDriver, ItemsOrderedJobMajorCapacityMinor) {
  auto report = SweepDriver(batch_opts(2)).run(good_jobs());
  ASSERT_EQ(report.items.size(), 9u);
  EXPECT_EQ(report.items[0].program, "alpha");
  EXPECT_EQ(report.items[0].point.capacity_bytes, 256u);
  EXPECT_EQ(report.items[2].point.capacity_bytes, 4096u);
  EXPECT_EQ(report.items[3].program, "beta");
  EXPECT_EQ(report.items[8].program, "gamma");
  PointKey key;
  key.job = 1;
  key.capacity = 2;
  EXPECT_EQ(&report.at(key), &report.items[5]);
}

TEST(SweepDriver, FailingSessionIsIsolated) {
  std::vector<SweepJob> jobs = {{"ok1", kGood},
                                {"parse", kParseError},
                                {"fault", kSimFault},
                                {"ok2", kGood2}};
  auto report = SweepDriver(batch_opts(4, {4096})).run(jobs);

  ASSERT_EQ(report.items.size(), 4u);
  EXPECT_TRUE(report.items[0].status.ok());
  EXPECT_FALSE(report.items[1].status.ok());
  EXPECT_EQ(report.items[1].status.phase(), "parse");
  EXPECT_FALSE(report.items[2].status.ok());
  EXPECT_EQ(report.items[2].status.phase(), "simulation");
  EXPECT_TRUE(report.items[3].status.ok());

  // Healthy neighbours produced full reports.
  EXPECT_GT(report.items[0].spm.exact.saved_nj, 0.0);
  EXPECT_GT(report.items[3].spm.exact.saved_nj, 0.0);
  // The table renders every row, marking the failed ones.
  std::string table = report.table();
  EXPECT_NE(table.find("FAILED"), std::string::npos);
  EXPECT_NE(table.find("ok2"), std::string::npos);
}

TEST(SweepDriver, BenchsuiteJobsMatchSuite) {
  auto jobs = SweepDriver::benchsuite_jobs();
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(jobs.front().name, "jpeg");
  EXPECT_EQ(jobs.back().name, "adpcm");
  for (const auto& j : jobs) EXPECT_FALSE(j.source.empty());
}

}  // namespace
}  // namespace foray::driver
