// The fault-injection harness (util/fault.h) and what it proves: every
// registered site can be armed, fires with the documented trigger
// semantics, surfaces as the *right* error class with no crash, leaves a
// valid partial artifact, and — for the sweep sink — a journal that
// `--resume` completes to output byte-identical to an unfaulted run.
#include <gtest/gtest.h>

#include <sstream>

#include "driver/sweep.h"
#include "foray/pipeline.h"
#include "instrument/annotator.h"
#include "minic/parser.h"
#include "sim/interpreter.h"
#include "trace/io.h"
#include "trace/sink.h"
#include "util/fault.h"
#include "util/status.h"

namespace foray {
namespace {

const char* kAlpha =
    "int a[256];\n"
    "int main(void) {\n"
    "  for (int r = 0; r < 40; r++)\n"
    "    for (int i = 0; i < 256; i++) a[i] = a[i] + r;\n"
    "  return a[0] & 255;\n"
    "}\n";

const char* kBeta =
    "char buf[4096];\n"
    "int main(void) {\n"
    "  char *p = buf;\n"
    "  int t = 0;\n"
    "  while (t < 30) {\n"
    "    t++;\n"
    "    p += 64;\n"
    "    for (int i = 0; i < 32; i++) *p++ = (i + t) % 256;\n"
    "  }\n"
    "  return 0;\n"
    "}\n";

std::vector<driver::SweepJob> jobs() {
  return {{"alpha", kAlpha}, {"beta", kBeta}};
}

driver::SweepOptions sweep_opts() {
  driver::SweepOptions o;
  o.threads = 1;  // deterministic solve order for count-limited faults
  o.pipeline.filter.min_exec = 1;
  o.pipeline.filter.min_locations = 1;
  // Two capacities so the grid has solve groups beyond the base
  // configuration: point 0 reuses Phase I's solve, so "spm.solve" only
  // fires on the extra groups' solve_point calls.
  EXPECT_TRUE(o.spec.parse_axis("capacity", "1024,4096").ok());
  return o;
}

// Every test disarms on the way out — the registry is process-global.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { util::fault::reset(); }
};

sim::RunResult run_sim(const char* src, sim::RunOptions opts = {}) {
  util::DiagList diags;
  auto prog = minic::parse_and_check(src, &diags);
  EXPECT_NE(prog, nullptr) << diags.str();
  if (!prog) return {};
  instrument::annotate_loops(prog.get());
  trace::VectorSink sink;
  return sim::run_program(*prog, &sink, opts);
}

// -- the registry itself ------------------------------------------------------

TEST_F(FaultInjectionTest, EverySiteArmsFiresAndDisarms) {
  const std::vector<std::string> sites = util::fault::all_sites();
  ASSERT_FALSE(sites.empty());
  for (const std::string& site : sites) {
    ASSERT_TRUE(util::fault::configure(site + ":count=1:param=3").ok())
        << site;
    EXPECT_TRUE(util::fault::enabled()) << site;
    util::fault::Hit h = util::fault::hit(site);
    EXPECT_TRUE(h.fired) << site;
    EXPECT_EQ(h.param, 3u) << site;
    // count=1: consumed.
    EXPECT_FALSE(util::fault::hit(site).fired) << site;
    util::fault::reset();
    EXPECT_FALSE(util::fault::enabled()) << site;
  }
}

TEST_F(FaultInjectionTest, SkipAndCountTriggerSemantics) {
  ASSERT_TRUE(util::fault::configure("sim.slow:skip=1:count=2:param=7").ok());
  EXPECT_FALSE(util::fault::hit("sim.slow").fired);  // skipped
  util::fault::Hit h = util::fault::hit("sim.slow");
  EXPECT_TRUE(h.fired);
  EXPECT_EQ(h.param, 7u);
  EXPECT_TRUE(util::fault::hit("sim.slow").fired);
  EXPECT_FALSE(util::fault::hit("sim.slow").fired);  // count exhausted
}

TEST_F(FaultInjectionTest, BadSpecsAreInvalidInputByName) {
  util::Status st = util::fault::configure("no.such.site");
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
  EXPECT_NE(st.message().find("no.such.site"), std::string::npos);
  EXPECT_FALSE(util::fault::enabled());  // a typo must inject nothing
  st = util::fault::configure("sim.slow:bogus=1");
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
  st = util::fault::configure("sim.slow:skip=abc");
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
}

// -- per-site behavior through the real call paths ----------------------------

TEST_F(FaultInjectionTest, TraceBufferAllocIsResourceExhausted) {
  ASSERT_TRUE(util::fault::configure("trace.buffer.alloc:count=1").ok());
  sim::RunResult r = run_sim(kAlpha);
  EXPECT_EQ(r.status.code(), util::ErrorCode::kResourceExhausted)
      << r.status.message();
}

TEST_F(FaultInjectionTest, TraceChunkCorruptIsIoError) {
  // An intact binary trace plus an armed corruption site = a clean,
  // classified read failure rather than garbage records.
  std::vector<trace::Record> records;
  {
    util::DiagList diags;
    auto prog = minic::parse_and_check(kAlpha, &diags);
    ASSERT_NE(prog, nullptr) << diags.str();
    instrument::annotate_loops(prog.get());
    trace::VectorSink sink;
    ASSERT_TRUE(sim::run_program(*prog, &sink, {}).ok());
    records = sink.take();
  }
  std::stringstream buf;
  trace::write_binary(buf, records);

  ASSERT_TRUE(util::fault::configure("trace.chunk.corrupt:count=1").ok());
  std::vector<trace::Record> out;
  util::Status st = trace::read_binary(buf, &out);
  EXPECT_EQ(st.code(), util::ErrorCode::kIoError) << st.message();

  // Disarmed, the same bytes read back fine.
  util::fault::reset();
  buf.clear();
  buf.seekg(0);
  out.clear();
  ASSERT_TRUE(trace::read_binary(buf, &out).ok());
  EXPECT_EQ(out.size(), records.size());
}

TEST_F(FaultInjectionTest, SimSlowTripsAWallClockDeadline) {
  // "sim.slow" stalls each chunk flush by param ms, so a generous-looking
  // deadline trips deterministically without a flaky real sleep race.
  ASSERT_TRUE(util::fault::configure("sim.slow:param=50").ok());
  sim::RunOptions opts;
  opts.chunk_records = 64;
  opts.budget.timeout_seconds = 0.01;
  sim::RunResult r = run_sim(kAlpha, opts);
  EXPECT_EQ(r.status.code(), util::ErrorCode::kDeadlineExceeded)
      << r.status.message();
}

TEST_F(FaultInjectionTest, SpmSolveInternalFaultIsIsolatedToOnePoint) {
  driver::SweepDriver sweep(sweep_opts());
  // param=0 → kInternal: deterministic, never retried.
  ASSERT_TRUE(util::fault::configure("spm.solve:count=1").ok());
  driver::SweepReport report = sweep.run(jobs());
  // count=1: the trigger was consumed by exactly one solve.
  EXPECT_FALSE(util::fault::hit("spm.solve").fired);
  util::fault::reset();

  // 2 jobs × 2 capacities. The fault hit exactly one solve — that point
  // carries the internal class, every other point is clean.
  ASSERT_EQ(report.items.size(), 4u);
  int failed = 0;
  for (const auto& item : report.items) {
    if (item.status.ok()) continue;
    ++failed;
    EXPECT_EQ(item.status.code(), util::ErrorCode::kInternal)
        << item.status.message();
  }
  EXPECT_EQ(failed, 1);
}

TEST_F(FaultInjectionTest, TransientSolveFaultIsRetriedToSuccess) {
  driver::SweepDriver sweep(sweep_opts());
  std::ostringstream baseline;
  ASSERT_TRUE(sweep.run_ndjson(jobs(), baseline).ok());

  // param != 0 → kIoError, the one transient class: the bounded retry
  // absorbs a single injected failure and the output is byte-identical.
  ASSERT_TRUE(util::fault::configure("spm.solve:count=1:param=1").ok());
  std::ostringstream retried;
  util::Status st = sweep.run_ndjson(jobs(), retried);
  // Guard against the test passing vacuously: the injected failure must
  // actually have been consumed by a solve before being retried.
  EXPECT_FALSE(util::fault::hit("spm.solve").fired);
  util::fault::reset();
  EXPECT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(retried.str(), baseline.str());
}

TEST_F(FaultInjectionTest, SinkIoFaultLeavesAResumableJournal) {
  driver::SweepDriver sweep(sweep_opts());
  std::ostringstream baseline;
  ASSERT_TRUE(sweep.run_ndjson(jobs(), baseline).ok());

  // Fail the sink after the first job's block: the partial journal holds
  // the header plus whole job blocks only — a valid checkpoint.
  ASSERT_TRUE(util::fault::configure("sweep.sink.io:skip=1:count=1").ok());
  std::ostringstream partial;
  util::Status st = sweep.run_ndjson(jobs(), partial);
  util::fault::reset();
  EXPECT_EQ(st.code(), util::ErrorCode::kIoError) << st.message();
  EXPECT_LT(partial.str().size(), baseline.str().size());
  // The partial journal is a byte-prefix of the uninterrupted run.
  EXPECT_EQ(baseline.str().compare(0, partial.str().size(), partial.str()),
            0);

  driver::SweepCheckpoint checkpoint;
  ASSERT_TRUE(sweep.parse_resume(partial.str(), &checkpoint).ok());
  EXPECT_FALSE(checkpoint.points.empty());

  std::ostringstream resumed;
  st = sweep.run_ndjson(jobs(), resumed, &checkpoint);
  EXPECT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(resumed.str(), baseline.str());
}

TEST_F(FaultInjectionTest, SinkIoBeforeAnyBlockStillResumes) {
  driver::SweepDriver sweep(sweep_opts());
  std::ostringstream baseline;
  ASSERT_TRUE(sweep.run_ndjson(jobs(), baseline).ok());

  ASSERT_TRUE(util::fault::configure("sweep.sink.io:count=1").ok());
  std::ostringstream partial;
  util::Status st = sweep.run_ndjson(jobs(), partial);
  util::fault::reset();
  EXPECT_EQ(st.code(), util::ErrorCode::kIoError);

  // Header-only journal: everything re-runs, output still identical.
  driver::SweepCheckpoint checkpoint;
  ASSERT_TRUE(sweep.parse_resume(partial.str(), &checkpoint).ok());
  std::ostringstream resumed;
  st = sweep.run_ndjson(jobs(), resumed, &checkpoint);
  EXPECT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(resumed.str(), baseline.str());
}

// -- resume validation --------------------------------------------------------

TEST_F(FaultInjectionTest, ResumeRejectsAForeignJournal) {
  driver::SweepDriver sweep(sweep_opts());
  std::ostringstream journal;
  ASSERT_TRUE(sweep.run_ndjson(jobs(), journal).ok());
  driver::SweepCheckpoint checkpoint;
  ASSERT_TRUE(sweep.parse_resume(journal.str(), &checkpoint).ok());

  // A driver with a different grid must refuse to stitch that journal in.
  driver::SweepOptions other = sweep_opts();
  ASSERT_TRUE(other.spec.parse_axis("capacity", "512,1024").ok());
  driver::SweepDriver sweep2(other);
  std::ostringstream out;
  util::Status st = sweep2.run_ndjson(jobs(), out, &checkpoint);
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput) << st.message();
}

TEST_F(FaultInjectionTest, ParseResumeRejectsGarbage) {
  driver::SweepDriver sweep(sweep_opts());
  driver::SweepCheckpoint checkpoint;
  util::Status st = sweep.parse_resume("not json at all\n", &checkpoint);
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput) << st.message();
}

TEST_F(FaultInjectionTest, ParseResumeToleratesATornTailLine) {
  driver::SweepDriver sweep(sweep_opts());
  std::ostringstream journal;
  ASSERT_TRUE(sweep.run_ndjson(jobs(), journal).ok());
  // Chop the journal mid-line — the crash shape — and it still parses;
  // the torn line is simply not cached.
  std::string torn = journal.str().substr(0, journal.str().size() - 7);
  ASSERT_FALSE(torn.empty());
  ASSERT_NE(torn.back(), '\n');
  driver::SweepCheckpoint checkpoint;
  util::Status st = sweep.parse_resume(torn, &checkpoint);
  EXPECT_TRUE(st.ok()) << st.message();
}

}  // namespace
}  // namespace foray
