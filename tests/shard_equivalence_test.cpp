// E9-style transport/sharding equivalence: chunked delivery,
// record-at-a-time delivery, and K-sharded extraction must all produce
// the same loop tree and the same model as the online run, for every
// benchsuite program. This is the contract that lets the transport and
// the sharder evolve freely: any divergence — a lost record, a
// mis-merged subtree, an affine state torn across shards — fails here.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "benchsuite/generator.h"
#include "benchsuite/suite.h"
#include "foray/extractor.h"
#include "foray/pipeline.h"
#include "foray/shard.h"
#include "foray/timeshard.h"
#include "sim/interpreter.h"
#include "trace/sink.h"

namespace foray::core {
namespace {

/// Deterministic deep fingerprint of an extraction: tree shape,
/// counters, per-reference traffic and finalized affine functions.
std::string fingerprint(const Extractor& ex) {
  std::ostringstream os;
  os << "records " << ex.records_processed() << " accesses "
     << ex.accesses_processed() << " checkpoints "
     << ex.checkpoints_processed() << "\n";
  for_each_node(*ex.tree().root(), [&](const LoopNode& node) {
    os << "loop " << node.loop_id() << " depth " << node.depth()
       << " entries " << node.entries << " iters " << node.total_iterations
       << " max_trip " << node.max_trip << "\n";
    for (const auto& ref : node.refs()) {
      uint64_t fp_xor = 0, fp_sum = 0;
      ref->footprint().for_each([&](uint32_t a) {
        fp_xor ^= a;
        fp_sum += a;
      });
      os << "  ref " << ref->instr << " exec " << ref->exec_count << " fp "
         << ref->footprint_size() << ":" << fp_xor << ":" << fp_sum
         << (ref->footprint_saturated() ? "*" : "")
         << (ref->has_read ? " r" : "") << (ref->has_write ? " w" : "")
         << " size " << static_cast<int>(ref->access_size) << " kind "
         << static_cast<int>(ref->kind);
      AffineFunction fn = finalize(ref->affine);
      os << " affine[" << (fn.analyzable ? "a" : "x") << " m=" << fn.m
         << " c=" << fn.const_term;
      for (size_t i = 0; i < fn.coefs.size(); ++i) {
        os << " " << fn.coefs[i] << (fn.known[i] ? "" : "?");
      }
      os << " obs=" << ref->affine.observations << "]\n";
    }
  });
  return os.str();
}

class ShardEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardEquivalence, AllTransportsYieldIdenticalTrees) {
  const auto& b = benchsuite::get_benchmark(GetParam());
  PipelineResult res;
  ASSERT_TRUE(frontend_phase(b.source, &res).ok()) << res.error();
  ASSERT_TRUE(instrument_phase(&res).ok());

  PipelineOptions opts;
  trace::VectorSink sink(1u << 20);
  auto run = sim::run_program(*res.program, &sink, opts.run);
  ASSERT_TRUE(run.ok()) << run.error();
  const auto& recs = sink.records();
  ASSERT_FALSE(recs.empty());

  // Online (zero-materialization) extraction is the reference.
  Extractor online;
  auto run2 = sim::run_program(*res.program, &online, opts.run);
  ASSERT_TRUE(run2.ok()) << run2.error();
  const std::string want = fingerprint(online);

  // Record-at-a-time via the virtual interface.
  {
    Extractor ex;
    trace::Sink* s = &ex;
    for (const auto& r : recs) s->on_record(r);
    EXPECT_EQ(fingerprint(ex), want) << b.name << ": record-at-a-time";
  }
  // Bulk chunk delivery.
  {
    Extractor ex;
    ex.on_chunk(recs.data(), recs.size());
    EXPECT_EQ(fingerprint(ex), want) << b.name << ": chunked";
  }
  // Buffered chunking through a ChunkBuffer with an odd chunk size.
  {
    Extractor ex;
    trace::ChunkBuffer buf(&ex, 777);
    for (const auto& r : recs) buf.on_record(r);
    buf.flush();
    EXPECT_EQ(fingerprint(ex), want) << b.name << ": ChunkBuffer";
  }
  // Sharded extraction at several widths, hash and linear indexing.
  for (int shards : {2, 3, 4, 7}) {
    ShardReport rep;
    Extractor ex = extract_sharded({recs.data(), recs.size()},
                                   ExtractorOptions{}, shards, &rep);
    EXPECT_EQ(fingerprint(ex), want) << b.name << ": shards=" << shards;
    EXPECT_EQ(rep.records, recs.size());
  }
  {
    ExtractorOptions linear;
    linear.hash_index = false;
    Extractor ex =
        extract_sharded({recs.data(), recs.size()}, linear, 3, nullptr);
    EXPECT_EQ(fingerprint(ex), want) << b.name << ": shards=3 linear";
  }
}

TEST_P(ShardEquivalence, TimeShardedExtractionYieldsIdenticalTrees) {
  const auto& b = benchsuite::get_benchmark(GetParam());
  PipelineResult res;
  ASSERT_TRUE(frontend_phase(b.source, &res).ok()) << res.error();
  ASSERT_TRUE(instrument_phase(&res).ok());

  trace::VectorSink sink(1u << 20);
  auto run = sim::run_program(*res.program, &sink);
  ASSERT_TRUE(run.ok()) << run.error();
  const auto& recs = sink.records();
  ASSERT_FALSE(recs.empty());

  Extractor seq;
  seq.on_chunk(recs.data(), recs.size());
  const std::string want = fingerprint(seq);

  for (int slices : {2, 3, 5, 16}) {
    TimeShardReport rep;
    Extractor ex = extract_time_sharded({recs.data(), recs.size()},
                                        ExtractorOptions{}, slices, &rep);
    EXPECT_EQ(fingerprint(ex), want) << b.name << ": timeshards=" << slices;
    EXPECT_EQ(rep.slices_requested, slices);
    EXPECT_EQ(rep.records, recs.size());
    EXPECT_GE(rep.slices_used, 1);
  }
  // Pathological explicit cuts: clustered around arbitrary fractions
  // (landing mid-loop-nest, mid-epoch, adjacent to each other) plus the
  // extreme edges of the trace.
  {
    std::vector<uint64_t> cuts = {1, 2, recs.size() - 1};
    for (uint64_t f = 1; f < 8; ++f) {
      const uint64_t p = recs.size() * f / 8;
      cuts.push_back(p - 1);
      cuts.push_back(p);
      cuts.push_back(p + 1);
    }
    TimeShardReport rep;
    Extractor ex = extract_time_sharded_at({recs.data(), recs.size()},
                                           ExtractorOptions{}, cuts, &rep);
    EXPECT_EQ(fingerprint(ex), want) << b.name << ": pathological cuts";
  }
  // Linear (non-hash) indexing under time sharding.
  {
    ExtractorOptions linear;
    linear.hash_index = false;
    Extractor ex = extract_time_sharded({recs.data(), recs.size()}, linear, 3,
                                        nullptr);
    Extractor lseq(linear);
    lseq.on_chunk(recs.data(), recs.size());
    EXPECT_EQ(fingerprint(ex), fingerprint(lseq))
        << b.name << ": timeshards=3 linear";
  }
  // More slices than records: degrade gracefully to per-record slices.
  {
    const size_t prefix = std::min<size_t>(recs.size(), 40);
    Extractor pseq;
    pseq.on_chunk(recs.data(), prefix);
    TimeShardReport rep;
    Extractor ex = extract_time_sharded({recs.data(), prefix},
                                        ExtractorOptions{},
                                        static_cast<int>(prefix) + 24, &rep);
    EXPECT_EQ(fingerprint(ex), fingerprint(pseq))
        << b.name << ": slices > records";
    EXPECT_LE(rep.slices_used, static_cast<int>(prefix));
  }
}

TEST(TimeShardStress, SeededProgramsMatchSequentialAtEveryWidth) {
  for (uint64_t seed : {3u, 11u, 29u, 47u, 101u}) {
    benchsuite::StressOptions sopts;
    sopts.seed = seed;
    const std::string src = benchsuite::generate_stress_program(sopts);
    PipelineResult res;
    ASSERT_TRUE(frontend_phase(src, &res).ok()) << "seed " << seed;
    ASSERT_TRUE(instrument_phase(&res).ok());
    trace::VectorSink sink;
    auto run = sim::run_program(*res.program, &sink);
    ASSERT_TRUE(run.ok()) << "seed " << seed << ": " << run.error();
    const auto& recs = sink.records();
    if (recs.empty()) continue;

    Extractor seq;
    seq.on_chunk(recs.data(), recs.size());
    const std::string want = fingerprint(seq);

    for (int slices : {2, 7}) {
      TimeShardReport rep;
      Extractor ex = extract_time_sharded({recs.data(), recs.size()},
                                          ExtractorOptions{}, slices, &rep);
      EXPECT_EQ(fingerprint(ex), want)
          << "seed " << seed << ": timeshards=" << slices;
    }
    // Dense cuts: a boundary every few records forces worst-case
    // composition (nearly every reference collides in every slice). The
    // stride keeps the slice count — one worker each — bounded.
    const uint64_t stride = std::max<uint64_t>(7, recs.size() / 48);
    std::vector<uint64_t> cuts;
    for (uint64_t p = 3; p < recs.size(); p += stride) cuts.push_back(p);
    Extractor ex = extract_time_sharded_at({recs.data(), recs.size()},
                                           ExtractorOptions{}, cuts, nullptr);
    EXPECT_EQ(fingerprint(ex), want) << "seed " << seed << ": dense cuts";
  }
}

TEST_P(ShardEquivalence, TimeShardedPipelineModelMatchesSequential) {
  const auto& b = benchsuite::get_benchmark(GetParam());
  auto seq = run_pipeline(b.source);
  ASSERT_TRUE(seq.ok()) << seq.error();

  for (int slices : {2, 4}) {
    PipelineOptions opts;
    opts.profile_timeshards = slices;
    auto sh = run_pipeline(b.source, opts);
    ASSERT_TRUE(sh.ok()) << b.name << ": " << sh.error();
    EXPECT_EQ(sh.foray_source, seq.foray_source)
        << b.name << ": emitted model differs at timeshards=" << slices;
    EXPECT_EQ(sh.foray_paper_style, seq.foray_paper_style)
        << b.name << ": paper-style model differs at timeshards=" << slices;
    EXPECT_EQ(sh.trace_records, seq.trace_records);
    EXPECT_EQ(sh.timeshard_report.slices_requested, slices);
  }
}

TEST_P(ShardEquivalence, ShardedPipelineModelMatchesSequential) {
  const auto& b = benchsuite::get_benchmark(GetParam());
  auto seq = run_pipeline(b.source);
  ASSERT_TRUE(seq.ok()) << seq.error();

  for (int shards : {2, 4}) {
    PipelineOptions opts;
    opts.profile_shards = shards;
    auto sh = run_pipeline(b.source, opts);
    ASSERT_TRUE(sh.ok()) << b.name << ": " << sh.error();
    EXPECT_EQ(sh.foray_source, seq.foray_source)
        << b.name << ": emitted model differs at shards=" << shards;
    EXPECT_EQ(sh.foray_paper_style, seq.foray_paper_style)
        << b.name << ": paper-style model differs at shards=" << shards;
    EXPECT_EQ(sh.trace_records, seq.trace_records);
    EXPECT_EQ(sh.shard_report.shards_requested, shards);
    EXPECT_GE(sh.shard_report.balance, 1.0);
  }
}

TEST(TraceIndex, SegmentsCoverEveryRecordExactlyOnce) {
  const auto& b = benchsuite::get_benchmark("gsm");
  PipelineResult res;
  ASSERT_TRUE(frontend_phase(b.source, &res).ok());
  ASSERT_TRUE(instrument_phase(&res).ok());
  trace::VectorSink sink;
  ASSERT_TRUE(sim::run_program(*res.program, &sink).ok());

  TraceIndex idx = index_trace({sink.records().data(), sink.size()});
  ASSERT_FALSE(idx.segments.empty());
  uint64_t pos = 0;
  for (const auto& seg : idx.segments) {
    EXPECT_EQ(seg.begin, pos) << "gap or overlap between segments";
    EXPECT_GT(seg.end, seg.begin);
    if (seg.site_id >= 0) {
      const auto& first = sink.records()[seg.begin];
      EXPECT_EQ(first.type(), trace::RecordType::Checkpoint);
      EXPECT_EQ(first.cp(), trace::CheckpointType::LoopEnter);
      EXPECT_EQ(first.loop_id(), seg.site_id);
    }
    pos = seg.end;
  }
  EXPECT_EQ(pos, sink.size());
}

INSTANTIATE_TEST_SUITE_P(All, ShardEquivalence,
                         ::testing::Values("jpeg", "lame", "susan", "fft",
                                           "gsm", "adpcm"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

}  // namespace
}  // namespace foray::core
