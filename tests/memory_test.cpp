#include <gtest/gtest.h>

#include "sim/memory.h"

namespace foray::sim {
namespace {

TEST(Memory, GlobalAllocationSequential) {
  Memory m;
  uint32_t a = m.alloc_global(4);
  uint32_t b = m.alloc_global(4);
  EXPECT_EQ(a, Memory::kGlobalBase);
  EXPECT_EQ(b, a + 4);
}

TEST(Memory, GlobalAlignmentRespected) {
  Memory m;
  m.alloc_global(1, 1);
  uint32_t b = m.alloc_global(4, 4);
  EXPECT_EQ(b % 4, 0u);
}

TEST(Memory, GlobalsZeroInitialized) {
  Memory m;
  uint32_t a = m.alloc_global(16);
  for (int i = 0; i < 16; i += 4) EXPECT_EQ(m.load_int(a + i, 4), 0);
}

TEST(Memory, IntRoundTripAllWidths) {
  Memory m;
  uint32_t a = m.alloc_global(16);
  m.store_int(a, 4, -123456);
  EXPECT_EQ(m.load_int(a, 4), -123456);
  m.store_int(a + 4, 2, -77);
  EXPECT_EQ(m.load_int(a + 4, 2), -77);
  m.store_int(a + 8, 1, -5);
  EXPECT_EQ(m.load_int(a + 8, 1), -5);
}

TEST(Memory, NarrowStoreTruncates) {
  Memory m;
  uint32_t a = m.alloc_global(4);
  m.store_int(a, 1, 0x1ff);  // truncates to 0xff == -1 signed
  EXPECT_EQ(m.load_int(a, 1), -1);
}

TEST(Memory, FloatRoundTrip) {
  Memory m;
  uint32_t a = m.alloc_global(4);
  m.store_float(a, 3.25);
  EXPECT_DOUBLE_EQ(m.load_float(a), 3.25);
}

TEST(Memory, RodataInterning) {
  Memory m;
  uint32_t a = m.alloc_rodata("abc");
  EXPECT_EQ(m.load_byte(a), 'a');
  EXPECT_EQ(m.load_byte(a + 2), 'c');
  EXPECT_EQ(m.load_byte(a + 3), 0);  // NUL terminated
}

TEST(Memory, HeapAllocationAligned) {
  Memory m;
  uint32_t a = m.heap_alloc(5);
  uint32_t b = m.heap_alloc(8);
  EXPECT_EQ(a, Memory::kHeapBase);
  EXPECT_EQ(b % 8, 0u);
  EXPECT_GE(b, a + 5);
}

TEST(Memory, HeapExhaustionThrows) {
  Memory m(/*heap_capacity=*/1024);
  m.heap_alloc(1000);
  EXPECT_THROW(m.heap_alloc(100), RuntimeError);
}

TEST(Memory, StackAllocGrowsDown) {
  Memory m;
  uint32_t sp0 = m.sp();
  uint32_t a = m.stack_alloc(16);
  EXPECT_LT(a, sp0);
  uint32_t b = m.stack_alloc(4);
  EXPECT_LT(b, a);
}

TEST(Memory, StackStoreLoad) {
  Memory m;
  uint32_t a = m.stack_alloc(8);
  m.store_int(a, 4, 42);
  m.store_int(a + 4, 4, 43);
  EXPECT_EQ(m.load_int(a, 4), 42);
  EXPECT_EQ(m.load_int(a + 4, 4), 43);
}

TEST(Memory, StackOverflowThrows) {
  Memory m(1 << 20, /*stack_capacity=*/4096);
  EXPECT_THROW(m.stack_alloc(8192), RuntimeError);
}

TEST(Memory, SpRestore) {
  Memory m;
  uint32_t sp0 = m.sp();
  m.stack_alloc(64);
  m.set_sp(sp0);
  EXPECT_EQ(m.sp(), sp0);
}

TEST(Memory, UnmappedAccessThrows) {
  Memory m;
  EXPECT_THROW(m.load_int(0x00000010, 4), RuntimeError);
  EXPECT_THROW(m.load_int(Memory::kGlobalBase, 4), RuntimeError);  // nothing allocated
  EXPECT_THROW(m.load_int(Memory::kHeapBase + 100, 4), RuntimeError);
}

TEST(Memory, OutOfBoundsGlobalThrows) {
  Memory m;
  uint32_t a = m.alloc_global(4);
  EXPECT_NO_THROW(m.load_int(a, 4));
  EXPECT_THROW(m.load_int(a + 4, 4), RuntimeError);
}

TEST(Memory, StackAddressesNearPaperRange) {
  // The paper's example traces show stack addresses like 0x7fff5934;
  // our stack segment lives in the same neighborhood.
  Memory m;
  uint32_t a = m.stack_alloc(4);
  EXPECT_GT(a, 0x7f000000u);
  EXPECT_LT(a, 0x80000000u);
}

}  // namespace
}  // namespace foray::sim
