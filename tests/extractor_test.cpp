#include <gtest/gtest.h>

#include "foray/extractor.h"

namespace foray::core {
namespace {

using trace::AccessKind;
using trace::CheckpointType;
using trace::Record;

void feed(Extractor& ex, const std::vector<Record>& records) {
  for (const auto& r : records) ex.on_record(r);
}

Record enter(int id) { return Record::checkpoint(CheckpointType::LoopEnter, id); }
Record body(int id) { return Record::checkpoint(CheckpointType::BodyBegin, id); }
Record bend(int id) { return Record::checkpoint(CheckpointType::BodyEnd, id); }
Record exitl(int id) { return Record::checkpoint(CheckpointType::LoopExit, id); }
Record acc(uint32_t instr, uint32_t addr) {
  return Record::access(instr, addr, 4, false, AccessKind::Data);
}

TEST(Extractor, EmptyTraceYieldsEmptyTree) {
  Extractor ex;
  EXPECT_EQ(ex.tree().loop_node_count(), 0);
  EXPECT_EQ(ex.tree().ref_node_count(), 0);
}

TEST(Extractor, SingleLoopSingleRef) {
  Extractor ex;
  std::vector<Record> t = {enter(0)};
  for (int i = 0; i < 5; ++i) {
    t.push_back(body(0));
    t.push_back(acc(0x400010, 0x10000000 + 4 * static_cast<uint32_t>(i)));
    t.push_back(bend(0));
  }
  t.push_back(exitl(0));
  feed(ex, t);

  EXPECT_EQ(ex.tree().loop_node_count(), 1);
  EXPECT_EQ(ex.tree().ref_node_count(), 1);
  const LoopNode* loop = ex.tree().root()->children()[0].get();
  EXPECT_EQ(loop->loop_id(), 0);
  EXPECT_EQ(loop->entries, 1u);
  EXPECT_EQ(loop->max_trip, 5);
  const RefNode& ref = *loop->refs()[0];
  EXPECT_EQ(ref.exec_count, 5u);
  EXPECT_EQ(ref.footprint_size(), 5u);
  ASSERT_TRUE(ref.affine.analyzable);
  EXPECT_EQ(ref.affine.coef_at(0), 4);
  EXPECT_EQ(ref.affine.const_term, 0x10000000);
}

TEST(Extractor, NestedLoopsIteratorsPropagate) {
  Extractor ex;
  std::vector<Record> t = {enter(0)};
  for (uint32_t i = 0; i < 2; ++i) {
    t.push_back(body(0));
    t.push_back(enter(1));
    for (uint32_t j = 0; j < 3; ++j) {
      t.push_back(body(1));
      t.push_back(acc(0x400020, 0x7fff0000 + 103 * i + 1 * j));
      t.push_back(bend(1));
    }
    t.push_back(exitl(1));
    t.push_back(bend(0));
  }
  t.push_back(exitl(0));
  feed(ex, t);

  EXPECT_EQ(ex.tree().loop_node_count(), 2);
  const LoopNode* outer = ex.tree().root()->children()[0].get();
  const LoopNode* inner = outer->children()[0].get();
  EXPECT_EQ(inner->entries, 2u);
  EXPECT_EQ(inner->max_trip, 3);
  EXPECT_EQ(outer->max_trip, 2);
  const RefNode& ref = *inner->refs()[0];
  ASSERT_TRUE(ref.affine.analyzable);
  EXPECT_EQ(ref.affine.coef_at(0), 1);    // innermost
  EXPECT_EQ(ref.affine.coef_at(1), 103);  // outer
}

TEST(Extractor, ReentryResetsIterationCounter) {
  Extractor ex;
  std::vector<Record> t;
  // Same loop site entered twice from top level with different trip counts.
  t.push_back(enter(7));
  for (int i = 0; i < 4; ++i) {
    t.push_back(body(7));
    t.push_back(bend(7));
  }
  t.push_back(exitl(7));
  t.push_back(enter(7));
  for (int i = 0; i < 2; ++i) {
    t.push_back(body(7));
    t.push_back(bend(7));
  }
  t.push_back(exitl(7));
  feed(ex, t);

  EXPECT_EQ(ex.tree().loop_node_count(), 1);  // one node, two entries
  const LoopNode* loop = ex.tree().root()->children()[0].get();
  EXPECT_EQ(loop->entries, 2u);
  EXPECT_EQ(loop->max_trip, 4);
  EXPECT_EQ(loop->total_iterations, 6u);
}

TEST(Extractor, DistinctContextsGetDistinctNodes) {
  // The same inner site (a function's loop) under two different outer
  // loops -> two loop nodes, two separate reference nodes ("inlining").
  Extractor ex;
  std::vector<Record> t;
  for (int outer : {0, 1}) {
    t.push_back(enter(outer));
    t.push_back(body(outer));
    t.push_back(enter(9));
    t.push_back(body(9));
    t.push_back(acc(0x400030, 0x20000000));
    t.push_back(bend(9));
    t.push_back(exitl(9));
    t.push_back(bend(outer));
    t.push_back(exitl(outer));
  }
  feed(ex, t);
  EXPECT_EQ(ex.tree().loop_node_count(), 4);  // 0, 0/9, 1, 1/9
  EXPECT_EQ(ex.tree().ref_node_count(), 2);
}

TEST(Extractor, SameInstrDifferentDepthsSeparateRefs) {
  Extractor ex;
  std::vector<Record> t;
  t.push_back(acc(0x400040, 0x10000000));  // at root
  t.push_back(enter(0));
  t.push_back(body(0));
  t.push_back(acc(0x400040, 0x10000004));  // inside loop
  t.push_back(bend(0));
  t.push_back(exitl(0));
  feed(ex, t);
  EXPECT_EQ(ex.tree().ref_node_count(), 2);
  EXPECT_EQ(ex.tree().root()->refs().size(), 1u);
}

TEST(Extractor, MissingExitRecovers) {
  // Three-checkpoint traces (no explicit exit, as in the paper): the
  // next body_begin of an outer loop must pop the stack.
  Extractor ex;
  std::vector<Record> t = {
      enter(0), body(0), enter(1), body(1), acc(0x400050, 0x10000000),
      // no bend(1)/exit(1): inner loop ended silently
      body(0),  // outer iteration 2 begins
      enter(1), body(1), acc(0x400050, 0x10000010),
      body(0),
  };
  feed(ex, t);
  const LoopNode* outer = ex.tree().root()->children()[0].get();
  EXPECT_EQ(outer->cur_iter, 2);
  EXPECT_EQ(ex.tree().loop_node_count(), 2);
}

TEST(Extractor, CallRetRecordsIgnored) {
  Extractor ex;
  std::vector<Record> t = {Record::call(1), enter(0), body(0),
                           acc(0x400060, 0x10000000), Record::ret(1),
                           exitl(0)};
  feed(ex, t);
  EXPECT_EQ(ex.tree().ref_node_count(), 1);
}

TEST(Extractor, CountersTrackStreamVolume) {
  Extractor ex;
  std::vector<Record> t = {enter(0), body(0), acc(0x1, 0x10000000),
                           acc(0x2, 0x10000004), bend(0), exitl(0)};
  feed(ex, t);
  EXPECT_EQ(ex.records_processed(), 6u);
  EXPECT_EQ(ex.accesses_processed(), 2u);
  EXPECT_EQ(ex.checkpoints_processed(), 4u);
}

TEST(Extractor, LinearLookupProducesIdenticalTree) {
  std::vector<Record> t;
  for (int outer = 0; outer < 3; ++outer) {
    t.push_back(enter(outer));
    for (uint32_t i = 0; i < 4; ++i) {
      t.push_back(body(outer));
      t.push_back(acc(0x400100 + static_cast<uint32_t>(outer) * 4,
                      0x10000000 + 8 * i));
      t.push_back(bend(outer));
    }
    t.push_back(exitl(outer));
  }
  Extractor hashed{ExtractorOptions{.hash_index = true}};
  Extractor linear{ExtractorOptions{.hash_index = false}};
  feed(hashed, t);
  feed(linear, t);
  EXPECT_EQ(hashed.tree().loop_node_count(), linear.tree().loop_node_count());
  EXPECT_EQ(hashed.tree().ref_node_count(), linear.tree().ref_node_count());
  for (size_t i = 0; i < 3; ++i) {
    const RefNode& a = *hashed.tree().root()->children()[i]->refs()[0];
    const RefNode& b = *linear.tree().root()->children()[i]->refs()[0];
    EXPECT_EQ(a.affine.const_term, b.affine.const_term);
    ASSERT_EQ(a.affine.n, b.affine.n);
    for (int c = 0; c < a.affine.n; ++c) {
      EXPECT_EQ(a.affine.coef_at(c), b.affine.coef_at(c)) << "coef " << c;
    }
    EXPECT_EQ(a.exec_count, b.exec_count);
  }
}

TEST(Extractor, StateBytesGrowWithTreeNotTrace) {
  // Same loop re-executed many times: analyzer state must not grow.
  Extractor ex;
  std::vector<Record> once = {enter(0)};
  for (uint32_t i = 0; i < 10; ++i) {
    once.push_back(body(0));
    once.push_back(acc(0x400070, 0x10000000 + 4 * (i % 10)));
    once.push_back(bend(0));
  }
  once.push_back(exitl(0));
  feed(ex, once);
  size_t after_one = ex.state_bytes();
  for (int round = 0; round < 50; ++round) feed(ex, once);
  size_t after_many = ex.state_bytes();
  EXPECT_EQ(after_one, after_many);
}

TEST(Extractor, FootprintCapSaturates) {
  Extractor ex{ExtractorOptions{.footprint_cap = 16}};
  std::vector<Record> t = {enter(0)};
  for (uint32_t i = 0; i < 100; ++i) {
    t.push_back(body(0));
    t.push_back(acc(0x400080, 0x10000000 + 4 * i));
    t.push_back(bend(0));
  }
  t.push_back(exitl(0));
  feed(ex, t);
  const RefNode& ref = *ex.tree().root()->children()[0]->refs()[0];
  EXPECT_EQ(ref.footprint_size(), 16u);
  EXPECT_TRUE(ref.footprint_saturated());
}

}  // namespace
}  // namespace foray::core
