// Additional interpreter edge-case coverage: scoping, unwinding,
// arithmetic corners, intrinsic boundaries. The original tests run on
// the session-default engine (both engines in the CI matrix); the
// EngineEdge suite at the bottom pins the trickiest semantics —
// short-circuit side-effect ordering, division/modulo faults, negative
// strides — on each engine explicitly.
#include <gtest/gtest.h>

#include "instrument/annotator.h"
#include "minic/parser.h"
#include "sim/interpreter.h"
#include "trace/sink.h"

namespace foray::sim {
namespace {

RunResult run_src(std::string_view src, RunOptions opts = {}) {
  util::DiagList diags;
  auto prog = minic::parse_and_check(src, &diags);
  EXPECT_NE(prog, nullptr) << diags.str();
  if (!prog) return RunResult{};
  instrument::annotate_loops(prog.get());
  trace::NullSink sink;
  return run_program(*prog, &sink, opts);
}

int exit_of(std::string_view src) {
  RunResult r = run_src(src);
  EXPECT_TRUE(r.ok()) << r.error();
  return r.exit_code;
}

TEST(InterpEdge, BlockScopeShadowing) {
  EXPECT_EQ(exit_of("int main(void) { int x = 1; { int x = 2; { int x = 3; "
                    "} x = x + 10; } return x; }"),
            1);
}

TEST(InterpEdge, ForScopeIteratorInvisibleOutside) {
  EXPECT_EQ(exit_of("int main(void) { int i = 99; "
                    "for (int i = 0; i < 5; i++) {} return i; }"),
            99);
}

TEST(InterpEdge, NestedBreakOnlyExitsInnerLoop) {
  EXPECT_EQ(exit_of("int main(void) { int s = 0; "
                    "for (int i = 0; i < 3; i++) "
                    "for (int j = 0; j < 100; j++) { if (j == 2) break; "
                    "s++; } return s; }"),
            6);
}

TEST(InterpEdge, ContinueInWhileLoop) {
  EXPECT_EQ(exit_of("int main(void) { int i = 0; int s = 0; "
                    "while (i < 10) { i++; if (i % 2) continue; s += i; } "
                    "return s; }"),
            30);
}

TEST(InterpEdge, BreakInsideDoWhile) {
  EXPECT_EQ(exit_of("int main(void) { int n = 0; do { n++; if (n == 3) "
                    "break; } while (1); return n; }"),
            3);
}

TEST(InterpEdge, ReturnValueConversionNarrows) {
  EXPECT_EQ(exit_of("char f(void) { return 300; } "
                    "int main(void) { return f(); }"),
            44);
}

TEST(InterpEdge, FloatToIntTruncatesTowardZero) {
  EXPECT_EQ(exit_of("int main(void) { float f = 2.9f; return (int)f; }"),
            2);
  EXPECT_EQ(exit_of("int main(void) { float f = -2.9f; return (int)f; }"),
            -2);
}

TEST(InterpEdge, MixedIntFloatArithmeticPromotes) {
  EXPECT_EQ(exit_of("int main(void) { float f = 0.5f; "
                    "return (int)(3 * f * 4.0f); }"),
            6);
}

TEST(InterpEdge, ShortTypeRoundTrips) {
  EXPECT_EQ(exit_of("short s;\nint main(void) { s = 70000; return s == "
                    "70000 - 65536; }"),
            1);
}

TEST(InterpEdge, NegativeModulo) {
  EXPECT_EQ(exit_of("int main(void) { return (-7 % 3) + 10; }"), 9);
}

TEST(InterpEdge, CharPointerVsIntPointerStride) {
  EXPECT_EQ(exit_of("int a[4];\n"
                    "int main(void) { char *c = (char*)a; int *p = a; "
                    "return (int)((char*)(p + 1) - c); }"),
            4);
}

TEST(InterpEdge, PointerComparisonInLoop) {
  EXPECT_EQ(exit_of("int a[10];\n"
                    "int main(void) { int *p = a; int *end = a + 10; "
                    "int n = 0; while (p != end) { p++; n++; } return n; }"),
            10);
}

TEST(InterpEdge, RecursionDepthLimitReported) {
  RunResult r = run_src("int f(int n) { return f(n + 1); } "
                        "int main(void) { return f(0); }");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("depth"), std::string::npos);
}

TEST(InterpEdge, GlobalInitializersRunInOrder) {
  EXPECT_EQ(exit_of("int a = 5; int b = a + 1; int c = b * 2;\n"
                    "int main(void) { return c; }"),
            12);
}

TEST(InterpEdge, ArrayInitListPartiallyFilled) {
  EXPECT_EQ(exit_of("int t[8] = {1, 2, 3};\n"
                    "int main(void) { return t[0] + t[2] + t[7]; }"),
            4);  // trailing elements zero-initialized
}

TEST(InterpEdge, TernaryNested) {
  EXPECT_EQ(exit_of("int main(void) { int x = 5; "
                    "return x < 3 ? 1 : x < 7 ? 2 : 3; }"),
            2);
}

TEST(InterpEdge, CommaFreeForWithCompoundStep) {
  EXPECT_EQ(exit_of("int main(void) { int s = 0; "
                    "for (int i = 0; i < 32; i += 8) s += i; return s; }"),
            48);
}

TEST(InterpEdge, LogicalNotOnPointer) {
  EXPECT_EQ(exit_of("int a[2];\n"
                    "int main(void) { int *p = a; return !p + !!p; }"),
            1);
}

TEST(InterpEdge, PutcharSequence) {
  RunResult r = run_src(
      "int main(void) { putchar(104); putchar(105); return 0; }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, "hi");
}

TEST(InterpEdge, PrintfPercentEscapes) {
  RunResult r = run_src(
      "int main(void) { printf(\"100%%\\n\"); return 0; }");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.output, "100%\n");
}

TEST(InterpEdge, MemcpyOverlappingForwardIsDeterministic) {
  // Our memcpy copies byte-by-byte forward; a shift-down overlap is
  // well-defined in the simulator.
  EXPECT_EQ(exit_of("char b[8];\n"
                    "int main(void) { for (int i = 0; i < 8; i++) b[i] = "
                    "i; memcpy(b, b + 2, 6); return b[0] * 10 + b[5]; }"),
            27);
}

TEST(InterpEdge, MallocZeroBytesDistinctFromNull) {
  EXPECT_EQ(exit_of("int main(void) { char *p = malloc(0); "
                    "return p != (char*)0; }"),
            1);
}

TEST(InterpEdge, StepLimitCountsConditionEvaluations) {
  RunOptions opts;
  opts.budget.max_steps = 100;
  RunResult r = run_src("int main(void) { for (;;) {} return 0; }", opts);
  EXPECT_FALSE(r.ok());
}

TEST(InterpEdge, WhileConditionSideEffects) {
  EXPECT_EQ(exit_of("int main(void) { int n = 5; int c = 0; "
                    "while (n-- > 0) c++; return c * 10 + (n == -1 ? 1 : "
                    "0); }"),
            51);
}

TEST(InterpEdge, AssignmentExpressionValue) {
  EXPECT_EQ(exit_of("int main(void) { int a; int b; "
                    "return (a = 3) + (b = a * 2); }"),
            9);
}

TEST(InterpEdge, CompoundAssignOnArrayElement) {
  EXPECT_EQ(exit_of("int t[4] = {1, 2, 3, 4};\n"
                    "int main(void) { t[2] *= 5; t[2] -= 1; return t[2]; }"),
            14);
}

// ---------------------------------------------------------------------------
// Engine-pinned edge cases. Each runs explicitly on the AST walker and
// on the bytecode VM (not just the session default) so a divergence in
// these corners names the engine that broke.

class EngineEdge : public ::testing::TestWithParam<Engine> {
 protected:
  RunResult run_on(std::string_view src, RunOptions opts = {}) {
    opts.engine = GetParam();
    return run_src(src, opts);
  }

  int exit_on(std::string_view src) {
    RunResult r = run_on(src);
    EXPECT_TRUE(r.ok()) << r.error();
    return r.exit_code;
  }
};

TEST_P(EngineEdge, LogicalAndEvaluatesLeftToRightAndStopsEarly) {
  // f() appends a digit to g; the right operand of && must not run
  // once the left is false, and must run exactly once when it is true.
  EXPECT_EQ(exit_on("int g;\n"
                    "int f(int v) { g = g * 10 + v + 1; return v; }\n"
                    "int main(void) { f(1) && f(0) && f(2); return g; }"),
            21);  // f(1) -> 2, f(0) -> 21, f(2) never runs
}

TEST_P(EngineEdge, LogicalOrSkipsTheRightOperandWhenLeftIsTrue) {
  EXPECT_EQ(exit_on("int g;\n"
                    "int f(int v) { g = g * 10 + v + 1; return v; }\n"
                    "int main(void) { f(0) || f(3); f(1) || f(5); "
                    "return g; }"),
            142);  // f(0)->1, f(3)->14, f(1)->142, f(5) never runs
}

TEST_P(EngineEdge, ShortCircuitResultNormalizesToZeroOrOne) {
  EXPECT_EQ(exit_on("int main(void) { return (7 && 9) * 10 + (0 || -3); }"),
            11);
}

TEST_P(EngineEdge, ShortCircuitSideEffectsInConditionOrder) {
  // Assignments inside the condition must land before the right
  // operand reads them.
  EXPECT_EQ(exit_on("int a;\nint b;\n"
                    "int main(void) { ((a = 4) && (b = a + 1)) || (b = "
                    "99); return b; }"),
            5);
}

TEST_P(EngineEdge, DivisionByZeroFaultsWithDiagnostic) {
  RunResult r = run_on("int main(void) { int z = 0; return 7 / z; }");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("integer division by zero"), std::string::npos)
      << r.error();
}

TEST_P(EngineEdge, ModuloByZeroFaultsWithDiagnostic) {
  RunResult r = run_on("int main(void) { int z = 0; return 7 % z; }");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("modulo by zero"), std::string::npos)
      << r.error();
}

TEST_P(EngineEdge, CompoundDivideByZeroFaultsToo) {
  RunResult r = run_on(
      "int main(void) { int x = 8; int z = 0; x /= z; return x; }");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("integer division by zero"), std::string::npos);
}

TEST_P(EngineEdge, FloatDivisionByZeroIsNotAFault) {
  // Float division follows IEEE semantics (inf), like the reference.
  EXPECT_EQ(exit_on("int main(void) { float z = 0.0f; "
                    "return (1.0f / z > 1000000.0f) ? 4 : 5; }"),
            4);
}

TEST_P(EngineEdge, WorkBeforeTheFaultIsStillObservable) {
  RunResult r = run_on(
      "int main(void) { putchar(111); putchar(107); int z = 0; "
      "return 1 / z; }");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.output, "ok");
}

TEST_P(EngineEdge, NegativeStrideForLoop) {
  EXPECT_EQ(exit_on("int main(void) { int s = 0; "
                    "for (int i = 9; i >= 0; i -= 3) s += i; return s; }"),
            18);  // 9 + 6 + 3 + 0
}

TEST_P(EngineEdge, NegativeStrideOverArrayWritesDescendingAddresses) {
  EXPECT_EQ(exit_on("int a[8];\n"
                    "int main(void) { for (int i = 7; i >= 0; i -= 2) "
                    "a[i] = i; return a[7] * 10 + a[1]; }"),
            71);
}

TEST_P(EngineEdge, NegativeStrideDoWhileCountsDown) {
  EXPECT_EQ(exit_on("int main(void) { int i = 5; int n = 0; "
                    "do { n++; i -= 2; } while (i > 0); return n * 10 + "
                    "i + 5; }"),
            34);  // 3 iterations, i ends at -1
}

TEST_P(EngineEdge, AddressWrapAroundFaultsInsteadOfMapping) {
  // An address near 2^32 must fault as unmapped; with 32-bit range
  // arithmetic (addr + size wrapping to 0) it would pass the stack
  // region check and index ~2 GB past the backing store.
  RunResult r = run_on(
      "char a[4];\n"
      "int main(void) { char *p = a; return *(p + 4026531839); }");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("unmapped"), std::string::npos) << r.error();
}

TEST_P(EngineEdge, PointerWalkDownward) {
  EXPECT_EQ(exit_on("int a[6];\n"
                    "int main(void) { int *p = a + 5; int n = 0; "
                    "while (p >= a) { *p = n++; p--; } return a[0] * 10 + "
                    "a[5]; }"),
            50);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineEdge,
    ::testing::Values(Engine::Ast, Engine::Bytecode, Engine::Jit),
    [](const ::testing::TestParamInfo<Engine>& pi) {
      switch (pi.param) {
        case Engine::Ast: return "ast";
        case Engine::Bytecode: return "bytecode";
        case Engine::Jit: return "jit";
      }
      return "unknown";
    });

}  // namespace
}  // namespace foray::sim
