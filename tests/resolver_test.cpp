// Direct coverage for sim/resolver — the static variable resolution both
// execution engines build on. Until now it was only exercised
// indirectly through the interpreter; the bytecode compiler reads the
// same tables (frame slots, ident bindings, per-function slot counts)
// at compile time, so this pins the exact contract: slot assignment
// across shadowing, sibling blocks, loop scopes, and parameters, plus
// the unresolved / global-fallback rules.
#include <gtest/gtest.h>

#include "minic/ast.h"
#include "minic/parser.h"
#include "sim/resolver.h"

namespace foray::sim {
namespace {

struct Resolved {
  std::unique_ptr<minic::Program> prog;
  VarResolution res;
};

Resolved resolve(std::string_view src) {
  util::DiagList diags;
  Resolved out;
  out.prog = minic::parse_program(src, &diags);
  EXPECT_TRUE(diags.empty()) << diags.str();
  if (out.prog) out.res = resolve_variables(*out.prog);
  return out;
}

/// Collects (node_id, name) of every Ident expression, in walk order.
void collect_idents(const minic::Expr* e,
                    std::vector<const minic::Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == minic::ExprKind::Ident) out->push_back(e);
  collect_idents(e->a.get(), out);
  collect_idents(e->b.get(), out);
  collect_idents(e->c.get(), out);
  for (const auto& a : e->args) collect_idents(a.get(), out);
}

void collect_idents(const minic::Stmt* s,
                    std::vector<const minic::Expr*>* out) {
  if (s == nullptr) return;
  collect_idents(s->expr.get(), out);
  for (const auto& d : s->decls) {
    collect_idents(d.init.get(), out);
    for (const auto& e : d.init_list) collect_idents(e.get(), out);
  }
  collect_idents(s->init.get(), out);
  collect_idents(s->cond.get(), out);
  collect_idents(s->step.get(), out);
  collect_idents(s->then_branch.get(), out);
  collect_idents(s->else_branch.get(), out);
  collect_idents(s->body.get(), out);
  for (const auto& st : s->stmts) collect_idents(st.get(), out);
}

/// All Ident uses of `name` inside the first function, in source order.
std::vector<VarResolution::Binding> bindings_of(const Resolved& r,
                                                const std::string& name) {
  std::vector<const minic::Expr*> idents;
  for (const auto& fn : r.prog->funcs) collect_idents(fn->body.get(), &idents);
  std::vector<VarResolution::Binding> out;
  for (const auto* e : idents) {
    if (e->name == name) {
      out.push_back(r.res.ident[static_cast<size_t>(e->node_id)]);
    }
  }
  return out;
}

TEST(Resolver, ShadowingBindsEachUseToTheNearestDeclaration) {
  auto r = resolve(
      "int main(void) {\n"
      "  int x = 1;\n"       // slot 0
      "  x;\n"               // -> slot 0
      "  {\n"
      "    int x = 2;\n"     // slot 1
      "    x;\n"             // -> slot 1
      "    {\n"
      "      int x = 3;\n"   // slot 2
      "      x;\n"           // -> slot 2
      "    }\n"
      "    x;\n"             // -> slot 1 (inner scope closed)
      "  }\n"
      "  x;\n"               // -> slot 0
      "  return 0;\n"
      "}\n");
  auto uses = bindings_of(r, "x");
  ASSERT_EQ(uses.size(), 5u);
  const int32_t expected[] = {0, 1, 2, 1, 0};
  for (size_t i = 0; i < uses.size(); ++i) {
    EXPECT_TRUE(uses[i].resolved) << "use " << i;
    EXPECT_FALSE(uses[i].global) << "use " << i;
    EXPECT_EQ(uses[i].index, expected[i]) << "use " << i;
  }
  // Slots never recycle across sibling or nested scopes.
  EXPECT_EQ(r.res.func_slots[0], 3);
}

TEST(Resolver, SiblingBlocksGetDistinctSlots) {
  auto r = resolve(
      "int main(void) {\n"
      "  { int a = 1; a; }\n"
      "  { int b = 2; b; }\n"
      "  return 0;\n"
      "}\n");
  auto a = bindings_of(r, "a");
  auto b = bindings_of(r, "b");
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].index, 0);
  EXPECT_EQ(b[0].index, 1);  // no slot reuse: allocation order is global
  EXPECT_EQ(r.res.func_slots[0], 2);
}

TEST(Resolver, ParametersFillTheFirstSlotsInOrder) {
  auto r = resolve(
      "int f(int a, float b, char c) {\n"
      "  int d = 0;\n"
      "  return a + (int)b + c + d;\n"
      "}\n"
      "int main(void) { return f(1, 2.0f, 3); }\n");
  const auto& fn = *r.prog->funcs[0];
  ASSERT_EQ(fn.params.size(), 3u);
  for (size_t i = 0; i < fn.params.size(); ++i) {
    EXPECT_EQ(r.res.decl_slot[static_cast<size_t>(fn.params[i].node_id)],
              static_cast<int32_t>(i));
  }
  EXPECT_EQ(bindings_of(r, "a")[0].index, 0);
  EXPECT_EQ(bindings_of(r, "b")[0].index, 1);
  EXPECT_EQ(bindings_of(r, "c")[0].index, 2);
  EXPECT_EQ(bindings_of(r, "d")[0].index, 3);
  EXPECT_EQ(r.res.func_slots[static_cast<size_t>(fn.func_id)], 4);
}

TEST(Resolver, ForLoopScopeHoldsTheInitDeclaration) {
  auto r = resolve(
      "int main(void) {\n"
      "  int i = 99;\n"                       // slot 0
      "  for (int i = 0; i < 3; i++) { i; }\n"  // slot 1; all uses -> 1
      "  i;\n"                                // -> slot 0 again
      "  return 0;\n"
      "}\n");
  auto uses = bindings_of(r, "i");
  // cond, step, body, then the use after the loop.
  ASSERT_EQ(uses.size(), 4u);
  EXPECT_EQ(uses[0].index, 1);
  EXPECT_EQ(uses[1].index, 1);
  EXPECT_EQ(uses[2].index, 1);
  EXPECT_EQ(uses[3].index, 0);
}

TEST(Resolver, LocalsShadowGlobalsAndFallBackWhenScopeCloses) {
  auto r = resolve(
      "int g = 7;\n"
      "int main(void) {\n"
      "  g;\n"                 // -> global 0
      "  { int g = 1; g; }\n"  // -> local slot 0
      "  g;\n"                 // -> global 0 again
      "  return 0;\n"
      "}\n");
  auto uses = bindings_of(r, "g");
  ASSERT_EQ(uses.size(), 3u);
  EXPECT_TRUE(uses[0].global);
  EXPECT_EQ(uses[0].index, 0);
  EXPECT_FALSE(uses[1].global);
  EXPECT_EQ(uses[1].index, 0);
  EXPECT_TRUE(uses[2].global);
}

TEST(Resolver, DuplicateGlobalsShadowByNameButKeepTheirSlots) {
  auto r = resolve(
      "int d = 1;\n"
      "int d = 2;\n"
      "int main(void) { d; return 0; }\n");
  EXPECT_EQ(r.res.globals, 2);  // both declarations own a slot
  auto uses = bindings_of(r, "d");
  ASSERT_EQ(uses.size(), 1u);
  EXPECT_TRUE(uses[0].global);
  EXPECT_EQ(uses[0].index, 1);  // the later declaration wins the name
}

TEST(Resolver, GlobalInitializersSeeOnlyEarlierGlobalsAndThemselves) {
  auto r = resolve(
      "int a = 1;\n"
      "int b = a + 1;\n"   // a resolved (earlier)
      "int c = c + e;\n"   // c resolved (self), e unresolved (later)
      "int e = 5;\n"
      "int main(void) { return b; }\n");
  // Walk the globals' init expressions directly.
  std::vector<const minic::Expr*> idents;
  for (const auto& d : r.prog->globals) collect_idents(d.init.get(), &idents);
  ASSERT_EQ(idents.size(), 3u);  // a, c, e
  const auto& use_a = r.res.ident[static_cast<size_t>(idents[0]->node_id)];
  const auto& use_c = r.res.ident[static_cast<size_t>(idents[1]->node_id)];
  const auto& use_e = r.res.ident[static_cast<size_t>(idents[2]->node_id)];
  EXPECT_TRUE(use_a.resolved);
  EXPECT_EQ(use_a.index, 0);
  EXPECT_TRUE(use_c.resolved);  // declaration registers before its init
  EXPECT_EQ(use_c.index, 2);
  EXPECT_FALSE(use_e.resolved);  // later global: stays unresolved
}

TEST(Resolver, DeclarationBindsBeforeItsInitializerEvaluates) {
  // `int x = x;` sees the new x (the interpreter's historical dynamic
  // behavior, preserved exactly).
  auto r = resolve("int main(void) { int x = x; return 0; }\n");
  auto uses = bindings_of(r, "x");
  ASSERT_EQ(uses.size(), 1u);
  EXPECT_TRUE(uses[0].resolved);
  EXPECT_FALSE(uses[0].global);
  EXPECT_EQ(uses[0].index, 0);
}

TEST(Resolver, SlotCountsArePerFunction) {
  auto r = resolve(
      "int f(int a) { int b = a; return b; }\n"
      "int g(void) { int x = 0; { int y = 1; { int z = 2; x = y + z; } } "
      "return x; }\n"
      "int main(void) { return f(1) + g(); }\n");
  EXPECT_EQ(r.res.func_slots[0], 2);  // a, b
  EXPECT_EQ(r.res.func_slots[1], 3);  // x, y, z
  EXPECT_EQ(r.res.func_slots[2], 0);  // main declares nothing
}

}  // namespace
}  // namespace foray::sim
