// Randomized end-to-end property tests: for programs whose affine
// behavior is known by construction, FORAY-GEN must recover exactly the
// constructed coefficients and trip counts, whatever surface syntax the
// program uses — and the static baselines must see exactly the syntactic
// subsets they are supposed to see.
#include <gtest/gtest.h>

#include <algorithm>

#include "benchsuite/generator.h"
#include "foray/pipeline.h"
#include "minic/parser.h"
#include "staticforay/pointer_conversion.h"
#include "staticforay/static_analysis.h"

namespace foray::benchsuite {
namespace {

core::PipelineOptions lenient() {
  core::PipelineOptions o;
  o.filter.min_exec = 1;
  o.filter.min_locations = 1;
  return o;
}

/// Finds the model reference realizing `nest` (matching trips and
/// byte-granular coefficients); nullptr if absent.
const core::ModelReference* find_match(const core::ForayModel& model,
                                       const ExpectedNest& nest) {
  std::vector<int64_t> want_coefs;
  for (int64_t c : nest.elem_coefs) want_coefs.push_back(c * 4);
  for (const auto& r : model.refs) {
    if (!r.has_write) continue;
    if (r.emitted_trips() != nest.trips) continue;
    if (r.emitted_coefs() != want_coefs) continue;
    return &r;
  }
  return nullptr;
}

class GeneratedRecovery : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedRecovery, AllNestsExactlyRecovered) {
  GeneratorOptions gopts;
  gopts.seed = GetParam();
  gopts.num_nests = 5;
  GeneratedProgram gen = generate_affine_program(gopts);

  auto res = core::run_pipeline(gen.source, lenient());
  ASSERT_TRUE(res.ok()) << res.error() << "\nprogram:\n" << gen.source;

  for (size_t i = 0; i < gen.nests.size(); ++i) {
    const auto& nest = gen.nests[i];
    const core::ModelReference* match = find_match(res.model, nest);
    ASSERT_NE(match, nullptr)
        << "nest " << i << " (style " << static_cast<int>(nest.style)
        << ") not recovered\nprogram:\n" << gen.source;
    EXPECT_FALSE(match->partial()) << "nest " << i;
    EXPECT_EQ(match->exec_count, nest.accesses()) << "nest " << i;
  }
}

TEST_P(GeneratedRecovery, StaticBaselinesSeeTheirSyntacticSubsets) {
  GeneratorOptions gopts;
  gopts.seed = GetParam() * 31 + 7;
  gopts.num_nests = 6;
  GeneratedProgram gen = generate_affine_program(gopts);

  auto res = core::run_pipeline(gen.source, lenient());
  ASSERT_TRUE(res.ok()) << res.error();
  auto analysis = staticforay::analyze(*res.program);
  auto conv = staticforay::analyze_pointer_conversion(*res.program);

  for (const auto& nest : gen.nests) {
    const core::ModelReference* match = find_match(res.model, nest);
    ASSERT_NE(match, nullptr) << gen.source;
    const int node = minic::node_for_instr_addr(match->instr);
    switch (nest.style) {
      case NestStyle::Subscript:
        EXPECT_TRUE(analysis.ref_is_affine(node))
            << "subscript nest must be statically affine\n" << gen.source;
        break;
      case NestStyle::PointerFor:
        EXPECT_FALSE(analysis.ref_is_affine(node));
        EXPECT_TRUE(conv.ref_is_convertible(node))
            << "canonical-for pointer walk must be Franke-convertible\n"
            << gen.source;
        break;
      case NestStyle::PointerWhile:
        EXPECT_FALSE(analysis.ref_is_affine(node));
        EXPECT_FALSE(conv.ref_is_convertible(node))
            << "while-loop walk must stay statically opaque\n"
            << gen.source;
        break;
    }
  }
}

TEST_P(GeneratedRecovery, RoundTripThroughEmittedModel) {
  GeneratorOptions gopts;
  gopts.seed = GetParam() * 1000 + 3;
  gopts.num_nests = 3;
  GeneratedProgram gen = generate_affine_program(gopts);

  auto res = core::run_pipeline(gen.source, lenient());
  ASSERT_TRUE(res.ok()) << res.error();
  auto res2 = core::run_pipeline(res.foray_source, lenient());
  ASSERT_TRUE(res2.ok()) << res2.error() << "\nemitted:\n" << res.foray_source;

  // Every constructed nest must survive the second extraction.
  for (const auto& nest : gen.nests) {
    EXPECT_NE(find_match(res2.model, nest), nullptr)
        << "lost in round trip\n" << res.foray_source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedRecovery,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89, 144, 233),
                         [](const ::testing::TestParamInfo<uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

TEST(Generator, DeterministicForSeed) {
  GeneratorOptions o;
  o.seed = 42;
  auto a = generate_affine_program(o);
  auto b = generate_affine_program(o);
  EXPECT_EQ(a.source, b.source);
  ASSERT_EQ(a.nests.size(), b.nests.size());
  for (size_t i = 0; i < a.nests.size(); ++i) {
    EXPECT_EQ(a.nests[i].elem_coefs, b.nests[i].elem_coefs);
    EXPECT_EQ(a.nests[i].trips, b.nests[i].trips);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorOptions a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(generate_affine_program(a).source,
            generate_affine_program(b).source);
}

TEST(Generator, SubscriptOnlyModeRestrictsStyles) {
  GeneratorOptions o;
  o.seed = 7;
  o.num_nests = 10;
  o.allow_pointer_for = false;
  o.allow_pointer_while = false;
  auto g = generate_affine_program(o);
  for (const auto& n : g.nests) {
    EXPECT_EQ(n.style, NestStyle::Subscript);
  }
}

TEST(Generator, ProgramsAreWellFormed) {
  for (uint64_t seed : {101u, 202u, 303u}) {
    GeneratorOptions o;
    o.seed = seed;
    o.num_nests = 8;
    auto g = generate_affine_program(o);
    util::DiagList diags;
    auto prog = minic::parse_and_check(g.source, &diags);
    EXPECT_NE(prog, nullptr) << diags.str() << "\n" << g.source;
  }
}

}  // namespace
}  // namespace foray::benchsuite
