#include <gtest/gtest.h>

#include "benchsuite/suite.h"
#include "foray/pipeline.h"
#include "instrument/annotator.h"
#include "minic/parser.h"
#include "staticforay/static_analysis.h"

namespace foray::staticforay {
namespace {

struct Analyzed {
  std::unique_ptr<minic::Program> prog;
  instrument::LoopSiteTable sites;
  Analysis analysis;
};

Analyzed analyze_src(std::string_view src) {
  util::DiagList diags;
  Analyzed out;
  out.prog = minic::parse_and_check(src, &diags);
  EXPECT_NE(out.prog, nullptr) << diags.str();
  if (out.prog) {
    out.sites = instrument::annotate_loops(out.prog.get());
    out.analysis = analyze(*out.prog);
  }
  return out;
}

TEST(Static, CanonicalForRecognized) {
  auto a = analyze_src(
      "int v[64];\n"
      "int main(void) { for (int i = 0; i < 64; i++) v[i] = i; return 0; }");
  EXPECT_TRUE(a.analysis.loop_is_canonical(0));
  EXPECT_EQ(a.analysis.canonical_loops.size(), 1u);
}

TEST(Static, AssignmentStyleInitRecognized) {
  auto a = analyze_src(
      "int v[64];\n"
      "int main(void) { int i; for (i = 0; i < 64; i++) v[i] = i; "
      "return 0; }");
  EXPECT_TRUE(a.analysis.loop_is_canonical(0));
}

TEST(Static, StepByConstantRecognized) {
  auto a = analyze_src(
      "int v[64];\n"
      "int main(void) { for (int i = 0; i < 64; i += 4) v[i] = i; "
      "return 0; }");
  EXPECT_TRUE(a.analysis.loop_is_canonical(0));
}

TEST(Static, DownCountingRecognized) {
  auto a = analyze_src(
      "int v[64];\n"
      "int main(void) { for (int i = 63; i > 0; i--) v[i] = i; return 0; }");
  EXPECT_TRUE(a.analysis.loop_is_canonical(0));
}

TEST(Static, WhileLoopNotCanonical) {
  auto a = analyze_src(
      "int v[64];\n"
      "int main(void) { int i = 0; while (i < 64) { v[i] = i; i++; } "
      "return 0; }");
  EXPECT_FALSE(a.analysis.loop_is_canonical(0));
  EXPECT_EQ(a.analysis.total_loops, 1);
}

TEST(Static, NonConstantBoundNotCanonical) {
  auto a = analyze_src(
      "int v[64]; int n = 64;\n"
      "int main(void) { for (int i = 0; i < n; i++) v[i] = i; return 0; }");
  EXPECT_FALSE(a.analysis.loop_is_canonical(0));
}

TEST(Static, IteratorModifiedInBodyNotCanonical) {
  auto a = analyze_src(
      "int v[64];\n"
      "int main(void) { for (int i = 0; i < 64; i++) { v[i] = i; "
      "if (v[i] > 10) i += 2; } return 0; }");
  EXPECT_FALSE(a.analysis.loop_is_canonical(0));
}

TEST(Static, AddressTakenIteratorNotCanonical) {
  auto a = analyze_src(
      "int v[64];\nvoid touch(int *p) { *p = *p; }\n"
      "int main(void) { for (int i = 0; i < 64; i++) { touch(&i); "
      "v[i] = i; } return 0; }");
  EXPECT_FALSE(a.analysis.loop_is_canonical(0));
}

TEST(Static, AffineSubscriptsRecognized) {
  auto a = analyze_src(
      "int m[4096];\n"
      "int main(void) {\n"
      "  for (int i = 0; i < 8; i++)\n"
      "    for (int j = 0; j < 8; j++)\n"
      "      m[i * 64 + j + 3] = m[64 * i + 2 * j] + m[(i + j) * 4];\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(a.analysis.affine_ref_nodes.size(), 3u);
}

TEST(Static, NonAffineSubscriptRejected) {
  auto a = analyze_src(
      "int m[256]; int t[16];\n"
      "int main(void) {\n"
      "  for (int i = 0; i < 16; i++) m[t[i]] = i;     // table index\n"
      "  for (int i = 0; i < 16; i++) m[i * i] = i;    // quadratic\n"
      "  return 0;\n"
      "}\n");
  // t[i] itself is affine; m[t[i]] and m[i*i] are not.
  EXPECT_EQ(a.analysis.affine_ref_nodes.size(), 1u);
}

TEST(Static, PointerDerefNeverAffine) {
  auto a = analyze_src(
      "int m[256];\n"
      "int main(void) {\n"
      "  int *p = m;\n"
      "  for (int i = 0; i < 256; i++) *p++ = i;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(a.analysis.affine_ref_nodes.empty());
  EXPECT_GT(a.analysis.total_ref_sites, 0);
}

TEST(Static, PointerParameterSubscriptNotAffine) {
  auto a = analyze_src(
      "void fill(int *dst) { for (int i = 0; i < 32; i++) dst[i] = i; }\n"
      "int m[32];\n"
      "int main(void) { fill(m); return 0; }");
  // dst[i] is affine in form but dst's provenance is unknown statically.
  EXPECT_TRUE(a.analysis.affine_ref_nodes.empty());
}

TEST(Static, IteratorOutsideCanonicalScopeNotAffine) {
  auto a = analyze_src(
      "int m[256];\n"
      "int main(void) {\n"
      "  int k = 3;\n"
      "  for (int i = 0; i < 16; i++) m[i + k] = i;  // k is not an iterator\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(a.analysis.affine_ref_nodes.empty());
}

TEST(Static, LocalArrayRecognized) {
  auto a = analyze_src(
      "int main(void) {\n"
      "  int buf[64];\n"
      "  for (int i = 0; i < 64; i++) buf[i] = i;\n"
      "  return buf[5];\n"
      "}\n");
  EXPECT_EQ(a.analysis.affine_ref_nodes.size(), 2u);  // store + final read
}

// -- conversion stats (Table II join) ----------------------------------------

TEST(Conversion, FullyStaticProgramHasZeroPctNotForay) {
  const char* src =
      "int v[256];\n"
      "int main(void) {\n"
      "  for (int i = 0; i < 256; i++) v[i] = i * 3;\n"
      "  return v[7];\n"
      "}\n";
  core::PipelineOptions po;
  po.filter.min_exec = 1;
  po.filter.min_locations = 1;
  auto res = core::run_pipeline(src, po);
  ASSERT_TRUE(res.ok()) << res.error();
  Analysis an = analyze(*res.program);
  ConversionStats cs = compute_conversion(res.model, an);
  ASSERT_GT(cs.model_refs, 0);
  EXPECT_EQ(cs.refs_not_foray, 0);
  EXPECT_EQ(cs.loops_not_foray, 0);
  EXPECT_DOUBLE_EQ(cs.ref_increase_factor(), 1.0);
}

TEST(Conversion, PointerWalkProgramIsFullyDynamic) {
  const char* src =
      "int v[256];\n"
      "int main(void) {\n"
      "  int *p = v;\n"
      "  int n = 256;\n"
      "  while (n-- > 0) *p++ = n;\n"
      "  return v[7];\n"
      "}\n";
  core::PipelineOptions po;
  po.filter.min_exec = 1;
  po.filter.min_locations = 1;
  auto res = core::run_pipeline(src, po);
  ASSERT_TRUE(res.ok()) << res.error();
  Analysis an = analyze(*res.program);
  ConversionStats cs = compute_conversion(res.model, an);
  ASSERT_GT(cs.model_refs, 0);
  EXPECT_EQ(cs.refs_not_foray, cs.model_refs);
  EXPECT_DOUBLE_EQ(cs.pct_refs_not_foray(), 100.0);
}

TEST(Conversion, MixedProgramSplitsAndDoublesReach) {
  // One statically-visible nest and one pointer-walk nest of the same
  // size: FORAY-GEN doubles the analyzable references.
  const char* src =
      "int a[256]; int b[256];\n"
      "int main(void) {\n"
      "  for (int i = 0; i < 256; i++) a[i] = i;\n"
      "  int *p = b;\n"
      "  int n = 256;\n"
      "  while (n-- > 0) *p++ = n;\n"
      "  return a[3] + b[4];\n"
      "}\n";
  core::PipelineOptions po;
  auto res = core::run_pipeline(src, po);
  ASSERT_TRUE(res.ok()) << res.error();
  Analysis an = analyze(*res.program);
  ConversionStats cs = compute_conversion(res.model, an);
  EXPECT_EQ(cs.model_refs, 2);
  EXPECT_EQ(cs.refs_not_foray, 1);
  EXPECT_DOUBLE_EQ(cs.ref_increase_factor(), 2.0);
  EXPECT_DOUBLE_EQ(cs.pct_refs_not_foray(), 50.0);
}

TEST(Conversion, RefInNonCanonicalLoopNotStatic) {
  // Affine subscript but inside a while loop: the nest disqualifies it.
  const char* src =
      "int v[256];\n"
      "int main(void) {\n"
      "  int i = 0;\n"
      "  while (i < 256) { v[i] = i; i++; }\n"
      "  return v[9];\n"
      "}\n";
  core::PipelineOptions po;
  auto res = core::run_pipeline(src, po);
  ASSERT_TRUE(res.ok()) << res.error();
  Analysis an = analyze(*res.program);
  ConversionStats cs = compute_conversion(res.model, an);
  ASSERT_GT(cs.model_refs, 0);
  EXPECT_EQ(cs.refs_not_foray, cs.model_refs);
}

// -- adversarial Table II cases ----------------------------------------------
// Near-miss programs that probe exactly where the FORAY-form classifier
// draws its line. These pin current behavior: the classifier is purely
// syntactic (literal bounds, declared iterators), deliberately NOT
// powered by the interval checker — a sharpening of either must show up
// here as a conscious diff, not an accident.

TEST(Static, ConstantPropagatedLocalBoundNotCanonical) {
  // `n` is provably 64 (the interval checker knows it), but the Table II
  // classifier requires a literal bound, so the loop stays non-FORAY.
  auto a = analyze_src(
      "int v[64];\n"
      "int main(void) {\n"
      "  int n = 64;\n"
      "  for (int i = 0; i < n; i++) v[i] = i;\n"
      "  return 0;\n"
      "}\n");
  EXPECT_FALSE(a.analysis.loop_is_canonical(0));
  EXPECT_EQ(a.analysis.total_loops, 1);
}

TEST(Static, SubscriptAffineOnlyAfterNarrowingNotAffine) {
  // Inside the guarded branch, interval narrowing proves k == i, making
  // v[k] affine in i — but the classifier never narrows, so the ref is
  // not statically affine. The guard subscript v[i] itself is.
  auto a = analyze_src(
      "int v[64];\n"
      "int main(void) {\n"
      "  int k = 0;\n"
      "  for (int i = 0; i < 64; i++) {\n"
      "    k = i;\n"
      "    if (v[i] > 0) v[k] = i;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(a.analysis.affine_ref_nodes.size(), 1u);
  EXPECT_TRUE(a.analysis.loop_is_canonical(0));
}

TEST(Conversion, BenchsuiteNumbersUnchangedByTheChecker) {
  // Table II over the shipped benchsuite, pinned exactly: the interval
  // checker (staticforay/checker.h) shares the subsystem but must not
  // perturb the paper-facing conversion statistics.
  struct Row {
    const char* name;
    int model_loops, model_refs, loops_not_foray, refs_not_foray;
  };
  const Row want[] = {
      {"jpeg", 25, 38, 12, 26}, {"lame", 21, 32, 19, 28},
      {"susan", 10, 13, 2, 7},  {"fft", 18, 66, 0, 0},
      {"gsm", 14, 22, 11, 19},  {"adpcm", 2, 2, 2, 2},
  };
  for (const Row& row : want) {
    SCOPED_TRACE(row.name);
    const auto& b = benchsuite::get_benchmark(row.name);
    core::PipelineOptions po;
    auto res = core::run_pipeline(b.source, po);
    ASSERT_TRUE(res.ok()) << res.error();
    Analysis an = analyze(*res.program);
    ConversionStats cs = compute_conversion(res.model, an);
    EXPECT_EQ(cs.model_loops, row.model_loops);
    EXPECT_EQ(cs.model_refs, row.model_refs);
    EXPECT_EQ(cs.loops_not_foray, row.loops_not_foray);
    EXPECT_EQ(cs.refs_not_foray, row.refs_not_foray);
  }
}

}  // namespace
}  // namespace foray::staticforay
