#include <gtest/gtest.h>

#include "instrument/annotator.h"
#include "minic/parser.h"
#include "sim/interpreter.h"
#include "trace/sink.h"

namespace foray::sim {
namespace {

using trace::AccessKind;
using trace::CheckpointType;
using trace::Record;
using trace::RecordType;

struct RunCapture {
  RunResult result;
  std::vector<Record> records;
};

RunCapture run_src(std::string_view src, RunOptions opts = {}) {
  util::DiagList diags;
  auto prog = minic::parse_and_check(src, &diags);
  EXPECT_NE(prog, nullptr) << diags.str();
  RunCapture out;
  if (!prog) return out;
  instrument::annotate_loops(prog.get());
  trace::VectorSink sink;
  out.result = run_program(*prog, &sink, opts);
  out.records = sink.take();
  return out;
}

int exit_of(std::string_view src) {
  RunCapture r = run_src(src);
  EXPECT_TRUE(r.result.ok()) << r.result.error();
  return r.result.exit_code;
}

TEST(Interp, ReturnsExitCode) {
  EXPECT_EQ(exit_of("int main(void) { return 42; }"), 42);
}

TEST(Interp, IntegerArithmetic) {
  EXPECT_EQ(exit_of("int main(void) { return 2 + 3 * 4 - 6 / 2; }"), 11);
  EXPECT_EQ(exit_of("int main(void) { return 17 % 5; }"), 2);
  EXPECT_EQ(exit_of("int main(void) { return (1 << 6) >> 2; }"), 16);
  EXPECT_EQ(exit_of("int main(void) { return (12 & 10) | (1 ^ 3); }"), 10);
}

TEST(Interp, ComparisonAndLogical) {
  EXPECT_EQ(exit_of("int main(void) { return (3 < 4) + (4 <= 4) + (5 > 4) "
                    "+ (4 >= 5) + (2 == 2) + (2 != 2); }"),
            4);
  EXPECT_EQ(exit_of("int main(void) { return (1 && 2) + (0 || 3) + !5; }"),
            2);
}

TEST(Interp, ShortCircuitSkipsSideEffects) {
  EXPECT_EQ(exit_of(
                "int g = 0;\n"
                "int bump(void) { g = g + 1; return 1; }\n"
                "int main(void) { 0 && bump(); 1 || bump(); return g; }"),
            0);
}

TEST(Interp, FloatArithmetic) {
  EXPECT_EQ(exit_of("int main(void) { float f = 1.5f; f = f * 4.0f; "
                    "return (int)f; }"),
            6);
  EXPECT_EQ(exit_of("int main(void) { float f = 7.0f; return (int)(f / "
                    "2.0f * 2.0f); }"),
            7);
}

TEST(Interp, CharTruncation) {
  EXPECT_EQ(exit_of("int main(void) { char c = 300; return c; }"), 44);
  EXPECT_EQ(exit_of("int main(void) { char c = -1; return c; }"), -1);
}

TEST(Interp, TernaryEvaluatesOneSide) {
  EXPECT_EQ(exit_of(
                "int g = 0;\n"
                "int bump(void) { g = g + 10; return g; }\n"
                "int main(void) { int x = 1 ? 5 : bump(); return x + g; }"),
            5);
}

TEST(Interp, WhileLoopSum) {
  EXPECT_EQ(exit_of("int main(void) { int s = 0; int i = 0; "
                    "while (i < 10) { s += i; i++; } return s; }"),
            45);
}

TEST(Interp, DoWhileRunsAtLeastOnce) {
  EXPECT_EQ(exit_of("int main(void) { int n = 0; do { n++; } while (0); "
                    "return n; }"),
            1);
}

TEST(Interp, ForLoopNested) {
  EXPECT_EQ(exit_of("int main(void) { int s = 0; "
                    "for (int i = 0; i < 4; i++) "
                    "for (int j = 0; j < 3; j++) s++; return s; }"),
            12);
}

TEST(Interp, BreakAndContinue) {
  EXPECT_EQ(exit_of("int main(void) { int s = 0; "
                    "for (int i = 0; i < 100; i++) { "
                    "if (i % 2) continue; if (i >= 10) break; s += i; } "
                    "return s; }"),
            20);  // 0+2+4+6+8
}

TEST(Interp, GlobalArrayReadWrite) {
  EXPECT_EQ(exit_of("int a[8];\n"
                    "int main(void) { for (int i = 0; i < 8; i++) a[i] = "
                    "i * i; return a[7]; }"),
            49);
}

TEST(Interp, LocalArrayStableAcrossIterations) {
  EXPECT_EQ(exit_of("int main(void) { int s = 0; "
                    "for (int i = 0; i < 3; i++) { int buf[4]; "
                    "buf[0] = i; s += buf[0]; } return s; }"),
            3);
}

TEST(Interp, PointerWalk) {
  EXPECT_EQ(exit_of("char q[16];\n"
                    "int main(void) { char *p = q; "
                    "for (int i = 0; i < 16; i++) *p++ = i; "
                    "return q[5] + q[10]; }"),
            15);
}

TEST(Interp, PointerArithmeticScalesByElement) {
  EXPECT_EQ(exit_of("int a[4];\n"
                    "int main(void) { int *p = a; a[2] = 7; "
                    "return *(p + 2); }"),
            7);
  EXPECT_EQ(exit_of("int a[4];\n"
                    "int main(void) { int *p = a + 3; int *q = a; "
                    "return p - q; }"),
            3);
}

TEST(Interp, AddressOfScalar) {
  EXPECT_EQ(exit_of("int main(void) { int x = 3; int *p = &x; *p = 9; "
                    "return x; }"),
            9);
}

TEST(Interp, PreAndPostIncrement) {
  EXPECT_EQ(exit_of("int main(void) { int i = 5; int a = i++; int b = ++i; "
                    "return a * 100 + b * 10 + i; }"),
            577);
}

TEST(Interp, PointerPostIncrementStride) {
  EXPECT_EQ(exit_of("int a[4];\n"
                    "int main(void) { int *p = a; *p++ = 1; *p++ = 2; "
                    "return a[0] * 10 + a[1]; }"),
            12);
}

TEST(Interp, FunctionCallAndRecursion) {
  EXPECT_EQ(exit_of("int fib(int n) { if (n < 2) return n; "
                    "return fib(n - 1) + fib(n - 2); }\n"
                    "int main(void) { return fib(10); }"),
            55);
}

TEST(Interp, PassingPointersToFunctions) {
  EXPECT_EQ(exit_of("void fill(int *dst, int n, int v) { "
                    "for (int i = 0; i < n; i++) dst[i] = v; }\n"
                    "int a[6];\n"
                    "int main(void) { fill(a, 6, 7); return a[5]; }"),
            7);
}

TEST(Interp, GlobalInitializerList) {
  EXPECT_EQ(exit_of("int t[4] = {10, 20, 30, 40};\n"
                    "int main(void) { return t[0] + t[3]; }"),
            50);
}

TEST(Interp, StringLiteralAndPuts) {
  RunCapture r = run_src("int main(void) { puts(\"hello\"); return 0; }");
  ASSERT_TRUE(r.result.ok()) << r.result.error();
  EXPECT_EQ(r.result.output, "hello\n");
}

TEST(Interp, PrintfFormats) {
  RunCapture r = run_src(
      "int main(void) { printf(\"%d %x %c %s %.1f\\n\", 42, 255, 65, "
      "\"ok\", 1.5f); return 0; }");
  ASSERT_TRUE(r.result.ok()) << r.result.error();
  EXPECT_EQ(r.result.output, "42 ff A ok 1.5\n");
}

TEST(Interp, MallocAndUse) {
  EXPECT_EQ(exit_of("int main(void) { int *p = (int*)malloc(16); "
                    "p[0] = 3; p[3] = 4; return p[0] + p[3]; }"),
            7);
}

TEST(Interp, MemsetMemcpy) {
  EXPECT_EQ(exit_of("char a[8]; char b[8];\n"
                    "int main(void) { memset(a, 7, 8); memcpy(b, a, 8); "
                    "return b[0] + b[7]; }"),
            14);
}

TEST(Interp, RandDeterministicUnderSeed) {
  const char* src =
      "int main(void) { srand(5); int a = rand(); srand(5); "
      "int b = rand(); return a == b; }";
  EXPECT_EQ(exit_of(src), 1);
}

TEST(Interp, MathIntrinsics) {
  EXPECT_EQ(exit_of("int main(void) { return (int)sqrtf(49.0f); }"), 7);
  EXPECT_EQ(exit_of("int main(void) { return (int)(cosf(0.0f) * 10.0f); }"),
            10);
  EXPECT_EQ(exit_of("int main(void) { return abs(-5) + (int)fabsf(-2.5f); }"),
            7);
  EXPECT_EQ(exit_of("int main(void) { return (int)powf(2.0f, 10.0f); }"),
            1024);
}

TEST(Interp, ExitIntrinsicStopsProgram) {
  RunCapture r = run_src("int main(void) { exit(3); return 9; }");
  ASSERT_TRUE(r.result.ok());
  EXPECT_EQ(r.result.exit_code, 3);
}

TEST(Interp, AssertFailureReported) {
  RunCapture r = run_src("int main(void) { assert(1 == 2); return 0; }");
  EXPECT_FALSE(r.result.ok());
  EXPECT_NE(r.result.error().find("assertion failed"), std::string::npos);
}

TEST(Interp, DivisionByZeroReported) {
  RunCapture r = run_src("int main(void) { int z = 0; return 5 / z; }");
  EXPECT_FALSE(r.result.ok());
  EXPECT_NE(r.result.error().find("division by zero"), std::string::npos);
}

TEST(Interp, OutOfBoundsReported) {
  RunCapture r = run_src("int a[2];\nint main(void) { int *p = a; "
                  "return p[100000]; }");
  EXPECT_FALSE(r.result.ok());
  EXPECT_NE(r.result.error().find("unmapped"), std::string::npos);
}

TEST(Interp, StepLimitGuards) {
  RunOptions opts;
  opts.budget.max_steps = 1000;
  RunCapture r = run_src("int main(void) { while (1) {} return 0; }", opts);
  EXPECT_FALSE(r.result.ok());
  EXPECT_NE(r.result.error().find("step limit"), std::string::npos);
  EXPECT_EQ(r.result.status.code(), util::ErrorCode::kResourceExhausted);
}

// -- trace emission ----------------------------------------------------------

TEST(InterpTrace, CheckpointNestingWellFormed) {
  RunCapture r = run_src(
      "int main(void) {\n"
      "  for (int i = 0; i < 2; i++)\n"
      "    for (int j = 0; j < 3; j++) { int x = 0; }\n"
      "  return 0;\n"
      "}\n");
  ASSERT_TRUE(r.result.ok());
  int depth = 0;
  int enters = 0, bodies = 0;
  for (const auto& rec : r.records) {
    if (rec.type() != RecordType::Checkpoint) continue;
    switch (rec.cp()) {
      case CheckpointType::LoopEnter:
        ++depth;
        ++enters;
        break;
      case CheckpointType::LoopExit:
        --depth;
        EXPECT_GE(depth, 0);
        break;
      case CheckpointType::BodyBegin:
        ++bodies;
        break;
      case CheckpointType::BodyEnd:
        break;
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(enters, 1 + 2);       // outer once, inner re-entered twice
  EXPECT_EQ(bodies, 2 + 2 * 3);   // outer 2 + inner 6
}

TEST(InterpTrace, PaperFigure4TraceShape) {
  // The worked example from Figure 4: while loop runs twice, inner for
  // three times per entry; the store goes through *ptr++.
  RunCapture r = run_src(
      "char q[10000];\n"
      "int main(void) {\n"
      "  char *ptr = q;\n"
      "  int i; int t1 = 98;\n"
      "  while (t1 < 100) {\n"
      "    t1++;\n"
      "    ptr += 100;\n"
      "    for (i = 40; i > 37; i--) {\n"
      "      *ptr++ = i * i % 256;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  ASSERT_TRUE(r.result.ok()) << r.result.error();
  // Collect the Data-kind writes: must be 6 (2 outer x 3 inner), with
  // addresses forming two runs of 3 consecutive bytes 103 apart.
  std::vector<uint32_t> writes;
  for (const auto& rec : r.records) {
    if (rec.type() == RecordType::Access && rec.is_write() &&
        rec.kind() == AccessKind::Data) {
      writes.push_back(rec.addr());
    }
  }
  ASSERT_EQ(writes.size(), 6u);
  EXPECT_EQ(writes[1], writes[0] + 1);
  EXPECT_EQ(writes[2], writes[0] + 2);
  EXPECT_EQ(writes[3], writes[0] + 103);
  EXPECT_EQ(writes[4], writes[0] + 104);
  EXPECT_EQ(writes[5], writes[0] + 105);
}

TEST(InterpTrace, CallRetRecordsBalance) {
  RunCapture r = run_src(
      "int foo(int x) { return x + 1; }\n"
      "int main(void) { int s = 0; for (int i = 0; i < 3; i++) "
      "s += foo(i); return s; }");
  ASSERT_TRUE(r.result.ok());
  int calls = 0, rets = 0;
  for (const auto& rec : r.records) {
    if (rec.type() == RecordType::Call) ++calls;
    if (rec.type() == RecordType::Ret) ++rets;
  }
  EXPECT_EQ(calls, rets);
  EXPECT_EQ(calls, 1 + 3);  // main + 3 foo calls
}

TEST(InterpTrace, SystemKindForIntrinsics) {
  RunCapture r = run_src("char a[64]; char b[64];\n"
                  "int main(void) { memcpy(b, a, 64); return 0; }");
  ASSERT_TRUE(r.result.ok());
  int system_accesses = 0;
  for (const auto& rec : r.records) {
    if (rec.type() == RecordType::Access &&
        rec.kind() == AccessKind::System) {
      ++system_accesses;
    }
  }
  EXPECT_EQ(system_accesses, 32);  // 16 reads + 16 writes (4B granules)
}

TEST(InterpTrace, ScalarKindForDirectVariables) {
  RunCapture r = run_src("int main(void) { int x = 1; x = x + 1; return x; }");
  ASSERT_TRUE(r.result.ok());
  bool saw_scalar = false;
  for (const auto& rec : r.records) {
    if (rec.type() == RecordType::Access &&
        rec.kind() == AccessKind::Scalar) {
      saw_scalar = true;
    }
  }
  EXPECT_TRUE(saw_scalar);
}

TEST(InterpTrace, TraceFiltersByKind) {
  RunOptions opts;
  opts.trace_scalars = false;
  RunCapture r = run_src("int a[4];\nint main(void) { int x = 0; "
                  "for (int i = 0; i < 4; i++) x += a[i]; return x; }",
                  opts);
  ASSERT_TRUE(r.result.ok());
  for (const auto& rec : r.records) {
    if (rec.type() == RecordType::Access) {
      EXPECT_NE(rec.kind(), AccessKind::Scalar);
    }
  }
}

TEST(InterpTrace, BreakEmitsLoopExit) {
  RunCapture r = run_src(
      "int main(void) { for (int i = 0; i < 100; i++) { if (i == 1) "
      "break; } return 0; }");
  ASSERT_TRUE(r.result.ok());
  int exits = 0;
  for (const auto& rec : r.records) {
    if (rec.type() == RecordType::Checkpoint &&
        rec.cp() == CheckpointType::LoopExit) {
      ++exits;
    }
  }
  EXPECT_EQ(exits, 1);
}

TEST(InterpTrace, ReturnInsideNestedLoopsUnwindsAllExits) {
  RunCapture r = run_src(
      "int f(void) { for (int i = 0; i < 10; i++) "
      "for (int j = 0; j < 10; j++) if (j == 1) return 7; return 0; }\n"
      "int main(void) { return f(); }");
  ASSERT_TRUE(r.result.ok());
  EXPECT_EQ(r.result.exit_code, 7);
  int depth = 0;
  for (const auto& rec : r.records) {
    if (rec.type() != RecordType::Checkpoint) continue;
    if (rec.cp() == CheckpointType::LoopEnter) ++depth;
    if (rec.cp() == CheckpointType::LoopExit) --depth;
  }
  EXPECT_EQ(depth, 0);
}

TEST(InterpTrace, InstrAddressesStablePerSite) {
  RunCapture r = run_src("int a[8];\n"
                  "int main(void) { for (int i = 0; i < 8; i++) a[i] = i; "
                  "return 0; }");
  ASSERT_TRUE(r.result.ok());
  // All writes to a[i] come from the same instruction address.
  uint32_t instr = 0;
  int count = 0;
  for (const auto& rec : r.records) {
    if (rec.type() == RecordType::Access && rec.is_write() &&
        rec.kind() == AccessKind::Data) {
      if (count == 0) instr = rec.instr();
      EXPECT_EQ(rec.instr(), instr);
      ++count;
    }
  }
  EXPECT_EQ(count, 8);
}

TEST(InterpTrace, DataDependentOffsetAddressing) {
  // Figure 7 second case: globally-defined array with data-dependent
  // offset parameter.
  RunCapture r = run_src(
      "int A[200]; int lines[4] = {0, 50, 100, 150};\n"
      "int foo(int offset) { int ret = 0; "
      "for (int i = 0; i < 10; i++) ret += A[i + offset]; return ret; }\n"
      "int main(void) { int t = 0; for (int x = 0; x < 4; x++) "
      "t += foo(lines[x]); return t; }");
  ASSERT_TRUE(r.result.ok()) << r.result.error();
}

TEST(Interp, OutputLimitGuards) {
  RunOptions opts;
  opts.max_output_bytes = 64;
  RunCapture r = run_src("int main(void) { for (int i = 0; i < 100; i++) "
                  "printf(\"xxxxxxxxxx\"); return 0; }",
                  opts);
  EXPECT_FALSE(r.result.ok());
  EXPECT_NE(r.result.error().find("output limit"), std::string::npos);
}

}  // namespace
}  // namespace foray::sim
