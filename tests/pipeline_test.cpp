#include <gtest/gtest.h>

#include <algorithm>

#include "foray/inline_advisor.h"
#include "foray/pipeline.h"
#include "minic/parser.h"

namespace foray::core {
namespace {

PipelineOptions lenient() {
  PipelineOptions o;
  o.filter.min_exec = 1;
  o.filter.min_locations = 1;
  return o;
}

const char* kFigure4 =
    "char q[10000];\n"
    "int main(void) {\n"
    "  char *ptr = q;\n"
    "  int i; int t1 = 98;\n"
    "  while (t1 < 100) {\n"
    "    t1++;\n"
    "    ptr += 100;\n"
    "    for (i = 40; i > 37; i--) {\n"
    "      *ptr++ = i * i % 256;\n"
    "    }\n"
    "  }\n"
    "  return 0;\n"
    "}\n";

TEST(Pipeline, RejectsBadSource) {
  auto res = run_pipeline("int main(void) { return x; }");
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.error().find("undeclared"), std::string::npos);
}

TEST(Pipeline, ReportsSimulatorFaults) {
  auto res = run_pipeline("int main(void) { int z = 0; return 1 / z; }");
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.error().find("division by zero"), std::string::npos);
}

TEST(Pipeline, Figure4ModelRecovered) {
  auto res = run_pipeline(kFigure4, lenient());
  ASSERT_TRUE(res.ok()) << res.error();

  // The model must contain exactly one Data reference: the *ptr++ store,
  // with the paper's affine function base + 1*i_inner + 103*i_outer.
  std::vector<const ModelReference*> data_refs;
  for (const auto& r : res.model.refs) {
    if (r.has_write && r.n() == 2) data_refs.push_back(&r);
  }
  ASSERT_EQ(data_refs.size(), 1u);
  const ModelReference& ref = *data_refs[0];
  EXPECT_EQ(ref.exec_count, 6u);
  EXPECT_EQ(ref.footprint, 6u);
  ASSERT_EQ(ref.fn.n(), 2);
  EXPECT_EQ(ref.fn.coefs[0], 103);  // outer while
  EXPECT_EQ(ref.fn.coefs[1], 1);    // inner for
  EXPECT_FALSE(ref.partial());
  EXPECT_EQ(ref.trips[0], 2);
  EXPECT_EQ(ref.trips[1], 3);
}

TEST(Pipeline, Figure4PaperStyleEmission) {
  auto res = run_pipeline(kFigure4, lenient());
  ASSERT_TRUE(res.ok()) << res.error();
  // Figure 4(d) shape: for (int i..<2) for (int i..<3) A...[base+1*i..+103*i..]
  EXPECT_NE(res.foray_paper_style.find("<2;"), std::string::npos)
      << res.foray_paper_style;
  EXPECT_NE(res.foray_paper_style.find("<3;"), std::string::npos);
  EXPECT_NE(res.foray_paper_style.find("+103*"), std::string::npos);
  EXPECT_NE(res.foray_paper_style.find("+1*"), std::string::npos);
}

TEST(Pipeline, DefaultFilterDropsSmallReferences) {
  // With the paper's Nexec=20 / Nloc=10, Figure 4's 6-execution store is
  // filtered out.
  auto res = run_pipeline(kFigure4);
  ASSERT_TRUE(res.ok()) << res.error();
  EXPECT_TRUE(res.model.refs.empty());
  EXPECT_GT(res.model.build_stats.total_refs, 0);
}

TEST(Pipeline, EmittedModelIsValidMinic) {
  auto res = run_pipeline(kFigure4, lenient());
  ASSERT_TRUE(res.ok()) << res.error();
  util::DiagList diags;
  auto reparsed = minic::parse_and_check(res.foray_source, &diags);
  EXPECT_NE(reparsed, nullptr)
      << diags.str() << "\nsource was:\n" << res.foray_source;
}

TEST(Pipeline, RoundTripPreservesAffineStructure) {
  // Extract a model, run the emitted model program itself through the
  // pipeline, and verify the same coefficient multiset comes back.
  auto res = run_pipeline(kFigure4, lenient());
  ASSERT_TRUE(res.ok()) << res.error();
  auto res2 = run_pipeline(res.foray_source, lenient());
  ASSERT_TRUE(res2.ok()) << res2.error() << "\nmodel source:\n"
                       << res.foray_source;

  auto collect_shapes = [](const ForayModel& m) {
    std::vector<std::pair<std::vector<int64_t>, std::vector<int64_t>>> out;
    for (const auto& r : m.refs) {
      if (r.has_write) out.push_back({r.emitted_coefs(), r.emitted_trips()});
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  auto a = collect_shapes(res.model);
  auto b = collect_shapes(res2.model);
  EXPECT_EQ(a, b);
}

TEST(Pipeline, OnlineAndOfflineAgree) {
  PipelineOptions online = lenient();
  PipelineOptions offline = lenient();
  offline.offline = true;
  auto a = run_pipeline(kFigure4, online);
  auto b = run_pipeline(kFigure4, offline);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.model.refs.size(), b.model.refs.size());
  for (size_t i = 0; i < a.model.refs.size(); ++i) {
    EXPECT_EQ(a.model.refs[i].instr, b.model.refs[i].instr);
    EXPECT_EQ(a.model.refs[i].fn.coefs, b.model.refs[i].fn.coefs);
    EXPECT_EQ(a.model.refs[i].fn.const_term, b.model.refs[i].fn.const_term);
    EXPECT_EQ(a.model.refs[i].exec_count, b.model.refs[i].exec_count);
  }
  EXPECT_EQ(a.trace_records, b.trace_records);
}

TEST(Pipeline, PartialAffineFromDataDependentOffset) {
  // Figure 7 second case: offsets come from a data table the analyzer
  // cannot see through; inner accesses remain predictable.
  const char* src =
      "int A[4000]; int lines[4] = {0, 531, 1207, 2611};\n"
      "int foo(int offset) {\n"
      "  int ret = 0;\n"
      "  for (int i = 0; i < 10; i++)\n"
      "    for (int j = 0; j < 10; j++)\n"
      "      ret += A[j + 10 * i + offset];\n"
      "  return ret;\n"
      "}\n"
      "int main(void) {\n"
      "  int t = 0;\n"
      "  for (int x = 0; x < 4; x++) t += foo(lines[x]);\n"
      "  return t & 255;\n"
      "}\n";
  auto res = run_pipeline(src, lenient());
  ASSERT_TRUE(res.ok()) << res.error();
  const ModelReference* target = nullptr;
  for (const auto& r : res.model.refs) {
    if (r.n() == 3 && !r.has_write) target = &r;
  }
  ASSERT_NE(target, nullptr);
  EXPECT_TRUE(target->partial());
  EXPECT_EQ(target->fn.m, 2);  // j and i predictable, x is not
  // Outermost-first coefficients: [x]=garbage-or-0, [i]=40, [j]=4 (bytes).
  EXPECT_EQ(target->fn.coefs[1], 40);
  EXPECT_EQ(target->fn.coefs[2], 4);
  EXPECT_EQ(target->exec_count, 400u);
}

TEST(Pipeline, FullAffineThroughPointerWalk) {
  // A 2-D traversal written entirely with a pointer walk in a while loop
  // — statically opaque, dynamically a clean affine nest.
  const char* src =
      "int img[1024];\n"
      "int main(void) {\n"
      "  int *p = img;\n"
      "  int row = 0;\n"
      "  while (row < 16) {\n"
      "    int col = 64;\n"
      "    while (col > 0) { *p++ = row + col; col--; }\n"
      "    row++;\n"
      "  }\n"
      "  return img[100];\n"
      "}\n";
  auto res = run_pipeline(src);  // default (paper) filter
  ASSERT_TRUE(res.ok()) << res.error();
  std::vector<const ModelReference*> kept;
  for (const auto& r : res.model.refs) {
    if (r.has_write) kept.push_back(&r);
  }
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_FALSE(kept[0]->partial());
  EXPECT_EQ(kept[0]->fn.coefs[0], 256);  // 64 ints per row
  EXPECT_EQ(kept[0]->fn.coefs[1], 4);
  EXPECT_EQ(kept[0]->exec_count, 1024u);
  EXPECT_EQ(kept[0]->footprint, 1024u);
}

TEST(Pipeline, InlineHintsForMultiContextFunction) {
  // Figure 9: foo() called from two loops with different strides.
  const char* src =
      "int A[1000];\n"
      "int foo(int offset) {\n"
      "  int ret = 0;\n"
      "  for (int i = 0; i < 10; i++) ret += A[i + offset];\n"
      "  return ret;\n"
      "}\n"
      "int main(void) {\n"
      "  int tmp = 0;\n"
      "  for (int x = 0; x < 10; x++) tmp += foo(10 * x);\n"
      "  for (int y = 0; y < 20; y++) tmp += foo(2 * y);\n"
      "  return tmp & 255;\n"
      "}\n";
  auto res = run_pipeline(src, lenient());
  ASSERT_TRUE(res.ok()) << res.error();
  auto hints = compute_inline_hints(res.model, res.loop_sites);
  ASSERT_EQ(hints.size(), 1u);
  EXPECT_EQ(hints[0].func_name, "foo");
  EXPECT_EQ(hints[0].contexts, 2);
  EXPECT_TRUE(hints[0].patterns_differ);
}

TEST(Pipeline, SingleContextFunctionYieldsNoHint) {
  const char* src =
      "int A[100];\n"
      "int foo(void) { int r = 0; for (int i = 0; i < 10; i++) "
      "r += A[i]; return r; }\n"
      "int main(void) { int t = 0; for (int x = 0; x < 5; x++) "
      "t += foo(); return t; }\n";
  auto res = run_pipeline(src, lenient());
  ASSERT_TRUE(res.ok()) << res.error();
  auto hints = compute_inline_hints(res.model, res.loop_sites);
  EXPECT_TRUE(hints.empty());
}

TEST(Pipeline, LoopSitesAndMixReported) {
  auto res = run_pipeline(kFigure4, lenient());
  ASSERT_TRUE(res.ok());
  LoopMix mix = compute_loop_mix(res.extractor->tree(), res.loop_sites,
                                 res.program->source_lines);
  EXPECT_EQ(mix.total, 2);
  EXPECT_EQ(mix.for_loops, 1);
  EXPECT_EQ(mix.while_loops, 1);
  EXPECT_EQ(mix.do_loops, 0);
  EXPECT_GT(mix.lines, 5);
}

TEST(Pipeline, BehaviorStatsPartitionAccesses) {
  const char* src =
      "int big[512]; char tmp[64];\n"
      "int main(void) {\n"
      "  for (int i = 0; i < 512; i++) big[i] = i;\n"
      "  memset(tmp, 0, 64);\n"
      "  return big[3];\n"
      "}\n";
  auto res = run_pipeline(src);
  ASSERT_TRUE(res.ok()) << res.error();
  BehaviorStats b = compute_behavior(res.extractor->tree(),
                                     PipelineOptions{}.filter);
  EXPECT_EQ(b.total.accesses,
            b.model.accesses + b.system.accesses + b.other.accesses);
  EXPECT_EQ(b.total.refs, b.model.refs + b.system.refs + b.other.refs);
  EXPECT_GE(b.model.accesses, 512u);
  EXPECT_EQ(b.system.accesses, 16u);  // 64B memset in 4B granules
  EXPECT_GT(b.other.accesses, 0u);    // scalar loop-counter traffic
  // The model's footprint dominates: 512 distinct int addresses.
  EXPECT_EQ(b.model.footprint, 512u);
  EXPECT_GT(b.model.footprint, b.system.footprint);
}

TEST(Pipeline, UnexecutedLoopsAbsentFromTree) {
  const char* src =
      "int a[64];\n"
      "int main(void) {\n"
      "  if (0) { for (int i = 0; i < 64; i++) a[i] = i; }\n"
      "  for (int j = 0; j < 8; j++) a[j] = j;\n"
      "  return 0;\n"
      "}\n";
  auto res = run_pipeline(src, lenient());
  ASSERT_TRUE(res.ok());
  auto executed = executed_loop_sites(res.extractor->tree());
  EXPECT_EQ(executed.size(), 1u);
  EXPECT_EQ(res.loop_sites.count(), 2);  // both exist statically
}

}  // namespace
}  // namespace foray::core
