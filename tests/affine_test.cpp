#include <gtest/gtest.h>

#include <vector>

#include "foray/affine.h"
#include "util/rng.h"

namespace foray::core {
namespace {

/// Drives an AffineState with a full loop-nest sweep: iterates the
/// iteration space (outermost slowest) and feeds ind = base + sum(c*it),
/// innermost-first coefficient order.
AffineState sweep(const std::vector<int64_t>& coefs_inner_first,
                  const std::vector<int64_t>& trips_inner_first,
                  int64_t base) {
  AffineState st;
  const int n = static_cast<int>(coefs_inner_first.size());
  std::vector<int64_t> it(static_cast<size_t>(n), 0);
  // Odometer over the nest, innermost = index 0 fastest.
  for (;;) {
    int64_t ind = base;
    for (int i = 0; i < n; ++i) ind += coefs_inner_first[i] * it[i];
    observe_access(st, it, ind);
    int i = 0;
    while (i < n) {
      if (++it[i] < trips_inner_first[i]) break;
      it[i] = 0;
      ++i;
    }
    if (i == n) break;
    if (n == 0) break;
  }
  return st;
}

TEST(Affine, FirstObservationInitializes) {
  AffineState st;
  std::vector<int64_t> it = {0, 0};
  observe_access(st, it, 1000);
  EXPECT_TRUE(st.initialized);
  EXPECT_EQ(st.n, 2);
  EXPECT_EQ(st.m, 2);
  EXPECT_EQ(st.const_term, 1000);
  EXPECT_FALSE(st.coef_known(0));
  EXPECT_FALSE(st.coef_known(1));
  EXPECT_TRUE(st.analyzable);
}

TEST(Affine, OneDimensionalExactRecovery) {
  auto st = sweep({4}, {10}, 0x10000000);
  ASSERT_TRUE(st.analyzable);
  EXPECT_EQ(st.const_term, 0x10000000);
  ASSERT_TRUE(st.coef_known(0));
  EXPECT_EQ(st.coef_at(0), 4);
  EXPECT_EQ(st.m, 1);
  EXPECT_EQ(st.mispredictions, 0u);
}

TEST(Affine, TwoDimensionalExactRecovery) {
  // The paper's Figure 4 function: addr = base + 1*i_inner + 103*i_outer.
  auto st = sweep({1, 103}, {3, 2}, 0x7fff5934);
  ASSERT_TRUE(st.analyzable);
  EXPECT_EQ(st.const_term, 0x7fff5934);
  EXPECT_EQ(st.coef_at(0), 1);
  EXPECT_EQ(st.coef_at(1), 103);
  EXPECT_EQ(st.m, 2);
  EXPECT_EQ(st.mispredictions, 0u);
}

TEST(Affine, ThreeDeepNest) {
  auto st = sweep({4, 64, 1024}, {4, 8, 5}, 500);
  ASSERT_TRUE(st.analyzable);
  EXPECT_EQ(st.coef_at(0), 4);
  EXPECT_EQ(st.coef_at(1), 64);
  EXPECT_EQ(st.coef_at(2), 1024);
  EXPECT_EQ(st.m, 3);
}

TEST(Affine, NegativeCoefficients) {
  auto st = sweep({-4, 100}, {5, 3}, 100000);
  ASSERT_TRUE(st.analyzable);
  EXPECT_EQ(st.coef_at(0), -4);
  EXPECT_EQ(st.coef_at(1), 100);
  EXPECT_EQ(st.mispredictions, 0u);
}

TEST(Affine, ZeroCoefficientIsRecovered) {
  // Iterator varies but does not move the address.
  auto st = sweep({0, 8}, {4, 4}, 2000);
  ASSERT_TRUE(st.analyzable);
  EXPECT_EQ(st.coef_at(0), 0);
  EXPECT_EQ(st.coef_at(1), 8);
  // A zero coefficient is "known" but not an effective iterator by
  // itself; the outer one is effective.
  EXPECT_TRUE(st.has_effective_iterator());
}

TEST(Affine, SingleIterationLoopLeavesCoefUnknown) {
  // Inner loop runs once per entry: its coefficient is unobservable.
  auto st = sweep({4, 16}, {1, 5}, 0);
  EXPECT_FALSE(st.coef_known(0));
  EXPECT_TRUE(st.coef_known(1));
  EXPECT_EQ(st.coef_at(1), 16);
  EXPECT_TRUE(st.analyzable);
}

TEST(Affine, ConstantReferenceHasNoIterator) {
  auto st = sweep({0}, {10}, 42);
  EXPECT_FALSE(st.has_effective_iterator());
}

TEST(Affine, PredictUsesKnownCoefficients) {
  AffineState st;
  std::vector<int64_t> it0 = {0};
  observe_access(st, it0, 100);
  std::vector<int64_t> it1 = {1};
  observe_access(st, it1, 104);
  std::vector<int64_t> it5 = {5};
  EXPECT_EQ(st.predict(it5), 120);
}

TEST(Affine, SimultaneousUnknownChangesMarkNonAnalyzable) {
  AffineState st;
  std::vector<int64_t> a = {0, 0};
  observe_access(st, a, 100);
  // Both iterators change before either coefficient was determined.
  std::vector<int64_t> b = {1, 1};
  observe_access(st, b, 200);
  EXPECT_FALSE(st.analyzable);
}

TEST(Affine, SequentialChangesStayAnalyzable) {
  AffineState st;
  std::vector<int64_t> a = {0, 0};
  observe_access(st, a, 100);
  std::vector<int64_t> b = {1, 0};
  observe_access(st, b, 104);  // solves C1 = 4
  std::vector<int64_t> c = {1, 1};
  observe_access(st, c, 204);  // solves C2 = 100
  EXPECT_TRUE(st.analyzable);
  EXPECT_EQ(st.coef_at(0), 4);
  EXPECT_EQ(st.coef_at(1), 100);
  // And predictions hold from here on.
  std::vector<int64_t> d = {2, 3};
  EXPECT_EQ(st.predict(d), 100 + 8 + 300);
}

TEST(Affine, PartialWhenOuterContextShifts) {
  // Figure 7: function with a 10-iteration loop called repeatedly with a
  // data-dependent base. Iterator 0 = the function's loop, iterator 1 =
  // the caller's loop. Bases are irregular.
  AffineState st;
  const int64_t bases[] = {1000, 7777, 3210, 9999};
  for (int64_t x = 0; x < 4; ++x) {
    for (int64_t i = 0; i < 10; ++i) {
      std::vector<int64_t> it = {i, x};
      observe_access(st, it, bases[x] + 4 * i);
    }
  }
  ASSERT_TRUE(st.analyzable);
  EXPECT_TRUE(st.is_partial());
  EXPECT_EQ(st.m, 1);  // only the innermost iterator is predictable
  EXPECT_EQ(st.coef_at(0), 4);
  EXPECT_GT(st.mispredictions, 0u);
  EXPECT_TRUE(st.has_effective_iterator());
}

TEST(Affine, PartialDepthTwoOfThree) {
  // Two inner loops are regular; the outermost call context shifts the
  // base irregularly -> M = 2.
  AffineState st;
  const int64_t bases[] = {5000, 11111, 2222};
  for (int64_t x = 0; x < 3; ++x) {
    for (int64_t j = 0; j < 4; ++j) {
      for (int64_t i = 0; i < 5; ++i) {
        std::vector<int64_t> it = {i, j, x};
        observe_access(st, it, bases[x] + 4 * i + 40 * j);
      }
    }
  }
  ASSERT_TRUE(st.analyzable);
  EXPECT_EQ(st.m, 2);
  EXPECT_EQ(st.coef_at(0), 4);
  EXPECT_EQ(st.coef_at(1), 40);
}

TEST(Affine, MispredictionRefitsConstTerm) {
  AffineState st;
  for (int64_t i = 0; i < 5; ++i) {
    std::vector<int64_t> it = {i};
    observe_access(st, it, 100 + 4 * i);
  }
  // Loop restarts with a new base (outer context not represented).
  for (int64_t i = 0; i < 5; ++i) {
    std::vector<int64_t> it = {i};
    observe_access(st, it, 900 + 4 * i);
  }
  EXPECT_TRUE(st.analyzable);
  EXPECT_EQ(st.coef_at(0), 4);
  EXPECT_EQ(st.const_term, 900);  // re-fitted to the latest base
}

TEST(Affine, NonIntegralSlopeDegradesGracefully) {
  // Address pattern where the delta is not divisible by the iterator
  // delta: i jumps by 2 but address moves by 3.
  AffineState st;
  std::vector<int64_t> a = {0};
  observe_access(st, a, 100);
  std::vector<int64_t> b = {2};
  observe_access(st, b, 103);
  // No crash; coefficient stays unknown and CONST absorbed the change.
  EXPECT_TRUE(st.analyzable);
  EXPECT_FALSE(st.coef_known(0));
}

TEST(Affine, DepthZeroReferences) {
  AffineState st;
  std::vector<int64_t> none;
  observe_access(st, none, 500);
  observe_access(st, none, 500);
  EXPECT_TRUE(st.analyzable);
  EXPECT_FALSE(st.has_effective_iterator());
  observe_access(st, none, 777);  // address changed with no iterators
  EXPECT_EQ(st.const_term, 777);
  EXPECT_GT(st.mispredictions, 0u);
}

TEST(Affine, FinalizeReversesToOutermostFirst) {
  auto st = sweep({1, 103}, {3, 2}, 5000);
  AffineFunction fn = finalize(st);
  ASSERT_EQ(fn.n(), 2);
  EXPECT_EQ(fn.coefs[0], 103);  // outermost first
  EXPECT_EQ(fn.coefs[1], 1);
  EXPECT_EQ(fn.const_term, 5000);
  EXPECT_FALSE(fn.partial());
  std::vector<int64_t> it = {1, 2};  // outer=1, inner=2
  EXPECT_EQ(fn.evaluate(it), 5000 + 103 + 2);
}

TEST(Affine, FinalizeUnknownCoefsBecomeZero) {
  auto st = sweep({4, 16}, {1, 5}, 0);  // inner coef unknown
  AffineFunction fn = finalize(st);
  EXPECT_EQ(fn.coefs[1], 0);
  EXPECT_FALSE(fn.known[1]);
  EXPECT_TRUE(fn.known[0]);
}

// -- property sweep: random full-affine nests are recovered exactly --------

struct SweepParam {
  int depth;
  uint64_t seed;
};

class AffineRecovery : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AffineRecovery, RandomNestExactlyRecovered) {
  util::Rng rng(GetParam().seed);
  const int n = GetParam().depth;
  std::vector<int64_t> coefs, trips;
  for (int i = 0; i < n; ++i) {
    int64_t c = rng.next_in(-64, 64);
    coefs.push_back(c);
    trips.push_back(rng.next_in(2, 6));
  }
  int64_t base = rng.next_in(0x10000000, 0x20000000);
  auto st = sweep(coefs, trips, base);
  ASSERT_TRUE(st.analyzable);
  EXPECT_EQ(st.m, n);
  EXPECT_EQ(st.mispredictions, 0u) << "full affine must never mispredict";
  EXPECT_EQ(st.const_term, base);
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(st.coef_known(i)) << "coef " << i;
    EXPECT_EQ(st.coef_at(i), coefs[static_cast<size_t>(i)]) << "coef " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Depths, AffineRecovery,
    ::testing::Values(SweepParam{1, 11}, SweepParam{1, 12},
                      SweepParam{2, 21}, SweepParam{2, 22},
                      SweepParam{3, 31}, SweepParam{3, 32},
                      SweepParam{4, 41}, SweepParam{4, 42},
                      SweepParam{5, 51}, SweepParam{6, 61}),
    [](const ::testing::TestParamInfo<SweepParam>& pi) {
      return "depth" + std::to_string(pi.param.depth) + "_seed" +
             std::to_string(pi.param.seed);
    });

// -- property sweep: partial recovery at every split point ------------------

class PartialRecovery : public ::testing::TestWithParam<int> {};

TEST_P(PartialRecovery, OuterIrregularityYieldsCorrectM) {
  // 4-deep nest; levels above the split get irregular base shifts.
  const int split = GetParam();  // iterators [0, split) stay regular
  util::Rng rng(1234 + static_cast<uint64_t>(split));
  const int n = 4;
  std::vector<int64_t> coefs = {4, 100, 4000, 90000};
  std::vector<int64_t> trips = {3, 3, 3, 3};
  AffineState st;
  std::vector<int64_t> it(n, 0);
  for (;;) {
    int64_t ind = 0;
    for (int i = 0; i < split; ++i) ind += coefs[i] * it[i];
    // Irregular contribution from outer iterators: a hash, not linear.
    uint64_t outer_key = 0;
    for (int i = split; i < n; ++i) {
      outer_key = outer_key * 31 + static_cast<uint64_t>(it[i]) + 1;
    }
    ind += static_cast<int64_t>((outer_key * 2654435761u) % 1000000) * 8;
    observe_access(st, it, ind);
    int i = 0;
    while (i < n && ++it[i] >= trips[i]) it[i++] = 0;
    if (i == n) break;
  }
  ASSERT_TRUE(st.analyzable);
  EXPECT_EQ(st.m, split);
  for (int i = 0; i < split; ++i) {
    EXPECT_EQ(st.coef_at(i), coefs[static_cast<size_t>(i)]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Splits, PartialRecovery, ::testing::Values(1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& pi) {
                           return "m" + std::to_string(pi.param);
                         });

}  // namespace
}  // namespace foray::core
