// The JSON reader (util/json.h parse_json) — the inverse of JsonWriter,
// added for `foraygen sweep --resume`. The two properties that matter:
// writer output always parses back to the same values (doubles
// bit-exactly, via the to_chars/from_chars round trip), and malformed
// input fails cleanly with an offset instead of crashing or mis-parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "util/json.h"

namespace foray::util {
namespace {

TEST(JsonParse, WriterOutputRoundTrips) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("sweep");
  w.key("ok").value(true);
  w.key("count").value(int64_t{-42});
  w.key("ratio").value(0.15625);
  w.key("text").value("line\nbreak \"quoted\" \t tab \x01 ctl");
  w.key("items").begin_array().value(1).value(2.5).value(false);
  w.end_array();
  w.key("nothing").begin_object().end_object();
  w.end_object();

  JsonValue v;
  std::string err;
  ASSERT_TRUE(parse_json(w.str(), &v, &err)) << err;
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.find("type"), nullptr);
  EXPECT_EQ(v.find("type")->str, "sweep");
  EXPECT_TRUE(v.find("ok")->b);
  EXPECT_DOUBLE_EQ(v.find("count")->num, -42.0);
  EXPECT_DOUBLE_EQ(v.find("ratio")->num, 0.15625);
  EXPECT_EQ(v.find("text")->str, "line\nbreak \"quoted\" \t tab \x01 ctl");
  ASSERT_TRUE(v.find("items")->is_array());
  ASSERT_EQ(v.find("items")->items.size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("items")->items[1].num, 2.5);
  EXPECT_FALSE(v.find("items")->items[2].b);
  EXPECT_TRUE(v.find("nothing")->is_object());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, DoublesReprintByteIdentically) {
  // The --resume determinism contract: parse a written double, write it
  // again, get the same bytes. Exercise values with awkward shortest
  // forms.
  const double cases[] = {0.0,        1.0,          -1.5,
                          0.1,        1.0 / 3.0,    6.02214076e23,
                          5e-324,     1.7976931348623157e308,
                          123456.789, -0.000030518};
  for (double d : cases) {
    JsonWriter w;
    w.value(d);
    JsonValue v;
    ASSERT_TRUE(parse_json(w.str(), &v)) << w.str();
    ASSERT_TRUE(v.is_number()) << w.str();
    JsonWriter w2;
    w2.value(v.num);
    EXPECT_EQ(w2.str(), w.str());
  }
}

TEST(JsonParse, NonFiniteWritesAsNullAndParsesBack) {
  JsonWriter w;
  w.value(std::nan(""));
  EXPECT_EQ(w.str(), "null");
  JsonValue v;
  ASSERT_TRUE(parse_json(w.str(), &v));
  EXPECT_TRUE(v.is_null());
}

TEST(JsonParse, AcceptsPlainScalarsAndWhitespace) {
  JsonValue v;
  ASSERT_TRUE(parse_json("  true ", &v));
  EXPECT_TRUE(v.is_bool());
  ASSERT_TRUE(parse_json("\t-12.5e2\n", &v));
  EXPECT_DOUBLE_EQ(v.num, -1250.0);
  ASSERT_TRUE(parse_json("[]", &v));
  EXPECT_TRUE(v.is_array());
  EXPECT_TRUE(v.items.empty());
}

TEST(JsonParse, MalformedInputsFailWithAnOffset) {
  const char* cases[] = {
      "",                      // nothing
      "{",                     // unterminated object
      "[1,2",                  // unterminated array
      "[1,]",                  // trailing comma
      "{\"a\":}",              // missing value
      "{\"a\" 1}",             // missing colon
      "{a:1}",                 // unquoted key
      "\"abc",                 // unterminated string
      "\"\\q\"",               // unknown escape
      "\"\\u12\"",             // truncated \u escape
      "tru",                   // broken literal
      "01x",                   // trailing junk after number
      "1 2",                   // two top-level values
      "nullnull",              // trailing characters
  };
  for (const char* c : cases) {
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parse_json(c, &v, &err)) << c;
    EXPECT_NE(err.find("offset"), std::string::npos) << c;
  }
}

TEST(JsonParse, HostileNestingIsBounded) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  JsonValue v;
  std::string err;
  EXPECT_FALSE(parse_json(deep, &v, &err));
  EXPECT_NE(err.find("nesting"), std::string::npos);
  // ...while reasonable nesting is fine.
  std::string ok(50, '[');
  ok += std::string(50, ']');
  EXPECT_TRUE(parse_json(ok, &v));
}

TEST(JsonParse, ControlByteEscapesRoundTrip) {
  JsonWriter w;
  std::string all;
  for (int c = 1; c < 0x20; ++c) all.push_back(static_cast<char>(c));
  w.value(all);
  JsonValue v;
  ASSERT_TRUE(parse_json(w.str(), &v));
  EXPECT_EQ(v.str, all);
}

}  // namespace
}  // namespace foray::util
