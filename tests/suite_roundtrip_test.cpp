// Suite-wide integration: the emitted FORAY model of every benchmark is
// itself a valid MiniC program whose re-extraction reproduces the same
// affine structures — the strongest end-to-end check of the extract ->
// emit chain on realistic inputs.
#include <gtest/gtest.h>

#include <algorithm>

#include "benchsuite/suite.h"
#include "foray/pipeline.h"
#include "minic/parser.h"
#include "sim/interpreter.h"
#include "trace/sink.h"

namespace foray::benchsuite {
namespace {

using Shape = std::pair<std::vector<int64_t>, std::vector<int64_t>>;

std::vector<Shape> shapes_of(const core::ForayModel& model) {
  std::vector<Shape> out;
  for (const auto& r : model.refs) {
    out.push_back({r.emitted_coefs(), r.emitted_trips()});
  }
  std::sort(out.begin(), out.end());
  return out;
}

class SuiteRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteRoundTrip, EmittedModelParsesChecksAndRuns) {
  const Benchmark& b = get_benchmark(GetParam());
  auto res = core::run_pipeline(b.source);
  ASSERT_TRUE(res.ok()) << res.error();
  ASSERT_FALSE(res.model.refs.empty());

  util::DiagList diags;
  auto model_prog = minic::parse_and_check(res.foray_source, &diags);
  ASSERT_NE(model_prog, nullptr)
      << b.name << ":\n" << diags.str() << "\n" << res.foray_source;
}

TEST_P(SuiteRoundTrip, ReextractionPreservesAffineShapes) {
  const Benchmark& b = get_benchmark(GetParam());
  auto res = core::run_pipeline(b.source);
  ASSERT_TRUE(res.ok()) << res.error();

  core::PipelineOptions lenient;
  lenient.filter.min_exec = 1;
  lenient.filter.min_locations = 1;
  auto res2 = core::run_pipeline(res.foray_source, lenient);
  ASSERT_TRUE(res2.ok()) << b.name << ": " << res2.error();

  // Every shape of the first model must appear in the re-extraction.
  auto first = shapes_of(res.model);
  auto second = shapes_of(res2.model);
  for (const auto& s : first) {
    EXPECT_TRUE(std::binary_search(second.begin(), second.end(), s))
        << b.name << ": lost a (coefs, trips) shape in round trip";
  }
}

TEST_P(SuiteRoundTrip, ModelAccessVolumeMatchesEmittedProgram) {
  const Benchmark& b = get_benchmark(GetParam());
  auto res = core::run_pipeline(b.source);
  ASSERT_TRUE(res.ok()) << res.error();

  // The emitted program performs exactly one Data access per reference
  // per (emitted) iteration: its total must equal the product sum.
  uint64_t expected = 0;
  for (const auto& r : res.model.refs) {
    uint64_t n = 1;
    for (int64_t t : r.emitted_trips()) n *= static_cast<uint64_t>(t);
    expected += n;
  }
  util::DiagList diags;
  auto prog = minic::parse_and_check(res.foray_source, &diags);
  ASSERT_NE(prog, nullptr) << diags.str();
  instrument::annotate_loops(prog.get());
  trace::VectorSink sink;
  auto run = sim::run_program(*prog, &sink);
  ASSERT_TRUE(run.ok()) << run.error();
  uint64_t data = 0;
  for (const auto& r : sink.records()) {
    if (r.type() == trace::RecordType::Access &&
        r.kind() == trace::AccessKind::Data) {
      ++data;
    }
  }
  EXPECT_EQ(data, expected) << b.name;
}

INSTANTIATE_TEST_SUITE_P(All, SuiteRoundTrip,
                         ::testing::Values("jpeg", "lame", "susan", "fft",
                                           "gsm", "adpcm"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string(i.param);
                         });

}  // namespace
}  // namespace foray::benchsuite
