#include <gtest/gtest.h>

#include "instrument/annotator.h"
#include "minic/parser.h"

namespace foray::instrument {
namespace {

std::unique_ptr<minic::Program> parse(std::string_view src) {
  util::DiagList diags;
  auto p = minic::parse_and_check(src, &diags);
  EXPECT_NE(p, nullptr) << diags.str();
  return p;
}

TEST(Annotator, AssignsDenseIds) {
  auto p = parse(
      "int main(void) {\n"
      "  for (int i = 0; i < 2; i++) {}\n"
      "  while (0) {}\n"
      "  do {} while (0);\n"
      "  return 0;\n"
      "}\n");
  auto table = annotate_loops(p.get());
  ASSERT_EQ(table.count(), 3);
  EXPECT_EQ(table.site(0).kind, LoopKind::For);
  EXPECT_EQ(table.site(1).kind, LoopKind::While);
  EXPECT_EQ(table.site(2).kind, LoopKind::Do);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(table.site(i).loop_id, i);
}

TEST(Annotator, LexicalDepthTracked) {
  auto p = parse(
      "int main(void) {\n"
      "  while (0)\n"
      "    for (int i = 0; i < 2; i++)\n"
      "      do {} while (0);\n"
      "  return 0;\n"
      "}\n");
  auto table = annotate_loops(p.get());
  ASSERT_EQ(table.count(), 3);
  EXPECT_EQ(table.site(0).lexical_depth, 0);
  EXPECT_EQ(table.site(1).lexical_depth, 1);
  EXPECT_EQ(table.site(2).lexical_depth, 2);
}

TEST(Annotator, FunctionAttribution) {
  auto p = parse(
      "void helper(void) { for (int i = 0; i < 2; i++) {} }\n"
      "int main(void) { while (0) {} return 0; }\n");
  auto table = annotate_loops(p.get());
  ASSERT_EQ(table.count(), 2);
  EXPECT_EQ(table.site(0).func_name, "helper");
  EXPECT_EQ(table.site(1).func_name, "main");
  EXPECT_EQ(table.site(0).func_id, 0);
  EXPECT_EQ(table.site(1).func_id, 1);
}

TEST(Annotator, LoopsInsideIfBranches) {
  auto p = parse(
      "int main(void) {\n"
      "  int x = 1;\n"
      "  if (x) { for (int i = 0; i < 2; i++) {} }\n"
      "  else { while (x) { x--; } }\n"
      "  return 0;\n"
      "}\n");
  auto table = annotate_loops(p.get());
  EXPECT_EQ(table.count(), 2);
}

TEST(Annotator, LoopIdsWrittenIntoAst) {
  auto p = parse("int main(void) { for (int i = 0; i < 2; i++) {} return 0; }");
  annotate_loops(p.get());
  const minic::Stmt& loop = *p->funcs[0]->body->stmts[0];
  EXPECT_EQ(loop.loop_id, 0);
}

TEST(Annotator, IdempotentReassignment) {
  auto p = parse(
      "int main(void) { while (0) {} do {} while (0); return 0; }");
  auto t1 = annotate_loops(p.get());
  auto t2 = annotate_loops(p.get());
  ASSERT_EQ(t1.count(), t2.count());
  for (int i = 0; i < t1.count(); ++i) {
    EXPECT_EQ(t1.site(i).kind, t2.site(i).kind);
    EXPECT_EQ(t1.site(i).line, t2.site(i).line);
  }
}

TEST(Annotator, CountKind) {
  auto p = parse(
      "int main(void) {\n"
      "  for (int i = 0; i < 2; i++) {}\n"
      "  for (int i = 0; i < 2; i++) {}\n"
      "  while (0) {}\n"
      "  return 0;\n"
      "}\n");
  auto table = annotate_loops(p.get());
  EXPECT_EQ(table.count_kind(LoopKind::For), 2);
  EXPECT_EQ(table.count_kind(LoopKind::While), 1);
  EXPECT_EQ(table.count_kind(LoopKind::Do), 0);
}

TEST(Annotator, ForInitNestedLoopHandled) {
  // Degenerate but legal: loop inside another loop's body block only.
  auto p = parse(
      "int main(void) {\n"
      "  for (int i = 0; i < 2; i++) { for (int j = 0; j < 2; j++) {} }\n"
      "  return 0;\n"
      "}\n");
  auto table = annotate_loops(p.get());
  ASSERT_EQ(table.count(), 2);
  EXPECT_EQ(table.site(1).lexical_depth, 1);
}

}  // namespace
}  // namespace foray::instrument
