// The paper's own code listings, as regression tests: Figure 1's two
// MiBench excerpts must extract to the Figure 2 FORAY-model shapes.
#include <gtest/gtest.h>

#include "foray/pipeline.h"
#include "staticforay/pointer_conversion.h"
#include "staticforay/static_analysis.h"

namespace foray {
namespace {

core::PipelineOptions lenient() {
  core::PipelineOptions o;
  o.filter.min_exec = 1;
  o.filter.min_locations = 1;
  return o;
}

TEST(PaperFigures, Figure1FirstExcerptMatchesFigure2Shape) {
  // for (ci...) for (coefi < DCTSIZE2) *last_bitpos_ptr++ = -1;
  // Figure 2: for(i528<3) for(i531<64) A[... + 4*i531 + 256*i528]
  const char* src =
      "int num_components = 3;\n"
      "int last_bitpos[256];\n"
      "int main(void) {\n"
      "  int ci; int coefi;\n"
      "  int *last_bitpos_ptr = last_bitpos;\n"
      "  for (ci = 0; ci < num_components; ci++)\n"
      "    for (coefi = 0; coefi < 64; coefi++)\n"
      "      *last_bitpos_ptr++ = -1;\n"
      "  return 0;\n"
      "}\n";
  auto res = core::run_pipeline(src, lenient());
  ASSERT_TRUE(res.ok()) << res.error();
  const core::ModelReference* store = nullptr;
  for (const auto& r : res.model.refs) {
    if (r.has_write && r.n() == 2) store = &r;
  }
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->trips, (std::vector<int64_t>{3, 64}));
  // The paper's coefficients: 4 bytes per coefi step, 256 per ci step.
  EXPECT_EQ(store->fn.coefs, (std::vector<int64_t>{256, 4}));
  EXPECT_FALSE(store->partial());
  EXPECT_EQ(store->exec_count, 192u);
}

TEST(PaperFigures, Figure1SecondExcerptMatchesFigure2Shape) {
  // while (currow < numrows) for (i = rowsperchunk; i > 0; i--)
  //   result[currow++] = workspace;
  // Figure 2 shows the single-entry flattening: A[... + 4*i1635].
  const char* src =
      "int result[64];\n"
      "int main(void) {\n"
      "  int currow = 0;\n"
      "  int numrows = 16;\n"
      "  int rowsperchunk = 16;\n"
      "  int workspace = 7;\n"
      "  while (currow < numrows) {\n"
      "    for (int i = rowsperchunk; i > 0; i--) {\n"
      "      result[currow++] = workspace;\n"
      "    }\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  auto res = core::run_pipeline(src, lenient());
  ASSERT_TRUE(res.ok()) << res.error();
  const core::ModelReference* store = nullptr;
  for (const auto& r : res.model.refs) {
    if (r.has_write && r.n() == 2) store = &r;
  }
  ASSERT_NE(store, nullptr);
  // One outer entry (trip 1), 16 inner iterations at stride 4 — the
  // paper's "for (i1632<1) for (i1635<16) A[...+4*i1635]" shape.
  EXPECT_EQ(store->trips, (std::vector<int64_t>{1, 16}));
  ASSERT_EQ(store->fn.n(), 2);
  EXPECT_EQ(store->fn.coefs[1], 4);
  EXPECT_EQ(store->exec_count, 16u);
}

TEST(PaperFigures, Figure1NeitherExcerptIsStaticallyAnalyzable) {
  // Constant component count here so the ci loop is canonical — that is
  // what lets the Franke-style pass convert the first excerpt while the
  // while-loop excerpt stays out of reach.
  const char* src =
      "int last_bitpos[256];\n"
      "int result[64];\n"
      "int main(void) {\n"
      "  int *last_bitpos_ptr = last_bitpos;\n"
      "  int ci; int coefi;\n"
      "  for (ci = 0; ci < 3; ci++)\n"
      "    for (coefi = 0; coefi < 64; coefi++)\n"
      "      *last_bitpos_ptr++ = -1;\n"
      "  int currow = 0;\n"
      "  while (currow < 16) {\n"
      "    for (int i = 16; i > 0; i--) result[currow++] = 3;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  auto res = core::run_pipeline(src, lenient());
  ASSERT_TRUE(res.ok()) << res.error();
  auto analysis = staticforay::analyze(*res.program);
  auto cs = staticforay::compute_conversion(res.model, analysis);
  // All data references are pointer walks / non-canonical contexts or
  // non-iterator subscripts: nothing is in FORAY form statically.
  int data_refs = 0;
  for (const auto& r : res.model.refs) {
    if (r.has_write) ++data_refs;
  }
  EXPECT_GE(data_refs, 2);
  EXPECT_DOUBLE_EQ(cs.pct_refs_not_foray(), 100.0);
  // But note: the ci/coefi walk sits under canonical fors, so the
  // Franke-style conversion rescues it — while the currow walk stays
  // out of reach even for that (the 2005 state of the art).
  auto conv = staticforay::analyze_pointer_conversion(*res.program);
  auto cmp = staticforay::compare_baselines(res.model, analysis, conv);
  EXPECT_GT(cmp.with_conversion, cmp.plain_static);
  EXPECT_GT(cmp.foray_gen, cmp.with_conversion);
}

TEST(PaperFigures, Figure4ConstantsMatchPaperArithmetic) {
  // The paper's trace shows consecutive inner addresses and a 103-byte
  // outer stride: 100 (ptr += 100) + 3 (inner ptr++ x3).
  const char* src =
      "char q[10000];\n"
      "int main(void) {\n"
      "  char *ptr = q;\n"
      "  int i; int t1 = 98;\n"
      "  while (t1 < 100) {\n"
      "    t1++;\n"
      "    ptr += 100;\n"
      "    for (i = 40; i > 37; i--) *ptr++ = i * i % 256;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  auto res = core::run_pipeline(src, lenient());
  ASSERT_TRUE(res.ok());
  for (const auto& r : res.model.refs) {
    if (!r.has_write || r.n() != 2) continue;
    EXPECT_EQ(r.fn.coefs[0], 100 + 3);
    EXPECT_EQ(r.fn.coefs[1], 1);
    // Normalized iteration counts: the down-counting i=40..38 loop
    // still yields iterators 0,1,2 — the paper's key normalization.
    EXPECT_EQ(r.trips[1], 3);
  }
}

TEST(PaperFigures, DownCountingLoopNormalizedIterators) {
  // A down-counting subscripted loop: iterator normalization means the
  // recovered coefficient is negative while the loop counts 0..N-1.
  const char* src =
      "int a[64];\n"
      "int main(void) {\n"
      "  for (int i = 63; i >= 0; i--) a[i] = i;\n"
      "  return 0;\n"
      "}\n";
  auto res = core::run_pipeline(src, lenient());
  ASSERT_TRUE(res.ok());
  const core::ModelReference* store = nullptr;
  for (const auto& r : res.model.refs) {
    if (r.has_write && r.n() == 1) store = &r;
  }
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->fn.coefs[0], -4);
  EXPECT_EQ(store->trips[0], 64);
}

}  // namespace
}  // namespace foray
