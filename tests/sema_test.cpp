#include <gtest/gtest.h>

#include "minic/parser.h"
#include "minic/sema.h"

namespace foray::minic {
namespace {

void expect_ok(std::string_view src) {
  util::DiagList diags;
  auto p = parse_and_check(src, &diags);
  EXPECT_TRUE(p != nullptr) << diags.str();
}

void expect_error(std::string_view src, std::string_view needle) {
  util::DiagList diags;
  auto p = parse_and_check(src, &diags);
  EXPECT_EQ(p, nullptr) << "expected sema error containing '" << needle
                        << "'";
  EXPECT_NE(diags.str().find(needle), std::string::npos)
      << "diags were: " << diags.str();
}

TEST(Sema, MinimalProgramChecks) { expect_ok("int main(void) { return 0; }"); }

TEST(Sema, MissingMainRejected) {
  expect_error("int foo(void) { return 0; }", "no 'main'");
}

TEST(Sema, UndeclaredIdentifier) {
  expect_error("int main(void) { return x; }", "undeclared identifier");
}

TEST(Sema, UndeclaredFunction) {
  expect_error("int main(void) { return nope(); }", "undeclared function");
}

TEST(Sema, ArityMismatch) {
  expect_error(
      "int foo(int a) { return a; }\nint main(void) { return foo(1, 2); }",
      "wrong number of arguments");
}

TEST(Sema, IntrinsicArityChecked) {
  expect_error("int main(void) { memcpy(0); return 0; }",
               "wrong number of arguments to intrinsic");
}

TEST(Sema, ShadowingIntrinsicRejected) {
  expect_error("int printf(void) { return 0; } int main(void) { return 0; }",
               "shadows an intrinsic");
}

TEST(Sema, DuplicateFunctionRejected) {
  expect_error(
      "int f(void) { return 0; } int f(void) { return 1; } "
      "int main(void) { return 0; }",
      "duplicate function");
}

TEST(Sema, RedeclarationInSameScopeRejected) {
  expect_error("int main(void) { int x; int x; return 0; }",
               "redeclaration");
}

TEST(Sema, ShadowingInInnerScopeAllowed) {
  expect_ok("int main(void) { int x = 1; { int x = 2; } return x; }");
}

TEST(Sema, BreakOutsideLoopRejected) {
  expect_error("int main(void) { break; return 0; }", "outside a loop");
}

TEST(Sema, ContinueOutsideLoopRejected) {
  expect_error("int main(void) { continue; return 0; }", "outside a loop");
}

TEST(Sema, AssignToRvalueRejected) {
  expect_error("int main(void) { 1 = 2; return 0; }", "not an lvalue");
}

TEST(Sema, AssignToArrayRejected) {
  expect_error("int a[4]; int b[4]; int main(void) { a = b; return 0; }",
               "not an lvalue");
}

TEST(Sema, DerefNonPointerRejected) {
  expect_error("int main(void) { int x; return *x; }",
               "dereference non-pointer");
}

TEST(Sema, SubscriptNonPointerRejected) {
  expect_error("int main(void) { int x; return x[0]; }",
               "not a pointer or array");
}

TEST(Sema, PointerPlusPointerRejected) {
  expect_error(
      "int main(void) { int a[2]; int *p = a; int *q = a; "
      "return *(p + q); }",
      "cannot add two pointers");
}

TEST(Sema, AddressOfRvalueRejected) {
  expect_error("int main(void) { int *p = &3; return 0; }",
               "address of an rvalue");
}

TEST(Sema, VoidVariableRejected) {
  expect_error("int main(void) { void v; return 0; }", "void type");
}

TEST(Sema, ReturnValueFromVoidRejected) {
  expect_error("void f(void) { return 3; } int main(void) { return 0; }",
               "void function");
}

TEST(Sema, MissingReturnValueRejected) {
  expect_error("int f(void) { return; } int main(void) { return 0; }",
               "must return a value");
}

TEST(Sema, TypesPropagateThroughExpressions) {
  util::DiagList diags;
  auto p = parse_and_check(
      "int g[8];\n"
      "int main(void) { float f = 1.0f; int x = g[2]; return x; }",
      &diags);
  ASSERT_NE(p, nullptr) << diags.str();
  // g decays to int*; g[2] is int.
  const Stmt& s = *p->funcs[0]->body->stmts[1];
  EXPECT_EQ(s.decls[0].init->type.base, BaseType::Int);
  EXPECT_EQ(s.decls[0].init->type.ptr, 0);
}

TEST(Sema, ArrayDecayMarked) {
  util::DiagList diags;
  auto p = parse_and_check(
      "char q[16]; int main(void) { char *p = q; return 0; }", &diags);
  ASSERT_NE(p, nullptr) << diags.str();
  const Expr& q = *p->funcs[0]->body->stmts[0]->decls[0].init;
  EXPECT_TRUE(q.decayed_array);
  EXPECT_EQ(q.type.ptr, 1);
}

TEST(Sema, NodeFuncAttributionFilled) {
  util::DiagList diags;
  auto prog = parse_program(
      "int g = 3;\n"
      "int foo(void) { return 1; }\n"
      "int main(void) { return foo(); }",
      &diags);
  ASSERT_TRUE(diags.empty()) << diags.str();
  SemaInfo info = run_sema(prog.get(), &diags);
  ASSERT_TRUE(diags.empty()) << diags.str();
  // The global initializer's node belongs to no function (-1).
  EXPECT_EQ(info.node_func[static_cast<size_t>(prog->globals[0].init->node_id)],
            -1);
  // main's return expression belongs to func_id of main (1).
  const Expr& ret = *prog->funcs[1]->body->stmts[0]->expr;
  EXPECT_EQ(info.node_func[static_cast<size_t>(ret.node_id)], 1);
}

TEST(Sema, MemorySitesMarked) {
  util::DiagList diags;
  auto prog = parse_program(
      "int g[4];\n"
      "int main(void) { int x = g[1]; int *p = g; return *p + x; }",
      &diags);
  ASSERT_TRUE(diags.empty());
  SemaInfo info = run_sema(prog.get(), &diags);
  ASSERT_TRUE(diags.empty()) << diags.str();
  int sites = 0;
  for (uint8_t b : info.node_is_memory_site) sites += b;
  // g[1], x (decl target is not an expr node; reads of x / *p / p count).
  EXPECT_GE(sites, 3);
}

}  // namespace
}  // namespace foray::minic
