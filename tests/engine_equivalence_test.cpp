// The differential harness that locks the fast engines to the
// tree-walking reference interpreter. Every engine change is gated
// here: the bytecode VM and the native jit engine each run the full
// benchsuite plus 200 seeded generated programs (100
// affine-by-construction, 100 free-form stress) against the AST oracle
// and must agree *bit for bit* on the trace record stream, the program
// output, the exit code, the access count, and an FNV digest of the
// final simulated memory image. Option variations (trace filters, chunk
// sizes), faulting programs, and budget trips at chunk boundaries are
// covered as well, so no engine can drift even in the corners.
//
// On builds without native-code support Engine::Jit degrades to the
// bytecode VM, so the jit legs still pass (they then re-verify the VM).
#include <gtest/gtest.h>

#include <cstring>

#include "benchsuite/generator.h"
#include "benchsuite/suite.h"
#include "instrument/annotator.h"
#include "minic/parser.h"
#include "sim/interp_impl.h"
#include "trace/io.h"
#include "trace/sink.h"

namespace foray::sim {
namespace {

/// The engines measured against the Engine::Ast oracle.
constexpr Engine kFastEngines[] = {Engine::Bytecode, Engine::Jit};

const char* engine_name(Engine e) {
  switch (e) {
    case Engine::Ast: return "ast";
    case Engine::Bytecode: return "bytecode";
    case Engine::Jit: return "jit";
  }
  return "?";
}

struct Captured {
  RunResult run;
  std::vector<trace::Record> records;
};

Captured run_engine(const minic::Program& prog, Engine engine,
                    RunOptions opts = {}) {
  opts.engine = engine;
  opts.digest_memory = true;
  trace::VectorSink sink;
  Captured c;
  c.run = run_program_with(prog, &sink, opts);
  c.records = sink.take();
  return c;
}

/// Parses + checks + annotates, failing the test on front-end errors.
std::unique_ptr<minic::Program> prepare(const std::string& source) {
  util::DiagList diags;
  auto prog = minic::parse_and_check(source, &diags);
  EXPECT_NE(prog, nullptr) << diags.str() << "\nprogram:\n" << source;
  if (prog) instrument::annotate_loops(prog.get());
  return prog;
}

/// The core assertion: everything observable must match exactly.
void expect_identical(const Captured& ref, const Captured& got,
                      const std::string& label, const char* got_name) {
  EXPECT_EQ(ref.run.ok(), got.run.ok())
      << label << "\nreference: " << ref.run.error() << "\n"
      << got_name << ": " << got.run.error();
  EXPECT_EQ(ref.run.exit_code, got.run.exit_code) << label;
  EXPECT_EQ(ref.run.output, got.run.output) << label;
  EXPECT_EQ(ref.run.accesses, got.run.accesses) << label;
  EXPECT_EQ(ref.run.memory_digest, got.run.memory_digest) << label;

  ASSERT_EQ(ref.records.size(), got.records.size()) << label;
  if (ref.records.empty()) return;
  if (std::memcmp(ref.records.data(), got.records.data(),
                  ref.records.size() * sizeof(trace::Record)) == 0) {
    return;
  }
  // Byte comparison failed: locate the first divergence for diagnosis.
  for (size_t i = 0; i < ref.records.size(); ++i) {
    ASSERT_TRUE(ref.records[i] == got.records[i])
        << label << ": first divergence at record " << i
        << "\nreference: " << trace::record_to_text(ref.records[i]) << "\n"
        << got_name << ":  " << trace::record_to_text(got.records[i]);
  }
  FAIL() << label << ": records memcmp differs but no record compares "
            "unequal (padding bytes leaked into the stream?)";
}

void expect_engines_agree(const std::string& source,
                          const std::string& label,
                          const RunOptions& opts = {}) {
  auto prog = prepare(source);
  ASSERT_NE(prog, nullptr);
  Captured ast = run_engine(*prog, Engine::Ast, opts);
  // Generated programs terminate by construction; a step-limit or
  // memory fault here is a generator bug, which would otherwise hide a
  // divergence (the engines count steps differently, so a limit fault
  // truncates their traces at different points).
  ASSERT_TRUE(ast.run.ok()) << label << "\n" << ast.run.error();
  for (Engine engine : kFastEngines) {
    Captured fast = run_engine(*prog, engine, opts);
    expect_identical(ast, fast,
                     label + " [" + engine_name(engine) + " vs ast]",
                     engine_name(engine));
  }
}

// -- the full benchsuite -----------------------------------------------------

TEST(EngineEquivalence, FullBenchsuiteBitIdentical) {
  for (const auto& bench : benchsuite::all_benchmarks()) {
    auto prog = prepare(bench.source);
    ASSERT_NE(prog, nullptr) << bench.name;
    Captured ast = run_engine(*prog, Engine::Ast);
    ASSERT_TRUE(ast.run.ok()) << bench.name << ": " << ast.run.error();
    EXPECT_GT(ast.records.size(), 1000u) << bench.name;
    for (Engine engine : kFastEngines) {
      Captured fast = run_engine(*prog, engine);
      expect_identical(ast, fast,
                       std::string(bench.name) + " [" +
                           engine_name(engine) + " vs ast]",
                       engine_name(engine));
    }
  }
}

// -- 200 seeded generated programs -------------------------------------------

class AffineSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AffineSeeds, BitIdentical) {
  // 10 affine programs per parameterized chunk -> 100 programs total.
  for (uint64_t k = 0; k < 10; ++k) {
    benchsuite::GeneratorOptions gopts;
    gopts.seed = GetParam() * 10 + k + 1;
    gopts.num_nests = 4;
    auto gen = benchsuite::generate_affine_program(gopts);
    expect_engines_agree(gen.source,
                         "affine seed " + std::to_string(gopts.seed) +
                             "\n" + gen.source);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffineSeeds, ::testing::Range<uint64_t>(0, 10),
                         [](const ::testing::TestParamInfo<uint64_t>& i) {
                           return "chunk" + std::to_string(i.param);
                         });

class StressSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressSeeds, BitIdentical) {
  // 10 stress programs per chunk -> 100 programs total, each covering
  // short-circuit side effects, ternaries, compound assignment,
  // inc/dec, negative strides, do-while, recursion, intrinsics.
  for (uint64_t k = 0; k < 10; ++k) {
    benchsuite::StressOptions sopts;
    sopts.seed = GetParam() * 10 + k + 1;
    std::string source = benchsuite::generate_stress_program(sopts);
    expect_engines_agree(source, "stress seed " +
                                     std::to_string(sopts.seed) + "\n" +
                                     source);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeeds, ::testing::Range<uint64_t>(0, 10),
                         [](const ::testing::TestParamInfo<uint64_t>& i) {
                           return "chunk" + std::to_string(i.param);
                         });

TEST(EngineEquivalence, StressProgramsActuallyRun) {
  // Guard against the stress generator degenerating into trivial
  // programs: they must execute work and usually produce output.
  uint64_t total_records = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    benchsuite::StressOptions sopts;
    sopts.seed = seed;
    auto prog = prepare(benchsuite::generate_stress_program(sopts));
    ASSERT_NE(prog, nullptr);
    Captured bc = run_engine(*prog, Engine::Bytecode);
    ASSERT_TRUE(bc.run.ok()) << bc.run.error();
    EXPECT_FALSE(bc.run.output.empty());
    total_records += bc.records.size();
  }
  EXPECT_GT(total_records / 20, 200u) << "stress programs are too small";
}

// -- option variations -------------------------------------------------------

TEST(EngineEquivalence, OptionVariationsStayIdentical) {
  benchsuite::StressOptions sopts;
  sopts.seed = 77;
  const std::string source = benchsuite::generate_stress_program(sopts);

  RunOptions base;
  std::vector<std::pair<std::string, RunOptions>> variants;
  variants.emplace_back("defaults", base);
  RunOptions v = base;
  v.emit_checkpoints = false;
  variants.emplace_back("no checkpoints", v);
  v = base;
  v.emit_calls = false;
  variants.emplace_back("no call records", v);
  v = base;
  v.trace_scalars = false;
  variants.emplace_back("no scalar records", v);
  v = base;
  v.trace_data = false;
  v.trace_system = false;
  variants.emplace_back("data+system filtered", v);
  v = base;
  v.chunk_records = 1;
  variants.emplace_back("chunk=1", v);
  v = base;
  v.chunk_records = 7;
  variants.emplace_back("chunk=7", v);
  v = base;
  v.rng_seed = 99;
  variants.emplace_back("rng seed 99", v);

  for (const auto& [label, opts] : variants) {
    expect_engines_agree(source, "variant: " + label, opts);
  }
}

// -- faults ------------------------------------------------------------------

TEST(EngineEquivalence, FaultingProgramsAgreeOnTracePrefixAndMessage) {
  const char* faulting[] = {
      // Division / modulo by zero after some traced work.
      "int a[8];\n"
      "int main(void) { for (int i = 0; i < 8; i++) a[i] = i; "
      "int z = a[0]; return a[5] / z; }",
      "int a[8];\n"
      "int main(void) { for (int i = 0; i < 8; i++) a[i] = i + 1; "
      "return a[5] % (a[3] - 4); }",
      // Out-of-bounds access faults mid-trace.
      "int a[4];\n"
      "int main(void) { int *p = a; return *(p + 100000000); }",
      // Assert failure.
      "int main(void) { int n = 3; assert(n > 5); return n; }",
  };
  for (const char* src : faulting) {
    auto prog = prepare(src);
    ASSERT_NE(prog, nullptr);
    Captured ast = run_engine(*prog, Engine::Ast);
    ASSERT_FALSE(ast.run.ok()) << src;
    for (Engine engine : kFastEngines) {
      Captured fast = run_engine(*prog, engine);
      ASSERT_FALSE(fast.run.ok()) << src << " on " << engine_name(engine);
      // The diagnostic text must match (line attribution may differ:
      // the walker reports the innermost node, ops report their site).
      EXPECT_EQ(ast.run.status.diags().all().front().message,
                fast.run.status.diags().all().front().message)
          << src << " on " << engine_name(engine);
      // Everything up to the fault is still delivered, identically.
      EXPECT_EQ(ast.run.exit_code, fast.run.exit_code) << src;
      EXPECT_EQ(ast.run.output, fast.run.output) << src;
      ASSERT_EQ(ast.records.size(), fast.records.size())
          << src << " on " << engine_name(engine);
      for (size_t i = 0; i < ast.records.size(); ++i) {
        ASSERT_TRUE(ast.records[i] == fast.records[i])
            << src << " on " << engine_name(engine) << " at " << i;
      }
    }
  }
}

TEST(EngineEquivalence, ExitIntrinsicAgrees) {
  expect_engines_agree(
      "int a[4];\n"
      "int main(void) { a[0] = 7; printf(\"before\\n\"); exit(42); "
      "printf(\"after\\n\"); return 0; }",
      "exit intrinsic");
}

// -- budgets -----------------------------------------------------------------

TEST(EngineEquivalence, RecordBudgetTripsAtChunkBoundariesAgree) {
  // Record budgets are checked after chunk delivery, so the truncated
  // stream depends only on the record sequence — which all engines
  // must produce identically. Trip exactly at a chunk boundary and
  // mid-chunk, on two chunk sizes.
  benchsuite::StressOptions sopts;
  sopts.seed = 13;
  const std::string source = benchsuite::generate_stress_program(sopts);
  auto prog = prepare(source);
  ASSERT_NE(prog, nullptr);
  const struct {
    size_t chunk;
    uint64_t max_records;
  } cases[] = {{64, 128}, {64, 100}, {7, 21}, {7, 20}};
  for (const auto& c : cases) {
    RunOptions opts;
    opts.chunk_records = c.chunk;
    opts.budget.max_records = c.max_records;
    const std::string label = "chunk=" + std::to_string(c.chunk) +
                              " max_records=" + std::to_string(c.max_records);
    Captured ast = run_engine(*prog, Engine::Ast, opts);
    ASSERT_FALSE(ast.run.ok()) << label;
    EXPECT_EQ(ast.run.status.code(), util::ErrorCode::kResourceExhausted)
        << label;
    for (Engine engine : kFastEngines) {
      Captured fast = run_engine(*prog, engine, opts);
      ASSERT_FALSE(fast.run.ok())
          << label << " on " << engine_name(engine);
      EXPECT_EQ(fast.run.status.code(),
                util::ErrorCode::kResourceExhausted)
          << label << " on " << engine_name(engine);
      ASSERT_EQ(ast.records.size(), fast.records.size())
          << label << " on " << engine_name(engine);
      EXPECT_EQ(0, std::memcmp(ast.records.data(), fast.records.data(),
                               ast.records.size() * sizeof(trace::Record)))
          << label << " on " << engine_name(engine);
      EXPECT_EQ(ast.run.output, fast.run.output) << label;
    }
  }
}

TEST(EngineEquivalence, StepLimitFaultsMatchBytecodeExactly) {
  // The ast engine counts evaluation steps differently, but bytecode
  // and jit execute the same instruction stream and must fault on the
  // same instruction with the same step total (max + 1) — including
  // limits that land inside a fused jit loop head, where the jit takes
  // its exact unfused cold path.
  benchsuite::StressOptions sopts;
  sopts.seed = 5;
  auto prog = prepare(benchsuite::generate_stress_program(sopts));
  ASSERT_NE(prog, nullptr);
  Captured full = run_engine(*prog, Engine::Bytecode);
  ASSERT_TRUE(full.run.ok()) << full.run.error();
  ASSERT_GT(full.run.steps, 600u);
  std::vector<uint64_t> limits = {1,   2,   3,   4,   5,   50,  51,
                                  52,  53,  54,  299, 300, 301, 500,
                                  full.run.steps - 1, full.run.steps};
  for (uint64_t max_steps : limits) {
    RunOptions opts;
    opts.budget.max_steps = max_steps;
    const std::string label = "max_steps=" + std::to_string(max_steps);
    Captured bc = run_engine(*prog, Engine::Bytecode, opts);
    Captured jit = run_engine(*prog, Engine::Jit, opts);
    EXPECT_EQ(bc.run.ok(), jit.run.ok()) << label;
    EXPECT_EQ(bc.run.steps, jit.run.steps) << label;
    EXPECT_EQ(bc.run.error(), jit.run.error()) << label;
    EXPECT_EQ(bc.run.output, jit.run.output) << label;
    EXPECT_EQ(bc.run.memory_digest, jit.run.memory_digest) << label;
    ASSERT_EQ(bc.records.size(), jit.records.size()) << label;
    if (!bc.records.empty()) {
      EXPECT_EQ(0, std::memcmp(bc.records.data(), jit.records.data(),
                               bc.records.size() * sizeof(trace::Record)))
          << label;
    }
  }
}

// -- online-analysis path ----------------------------------------------------

TEST(EngineEquivalence, OnlineExtractorSeesTheSameStream) {
  // The zero-virtual-call path (engine templated directly on the
  // Extractor) must match the materialize-then-replay path across
  // engines: count records through a CountingSink on all of them.
  for (const char* name : {"gsm", "adpcm"}) {
    auto prog = prepare(benchsuite::get_benchmark(name).source);
    ASSERT_NE(prog, nullptr);
    RunOptions opts;
    trace::CountingSink ast_count;
    opts.engine = Engine::Ast;
    auto ra = run_program_with(*prog, &ast_count, opts);
    ASSERT_TRUE(ra.ok()) << name;
    for (Engine engine : kFastEngines) {
      trace::CountingSink fast_count;
      opts.engine = engine;
      auto rf = run_program_with(*prog, &fast_count, opts);
      ASSERT_TRUE(rf.ok()) << name << " on " << engine_name(engine);
      EXPECT_EQ(ast_count.total(), fast_count.total()) << name;
      EXPECT_EQ(ast_count.accesses(), fast_count.accesses()) << name;
      EXPECT_EQ(ast_count.checkpoints(), fast_count.checkpoints()) << name;
      EXPECT_EQ(ast_count.calls(), fast_count.calls()) << name;
      EXPECT_EQ(ast_count.rets(), fast_count.rets()) << name;
    }
  }
}

}  // namespace
}  // namespace foray::sim
