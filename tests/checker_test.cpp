// The soundness lock for the static checker (staticforay/checker.h).
//
// The checker's contract is directional, and this harness pins both
// directions against the *real* engines over the benchsuite plus 200
// seeded generator programs:
//
//   clean()        =>  both engines run the program fault-free;
//   must_fault()   =>  both engines fault;
//   cost.max_*     >=  the observed dynamic steps / trace records,
//                      whether the run completed or faulted;
//   cost.min_*     <=  the observed counts on fault-free completed runs;
//   cost.exact     =>  max_records equals the observed record count.
//
// Any violation is a test failure — loosening a max bound or tightening
// a min bound in the checker is the fix, never weakening this harness.
// Unit tests below pin the interval domain, trip-count extraction, each
// diagnostic kind's fixture, and the sweep driver's lint_first wiring.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "benchsuite/generator.h"
#include "benchsuite/suite.h"
#include "driver/sweep.h"
#include "instrument/annotator.h"
#include "minic/parser.h"
#include "sim/interpreter.h"
#include "staticforay/checker.h"
#include "staticforay/cost.h"
#include "trace/sink.h"
#include "util/json.h"

namespace foray::staticforay {
namespace {

struct Observed {
  sim::RunResult run;
  uint64_t records = 0;
};

/// Runs `source` on one engine under the default (full-tracing) options
/// the checker's cost model assumes.
Observed observe(const std::string& source, sim::Engine engine) {
  util::DiagList diags;
  auto prog = minic::parse_and_check(source, &diags);
  EXPECT_NE(prog, nullptr) << diags.str();
  Observed o;
  if (!prog) return o;
  instrument::annotate_loops(prog.get());
  trace::VectorSink sink;
  sim::RunOptions ropts;
  ropts.engine = engine;
  o.run = sim::run_program(*prog, &sink, ropts);
  o.records = sink.records().size();
  return o;
}

CheckReport lint(const std::string& source) {
  CheckReport rep;
  const util::Status st = lint_source(source, &rep);
  EXPECT_TRUE(st.ok()) << st.message();
  return rep;
}

/// The core soundness assertion, applied to both engines.
void expect_sound(const std::string& source, const std::string& label) {
  CheckReport rep;
  const util::Status st = lint_source(source, &rep);
  ASSERT_TRUE(st.ok()) << label << ": " << st.message();
  for (sim::Engine engine : {sim::Engine::Ast, sim::Engine::Bytecode}) {
    const std::string what =
        label + (engine == sim::Engine::Ast ? " [ast]" : " [bytecode]");
    const Observed o = observe(source, engine);
    if (rep.clean()) {
      EXPECT_TRUE(o.run.ok())
          << what << ": checker-clean program faulted: " << o.run.error()
          << "\n" << rep.str();
    }
    if (rep.must_fault()) {
      EXPECT_FALSE(o.run.ok())
          << what << ": checker proved a fault but the run completed\n"
          << rep.str();
    }
    EXPECT_GE(rep.cost.max_steps, o.run.steps)
        << what << ": static step bound below the dynamic count\n"
        << rep.str();
    EXPECT_GE(rep.cost.max_records, o.records)
        << what << ": static record bound below the dynamic count\n"
        << rep.str();
    if (o.run.ok()) {
      EXPECT_LE(rep.cost.min_steps, o.run.steps)
          << what << ": static step floor above a completed run\n"
          << rep.str();
      EXPECT_LE(rep.cost.min_records, o.records)
          << what << ": static record floor above a completed run\n"
          << rep.str();
      if (rep.cost.exact) {
        EXPECT_EQ(rep.cost.max_records, o.records)
            << what << ": cost claims exact records but they differ\n"
            << rep.str();
      }
    }
  }
}

bool has_diag(const CheckReport& rep, CheckKind kind, Severity sev) {
  for (const CheckDiag& d : rep.diags) {
    if (d.kind == kind && d.severity == sev) return true;
  }
  return false;
}

// -- interval domain ----------------------------------------------------------

TEST(Intervals, ArithmeticAndWrapping) {
  const Interval a = Interval::range(2, 5);
  const Interval b = Interval::range(-3, 4);
  EXPECT_EQ(iv_add(a, b), Interval::range(-1, 9));
  EXPECT_EQ(iv_sub(a, b), Interval::range(-2, 8));
  EXPECT_EQ(iv_mul(a, b), Interval::range(-15, 20));
  EXPECT_EQ(iv_neg(a), Interval::range(-5, -2));
  // int64 overflow must widen to top, never wrap.
  const Interval big = Interval::range(INT64_MAX - 1, INT64_MAX);
  EXPECT_TRUE(iv_add(big, Interval::singleton(2)).is_top());
  EXPECT_TRUE(iv_mul(big, big).is_top());
}

TEST(Intervals, DivisionModuloAndAbs) {
  EXPECT_EQ(iv_div(Interval::range(10, 20), Interval::singleton(3)),
            Interval::range(3, 6));
  const Interval m = iv_mod(Interval::range(0, 100), Interval::singleton(7));
  EXPECT_TRUE(m.contains(0));
  EXPECT_TRUE(m.contains(6));
  EXPECT_FALSE(m.contains(7));
  EXPECT_EQ(iv_abs(Interval::range(-4, 3)), Interval::range(0, 4));
}

TEST(Intervals, JoinWidenMeetTruncate) {
  const Interval a = Interval::range(0, 4);
  const Interval b = Interval::range(2, 9);
  EXPECT_EQ(iv_join(a, b), Interval::range(0, 9));
  // Widening jumps grown ends to the int64 extremes.
  const Interval w = iv_widen(a, iv_join(a, b));
  EXPECT_EQ(w.lo, 0);
  EXPECT_EQ(w.hi, INT64_MAX);
  Interval meet;
  ASSERT_TRUE(iv_meet(a, b, &meet));
  EXPECT_EQ(meet, Interval::range(2, 4));
  EXPECT_FALSE(iv_meet(Interval::range(0, 1), Interval::range(5, 9), &meet));
  // Truncation to a narrower type clamps to the type range only when the
  // value may overflow it.
  EXPECT_EQ(iv_truncate(Interval::range(0, 100), 1), Interval::range(0, 100));
  EXPECT_EQ(iv_truncate(Interval::range(0, 300), 1),
            Interval::range(-128, 127));
}

TEST(Intervals, SaturatingCostArithmetic) {
  EXPECT_EQ(sat_add(kUnbounded, 1), kUnbounded);
  EXPECT_EQ(sat_add(kUnbounded - 1, 5), kUnbounded);
  EXPECT_EQ(sat_mul(kUnbounded, 0), 0u);
  EXPECT_EQ(sat_mul(1u << 20, kUnbounded), kUnbounded);
  EXPECT_EQ(cost_bound_str(kUnbounded), "unbounded");
  EXPECT_EQ(cost_bound_str(42), "42");
}

// -- diagnostics --------------------------------------------------------------

TEST(CheckerDiags, ProvableDivByZeroIsMustFault) {
  const CheckReport rep = lint(
      "int main(void) { int z = 0; return 10 / z; }\n");
  EXPECT_TRUE(rep.must_fault());
  EXPECT_TRUE(has_diag(rep, CheckKind::DivByZero, Severity::MustFault));
}

TEST(CheckerDiags, MaybeZeroDivisorIsOnlyAWarning) {
  const CheckReport rep = lint(
      "int main(void) {\n"
      "  int z = rand() & 3;\n"
      "  return 10 / z;\n"
      "}\n");
  EXPECT_FALSE(rep.must_fault());
  EXPECT_TRUE(has_diag(rep, CheckKind::DivByZero, Severity::Warning));
}

TEST(CheckerDiags, FailingAssertIsMustFault) {
  const CheckReport rep = lint(
      "int main(void) { int x = 3; assert(x > 5); return 0; }\n");
  EXPECT_TRUE(rep.must_fault());
  EXPECT_TRUE(has_diag(rep, CheckKind::AssertFail, Severity::MustFault));
}

TEST(CheckerDiags, ProvableOutOfBoundsSubscript) {
  // A provably-outside subscript can still land in a *neighboring*
  // mapped object at runtime (the simulator faults on unmapped
  // addresses, not on declared extents), so this is a warning, not a
  // must-fault — soundness over severity.
  const CheckReport rep = lint(
      "int a[8];\n"
      "int main(void) { int i = 9; return a[i]; }\n");
  EXPECT_FALSE(rep.must_fault());
  EXPECT_TRUE(has_diag(rep, CheckKind::OutOfBounds, Severity::Warning));
}

TEST(CheckerDiags, InBoundsSubscriptAfterNarrowingIsClean) {
  const CheckReport rep = lint(
      "int a[8];\n"
      "int main(void) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < 8; i++) s = s + a[i];\n"
      "  return s;\n"
      "}\n");
  EXPECT_FALSE(has_diag(rep, CheckKind::OutOfBounds, Severity::Warning));
  EXPECT_TRUE(rep.clean()) << rep.str();
}

TEST(CheckerDiags, UseBeforeInitIsAWarning) {
  // `int x; return x;` reads an uninitialized slot; the engines bind the
  // slot (zero-filled frame) and do not fault, so this must stay a
  // warning.
  const CheckReport rep = lint(
      "int main(void) { int x; return x; }\n");
  EXPECT_FALSE(rep.must_fault());
  EXPECT_TRUE(has_diag(rep, CheckKind::UseBeforeInit, Severity::Warning));
}

TEST(CheckerDiags, UnreachableStatementAfterReturn) {
  const CheckReport rep = lint(
      "int main(void) {\n"
      "  return 1;\n"
      "  return 2;\n"
      "}\n");
  EXPECT_TRUE(has_diag(rep, CheckKind::Unreachable, Severity::Warning));
}

TEST(CheckerDiags, UnreachableBranchOfConstantCondition) {
  const CheckReport rep = lint(
      "int main(void) {\n"
      "  int x = 1;\n"
      "  if (x) { return 1; } else { return 2; }\n"
      "}\n");
  EXPECT_TRUE(has_diag(rep, CheckKind::Unreachable, Severity::Warning));
}

TEST(CheckerDiags, CanonicalIteratorWriteInBody) {
  const CheckReport rep = lint(
      "int main(void) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < 10; i++) { if (s > 3) i = i + 2; s++; }\n"
      "  return s;\n"
      "}\n");
  EXPECT_TRUE(
      has_diag(rep, CheckKind::CanonicalIterWrite, Severity::Warning));
}

TEST(CheckerDiags, FrontendFailureIsAClassifiedStatus) {
  CheckReport rep;
  const util::Status st = lint_source("int main( {", &rep);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
  EXPECT_EQ(st.phase(), "frontend");
}

// -- cost bounds --------------------------------------------------------------

TEST(CheckerCost, StraightLineProgramIsExact) {
  const CheckReport rep = lint(
      "int main(void) { int x = 4; int y = x + 1; return y; }\n");
  ASSERT_TRUE(rep.cost.bounded()) << rep.cost.str();
  EXPECT_TRUE(rep.cost.exact) << rep.cost.str();
  EXPECT_EQ(rep.cost.min_records, rep.cost.max_records);
}

TEST(CheckerCost, ConstantTripLoopIsBoundedAndExact) {
  const std::string src =
      "int a[64];\n"
      "int main(void) {\n"
      "  for (int i = 0; i < 64; i++) a[i] = i;\n"
      "  return 0;\n"
      "}\n";
  const CheckReport rep = lint(src);
  ASSERT_TRUE(rep.cost.bounded()) << rep.cost.str();
  EXPECT_TRUE(rep.cost.exact) << rep.cost.str();
  // The exact claim is verified against the real engines too.
  expect_sound(src, "constant-trip loop");
}

TEST(CheckerCost, DataDependentLoopKeepsAnUnboundedMax) {
  const CheckReport rep = lint(
      "int main(void) {\n"
      "  int n = rand();\n"
      "  int s = 0;\n"
      "  while (n > 0) { n = n - 1; s++; }\n"
      "  return s;\n"
      "}\n");
  EXPECT_EQ(rep.cost.max_steps, kUnbounded);
  EXPECT_TRUE(has_diag(rep, CheckKind::UnboundedLoop, Severity::Warning));
}

TEST(CheckerCost, MinBoundCollapsesUnderEarlyBreak) {
  const std::string src =
      "int main(void) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < 100; i++) { if (i == 2) break; s++; }\n"
      "  return s;\n"
      "}\n";
  const CheckReport rep = lint(src);
  ASSERT_TRUE(rep.cost.bounded()) << rep.cost.str();
  // The checker cannot know which iteration breaks; the floor must stay
  // below the real (3-iteration) run.
  expect_sound(src, "early-break loop");
}

// -- soundness over the corpora ----------------------------------------------

TEST(CheckerSoundness, Benchsuite) {
  for (const auto& b : benchsuite::all_benchmarks()) {
    expect_sound(b.source, b.name);
  }
}

TEST(CheckerSoundness, AffineGeneratorPrograms) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    benchsuite::GeneratorOptions gopts;
    gopts.seed = seed;
    expect_sound(benchsuite::generate_affine_program(gopts).source,
                 "affine seed " + std::to_string(seed));
  }
}

TEST(CheckerSoundness, StressGeneratorPrograms) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    benchsuite::StressOptions sopts;
    sopts.seed = seed;
    expect_sound(benchsuite::generate_stress_program(sopts),
                 "stress seed " + std::to_string(seed));
  }
}

TEST(CheckerSoundness, MustFaultFixturesFaultForReal) {
  const char* fixtures[] = {
      "int main(void) { int z = 0; return 10 / z; }\n",
      "int main(void) { int x = 0; return x % x; }\n",
      "int main(void) { int x = 3; assert(x > 5); return 0; }\n",
      "int main(void) {\n"
      "  int a = 4;\n"
      "  int b = a - 4;\n"
      "  return 7 % b;\n"
      "}\n",
  };
  for (const char* src : fixtures) {
    const CheckReport rep = lint(src);
    EXPECT_TRUE(rep.must_fault()) << src << "\n" << rep.str();
    expect_sound(src, "must-fault fixture");
  }
}

// -- sweep lint_first ---------------------------------------------------------

const char kMustFaultSource[] =
    "int main(void) { int z = 0; return 10 / z; }\n";
const char kCleanSource[] =
    "int a[64];\n"
    "int main(void) {\n"
    "  for (int r = 0; r < 8; r++)\n"
    "    for (int i = 0; i < 64; i++) a[i] = a[i] + r;\n"
    "  return a[0];\n"
    "}\n";

driver::SweepOptions lint_first_opts() {
  driver::SweepOptions sopts;
  sopts.lint_first = true;
  sopts.pipeline.filter.min_exec = 1;
  sopts.pipeline.filter.min_locations = 1;
  return sopts;
}

TEST(SweepLintFirst, OneLintRowReplacesThePointBlock) {
  const driver::SweepDriver sweep(lint_first_opts());
  const std::vector<driver::SweepJob> jobs = {
      {"bad", kMustFaultSource}, {"good", kCleanSource}};
  std::ostringstream out;
  const util::Status st = sweep.run_ndjson(jobs, out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
  EXPECT_EQ(st.phase(), "lint");

  int lint_rows = 0;
  int bad_point_rows = 0;
  int good_point_rows = 0;
  std::istringstream split(out.str());
  std::string line;
  while (std::getline(split, line)) {
    util::JsonValue v;
    std::string err;
    ASSERT_TRUE(util::parse_json(line, &v, &err)) << line << ": " << err;
    const util::JsonValue* kind = v.find("kind");
    ASSERT_NE(kind, nullptr) << line;
    const util::JsonValue* prog = v.find("program");
    if (kind->str == "lint") {
      ++lint_rows;
      ASSERT_NE(prog, nullptr);
      EXPECT_EQ(prog->str, "bad");
      EXPECT_FALSE(v.find("ok")->b);
      EXPECT_EQ(v.find("error_class")->str, "invalid_input");
      EXPECT_EQ(v.find("phase")->str, "lint");
      EXPECT_NE(v.find("error")->str.find("div-by-zero"),
                std::string::npos);
    } else if (kind->str == "point") {
      ASSERT_NE(prog, nullptr);
      if (prog->str == "bad") ++bad_point_rows;
      if (prog->str == "good") ++good_point_rows;
    }
  }
  // The must-fault program collapses to exactly one structured row; the
  // clean program still sweeps its whole grid.
  EXPECT_EQ(lint_rows, 1);
  EXPECT_EQ(bad_point_rows, 0);
  EXPECT_GE(good_point_rows, 1);
}

TEST(SweepLintFirst, BufferedReportMarksEveryCellOfARefusedJob) {
  const driver::SweepDriver sweep(lint_first_opts());
  const driver::SweepReport report =
      sweep.run({{"bad", kMustFaultSource}, {"good", kCleanSource}});
  ASSERT_EQ(report.programs.size(), 2u);
  const size_t per_job = report.grid.points_per_job();
  for (size_t i = 0; i < per_job; ++i) {
    const driver::SweepItem& item = report.items[i];
    EXPECT_EQ(item.program, "bad");
    EXPECT_FALSE(item.status.ok());
    EXPECT_EQ(item.status.phase(), "lint");
  }
  for (size_t i = 0; i < per_job; ++i) {
    EXPECT_TRUE(report.items[per_job + i].status.ok())
        << report.items[per_job + i].status.message();
  }
  // A lint-refused job never ran Phase I, so it retains no session.
  EXPECT_EQ(report.sessions[0], nullptr);
  EXPECT_NE(report.sessions[1], nullptr);
}

TEST(SweepLintFirst, CleanProgramsAreByteIdenticalWithAndWithoutLint) {
  const std::vector<driver::SweepJob> jobs = {{"good", kCleanSource}};
  std::ostringstream with_lint;
  std::ostringstream without_lint;
  ASSERT_TRUE(driver::SweepDriver(lint_first_opts())
                  .run_ndjson(jobs, with_lint)
                  .ok());
  driver::SweepOptions plain = lint_first_opts();
  plain.lint_first = false;
  ASSERT_TRUE(driver::SweepDriver(plain).run_ndjson(jobs, without_lint).ok());
  EXPECT_EQ(with_lint.str(), without_lint.str());
}

}  // namespace
}  // namespace foray::staticforay
