// Cross-module equivalence properties:
//  - the address stream generated from an extracted model reproduces the
//    simulator-recorded addresses of full-affine references exactly;
//  - behavior statistics are consistent with raw trace counts;
//  - the emitted MiniC model generates the same Data-address multiset as
//    the model's analytic stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "benchsuite/generator.h"
#include "benchsuite/suite.h"
#include "foray/pipeline.h"
#include "foray/stats.h"
#include "minic/parser.h"
#include "sim/interpreter.h"
#include "spm/address_stream.h"
#include "trace/sink.h"

namespace foray {
namespace {

core::PipelineOptions lenient() {
  core::PipelineOptions o;
  o.filter.min_exec = 1;
  o.filter.min_locations = 1;
  return o;
}

/// Collects the Data-kind access addresses of a program run, per instr.
std::map<uint32_t, std::vector<uint32_t>> trace_addresses(
    std::string_view src) {
  util::DiagList diags;
  auto prog = minic::parse_and_check(src, &diags);
  EXPECT_NE(prog, nullptr) << diags.str();
  std::map<uint32_t, std::vector<uint32_t>> out;
  if (!prog) return out;
  instrument::annotate_loops(prog.get());
  trace::VectorSink sink;
  auto run = sim::run_program(*prog, &sink);
  EXPECT_TRUE(run.ok()) << run.error();
  for (const auto& r : sink.records()) {
    if (r.type() == trace::RecordType::Access &&
        r.kind() == trace::AccessKind::Data) {
      out[r.instr()].push_back(r.addr());
    }
  }
  return out;
}

TEST(Equivalence, ModelStreamReproducesTraceAddressesInOrder) {
  // Deterministic generated programs: every nest is full affine, so the
  // model stream must equal the recorded stream element by element.
  for (uint64_t seed : {3u, 17u, 99u}) {
    benchsuite::GeneratorOptions gopts;
    gopts.seed = seed;
    gopts.num_nests = 4;
    auto gen = benchsuite::generate_affine_program(gopts);

    auto res = core::run_pipeline(gen.source, lenient());
    ASSERT_TRUE(res.ok()) << res.error();
    auto recorded = trace_addresses(gen.source);

    int checked = 0;
    for (const auto& ref : res.model.refs) {
      if (!ref.has_write || ref.partial()) continue;
      auto it = recorded.find(ref.instr);
      ASSERT_NE(it, recorded.end());
      std::vector<uint32_t> from_model;
      spm::for_each_address(ref, [&](uint32_t a) {
        from_model.push_back(a);
      });
      ASSERT_EQ(from_model.size(), it->second.size())
          << "instr " << std::hex << ref.instr << "\n" << gen.source;
      EXPECT_EQ(from_model, it->second) << gen.source;
      ++checked;
    }
    EXPECT_GE(checked, 4) << gen.source;
  }
}

TEST(Equivalence, EmittedModelStreamsSameAddressCount) {
  benchsuite::GeneratorOptions gopts;
  gopts.seed = 7;
  gopts.num_nests = 3;
  auto gen = benchsuite::generate_affine_program(gopts);
  auto res = core::run_pipeline(gen.source, lenient());
  ASSERT_TRUE(res.ok());

  // Execute the emitted model and compare total Data accesses with the
  // analytic stream volume.
  auto recorded = trace_addresses(res.foray_source);
  uint64_t executed = 0;
  for (const auto& [instr, addrs] : recorded) executed += addrs.size();
  uint64_t analytic = spm::for_each_address(res.model, [](uint32_t) {});
  EXPECT_EQ(executed, analytic) << res.foray_source;
}

TEST(Equivalence, BehaviorTotalsMatchExtractorCounters) {
  for (const char* name : {"gsm", "adpcm"}) {
    auto res = core::run_pipeline(
        benchsuite::get_benchmark(name).source);
    ASSERT_TRUE(res.ok()) << res.error();
    auto b = core::compute_behavior(res.extractor->tree(),
                                    core::FilterOptions{});
    EXPECT_EQ(b.total.accesses, res.extractor->accesses_processed())
        << name;
    EXPECT_EQ(static_cast<int>(b.total.refs),
              res.extractor->tree().ref_node_count())
        << name;
  }
}

TEST(Equivalence, ModelAccessesNeverExceedTotal) {
  for (const auto& bench : benchsuite::all_benchmarks()) {
    auto res = core::run_pipeline(bench.source);
    ASSERT_TRUE(res.ok()) << bench.name;
    auto b = core::compute_behavior(res.extractor->tree(),
                                    core::FilterOptions{});
    EXPECT_LE(b.model.accesses, b.total.accesses) << bench.name;
    EXPECT_LE(b.model.footprint, b.total.footprint) << bench.name;
    EXPECT_EQ(res.model.total_accesses(), b.model.accesses) << bench.name;
  }
}

TEST(Equivalence, LoopMixCountsOnlyExecutedSites) {
  const char* src =
      "int a[64];\n"
      "void unused(void) { for (int i = 0; i < 4; i++) a[i] = i; "
      "do { a[0]++; } while (0); }\n"
      "int main(void) {\n"
      "  while (a[0] < 8) a[0]++;\n"
      "  return 0;\n"
      "}\n";
  auto res = core::run_pipeline(src, lenient());
  ASSERT_TRUE(res.ok()) << res.error();
  auto mix = core::compute_loop_mix(res.extractor->tree(), res.loop_sites,
                                    res.program->source_lines);
  EXPECT_EQ(mix.total, 1);        // only main's while executed
  EXPECT_EQ(mix.while_loops, 1);
  EXPECT_EQ(res.loop_sites.count(), 3);  // three exist statically
}

}  // namespace
}  // namespace foray
