// The FMDL model serializer (foray/model_io.h): byte-exact round trips
// for real extracted models, and a trace_corpus_test-style mutation
// corpus — truncations at every interesting offset, flipped magic,
// stale versions, lying counts and out-of-range fields must all come
// back as a clean classified Status, never a crash or a silently wrong
// model.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "foray/model_io.h"
#include "foray/pipeline.h"
#include "util/status.h"

namespace foray::core {
namespace {

const char* kNested =
    "int a[256];\n"
    "int main(void) {\n"
    "  for (int r = 0; r < 40; r++)\n"
    "    for (int i = 0; i < 256; i++) a[i] = a[i] + r;\n"
    "  return a[0] & 255;\n"
    "}\n";

const char* kPointerWalk =
    "char buf[4096];\n"
    "int main(void) {\n"
    "  char *p = buf;\n"
    "  int t = 0;\n"
    "  while (t < 30) {\n"
    "    t++;\n"
    "    p += 64;\n"
    "    for (int i = 0; i < 32; i++) *p++ = (i + t) % 256;\n"
    "  }\n"
    "  return 0;\n"
    "}\n";

ForayModel extract(const char* source) {
  PipelineOptions opts;
  opts.filter.min_exec = 1;
  opts.filter.min_locations = 1;
  PipelineResult res = run_pipeline(source, opts);
  EXPECT_TRUE(res.status.ok()) << res.status.message();
  EXPECT_TRUE(res.model_built);
  EXPECT_FALSE(res.model.refs.empty());
  return res.model;
}

/// Every mutation must land in one of the two reader failure classes,
/// and must reset the output model instead of leaving partial refs.
void expect_clean_failure(const std::string& bytes, const char* what) {
  ForayModel out;
  out.refs.resize(3);  // must be cleared even on failure
  util::Status st = model_from_bytes(bytes, &out);
  ASSERT_FALSE(st.ok()) << what;
  EXPECT_TRUE(st.code() == util::ErrorCode::kInvalidInput ||
              st.code() == util::ErrorCode::kIoError)
      << what << ": classified as " << st.code_name();
  EXPECT_EQ(st.phase(), "model-io") << what;
  EXPECT_FALSE(st.message().empty()) << what;
  EXPECT_TRUE(out.refs.empty()) << what;
}

uint32_t get_u32_at(const std::string& bytes, size_t off) {
  return static_cast<uint32_t>(static_cast<uint8_t>(bytes[off])) |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[off + 1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[off + 2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[off + 3])) << 24;
}

void set_u32_at(std::string* bytes, size_t off, uint32_t v) {
  (*bytes)[off] = static_cast<char>(v & 0xff);
  (*bytes)[off + 1] = static_cast<char>((v >> 8) & 0xff);
  (*bytes)[off + 2] = static_cast<char>((v >> 16) & 0xff);
  (*bytes)[off + 3] = static_cast<char>((v >> 24) & 0xff);
}

// Layout constants (see model_io.cpp): magic(4) version(4) count(4)
// stats(32), then records. First record: instr(4) n(4) m(4) flags(1)...
constexpr size_t kVersionOff = 4;
constexpr size_t kCountOff = 8;
constexpr size_t kHeaderBytes = 44;
constexpr size_t kRefNOff = kHeaderBytes + 4;
constexpr size_t kRefMOff = kHeaderBytes + 8;
constexpr size_t kRefFlagsOff = kHeaderBytes + 12;

TEST(ModelIo, RoundTripIsByteExact) {
  for (const char* source : {kNested, kPointerWalk}) {
    const ForayModel model = extract(source);
    const std::string bytes = model_to_bytes(model);
    ASSERT_GE(bytes.size(), kHeaderBytes);

    ForayModel loaded;
    util::Status st = model_from_bytes(bytes, &loaded);
    ASSERT_TRUE(st.ok()) << st.message();
    // Serializing the loaded model must reproduce the input bytes — the
    // property the content-addressed cache verifies entries by.
    EXPECT_EQ(model_to_bytes(loaded), bytes);

    ASSERT_EQ(loaded.refs.size(), model.refs.size());
    for (size_t i = 0; i < model.refs.size(); ++i) {
      const ModelReference& a = model.refs[i];
      const ModelReference& b = loaded.refs[i];
      EXPECT_EQ(a.instr, b.instr) << i;
      EXPECT_EQ(a.loop_path, b.loop_path) << i;
      EXPECT_EQ(a.trips, b.trips) << i;
      EXPECT_EQ(a.exec_count, b.exec_count) << i;
      EXPECT_EQ(a.footprint, b.footprint) << i;
      EXPECT_EQ(a.footprint_saturated, b.footprint_saturated) << i;
      EXPECT_EQ(a.access_size, b.access_size) << i;
      EXPECT_EQ(a.has_read, b.has_read) << i;
      EXPECT_EQ(a.has_write, b.has_write) << i;
      EXPECT_EQ(a.fn.const_term, b.fn.const_term) << i;
      EXPECT_EQ(a.fn.coefs, b.fn.coefs) << i;
      EXPECT_EQ(a.fn.known, b.fn.known) << i;
      EXPECT_EQ(a.fn.m, b.fn.m) << i;
      EXPECT_EQ(a.fn.analyzable, b.fn.analyzable) << i;
    }
    const ModelBuildStats& sa = model.build_stats;
    const ModelBuildStats& sb = loaded.build_stats;
    EXPECT_EQ(sa.total_refs, sb.total_refs);
    EXPECT_EQ(sa.kept, sb.kept);
  }
}

TEST(ModelIo, EmptyModelRoundTrips) {
  const std::string bytes = model_to_bytes(ForayModel{});
  EXPECT_EQ(bytes.size(), kHeaderBytes);
  ForayModel loaded;
  ASSERT_TRUE(model_from_bytes(bytes, &loaded).ok());
  EXPECT_TRUE(loaded.refs.empty());
  EXPECT_EQ(model_to_bytes(loaded), bytes);
}

TEST(ModelIo, TruncationAtEveryInterestingOffset) {
  const std::string bytes = model_to_bytes(extract(kNested));
  std::vector<size_t> cuts;
  // Every header prefix, then cuts through the record area.
  for (size_t n = 0; n <= kHeaderBytes; ++n) cuts.push_back(n);
  cuts.push_back(kHeaderBytes + 1);
  cuts.push_back((kHeaderBytes + bytes.size()) / 2);
  cuts.push_back(bytes.size() - 1);
  for (size_t n : cuts) {
    ASSERT_LT(n, bytes.size());
    SCOPED_TRACE("truncated to " + std::to_string(n) + " bytes");
    expect_clean_failure(bytes.substr(0, n), "truncation");
  }
}

TEST(ModelIo, FlippedMagicBytesAreInvalidInput) {
  const std::string bytes = model_to_bytes(extract(kNested));
  for (size_t i = 0; i < 4; ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
    ForayModel out;
    util::Status st = model_from_bytes(mutated, &out);
    ASSERT_FALSE(st.ok()) << "magic byte " << i;
    EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput) << i;
  }
}

TEST(ModelIo, StaleVersionIsInvalidInputAndNamesBothVersions) {
  const std::string bytes = model_to_bytes(extract(kNested));
  for (uint32_t version : {0u, kModelFormatVersion + 1, 0xffffffffu}) {
    std::string mutated = bytes;
    set_u32_at(&mutated, kVersionOff, version);
    ForayModel out;
    util::Status st = model_from_bytes(mutated, &out);
    ASSERT_FALSE(st.ok()) << version;
    EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput) << version;
    // The message must say what was found and what this build reads —
    // that is what makes a stale cache entry diagnosable.
    EXPECT_NE(st.message().find("model format version"), std::string::npos);
    EXPECT_NE(st.message().find(std::to_string(kModelFormatVersion)),
              std::string::npos);
  }
}

TEST(ModelIo, LyingReferenceCounts) {
  const std::string bytes = model_to_bytes(extract(kNested));
  const uint32_t count = get_u32_at(bytes, kCountOff);
  ASSERT_GE(count, 1u);

  // One more reference than the body holds: truncation or implausible
  // count, never a walk off the end.
  std::string one_extra = bytes;
  set_u32_at(&one_extra, kCountOff, count + 1);
  expect_clean_failure(one_extra, "count + 1");

  // One fewer: the reader must reject the trailing bytes rather than
  // silently return a shorter model.
  std::string one_less = bytes;
  set_u32_at(&one_less, kCountOff, count - 1);
  {
    ForayModel out;
    util::Status st = model_from_bytes(one_less, &out);
    if (count == 1) {
      // A 0-count model with trailing bytes.
      ASSERT_FALSE(st.ok());
    } else {
      ASSERT_FALSE(st.ok()) << "count - 1 accepted";
    }
    EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
    EXPECT_NE(st.message().find("trailing"), std::string::npos);
  }

  // An absurd count must be rejected by the plausibility check before
  // any allocation is sized from it.
  std::string absurd = bytes;
  set_u32_at(&absurd, kCountOff, 0x80000000u);
  ForayModel out;
  util::Status st = model_from_bytes(absurd, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
}

TEST(ModelIo, OutOfRangeFieldsAreInvalidInput) {
  const std::string bytes = model_to_bytes(extract(kNested));

  // m > n would index loop_path out of bounds downstream.
  std::string bad_m = bytes;
  const uint32_t n = get_u32_at(bytes, kRefNOff);
  set_u32_at(&bad_m, kRefMOff, n + 1);
  {
    ForayModel out;
    util::Status st = model_from_bytes(bad_m, &out);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
    EXPECT_NE(st.message().find("reference 0"), std::string::npos);
  }

  // A nest depth no extractor produces is hostile, not truncated. The
  // record then continues with garbage, so any classified failure in
  // either class is fine — but it must mention the bad depth first.
  std::string deep = bytes;
  set_u32_at(&deep, kRefNOff, 1u << 20);
  {
    ForayModel out;
    util::Status st = model_from_bytes(deep, &out);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
  }

  // Unknown flag bits mean a layout this reader does not understand.
  std::string bad_flags = bytes;
  bad_flags[kRefFlagsOff] = static_cast<char>(
      static_cast<uint8_t>(bad_flags[kRefFlagsOff]) | 0x80);
  {
    ForayModel out;
    util::Status st = model_from_bytes(bad_flags, &out);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), util::ErrorCode::kInvalidInput);
  }
}

TEST(ModelIo, EveryByteFlipFailsCleanlyOrRoundTrips) {
  // The blanket fuzz pass: flipping any single byte must either be
  // detected (clean classified failure) or yield a model that
  // re-serializes to exactly the mutated bytes — never a crash, and
  // never a model that disagrees with its own serialization.
  const std::string bytes = model_to_bytes(extract(kPointerWalk));
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xff);
    ForayModel out;
    util::Status st = model_from_bytes(mutated, &out);
    if (st.ok()) {
      EXPECT_EQ(model_to_bytes(out), mutated) << "byte " << i;
    } else {
      EXPECT_TRUE(st.code() == util::ErrorCode::kInvalidInput ||
                  st.code() == util::ErrorCode::kIoError)
          << "byte " << i << ": " << st.code_name();
    }
  }
}

}  // namespace
}  // namespace foray::core
