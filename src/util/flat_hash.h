// Insert-only open-addressed hash containers for 32-bit keys.
//
// The extractor's two per-access lookups — reference-node index and
// footprint membership — sat on libstdc++'s node-based unordered
// containers, whose prime-modulo bucket math (an integer division per
// probe) and per-node allocations dominated the analyzer's hot path.
// These replacements use power-of-two tables with a multiplicative hash
// and linear probing, and store occupancy in-band (key 0 is the empty
// sentinel; a real key 0 is tracked out of band), so a lookup touches
// exactly one array — one multiply, one mask, and (almost always) one
// cache line. PagedAddrSet specializes distinct-address counting with
// per-page bitmaps so strided memory walks stay on one hot line. None of
// the containers support erase — the loop tree only ever grows, which is
// exactly the paper's monotone state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace foray::util {

/// Fibonacci-style mixer: spreads low-entropy keys (sequential instr
/// addresses, small loop ids) across the high bits the mask keeps.
inline uint32_t hash_u32(uint32_t x) {
  x ^= x >> 16;
  x *= 0x7feb352du;
  x ^= x >> 15;
  x *= 0x846ca68bu;
  x ^= x >> 16;
  return x;
}

/// Set of uint32 keys. Insert and membership only.
class FlatSet32 {
 public:
  FlatSet32() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool contains(uint32_t key) const {
    if (key == 0) return has_zero_;
    if (slots_.empty()) return false;
    const size_t mask = slots_.size() - 1;
    size_t i = hash_u32(key) & mask;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask;
    }
    return false;
  }

  /// Returns true when the key was newly inserted.
  bool insert(uint32_t key) {
    if (key == 0) {
      if (has_zero_) return false;
      has_zero_ = true;
      ++size_;
      return true;
    }
    if (slots_.empty() || size_ >= grow_at_) grow();
    const size_t mask = slots_.size() - 1;
    size_t i = hash_u32(key) & mask;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (has_zero_) fn(0u);
    for (uint32_t k : slots_) {
      if (k != 0) fn(k);
    }
  }

  /// Heap bytes held by the table (for working-set accounting).
  size_t heap_bytes() const { return slots_.capacity() * sizeof(uint32_t); }

 private:
  void grow() {
    const size_t new_cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<uint32_t> old = std::move(slots_);
    slots_.assign(new_cap, 0);
    grow_at_ = (new_cap * 7) / 8;
    const size_t mask = new_cap - 1;
    for (uint32_t k : old) {
      if (k == 0) continue;
      size_t j = hash_u32(k) & mask;
      while (slots_[j] != 0) j = (j + 1) & mask;
      slots_[j] = k;
    }
  }

  std::vector<uint32_t> slots_;
  size_t size_ = 0;
  size_t grow_at_ = 0;
  bool has_zero_ = false;
};

/// Map from uint32 keys to small trivially-copyable values (pointers in
/// the loop tree's indices). Insert and find only.
template <typename V>
class FlatMap32 {
 public:
  FlatMap32() = default;

  size_t size() const { return size_; }

  V* find(uint32_t key) {
    if (key == 0) return has_zero_ ? &zero_val_ : nullptr;
    if (keys_.empty()) return nullptr;
    const size_t mask = keys_.size() - 1;
    size_t i = hash_u32(key) & mask;
    while (keys_[i] != 0) {
      if (keys_[i] == key) return &vals_[i];
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  const V* find(uint32_t key) const {
    return const_cast<FlatMap32*>(this)->find(key);
  }

  /// Inserts (or overwrites) key -> value.
  void insert(uint32_t key, V value) {
    if (key == 0) {
      if (!has_zero_) ++size_;
      has_zero_ = true;
      zero_val_ = value;
      return;
    }
    if (keys_.empty() || size_ >= grow_at_) grow();
    const size_t mask = keys_.size() - 1;
    size_t i = hash_u32(key) & mask;
    while (keys_[i] != 0) {
      if (keys_[i] == key) {
        vals_[i] = value;
        return;
      }
      i = (i + 1) & mask;
    }
    keys_[i] = key;
    vals_[i] = value;
    ++size_;
  }

  size_t heap_bytes() const {
    return keys_.capacity() * sizeof(uint32_t) +
           vals_.capacity() * sizeof(V);
  }

 private:
  void grow() {
    const size_t new_cap = keys_.empty() ? 16 : keys_.size() * 2;
    std::vector<uint32_t> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    keys_.assign(new_cap, 0);
    vals_.assign(new_cap, V{});
    grow_at_ = (new_cap * 7) / 8;
    const size_t mask = new_cap - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == 0) continue;
      size_t j = hash_u32(old_keys[i]) & mask;
      while (keys_[j] != 0) j = (j + 1) & mask;
      keys_[j] = old_keys[i];
      vals_[j] = old_vals[i];
    }
  }

  std::vector<uint32_t> keys_;
  std::vector<V> vals_;
  size_t size_ = 0;
  size_t grow_at_ = 0;
  bool has_zero_ = false;
  V zero_val_{};
};

/// Distinct-uint32 set tuned for address footprints: a hash map of
/// 4 KiB pages to 512-byte bitmaps, with a one-entry page cache. Memory
/// walks — strided array sweeps, dense scans — stay on one bitmap line
/// for thousands of consecutive addresses, where a hash set would
/// scatter every probe across its table; sparse random inserts degrade
/// gracefully to one page lookup plus one bit op. Insert and membership
/// only.
class PagedAddrSet {
 public:
  static constexpr uint32_t kPageBits = 12;  ///< 4 KiB address pages
  static constexpr size_t kWordsPerPage = (1u << kPageBits) / 64;

  PagedAddrSet() = default;
  // The page cache points into pages_ storage: moves keep the heap
  // blocks alive (cache stays valid), copies must rebuild it.
  PagedAddrSet(PagedAddrSet&&) = default;
  PagedAddrSet& operator=(PagedAddrSet&&) = default;
  PagedAddrSet(const PagedAddrSet& o) { copy_from(o); }
  PagedAddrSet& operator=(const PagedAddrSet& o) {
    if (this != &o) copy_from(o);
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Returns true when the address was newly inserted.
  bool insert(uint32_t addr) {
    uint64_t* bits = page_bits(addr, /*create=*/true);
    const uint32_t off = addr & ((1u << kPageBits) - 1);
    uint64_t& word = bits[off >> 6];
    const uint64_t mask = 1ull << (off & 63);
    if ((word & mask) != 0) return false;
    word |= mask;
    ++size_;
    return true;
  }

  bool contains(uint32_t addr) const {
    const uint64_t* bits =
        const_cast<PagedAddrSet*>(this)->page_bits(addr, /*create=*/false);
    if (bits == nullptr) return false;
    const uint32_t off = addr & ((1u << kPageBits) - 1);
    return ((bits[off >> 6] >> (off & 63)) & 1) != 0;
  }

  /// Visits every address in the set (page order, ascending in page).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (size_t p = 0; p < page_ids_.size(); ++p) {
      const uint32_t base = page_ids_[p] << kPageBits;
      const uint64_t* bits = pages_[p].get();
      for (size_t w = 0; w < kWordsPerPage; ++w) {
        uint64_t word = bits[w];
        while (word != 0) {
          const int bit = __builtin_ctzll(word);
          fn(base + static_cast<uint32_t>(w * 64 + bit));
          word &= word - 1;
        }
      }
    }
  }

  size_t heap_bytes() const {
    return pages_.size() * kWordsPerPage * sizeof(uint64_t) +
           pages_.capacity() * sizeof(void*) + index_.heap_bytes() +
           page_ids_.capacity() * sizeof(uint32_t);
  }

 private:
  uint64_t* page_bits(uint32_t addr, bool create) {
    const uint32_t page = addr >> kPageBits;
    if (page == cached_page_) return cached_bits_;
    // Page ids are keyed +1 so page 0 dodges the map's empty sentinel.
    uint32_t* idx = index_.find(page + 1);
    if (idx == nullptr) {
      if (!create) return nullptr;
      auto fresh = std::make_unique<uint64_t[]>(kWordsPerPage);
      for (size_t w = 0; w < kWordsPerPage; ++w) fresh[w] = 0;
      pages_.push_back(std::move(fresh));
      page_ids_.push_back(page);
      index_.insert(page + 1, static_cast<uint32_t>(pages_.size() - 1));
      cached_page_ = page;
      cached_bits_ = pages_.back().get();
      return cached_bits_;
    }
    cached_page_ = page;
    cached_bits_ = pages_[*idx].get();
    return cached_bits_;
  }

  void copy_from(const PagedAddrSet& o) {
    pages_.clear();
    pages_.reserve(o.pages_.size());
    for (const auto& p : o.pages_) {
      auto fresh = std::make_unique<uint64_t[]>(kWordsPerPage);
      for (size_t w = 0; w < kWordsPerPage; ++w) fresh[w] = p[w];
      pages_.push_back(std::move(fresh));
    }
    page_ids_ = o.page_ids_;
    index_ = o.index_;
    size_ = o.size_;
    cached_page_ = ~0u;
    cached_bits_ = nullptr;
  }

  std::vector<std::unique_ptr<uint64_t[]>> pages_;
  std::vector<uint32_t> page_ids_;      ///< page id per pages_ entry
  FlatMap32<uint32_t> index_;           ///< page+1 -> index into pages_
  uint32_t cached_page_ = ~0u;
  uint64_t* cached_bits_ = nullptr;
  size_t size_ = 0;
};

}  // namespace foray::util
