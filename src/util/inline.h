// Force-inline annotation shared across the simulator's hot paths.
//
// The execution engines' dispatch loops are single functions large
// enough to exhaust the compiler's inlining budget exactly where a call
// per record hurts most (typed memory access, record emission, value
// helpers); the annotated functions are small and measured — see
// README "Performance".
#pragma once

#ifndef FORAY_ALWAYS_INLINE
#if defined(__GNUC__) || defined(__clang__)
#define FORAY_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define FORAY_ALWAYS_INLINE inline
#endif
#endif
