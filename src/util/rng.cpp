#include "util/rng.h"

#include "util/status.h"

namespace foray::util {

uint64_t Rng::next() {
  state_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rng::next_below(uint64_t bound) {
  FORAY_CHECK(bound > 0, "Rng::next_below bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t v = next();
  while (v >= limit) v = next();
  return v % bound;
}

int64_t Rng::next_in(int64_t lo, int64_t hi) {
  FORAY_CHECK(lo <= hi, "Rng::next_in requires lo <= hi");
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(next());  // full 64-bit range
  return lo + static_cast<int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace foray::util
