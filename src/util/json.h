// A minimal streaming JSON writer, and the matching reader.
//
// The writer is just enough for the machine-readable outputs this project
// emits (`foraygen batch --json`, sweep NDJSON journals, the bench
// BENCH_*.json files): objects, arrays, strings with escaping, integers,
// doubles and booleans, with comma placement handled by the writer.
//
// The reader (parse_json / JsonValue) is the exact inverse, added for
// `foraygen sweep --resume`: it must re-read journals this writer
// produced, so doubles go through std::from_chars — the round-trip
// partner of the writer's shortest-form std::to_chars — and reprint
// byte-identically. It is a strict little parser (no comments, no
// trailing commas), not a general-purpose JSON library.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace foray::util {

class JsonWriter {
 public:
  std::string take() { return std::move(out_); }
  const std::string& str() const { return out_; }

  JsonWriter& begin_object() {
    comma();
    out_ += '{';
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_object() {
    out_ += '}';
    fresh_ = false;
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    out_ += '[';
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_array() {
    out_ += ']';
    fresh_ = false;
    return *this;
  }

  /// Object key; follow with exactly one value (or container).
  JsonWriter& key(std::string_view k) {
    comma();
    append_string(k);
    out_ += ':';
    fresh_ = true;  // the upcoming value needs no comma
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    append_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    if (std::isfinite(v)) {
      // Shortest round-trip form: a reader that parses the number and
      // reprints it reproduces the bytes exactly. The sweep --resume
      // path leans on this — reduction sums over journal-parsed values
      // must match sums over freshly-computed ones bit for bit.
      char buf[40];
      auto res = std::to_chars(buf, buf + sizeof buf, v);
      out_.append(buf, res.ptr);
    } else {
      out_ += "null";  // JSON has no NaN/Inf
    }
    return *this;
  }
  JsonWriter& value(int64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<uint64_t>(v)); }

 private:
  void comma() {
    if (!fresh_) out_ += ',';
    fresh_ = false;
  }

  void append_string(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c) & 0xff);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool fresh_ = true;
};

// -- reader -------------------------------------------------------------------

/// A parsed JSON document node. Numbers are kept as double (the only
/// numeric type JSON has); integer-valued fields that must survive at
/// full 64-bit precision should be range-checked by the caller.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> items;                                 ///< Array
  std::vector<std::pair<std::string, JsonValue>> fields;        ///< Object

  bool is_null() const { return kind == Kind::Null; }
  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_string() const { return kind == Kind::String; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_bool() const { return kind == Kind::Bool; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace json_detail {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : p_(text.data()), end_(text.data() + text.size()), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (p_ != end_) return fail("trailing characters after JSON value");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 96;  ///< bounds stack use on hostile input

  bool fail(const std::string& msg) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = msg + " at offset " + std::to_string(off());
    }
    return false;
  }

  size_t off() const { return static_cast<size_t>(p_ - start_ptr_); }

  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool literal(std::string_view word) {
    if (end_ - p_ < static_cast<ptrdiff_t>(word.size()) ||
        std::string_view(p_, word.size()) != word) {
      return fail("invalid literal");
    }
    p_ += word.size();
    return true;
  }

  bool parse_string(std::string* out) {
    ++p_;  // opening quote
    while (p_ != end_) {
      const char c = *p_++;
      if (c == '"') return true;
      if (c == '\\') {
        if (p_ == end_) break;
        const char e = *p_++;
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (end_ - p_ < 4) return fail("truncated \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p_++;
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape digit");
            }
            // The writer only emits \u00xx for control bytes; decode the
            // BMP point as UTF-8 so round-trips are exact.
            if (cp < 0x80) {
              *out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              *out += static_cast<char>(0xc0 | (cp >> 6));
              *out += static_cast<char>(0x80 | (cp & 0x3f));
            } else {
              *out += static_cast<char>(0xe0 | (cp >> 12));
              *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
              *out += static_cast<char>(0x80 | (cp & 0x3f));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        *out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case 'n':
        out->kind = JsonValue::Kind::Null;
        return literal("null");
      case 't':
        out->kind = JsonValue::Kind::Bool;
        out->b = true;
        return literal("true");
      case 'f':
        out->kind = JsonValue::Kind::Bool;
        out->b = false;
        return literal("false");
      case '"':
        out->kind = JsonValue::Kind::String;
        return parse_string(&out->str);
      case '[': {
        out->kind = JsonValue::Kind::Array;
        ++p_;
        skip_ws();
        if (p_ != end_ && *p_ == ']') {
          ++p_;
          return true;
        }
        while (true) {
          out->items.emplace_back();
          skip_ws();
          if (!parse_value(&out->items.back(), depth + 1)) return false;
          skip_ws();
          if (p_ == end_) return fail("unterminated array");
          if (*p_ == ',') {
            ++p_;
            continue;
          }
          if (*p_ == ']') {
            ++p_;
            return true;
          }
          return fail("expected ',' or ']' in array");
        }
      }
      case '{': {
        out->kind = JsonValue::Kind::Object;
        ++p_;
        skip_ws();
        if (p_ != end_ && *p_ == '}') {
          ++p_;
          return true;
        }
        while (true) {
          skip_ws();
          if (p_ == end_ || *p_ != '"') return fail("expected object key");
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (p_ == end_ || *p_ != ':') return fail("expected ':'");
          ++p_;
          skip_ws();
          out->fields.emplace_back(std::move(key), JsonValue{});
          if (!parse_value(&out->fields.back().second, depth + 1)) {
            return false;
          }
          skip_ws();
          if (p_ == end_) return fail("unterminated object");
          if (*p_ == ',') {
            ++p_;
            continue;
          }
          if (*p_ == '}') {
            ++p_;
            return true;
          }
          return fail("expected ',' or '}' in object");
        }
      }
      default: {
        // Number. from_chars is the exact inverse of the writer's
        // to_chars shortest form, so journal values reprint bit-exactly.
        out->kind = JsonValue::Kind::Number;
        auto res = std::from_chars(p_, end_, out->num);
        if (res.ec != std::errc() || res.ptr == p_) {
          return fail("invalid number");
        }
        p_ = res.ptr;
        return true;
      }
    }
  }

  const char* p_;
  const char* const end_;
  const char* const start_ptr_ = p_;
  std::string* error_;
};

}  // namespace json_detail

/// Parses `text` into *out. On failure returns false and, when `error` is
/// non-null, describes the first problem (with a byte offset).
inline bool parse_json(std::string_view text, JsonValue* out,
                       std::string* error = nullptr) {
  *out = JsonValue{};
  if (error != nullptr) error->clear();
  json_detail::Parser parser(text, error);
  return parser.parse(out);
}

}  // namespace foray::util
