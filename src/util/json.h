// A minimal streaming JSON writer.
//
// Just enough for the machine-readable outputs this project emits
// (`foraygen batch --json`, the bench BENCH_*.json files): objects,
// arrays, strings with escaping, integers, doubles and booleans, with
// comma placement handled by the writer. No reflection, no DOM — the
// caller drives the structure and the writer keeps it syntactically
// valid.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace foray::util {

class JsonWriter {
 public:
  std::string take() { return std::move(out_); }
  const std::string& str() const { return out_; }

  JsonWriter& begin_object() {
    comma();
    out_ += '{';
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_object() {
    out_ += '}';
    fresh_ = false;
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    out_ += '[';
    fresh_ = true;
    return *this;
  }
  JsonWriter& end_array() {
    out_ += ']';
    fresh_ = false;
    return *this;
  }

  /// Object key; follow with exactly one value (or container).
  JsonWriter& key(std::string_view k) {
    comma();
    append_string(k);
    out_ += ':';
    fresh_ = true;  // the upcoming value needs no comma
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    append_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    if (std::isfinite(v)) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.6g", v);
      out_ += buf;
    } else {
      out_ += "null";  // JSON has no NaN/Inf
    }
    return *this;
  }
  JsonWriter& value(int64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<uint64_t>(v)); }

 private:
  void comma() {
    if (!fresh_) out_ += ',';
    fresh_ = false;
  }

  void append_string(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c) & 0xff);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool fresh_ = true;
};

}  // namespace foray::util
