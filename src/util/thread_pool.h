// A small fixed-size worker pool for the sweep driver.
//
// Work items are plain std::function<void()>; submission never blocks
// (the queue is unbounded) and wait_idle() lets a producer run a batch to
// completion without destroying the pool. Workers may submit follow-up
// work themselves — a task enqueued from inside a running job is counted
// before that job retires, so wait_idle() only returns once the whole
// task graph has drained (driver::SweepDriver fans per-job solve groups
// out this way). Determinism is the caller's job: workers race, so jobs
// must write to disjoint, pre-allocated slots (see driver::SweepDriver,
// which indexes results by grid point).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace foray::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 is clamped to 1. A single-threaded pool
  /// still runs jobs on its one worker, so caller code is identical for
  /// the sequential reference run and the parallel run.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one job. Jobs must not throw; a throwing job aborts via
  /// std::terminate (workers have no recovery story — catch in the job).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished running.
  void wait_idle();

  size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: queue non-empty/stop
  std::condition_variable idle_cv_;   ///< signals waiters: everything drained
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  ///< popped but not yet finished
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace foray::util
