// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the repository (workload generators, property
// tests, the MiniC `rand()` intrinsic) draw from this splitmix64-based
// generator so that every benchmark and test is reproducible bit-for-bit
// across platforms, independent of libc's rand().
#pragma once

#include <cstdint>

namespace foray::util {

/// Deterministic 64-bit PRNG (splitmix64). Cheap, full-period over the
/// seed sequence, and identical everywhere — unlike std::mt19937 whose
/// distribution adapters vary across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  int64_t next_in(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5);

 private:
  uint64_t state_;
};

}  // namespace foray::util
