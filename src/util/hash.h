// Content hashing for cache keys.
//
// FNV-1a 64-bit: the same tiny, dependency-free hash the simulator
// already uses for memory digests. It is NOT cryptographic — a cache
// keyed by it trusts its inputs (local program sources and option
// fingerprints), and every entry is still format-validated on load, so
// a collision costs a recompute, never a wrong answer.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace foray::util {

inline constexpr uint64_t kFnv1aOffset = 14695981039346656037ull;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ull;

inline uint64_t fnv1a(std::string_view data, uint64_t h = kFnv1aOffset) {
  for (const char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

/// Fixed-width (16 digit) lower-case hex — stable, filesystem-safe.
inline std::string hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

}  // namespace foray::util
