#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace foray::util {

std::string to_hex(uint64_t v) {
  char buf[20];
  int n = std::snprintf(buf, sizeof buf, "%llx",
                        static_cast<unsigned long long>(v));
  return std::string(buf, static_cast<size_t>(n));
}

bool parse_hex(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (ec != std::errc() || p != s.data() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_i64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  int64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 10);
  if (ec != std::errc() || p != s.data() + s.size()) return false;
  *out = v;
  return true;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

int count_lines(std::string_view s) {
  if (s.empty()) return 0;
  int n = 0;
  for (char c : s)
    if (c == '\n') ++n;
  if (s.back() != '\n') ++n;
  return n;
}

std::string pct(double numer, double denom) {
  if (denom == 0.0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * numer / denom);
  return buf;
}

std::string human_count(uint64_t n) {
  char buf[32];
  if (n >= 10'000'000ull) {
    std::snprintf(buf, sizeof buf, "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 1'000'000ull) {
    std::snprintf(buf, sizeof buf, "%.2fM", static_cast<double>(n) / 1e6);
  } else if (n >= 10'000ull) {
    std::snprintf(buf, sizeof buf, "%.1fK", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

std::string pad_left(std::string s, size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string pad_right(std::string s, size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::str() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out += "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      out += ' ';
      out += pad_right(c < cells.size() ? cells[c] : "", widths[c]);
      out += " |";
    }
    out += '\n';
  };
  emit_row(headers_);
  out += "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(widths[c] + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace foray::util
