// Named fault-injection points.
//
// Robustness claims ("a sink I/O error yields a clean io_error row and a
// resumable journal") are only testable if the failure can actually be
// made to happen. This registry provides named sites compiled into the
// production binary but costing a single relaxed atomic load when no
// fault is armed; tests/fault_injection_test and the FORAY_FAULT
// environment variable arm them.
//
// A spec is a comma- or semicolon-separated list of site triggers:
//
//   site[:skip=N][:count=M][:param=P]
//
//   skip   fire only after the site has been hit N times (default 0)
//   count  fire at most M times, then disarm (default unlimited)
//   param  integer payload the site interprets (e.g. sleep millis)
//
// e.g. FORAY_FAULT="sweep.sink.io:skip=2:count=1" fails the third sink
// write and nothing else. Unknown site names are configuration errors —
// a typo must not silently inject nothing.
//
// Sites are consulted at chunk/solve frequency, never per record or per
// instruction, so arming a fault does not change hot-loop codegen.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace foray::util::fault {

/// The outcome of consulting a site: whether the fault fires now, and
/// the armed trigger's integer payload.
struct Hit {
  bool fired = false;
  uint64_t param = 0;
};

/// True when any site is armed (one relaxed atomic load — the only cost
/// paid on unfaulted runs). Callers gate their hit() calls on this.
bool enabled();

/// Consults a site, consuming one trigger when it fires. Thread-safe.
/// FORAY_CHECKs that `site` names a registered site.
Hit hit(std::string_view site);

inline bool should_fail(std::string_view site) { return hit(site).fired; }

/// Every registered site name, in a stable order — the fault-injection
/// test iterates this to prove each site has coverage.
std::vector<std::string> all_sites();

/// Arms sites from a spec string (see the header comment). Replaces any
/// previous configuration, including one read from FORAY_FAULT. Returns
/// invalid_input on bad syntax or an unknown site name.
Status configure(std::string_view spec);

/// Disarms every site (tests call this in teardown).
void reset();

}  // namespace foray::util::fault
