// Small string helpers used across the library (formatting of addresses,
// table rendering for the benchmark harness, splitting for trace readers).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace foray::util {

/// Lower-case hexadecimal rendering without 0x prefix, e.g. 4002a0.
std::string to_hex(uint64_t v);

/// Parse hexadecimal (no prefix). Returns false on bad input.
bool parse_hex(std::string_view s, uint64_t* out);

/// Parse signed decimal. Returns false on bad input.
bool parse_i64(std::string_view s, int64_t* out);

/// Split on any run of whitespace; no empty tokens.
std::vector<std::string_view> split_ws(std::string_view s);

/// Split on a single character; keeps empty tokens.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Strip leading/trailing spaces and tabs.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Count '\n'-terminated lines; a trailing partial line counts as one.
int count_lines(std::string_view s);

/// Render "12.3%" style percentage with one decimal.
std::string pct(double numer, double denom);

/// Human-readable access counts: 123, 45.6K, 8.3M.
std::string human_count(uint64_t n);

/// Fixed-width left/right aligned cell used by table printers.
std::string pad_left(std::string s, size_t width);
std::string pad_right(std::string s, size_t width);

/// Simple markdown-ish table printer used by the bench binaries so every
/// reproduced table has a uniform look.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  /// Render with column widths fitted to content.
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace foray::util
