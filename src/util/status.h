// Minimal status / error-reporting primitives shared by all modules.
//
// MiniC front-end and analysis passes report user-facing problems through
// Diag / DiagList rather than exceptions; exceptions are reserved for
// programming errors (violated invariants) via FORAY_CHECK.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace foray::util {

/// A single diagnostic attached to a source location.
struct Diag {
  int line = 0;          ///< 1-based source line; 0 when not applicable.
  std::string message;

  std::string str() const {
    std::ostringstream os;
    if (line > 0) os << "line " << line << ": ";
    os << message;
    return os.str();
  }
};

/// Accumulates diagnostics during a pass; a pass succeeds iff empty.
class DiagList {
 public:
  void add(int line, std::string message) {
    diags_.push_back(Diag{line, std::move(message)});
  }
  bool empty() const { return diags_.empty(); }
  size_t size() const { return diags_.size(); }
  const std::vector<Diag>& all() const { return diags_; }

  /// All diagnostics joined with newlines (for test failure messages).
  std::string str() const {
    std::string out;
    for (const auto& d : diags_) {
      out += d.str();
      out += '\n';
    }
    return out;
  }

 private:
  std::vector<Diag> diags_;
};

/// The shared outcome type of pipeline phases and simulator runs: success,
/// or a phase label plus the diagnostics that explain the failure. Replaces
/// the `bool ok + std::string error` pairs that used to be duplicated across
/// result structs, so every layer reports source lines the same way.
class Status {
 public:
  Status() = default;  ///< success

  static Status failure(std::string phase, DiagList diags) {
    Status s;
    s.phase_ = std::move(phase);
    s.diags_ = std::move(diags);
    if (s.diags_.empty()) s.diags_.add(0, "unknown error");
    return s;
  }
  static Status failure(std::string phase, int line, std::string message) {
    DiagList d;
    d.add(line, std::move(message));
    return failure(std::move(phase), std::move(d));
  }

  bool ok() const { return diags_.empty(); }
  /// Which phase failed ("parse", "sema", "simulation", ...); empty on ok.
  const std::string& phase() const { return phase_; }
  const DiagList& diags() const { return diags_; }
  /// 1-based source line of the first diagnostic; 0 when not applicable.
  int first_line() const {
    return diags_.empty() ? 0 : diags_.all().front().line;
  }

  /// Human-readable rendering: "" on ok, "<phase> error: line N: msg" for a
  /// single diagnostic, multi-line for several.
  std::string message() const {
    if (ok()) return "";
    std::string out = phase_.empty() ? "error" : phase_ + " error";
    if (diags_.size() == 1) return out + ": " + diags_.all().front().str();
    return out + ":\n" + diags_.str();
  }

 private:
  std::string phase_;
  DiagList diags_;
};

/// Thrown when an internal invariant is violated. Indicates a bug in this
/// library, never a malformed user program.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

}  // namespace foray::util

#define FORAY_CHECK(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw ::foray::util::InternalError(std::string("FORAY_CHECK " \
                                                     "failed: ") +    \
                                         (msg));                      \
    }                                                                 \
  } while (0)
