// Minimal status / error-reporting primitives shared by all modules.
//
// MiniC front-end and analysis passes report user-facing problems through
// Diag / DiagList rather than exceptions; exceptions are reserved for
// programming errors (violated invariants) via FORAY_CHECK.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace foray::util {

/// Coarse failure classification shared by every layer. The class — not
/// the message — decides policy: the CLI exit code, whether the sweep
/// driver retries a point (transient classes only), and how a service
/// should surface the failure. Messages stay free-form.
enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidInput,        ///< malformed program/trace/spec — the user's fault
  kResourceExhausted,   ///< a budget tripped: steps, records, memory, output
  kDeadlineExceeded,    ///< wall-clock budget expired
  kInternal,            ///< a bug in this library (violated invariant)
  kIoError,             ///< the outside world failed: truncated/unwritable
  kCancelled,           ///< cooperative cancellation token fired
};

/// Stable lower-case name of a code ("invalid_input", ...), as rendered
/// into NDJSON `error_class` fields and the README taxonomy table.
const char* code_name(ErrorCode code);

/// A single diagnostic attached to a source location.
struct Diag {
  int line = 0;          ///< 1-based source line; 0 when not applicable.
  std::string message;

  std::string str() const {
    std::ostringstream os;
    if (line > 0) os << "line " << line << ": ";
    os << message;
    return os.str();
  }
};

/// Accumulates diagnostics during a pass; a pass succeeds iff empty.
class DiagList {
 public:
  void add(int line, std::string message) {
    diags_.push_back(Diag{line, std::move(message)});
  }
  bool empty() const { return diags_.empty(); }
  size_t size() const { return diags_.size(); }
  const std::vector<Diag>& all() const { return diags_; }

  /// All diagnostics joined with newlines (for test failure messages).
  std::string str() const {
    std::string out;
    for (const auto& d : diags_) {
      out += d.str();
      out += '\n';
    }
    return out;
  }

 private:
  std::vector<Diag> diags_;
};

/// The shared outcome type of pipeline phases and simulator runs: success,
/// or a phase label plus the diagnostics that explain the failure. Replaces
/// the `bool ok + std::string error` pairs that used to be duplicated across
/// result structs, so every layer reports source lines the same way.
class Status {
 public:
  Status() = default;  ///< success

  static Status failure(ErrorCode code, std::string phase, DiagList diags) {
    Status s;
    s.code_ = code == ErrorCode::kOk ? ErrorCode::kInternal : code;
    s.phase_ = std::move(phase);
    s.diags_ = std::move(diags);
    if (s.diags_.empty()) s.diags_.add(0, "unknown error");
    return s;
  }
  static Status failure(ErrorCode code, std::string phase, int line,
                        std::string message) {
    DiagList d;
    d.add(line, std::move(message));
    return failure(code, std::move(phase), std::move(d));
  }
  /// Legacy unclassified factories: anything not explicitly classified is
  /// conservatively internal (a bug), never silently a user error.
  static Status failure(std::string phase, DiagList diags) {
    return failure(ErrorCode::kInternal, std::move(phase), std::move(diags));
  }
  static Status failure(std::string phase, int line, std::string message) {
    return failure(ErrorCode::kInternal, std::move(phase), line,
                   std::move(message));
  }

  bool ok() const { return diags_.empty(); }
  ErrorCode code() const { return ok() ? ErrorCode::kOk : code_; }
  /// code_name(code()): "ok", "invalid_input", ...
  const char* code_name() const { return util::code_name(code()); }
  /// Which phase failed ("parse", "sema", "simulation", ...); empty on ok.
  const std::string& phase() const { return phase_; }
  const DiagList& diags() const { return diags_; }
  /// 1-based source line of the first diagnostic; 0 when not applicable.
  int first_line() const {
    return diags_.empty() ? 0 : diags_.all().front().line;
  }

  /// Human-readable rendering: "" on ok, "<phase> error: line N: msg" for a
  /// single diagnostic, multi-line for several.
  std::string message() const {
    if (ok()) return "";
    std::string out = phase_.empty() ? "error" : phase_ + " error";
    if (diags_.size() == 1) return out + ": " + diags_.all().front().str();
    return out + ":\n" + diags_.str();
  }

 private:
  std::string phase_;
  DiagList diags_;
  ErrorCode code_ = ErrorCode::kOk;
};

inline const char* code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidInput: return "invalid_input";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kCancelled: return "cancelled";
  }
  return "internal";
}

/// Thrown when an internal invariant is violated. Indicates a bug in this
/// library, never a malformed user program.
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// An exception that carries a fully-classified Status across layers that
/// cannot return one — above all the trace sinks, which run inside an
/// engine's guarded execution and may not depend on sim::RuntimeError.
/// execute_guarded, Session::run and the sweep's solve_point all catch it
/// and surface the carried Status verbatim, code included.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.message()), status_(std::move(status)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace foray::util

#define FORAY_CHECK(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw ::foray::util::InternalError(std::string("FORAY_CHECK " \
                                                     "failed: ") +    \
                                         (msg));                      \
    }                                                                 \
  } while (0)
