#include "util/fault.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "util/strings.h"

namespace foray::util::fault {

namespace {

// The registry is a fixed list: a site is part of the robustness
// contract (tests iterate all_sites()), so adding one is a deliberate,
// reviewed act, not a side effect of a stray string.
constexpr const char* kKnownSites[] = {
    "trace.buffer.alloc",   // trace-chunk buffer growth fails (ENOMEM)
    "trace.chunk.corrupt",  // a persisted trace chunk reads back corrupt
    "sim.slow",             // the simulated program stalls (param: ms/flush)
    "sweep.sink.io",        // the NDJSON sink write fails (EIO/ENOSPC)
    "spm.solve",            // Phase II solver dies mid-point
};

struct SiteState {
  bool armed = false;
  uint64_t skip = 0;       // hits to pass through before firing
  int64_t remaining = -1;  // fires left; <0 = unlimited
  uint64_t param = 0;
};

constexpr size_t kNumSites = sizeof(kKnownSites) / sizeof(kKnownSites[0]);

std::atomic<bool> g_enabled{false};
std::mutex g_mutex;
SiteState g_sites[kNumSites];
std::once_flag g_env_once;

int site_index(std::string_view name) {
  for (size_t i = 0; i < kNumSites; ++i) {
    if (name == kKnownSites[i]) return static_cast<int>(i);
  }
  return -1;
}

Status configure_locked(std::string_view spec) {
  for (auto& s : g_sites) s = SiteState{};
  bool any = false;
  for (std::string_view entry : split(spec, ';')) {
    for (std::string_view trig : split(entry, ',')) {
      trig = trim(trig);
      if (trig.empty()) continue;
      auto fields = split(trig, ':');
      const int idx = site_index(trim(fields[0]));
      if (idx < 0) {
        return Status::failure(ErrorCode::kInvalidInput, "fault-spec", 0,
                               "unknown fault site '" +
                                   std::string(trim(fields[0])) + "'");
      }
      SiteState st;
      st.armed = true;
      for (size_t f = 1; f < fields.size(); ++f) {
        const std::string_view kv = trim(fields[f]);
        const size_t eq = kv.find('=');
        const std::string_view key =
            eq == std::string_view::npos ? kv : kv.substr(0, eq);
        int64_t v = 0;
        if (eq == std::string_view::npos ||
            !parse_i64(kv.substr(eq + 1), &v) || v < 0) {
          return Status::failure(ErrorCode::kInvalidInput, "fault-spec", 0,
                                 "bad fault trigger field '" +
                                     std::string(kv) + "'");
        }
        if (key == "skip") {
          st.skip = static_cast<uint64_t>(v);
        } else if (key == "count") {
          st.remaining = v;
        } else if (key == "param") {
          st.param = static_cast<uint64_t>(v);
        } else {
          return Status::failure(ErrorCode::kInvalidInput, "fault-spec", 0,
                                 "unknown fault trigger field '" +
                                     std::string(key) + "'");
        }
      }
      g_sites[idx] = st;
      any = true;
    }
  }
  g_enabled.store(any, std::memory_order_relaxed);
  return Status();
}

void load_env_spec() {
  const char* env = std::getenv("FORAY_FAULT");
  if (env == nullptr || env[0] == '\0') return;
  std::lock_guard<std::mutex> lock(g_mutex);
  // A malformed env spec must not be silently ignored — fail loudly.
  Status st = configure_locked(env);
  FORAY_CHECK(st.ok(), "FORAY_FAULT: " + st.message());
}

}  // namespace

bool enabled() {
  std::call_once(g_env_once, load_env_spec);
  return g_enabled.load(std::memory_order_relaxed);
}

Hit hit(std::string_view site) {
  if (!enabled()) return Hit{};
  const int idx = site_index(site);
  FORAY_CHECK(idx >= 0, "unregistered fault site '" + std::string(site) + "'");
  std::lock_guard<std::mutex> lock(g_mutex);
  SiteState& st = g_sites[idx];
  if (!st.armed) return Hit{};
  if (st.skip > 0) {
    --st.skip;
    return Hit{};
  }
  if (st.remaining == 0) return Hit{};
  if (st.remaining > 0) --st.remaining;
  return Hit{true, st.param};
}

std::vector<std::string> all_sites() {
  return std::vector<std::string>(kKnownSites, kKnownSites + kNumSites);
}

Status configure(std::string_view spec) {
  std::call_once(g_env_once, [] {});  // a test config overrides the env
  std::lock_guard<std::mutex> lock(g_mutex);
  return configure_locked(spec);
}

void reset() {
  std::call_once(g_env_once, [] {});
  std::lock_guard<std::mutex> lock(g_mutex);
  for (auto& s : g_sites) s = SiteState{};
  g_enabled.store(false, std::memory_order_relaxed);
}

}  // namespace foray::util::fault
