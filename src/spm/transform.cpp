#include "spm/transform.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "foray/emitter.h"
#include "util/strings.h"

namespace foray::spm {

namespace {

struct RefLayout {
  int64_t rebased_base = 0;  ///< base after rebasing to a zero-origin array
  int64_t array_len = 0;
  // Split data (selected refs only).
  int split = 0;             ///< index of first inner coefficient
  int64_t inner_min = 0;
  int64_t inner_span = 0;    ///< SPM buffer size in bytes
};

RefLayout layout_of(const core::ModelReference& ref, int level) {
  RefLayout lo;
  auto coefs = ref.emitted_coefs();
  auto trips = ref.emitted_trips();
  int64_t min_off = 0, max_off = 0;
  for (size_t i = 0; i < coefs.size(); ++i) {
    const int64_t reach = coefs[i] * std::max<int64_t>(trips[i] - 1, 0);
    (reach < 0 ? min_off : max_off) += reach;
  }
  lo.rebased_base = -min_off;
  lo.array_len = max_off - min_off + ref.access_size;
  if (level > 0) {
    lo.split = static_cast<int>(coefs.size()) - level;
    int64_t imin = 0, imax = 0;
    for (size_t i = static_cast<size_t>(lo.split); i < coefs.size(); ++i) {
      const int64_t reach = coefs[i] * std::max<int64_t>(trips[i] - 1, 0);
      (reach < 0 ? imin : imax) += reach;
    }
    lo.inner_min = imin;
    lo.inner_span = imax - imin + ref.access_size;
  }
  return lo;
}

std::string var(size_t ref_idx, size_t level_idx) {
  return "i" + std::to_string(ref_idx) + "_" + std::to_string(level_idx);
}

/// Renders base + sum of coefficient terms over [from, to).
std::string terms(size_t ref_idx, int64_t base,
                  const std::vector<int64_t>& coefs, size_t from,
                  size_t to) {
  std::ostringstream os;
  os << base;
  for (size_t i = from; i < to; ++i) {
    if (coefs[i] == 0) continue;
    os << (coefs[i] > 0 ? " + " : " - ")
       << (coefs[i] > 0 ? coefs[i] : -coefs[i]) << " * "
       << var(ref_idx, i);
  }
  return os.str();
}

}  // namespace

std::string emit_transformed(const core::ForayModel& model,
                             const Selection& selection,
                             const TransformOptions& opts) {
  std::map<size_t, int> selected_level;
  for (const auto& c : selection.chosen) {
    selected_level[c.ref_index] = c.level;
  }

  auto names = core::assign_array_names(model);
  std::ostringstream os;
  os << "// Transformed FORAY model (Phase II output): selected\n"
        "// references access scratch-pad buffers; fill/writeback loops\n"
        "// perform the SPM<->main-memory transfers.\n";

  std::vector<RefLayout> layouts;
  for (size_t i = 0; i < model.refs.size(); ++i) {
    auto it = selected_level.find(i);
    const int level = it == selected_level.end() ? 0 : it->second;
    RefLayout lo = layout_of(model.refs[i], level);
    if (opts.metadata_comments) {
      os << "// " << core::describe_reference(model.refs[i]);
      if (level > 0) {
        os << "  [SPM buffer: level " << level << ", " << lo.inner_span
           << "B]";
      }
      os << "\n";
    }
    os << "char " << names[i] << "[" << lo.array_len << "];\n";
    if (level > 0) {
      os << "char " << opts.buffer_prefix << names[i] << "["
         << lo.inner_span << "];\n";
    }
    layouts.push_back(lo);
  }
  os << "int foray_acc;\n\nint main(void) {\n";

  for (size_t i = 0; i < model.refs.size(); ++i) {
    const auto& ref = model.refs[i];
    const RefLayout& lo = layouts[i];
    auto coefs = ref.emitted_coefs();
    auto trips = ref.emitted_trips();
    auto it = selected_level.find(i);
    const int level = it == selected_level.end() ? 0 : it->second;
    const size_t split = static_cast<size_t>(lo.split);
    const std::string spm = opts.buffer_prefix + names[i];

    os << "  { // reference " << names[i]
       << (level > 0 ? " (SPM-buffered)" : " (main memory)") << "\n";
    std::string pad = "    ";
    // Outer loops (all of them for unbuffered references).
    const size_t outer_end = level > 0 ? split : coefs.size();
    for (size_t d = 0; d < outer_end; ++d) {
      os << pad << "for (int " << var(i, d) << " = 0; " << var(i, d)
         << " < " << trips[d] << "; " << var(i, d) << "++) {\n";
      pad += "  ";
    }
    if (level > 0) {
      const std::string outer_base =
          terms(i, lo.rebased_base + lo.inner_min, coefs, 0, split);
      // Fill.
      os << pad << "{ int base = " << outer_base << ";\n";
      os << pad << "  for (int f = 0; f < " << lo.inner_span
         << "; f++) " << spm << "[f] = " << names[i] << "[base + f]; }\n";
      // Inner loops accessing the buffer.
      std::string ipad = pad;
      for (size_t d = split; d < coefs.size(); ++d) {
        os << ipad << "for (int " << var(i, d) << " = 0; " << var(i, d)
           << " < " << trips[d] << "; " << var(i, d) << "++) {\n";
        ipad += "  ";
      }
      const std::string inner_index =
          terms(i, -lo.inner_min, coefs, split, coefs.size());
      if (ref.has_write) {
        os << ipad << spm << "[" << inner_index << "] = 1;\n";
      } else {
        os << ipad << "foray_acc += " << spm << "[" << inner_index
           << "];\n";
      }
      for (size_t d = coefs.size(); d-- > split;) {
        ipad.resize(ipad.size() - 2);
        os << ipad << "}\n";
      }
      // Writeback for dirty buffers.
      if (ref.has_write) {
        os << pad << "{ int base = " << outer_base << ";\n";
        os << pad << "  for (int f = 0; f < " << lo.inner_span
           << "; f++) " << names[i] << "[base + f] = " << spm
           << "[f]; }\n";
      }
    } else {
      const std::string full_index =
          terms(i, lo.rebased_base, coefs, 0, coefs.size());
      if (ref.has_write) {
        os << pad << names[i] << "[" << full_index << "] = 1;\n";
      } else {
        os << pad << "foray_acc += " << names[i] << "[" << full_index
           << "];\n";
      }
    }
    for (size_t d = outer_end; d-- > 0;) {
      pad.resize(pad.size() - 2);
      os << pad << "}\n";
    }
    os << "  }\n";
  }
  os << "  return 0;\n}\n";
  return os.str();
}

}  // namespace foray::spm
