#include "spm/transform.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "foray/emitter.h"
#include "util/strings.h"

namespace foray::spm {

namespace {

struct RefLayout {
  int64_t rebased_base = 0;  ///< base after rebasing to a zero-origin array
  int64_t array_len = 0;
  // Split data (selected refs only).
  int split = 0;             ///< index of first inner coefficient
  int64_t inner_min = 0;
  int64_t inner_span = 0;    ///< SPM buffer size in bytes
  // Sliding-window data: the loop just outside the buffered span advances
  // the window by `step` bytes per iteration; when 0 < step < span the
  // buffer is kept resident as a circular window and refills load only
  // the fresh delta (matching what candidate_at charges analytically).
  int64_t step = 0;          ///< signed window advance per fill-loop iter
  bool sliding = false;
};

RefLayout layout_of(const core::ModelReference& ref, int level) {
  RefLayout lo;
  auto coefs = ref.emitted_coefs();
  auto trips = ref.emitted_trips();
  // Degenerate geometry guard: a level outside [0, M] would split the
  // nest out of range (callers normally pass candidate levels, which are
  // in range by construction).
  level = std::clamp(level, 0, static_cast<int>(coefs.size()));
  // One byte minimum even for a zero-sized access (which real traces
  // cannot produce): never emit a zero-length array, and clamp exactly
  // like candidate_at so the sliding predicate and fill sizes the two
  // sides compute can never diverge.
  const int64_t access = std::max<int64_t>(ref.access_size, 1);
  int64_t min_off = 0, max_off = 0;
  for (size_t i = 0; i < coefs.size(); ++i) {
    const int64_t reach = coefs[i] * std::max<int64_t>(trips[i] - 1, 0);
    (reach < 0 ? min_off : max_off) += reach;
  }
  lo.rebased_base = -min_off;
  lo.array_len = max_off - min_off + access;
  if (level > 0) {
    lo.split = static_cast<int>(coefs.size()) - level;
    int64_t imin = 0, imax = 0;
    for (size_t i = static_cast<size_t>(lo.split); i < coefs.size(); ++i) {
      const int64_t reach = coefs[i] * std::max<int64_t>(trips[i] - 1, 0);
      (reach < 0 ? imin : imax) += reach;
    }
    lo.inner_min = imin;
    lo.inner_span = imax - imin + access;
    if (lo.split > 0) {
      lo.step = coefs[static_cast<size_t>(lo.split) - 1];
      const int64_t astep = std::llabs(lo.step);
      // The same condition candidate_at uses for its sliding-window
      // traffic model; emission and analytics must agree on it.
      lo.sliding = astep > 0 && astep < lo.inner_span;
    }
  }
  return lo;
}

std::string var(size_t ref_idx, size_t level_idx) {
  return "i" + std::to_string(ref_idx) + "_" + std::to_string(level_idx);
}

/// Renders base + sum of coefficient terms over [from, to).
std::string terms(size_t ref_idx, int64_t base,
                  const std::vector<int64_t>& coefs, size_t from,
                  size_t to) {
  std::ostringstream os;
  os << base;
  for (size_t i = from; i < to; ++i) {
    if (coefs[i] == 0) continue;
    os << (coefs[i] > 0 ? " + " : " - ")
       << (coefs[i] > 0 ? coefs[i] : -coefs[i]) << " * "
       << var(ref_idx, i);
  }
  return os.str();
}

}  // namespace

std::string emit_transformed(const core::ForayModel& model,
                             const Selection& selection,
                             const TransformOptions& opts) {
  std::map<size_t, int> selected_level;
  for (const auto& c : selection.chosen) {
    selected_level[c.ref_index] = c.level;
  }

  auto names = core::assign_array_names(model);
  std::ostringstream os;
  os << "// Transformed FORAY model (Phase II output): selected\n"
        "// references access scratch-pad buffers; fill/writeback loops\n"
        "// perform the SPM<->main-memory transfers.\n";

  std::vector<RefLayout> layouts;
  for (size_t i = 0; i < model.refs.size(); ++i) {
    auto it = selected_level.find(i);
    const int level = it == selected_level.end() ? 0 : it->second;
    RefLayout lo = layout_of(model.refs[i], level);
    if (opts.metadata_comments) {
      os << "// " << core::describe_reference(model.refs[i]);
      if (level > 0) {
        os << "  [SPM buffer: level " << level << ", " << lo.inner_span
           << "B" << (lo.sliding ? ", sliding window" : "") << "]";
      }
      os << "\n";
    }
    os << "char " << names[i] << "[" << lo.array_len << "];\n";
    if (level > 0) {
      os << "char " << opts.buffer_prefix << names[i] << "["
         << lo.inner_span << "];\n";
    }
    layouts.push_back(lo);
  }
  os << "int foray_acc;\n\nint main(void) {\n";

  for (size_t i = 0; i < model.refs.size(); ++i) {
    const auto& ref = model.refs[i];
    const RefLayout& lo = layouts[i];
    auto coefs = ref.emitted_coefs();
    auto trips = ref.emitted_trips();
    auto it = selected_level.find(i);
    const int level = it == selected_level.end() ? 0 : it->second;
    const size_t split = static_cast<size_t>(lo.split);
    const std::string spm = opts.buffer_prefix + names[i];

    os << "  { // reference " << names[i]
       << (level > 0 ? " (SPM-buffered)" : " (main memory)") << "\n";
    std::string pad = "    ";
    // Outer loops (all of them for unbuffered references).
    const size_t outer_end = level > 0 ? split : coefs.size();
    for (size_t d = 0; d < outer_end; ++d) {
      os << pad << "for (int " << var(i, d) << " = 0; " << var(i, d)
         << " < " << trips[d] << "; " << var(i, d) << "++) {\n";
      pad += "  ";
    }

    /// `for (f = lo; f < hi; f++) dst = src;` — one transfer loop.
    /// `dst`/`src` are element expressions over `f`.
    auto copy_loop = [&](const std::string& cpad, int64_t f_lo,
                         int64_t f_hi, const std::string& dst,
                         const std::string& src) {
      os << cpad << "for (int f = " << f_lo << "; f < " << f_hi
         << "; f++) " << dst << " = " << src << ";\n";
    };
    /// The reference's own accesses: loops [from, M) around one
    /// access of `elem` (write refs store, read refs accumulate).
    auto access_nest = [&](size_t from, const std::string& elem) {
      std::string ipad = pad;
      for (size_t d = from; d < coefs.size(); ++d) {
        os << ipad << "for (int " << var(i, d) << " = 0; " << var(i, d)
           << " < " << trips[d] << "; " << var(i, d) << "++) {\n";
        ipad += "  ";
      }
      if (ref.has_write) {
        os << ipad << elem << " = 1;\n";
      } else {
        os << ipad << "foray_acc += " << elem << ";\n";
      }
      for (size_t d = coefs.size(); d-- > from;) {
        ipad.resize(ipad.size() - 2);
        os << ipad << "}\n";
      }
    };

    if (level > 0 && !lo.sliding) {
      const std::string outer_base =
          terms(i, lo.rebased_base + lo.inner_min, coefs, 0, split);
      const std::string spm_f = spm + "[f]";
      const std::string main_f = names[i] + "[base + f]";
      // Fill, buffered accesses, writeback for dirty buffers.
      os << pad << "{ int base = " << outer_base << ";\n";
      copy_loop(pad + "  ", 0, lo.inner_span, spm_f, main_f);
      os << pad << "}\n";
      access_nest(split, spm + "[" +
                             terms(i, -lo.inner_min, coefs, split,
                                   coefs.size()) +
                             "]");
      if (ref.has_write) {
        os << pad << "{ int base = " << outer_base << ";\n";
        copy_loop(pad + "  ", 0, lo.inner_span, main_f, spm_f);
        os << pad << "}\n";
      }
    } else if (level > 0) {
      // Sliding window: the loop at split-1 advances the window by
      // `step` bytes per iteration, so the buffer is kept as a circular
      // window keyed by absolute (rebased) byte address modulo the span
      // — the window is exactly span bytes wide, making that mapping
      // collision-free. The first iteration fills the whole window;
      // later iterations load only the fresh delta, and dirty windows
      // write back the outgoing delta as it slides out plus the final
      // resident window — exactly the traffic candidate_at predicts.
      const std::string fill_var = var(i, split - 1);
      const std::string outer_base =
          terms(i, lo.rebased_base + lo.inner_min, coefs, 0, split);
      const int64_t span = lo.inner_span;
      const int64_t astep = std::llabs(lo.step);
      const int64_t last = std::max<int64_t>(trips[split - 1] - 1, 0);
      const std::string spm_f =
          spm + "[(base + f) % " + std::to_string(span) + "]";
      const std::string main_f = names[i] + "[base + f]";
      // Fresh data enters at the high end of the window when it slides
      // upward, at the low end when a negative coefficient slides it
      // downward; the outgoing (evicted) delta is the opposite end.
      const int64_t fresh_lo = lo.step > 0 ? span - astep : 0;
      const int64_t fresh_hi = lo.step > 0 ? span : astep;
      os << pad << "{ int base = " << outer_base << ";\n";
      os << pad << "  if (" << fill_var << " == 0) {\n";
      copy_loop(pad + "    ", 0, span, spm_f, main_f);
      os << pad << "  } else {\n";
      copy_loop(pad + "    ", fresh_lo, fresh_hi, spm_f, main_f);
      os << pad << "  }\n" << pad << "}\n";
      // The buffered accesses index the circular window by absolute
      // (rebased) address.
      access_nest(split,
                  spm + "[(" +
                      terms(i, lo.rebased_base, coefs, 0, coefs.size()) +
                      ") % " + std::to_string(span) + "]");
      if (ref.has_write) {
        os << pad << "{ int base = " << outer_base << ";\n";
        os << pad << "  if (" << fill_var << " == " << last << ") {\n";
        copy_loop(pad + "    ", 0, span, main_f, spm_f);
        os << pad << "  } else {\n";
        // Outgoing delta: about to be overwritten by the next fill.
        copy_loop(pad + "    ", lo.step > 0 ? 0 : span - astep,
                  lo.step > 0 ? astep : span, main_f, spm_f);
        os << pad << "  }\n" << pad << "}\n";
      }
    } else {
      access_nest(outer_end,
                  names[i] + "[" +
                      terms(i, lo.rebased_base, coefs, 0, coefs.size()) +
                      "]");
    }
    for (size_t d = outer_end; d-- > 0;) {
      pad.resize(pad.size() - 2);
      os << pad << "}\n";
    }
    os << "  }\n";
  }
  os << "  return 0;\n}\n";
  return os.str();
}

}  // namespace foray::spm
