#include "spm/spm_sim.h"

#include <set>

#include "spm/address_stream.h"

namespace foray::spm {

EnergyReport evaluate_baseline(const core::ForayModel& model,
                               const EnergyModel& energy) {
  EnergyReport r;
  for (const auto& ref : model.refs) r.dram_accesses += ref.exec_count;
  r.baseline_nj = static_cast<double>(r.dram_accesses) * energy.dram_nj;
  r.total_nj = r.baseline_nj;
  return r;
}

EnergyReport evaluate_selection(const core::ForayModel& model,
                                const Selection& selection,
                                const DseOptions& opts) {
  EnergyReport r;
  std::set<size_t> selected;
  for (const auto& c : selection.chosen) selected.insert(c.ref_index);

  const double spm_nj = opts.energy.spm_access_nj(opts.spm_capacity);
  const double dram_nj = opts.energy.dram_nj;

  uint64_t total_accesses = 0;
  for (size_t i = 0; i < model.refs.size(); ++i) {
    total_accesses += model.refs[i].exec_count;
  }
  r.baseline_nj = static_cast<double>(total_accesses) * dram_nj;

  for (const auto& c : selection.chosen) {
    r.spm_accesses += c.spm_accesses;
    r.transfer_words += c.transfer_words;
  }
  for (size_t i = 0; i < model.refs.size(); ++i) {
    if (!selected.count(i)) r.dram_accesses += model.refs[i].exec_count;
  }
  r.total_nj = static_cast<double>(r.spm_accesses) * spm_nj +
               static_cast<double>(r.dram_accesses) * dram_nj +
               static_cast<double>(r.transfer_words) * (dram_nj + spm_nj);
  return r;
}

uint64_t replay_spm_accesses(const core::ForayModel& model,
                             const Selection& selection) {
  uint64_t n = 0;
  for (const auto& c : selection.chosen) {
    n += for_each_address(model.refs[c.ref_index], [](uint32_t) {});
  }
  return n;
}

}  // namespace foray::spm
