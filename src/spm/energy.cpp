#include "spm/energy.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/strings.h"

namespace foray::spm {

double EnergyModel::spm_access_nj(uint32_t bytes) const {
  const double kb = std::max<double>(bytes, 64.0) / 1024.0;
  const double doublings = std::max(0.0, std::log2(std::max(kb, 1.0)));
  return spm_1kb_nj + spm_doubling_nj * doublings;
}

double EnergyModel::cache_access_nj(uint32_t bytes, int assoc) const {
  const double base = spm_access_nj(bytes) * cache_overhead;
  return base + cache_way_overhead * spm_access_nj(bytes) *
                    std::max(0, assoc - 1);
}

const std::vector<EnergyPreset>& energy_presets() {
  static const std::vector<EnergyPreset> presets = [] {
    std::vector<EnergyPreset> p;
    p.push_back({"default", "Banakar-shaped reference numbers",
                 EnergyModel{}});
    EnergyModel dram_heavy;
    dram_heavy.dram_nj = 5.31;
    p.push_back({"dram-heavy",
                 "power-hungry off-chip interface (older SDRAM)",
                 dram_heavy});
    EnergyModel lowpower_dram;
    lowpower_dram.dram_nj = 2.31;
    p.push_back({"lowpower-dram", "low-power off-chip interface (LPDDR)",
                 lowpower_dram});
    EnergyModel fast_spm;
    fast_spm.spm_1kb_nj = 0.12;
    fast_spm.spm_doubling_nj = 0.03;
    p.push_back({"fast-spm", "denser process node, cheaper on-chip SRAM",
                 fast_spm});
    EnergyModel cache_costly;
    cache_costly.cache_overhead = 1.82;
    cache_costly.cache_way_overhead = 0.27;
    p.push_back({"cache-costly",
                 "expensive tag arrays / way muxing (wide lines)",
                 cache_costly});
    return p;
  }();
  return presets;
}

const EnergyPreset* find_energy_preset(std::string_view name) {
  for (const auto& p : energy_presets()) {
    if (name == p.name) return &p;
  }
  return nullptr;
}

bool set_energy_field(EnergyModel* model, std::string_view field,
                      double value) {
  if (field == "dram_nj") {
    model->dram_nj = value;
  } else if (field == "spm_1kb_nj") {
    model->spm_1kb_nj = value;
  } else if (field == "spm_doubling_nj") {
    model->spm_doubling_nj = value;
  } else if (field == "cache_overhead") {
    model->cache_overhead = value;
  } else if (field == "cache_way_overhead") {
    model->cache_way_overhead = value;
  } else {
    return false;
  }
  return true;
}

bool parse_energy_model(std::string_view spec, EnergyModel* out,
                        std::string* error) {
  const auto parts = util::split(spec, ':');
  const std::string name(parts.empty() ? std::string_view() : parts[0]);
  const EnergyPreset* preset = find_energy_preset(name);
  if (preset == nullptr) {
    if (error != nullptr) {
      *error = "unknown energy preset '" + name + "' (presets:";
      for (const auto& p : energy_presets()) {
        *error += ' ';
        *error += p.name;
      }
      *error += ')';
    }
    return false;
  }
  EnergyModel model = preset->model;
  for (size_t i = 1; i < parts.size(); ++i) {
    const auto kv = util::split(parts[i], '=');
    const std::string override_str(parts[i]);
    if (kv.size() != 2 || kv[0].empty() || kv[1].empty()) {
      if (error != nullptr) {
        *error = "bad energy override '" + override_str +
                 "' (want field=value)";
      }
      return false;
    }
    const std::string value_str(kv[1]);
    char* end = nullptr;
    const double value = std::strtod(value_str.c_str(), &end);
    // Non-finite values would poison every downstream counter (and the
    // Pareto sort), so they are spec errors, not numbers.
    if (end == value_str.c_str() || *end != '\0' || !std::isfinite(value)) {
      if (error != nullptr) {
        *error = "bad energy value in '" + override_str + "'";
      }
      return false;
    }
    if (!set_energy_field(&model, kv[0], value)) {
      if (error != nullptr) {
        *error = "unknown energy field '" + std::string(kv[0]) +
                 "' (fields: dram_nj spm_1kb_nj spm_doubling_nj "
                 "cache_overhead cache_way_overhead)";
      }
      return false;
    }
  }
  *out = model;
  return true;
}

}  // namespace foray::spm
