#include "spm/energy.h"

#include <algorithm>
#include <cmath>

namespace foray::spm {

double EnergyModel::spm_access_nj(uint32_t bytes) const {
  const double kb = std::max<double>(bytes, 64.0) / 1024.0;
  const double doublings = std::max(0.0, std::log2(std::max(kb, 1.0)));
  return spm_1kb_nj + spm_doubling_nj * doublings;
}

double EnergyModel::cache_access_nj(uint32_t bytes, int assoc) const {
  const double base = spm_access_nj(bytes) * cache_overhead;
  return base + cache_way_overhead * spm_access_nj(bytes) *
                    std::max(0, assoc - 1);
}

}  // namespace foray::spm
