#include "spm/address_stream.h"

namespace foray::spm {

std::vector<uint32_t> addresses_of(const core::ModelReference& ref,
                                   uint64_t limit) {
  std::vector<uint32_t> out;
  for_each_address(ref, [&](uint32_t a) {
    if (out.size() < limit) out.push_back(a);
  });
  return out;
}

}  // namespace foray::spm
