#include "spm/address_stream.h"

namespace foray::spm {

namespace {

/// Odometer sweep over `trips` (outermost-first), calling fn(iters).
uint64_t sweep(const std::vector<int64_t>& trips,
               const std::function<void(const std::vector<int64_t>&)>& fn) {
  const size_t n = trips.size();
  for (int64_t t : trips) {
    if (t <= 0) return 0;
  }
  std::vector<int64_t> it(n, 0);
  uint64_t count = 0;
  for (;;) {
    fn(it);
    ++count;
    if (n == 0) return count;
    // Innermost (last index) advances fastest.
    size_t i = n - 1;
    for (;;) {
      if (++it[i] < trips[i]) break;
      it[i] = 0;
      if (i == 0) return count;
      --i;
    }
  }
}

}  // namespace

uint64_t for_each_address(const core::ModelReference& ref,
                          const std::function<void(uint32_t)>& fn) {
  auto trips = ref.emitted_trips();
  auto coefs = ref.emitted_coefs();
  return sweep(trips, [&](const std::vector<int64_t>& it) {
    int64_t addr = ref.fn.const_term;
    for (size_t i = 0; i < coefs.size(); ++i) addr += coefs[i] * it[i];
    fn(static_cast<uint32_t>(addr));
  });
}

uint64_t for_each_address(const core::ForayModel& model,
                          const std::function<void(uint32_t)>& fn) {
  // Group references by emitted nest, then sweep each group once with
  // all its references interleaved per iteration.
  struct Group {
    std::vector<int64_t> trips;
    std::vector<size_t> refs;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < model.refs.size(); ++i) {
    auto path = model.refs[i].emitted_loop_path();
    auto trips = model.refs[i].emitted_trips();
    bool placed = false;
    for (auto& g : groups) {
      if (!g.refs.empty() &&
          model.refs[g.refs[0]].emitted_loop_path() == path &&
          g.trips == trips) {
        g.refs.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back(Group{trips, {i}});
  }

  uint64_t total = 0;
  for (const auto& g : groups) {
    total += static_cast<uint64_t>(g.refs.size()) *
             sweep(g.trips, [&](const std::vector<int64_t>& it) {
               for (size_t ri : g.refs) {
                 const auto& ref = model.refs[ri];
                 auto coefs = ref.emitted_coefs();
                 int64_t addr = ref.fn.const_term;
                 for (size_t i = 0; i < coefs.size(); ++i) {
                   addr += coefs[i] * it[i];
                 }
                 fn(static_cast<uint32_t>(addr));
               }
             });
  }
  return total;
}

std::vector<uint32_t> addresses_of(const core::ModelReference& ref,
                                   uint64_t limit) {
  std::vector<uint32_t> out;
  for_each_address(ref, [&](uint32_t a) {
    if (out.size() < limit) out.push_back(a);
  });
  return out;
}

}  // namespace foray::spm
