// Transform-replay validation (the Phase II exit check).
//
// Phase II ends with transformed FORAY model code (spm/transform.h) that
// the designer back-annotates into the legacy program — so it must be
// *correct*, not just plausible-looking. This module closes the loop:
// it emits the transformed program for a buffer selection, runs it
// through the full front end and the simulator with a classifying sink
// (sim/classify_sink.h), and locks the SPM / main-memory / transfer
// traffic the program *actually generates* against the analytic counters
// the design-space exploration was solved with (candidate_at,
// evaluate_selection). Any fill, write-back, sliding-window or rebasing
// slip — in the emitter or in the analytic model — becomes a concrete
// counter mismatch.
//
// Geometry note: the emitted program materializes each reference's nest
// exactly once with its recorded (maximum) trip counts, i.e. it is
// rectangular by construction, while ModelReference::exec_count is the
// *profiled* execution count (smaller for data-dependent trips, larger
// for partial references whose outer context re-runs the nest). The
// replay therefore locks the simulation against the analytic counters
// evaluated on the materialized geometry (exec_count := trip product) —
// bit-exact, always. When the model is rectangular (exec counts already
// equal the trip products, true for most kernels), those are verbatim
// the evaluate_selection counters the DSE and the cache comparison used,
// and ReplayReport::rectangular says so.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "foray/model.h"
#include "sim/interpreter.h"
#include "spm/dse.h"
#include "spm/energy.h"
#include "spm/transform.h"

namespace foray::spm {

struct ReplayOptions {
  TransformOptions transform;
  /// Simulator knobs for executing the transformed program; engine
  /// selection is honored, checkpoints are forced on (the classifying
  /// sink segments transfer events with them) and scalar/system traffic
  /// is not traced (the classification only consumes Data accesses).
  sim::RunOptions run;
  /// Energy parameters for the analytic evaluation (only the capacity
  /// and energy model matter; the DP granule is unused here).
  DseOptions dse;
};

/// One selected buffer's simulated-vs-analytic ledger.
struct ReplayBuffer {
  size_t ref_index = 0;
  int level = 0;
  bool sliding = false;
  // Simulated (classified) traffic.
  uint64_t sim_spm_accesses = 0;   ///< program accesses served by the SPM
  uint64_t sim_main_accesses = 0;  ///< program accesses that hit main (bug!)
  uint64_t sim_fill_events = 0;
  uint64_t sim_fill_bytes = 0;
  uint64_t sim_writeback_events = 0;
  uint64_t sim_writeback_bytes = 0;
  uint64_t sim_transfer_words = 0;
  // Analytic prediction on the materialized geometry.
  uint64_t ana_spm_accesses = 0;
  uint64_t ana_transfer_words = 0;
};

struct ReplayReport {
  /// Execution outcome: emitting, compiling or running the transformed
  /// program failed. Counter mismatches do NOT fail the status — they
  /// are listed in `mismatches`.
  util::Status status;
  bool ran = false;

  /// The emitted transformed program (for diagnostics and goldens).
  std::string source;

  std::vector<ReplayBuffer> buffers;

  // Whole-program simulated counters.
  uint64_t sim_spm_accesses = 0;
  uint64_t sim_main_accesses = 0;
  uint64_t sim_transfer_words = 0;
  /// Data accesses that fell outside every known array (must be 0).
  uint64_t unclassified_accesses = 0;

  // Analytic counters on the materialized (rectangular) geometry — what
  // the simulation is locked against.
  uint64_t ana_spm_accesses = 0;
  uint64_t ana_main_accesses = 0;
  uint64_t ana_transfer_words = 0;

  // evaluate_selection's counters on the profiled model, verbatim.
  uint64_t model_spm_accesses = 0;
  uint64_t model_main_accesses = 0;
  uint64_t model_transfer_words = 0;
  /// True when the profiled model is rectangular, i.e. the analytic
  /// counters above two groups coincide and the simulation is locked
  /// against evaluate_selection's numbers verbatim.
  bool rectangular = false;

  /// One line per divergence between simulated and analytic counters.
  std::vector<std::string> mismatches;

  /// Executed cleanly, every access classified, every counter equal.
  bool matches() const {
    return status.ok() && ran && unclassified_accesses == 0 &&
           mismatches.empty();
  }
};

/// Emits the transformed program for `selection`, executes it, and
/// returns the full simulated-vs-analytic ledger.
ReplayReport replay_selection(const core::ForayModel& model,
                              const Selection& selection,
                              const ReplayOptions& opts = {});

/// Deterministic human-readable rendering (CLI `spm --replay`, batch).
std::string describe_replay_report(const ReplayReport& report,
                                   const core::ForayModel& model);

}  // namespace foray::spm
