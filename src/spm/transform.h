// Phase II output: the *transformed* FORAY model code.
//
// The paper's Figure 3 flow ends Phase II with "FORAY model source code
// that is changed to access the scratch pad memory and perform the
// necessary data transfers between scratch pad buffers and main memory";
// the designer back-annotates exactly that into the legacy code (Phase
// III). This module emits that program: for every selected buffer the
// reference's nest gains a fill loop at the covered level and the access
// itself is redirected into the SPM buffer array; unselected references
// keep their main-memory form. The emitted program is valid MiniC — the
// tests execute it and check the SPM traffic it generates.
#pragma once

#include <string>

#include "foray/model.h"
#include "spm/dse.h"

namespace foray::spm {

struct TransformOptions {
  /// Prefix for SPM buffer array names in the emitted code.
  std::string buffer_prefix = "spm_";
  bool metadata_comments = true;
};

/// Emits the transformed FORAY model: selected references access their
/// SPM buffer (filled/written back at the covered loop level), the rest
/// stay on their main-memory arrays.
std::string emit_transformed(const core::ForayModel& model,
                             const Selection& selection,
                             const TransformOptions& opts = {});

}  // namespace foray::spm
