#include "spm/replay.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "foray/emitter.h"
#include "instrument/annotator.h"
#include "minic/parser.h"
#include "sim/classify_sink.h"
#include "spm/reuse.h"
#include "spm/spm_sim.h"

namespace foray::spm {

namespace {

/// Execution count of the emitted (rectangular, run-once) nest.
uint64_t trip_product(const core::ModelReference& ref) {
  uint64_t n = 1;
  for (int64_t t : ref.emitted_trips()) {
    if (t <= 0) return 0;
    n *= static_cast<uint64_t>(t);
  }
  return n;
}

/// The model as the emitted program realizes it: every reference's nest
/// runs exactly once with its recorded trip counts.
core::ForayModel materialize(const core::ForayModel& model) {
  core::ForayModel m = model;
  for (auto& ref : m.refs) ref.exec_count = trip_product(ref);
  return m;
}

void check_eq(std::vector<std::string>* mismatches, const std::string& what,
              uint64_t simulated, uint64_t analytic) {
  if (simulated == analytic) return;
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "%s: simulated %llu != analytic %llu", what.c_str(),
                static_cast<unsigned long long>(simulated),
                static_cast<unsigned long long>(analytic));
  mismatches->push_back(buf);
}

}  // namespace

ReplayReport replay_selection(const core::ForayModel& model,
                              const Selection& selection,
                              const ReplayOptions& opts) {
  ReplayReport report;
  report.source = emit_transformed(model, selection, opts.transform);

  // The emitted program through the same front end as any user program.
  util::DiagList diags;
  auto prog = minic::parse_and_check(report.source, &diags);
  if (!prog) {
    report.status = util::Status::failure("replay-frontend",
                                          std::move(diags));
    return report;
  }
  instrument::annotate_loops(prog.get());

  // Address map: every emitted array, with each selected reference's
  // main array paired to its spm_* buffer.
  auto names = core::assign_array_names(model);
  std::map<std::string, int> buffer_of;  // main/spm array name -> pair id
  std::map<std::string, bool> is_spm;
  for (size_t b = 0; b < selection.chosen.size(); ++b) {
    const size_t ri = selection.chosen[b].ref_index;
    FORAY_CHECK(ri < names.size(), "selection references unknown ref");
    buffer_of[names[ri]] = static_cast<int>(b);
    is_spm[names[ri]] = false;
    buffer_of[opts.transform.buffer_prefix + names[ri]] =
        static_cast<int>(b);
    is_spm[opts.transform.buffer_prefix + names[ri]] = true;
  }
  std::vector<sim::ClassifyingSink::Region> regions;
  for (const auto& g : sim::global_regions(*prog)) {
    sim::ClassifyingSink::Region r;
    r.base = g.base;
    r.size = g.size;
    auto it = buffer_of.find(g.name);
    if (it != buffer_of.end()) {
      r.buffer = it->second;
      r.is_spm = is_spm[g.name];
    }
    regions.push_back(r);
  }

  sim::ClassifyingSink sink(std::move(regions),
                            static_cast<int>(selection.chosen.size()));
  sim::RunOptions ropts = opts.run;
  ropts.emit_checkpoints = true;  // transfer-event segmentation needs them
  ropts.trace_scalars = false;
  ropts.trace_system = false;
  ropts.emit_calls = false;
  auto run = sim::run_program(*prog, &sink, ropts);
  if (!run.ok()) {
    report.status = run.status;
    return report;
  }
  report.ran = true;

  // Analytic side: the same selection re-derived on the materialized
  // geometry, evaluated through the very functions the DSE used.
  const core::ForayModel mat = materialize(model);
  Selection mat_sel;
  for (const auto& c : selection.chosen) {
    mat_sel.chosen.push_back(candidate_at(mat.refs[c.ref_index],
                                          c.ref_index, c.level));
    mat_sel.bytes_used += mat_sel.chosen.back().size_bytes;
  }
  const EnergyReport ana = evaluate_selection(mat, mat_sel, opts.dse);
  const EnergyReport prof = evaluate_selection(model, selection, opts.dse);

  report.ana_spm_accesses = ana.spm_accesses;
  report.ana_main_accesses = ana.dram_accesses;
  report.ana_transfer_words = ana.transfer_words;
  report.model_spm_accesses = prof.spm_accesses;
  report.model_main_accesses = prof.dram_accesses;
  report.model_transfer_words = prof.transfer_words;
  report.rectangular =
      ana.spm_accesses == prof.spm_accesses &&
      ana.dram_accesses == prof.dram_accesses &&
      ana.transfer_words == prof.transfer_words;

  report.sim_spm_accesses = sink.total_spm_accesses();
  report.sim_main_accesses = sink.total_main_accesses();
  report.sim_transfer_words = sink.total_transfer_words();
  report.unclassified_accesses = sink.unclassified_accesses();

  const auto& counters = sink.buffers();
  for (size_t b = 0; b < selection.chosen.size(); ++b) {
    const auto& cand = mat_sel.chosen[b];
    const auto& sim = counters[b];
    ReplayBuffer rb;
    rb.ref_index = cand.ref_index;
    rb.level = cand.level;
    rb.sliding = cand.sliding_window;
    rb.sim_spm_accesses = sim.spm_accesses;
    rb.sim_main_accesses = sim.main_accesses;
    rb.sim_fill_events = sim.fill_events;
    rb.sim_fill_bytes = sim.fill_bytes;
    rb.sim_writeback_events = sim.writeback_events;
    rb.sim_writeback_bytes = sim.writeback_bytes;
    rb.sim_transfer_words = sim.transfer_words;
    rb.ana_spm_accesses = cand.spm_accesses;
    rb.ana_transfer_words = cand.transfer_words;
    report.buffers.push_back(rb);

    const std::string tag =
        "buffer " + std::to_string(b) + " (ref " +
        std::to_string(cand.ref_index) + " level " +
        std::to_string(cand.level) + ")";
    check_eq(&report.mismatches, tag + " spm accesses",
             rb.sim_spm_accesses, rb.ana_spm_accesses);
    check_eq(&report.mismatches, tag + " transfer words",
             rb.sim_transfer_words, rb.ana_transfer_words);
    check_eq(&report.mismatches, tag + " main-memory program accesses",
             rb.sim_main_accesses, 0);
  }
  check_eq(&report.mismatches, "total spm accesses",
           report.sim_spm_accesses, report.ana_spm_accesses);
  check_eq(&report.mismatches, "total main-memory accesses",
           report.sim_main_accesses, report.ana_main_accesses);
  check_eq(&report.mismatches, "total transfer words",
           report.sim_transfer_words, report.ana_transfer_words);
  check_eq(&report.mismatches, "unclassified data accesses",
           report.unclassified_accesses, 0);
  return report;
}

std::string describe_replay_report(const ReplayReport& report,
                                   const core::ForayModel& model) {
  std::string out;
  char buf[192];
  if (!report.status.ok()) {
    return "replay: FAILED to execute the transformed program: " +
           report.status.message() + "\n";
  }
  auto names = core::assign_array_names(model);
  std::snprintf(buf, sizeof buf,
                "replay: %zu buffer(s), %llu SPM / %llu main accesses, "
                "%llu transfer word(s) simulated%s\n",
                report.buffers.size(),
                static_cast<unsigned long long>(report.sim_spm_accesses),
                static_cast<unsigned long long>(report.sim_main_accesses),
                static_cast<unsigned long long>(report.sim_transfer_words),
                report.rectangular ? "" : " (non-rectangular model: locked "
                                          "to materialized geometry)");
  out += buf;
  for (const auto& b : report.buffers) {
    std::snprintf(buf, sizeof buf,
                  "  %s: %llu accesses, %llu fill(s) %lluB, "
                  "%llu writeback(s) %lluB, %llu word(s)%s\n",
                  b.ref_index < names.size() ? names[b.ref_index].c_str()
                                             : "?",
                  static_cast<unsigned long long>(b.sim_spm_accesses),
                  static_cast<unsigned long long>(b.sim_fill_events),
                  static_cast<unsigned long long>(b.sim_fill_bytes),
                  static_cast<unsigned long long>(b.sim_writeback_events),
                  static_cast<unsigned long long>(b.sim_writeback_bytes),
                  static_cast<unsigned long long>(b.sim_transfer_words),
                  b.sliding ? ", sliding" : "");
    out += buf;
  }
  if (report.matches()) {
    out += "  analytic counters CONFIRMED by simulated traffic\n";
  } else {
    for (const auto& m : report.mismatches) {
      out += "  MISMATCH " + m + "\n";
    }
  }
  return out;
}

}  // namespace foray::spm
