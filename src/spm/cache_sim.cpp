#include "spm/cache_sim.h"

#include "util/status.h"

namespace foray::spm {

namespace {
bool is_pow2(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

CacheSim::CacheSim(const CacheConfig& cfg) : cfg_(cfg) {
  FORAY_CHECK(is_pow2(cfg.line_bytes), "cache line size must be 2^k");
  FORAY_CHECK(cfg.assoc >= 1, "associativity must be >= 1");
  FORAY_CHECK(cfg.size_bytes >= cfg.line_bytes * cfg.assoc,
              "cache smaller than one set");
  num_sets_ = cfg.size_bytes / (cfg.line_bytes * cfg.assoc);
  FORAY_CHECK(is_pow2(num_sets_), "cache set count must be 2^k");
  lines_.resize(static_cast<size_t>(num_sets_) * cfg.assoc);
}

bool CacheSim::access(uint32_t addr) {
  const uint32_t block = addr / cfg_.line_bytes;
  const uint32_t set = block & (num_sets_ - 1);
  const uint32_t tag = block / num_sets_;
  Line* base = &lines_[static_cast<size_t>(set) * cfg_.assoc];
  ++stamp_;
  for (int w = 0; w < cfg_.assoc; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = stamp_;
      ++hits_;
      return true;
    }
  }
  // Miss: evict an invalid way if one exists, else the LRU way.
  Line* victim = base;
  for (int w = 0; w < cfg_.assoc; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }
  ++misses_;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = stamp_;
  return false;
}

double CacheSim::energy_nj(const EnergyModel& e) const {
  const double lookup = e.cache_access_nj(cfg_.size_bytes, cfg_.assoc);
  const double miss_fill =
      e.dram_nj * (static_cast<double>(cfg_.line_bytes) / 4.0);
  return static_cast<double>(accesses()) * lookup +
         static_cast<double>(misses_) * miss_fill;
}

void CacheSim::reset() {
  for (auto& l : lines_) l = Line{};
  stamp_ = hits_ = misses_ = 0;
}

}  // namespace foray::spm
