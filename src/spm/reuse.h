// Data-reuse analysis over the FORAY model (the paper's Phase II step 2,
// in the style of Issenin et al., DATE 2004 — reference [5]).
//
// For each model reference and each loop level k (counting from the
// innermost), consider a scratch-pad buffer holding the data the
// innermost k loops touch. The buffer is refilled once per iteration of
// loop k+1; consecutive fills overlap when the (k+1)-stride is smaller
// than the buffer span (sliding window), in which case only the fresh
// delta is transferred. Every buffer candidate therefore has a size, a
// total fill traffic, and the count of accesses it absorbs — exactly what
// the design-space exploration needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "foray/model.h"

namespace foray::spm {

struct BufferCandidate {
  size_t ref_index = 0;  ///< index into ForayModel::refs
  int level = 1;         ///< innermost loops covered (1..M)
  uint64_t size_bytes = 0;
  uint64_t spm_accesses = 0;    ///< accesses served from the buffer
  uint64_t transfer_words = 0;  ///< total 4B words moved SPM<->DRAM
  bool sliding_window = false;  ///< consecutive fills overlap

  /// Accesses served per word transferred; > 1 means the buffer pays off
  /// even before energy weighting.
  double reuse_factor() const {
    return transfer_words > 0
               ? static_cast<double>(spm_accesses) / transfer_words
               : 0.0;
  }
};

struct ReuseOptions {
  /// Candidates larger than this are discarded outright (no realistic
  /// SPM will hold them).
  uint64_t max_buffer_bytes = 1u << 20;
  /// Keep only candidates whose reuse factor exceeds this.
  double min_reuse = 1.0;
};

/// The buffer candidate of one reference at one specific level (1..M),
/// unfiltered: size, fill traffic (sliding-window aware) and absorbed
/// accesses computed from the reference's emitted geometry and execution
/// count. This is the single source of the analytic transfer model; the
/// transform-replay phase re-derives candidates through it for the
/// materialized (rectangular) geometry and locks them against simulated
/// traffic. `level` is clamped to [1, M]; a reference with no emitted
/// loops yields a degenerate level-0 one-access-wide candidate, which
/// still carries the reference's exec_count — use candidates_for() for
/// the filtered list of buffers actually worth considering.
BufferCandidate candidate_at(const core::ModelReference& ref,
                             size_t ref_index, int level);

/// All worthwhile buffer candidates of one reference (at most one per
/// level): candidate_at() filtered by size and reuse factor. Candidates
/// that absorb no accesses (zero-trip nests) are never worthwhile.
std::vector<BufferCandidate> candidates_for(const core::ModelReference& ref,
                                            size_t ref_index,
                                            const ReuseOptions& opts = {});

/// Candidates for every reference of a model.
std::vector<BufferCandidate> enumerate_candidates(
    const core::ForayModel& model, const ReuseOptions& opts = {});

std::string describe_candidate(const BufferCandidate& c,
                               const core::ForayModel& model);

}  // namespace foray::spm
