#include "spm/dse.h"

#include <algorithm>
#include <map>

#include "util/status.h"

namespace foray::spm {

double candidate_saving_nj(const BufferCandidate& c, const DseOptions& opts) {
  const double spm = opts.energy.spm_access_nj(opts.spm_capacity);
  const double dram = opts.energy.dram_nj;
  const double before = static_cast<double>(c.spm_accesses) * dram;
  const double after = static_cast<double>(c.spm_accesses) * spm +
                       static_cast<double>(c.transfer_words) * (dram + spm);
  return before - after;
}

Selection select_buffers(const std::vector<BufferCandidate>& candidates,
                         const DseOptions& opts) {
  // Group candidates by reference.
  std::map<size_t, std::vector<const BufferCandidate*>> groups;
  for (const auto& c : candidates) {
    if (c.size_bytes <= opts.spm_capacity &&
        candidate_saving_nj(c, opts) > 0.0) {
      groups[c.ref_index].push_back(&c);
    }
  }
  // A zero granule must quantize as one byte, not divide by zero.
  const uint32_t granule = std::max<uint32_t>(opts.granule, 1);
  const uint32_t slots = opts.spm_capacity / granule;
  // dp[w] = best savings using at most w granules; choice tracking per
  // group layer.
  std::vector<double> dp(slots + 1, 0.0);
  std::vector<std::vector<const BufferCandidate*>> pick(
      slots + 1);  // chosen set achieving dp[w]

  for (const auto& [ref, items] : groups) {
    (void)ref;
    std::vector<double> next_dp = dp;
    auto next_pick = pick;
    for (const BufferCandidate* c : items) {
      const uint32_t need = static_cast<uint32_t>(
          (c->size_bytes + granule - 1) / granule);
      const double gain = candidate_saving_nj(*c, opts);
      for (uint32_t w = need; w <= slots; ++w) {
        const double with = dp[w - need] + gain;
        if (with > next_dp[w]) {
          next_dp[w] = with;
          next_pick[w] = pick[w - need];
          next_pick[w].push_back(c);
        }
      }
    }
    dp = std::move(next_dp);
    pick = std::move(next_pick);
  }

  Selection sel;
  uint32_t best_w = 0;
  for (uint32_t w = 0; w <= slots; ++w) {
    if (dp[w] > dp[best_w]) best_w = w;
  }
  sel.saved_nj = dp[best_w];
  for (const BufferCandidate* c : pick[best_w]) {
    sel.chosen.push_back(*c);
    sel.bytes_used += c->size_bytes;
  }
  return sel;
}

Selection select_buffers_greedy(
    const std::vector<BufferCandidate>& candidates, const DseOptions& opts) {
  std::vector<const BufferCandidate*> order;
  for (const auto& c : candidates) {
    if (c.size_bytes <= opts.spm_capacity &&
        candidate_saving_nj(c, opts) > 0.0) {
      order.push_back(&c);
    }
  }
  std::sort(order.begin(), order.end(),
            [&](const BufferCandidate* a, const BufferCandidate* b) {
              const double da = candidate_saving_nj(*a, opts) /
                                static_cast<double>(a->size_bytes);
              const double db = candidate_saving_nj(*b, opts) /
                                static_cast<double>(b->size_bytes);
              return da > db;
            });
  Selection sel;
  std::map<size_t, bool> ref_taken;
  for (const BufferCandidate* c : order) {
    if (ref_taken[c->ref_index]) continue;
    if (sel.bytes_used + c->size_bytes > opts.spm_capacity) continue;
    ref_taken[c->ref_index] = true;
    sel.chosen.push_back(*c);
    sel.bytes_used += c->size_bytes;
    sel.saved_nj += candidate_saving_nj(*c, opts);
  }
  return sel;
}

}  // namespace foray::spm
