// Set-associative LRU cache simulator.
//
// The comparison substrate for the SPM argument (Banakar et al. — the
// paper's reference [1] — motivates SPMs by their energy advantage over
// caches). Benches feed FORAY-model address streams through this cache
// and through the SPM configuration and compare energy.
#pragma once

#include <cstdint>
#include <vector>

#include "spm/energy.h"

namespace foray::spm {

struct CacheConfig {
  uint32_t size_bytes = 4096;
  uint32_t line_bytes = 32;
  int assoc = 2;
};

class CacheSim {
 public:
  explicit CacheSim(const CacheConfig& cfg);

  /// Simulates one access; returns true on hit.
  bool access(uint32_t addr);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t accesses() const { return hits_ + misses_; }
  double hit_rate() const {
    return accesses() ? static_cast<double>(hits_) / accesses() : 0.0;
  }

  /// Total energy: every access pays the cache lookup; every miss
  /// additionally fetches a full line from main memory.
  double energy_nj(const EnergyModel& e) const;

  const CacheConfig& config() const { return cfg_; }
  void reset();

 private:
  struct Line {
    uint32_t tag = 0;
    bool valid = false;
    uint64_t lru = 0;  ///< last-use stamp
  };

  CacheConfig cfg_;
  uint32_t num_sets_;
  std::vector<Line> lines_;  ///< sets * assoc, row-major by set
  uint64_t stamp_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace foray::spm
