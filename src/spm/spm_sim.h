// Scratch-pad configuration evaluation (Phase II step 4).
//
// Given a buffer selection, computes the resulting memory traffic and
// energy: selected references hit the SPM (plus their fill traffic),
// everything else goes to main memory. An address-level validation mode
// replays the model's streams and double-checks the analytic counters.
#pragma once

#include <cstdint>
#include <vector>

#include "foray/model.h"
#include "spm/dse.h"
#include "spm/energy.h"

namespace foray::spm {

/// Analytic evaluation of a selection against the whole model: accesses
/// of unselected references (and the fill traffic of selected ones) are
/// charged to main memory.
EnergyReport evaluate_selection(const core::ForayModel& model,
                                const Selection& selection,
                                const DseOptions& opts);

/// The trivial configuration: no SPM at all.
EnergyReport evaluate_baseline(const core::ForayModel& model,
                               const EnergyModel& energy);

/// Address-level recomputation of the SPM access count for a selection
/// (replays the emitted nests; used by tests to validate the analytic
/// path).
uint64_t replay_spm_accesses(const core::ForayModel& model,
                             const Selection& selection);

}  // namespace foray::spm
