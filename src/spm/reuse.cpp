#include "spm/reuse.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "foray/emitter.h"
#include "util/strings.h"

namespace foray::spm {

BufferCandidate candidate_at(const core::ModelReference& ref,
                             size_t ref_index, int level) {
  // Work in innermost-first order over the emitted (analyzable) nest.
  auto coefs_of = ref.emitted_coefs();   // outermost-first
  auto trips_of = ref.emitted_trips();
  std::vector<int64_t> coefs(coefs_of.rbegin(), coefs_of.rend());
  std::vector<int64_t> trips(trips_of.rbegin(), trips_of.rend());
  const int m = static_cast<int>(coefs.size());
  const int k = std::clamp(level, m > 0 ? 1 : 0, m);

  BufferCandidate c;
  c.ref_index = ref_index;
  c.level = k;
  // Span of the innermost k loops (conservative dense bound). Zero-trip
  // and zero-coefficient dimensions contribute nothing, so the span is
  // never smaller than one access — a buffer can't be zero-sized.
  uint64_t span = std::max<uint64_t>(ref.access_size, 1);
  for (int i = 0; i < k; ++i) {
    span += static_cast<uint64_t>(std::llabs(coefs[i])) *
            static_cast<uint64_t>(std::max<int64_t>(trips[i] - 1, 0));
  }
  c.size_bytes = span;

  // Accesses inside one buffer residency and the number of fills.
  uint64_t inner_accesses = 1;
  for (int i = 0; i < k; ++i) {
    inner_accesses *= static_cast<uint64_t>(std::max<int64_t>(trips[i], 1));
  }
  // Total fills = executions / accesses-per-residency. Using the real
  // execution count (instead of the emitted trip product) makes this
  // correct for partial references too, where outer context re-runs
  // the nest.
  const uint64_t fills =
      inner_accesses > 0
          ? std::max<uint64_t>(1, ref.exec_count / inner_accesses)
          : 1;
  const uint64_t words_per_fill = (span + 3) / 4;

  // Sliding window: if the next-outer loop advances by less than the
  // span, each subsequent fill only loads the fresh delta.
  uint64_t total_words = 0;
  if (k < m) {
    const uint64_t step = static_cast<uint64_t>(std::llabs(coefs[k]));
    if (step > 0 && step < span) {
      c.sliding_window = true;
      const uint64_t delta_words = (step + 3) / 4;
      // One run = one full fill followed by delta fills, once per
      // iteration of loop k+1..; the run count is fills over the fill
      // loop's own trip so outer context re-running the whole nest
      // (partial references) scales the number of runs, not the length
      // of one run.
      const uint64_t fills_per_run =
          static_cast<uint64_t>(std::max<int64_t>(trips[k], 1));
      const uint64_t runs = std::max<uint64_t>(1, fills / fills_per_run);
      total_words = runs * (words_per_fill +
                            (fills_per_run - 1) * delta_words);
    }
  }
  if (total_words == 0) total_words = fills * words_per_fill;
  // Dirty data must be written back: the write-back stream retraces the
  // fill stream (deltas while the window slides, the final resident
  // window at the end), so it costs exactly the fill traffic again.
  if (ref.has_write) total_words *= 2;

  c.spm_accesses = ref.exec_count;
  c.transfer_words = total_words;
  return c;
}

std::vector<BufferCandidate> candidates_for(const core::ModelReference& ref,
                                            size_t ref_index,
                                            const ReuseOptions& opts) {
  std::vector<BufferCandidate> out;
  const int m = static_cast<int>(ref.emitted_coefs().size());
  for (int k = 1; k <= m; ++k) {
    BufferCandidate c = candidate_at(ref, ref_index, k);
    if (c.size_bytes > opts.max_buffer_bytes) continue;
    // A buffer that absorbs no accesses (zero-trip nest) is pure cost.
    if (c.spm_accesses == 0) continue;
    if (c.reuse_factor() >= opts.min_reuse) out.push_back(c);
  }
  return out;
}

std::vector<BufferCandidate> enumerate_candidates(
    const core::ForayModel& model, const ReuseOptions& opts) {
  std::vector<BufferCandidate> out;
  for (size_t i = 0; i < model.refs.size(); ++i) {
    auto per_ref = candidates_for(model.refs[i], i, opts);
    out.insert(out.end(), per_ref.begin(), per_ref.end());
  }
  return out;
}

std::string describe_candidate(const BufferCandidate& c,
                               const core::ForayModel& model) {
  std::ostringstream os;
  os << "buf[ref=" << util::to_hex(model.refs[c.ref_index].instr)
     << " level=" << c.level << " size=" << c.size_bytes << "B"
     << " accesses=" << c.spm_accesses << " xfer=" << c.transfer_words
     << "w reuse=" << c.reuse_factor()
     << (c.sliding_window ? " sliding" : "") << "]";
  return os.str();
}

}  // namespace foray::spm
