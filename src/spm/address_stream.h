// Address-stream generation from a FORAY model.
//
// Replays a model reference's (emitted) loop nest in lexicographic order
// and produces the exact address sequence its affine function describes.
// The cache simulator consumes these streams; tests use them to check
// that an extracted model reproduces the simulator-observed addresses.
//
// The visitors are templates: the callback is a deduced functor invoked
// directly inside the odometer sweep, so a lambda over CacheSim::access
// (or a counter) inlines into the loop — the streams replay at memory
// bandwidth instead of paying a std::function indirection per address.
#pragma once

#include <cstdint>
#include <vector>

#include "foray/model.h"

namespace foray::spm {

namespace internal {

/// Odometer sweep over `trips` (outermost-first), calling fn(iters).
template <class Fn>
uint64_t sweep(const std::vector<int64_t>& trips, Fn&& fn) {
  const size_t n = trips.size();
  for (int64_t t : trips) {
    if (t <= 0) return 0;
  }
  std::vector<int64_t> it(n, 0);
  uint64_t count = 0;
  for (;;) {
    fn(it);
    ++count;
    if (n == 0) return count;
    // Innermost (last index) advances fastest.
    size_t i = n - 1;
    for (;;) {
      if (++it[i] < trips[i]) break;
      it[i] = 0;
      if (i == 0) return count;
      --i;
    }
  }
}

}  // namespace internal

/// Invokes `fn(addr)` for every access of `ref`'s emitted nest, in
/// iteration order (outermost slowest). Returns the number of addresses
/// produced (product of emitted trips).
template <class Fn>
uint64_t for_each_address(const core::ModelReference& ref, Fn&& fn) {
  auto trips = ref.emitted_trips();
  auto coefs = ref.emitted_coefs();
  return internal::sweep(trips, [&](const std::vector<int64_t>& it) {
    int64_t addr = ref.fn.const_term;
    for (size_t i = 0; i < coefs.size(); ++i) addr += coefs[i] * it[i];
    fn(static_cast<uint32_t>(addr));
  });
}

/// Interleaved stream over all references of a model that share a nest:
/// per innermost iteration, each reference of the group emits one
/// address, mirroring how the emitted program executes. Returns the
/// total accesses produced.
template <class Fn>
uint64_t for_each_address(const core::ForayModel& model, Fn&& fn) {
  // Group references by emitted nest, then sweep each group once with
  // all its references interleaved per iteration.
  struct Group {
    std::vector<int64_t> trips;
    std::vector<size_t> refs;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < model.refs.size(); ++i) {
    auto path = model.refs[i].emitted_loop_path();
    auto trips = model.refs[i].emitted_trips();
    bool placed = false;
    for (auto& g : groups) {
      if (!g.refs.empty() &&
          model.refs[g.refs[0]].emitted_loop_path() == path &&
          g.trips == trips) {
        g.refs.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back(Group{trips, {i}});
  }

  uint64_t total = 0;
  for (const auto& g : groups) {
    // Hoist the per-reference constants out of the sweep.
    struct RefPlan {
      int64_t base;
      std::vector<int64_t> coefs;
    };
    std::vector<RefPlan> plans;
    plans.reserve(g.refs.size());
    for (size_t ri : g.refs) {
      plans.push_back(RefPlan{model.refs[ri].fn.const_term,
                              model.refs[ri].emitted_coefs()});
    }
    total += static_cast<uint64_t>(g.refs.size()) *
             internal::sweep(g.trips, [&](const std::vector<int64_t>& it) {
               for (const RefPlan& p : plans) {
                 int64_t addr = p.base;
                 for (size_t i = 0; i < p.coefs.size(); ++i) {
                   addr += p.coefs[i] * it[i];
                 }
                 fn(static_cast<uint32_t>(addr));
               }
             });
  }
  return total;
}

/// Materializes the (possibly large) stream of one reference.
std::vector<uint32_t> addresses_of(const core::ModelReference& ref,
                                   uint64_t limit = 1u << 22);

}  // namespace foray::spm
