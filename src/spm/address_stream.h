// Address-stream generation from a FORAY model.
//
// Replays a model reference's (emitted) loop nest in lexicographic order
// and produces the exact address sequence its affine function describes.
// The cache simulator consumes these streams; tests use them to check
// that an extracted model reproduces the simulator-observed addresses.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "foray/model.h"

namespace foray::spm {

/// Invokes `fn(addr)` for every access of `ref`'s emitted nest, in
/// iteration order (outermost slowest). Returns the number of addresses
/// produced (product of emitted trips).
uint64_t for_each_address(const core::ModelReference& ref,
                          const std::function<void(uint32_t)>& fn);

/// Interleaved stream over all references of a model that share a nest:
/// per innermost iteration, each reference of the group emits one
/// address, mirroring how the emitted program executes. Returns the
/// total accesses produced.
uint64_t for_each_address(const core::ForayModel& model,
                          const std::function<void(uint32_t)>& fn);

/// Materializes the (possibly large) stream of one reference.
std::vector<uint32_t> addresses_of(const core::ModelReference& ref,
                                   uint64_t limit = 1u << 22);

}  // namespace foray::spm
