// Energy model for the memory-subsystem design space (Phase II).
//
// Synthetic but literature-shaped (Banakar et al., CODES 2002 — the
// paper's reference [1]): scratch-pad access energy grows slowly with
// capacity; a cache access costs an additional tag/associativity factor
// over an equal-sized SPM; main-memory accesses dominate everything.
// Absolute numbers are illustrative — every benchmark reports *relative*
// savings, which is what the paper's argument rests on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace foray::spm {

struct EnergyModel {
  /// Energy per 4-byte main-memory (off-chip) access, nJ.
  double dram_nj = 3.57;
  /// Energy per access of a 1 KiB scratch pad, nJ.
  double spm_1kb_nj = 0.19;
  /// Additive cost per capacity doubling beyond 1 KiB, nJ.
  double spm_doubling_nj = 0.05;
  /// Multiplicative overhead of a cache access over an equal-size SPM
  /// access (tag array + comparators + way muxing).
  double cache_overhead = 1.46;
  /// Extra cache overhead per additional way.
  double cache_way_overhead = 0.18;

  /// Per-access energy of an SPM of `bytes` capacity, nJ.
  double spm_access_nj(uint32_t bytes) const;
  /// Per-access energy of a cache of `bytes` capacity and `assoc` ways.
  double cache_access_nj(uint32_t bytes, int assoc) const;
};

/// A named EnergyModel parameterization. Presets span the corners of the
/// technology space the sweep API explores (process node, off-chip
/// interface, cache tag cost); absolute numbers stay illustrative, like
/// the default model itself.
struct EnergyPreset {
  const char* name;
  const char* description;
  EnergyModel model;
};

/// The built-in presets, "default" first. Order is stable (it is part of
/// the sweep grid's deterministic expansion).
const std::vector<EnergyPreset>& energy_presets();

/// Preset by name, or nullptr.
const EnergyPreset* find_energy_preset(std::string_view name);

/// Sets one EnergyModel field by its struct member name (dram_nj,
/// spm_1kb_nj, spm_doubling_nj, cache_overhead, cache_way_overhead).
/// Returns false on an unknown field.
bool set_energy_field(EnergyModel* model, std::string_view field,
                      double value);

/// Parses an energy-model spec string: a preset name optionally followed
/// by `:field=value` overrides, e.g. "default:dram_nj=5.2:spm_1kb_nj=0.1".
/// On failure returns false and explains in *error.
bool parse_energy_model(std::string_view spec, EnergyModel* out,
                        std::string* error);

/// Totals for one evaluated configuration.
struct EnergyReport {
  double baseline_nj = 0.0;  ///< every access served by main memory
  double total_nj = 0.0;     ///< with the evaluated configuration
  uint64_t spm_accesses = 0;
  uint64_t dram_accesses = 0;
  uint64_t transfer_words = 0;  ///< SPM<->DRAM fill traffic (4B words)

  double savings_pct() const {
    return baseline_nj > 0.0 ? 100.0 * (baseline_nj - total_nj) / baseline_nj
                             : 0.0;
  }
};

}  // namespace foray::spm
