// Design-space exploration (Phase II step 3): pick at most one buffer
// candidate per reference such that everything fits in the scratch pad
// and energy savings are maximal.
//
// This is a group knapsack (groups = references, items = buffer levels);
// we solve it exactly with dynamic programming over capacity granules and
// also provide the classic greedy-by-density heuristic as the ablation
// baseline the benches compare against.
#pragma once

#include <cstdint>
#include <vector>

#include "spm/energy.h"
#include "spm/reuse.h"

namespace foray::spm {

struct DseOptions {
  uint32_t spm_capacity = 4096;  ///< bytes
  uint32_t granule = 8;          ///< capacity quantization for the DP
  EnergyModel energy;
};

struct Selection {
  std::vector<BufferCandidate> chosen;
  uint64_t bytes_used = 0;
  double saved_nj = 0.0;  ///< predicted energy saved vs all-DRAM
};

/// Energy saved by a candidate under the given SPM (nJ): accesses move
/// from DRAM to SPM, fills pay both sides.
double candidate_saving_nj(const BufferCandidate& c, const DseOptions& opts);

/// Exact group-knapsack DP.
Selection select_buffers(const std::vector<BufferCandidate>& candidates,
                         const DseOptions& opts);

/// Greedy by savings density (ablation baseline).
Selection select_buffers_greedy(const std::vector<BufferCandidate>& candidates,
                                const DseOptions& opts);

}  // namespace foray::spm
