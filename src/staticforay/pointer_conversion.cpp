#include "staticforay/pointer_conversion.h"

#include <map>
#include <optional>
#include <string>

namespace foray::staticforay {

namespace {

using minic::AssignOp;
using minic::BinaryOp;
using minic::Expr;
using minic::ExprKind;
using minic::Stmt;
using minic::StmtKind;
using minic::UnaryOp;

std::optional<int64_t> fold_const(const Expr* e) {
  if (e == nullptr) return std::nullopt;
  switch (e->kind) {
    case ExprKind::IntLit:
      return e->int_val;
    case ExprKind::Unary:
      if (e->un_op == UnaryOp::Neg) {
        if (auto v = fold_const(e->a.get())) return -*v;
      }
      return std::nullopt;
    case ExprKind::Binary: {
      auto a = fold_const(e->a.get());
      auto b = fold_const(e->b.get());
      if (!a || !b) return std::nullopt;
      switch (e->bin_op) {
        case BinaryOp::Add: return *a + *b;
        case BinaryOp::Sub: return *a - *b;
        case BinaryOp::Mul: return *a * *b;
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

bool is_ident(const Expr* e, const std::string& name) {
  return e != nullptr && e->kind == ExprKind::Ident && e->name == name;
}

class ConversionAnalyzer {
 public:
  explicit ConversionAnalyzer(const minic::Program& prog) : prog_(prog) {}

  PointerConversion run() {
    for (const auto& fn : prog_.funcs) {
      candidates_.clear();
      iterators_.clear();
      loops_all_canonical_ = true;
      cur_func_ = fn->name;
      // Pass 1: find candidate pointers and scan uses.
      walk_stmt(fn->body.get(), /*canonical_ctx=*/true);
      // Commit surviving candidates.
      for (const auto& [name, st] : candidates_) {
        if (st.disqualified) continue;
        out_.convertible_pointers.insert(cur_func_ + "/" + name);
        for (int node : st.sites) out_.convertible_ref_nodes.insert(node);
      }
    }
    return std::move(out_);
  }

 private:
  struct Candidate {
    bool disqualified = false;
    std::vector<int> sites;  ///< deref node ids in canonical contexts
  };

  Candidate* candidate(const std::string& name) {
    auto it = candidates_.find(name);
    return it == candidates_.end() ? nullptr : &it->second;
  }

  /// Is `e` an affine combination of in-scope canonical iterators and
  /// constants?
  bool is_affine(const Expr* e) const {
    if (e == nullptr) return false;
    if (fold_const(e)) return true;
    switch (e->kind) {
      case ExprKind::Ident:
        return iterators_.count(e->name) > 0;
      case ExprKind::Unary:
        return e->un_op == UnaryOp::Neg && is_affine(e->a.get());
      case ExprKind::Binary:
        switch (e->bin_op) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
            return is_affine(e->a.get()) && is_affine(e->b.get());
          case BinaryOp::Mul:
            return (fold_const(e->a.get()) && is_affine(e->b.get())) ||
                   (fold_const(e->b.get()) && is_affine(e->a.get()));
          default:
            return false;
        }
      default:
        return false;
    }
  }

  /// Recognizes `p`, `p + affine`, `p - affine`, `p++`, `p--`, `++p`,
  /// `--p` and returns the pointer name.
  std::optional<std::string> pointer_walk_operand(const Expr* e) const {
    if (e == nullptr) return std::nullopt;
    if (e->kind == ExprKind::Ident && candidates_.count(e->name)) {
      return e->name;
    }
    if (e->kind == ExprKind::Unary &&
        (e->un_op == UnaryOp::PostInc || e->un_op == UnaryOp::PostDec ||
         e->un_op == UnaryOp::PreInc || e->un_op == UnaryOp::PreDec)) {
      if (e->a->kind == ExprKind::Ident && candidates_.count(e->a->name)) {
        return e->a->name;
      }
      return std::nullopt;
    }
    if (e->kind == ExprKind::Binary &&
        (e->bin_op == BinaryOp::Add || e->bin_op == BinaryOp::Sub)) {
      if (e->a->kind == ExprKind::Ident && candidates_.count(e->a->name) &&
          is_affine(e->b.get())) {
        return e->a->name;
      }
    }
    return std::nullopt;
  }

  /// Is `base` a direct array name (decayed) plus an optional constant?
  bool is_array_base(const Expr* e) const {
    if (e == nullptr) return false;
    if (e->kind == ExprKind::Ident) {
      // Sema marked decayed arrays.
      return e->decayed_array;
    }
    if (e->kind == ExprKind::Binary &&
        (e->bin_op == BinaryOp::Add || e->bin_op == BinaryOp::Sub)) {
      return is_array_base(e->a.get()) &&
             fold_const(e->b.get()).has_value();
    }
    return false;
  }

  void record_site(const std::string& ptr, int node_id) {
    Candidate* c = candidate(ptr);
    if (c == nullptr || c->disqualified) return;
    if (loops_all_canonical_) c->sites.push_back(node_id);
  }

  void disqualify(const std::string& ptr) {
    if (Candidate* c = candidate(ptr)) c->disqualified = true;
  }

  // Walks an expression; `p_use_ok` marks contexts where a bare
  // candidate-pointer mention would already have been handled.
  void walk_expr(const Expr* e) {
    if (e == nullptr) return;
    switch (e->kind) {
      case ExprKind::Ident:
        // A bare use in a context we did not whitelist: aliasing,
        // arithmetic value, comparison... disqualify conservatively.
        if (candidates_.count(e->name)) disqualify(e->name);
        return;
      case ExprKind::Unary: {
        if (e->un_op == UnaryOp::Deref) {
          if (auto p = pointer_walk_operand(e->a.get())) {
            record_site(*p, e->node_id);
            // Still walk nested affine offset expressions, skipping the
            // pointer mention itself.
            if (e->a->kind == ExprKind::Binary) walk_expr(e->a->b.get());
            return;
          }
        }
        if (e->un_op == UnaryOp::AddrOf && e->a->kind == ExprKind::Ident) {
          if (candidates_.count(e->a->name)) disqualify(e->a->name);
          return;
        }
        if ((e->un_op == UnaryOp::PostInc || e->un_op == UnaryOp::PostDec ||
             e->un_op == UnaryOp::PreInc || e->un_op == UnaryOp::PreDec) &&
            e->a->kind == ExprKind::Ident &&
            candidates_.count(e->a->name)) {
          return;  // constant-stride advance: allowed
        }
        walk_expr(e->a.get());
        return;
      }
      case ExprKind::Index: {
        if (e->a->kind == ExprKind::Ident &&
            candidates_.count(e->a->name)) {
          if (is_affine(e->b.get())) {
            record_site(e->a->name, e->node_id);
          } else {
            disqualify(e->a->name);
          }
          walk_expr(e->b.get());
          return;
        }
        walk_expr(e->a.get());
        walk_expr(e->b.get());
        return;
      }
      case ExprKind::Assign: {
        if (e->a->kind == ExprKind::Ident &&
            candidates_.count(e->a->name)) {
          const std::string& p = e->a->name;
          bool ok = false;
          if ((e->as_op == AssignOp::AddA || e->as_op == AssignOp::SubA) &&
              fold_const(e->b.get())) {
            ok = true;  // p += c
          }
          if (e->as_op == AssignOp::Assign) {
            // Re-basing to the same pointer plus a constant keeps the
            // provenance; anything else loses it.
            if (e->b->kind == ExprKind::Binary &&
                (e->b->bin_op == BinaryOp::Add ||
                 e->b->bin_op == BinaryOp::Sub) &&
                is_ident(e->b->a.get(), p) && fold_const(e->b->b.get())) {
              ok = true;
            }
          }
          if (!ok) disqualify(p);
          if (!ok) walk_expr(e->b.get());
          return;
        }
        walk_expr(e->a.get());
        walk_expr(e->b.get());
        return;
      }
      case ExprKind::Call:
        // Passing a tracked pointer to any function kills provenance.
        for (const auto& arg : e->args) walk_expr(arg.get());
        return;
      default:
        walk_expr(e->a.get());
        walk_expr(e->b.get());
        walk_expr(e->c.get());
        for (const auto& arg : e->args) walk_expr(arg.get());
        return;
    }
  }

  /// Canonical-for detection light enough for this pass: constant init,
  /// constant bound, unit/const step (the full check lives in
  /// static_analysis.cpp; conversion only needs the iterator name).
  std::optional<std::string> canonical_iterator(const Stmt& s) const {
    if (s.kind != StmtKind::For || s.init == nullptr || s.cond == nullptr ||
        s.step == nullptr) {
      return std::nullopt;
    }
    std::string iter;
    if (s.init->kind == StmtKind::Decl && s.init->decls.size() == 1 &&
        s.init->decls[0].init != nullptr &&
        fold_const(s.init->decls[0].init.get())) {
      iter = s.init->decls[0].name;
    } else if (s.init->kind == StmtKind::Expr && s.init->expr != nullptr &&
               s.init->expr->kind == ExprKind::Assign &&
               s.init->expr->a->kind == ExprKind::Ident &&
               fold_const(s.init->expr->b.get())) {
      iter = s.init->expr->a->name;
    } else {
      return std::nullopt;
    }
    if (s.cond->kind != ExprKind::Binary ||
        !is_ident(s.cond->a.get(), iter) || !fold_const(s.cond->b.get())) {
      return std::nullopt;
    }
    return iter;
  }

  void walk_stmt(const Stmt* s, bool canonical_ctx) {
    if (s == nullptr) return;
    switch (s->kind) {
      case StmtKind::Decl:
        for (const auto& d : s->decls) {
          if (d.type.ptr == 1 && d.array_len < 0 && d.init != nullptr &&
              is_array_base(d.init.get())) {
            candidates_[d.name] = Candidate{};
          } else if (d.init) {
            walk_expr(d.init.get());
          }
          for (const auto& i : d.init_list) walk_expr(i.get());
        }
        return;
      case StmtKind::Expr:
      case StmtKind::Return:
        walk_expr(s->expr.get());
        return;
      case StmtKind::If:
        walk_expr(s->cond.get());
        walk_stmt(s->then_branch.get(), canonical_ctx);
        walk_stmt(s->else_branch.get(), canonical_ctx);
        return;
      case StmtKind::For: {
        auto iter = canonical_iterator(*s);
        const bool canonical = iter.has_value();
        walk_stmt(s->init.get(), canonical_ctx);
        walk_expr(s->cond.get());
        walk_expr(s->step.get());
        bool saved = loops_all_canonical_;
        loops_all_canonical_ = loops_all_canonical_ && canonical;
        if (canonical) iterators_.insert(*iter);
        walk_stmt(s->body.get(), canonical_ctx && canonical);
        if (canonical) iterators_.erase(*iter);
        loops_all_canonical_ = saved;
        return;
      }
      case StmtKind::While:
      case StmtKind::DoWhile: {
        walk_expr(s->cond.get());
        bool saved = loops_all_canonical_;
        loops_all_canonical_ = false;  // no iterator to convert onto
        walk_stmt(s->body.get(), false);
        loops_all_canonical_ = saved;
        return;
      }
      case StmtKind::Block:
        for (const auto& child : s->stmts) walk_stmt(child.get(),
                                                     canonical_ctx);
        return;
      default:
        return;
    }
  }

  const minic::Program& prog_;
  PointerConversion out_;
  std::map<std::string, Candidate> candidates_;
  std::set<std::string> iterators_;
  bool loops_all_canonical_ = true;
  std::string cur_func_;
};

}  // namespace

PointerConversion analyze_pointer_conversion(const minic::Program& prog) {
  ConversionAnalyzer analyzer(prog);
  return analyzer.run();
}

BaselineComparison compare_baselines(const core::ForayModel& model,
                                     const Analysis& analysis,
                                     const PointerConversion& conv) {
  BaselineComparison out;
  out.model_refs = static_cast<int>(model.refs.size());
  out.foray_gen = out.model_refs;
  for (const auto& ref : model.refs) {
    const int node = minic::node_for_instr_addr(ref.instr);
    bool loops_ok = true;
    for (int loop : ref.emitted_loop_path()) {
      if (!analysis.loop_is_canonical(loop)) loops_ok = false;
    }
    if (loops_ok && analysis.ref_is_affine(node)) {
      ++out.plain_static;
      ++out.with_conversion;
    } else if (loops_ok && conv.ref_is_convertible(node)) {
      ++out.with_conversion;
    }
  }
  return out;
}

}  // namespace foray::staticforay
