#include "staticforay/cost.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace foray::staticforay {

namespace {

constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

/// Clamps a __int128 back into int64.
int64_t clamp128(__int128 v) {
  if (v < static_cast<__int128>(kMin)) return kMin;
  if (v > static_cast<__int128>(kMax)) return kMax;
  return static_cast<int64_t>(v);
}

/// True when the exact value fits int64 (no clamping needed).
bool fits64(__int128 v) {
  return v >= static_cast<__int128>(kMin) && v <= static_cast<__int128>(kMax);
}

}  // namespace

uint64_t sat_add(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  return s < a ? kUnbounded : s;
}

uint64_t sat_mul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kUnbounded || b == kUnbounded) return kUnbounded;
  if (a > kUnbounded / b) return kUnbounded;
  return a * b;
}

Interval Interval::top() { return {kMin, kMax}; }

bool Interval::is_top() const { return lo == kMin && hi == kMax; }

std::string Interval::str() const {
  if (is_top()) return "[-inf, inf]";
  return "[" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
}

Interval iv_join(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval iv_widen(const Interval& prev, const Interval& next) {
  Interval w = prev;
  if (next.lo < prev.lo) w.lo = kMin;
  if (next.hi > prev.hi) w.hi = kMax;
  return w;
}

bool iv_meet(const Interval& a, const Interval& b, Interval* out) {
  int64_t lo = std::max(a.lo, b.lo);
  int64_t hi = std::min(a.hi, b.hi);
  if (lo > hi) return false;
  *out = {lo, hi};
  return true;
}

Interval iv_add(const Interval& a, const Interval& b) {
  __int128 lo = static_cast<__int128>(a.lo) + b.lo;
  __int128 hi = static_cast<__int128>(a.hi) + b.hi;
  // Engine addition wraps in int64; if the exact result range does not
  // fit, any int64 value is possible.
  if (!fits64(lo) || !fits64(hi)) return Interval::top();
  return {static_cast<int64_t>(lo), static_cast<int64_t>(hi)};
}

Interval iv_sub(const Interval& a, const Interval& b) {
  __int128 lo = static_cast<__int128>(a.lo) - b.hi;
  __int128 hi = static_cast<__int128>(a.hi) - b.lo;
  if (!fits64(lo) || !fits64(hi)) return Interval::top();
  return {static_cast<int64_t>(lo), static_cast<int64_t>(hi)};
}

Interval iv_mul(const Interval& a, const Interval& b) {
  __int128 c[4] = {static_cast<__int128>(a.lo) * b.lo,
                   static_cast<__int128>(a.lo) * b.hi,
                   static_cast<__int128>(a.hi) * b.lo,
                   static_cast<__int128>(a.hi) * b.hi};
  __int128 lo = c[0], hi = c[0];
  for (__int128 v : c) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!fits64(lo) || !fits64(hi)) return Interval::top();
  return {static_cast<int64_t>(lo), static_cast<int64_t>(hi)};
}

Interval iv_div(const Interval& a, const Interval& b) {
  // Candidate divisors: the ends of b plus the smallest-magnitude values
  // it contains (where quotients are most extreme), excluding zero.
  int64_t divs[4];
  int n = 0;
  auto add_div = [&](int64_t d) {
    if (d != 0 && d >= b.lo && d <= b.hi) divs[n++] = d;
  };
  add_div(b.lo);
  add_div(b.hi);
  add_div(1);
  add_div(-1);
  if (n == 0) return Interval::top();  // divisor provably 0: faults anyway
  __int128 lo = 0, hi = 0;
  bool first = true;
  for (int i = 0; i < n; ++i) {
    for (int64_t num : {a.lo, a.hi}) {
      __int128 q = static_cast<__int128>(num) / divs[i];
      if (first || q < lo) lo = q;
      if (first || q > hi) hi = q;
      first = false;
    }
  }
  // a may contain 0 between its ends; quotient 0 is then reachable.
  if (a.contains_zero()) {
    lo = std::min<__int128>(lo, 0);
    hi = std::max<__int128>(hi, 0);
  }
  if (!fits64(lo) || !fits64(hi)) return Interval::top();  // INT64_MIN / -1
  return {static_cast<int64_t>(lo), static_cast<int64_t>(hi)};
}

Interval iv_mod(const Interval& a, const Interval& b) {
  // |a % b| < max(|b|) and the sign follows the dividend (C++ semantics).
  __int128 m = std::max<__int128>(
      b.lo == kMin ? -static_cast<__int128>(kMin) : std::abs(b.lo),
      b.hi == kMin ? -static_cast<__int128>(kMin) : std::abs(b.hi));
  if (m == 0) return Interval::top();  // provably faults; value unused
  int64_t bound = clamp128(m - 1);
  int64_t lo = a.lo < 0 ? -bound : 0;
  int64_t hi = a.hi > 0 ? bound : 0;
  // |a % b| <= |a| as well.
  lo = std::max(lo, a.lo == kMin ? kMin : -std::max(std::abs(a.lo),
                                                    std::abs(a.hi)));
  if (a.lo >= 0) hi = std::min(hi, a.hi);
  return {lo, hi};
}

Interval iv_neg(const Interval& a) {
  if (a.lo == kMin) return Interval::top();  // -INT64_MIN wraps
  return {-a.hi, -a.lo};
}

Interval iv_bitnot(const Interval& a) {
  // ~x == -1 - x, exact and never overflowing.
  return {-1 - a.hi, -1 - a.lo};
}

Interval iv_bitand(const Interval& a, const Interval& b) {
  if (a.nonneg() || b.nonneg()) {
    // AND with a value in [0, X] yields a value in [0, X]; when both are
    // non-negative the tighter of the two ends applies.
    int64_t hi = kMax;
    if (a.nonneg()) hi = std::min(hi, a.hi);
    if (b.nonneg()) hi = std::min(hi, b.hi);
    return {0, hi};
  }
  if (a.hi < 0 && b.hi < 0) {
    // negative & negative: x&y = x + y - (x|y) >= x + y + 1.
    __int128 lo = static_cast<__int128>(a.lo) + b.lo + 1;
    return {clamp128(lo), std::min(a.hi, b.hi)};
  }
  return Interval::top();
}

Interval iv_bitor(const Interval& a, const Interval& b) {
  if (a.nonneg() && b.nonneg()) {
    // x|y <= x + y for non-negative operands; x|y >= max(x, y).
    __int128 hi = static_cast<__int128>(a.hi) + b.hi;
    return {std::max(a.lo, b.lo), clamp128(hi)};
  }
  return Interval::top();
}

Interval iv_bitxor(const Interval& a, const Interval& b) {
  if (a.nonneg() && b.nonneg()) {
    __int128 hi = static_cast<__int128>(a.hi) + b.hi;
    return {0, clamp128(hi)};
  }
  return Interval::top();
}

Interval iv_shl(const Interval& a, const Interval& b) {
  // The engines shift by (b & 63); a non-singleton or out-of-range shift
  // count makes the result effectively arbitrary.
  if (!b.is_singleton() || b.lo < 0 || b.lo > 62) return Interval::top();
  int s = static_cast<int>(b.lo);
  if (a.lo < 0) return Interval::top();
  if (s > 0 && a.hi > (kMax >> s)) return Interval::top();
  return {a.lo << s, a.hi << s};
}

Interval iv_shr(const Interval& a, const Interval& b) {
  if (b.is_singleton() && b.lo >= 0 && b.lo <= 63) {
    int s = static_cast<int>(b.lo);
    return {a.lo >> s, a.hi >> s};  // arithmetic shift is monotone
  }
  // Unknown shift amount in [0, 63]: the result stays between the
  // all-shifted (-1 or 0) and unshifted extremes.
  if (a.lo >= 0) return {0, a.hi};
  if (a.hi < 0) return {a.lo, -1};
  return {a.lo, a.hi};
}

Interval iv_abs(const Interval& a) {
  if (a.lo == kMin) return Interval::top();  // llabs(INT64_MIN) wraps
  int64_t lo = a.contains_zero() ? 0 : std::min(std::abs(a.lo),
                                                std::abs(a.hi));
  int64_t hi = std::max(std::abs(a.lo), std::abs(a.hi));
  return {lo, hi};
}

Interval iv_type_range(int size_bytes) {
  switch (size_bytes) {
    case 1: return {-128, 127};
    case 2: return {-32768, 32767};
    case 4: return {std::numeric_limits<int32_t>::min(),
                    std::numeric_limits<int32_t>::max()};
    default: return Interval::top();
  }
}

Interval iv_truncate(const Interval& v, int size_bytes) {
  Interval r = iv_type_range(size_bytes);
  if (v.lo >= r.lo && v.hi <= r.hi) return v;
  return r;
}

// ---------------------------------------------------------------------------

std::string cost_bound_str(uint64_t v) {
  return v == kUnbounded ? "unbounded" : std::to_string(v);
}

std::string StaticCost::str() const {
  std::string s = "steps<=" + cost_bound_str(max_steps) +
                  " records<=" + cost_bound_str(max_records);
  if (exact) s += " (exact records)";
  return s;
}

StaticCost cost_seq(const StaticCost& a, const StaticCost& b) {
  StaticCost c;
  c.max_steps = sat_add(a.max_steps, b.max_steps);
  c.max_records = sat_add(a.max_records, b.max_records);
  c.min_steps = sat_add(a.min_steps, b.min_steps);
  c.min_records = sat_add(a.min_records, b.min_records);
  c.exact = a.exact && b.exact;
  return c;
}

StaticCost cost_alt(const StaticCost& a, const StaticCost& b) {
  StaticCost c;
  c.max_steps = std::max(a.max_steps, b.max_steps);
  c.max_records = std::max(a.max_records, b.max_records);
  c.min_steps = std::min(a.min_steps, b.min_steps);
  c.min_records = std::min(a.min_records, b.min_records);
  c.exact = a.exact && b.exact && a.max_records == b.max_records &&
            a.min_records == b.min_records;
  return c;
}

StaticCost cost_repeat(const StaticCost& body, uint64_t trips_lo,
                       uint64_t trips_hi) {
  StaticCost c;
  c.max_steps = sat_mul(body.max_steps, trips_hi);
  c.max_records = sat_mul(body.max_records, trips_hi);
  // min bounds saturating at kUnbounded would claim an unbounded *lower*
  // bound; cap them below saturation so a lower bound is always a real
  // number of events.
  c.min_steps = sat_mul(body.min_steps, trips_lo);
  if (c.min_steps == kUnbounded) c.min_steps = kUnbounded - 1;
  c.min_records = sat_mul(body.min_records, trips_lo);
  if (c.min_records == kUnbounded) c.min_records = kUnbounded - 1;
  c.exact = body.exact && trips_lo == trips_hi && trips_hi != kUnbounded;
  return c;
}

}  // namespace foray::staticforay
