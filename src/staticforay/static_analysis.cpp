#include "staticforay/static_analysis.h"

#include <optional>
#include <set>
#include <unordered_map>

#include "util/status.h"

namespace foray::staticforay {

namespace {

using minic::BinaryOp;
using minic::Expr;
using minic::ExprKind;
using minic::Stmt;
using minic::StmtKind;
using minic::UnaryOp;

/// Constant-folds integer expressions built from literals.
std::optional<int64_t> fold_const(const Expr* e) {
  if (e == nullptr) return std::nullopt;
  switch (e->kind) {
    case ExprKind::IntLit:
      return e->int_val;
    case ExprKind::Unary:
      if (e->un_op == UnaryOp::Neg) {
        if (auto v = fold_const(e->a.get())) return -*v;
      }
      return std::nullopt;
    case ExprKind::Binary: {
      auto a = fold_const(e->a.get());
      auto b = fold_const(e->b.get());
      if (!a || !b) return std::nullopt;
      switch (e->bin_op) {
        case BinaryOp::Add: return *a + *b;
        case BinaryOp::Sub: return *a - *b;
        case BinaryOp::Mul: return *a * *b;
        case BinaryOp::Div: return *b != 0 ? std::optional(*a / *b)
                                           : std::nullopt;
        case BinaryOp::Shl: return *a << (*b & 63);
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

/// Does any expression in this subtree write `name` (assign, ++/--, or
/// take its address)?
bool expr_modifies(const Expr* e, const std::string& name) {
  if (e == nullptr) return false;
  switch (e->kind) {
    case ExprKind::Assign:
      if (e->a->kind == ExprKind::Ident && e->a->name == name) return true;
      break;
    case ExprKind::Unary:
      if ((e->un_op == UnaryOp::PreInc || e->un_op == UnaryOp::PreDec ||
           e->un_op == UnaryOp::PostInc || e->un_op == UnaryOp::PostDec ||
           e->un_op == UnaryOp::AddrOf) &&
          e->a->kind == ExprKind::Ident && e->a->name == name) {
        return true;
      }
      break;
    default:
      break;
  }
  for (const Expr* child : {e->a.get(), e->b.get(), e->c.get()}) {
    if (expr_modifies(child, name)) return true;
  }
  for (const auto& arg : e->args) {
    if (expr_modifies(arg.get(), name)) return true;
  }
  return false;
}

bool stmt_modifies(const Stmt* s, const std::string& name) {
  if (s == nullptr) return false;
  if (expr_modifies(s->expr.get(), name) ||
      expr_modifies(s->cond.get(), name) ||
      expr_modifies(s->step.get(), name)) {
    return true;
  }
  for (const auto& d : s->decls) {
    if (d.name == name) return true;  // shadowing: stop tracking
    if (expr_modifies(d.init.get(), name)) return true;
    for (const auto& i : d.init_list) {
      if (expr_modifies(i.get(), name)) return true;
    }
  }
  if (stmt_modifies(s->init.get(), name)) return true;
  for (const Stmt* child :
       {s->then_branch.get(), s->else_branch.get(), s->body.get()}) {
    if (stmt_modifies(child, name)) return true;
  }
  for (const auto& child : s->stmts) {
    if (stmt_modifies(child.get(), name)) return true;
  }
  return false;
}

class StaticAnalyzer {
 public:
  explicit StaticAnalyzer(const minic::Program& prog) : prog_(prog) {}

  Analysis run() {
    for (const auto& fn : prog_.funcs) {
      array_vars_.clear();
      collect_arrays_from_params(*fn);
      iterators_.clear();
      walk_stmt(fn->body.get());
    }
    return std::move(out_);
  }

 private:
  /// Array names visible as direct arrays (globals + locals declared with
  /// []). Pointer parameters are *not* arrays: the baseline cannot see
  /// through them.
  bool is_array_var(const std::string& name) const {
    if (array_vars_.count(name)) return true;
    for (const auto& g : prog_.globals) {
      if (g.name == name) return g.array_len >= 0;
    }
    return false;
  }

  void collect_arrays_from_params(const minic::Function&) {
    // Parameters never count: even `int xs[]` decays to a pointer whose
    // provenance the static baseline cannot establish.
  }

  /// Canonical-for check; returns the iterator name if canonical.
  std::optional<std::string> canonical_iterator(const Stmt& s) {
    if (s.kind != StmtKind::For) return std::nullopt;
    // init: `int i = c` or `i = c`.
    std::string iter;
    if (s.init == nullptr) return std::nullopt;
    if (s.init->kind == StmtKind::Decl && s.init->decls.size() == 1 &&
        s.init->decls[0].array_len < 0 &&
        s.init->decls[0].type == minic::make_type(minic::BaseType::Int) &&
        s.init->decls[0].init != nullptr &&
        fold_const(s.init->decls[0].init.get())) {
      iter = s.init->decls[0].name;
    } else if (s.init->kind == StmtKind::Expr && s.init->expr != nullptr &&
               s.init->expr->kind == ExprKind::Assign &&
               s.init->expr->as_op == minic::AssignOp::Assign &&
               s.init->expr->a->kind == ExprKind::Ident &&
               fold_const(s.init->expr->b.get())) {
      iter = s.init->expr->a->name;
    } else {
      return std::nullopt;
    }
    // cond: `i <op> const`.
    if (s.cond == nullptr || s.cond->kind != ExprKind::Binary) {
      return std::nullopt;
    }
    const bool rel = s.cond->bin_op == BinaryOp::Lt ||
                     s.cond->bin_op == BinaryOp::Le ||
                     s.cond->bin_op == BinaryOp::Gt ||
                     s.cond->bin_op == BinaryOp::Ge ||
                     s.cond->bin_op == BinaryOp::Ne;
    if (!rel || s.cond->a->kind != ExprKind::Ident ||
        s.cond->a->name != iter || !fold_const(s.cond->b.get())) {
      return std::nullopt;
    }
    // step: i++ / i-- / ++i / --i / i += c / i -= c.
    if (s.step == nullptr) return std::nullopt;
    const Expr& st = *s.step;
    bool ok = false;
    if (st.kind == ExprKind::Unary &&
        (st.un_op == UnaryOp::PreInc || st.un_op == UnaryOp::PostInc ||
         st.un_op == UnaryOp::PreDec || st.un_op == UnaryOp::PostDec) &&
        st.a->kind == ExprKind::Ident && st.a->name == iter) {
      ok = true;
    }
    if (st.kind == ExprKind::Assign &&
        (st.as_op == minic::AssignOp::AddA ||
         st.as_op == minic::AssignOp::SubA) &&
        st.a->kind == ExprKind::Ident && st.a->name == iter &&
        fold_const(st.b.get())) {
      ok = true;
    }
    if (!ok) return std::nullopt;
    // The body must not disturb the iterator.
    if (stmt_modifies(s.body.get(), iter)) return std::nullopt;
    return iter;
  }

  /// Affine-in-iterators check for an index expression.
  bool is_affine_index(const Expr* e) const {
    if (e == nullptr) return false;
    if (fold_const(e)) return true;
    switch (e->kind) {
      case ExprKind::Ident:
        return iterators_.count(e->name) > 0;
      case ExprKind::Unary:
        return e->un_op == UnaryOp::Neg && is_affine_index(e->a.get());
      case ExprKind::Binary:
        switch (e->bin_op) {
          case BinaryOp::Add:
          case BinaryOp::Sub:
            return is_affine_index(e->a.get()) &&
                   is_affine_index(e->b.get());
          case BinaryOp::Mul:
            // One side must fold to a constant.
            return (fold_const(e->a.get()) && is_affine_index(e->b.get())) ||
                   (fold_const(e->b.get()) && is_affine_index(e->a.get()));
          case BinaryOp::Shl:
            return is_affine_index(e->a.get()) &&
                   fold_const(e->b.get()).has_value();
          default:
            return false;
        }
      default:
        return false;
    }
  }

  void walk_expr(const Expr* e) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::Index) {
      ++out_.total_ref_sites;
      if (e->a->kind == ExprKind::Ident && is_array_var(e->a->name) &&
          is_affine_index(e->b.get())) {
        out_.affine_ref_nodes.insert(e->node_id);
      }
    }
    if (e->kind == ExprKind::Unary && e->un_op == UnaryOp::Deref) {
      ++out_.total_ref_sites;  // pointer deref: never statically affine
    }
    for (const Expr* child : {e->a.get(), e->b.get(), e->c.get()}) {
      walk_expr(child);
    }
    for (const auto& arg : e->args) walk_expr(arg.get());
  }

  void walk_stmt(const Stmt* s) {
    if (s == nullptr) return;
    switch (s->kind) {
      case StmtKind::For: {
        ++out_.total_loops;
        auto iter = canonical_iterator(*s);
        walk_stmt(s->init.get());
        walk_expr(s->cond.get());
        walk_expr(s->step.get());
        if (iter) {
          FORAY_CHECK(s->loop_id >= 0, "program must be annotated");
          out_.canonical_loops.insert(s->loop_id);
          iterators_.insert(*iter);
          walk_stmt(s->body.get());
          iterators_.erase(*iter);
        } else {
          walk_stmt(s->body.get());
        }
        break;
      }
      case StmtKind::While:
      case StmtKind::DoWhile:
        ++out_.total_loops;
        walk_expr(s->cond.get());
        walk_stmt(s->body.get());
        break;
      case StmtKind::If:
        walk_expr(s->cond.get());
        walk_stmt(s->then_branch.get());
        walk_stmt(s->else_branch.get());
        break;
      case StmtKind::Block:
        for (const auto& child : s->stmts) {
          // Track locally declared arrays.
          if (child->kind == StmtKind::Decl) {
            for (const auto& d : child->decls) {
              if (d.array_len >= 0) array_vars_.insert(d.name);
            }
          }
          walk_stmt(child.get());
        }
        break;
      case StmtKind::Decl:
        for (const auto& d : s->decls) {
          if (d.array_len >= 0) array_vars_.insert(d.name);
          walk_expr(d.init.get());
          for (const auto& i : d.init_list) walk_expr(i.get());
        }
        break;
      case StmtKind::Expr:
      case StmtKind::Return:
        walk_expr(s->expr.get());
        break;
      default:
        break;
    }
  }

  const minic::Program& prog_;
  Analysis out_;
  std::set<std::string> iterators_;  ///< canonical iterators in scope
  std::set<std::string> array_vars_; ///< locally declared arrays
};

}  // namespace

Analysis analyze(const minic::Program& prog) {
  StaticAnalyzer analyzer(prog);
  return analyzer.run();
}

ConversionStats compute_conversion(const core::ForayModel& model,
                                   const Analysis& analysis) {
  ConversionStats out;
  out.model_refs = static_cast<int>(model.refs.size());

  // A reference is already FORAY iff its subscript is statically affine
  // and every loop of its emitted nest is a canonical for. A loop is
  // already FORAY iff it is canonical and every model reference it
  // encloses is statically analyzable — a canonical for whose body only
  // walks pointers (adpcm's encoder loop) is useless to a static SPM
  // technique and counts as "not in FORAY form", as in the paper.
  std::set<int> model_loops, not_foray_loops;
  for (const auto& ref : model.refs) {
    const int node = minic::node_for_instr_addr(ref.instr);
    bool static_ok = analysis.ref_is_affine(node);
    for (int loop : ref.emitted_loop_path()) {
      model_loops.insert(loop);
      if (!analysis.loop_is_canonical(loop)) static_ok = false;
    }
    if (!static_ok) {
      ++out.refs_not_foray;
      for (int loop : ref.emitted_loop_path()) {
        not_foray_loops.insert(loop);
      }
    }
  }
  for (int loop : model_loops) {
    if (!analysis.loop_is_canonical(loop)) not_foray_loops.insert(loop);
  }
  out.model_loops = static_cast<int>(model_loops.size());
  out.loops_not_foray = static_cast<int>(not_foray_loops.size());
  return out;
}

}  // namespace foray::staticforay
