#include "staticforay/checker.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "instrument/annotator.h"
#include "minic/intrinsics.h"
#include "minic/parser.h"

namespace foray::staticforay {
namespace {

using minic::AssignOp;
using minic::BinaryOp;
using minic::Expr;
using minic::ExprKind;
using minic::Function;
using minic::Program;
using minic::Stmt;
using minic::StmtKind;
using minic::Type;
using minic::UnaryOp;
using minic::VarDecl;

// Per-construct step ceilings and floors. The engines count "steps"
// differently (the tree walker once per eval()/exec() call, the VM once
// per dispatched instruction — with fused array ops below the node count
// and expanded short-circuit above it), so the ceilings are generous
// per-node constants and the floors sparse per-statement ones;
// tests/checker_test.cpp ratchets both against the real engines.
constexpr uint64_t kStepsPerNode = 8;
constexpr uint64_t kStepsPerStmt = 8;
constexpr uint64_t kStepsPerIter = 8;
constexpr uint64_t kStepsPerCall = 16;
constexpr uint64_t kStepsPerParam = 8;
/// Analysis inlining depth; far below the engines' 512-frame fault limit,
/// anything deeper is treated like recursion (bounds given up).
constexpr int kMaxAnalysisDepth = 64;
constexpr int kMaxLoopPasses = 8;
constexpr size_t kMaxWarnings = 200;

constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();

/// Thrown when the abstract-interpretation work budget runs out; caught
/// in run(), where results degrade to AnalysisLimit + unbounded cost.
struct Bail {};

uint64_t ceil_div_u64(uint64_t a, uint64_t b) {
  return b == 0 ? 0 : a / b + (a % b != 0 ? 1 : 0);
}

// ---------------------------------------------------------------------------
// Abstract state: one interval + init flag per tracked scalar.

enum class InitState : uint8_t { No, Maybe, Yes };

InitState init_join(InitState a, InitState b) {
  return a == b ? a : InitState::Maybe;
}

struct AbsVal {
  Interval iv = Interval::top();
  InitState init = InitState::Yes;
  bool operator==(const AbsVal& o) const {
    return iv == o.iv && init == o.init;
  }
};

struct AbsState {
  bool reachable = true;
  /// Unreachable because a must-fault was already reported on every path
  /// here — suppresses follow-on Unreachable noise.
  bool fault_stop = false;
  /// Every execution that has not faulted or exited earlier reaches this
  /// program point — the precondition for must-fault severity.
  bool definite = true;
  std::map<int, AbsVal> vars;  ///< decl node_id -> tracked scalar value

  bool operator==(const AbsState& o) const {
    return reachable == o.reachable && fault_stop == o.fault_stop &&
           definite == o.definite && vars == o.vars;
  }
};

AbsState st_join(const AbsState& a, const AbsState& b) {
  if (!a.reachable) return b;
  if (!b.reachable) return a;
  AbsState r;
  r.reachable = true;
  r.fault_stop = a.fault_stop && b.fault_stop;
  r.definite = a.definite && b.definite;
  r.vars = a.vars;
  for (const auto& [id, bv] : b.vars) {
    auto it = r.vars.find(id);
    if (it == r.vars.end()) {
      r.vars.emplace(id, bv);
    } else {
      it->second.iv = iv_join(it->second.iv, bv.iv);
      it->second.init = init_join(it->second.init, bv.init);
    }
  }
  return r;
}

/// prev ∇ next, per variable (ends that grew jump to the int64 extremes).
AbsState st_widen(const AbsState& prev, const AbsState& next) {
  AbsState r = next;
  for (auto& [id, v] : r.vars) {
    auto it = prev.vars.find(id);
    if (it != prev.vars.end()) v.iv = iv_widen(it->second.iv, v.iv);
  }
  return r;
}

// ---------------------------------------------------------------------------
// Static AST scans.

template <typename F>
void for_each_expr(const Expr* e, const F& f) {
  if (!e) return;
  f(*e);
  for_each_expr(e->a.get(), f);
  for_each_expr(e->b.get(), f);
  for_each_expr(e->c.get(), f);
  for (const auto& x : e->args) for_each_expr(x.get(), f);
}

template <typename F>
void for_each_stmt_expr(const Stmt* s, const F& f) {
  if (!s) return;
  for_each_expr(s->expr.get(), f);
  for (const VarDecl& d : s->decls) {
    for_each_expr(d.init.get(), f);
    for (const auto& e : d.init_list) for_each_expr(e.get(), f);
  }
  for_each_stmt_expr(s->init.get(), f);
  for_each_expr(s->cond.get(), f);
  for_each_expr(s->step.get(), f);
  for_each_stmt_expr(s->then_branch.get(), f);
  for_each_stmt_expr(s->else_branch.get(), f);
  for_each_stmt_expr(s->body.get(), f);
  for (const auto& x : s->stmts) for_each_stmt_expr(x.get(), f);
}

bool stmt_has_return(const Stmt* s) {
  if (!s) return false;
  if (s->kind == StmtKind::Return) return true;
  if (stmt_has_return(s->init.get()) ||
      stmt_has_return(s->then_branch.get()) ||
      stmt_has_return(s->else_branch.get()) || stmt_has_return(s->body.get()))
    return true;
  for (const auto& x : s->stmts)
    if (stmt_has_return(x.get())) return true;
  return false;
}

/// A `break` binding to the *enclosing* loop (does not descend into
/// nested loops, where break binds locally).
bool stmt_has_break(const Stmt* s) {
  if (!s) return false;
  switch (s->kind) {
    case StmtKind::Break:
      return true;
    case StmtKind::While:
    case StmtKind::DoWhile:
    case StmtKind::For:
      return false;
    case StmtKind::If:
      return stmt_has_break(s->then_branch.get()) ||
             stmt_has_break(s->else_branch.get());
    case StmtKind::Block:
      for (const auto& x : s->stmts)
        if (stmt_has_break(x.get())) return true;
      return false;
    default:
      return false;
  }
}

/// No assignments, increments or calls: safe to re-evaluate abstractly
/// without mutating the state (loads are fine — array elements and
/// pointer targets are never tracked).
bool is_pure(const Expr& e) {
  bool pure = true;
  for_each_expr(&e, [&](const Expr& x) {
    if (x.kind == ExprKind::Assign || x.kind == ExprKind::Call) pure = false;
    if (x.kind == ExprKind::Unary &&
        (x.un_op == UnaryOp::PreInc || x.un_op == UnaryOp::PreDec ||
         x.un_op == UnaryOp::PostInc || x.un_op == UnaryOp::PostDec))
      pure = false;
  });
  return pure;
}

bool is_relational(BinaryOp op) {
  switch (op) {
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      return true;
    default:
      return false;
  }
}

BinaryOp negate_rel(BinaryOp op) {
  switch (op) {
    case BinaryOp::Lt: return BinaryOp::Ge;
    case BinaryOp::Le: return BinaryOp::Gt;
    case BinaryOp::Gt: return BinaryOp::Le;
    case BinaryOp::Ge: return BinaryOp::Lt;
    case BinaryOp::Eq: return BinaryOp::Ne;
    default: return BinaryOp::Eq;  // Ne
  }
}

/// Comparison result sharpened to {0}, {1} or [0,1].
Interval iv_compare(BinaryOp op, const Interval& a, const Interval& b) {
  bool t = false, f = false;
  switch (op) {
    case BinaryOp::Lt: t = a.hi < b.lo; f = a.lo >= b.hi; break;
    case BinaryOp::Le: t = a.hi <= b.lo; f = a.lo > b.hi; break;
    case BinaryOp::Gt: t = a.lo > b.hi; f = a.hi <= b.lo; break;
    case BinaryOp::Ge: t = a.lo >= b.hi; f = a.hi < b.lo; break;
    case BinaryOp::Eq:
      t = a.is_singleton() && b.is_singleton() && a.lo == b.lo;
      f = a.hi < b.lo || b.hi < a.lo;
      break;
    case BinaryOp::Ne:
      f = a.is_singleton() && b.is_singleton() && a.lo == b.lo;
      t = a.hi < b.lo || b.hi < a.lo;
      break;
    default:
      break;
  }
  if (t) return Interval::singleton(1);
  if (f) return Interval::singleton(0);
  return Interval::range(0, 1);
}

/// Pure arithmetic transfer (divisor-zero handling is the caller's job:
/// the engines fault before producing a value).
Interval iv_arith(BinaryOp op, const Interval& a, const Interval& b) {
  switch (op) {
    case BinaryOp::Add: return iv_add(a, b);
    case BinaryOp::Sub: return iv_sub(a, b);
    case BinaryOp::Mul: return iv_mul(a, b);
    case BinaryOp::Div: return iv_div(a, b);
    case BinaryOp::Mod: return iv_mod(a, b);
    case BinaryOp::Shl: return iv_shl(a, b);
    case BinaryOp::Shr: return iv_shr(a, b);
    case BinaryOp::BitAnd: return iv_bitand(a, b);
    case BinaryOp::BitOr: return iv_bitor(a, b);
    case BinaryOp::BitXor: return iv_bitxor(a, b);
    default:
      if (is_relational(op)) return iv_compare(op, a, b);
      return Interval::top();
  }
}

// ---------------------------------------------------------------------------
// Cost accumulator for one structured region (function body, loop body,
// branch arm). `min_live` goes false once a path may leave the region
// early — a branch arm that returns/breaks while the join stays
// reachable, or a callee that can exit() the whole program — after which
// later statements stop contributing to the lower bounds (they may never
// run on the completing execution).

struct Acc {
  uint64_t max_steps = 0, max_records = 0;
  uint64_t min_steps = 0, min_records = 0;
  uint64_t max_out = 0, max_heap = 0;
  bool exact = true;
  bool min_live = true;

  void steps(uint64_t mx, uint64_t mn) {
    max_steps = sat_add(max_steps, mx);
    if (min_live) min_steps = sat_add(min_steps, mn);
  }
  void recs(uint64_t mx, uint64_t mn) {
    max_records = sat_add(max_records, mx);
    if (min_live) min_records = sat_add(min_records, mn);
    if (mx != mn || !min_live) exact = false;
  }
  void rec_exact(uint64_t n) { recs(n, n); }
  void out(uint64_t n) { max_out = sat_add(max_out, n); }
  void heap(uint64_t n) { max_heap = sat_add(max_heap, n); }

  /// Sequential append of a finished sub-region (callee body, composed
  /// loop). Does NOT inherit the sub-region's min_live: an early return
  /// inside a callee still returns to us.
  void append(const Acc& b) {
    max_steps = sat_add(max_steps, b.max_steps);
    max_records = sat_add(max_records, b.max_records);
    if (min_live) {
      min_steps = sat_add(min_steps, b.min_steps);
      min_records = sat_add(min_records, b.min_records);
    }
    max_out = sat_add(max_out, b.max_out);
    max_heap = sat_add(max_heap, b.max_heap);
    exact = exact && b.exact;
  }

  /// Branch merge: exactly one of a / b runs.
  void append_alt(const Acc& a, const Acc& b) {
    Acc m;
    m.max_steps = std::max(a.max_steps, b.max_steps);
    m.max_records = std::max(a.max_records, b.max_records);
    m.min_steps = std::min(a.min_steps, b.min_steps);
    m.min_records = std::min(a.min_records, b.min_records);
    m.max_out = std::max(a.max_out, b.max_out);
    m.max_heap = std::max(a.max_heap, b.max_heap);
    m.exact = a.exact && b.exact && a.max_records == b.max_records &&
              a.min_records == b.min_records;
    append(m);
    min_live = min_live && a.min_live && b.min_live;
  }
};

// ---------------------------------------------------------------------------
// The checker proper.

class Checker {
 public:
  Checker(const Program& prog, const CheckerOptions& opts)
      : prog_(prog), opts_(opts) {}

  CheckReport run();

 private:
  struct VarMeta {
    std::string name;
    Type type;
    int array_len = -1;
    bool is_global = false;
    bool tracked = false;  ///< int scalar whose address is never taken
  };
  struct FnFrame {
    const Function* fn = nullptr;
    Interval ret = Interval::singleton(0);
    bool ret_seen = false;
    AbsState ret_state;
    bool ret_state_seen = false;
  };
  struct LoopCtx {
    AbsState brk;
    bool brk_seen = false;
    AbsState cont;
    bool cont_seen = false;
  };
  struct TripInfo {
    uint64_t lo = 0;
    uint64_t hi = kUnbounded;
    bool canonical = false;  ///< a finite bound was extracted
  };
  struct FnRes {
    Interval ret = Interval::top();
    bool may_exit = false;
  };

  void tick() {
    if (++work_ > opts_.max_abstract_steps) throw Bail{};
  }

  void diag(CheckKind k, Severity sev, int line, int node, std::string msg) {
    if (!emit_) return;
    int anchor = node >= 0 ? node : -line;
    int key = (static_cast<int>(k) << 1) | static_cast<int>(sev);
    if (!reported_.insert({anchor, key}).second) return;
    if (sev == Severity::Warning && report_.diags.size() >= kMaxWarnings)
      return;
    report_.diags.push_back(CheckDiag{k, sev, line, node, std::move(msg)});
  }

  // -- scopes and variable registry -----------------------------------------

  void push_scope() { scopes_.emplace_back(); }
  void pop_scope(AbsState* st) {
    for (const auto& [name, id] : scopes_.back()) st->vars.erase(id);
    scopes_.pop_back();
  }
  int lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return f->second;
    }
    return -1;
  }
  const VarMeta* meta_of(int decl_id) const {
    auto it = meta_.find(decl_id);
    return it == meta_.end() ? nullptr : &it->second;
  }

  void register_var(const VarDecl& d, bool is_global, AbsState* st) {
    VarMeta m;
    m.name = d.name;
    m.type = d.type;
    m.array_len = d.array_len;
    m.is_global = is_global;
    m.tracked = d.array_len < 0 && d.type.is_integer() &&
                addr_taken_.count(d.name) == 0;
    meta_[d.node_id] = m;
    scopes_.back()[d.name] = d.node_id;
    if (m.tracked) {
      AbsVal v;
      if (is_global) {
        // Global memory is zero-backed before initializers run.
        v.iv = Interval::singleton(0);
        v.init = InitState::Yes;
      } else {
        // Stale stack contents: any value of the declared type.
        v.iv = iv_type_range(d.type.size());
        v.init = InitState::No;
      }
      st->vars[d.node_id] = v;
    }
  }

  void register_param(const minic::Param& p, const Interval& arg,
                      AbsState* st) {
    VarMeta m;
    m.name = p.name;
    m.type = p.type;
    m.tracked = p.type.is_integer() && addr_taken_.count(p.name) == 0;
    meta_[p.node_id] = m;
    scopes_.back()[p.name] = p.node_id;
    if (m.tracked)
      st->vars[p.node_id] =
          AbsVal{iv_truncate(arg, p.type.size()), InitState::Yes};
  }

  // -- pure (side-effect-free) evaluation, used by assume and trip
  //    extraction; never emits diagnostics or cost ---------------------------

  Interval pure_eval(const Expr& e, const AbsState& st) const {
    switch (e.kind) {
      case ExprKind::IntLit:
        return Interval::singleton(e.int_val);
      case ExprKind::Ident: {
        if (e.decayed_array || !e.type.is_integer()) return Interval::top();
        int id = lookup(e.name);
        if (id >= 0) {
          auto it = st.vars.find(id);
          if (it != st.vars.end()) return it->second.iv;
          const VarMeta* m = meta_of(id);
          if (m && m->array_len < 0 && m->type.is_integer())
            return iv_type_range(m->type.size());
        }
        return Interval::top();
      }
      case ExprKind::Unary:
        switch (e.un_op) {
          case UnaryOp::Neg: return iv_neg(pure_eval(*e.a, st));
          case UnaryOp::BitNot: return iv_bitnot(pure_eval(*e.a, st));
          case UnaryOp::Not: {
            Interval c = pure_eval(*e.a, st);
            if (c.is_zero()) return Interval::singleton(1);
            if (!c.contains_zero()) return Interval::singleton(0);
            return Interval::range(0, 1);
          }
          default:
            return Interval::top();
        }
      case ExprKind::Binary: {
        if (e.bin_op == BinaryOp::LogAnd || e.bin_op == BinaryOp::LogOr) {
          Interval a = pure_eval(*e.a, st), b = pure_eval(*e.b, st);
          bool a0 = a.is_zero(), b0 = b.is_zero();
          bool a1 = !a.contains_zero(), b1 = !b.contains_zero();
          if (e.bin_op == BinaryOp::LogAnd) {
            if (a0 || (a1 && b0)) return Interval::singleton(0);
            if (a1 && b1) return Interval::singleton(1);
          } else {
            if (a1 || (a0 && b1)) return Interval::singleton(1);
            if (a0 && b0) return Interval::singleton(0);
          }
          return Interval::range(0, 1);
        }
        if (!e.a->type.is_integer() || !e.b->type.is_integer()) {
          return is_relational(e.bin_op) ? Interval::range(0, 1)
                                         : Interval::top();
        }
        return iv_arith(e.bin_op, pure_eval(*e.a, st), pure_eval(*e.b, st));
      }
      case ExprKind::Cast:
        if (e.cast_type.is_integer())
          return iv_truncate(pure_eval(*e.a, st), e.cast_type.size());
        return Interval::top();
      case ExprKind::Cond: {
        Interval c = pure_eval(*e.a, st);
        Interval bt = pure_eval(*e.b, st), bf = pure_eval(*e.c, st);
        if (e.type.is_integer()) {
          bt = iv_truncate(bt, e.type.size());
          bf = iv_truncate(bf, e.type.size());
        }
        if (!c.contains_zero()) return bt;
        if (c.is_zero()) return bf;
        return iv_join(bt, bf);
      }
      default:
        return Interval::top();
    }
  }

  // -- branch narrowing ------------------------------------------------------

  /// Refines *st under "e evaluates truthy == truth". Returns false when
  /// the condition is infeasible in *st (the branch cannot execute).
  /// Only called on pure conditions (or pure subtrees of them).
  bool assume(const Expr& e, bool truth, AbsState* st) const {
    switch (e.kind) {
      case ExprKind::IntLit:
        return (e.int_val != 0) == truth;
      case ExprKind::Unary:
        if (e.un_op == UnaryOp::Not) return assume(*e.a, !truth, st);
        break;
      case ExprKind::Cast:
        if (e.cast_type.is_integer() && e.a->type.is_integer())
          return assume(*e.a, truth, st);
        break;
      case ExprKind::Binary: {
        if (e.bin_op == BinaryOp::LogAnd && truth)
          return assume(*e.a, true, st) && assume(*e.b, true, st);
        if (e.bin_op == BinaryOp::LogOr && !truth)
          return assume(*e.a, false, st) && assume(*e.b, false, st);
        if (is_relational(e.bin_op) && e.a->type.is_integer() &&
            e.b->type.is_integer()) {
          BinaryOp op = truth ? e.bin_op : negate_rel(e.bin_op);
          return assume_rel(op, *e.a, *e.b, st);
        }
        break;
      }
      case ExprKind::Ident: {
        if (e.decayed_array || !e.type.is_integer()) return true;
        int id = lookup(e.name);
        if (id < 0) return true;
        auto it = st->vars.find(id);
        if (it == st->vars.end()) return true;
        Interval& v = it->second.iv;
        if (truth) {
          if (v.is_zero()) return false;
          if (v.lo == 0 && v.hi > 0) v.lo = 1;
          if (v.hi == 0 && v.lo < 0) v.hi = -1;
        } else {
          Interval m;
          if (!iv_meet(v, Interval::singleton(0), &m)) return false;
          v = m;
        }
        return true;
      }
      default:
        break;
    }
    Interval v = pure_eval(e, *st);
    if (truth && v.is_zero()) return false;
    if (!truth && !v.contains_zero()) return false;
    return true;
  }

  bool assume_rel(BinaryOp op, const Expr& ea, const Expr& eb,
                  AbsState* st) const {
    Interval a = pure_eval(ea, *st), b = pure_eval(eb, *st);
    if (iv_compare(op, a, b).is_zero()) return false;
    auto narrow = [&](const Expr& side, const Interval& allowed) -> bool {
      if (side.kind != ExprKind::Ident || side.decayed_array ||
          !side.type.is_integer())
        return true;
      int id = lookup(side.name);
      if (id < 0) return true;
      auto it = st->vars.find(id);
      if (it == st->vars.end()) return true;
      Interval m;
      if (!iv_meet(it->second.iv, allowed, &m)) return false;
      it->second.iv = m;
      return true;
    };
    switch (op) {
      case BinaryOp::Lt:
        return narrow(ea, {kI64Min, b.hi == kI64Min ? kI64Min : b.hi - 1}) &&
               narrow(eb, {a.lo == kI64Max ? kI64Max : a.lo + 1, kI64Max});
      case BinaryOp::Le:
        return narrow(ea, {kI64Min, b.hi}) && narrow(eb, {a.lo, kI64Max});
      case BinaryOp::Gt:
        return narrow(ea, {b.lo == kI64Max ? kI64Max : b.lo + 1, kI64Max}) &&
               narrow(eb, {kI64Min, a.hi == kI64Min ? kI64Min : a.hi - 1});
      case BinaryOp::Ge:
        return narrow(ea, {b.lo, kI64Max}) && narrow(eb, {kI64Min, a.hi});
      case BinaryOp::Eq:
        return narrow(ea, b) && narrow(eb, a);
      case BinaryOp::Ne: {
        // Endpoint trimming only: x != c shaves c off an end of x.
        auto trim = [&](const Expr& side, const Interval& other) -> bool {
          if (!other.is_singleton()) return true;
          if (side.kind != ExprKind::Ident || side.decayed_array ||
              !side.type.is_integer())
            return true;
          int id = lookup(side.name);
          if (id < 0) return true;
          auto it = st->vars.find(id);
          if (it == st->vars.end()) return true;
          Interval& v = it->second.iv;
          if (v.is_singleton() && v.lo == other.lo) return false;
          if (v.lo == other.lo) v.lo += 1;
          if (v.hi == other.lo) v.hi -= 1;
          return true;
        };
        return trim(ea, b) && trim(eb, a);
      }
      default:
        return true;
    }
  }

  // -- expression evaluation -------------------------------------------------
  //
  // Mirrors the engines' trace emission (sim/interp_impl.h) record for
  // record so straight-line bounds can be exact: scalar ident read = 1,
  // array ident = 0 (address value), plain store = 1, compound/inc-dec =
  // 2, subscript or pointer load = 1, literals and address-of = 0.

  Interval eval(const Expr& e, AbsState& st, Acc& acc) {
    tick();
    acc.steps(kStepsPerNode, 0);
    switch (e.kind) {
      case ExprKind::IntLit:
        return Interval::singleton(e.int_val);
      case ExprKind::FloatLit:
      case ExprKind::StrLit:
        return Interval::top();
      case ExprKind::Ident:
        return eval_ident(e, st, acc);
      case ExprKind::Unary:
        return eval_unary(e, st, acc);
      case ExprKind::Binary:
        return eval_binary(e, st, acc);
      case ExprKind::Assign:
        return eval_assign(e, st, acc);
      case ExprKind::Cond:
        return eval_ternary(e, st, acc);
      case ExprKind::Call:
        return eval_call(e, st, acc);
      case ExprKind::Index:
        return eval_index(e, st, acc);
      case ExprKind::Cast: {
        Interval v = eval(*e.a, st, acc);
        if (e.cast_type.is_integer()) {
          if (e.a->type.is_integer())
            return iv_truncate(v, e.cast_type.size());
          return iv_type_range(e.cast_type.size());
        }
        return Interval::top();
      }
    }
    return Interval::top();
  }

  Interval eval_ident(const Expr& e, AbsState& st, Acc& acc) {
    if (e.decayed_array) return Interval::top();  // address value, no record
    acc.rec_exact(1);                             // scalar load
    int id = lookup(e.name);
    if (id < 0) return Interval::top();
    auto it = st.vars.find(id);
    if (it != st.vars.end()) {
      if (it->second.init == InitState::No)
        diag(CheckKind::UseBeforeInit, Severity::Warning, e.line, e.node_id,
             "'" + e.name + "' is read before initialization");
      else if (it->second.init == InitState::Maybe)
        diag(CheckKind::UseBeforeInit, Severity::Warning, e.line, e.node_id,
             "'" + e.name + "' may be read before initialization");
      return it->second.iv;
    }
    const VarMeta* m = meta_of(id);
    if (m && m->array_len < 0 && m->type.is_integer())
      return iv_type_range(m->type.size());
    return Interval::top();
  }

  Interval eval_unary(const Expr& e, AbsState& st, Acc& acc) {
    switch (e.un_op) {
      case UnaryOp::Neg: {
        Interval v = eval(*e.a, st, acc);
        return e.type.is_integer() ? iv_neg(v) : Interval::top();
      }
      case UnaryOp::BitNot:
        return iv_bitnot(eval(*e.a, st, acc));
      case UnaryOp::Not: {
        Interval v = eval(*e.a, st, acc);
        if (e.a->type.is_integer()) {
          if (v.is_zero()) return Interval::singleton(1);
          if (!v.contains_zero()) return Interval::singleton(0);
        }
        return Interval::range(0, 1);
      }
      case UnaryOp::Deref: {
        eval(*e.a, st, acc);
        diag(CheckKind::PointerUnchecked, Severity::Warning, e.line, e.node_id,
             "unverified pointer dereference");
        acc.rec_exact(1);
        return e.type.is_integer() ? iv_type_range(e.type.size())
                                   : Interval::top();
      }
      case UnaryOp::AddrOf:
        eval_addr(*e.a, st, acc);
        return Interval::top();
      default:  // Pre/Post Inc/Dec
        return eval_incdec(e, st, acc);
    }
  }

  /// Address computation only (operand of &): subscripts are evaluated
  /// but nothing is loaded, and no access can fault (&a[n] is legal).
  void eval_addr(const Expr& e, AbsState& st, Acc& acc) {
    tick();
    acc.steps(kStepsPerNode, 0);
    switch (e.kind) {
      case ExprKind::Ident:
        return;  // slot address, no memory traffic
      case ExprKind::Index:
        if (e.a->kind == ExprKind::Ident && e.a->decayed_array) {
          tick();
          acc.steps(kStepsPerNode, 0);
        } else {
          eval(*e.a, st, acc);
        }
        eval(*e.b, st, acc);
        return;
      case ExprKind::Unary:
        if (e.un_op == UnaryOp::Deref) {
          eval(*e.a, st, acc);
          return;
        }
        break;
      default:
        break;
    }
    eval(e, st, acc);
  }

  // -- lvalues ---------------------------------------------------------------

  struct Place {
    enum Kind { Tracked, UntrackedScalar, ArrayElem, Pointer } kind = Pointer;
    int decl_id = -1;
    Type type;  ///< value type stored through this place
  };

  /// Evaluates an assignment target's address (subscripts, pointer
  /// bases), reporting bounds/pointer diagnostics. No load/store records.
  Place eval_place(const Expr& e, AbsState& st, Acc& acc) {
    tick();
    acc.steps(kStepsPerNode, 0);
    Place p;
    p.type = e.type;
    if (e.kind == ExprKind::Ident && !e.decayed_array) {
      int id = lookup(e.name);
      const VarMeta* m = id >= 0 ? meta_of(id) : nullptr;
      if (m && m->tracked) {
        p.kind = Place::Tracked;
        p.decl_id = id;
      } else {
        p.kind = Place::UntrackedScalar;
      }
      return p;
    }
    if (e.kind == ExprKind::Index) {
      if (e.a->kind == ExprKind::Ident && e.a->decayed_array) {
        tick();
        acc.steps(kStepsPerNode, 0);  // base address
        Interval idx = eval(*e.b, st, acc);
        int id = lookup(e.a->name);
        const VarMeta* m = id >= 0 ? meta_of(id) : nullptr;
        if (m && m->array_len >= 0)
          check_bounds(e, idx, m->array_len, e.a->name);
        p.kind = Place::ArrayElem;
        return p;
      }
      eval(*e.a, st, acc);
      eval(*e.b, st, acc);
      diag(CheckKind::PointerUnchecked, Severity::Warning, e.line, e.node_id,
           "unverified pointer subscript");
      return p;
    }
    if (e.kind == ExprKind::Unary && e.un_op == UnaryOp::Deref) {
      eval(*e.a, st, acc);
      diag(CheckKind::PointerUnchecked, Severity::Warning, e.line, e.node_id,
           "unverified pointer dereference");
      return p;
    }
    eval(e, st, acc);
    diag(CheckKind::PointerUnchecked, Severity::Warning, e.line, e.node_id,
         "unverified memory write");
    return p;
  }

  void check_bounds(const Expr& e, const Interval& idx, int len,
                    const std::string& name) {
    if (idx.lo >= 0 && idx.hi < len) return;
    bool definite_oob = idx.hi < 0 || idx.lo >= len;
    diag(CheckKind::OutOfBounds, Severity::Warning, e.line, e.node_id,
         "subscript " + idx.str() +
             (definite_oob ? " is provably outside '" : " may leave '") +
             name + "[" + std::to_string(len) + "]'");
  }

  Interval load_place(const Place& p, const Expr& at, AbsState& st, Acc& acc) {
    acc.rec_exact(1);
    if (p.kind == Place::Tracked) {
      auto it = st.vars.find(p.decl_id);
      if (it != st.vars.end()) {
        if (it->second.init == InitState::No)
          diag(CheckKind::UseBeforeInit, Severity::Warning, at.line,
               at.node_id, "'" + meta_[p.decl_id].name +
                               "' is read before initialization");
        else if (it->second.init == InitState::Maybe)
          diag(CheckKind::UseBeforeInit, Severity::Warning, at.line,
               at.node_id, "'" + meta_[p.decl_id].name +
                               "' may be read before initialization");
        return it->second.iv;
      }
    }
    return p.type.is_integer() ? iv_type_range(p.type.size())
                               : Interval::top();
  }

  Interval store_place(const Place& p, Interval v, AbsState& st, Acc& acc) {
    acc.rec_exact(1);
    v = p.type.is_integer() ? iv_truncate(v, p.type.size()) : Interval::top();
    if (p.kind == Place::Tracked)
      st.vars[p.decl_id] = AbsVal{v, InitState::Yes};
    return v;
  }

  // -- operators -------------------------------------------------------------

  void check_div(const Interval& b, const Expr& e, AbsState& st) {
    if (b.is_zero()) {
      if (st.definite && st.reachable) {
        diag(CheckKind::DivByZero, Severity::MustFault, e.line, e.node_id,
             "division or modulo by zero on every execution");
      } else {
        diag(CheckKind::DivByZero, Severity::Warning, e.line, e.node_id,
             "division or modulo by provably zero divisor on this path");
      }
      st.reachable = false;
      st.fault_stop = true;
    } else if (b.contains_zero()) {
      diag(CheckKind::DivByZero, Severity::Warning, e.line, e.node_id,
           "divisor may be zero");
    }
  }

  /// After the zero check the surviving executions had a nonzero
  /// divisor; shave provably-impossible endpoint zeros.
  static Interval refine_divisor(BinaryOp op, Interval b) {
    if (op == BinaryOp::Div || op == BinaryOp::Mod) {
      if (b.lo == 0 && b.hi > 0) b.lo = 1;
      if (b.hi == 0 && b.lo < 0) b.hi = -1;
    }
    return b;
  }

  static BinaryOp compound_op(AssignOp op) {
    switch (op) {
      case AssignOp::AddA: return BinaryOp::Add;
      case AssignOp::SubA: return BinaryOp::Sub;
      case AssignOp::MulA: return BinaryOp::Mul;
      case AssignOp::DivA: return BinaryOp::Div;
      case AssignOp::ModA: return BinaryOp::Mod;
      case AssignOp::ShlA: return BinaryOp::Shl;
      case AssignOp::ShrA: return BinaryOp::Shr;
      case AssignOp::AndA: return BinaryOp::BitAnd;
      case AssignOp::OrA: return BinaryOp::BitOr;
      default: return BinaryOp::BitXor;  // XorA
    }
  }

  Interval eval_assign(const Expr& e, AbsState& st, Acc& acc) {
    Place p = eval_place(*e.a, st, acc);
    if (e.as_op == AssignOp::Assign) {
      Interval r = eval(*e.b, st, acc);
      if (!e.b->type.is_integer()) r = Interval::top();
      return store_place(p, r, st, acc);
    }
    Interval old = load_place(p, *e.a, st, acc);
    Interval r = eval(*e.b, st, acc);
    BinaryOp op = compound_op(e.as_op);
    if (op == BinaryOp::Div || op == BinaryOp::Mod) check_div(r, e, st);
    Interval nv = Interval::top();
    if (e.a->type.is_integer() && e.b->type.is_integer())
      nv = iv_arith(op, old, refine_divisor(op, r));
    return store_place(p, nv, st, acc);
  }

  Interval eval_incdec(const Expr& e, AbsState& st, Acc& acc) {
    bool inc = e.un_op == UnaryOp::PreInc || e.un_op == UnaryOp::PostInc;
    bool pre = e.un_op == UnaryOp::PreInc || e.un_op == UnaryOp::PreDec;
    Place p = eval_place(*e.a, st, acc);
    Interval old = load_place(p, *e.a, st, acc);
    Interval nv = Interval::top();
    if (e.a->type.is_integer())
      nv = iv_add(old, Interval::singleton(inc ? 1 : -1));
    nv = store_place(p, nv, st, acc);
    return pre ? nv : old;
  }

  Interval eval_binary(const Expr& e, AbsState& st, Acc& acc) {
    if (e.bin_op == BinaryOp::LogAnd || e.bin_op == BinaryOp::LogOr)
      return eval_logical(e, st, acc);
    Interval a = eval(*e.a, st, acc);
    Interval b = eval(*e.b, st, acc);
    if (e.bin_op == BinaryOp::Div || e.bin_op == BinaryOp::Mod)
      check_div(b, e, st);
    bool int_ops = e.a->type.is_integer() && e.b->type.is_integer();
    if (is_relational(e.bin_op))
      return int_ops ? iv_compare(e.bin_op, a, b) : Interval::range(0, 1);
    if (!int_ops || !e.type.is_integer()) return Interval::top();
    return iv_arith(e.bin_op, a, refine_divisor(e.bin_op, b));
  }

  /// Max-side cost of a conditionally-evaluated region; min side only
  /// when it provably runs.
  static void append_cond(Acc& acc, const Acc& b, bool definitely_runs) {
    acc.max_steps = sat_add(acc.max_steps, b.max_steps);
    acc.max_records = sat_add(acc.max_records, b.max_records);
    acc.max_out = sat_add(acc.max_out, b.max_out);
    acc.max_heap = sat_add(acc.max_heap, b.max_heap);
    if (definitely_runs) {
      if (acc.min_live) {
        acc.min_steps = sat_add(acc.min_steps, b.min_steps);
        acc.min_records = sat_add(acc.min_records, b.min_records);
      }
      acc.exact = acc.exact && b.exact;
    } else if (b.max_records != 0 || !b.exact) {
      acc.exact = false;
    }
    acc.min_live = acc.min_live && b.min_live;
  }

  Interval eval_logical(const Expr& e, AbsState& st, Acc& acc) {
    bool is_and = e.bin_op == BinaryOp::LogAnd;
    Interval a = eval(*e.a, st, acc);
    bool a_true = e.a->type.is_integer() && !a.contains_zero();
    bool a_false = a.is_zero();
    bool b_never = is_and ? a_false : a_true;
    bool b_always = is_and ? a_true : a_false;
    Interval b = Interval::range(0, 1);
    if (!b_never) {
      AbsState stB = st;
      if (is_pure(*e.a)) assume(*e.a, is_and, &stB);
      Acc bacc;
      b = eval(*e.b, stB, bacc);
      st = b_always ? stB : st_join(st, stB);
      append_cond(acc, bacc, b_always);
    }
    bool b_true = e.b->type.is_integer() && !b.contains_zero();
    bool b_false = b.is_zero();
    if (is_and) {
      if (a_false || (a_true && b_false)) return Interval::singleton(0);
      if (a_true && b_true) return Interval::singleton(1);
    } else {
      if (a_true || (a_false && b_true)) return Interval::singleton(1);
      if (a_false && b_false) return Interval::singleton(0);
    }
    return Interval::range(0, 1);
  }

  Interval eval_ternary(const Expr& e, AbsState& st, Acc& acc) {
    Interval c = eval(*e.a, st, acc);
    bool pure = is_pure(*e.a);
    bool t_feasible = !c.is_zero();
    bool f_feasible = !(e.a->type.is_integer() && !c.contains_zero());
    AbsState stT = st, stF = st;
    if (pure) {
      if (t_feasible) t_feasible = assume(*e.a, true, &stT);
      if (f_feasible) f_feasible = assume(*e.a, false, &stF);
    }
    if (t_feasible && f_feasible) {
      stT.definite = false;
      stF.definite = false;
    }
    Acc at, af;
    Interval vt = Interval::top(), vf = Interval::top();
    if (t_feasible) vt = eval(*e.b, stT, at);
    if (f_feasible) vf = eval(*e.c, stF, af);
    if (e.type.is_integer()) {
      vt = iv_truncate(vt, e.type.size());
      vf = iv_truncate(vf, e.type.size());
    }
    if (t_feasible && f_feasible) {
      st = st_join(stT, stF);
      acc.append_alt(at, af);
      return iv_join(vt, vf);
    }
    if (t_feasible || f_feasible) {
      st = t_feasible ? stT : stF;
      const Acc& used = t_feasible ? at : af;
      acc.append(used);
      acc.min_live = acc.min_live && used.min_live;
      return t_feasible ? vt : vf;
    }
    return Interval::top();
  }

  Interval eval_index(const Expr& e, AbsState& st, Acc& acc) {
    if (e.a->kind == ExprKind::Ident && e.a->decayed_array) {
      tick();
      acc.steps(kStepsPerNode, 0);  // base address, no record
      Interval idx = eval(*e.b, st, acc);
      int id = lookup(e.a->name);
      const VarMeta* m = id >= 0 ? meta_of(id) : nullptr;
      if (m && m->array_len >= 0)
        check_bounds(e, idx, m->array_len, e.a->name);
      acc.rec_exact(1);  // element load
      return e.type.is_integer() ? iv_type_range(e.type.size())
                                 : Interval::top();
    }
    eval(*e.a, st, acc);
    eval(*e.b, st, acc);
    diag(CheckKind::PointerUnchecked, Severity::Warning, e.line, e.node_id,
         "unverified pointer subscript");
    acc.rec_exact(1);
    return e.type.is_integer() ? iv_type_range(e.type.size())
                               : Interval::top();
  }

  // -- calls -----------------------------------------------------------------

  Interval eval_call(const Expr& e, AbsState& st, Acc& acc) {
    auto intr = minic::find_intrinsic(e.name);
    std::vector<Interval> args;
    args.reserve(e.args.size());
    for (const auto& a : e.args) {
      Interval v = eval(*a, st, acc);
      args.push_back(a->type.is_integer() ? v : Interval::top());
    }
    if (intr) return eval_intrinsic(e, intr->id, args, st, acc);
    const Function* fn = prog_.find_function(e.name);
    if (!fn) return Interval::top();
    // Call/Ret markers + one spill store per parameter (interp_impl.h
    // call_function), all emitted under default options.
    acc.rec_exact(2 + fn->params.size());
    acc.steps(kStepsPerCall + kStepsPerParam * fn->params.size(), 1);
    FnRes r = analyze_call(*fn, args, e.line, st, acc);
    if (r.may_exit) {
      // The whole program may have terminated inside the callee: nothing
      // after this point is guaranteed to run on a completing execution.
      acc.min_live = false;
      st.definite = false;
    }
    return r.ret;
  }

  void check_negative_size(const Expr& e, const Interval& n, AbsState& st,
                           const char* what) {
    if (n.hi < 0) {
      diag(CheckKind::IntrinsicMisuse,
           st.definite && st.reachable ? Severity::MustFault
                                       : Severity::Warning,
           e.line, e.node_id,
           std::string(what) + " of provably negative size");
      st.reachable = false;
      st.fault_stop = true;
    } else if (n.lo < 0) {
      diag(CheckKind::IntrinsicMisuse, Severity::Warning, e.line, e.node_id,
           std::string(what) + " size may be negative");
    }
  }

  /// memset/memcpy pointer argument: provably inside a named array?
  void check_memarg(const Expr& call, const Expr& arg, const Interval& n,
                    AbsState& st) {
    (void)st;
    if (arg.kind == ExprKind::Ident && arg.decayed_array) {
      int id = lookup(arg.name);
      const VarMeta* m = id >= 0 ? meta_of(id) : nullptr;
      if (m && m->array_len >= 0 && n.hi >= 0 &&
          n.hi <= static_cast<int64_t>(m->array_len) * m->type.size())
        return;
    }
    diag(CheckKind::PointerUnchecked, Severity::Warning, call.line,
         call.node_id, "memory-intrinsic range cannot be verified");
  }

  Interval do_printf(const Expr& e, AbsState& st, Acc& acc) {
    if (e.args.empty() || e.args[0]->kind != ExprKind::StrLit) {
      diag(CheckKind::PointerUnchecked, Severity::Warning, e.line, e.node_id,
           "printf with a non-literal format string");
      acc.out(kUnbounded);
      acc.recs(kUnbounded, 0);
      return Interval::top();
    }
    const std::string& fmt = e.args[0]->str_val;
    uint64_t base = 0;
    int convs = 0;
    std::vector<size_t> s_args;
    for (size_t i = 0; i < fmt.size(); ++i) {
      if (fmt[i] != '%') {
        ++base;
        continue;
      }
      if (i + 1 < fmt.size() && fmt[i + 1] == '%') {
        ++base;
        ++i;
        continue;
      }
      size_t j = i + 1;
      while (j < fmt.size() &&
             (std::isdigit(static_cast<unsigned char>(fmt[j])) ||
              fmt[j] == '-' || fmt[j] == '+' || fmt[j] == ' ' ||
              fmt[j] == '.' || fmt[j] == '#'))
        ++j;
      if (j >= fmt.size()) {
        ++base;
        break;
      }
      if (fmt[j] == 's') s_args.push_back(static_cast<size_t>(convs) + 1);
      ++convs;
      i = j;
    }
    // Each non-%s conversion renders through a 64-byte snprintf buffer
    // (exec_common.h format_printf): at most 63 bytes of output.
    acc.out(base + 63ull * (static_cast<uint64_t>(convs) - s_args.size()));
    for (size_t ai : s_args) {
      if (ai < e.args.size() && e.args[ai]->kind == ExprKind::StrLit) {
        uint64_t len = e.args[ai]->str_val.size();
        acc.out(len);
        // read_cstring scans 4-byte System chunks through the NUL.
        acc.recs(ceil_div_u64(len + 1, 4), ceil_div_u64(len, 4));
      } else {
        diag(CheckKind::PointerUnchecked, Severity::Warning, e.line,
             e.node_id, "non-literal %s argument to printf");
        acc.out(kUnbounded);
        acc.recs(kUnbounded, 0);
      }
    }
    if (static_cast<size_t>(convs) + 1 > e.args.size()) {
      // format_printf faults with "printf: not enough arguments".
      diag(CheckKind::IntrinsicMisuse,
           st.definite && st.reachable ? Severity::MustFault
                                       : Severity::Warning,
           e.line, e.node_id,
           "printf format consumes more arguments than provided");
      st.reachable = false;
      st.fault_stop = true;
    }
    return Interval::top();
  }

  Interval eval_intrinsic(const Expr& e, minic::Intrinsic id,
                          const std::vector<Interval>& args, AbsState& st,
                          Acc& acc) {
    using minic::Intrinsic;
    switch (id) {
      case Intrinsic::Printf:
        return do_printf(e, st, acc);
      case Intrinsic::Putchar:
        acc.out(1);
        return Interval::top();
      case Intrinsic::Puts:
        if (!e.args.empty() && e.args[0]->kind == ExprKind::StrLit) {
          uint64_t len = e.args[0]->str_val.size();
          acc.out(len + 1);  // trailing newline
          acc.recs(ceil_div_u64(len + 1, 4), ceil_div_u64(len, 4));
        } else {
          diag(CheckKind::PointerUnchecked, Severity::Warning, e.line,
               e.node_id, "puts of a non-literal string");
          acc.out(kUnbounded);
          acc.recs(kUnbounded, 0);
        }
        return Interval::top();
      case Intrinsic::Malloc: {
        const Interval& n = args[0];
        check_negative_size(e, n, st, "malloc");
        if (n.hi > 0)
          acc.heap(sat_add(static_cast<uint64_t>(n.hi), 8));  // 8B alignment
        return Interval::top();
      }
      case Intrinsic::Memset:
      case Intrinsic::Memcpy: {
        bool cpy = id == Intrinsic::Memcpy;
        const Interval& n = args[2];
        check_negative_size(e, n, st, cpy ? "memcpy" : "memset");
        uint64_t hi =
            n.hi > 0 ? ceil_div_u64(static_cast<uint64_t>(n.hi), 4) : 0;
        uint64_t lo =
            n.lo > 0 ? ceil_div_u64(static_cast<uint64_t>(n.lo), 4) : 0;
        acc.recs(sat_mul(hi, cpy ? 2 : 1), sat_mul(lo, cpy ? 2 : 1));
        for (int ai = 0; ai < (cpy ? 2 : 1); ++ai)
          check_memarg(e, *e.args[static_cast<size_t>(ai)], n, st);
        return Interval::top();
      }
      case Intrinsic::Rand:
        return Interval::range(0, (int64_t{1} << 30) - 1);
      case Intrinsic::Abs:
        return iv_abs(args[0]);
      case Intrinsic::Assert: {
        const Interval& c = args[0];
        if (c.is_zero()) {
          diag(CheckKind::AssertFail,
               st.definite && st.reachable ? Severity::MustFault
                                           : Severity::Warning,
               e.line, e.node_id, "assertion fails whenever it executes");
          st.reachable = false;
          st.fault_stop = true;
        } else if (c.contains_zero()) {
          diag(CheckKind::AssertFail, Severity::Warning, e.line, e.node_id,
               "assertion may fail");
        }
        // Surviving executions satisfied the condition.
        if (st.reachable && is_pure(*e.args[0]) &&
            !assume(*e.args[0], true, &st)) {
          st.reachable = false;
          st.fault_stop = true;
        }
        return Interval::top();
      }
      case Intrinsic::Exit:
        st.reachable = false;
        acc.min_live = false;
        return Interval::top();
      default:  // free, srand, float math
        return Interval::top();
    }
  }

  // -- statements ------------------------------------------------------------

  static void join_into(AbsState* dst, bool* seen, const AbsState& src) {
    if (!src.reachable) return;
    if (*seen) {
      *dst = st_join(*dst, src);
    } else {
      *dst = src;
      *seen = true;
    }
  }

  void exec_stmt(const Stmt& s, AbsState& st, Acc& acc) {
    tick();
    if (!st.reachable) return;
    switch (s.kind) {
      case StmtKind::Expr:
        acc.steps(kStepsPerStmt, s.expr ? 1 : 0);
        if (s.expr) eval(*s.expr, st, acc);
        return;
      case StmtKind::Decl:
        exec_decl(s, st, acc);
        return;
      case StmtKind::If:
        exec_if(s, st, acc);
        return;
      case StmtKind::While:
      case StmtKind::DoWhile:
      case StmtKind::For:
        exec_loop(s, st, acc);
        return;
      case StmtKind::Block: {
        acc.steps(kStepsPerStmt, 0);
        push_scope();
        for (const auto& x : s.stmts) {
          if (!st.reachable) {
            if (!st.fault_stop && x->kind != StmtKind::Empty)
              diag(CheckKind::Unreachable, Severity::Warning, x->line, -1,
                   "statement can never execute");
            break;
          }
          exec_stmt(*x, st, acc);
        }
        pop_scope(&st);
        return;
      }
      case StmtKind::Return: {
        acc.steps(kStepsPerStmt, 1);
        Interval rv = Interval::singleton(0);
        if (s.expr) {
          rv = eval(*s.expr, st, acc);
          if (!s.expr->type.is_integer()) rv = Interval::top();
        }
        if (!st.reachable || frames_.empty()) return;
        FnFrame& f = frames_.back();
        f.ret = f.ret_seen ? iv_join(f.ret, rv) : rv;
        f.ret_seen = true;
        join_into(&f.ret_state, &f.ret_state_seen, st);
        st.reachable = false;
        return;
      }
      case StmtKind::Break:
        acc.steps(kStepsPerStmt, 0);
        if (!loops_.empty())
          join_into(&loops_.back()->brk, &loops_.back()->brk_seen, st);
        st.reachable = false;
        return;
      case StmtKind::Continue:
        acc.steps(kStepsPerStmt, 0);
        if (!loops_.empty())
          join_into(&loops_.back()->cont, &loops_.back()->cont_seen, st);
        st.reachable = false;
        return;
      case StmtKind::Empty:
        acc.steps(kStepsPerStmt, 0);
        return;
    }
  }

  void exec_decl(const Stmt& s, AbsState& st, Acc& acc) {
    bool any_init = false;
    for (const VarDecl& d : s.decls)
      if (d.init || !d.init_list.empty()) any_init = true;
    acc.steps(kStepsPerStmt, any_init ? 1 : 0);
    for (const VarDecl& d : s.decls) {
      // Register before evaluating the initializer: the engines bind the
      // slot first, so `int x = x;` reads stale memory (and should warn),
      // not fault.
      register_var(d, /*is_global=*/false, &st);
      init_decl(d, st, acc);
    }
  }

  void init_decl(const VarDecl& d, AbsState& st, Acc& acc) {
    if (d.init) {
      Interval v = eval(*d.init, st, acc);
      if (!d.init->type.is_integer() || !d.type.is_integer())
        v = Interval::top();
      acc.rec_exact(1);  // the declaration's own store record
      const VarMeta* m = meta_of(d.node_id);
      if (m && m->tracked)
        st.vars[d.node_id] =
            AbsVal{iv_truncate(v, d.type.size()), InitState::Yes};
    }
    for (const auto& el : d.init_list) {
      eval(*el, st, acc);
      acc.rec_exact(1);  // one element store each
    }
  }

  void exec_if(const Stmt& s, AbsState& st, Acc& acc) {
    acc.steps(kStepsPerStmt, 1);
    Interval c = eval(*s.cond, st, acc);
    if (!st.reachable) return;
    bool def0 = st.definite;
    bool pure = is_pure(*s.cond);
    bool t_feasible = !c.is_zero();
    bool f_feasible = !(s.cond->type.is_integer() && !c.contains_zero());
    AbsState stT = st, stF = st;
    if (pure) {
      if (t_feasible) t_feasible = assume(*s.cond, true, &stT);
      if (f_feasible) f_feasible = assume(*s.cond, false, &stF);
    }
    if (!t_feasible && !f_feasible) {  // defensive: keep one path
      t_feasible = true;
      stT = st;
    }
    if (t_feasible && f_feasible) {
      stT.definite = false;
      stF.definite = false;
    }
    Acc at, af;
    if (t_feasible) {
      exec_stmt(*s.then_branch, stT, at);
    } else {
      diag(CheckKind::Unreachable, Severity::Warning, s.then_branch->line, -1,
           "branch can never execute");
    }
    if (s.else_branch) {
      if (f_feasible) {
        exec_stmt(*s.else_branch, stF, af);
      } else {
        diag(CheckKind::Unreachable, Severity::Warning, s.else_branch->line,
             -1, "branch can never execute");
      }
    }
    if (t_feasible && f_feasible) {
      // Every execution reaches the join iff both arms complete (an arm
      // that must-faults removes no completing executions).
      bool t_done = stT.reachable || stT.fault_stop;
      bool f_done = stF.reachable || stF.fault_stop;
      st = st_join(stT, stF);
      if (st.reachable) st.definite = def0 && t_done && f_done;
      acc.append_alt(at, af);
      if ((!stT.reachable || !stF.reachable) && st.reachable)
        acc.min_live = false;
    } else if (t_feasible) {
      st = stT;
      acc.append(at);
      acc.min_live = acc.min_live && at.min_live;
    } else {
      st = stF;
      acc.append(af);
      acc.min_live = acc.min_live && af.min_live;
    }
  }

  // -- loops -----------------------------------------------------------------

  bool body_may_exit(const Stmt* s) const {
    bool me = false;
    for_each_stmt_expr(s, [&](const Expr& x) {
      if (x.kind != ExprKind::Call) return;
      if (x.name == "exit") {
        me = true;
        return;
      }
      if (minic::find_intrinsic(x.name)) return;
      const Function* fn = prog_.find_function(x.name);
      if (fn && fn_may_exit_[static_cast<size_t>(fn->func_id)]) me = true;
    });
    return me;
  }

  static bool writes_name(const Stmt* s, const std::string& name) {
    bool w = false;
    for_each_stmt_expr(s, [&](const Expr& x) {
      if (x.kind == ExprKind::Assign && x.a->kind == ExprKind::Ident &&
          x.a->name == name)
        w = true;
      if (x.kind == ExprKind::Unary && x.a &&
          x.a->kind == ExprKind::Ident && x.a->name == name &&
          (x.un_op == UnaryOp::PreInc || x.un_op == UnaryOp::PreDec ||
           x.un_op == UnaryOp::PostInc || x.un_op == UnaryOp::PostDec))
        w = true;
    });
    if (w) return true;
    // A same-named inner declaration shadows: treat as written (the scan
    // above cannot tell inner writes from outer ones).
    bool shadowed = false;
    std::function<void(const Stmt*)> scan = [&](const Stmt* x) {
      if (!x) return;
      for (const VarDecl& d : x->decls)
        if (d.name == name) shadowed = true;
      scan(x->init.get());
      scan(x->then_branch.get());
      scan(x->else_branch.get());
      scan(x->body.get());
      for (const auto& c : x->stmts) scan(c.get());
    };
    scan(s);
    return shadowed;
  }

  bool body_has_user_call(const Stmt* s) const {
    bool c = false;
    for_each_stmt_expr(s, [&](const Expr& x) {
      if (x.kind == ExprKind::Call && !minic::find_intrinsic(x.name))
        c = true;
    });
    return c;
  }

  // -- canonical trip-count extraction ---------------------------------------

  static BinaryOp mirror_rel(BinaryOp op) {
    switch (op) {
      case BinaryOp::Lt: return BinaryOp::Gt;
      case BinaryOp::Le: return BinaryOp::Ge;
      case BinaryOp::Gt: return BinaryOp::Lt;
      case BinaryOp::Ge: return BinaryOp::Le;
      default: return op;  // Eq/Ne are symmetric
    }
  }

  static bool mentions_name(const Expr* e, const std::string& name) {
    bool m = false;
    for_each_expr(e, [&](const Expr& x) {
      if (x.kind == ExprKind::Ident && x.name == name) m = true;
    });
    return m;
  }

  static __int128 ceil128(__int128 num, __int128 den) {
    return (num + den - 1) / den;  // callers guarantee num >= 0, den >= 1
  }

  /// Pure, loop-invariant expression over tracked scalars only: its
  /// entry-state interval stays valid on every iteration.
  bool invariant_iv(const Expr& e, const Stmt* body, const AbsState& entry,
                    Interval* out) {
    if (!is_pure(e)) return false;
    bool ok = true;
    const bool has_call = body_has_user_call(body);
    for_each_expr(&e, [&](const Expr& x) {
      if (x.kind == ExprKind::Index ||
          (x.kind == ExprKind::Unary && x.un_op == UnaryOp::Deref)) {
        ok = false;  // memory reads: any store may change them
        return;
      }
      if (x.kind != ExprKind::Ident || x.decayed_array) return;
      int id = lookup(x.name);
      const VarMeta* m = id >= 0 ? meta_of(id) : nullptr;
      if (!m || !m->tracked || writes_name(body, x.name)) {
        ok = false;
        return;
      }
      if (m->is_global && has_call) ok = false;  // a callee may write it
    });
    if (!ok) return false;
    *out = pure_eval(e, entry);
    return true;
  }

  /// Trip-count interval for a canonical for loop: iterator recognized
  /// from the step, invariant bound and delta, and a no-wrap proof that
  /// the iterator's truncating store cannot wrap past its bound (a
  /// wrapped iterator loops forever, so without the proof the only sound
  /// upper bound is "unbounded").
  TripInfo extract_trips(const Stmt& s, const AbsState& entry) {
    TripInfo t;
    if (s.kind != StmtKind::For || !s.cond || !s.step) return t;
    const Expr* step = s.step.get();
    const Stmt* body = s.body.get();
    std::string iter;
    Interval delta = Interval::singleton(0);
    if (step->kind == ExprKind::Unary && step->a &&
        step->a->kind == ExprKind::Ident) {
      if (step->un_op == UnaryOp::PreInc || step->un_op == UnaryOp::PostInc) {
        iter = step->a->name;
        delta = Interval::singleton(1);
      } else if (step->un_op == UnaryOp::PreDec ||
                 step->un_op == UnaryOp::PostDec) {
        iter = step->a->name;
        delta = Interval::singleton(-1);
      } else {
        return t;
      }
    } else if (step->kind == ExprKind::Assign && step->a &&
               step->a->kind == ExprKind::Ident && step->b) {
      iter = step->a->name;
      const Expr* dexpr = nullptr;
      bool negate = false;
      if (step->as_op == AssignOp::AddA) {
        dexpr = step->b.get();
      } else if (step->as_op == AssignOp::SubA) {
        dexpr = step->b.get();
        negate = true;
      } else if (step->as_op == AssignOp::Assign &&
                 step->b->kind == ExprKind::Binary) {
        const Expr* ba = step->b->a.get();
        const Expr* bb = step->b->b.get();
        if (step->b->bin_op == BinaryOp::Add) {
          if (ba->kind == ExprKind::Ident && ba->name == iter) dexpr = bb;
          else if (bb->kind == ExprKind::Ident && bb->name == iter) dexpr = ba;
        } else if (step->b->bin_op == BinaryOp::Sub &&
                   ba->kind == ExprKind::Ident && ba->name == iter) {
          dexpr = bb;
          negate = true;
        }
      }
      Interval d;
      if (!dexpr || mentions_name(dexpr, iter) ||
          !invariant_iv(*dexpr, body, entry, &d))
        return t;
      delta = negate ? iv_neg(d) : d;
    } else {
      return t;
    }

    int iid = lookup(iter);
    const VarMeta* im = iid >= 0 ? meta_of(iid) : nullptr;
    if (!im || !im->tracked) return t;
    if (im->is_global && body_has_user_call(body)) return t;
    if (writes_name(body, iter)) {
      diag(CheckKind::CanonicalIterWrite, Severity::Warning, s.line, -1,
           "body of canonical loop writes its iterator '" + iter + "'");
      return t;
    }
    auto vit = entry.vars.find(iid);
    if (vit == entry.vars.end() || vit->second.init != InitState::Yes)
      return t;
    const Interval A = vit->second.iv;

    const Expr* c = s.cond.get();
    if (c->kind != ExprKind::Binary || !is_relational(c->bin_op)) return t;
    const Expr* lhs = c->a.get();
    const Expr* rhs = c->b.get();
    BinaryOp op = c->bin_op;
    const bool lhs_is_iter = lhs->kind == ExprKind::Ident && lhs->name == iter;
    const bool rhs_is_iter = rhs->kind == ExprKind::Ident && rhs->name == iter;
    if (!lhs_is_iter && rhs_is_iter) {
      std::swap(lhs, rhs);
      op = mirror_rel(op);
    } else if (!lhs_is_iter || rhs_is_iter) {
      return t;
    }
    Interval B;
    if (mentions_name(rhs, iter) || !invariant_iv(*rhs, body, entry, &B))
      return t;

    const Interval ty = iv_type_range(im->type.size());
    __int128 trips_hi = 0, trips_lo = 0;
    if (delta.lo >= 1) {
      // Increasing; normalize to an exclusive upper limit L: run while
      // i < L.
      __int128 l_lo, l_hi;
      if (op == BinaryOp::Lt) {
        l_lo = B.lo;
        l_hi = B.hi;
      } else if (op == BinaryOp::Le) {
        l_lo = static_cast<__int128>(B.lo) + 1;
        l_hi = static_cast<__int128>(B.hi) + 1;
      } else if (op == BinaryOp::Ne && delta.is_singleton() &&
                 delta.lo == 1 && A.hi <= B.lo) {
        l_lo = B.lo;
        l_hi = B.hi;
      } else {
        return t;
      }
      if (l_hi - 1 + delta.hi > ty.hi) return t;  // final store may wrap
      trips_hi = A.lo >= l_hi ? 0 : ceil128(l_hi - A.lo, delta.lo);
      trips_lo = A.hi >= l_lo ? 0 : ceil128(l_lo - A.hi, delta.hi);
    } else if (delta.hi <= -1) {
      // Decreasing; inclusive lower limit M: run while i >= M.
      __int128 m_lo, m_hi;
      if (op == BinaryOp::Gt) {
        m_lo = static_cast<__int128>(B.lo) + 1;
        m_hi = static_cast<__int128>(B.hi) + 1;
      } else if (op == BinaryOp::Ge) {
        m_lo = B.lo;
        m_hi = B.hi;
      } else if (op == BinaryOp::Ne && delta.is_singleton() &&
                 delta.lo == -1 && A.lo >= B.hi) {
        m_lo = static_cast<__int128>(B.lo) + 1;
        m_hi = static_cast<__int128>(B.hi) + 1;
      } else {
        return t;
      }
      const __int128 d_lo = -static_cast<__int128>(delta.hi);
      const __int128 d_hi = -static_cast<__int128>(delta.lo);
      if (m_lo - d_hi < ty.lo) return t;  // final store may wrap below
      trips_hi = A.hi < m_lo ? 0 : ceil128(A.hi - m_lo + 1, d_lo);
      trips_lo = A.lo < m_hi ? 0 : ceil128(A.lo - m_hi + 1, d_hi);
    } else {
      return t;  // delta may be zero or of mixed sign
    }
    trips_lo = std::max<__int128>(trips_lo, 0);
    trips_hi = std::max<__int128>(trips_hi, trips_lo);
    t.lo = static_cast<uint64_t>(trips_lo);
    t.hi = static_cast<uint64_t>(trips_hi);
    if (t.hi >= kUnbounded) t.hi = kUnbounded - 1;
    t.canonical = true;
    return t;
  }

  // -- loop execution: widening fixpoint, then one reporting pass ------------

  void exec_loop(const Stmt& s, AbsState& st, Acc& acc) {
    acc.steps(kStepsPerStmt, 0);
    const bool is_for = s.kind == StmtKind::For;
    const bool is_do = s.kind == StmtKind::DoWhile;
    push_scope();  // for-init declarations scope over the whole loop
    if (s.init) exec_stmt(*s.init, st, acc);
    if (!st.reachable) {
      pop_scope(&st);
      return;
    }

    const Stmt* body = s.body.get();
    const bool body_break = stmt_has_break(body);
    const bool body_return = stmt_has_return(body);
    const bool body_exit = body_may_exit(body);
    const bool early_out = body_break || body_return || body_exit;

    TripInfo trips = extract_trips(s, st);
    if (is_do) trips.lo = std::max<uint64_t>(trips.lo, 1);
    if (early_out) trips.lo = 0;

    const bool cond_pure = s.cond && is_pure(*s.cond);

    // Quiet widening passes to a stable head state (at the condition for
    // for/while, at the body for do-while). Impure conditions still get
    // evaluated for their side effects.
    AbsState head = st;
    {
      const bool saved_emit = emit_;
      emit_ = false;
      for (int pass = 0; pass < kMaxLoopPasses; ++pass) {
        AbsState out = head;
        Acc scratch;
        if (!is_do && s.cond) {
          eval(*s.cond, out, scratch);
          if (out.reachable && cond_pure && !assume(*s.cond, true, &out))
            out.reachable = false;
        }
        if (out.reachable) {
          LoopCtx lc;
          loops_.push_back(&lc);
          out.definite = false;
          exec_stmt(*body, out, scratch);
          loops_.pop_back();
          if (lc.cont_seen) out = st_join(out, lc.cont);
          if (out.reachable) {
            if (is_for && s.step) eval(*s.step, out, scratch);
            if (is_do && s.cond) {
              eval(*s.cond, out, scratch);
              if (out.reachable && cond_pure && !assume(*s.cond, true, &out))
                out.reachable = false;
            }
          }
        }
        AbsState next = st_join(head, out);
        if (pass >= 1) next = st_widen(head, next);
        next.reachable = head.reachable;
        next.fault_stop = head.fault_stop;
        next.definite = head.definite;
        if (next == head) break;
        head = next;
      }
      emit_ = saved_emit;
    }

    // Reporting pass from the stable head: diagnostics fire here, and the
    // per-iteration sub-costs feed the composed bound. The head state is a
    // superset of the first iteration's entry, so a must-fault proved
    // under it holds on the first trip — which provably runs whenever
    // trips.lo >= 1 (or always, for do-while).
    LoopCtx lc;
    Acc cond_acc, body_acc, step_acc;
    AbsState body_in = head;
    AbsState body_out;
    body_out.reachable = false;
    bool body_feasible = true;
    if (!is_do && s.cond) {
      eval(*s.cond, body_in, cond_acc);
      if (!body_in.reachable) body_feasible = false;
      else if (cond_pure) body_feasible = assume(*s.cond, true, &body_in);
    }
    if (body_feasible) {
      body_in.definite = st.definite && (is_do || trips.lo >= 1);
      body_in.reachable = true;
      body_in.fault_stop = false;
      body_out = body_in;
      loops_.push_back(&lc);
      exec_stmt(*body, body_out, body_acc);
      loops_.pop_back();
      if (lc.cont_seen) body_out = st_join(body_out, lc.cont);
      if (body_out.reachable && is_for && s.step)
        eval(*s.step, body_out, step_acc);
      if (body_out.reachable && is_do && s.cond) eval(*s.cond, body_out, cond_acc);
    } else {
      trips.lo = 0;
      trips.hi = 0;
      diag(CheckKind::Unreachable, Severity::Warning, body->line, -1,
           "loop body never executes");
    }
    if (body_feasible && trips.hi == kUnbounded)
      diag(CheckKind::UnboundedLoop, Severity::Warning, s.line, -1,
           "no finite trip-count bound for this loop");

    // Cost composition. Record layout per loop execution under default
    // tracing: LoopEnter/LoopExit bracket (2), BodyBegin + BodyEnd per
    // iteration (2), the condition per evaluation.
    const uint64_t thi = trips.hi, tlo = trips.lo;
    uint64_t cond_hi, cond_lo;
    if (is_do) {
      cond_hi = thi;
      cond_lo = tlo;
    } else if (s.cond) {
      cond_hi = sat_add(thi, 1);
      cond_lo = sat_add(tlo, 1);
    } else {
      cond_hi = cond_lo = 0;
    }
    Acc loop;
    loop.max_records = sat_add(
        2, sat_add(sat_mul(cond_hi, cond_acc.max_records),
                   sat_mul(thi, sat_add(2, sat_add(body_acc.max_records,
                                                   step_acc.max_records)))));
    loop.max_steps = sat_add(
        sat_mul(cond_hi, cond_acc.max_steps),
        sat_mul(thi, sat_add(kStepsPerIter, sat_add(body_acc.max_steps,
                                                    step_acc.max_steps))));
    loop.max_out = sat_add(
        sat_mul(cond_hi, cond_acc.max_out),
        sat_mul(thi, sat_add(body_acc.max_out, step_acc.max_out)));
    loop.max_heap = sat_add(
        sat_mul(cond_hi, cond_acc.max_heap),
        sat_mul(thi, sat_add(body_acc.max_heap, step_acc.max_heap)));
    const bool min_cut = early_out || !cond_acc.min_live ||
                         !body_acc.min_live || !step_acc.min_live;
    if (min_cut) {
      // Some run may leave mid-iteration; only the brackets are certain,
      // and exit() can even skip LoopExit.
      loop.min_records =
          (body_exit || !cond_acc.min_live || !body_acc.min_live) ? 1 : 2;
      loop.min_steps = 0;
    } else {
      const uint64_t per_rec =
          sat_add(2, sat_add(body_acc.min_records, step_acc.min_records));
      const uint64_t per_step = std::max<uint64_t>(
          1, sat_add(body_acc.min_steps, step_acc.min_steps));
      loop.min_records =
          sat_add(2, sat_add(sat_mul(cond_lo, cond_acc.min_records),
                             sat_mul(tlo, per_rec)));
      loop.min_steps = sat_add(sat_mul(cond_lo, cond_acc.min_steps),
                               sat_mul(tlo, per_step));
      if (loop.min_records >= kUnbounded) loop.min_records = kUnbounded - 1;
      if (loop.min_steps >= kUnbounded) loop.min_steps = kUnbounded - 1;
    }
    loop.exact = cond_acc.exact && body_acc.exact && step_acc.exact &&
                 tlo == thi && thi != kUnbounded && !early_out &&
                 loop.min_records == loop.max_records;
    acc.append(loop);
    if (body_return || body_exit) acc.min_live = false;

    // Post-loop state: normal exit (condition false) joined with breaks.
    AbsState exit_st;
    bool exit_seen = false;
    if (!is_do) {
      if (s.cond) {
        AbsState ex = head;
        {
          const bool saved_emit = emit_;
          emit_ = false;  // diagnostics already fired in the report pass
          Acc scratch;
          eval(*s.cond, ex, scratch);
          emit_ = saved_emit;
        }
        if (ex.reachable) {
          bool can_false = true;
          if (cond_pure) can_false = assume(*s.cond, false, &ex);
          if (can_false) {
            exit_st = ex;
            exit_seen = true;
          }
        }
      }
      // for(;;) without a condition never exits normally
    } else if (body_out.reachable && s.cond) {
      AbsState ex = body_out;
      bool can_false = true;
      if (cond_pure) can_false = assume(*s.cond, false, &ex);
      if (can_false) {
        exit_st = ex;
        exit_seen = true;
      }
    }
    if (lc.brk_seen) join_into(&exit_st, &exit_seen, lc.brk);
    if (exit_seen) {
      exit_st.reachable = true;
      exit_st.fault_stop = false;
      exit_st.definite =
          st.definite && thi != kUnbounded && !body_return && !body_exit;
      st = exit_st;
    } else {
      // Infinite, or every path through it faults/returns/exits.
      st.reachable = false;
      st.fault_stop = true;
    }
    pop_scope(&st);
  }

  // -- interprocedural: context-sensitive inlining ---------------------------

  FnRes analyze_call(const Function& fn, const std::vector<Interval>& args,
                     int call_line, AbsState& st, Acc& acc) {
    FnRes r;
    const size_t fidx = static_cast<size_t>(fn.func_id);
    r.may_exit = fidx < fn_may_exit_.size() && fn_may_exit_[fidx];
    r.ret =
        fn.ret.is_integer() ? iv_type_range(fn.ret.size()) : Interval::top();
    const bool recursive =
        std::find(call_stack_.begin(), call_stack_.end(), fn.func_id) !=
        call_stack_.end();
    if (recursive || call_stack_.size() >= kMaxAnalysisDepth) {
      diag(CheckKind::Recursion, Severity::Warning, call_line, -1,
           recursive ? "recursive call to '" + fn.name +
                           "': effects and bounds unknown"
                     : "call nesting too deep to analyze: '" + fn.name +
                           "' summarized as unknown");
      for (auto& [id, v] : st.vars) {
        const VarMeta* m = meta_of(id);
        if (m && m->is_global) {
          v.iv = iv_type_range(m->type.size());
          v.init = InitState::Yes;
        }
      }
      acc.steps(kUnbounded, 0);
      acc.recs(kUnbounded, 0);
      acc.out(kUnbounded);
      acc.heap(kUnbounded);
      acc.min_live = false;  // may never return (or the engines fault on
      st.definite = false;   // frame depth first)
      r.may_exit = true;
      return r;
    }
    const bool def0 = st.definite;
    call_stack_.push_back(fn.func_id);
    stack_cur_ += fn_frame_bytes_[fidx];
    stack_peak_ = std::max(stack_peak_, stack_cur_);
    push_scope();
    for (size_t i = 0; i < fn.params.size(); ++i)
      register_param(fn.params[i],
                     i < args.size() ? args[i] : Interval::top(), &st);
    frames_.push_back(FnFrame{});
    frames_.back().fn = &fn;
    Acc body_acc;
    exec_stmt(*fn.body, st, body_acc);
    FnFrame fr = frames_.back();
    frames_.pop_back();
    if (st.reachable) {  // falling off the end returns 0 on both engines
      const Interval z = Interval::singleton(0);
      fr.ret = fr.ret_seen ? iv_join(fr.ret, z) : z;
      fr.ret_seen = true;
      join_into(&fr.ret_state, &fr.ret_state_seen, st);
    }
    AbsState after;
    if (fr.ret_state_seen) {
      after = fr.ret_state;
      after.reachable = true;
      after.fault_stop = false;
      after.definite = def0;
    } else {
      after = st;  // never returns: every path faults or exits
      after.reachable = false;
      after.fault_stop = true;
    }
    pop_scope(&after);
    call_stack_.pop_back();
    stack_cur_ -= fn_frame_bytes_[fidx];
    st = after;
    acc.append(body_acc);
    if (fr.ret_seen) {
      r.ret = fn.ret.is_integer() ? iv_truncate(fr.ret, fn.ret.size())
                                  : Interval::top();
    }
    return r;
  }

  /// Conservative frame footprint: params plus every declaration in the
  /// function (the engines reuse block stack space, so this bounds the
  /// true peak), each with worst-case alignment slack.
  static uint64_t frame_decl_bytes(const Stmt* s) {
    if (!s) return 0;
    uint64_t b = 0;
    for (const VarDecl& d : s->decls) {
      uint64_t sz = static_cast<uint64_t>(d.type.size());
      if (d.array_len >= 0) sz *= static_cast<uint64_t>(d.array_len);
      b += sz + 4;
    }
    b += frame_decl_bytes(s->init.get());
    b += frame_decl_bytes(s->then_branch.get());
    b += frame_decl_bytes(s->else_branch.get());
    b += frame_decl_bytes(s->body.get());
    for (const auto& c : s->stmts) b += frame_decl_bytes(c.get());
    return b;
  }

  // -- members ---------------------------------------------------------------

  const Program& prog_;
  CheckerOptions opts_;
  CheckReport report_;
  bool emit_ = true;          ///< false during quiet fixpoint passes
  uint64_t work_ = 0;         ///< abstract statement/expression visits
  std::set<std::string> addr_taken_;
  std::unordered_map<int, VarMeta> meta_;   ///< by declaration node_id
  std::vector<std::map<std::string, int>> scopes_;
  std::vector<FnFrame> frames_;
  std::vector<int> call_stack_;             ///< func_ids being inlined
  std::vector<LoopCtx*> loops_;
  std::set<std::pair<int, int>> reported_;  ///< diag dedup (anchor, kind|sev)
  std::vector<bool> fn_may_exit_;           ///< by func_id, transitive
  std::vector<uint64_t> fn_frame_bytes_;    ///< by func_id
  uint64_t stack_cur_ = 0;
  uint64_t stack_peak_ = 0;
};

CheckReport Checker::run() {
  // Program-wide address-taken scan: a scalar whose address is ever taken
  // (under any scope's spelling of the name — conservative) is untracked.
  auto scan_addr = [&](const Expr& x) {
    if (x.kind == ExprKind::Unary && x.un_op == UnaryOp::AddrOf && x.a &&
        x.a->kind == ExprKind::Ident)
      addr_taken_.insert(x.a->name);
  };
  for (const VarDecl& g : prog_.globals) {
    for_each_expr(g.init.get(), scan_addr);
    for (const auto& e : g.init_list) for_each_expr(e.get(), scan_addr);
  }
  for (const auto& f : prog_.funcs) for_each_stmt_expr(f->body.get(), scan_addr);

  // Transitive may-exit: direct exit() calls, then call-graph closure.
  fn_may_exit_.assign(prog_.funcs.size(), false);
  for (size_t i = 0; i < prog_.funcs.size(); ++i) {
    for_each_stmt_expr(prog_.funcs[i]->body.get(), [&](const Expr& x) {
      if (x.kind == ExprKind::Call && x.name == "exit") fn_may_exit_[i] = true;
    });
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (size_t i = 0; i < prog_.funcs.size(); ++i) {
      if (fn_may_exit_[i]) continue;
      for_each_stmt_expr(prog_.funcs[i]->body.get(), [&](const Expr& x) {
        if (x.kind != ExprKind::Call || minic::find_intrinsic(x.name)) return;
        const Function* fn = prog_.find_function(x.name);
        if (fn && fn_may_exit_[static_cast<size_t>(fn->func_id)] &&
            !fn_may_exit_[i]) {
          fn_may_exit_[i] = true;
          changed = true;
        }
      });
    }
  }

  fn_frame_bytes_.assign(prog_.funcs.size(), 0);
  for (size_t i = 0; i < prog_.funcs.size(); ++i) {
    uint64_t b = 0;
    for (const auto& p : prog_.funcs[i]->params)
      b += static_cast<uint64_t>(p.type.size()) + 4;
    b += frame_decl_bytes(prog_.funcs[i]->body.get());
    fn_frame_bytes_[i] = b;
  }

  AbsState st;
  Acc acc;
  push_scope();  // global scope
  try {
    for (const VarDecl& g : prog_.globals) {
      register_var(g, /*is_global=*/true, &st);
      init_decl(g, st, acc);  // global initializers emit records too
    }
    const Function* main_fn = prog_.find_function("main");
    if (main_fn) {
      acc.rec_exact(2);  // main's own Call/Ret markers
      acc.steps(kStepsPerCall, 1);
      analyze_call(*main_fn, {}, main_fn->line, st, acc);
    }
  } catch (const Bail&) {
    emit_ = true;  // the bail may land mid-quiet-pass
    diag(CheckKind::AnalysisLimit, Severity::Warning, 0, -1,
         "analysis work budget exhausted; bounds degraded to unbounded");
    acc.max_steps = acc.max_records = kUnbounded;
    acc.max_out = acc.max_heap = kUnbounded;
    acc.min_steps = acc.min_records = 0;
    acc.exact = false;
  }
  if (acc.max_heap > opts_.heap_capacity)
    diag(CheckKind::HeapLimit, Severity::Warning, 0, -1,
         "heap allocations may exceed the simulated capacity (" +
             cost_bound_str(acc.max_heap) + " > " +
             std::to_string(opts_.heap_capacity) + " bytes)");
  if (acc.max_out > opts_.max_output_bytes)
    diag(CheckKind::OutputLimit, Severity::Warning, 0, -1,
         "program output may exceed the output cap (" +
             cost_bound_str(acc.max_out) + " > " +
             std::to_string(opts_.max_output_bytes) + " bytes)");
  if (stack_peak_ > opts_.stack_capacity)
    diag(CheckKind::StackLimit, Severity::Warning, 0, -1,
         "stack frames may exceed the simulated stack capacity (" +
             std::to_string(stack_peak_) + " > " +
             std::to_string(opts_.stack_capacity) + " bytes)");
  report_.cost.max_steps = acc.max_steps;
  report_.cost.max_records = acc.max_records;
  report_.cost.min_steps = std::min(acc.min_steps, acc.max_steps);
  report_.cost.min_records = std::min(acc.min_records, acc.max_records);
  report_.cost.exact = acc.exact &&
                       report_.cost.min_records == report_.cost.max_records &&
                       report_.cost.bounded();
  return report_;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.

std::string_view check_kind_name(CheckKind k) {
  switch (k) {
    case CheckKind::DivByZero: return "div-by-zero";
    case CheckKind::AssertFail: return "assert-fail";
    case CheckKind::OutOfBounds: return "out-of-bounds";
    case CheckKind::UseBeforeInit: return "use-before-init";
    case CheckKind::Unreachable: return "unreachable";
    case CheckKind::CanonicalIterWrite: return "canonical-iter-write";
    case CheckKind::UnboundedLoop: return "unbounded-loop";
    case CheckKind::PointerUnchecked: return "pointer-unchecked";
    case CheckKind::Recursion: return "recursion";
    case CheckKind::StackLimit: return "stack-limit";
    case CheckKind::HeapLimit: return "heap-limit";
    case CheckKind::OutputLimit: return "output-limit";
    case CheckKind::IntrinsicMisuse: return "intrinsic-misuse";
    case CheckKind::AnalysisLimit: return "analysis-limit";
  }
  return "unknown";
}

std::string_view severity_name(Severity s) {
  return s == Severity::MustFault ? "must-fault" : "warning";
}

std::string CheckReport::str() const {
  std::string out;
  for (const CheckDiag& d : diags) {
    out += std::string(severity_name(d.severity));
    out += " [";
    out += check_kind_name(d.kind);
    out += "] line " + std::to_string(d.line) + ": " + d.message + "\n";
  }
  out += cost.str();
  out += "\n";
  return out;
}

CheckReport check_program(const minic::Program& prog,
                          const CheckerOptions& opts) {
  return Checker(prog, opts).run();
}

util::Status lint_source(std::string_view source, CheckReport* out,
                         const CheckerOptions& opts) {
  util::DiagList fe;
  std::unique_ptr<minic::Program> prog = minic::parse_and_check(source, &fe);
  if (!prog)
    return util::Status::failure(util::ErrorCode::kInvalidInput, "frontend",
                                 std::move(fe));
  instrument::annotate_loops(prog.get());
  *out = check_program(*prog, opts);
  return util::Status();
}
}  // namespace foray::staticforay
