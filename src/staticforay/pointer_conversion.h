// Franke & O'Boyle-style pointer-to-array conversion (the paper's
// reference [3]): a stronger *static* baseline.
//
// Their compiler pass rewrites pointer walks into explicit array
// subscripts when the pointer's provenance and induction behavior are
// statically evident. We model the analysis side: a dereference of a
// pointer variable counts as statically convertible when
//   - the pointer is a local initialized directly from a named array
//     (possibly plus a constant),
//   - every update on the path to the dereference advances it by a
//     compile-time constant (p++, p--, p += c),
//   - the pointer is never reassigned from anything else, never passed
//     to a function, and its address is never taken.
// As in the original work, this rescues simple streaming walks but not
// data-dependent offsets or cross-function pointers — the gap FORAY-GEN
// closes dynamically.
#pragma once

#include <set>

#include "foray/model.h"
#include "minic/ast.h"
#include "staticforay/static_analysis.h"

namespace foray::staticforay {

struct PointerConversion {
  /// Node ids of Deref/Index expressions through convertible pointers.
  std::set<int> convertible_ref_nodes;
  /// Pointer variables recognized as convertible (per function,
  /// qualified as "func/name" for reporting).
  std::set<std::string> convertible_pointers;

  bool ref_is_convertible(int node_id) const {
    return convertible_ref_nodes.count(node_id) > 0;
  }
};

/// Analyzes an annotated, checked program.
PointerConversion analyze_pointer_conversion(const minic::Program& prog);

/// Table II with the stronger baseline: how many of the model's
/// references the Franke-style pass would additionally rescue.
struct BaselineComparison {
  int model_refs = 0;
  int plain_static = 0;      ///< affine subscripts in canonical fors
  int with_conversion = 0;   ///< plain + converted pointer walks
  int foray_gen = 0;         ///< all model refs (dynamic recovery)

  double conversion_gain() const {
    return plain_static > 0
               ? static_cast<double>(with_conversion) / plain_static
               : 0.0;
  }
  double foray_gain_over_conversion() const {
    return with_conversion > 0
               ? static_cast<double>(foray_gen) / with_conversion
               : static_cast<double>(foray_gen);
  }
};

BaselineComparison compare_baselines(const core::ForayModel& model,
                                     const Analysis& analysis,
                                     const PointerConversion& conv);

}  // namespace foray::staticforay
