// The static baseline: what traditional SPM analyses ([5][6][7] in the
// paper) can see in the *original* source without FORAY-GEN.
//
// Those techniques require FORAY form syntactically: canonical `for`
// loops and direct array subscripts whose index expressions are affine in
// the enclosing canonical iterators. Everything else — pointer walks,
// while/do loops, data-dependent offsets — is statically opaque.
//
// Joining this analysis with a dynamically-extracted FORAY model yields
// Table II's right half ("percentage of loops and references that are not
// in FORAY form in the original program") and the paper's headline ~2x
// increase in analyzable references.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "foray/model.h"
#include "instrument/annotator.h"
#include "minic/ast.h"

namespace foray::staticforay {

struct Analysis {
  /// Loop ids of canonical for loops: `for (i = c0; i <op> bound; i
  /// += c)` with a constant bound, whose iterator is never written in the
  /// body.
  std::set<int> canonical_loops;
  /// Expression node ids of array subscripts `arr[e]` on array variables
  /// where `e` is affine in enclosing canonical iterators and integer
  /// constants.
  std::set<int> affine_ref_nodes;
  /// All loop ids inspected (every loop in the program).
  int total_loops = 0;
  /// All memory-referencing sites inspected (subscripts + derefs).
  int total_ref_sites = 0;

  bool loop_is_canonical(int loop_id) const {
    return canonical_loops.count(loop_id) > 0;
  }
  bool ref_is_affine(int node_id) const {
    return affine_ref_nodes.count(node_id) > 0;
  }
};

/// Analyzes an annotated, sema-checked program.
Analysis analyze(const minic::Program& prog);

/// Table II, one benchmark: how much of the dynamic FORAY model was
/// *already* statically expressible.
struct ConversionStats {
  int model_loops = 0;  ///< loops representable in FORAY form (dynamic)
  int model_refs = 0;   ///< references representable in FORAY form
  int loops_not_foray = 0;  ///< of model_loops, not statically canonical
  int refs_not_foray = 0;   ///< of model_refs, not statically affine

  double pct_loops_not_foray() const {
    return model_loops ? 100.0 * loops_not_foray / model_loops : 0.0;
  }
  double pct_refs_not_foray() const {
    return model_refs ? 100.0 * refs_not_foray / model_refs : 0.0;
  }
  /// The headline metric: total analyzable refs (with FORAY-GEN) over
  /// refs already analyzable statically.
  double ref_increase_factor() const {
    const int statically = model_refs - refs_not_foray;
    return statically > 0 ? static_cast<double>(model_refs) / statically
                          : static_cast<double>(model_refs);
  }
};

/// A model reference counts as statically analyzable iff its instruction
/// is a statically-affine subscript *and* every loop of its emitted nest
/// is canonical.
ConversionStats compute_conversion(const core::ForayModel& model,
                                   const Analysis& analysis);

}  // namespace foray::staticforay
