// Interval arithmetic and saturating static cost bounds for the MiniC
// checker (staticforay/checker.h).
//
// Interval models the engines' value semantics soundly: expression
// temporaries are exact int64 (sim/value.h), narrowing to the declared
// width happens only where the engines convert (stores, casts, compound
// assignment, parameter binding). Every operation here returns a
// superset of the concretely reachable values; top() — the full int64
// range — is always a sound answer, so precision is best-effort and
// correctness never depends on it.
//
// StaticCost carries whole-program bounds on executed steps and emitted
// trace records, in saturating uint64 arithmetic where kUnbounded (the
// max value) means "no finite bound". Upper bounds dominate both engines
// under any options; lower bounds assume the default full-tracing
// RunOptions and hold for runs that complete without faulting — exactly
// the reading serve admission needs ("this request cannot finish inside
// its record budget").
#pragma once

#include <cstdint>
#include <string>

namespace foray::staticforay {

/// Saturation point for cost arithmetic: "unbounded" / no finite bound.
inline constexpr uint64_t kUnbounded = ~0ull;

uint64_t sat_add(uint64_t a, uint64_t b);
uint64_t sat_mul(uint64_t a, uint64_t b);

// ---------------------------------------------------------------------------
// Intervals over int64 (inclusive ends). There is no empty interval:
// unreachability is tracked by the checker's abstract state, not here.

struct Interval {
  int64_t lo = 0;
  int64_t hi = 0;

  static Interval top();
  static Interval singleton(int64_t v) { return {v, v}; }
  static Interval range(int64_t l, int64_t h) { return {l, h}; }

  bool is_top() const;
  bool is_singleton() const { return lo == hi; }
  bool contains(int64_t v) const { return lo <= v && v <= hi; }
  bool contains_zero() const { return contains(0); }
  /// Exactly [0, 0] — the "provably zero" test behind must-fault
  /// division diagnostics.
  bool is_zero() const { return lo == 0 && hi == 0; }
  bool nonneg() const { return lo >= 0; }

  bool operator==(const Interval& o) const { return lo == o.lo && hi == o.hi; }

  std::string str() const;
};

/// Least upper bound (convex hull).
Interval iv_join(const Interval& a, const Interval& b);
/// Standard widening: any end that grew jumps straight to the int64
/// extreme, guaranteeing loop-head fixpoints terminate in O(1) passes.
Interval iv_widen(const Interval& prev, const Interval& next);
/// Intersection. Returns false (and leaves *out* untouched) when empty.
bool iv_meet(const Interval& a, const Interval& b, Interval* out);

// Sound transfer functions for the engines' int64 operator semantics.
// Division/modulo assume the caller has separately handled the zero
// divisor (the engines fault before producing a value).
Interval iv_add(const Interval& a, const Interval& b);
Interval iv_sub(const Interval& a, const Interval& b);
Interval iv_mul(const Interval& a, const Interval& b);
Interval iv_div(const Interval& a, const Interval& b);
Interval iv_mod(const Interval& a, const Interval& b);
Interval iv_neg(const Interval& a);
Interval iv_bitnot(const Interval& a);
Interval iv_bitand(const Interval& a, const Interval& b);
Interval iv_bitor(const Interval& a, const Interval& b);
Interval iv_bitxor(const Interval& a, const Interval& b);
/// a << (b & 63) and a >> (b & 63), as both engines evaluate them.
Interval iv_shl(const Interval& a, const Interval& b);
Interval iv_shr(const Interval& a, const Interval& b);
Interval iv_abs(const Interval& a);

/// The engines' convert_value() narrowing for a store/cast to an integer
/// type of `size_bytes` (1 = char, 2 = short, 4 = int). Values already
/// inside the type's range pass through unchanged; anything else may wrap
/// and yields the full type range.
Interval iv_truncate(const Interval& v, int size_bytes);
/// The full value range of an integer type of `size_bytes`.
Interval iv_type_range(int size_bytes);

// ---------------------------------------------------------------------------
// Static cost bounds.

/// Bounds on a program fragment's executed simulator steps and emitted
/// trace records. `max_*` dominate both engines on every execution;
/// `min_*` under-approximate any fault-free completed run with default
/// tracing options. `exact` is set when control flow is fully determined
/// and min == max for records (step counts are engine-dependent, so they
/// are never exact).
struct StaticCost {
  uint64_t max_steps = 0;
  uint64_t max_records = 0;
  uint64_t min_steps = 0;
  uint64_t min_records = 0;
  bool exact = true;

  bool bounded() const {
    return max_steps != kUnbounded && max_records != kUnbounded;
  }
  std::string str() const;
};

/// Sequential composition: a then b.
StaticCost cost_seq(const StaticCost& a, const StaticCost& b);
/// Branching: either a or b runs.
StaticCost cost_alt(const StaticCost& a, const StaticCost& b);
/// Loop composition: body runs between trips_lo and trips_hi times
/// (trips_hi may be kUnbounded).
StaticCost cost_repeat(const StaticCost& body, uint64_t trips_lo,
                       uint64_t trips_hi);

/// Renders a bound for messages/JSON: digits, or "unbounded".
std::string cost_bound_str(uint64_t v);

}  // namespace foray::staticforay
