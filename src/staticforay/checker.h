// A sound static checker for MiniC: interval-domain abstract
// interpretation over the sema-checked, loop-annotated AST.
//
// The checker tracks one interval per integer scalar whose address is
// never taken, with widening at loop heads, branch narrowing on simple
// relational conditions, and context-sensitive inlining of user calls
// (recursion makes the analysis give up on the cycle, conservatively).
// It produces two artifacts:
//
//   1. Diagnostics, each tagged must-fault (the program faults on every
//      execution that reaches completion of the diagnosed statement —
//      provable division/modulo by zero and provably-false assert) or
//      warning (anything the checker cannot prove safe: possible or even
//      provable out-of-bounds subscripts — in-segment overruns do not
//      fault on the simulated machine — uses before initialization,
//      unverified pointer traffic, unbounded loops, recursion,
//      unreachable statements, canonical-iterator writes, ...).
//
//   2. StaticCost bounds on executed steps and emitted trace records
//      (staticforay/cost.h), composed from per-nest trip-count intervals.
//
// The soundness contract, ratcheted by tests/checker_test.cpp over the
// benchsuite plus seeded generator corpora:
//   - clean() (zero diagnostics)  =>  both engines run fault-free;
//   - must_fault()                =>  both engines fault (or diverge
//                                     into a budget fault);
//   - max_steps / max_records     >=  observed dynamic counts on either
//                                     engine, on every execution;
//   - min_steps / min_records     <=  observed counts of any fault-free
//                                     completed run under default
//                                     tracing options.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "minic/ast.h"
#include "staticforay/cost.h"
#include "util/status.h"

namespace foray::staticforay {

enum class Severity : uint8_t {
  Warning,    ///< may fault, or analysis gave up on proving safety
  MustFault,  ///< faults on every execution reaching this statement
};

enum class CheckKind : uint8_t {
  DivByZero,          ///< division/modulo by a (possibly) zero divisor
  AssertFail,         ///< assert condition (possibly) zero
  OutOfBounds,        ///< array subscript outside the declared extent
  UseBeforeInit,      ///< scalar read before any initialization
  Unreachable,        ///< statement can never execute
  CanonicalIterWrite, ///< canonical for loop whose body writes the iterator
  UnboundedLoop,      ///< no finite trip-count bound
  PointerUnchecked,   ///< pointer/heap traffic the checker cannot verify
  Recursion,          ///< recursive call: analysis of the cycle abandoned
  StackLimit,         ///< locals may exceed the simulated stack capacity
  HeapLimit,          ///< allocations may exceed the heap capacity
  OutputLimit,        ///< program output may exceed the output cap
  IntrinsicMisuse,    ///< faulting intrinsic call: printf arity, negative size
  AnalysisLimit,      ///< checker budget exhausted; results degraded to top
};

std::string_view check_kind_name(CheckKind k);
std::string_view severity_name(Severity s);

struct CheckDiag {
  CheckKind kind = CheckKind::DivByZero;
  Severity severity = Severity::Warning;
  int line = 0;
  int node_id = -1;  ///< expression/declaration node, -1 for statements
  std::string message;
};

struct CheckerOptions {
  /// Mirror of the engines' resource caps (sim::RunOptions defaults);
  /// exceeding them is a runtime fault, so the checker must flag any
  /// program it cannot prove inside them.
  uint64_t stack_capacity = 1u << 22;
  uint64_t heap_capacity = 1u << 24;
  uint64_t max_output_bytes = 1u << 24;
  /// Abstract-interpretation work budget (statement visits); exceeding
  /// it degrades the analysis to an AnalysisLimit warning with
  /// unbounded cost, never to unsoundness.
  uint64_t max_abstract_steps = 2'000'000;
};

struct CheckReport {
  std::vector<CheckDiag> diags;
  StaticCost cost;

  /// Zero diagnostics of any severity: the checker certifies the
  /// program fault-free (and the cost bounds finite unless the program
  /// provably diverges).
  bool clean() const { return diags.empty(); }
  bool must_fault() const {
    for (const CheckDiag& d : diags)
      if (d.severity == Severity::MustFault) return true;
    return false;
  }

  /// Human-readable rendering, one line per diagnostic plus the bounds.
  std::string str() const;
};

/// Checks a sema-checked, loop-annotated program (parse_and_check +
/// instrument::annotate_loops). Never fails: analysis limits and
/// imprecision surface as warnings and unbounded costs.
CheckReport check_program(const minic::Program& prog,
                          const CheckerOptions& opts = {});

/// One-stop lint for tools and drivers: parse + sema + loop annotation +
/// check_program. Returns a kInvalidInput failure (with the front-end
/// diagnostics) when the source does not compile; the checker itself
/// never fails.
util::Status lint_source(std::string_view source, CheckReport* out,
                         const CheckerOptions& opts = {});

}  // namespace foray::staticforay
