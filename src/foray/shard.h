// Sharded single-program extraction: one giant trace across all cores.
//
// The batch driver parallelizes across programs; this module is the
// complementary step — splitting ONE materialized trace into pieces that
// K extractors consume concurrently, with a merged result that is
// bit-identical to a sequential extraction.
//
// Why splitting by *loop context* (and not by time) is exact: Algorithm 3
// is a strictly sequential fold per reference, so a shard may only own a
// reference if it sees every one of its observations, in order. A
// reference lives in exactly one dynamic loop context, and a context is
// rooted at one top-level loop site (a LoopEnter at nesting depth zero).
// The trace is therefore cut at top-level LoopEnter/LoopExit checkpoint
// boundaries into segments; all segments of the same top-level site —
// however many times the loop re-enters — go to one shard, in trace
// order. Records between segments (root-level accesses, call/ret
// traffic) form "gap" segments routed to shard 0, preserving their
// order too. Every shard hence replays exact sub-sequences of the
// sequential extractor's work; LoopTree::merge puts the disjoint
// subtrees back in first-seen order.
//
// Bounded speedup: one dominant top-level loop limits what context
// sharding can spread (report.balance tells how well the plan spread the
// work). That is the price of exactness — time-slicing a context would
// tear references' observation sequences apart.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "foray/extractor.h"
#include "trace/record.h"

namespace foray::core {

/// One contiguous run of records, [begin, end) into the trace.
/// site_id >= 0: a top-level loop activation (LoopEnter..LoopExit).
/// site_id == -1: a gap between activations (root-level records).
struct TraceSegment {
  uint64_t begin = 0;
  uint64_t end = 0;
  int site_id = -1;
};

/// Top-level structure of a trace: segments in trace order, covering
/// every record exactly once.
struct TraceIndex {
  std::vector<TraceSegment> segments;
  uint64_t records = 0;
};

/// Single cheap pass over the trace (checkpoint nesting only).
TraceIndex index_trace(std::span<const trace::Record> trace);

struct ShardReport {
  int shards_requested = 0;
  int shards_used = 0;          ///< shards that received any records
  uint64_t records = 0;
  /// Largest shard's record share / (records / shards_used): 1.0 is a
  /// perfect spread, higher means one context dominates.
  double balance = 1.0;
};

/// Extracts `trace` with `shards` concurrent extractors (thread-pooled)
/// and merges them into the returned extractor. The result — tree,
/// model, statistics — is identical to feeding the whole trace through
/// one Extractor; a property test locks that in across the benchsuite.
/// `shards <= 1` runs plain sequential extraction.
Extractor extract_sharded(std::span<const trace::Record> trace,
                          const ExtractorOptions& opts, int shards,
                          ShardReport* report = nullptr);

}  // namespace foray::core
