// The dynamic loop/reference tree of Algorithm 2.
//
// Nodes are created lazily as checkpoints stream by. The tree is
// *call-context sensitive*: the same source loop reached through two
// different dynamic paths (e.g. a function called from two places) yields
// two distinct LoopNodes — this is exactly the paper's "functions appear
// to be inlined in our model" behavior (§4, inter-function optimizations).
//
// Every node maintains the normalized iteration counter the paper
// describes ("each loop node maintains the current value of a variable
// that counts the number of loop iterations"); these counters are the
// iterator values consumed by Algorithm 3.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "foray/affine.h"
#include "trace/record.h"

namespace foray::core {

struct RefNode;

class LoopNode {
 public:
  static constexpr size_t kDefaultFootprintCap = 1u << 20;

  LoopNode(int loop_id, LoopNode* parent, bool hash_index,
           size_t footprint_cap = kDefaultFootprintCap)
      : loop_id_(loop_id),
        parent_(parent),
        depth_(parent == nullptr ? 0 : parent->depth_ + 1),
        hash_index_(hash_index),
        footprint_cap_(footprint_cap) {}

  int loop_id() const { return loop_id_; }
  LoopNode* parent() const { return parent_; }
  /// Number of loops enclosing references attached here (root = 0).
  int depth() const { return depth_; }

  // -- Algorithm 2 state ------------------------------------------------

  int64_t cur_iter = -1;       ///< normalized iterator value (this entry)
  int64_t max_trip = 0;        ///< max iterations over all entries
  uint64_t entries = 0;        ///< times this loop was entered
  uint64_t total_iterations = 0;

  // -- children / references ---------------------------------------------

  /// Child for `site_id`, creating it on first sight.
  LoopNode* get_or_create_child(int site_id);
  /// Child for `site_id` or nullptr.
  LoopNode* find_child(int site_id);

  /// Reference node for `instr`, creating it on first sight. Sets
  /// `*created` when a new node was made.
  RefNode* get_or_create_ref(uint32_t instr, bool* created);
  RefNode* find_ref(uint32_t instr);

  const std::vector<std::unique_ptr<LoopNode>>& children() const {
    return children_;
  }
  const std::vector<std::unique_ptr<RefNode>>& refs() const { return refs_; }

  /// Approximate heap bytes held by this node (excluding children),
  /// used by the constant-space ablation (E7/E9).
  size_t state_bytes() const;

 private:
  int loop_id_;
  LoopNode* parent_;
  int depth_;
  bool hash_index_;
  size_t footprint_cap_;

  std::vector<std::unique_ptr<LoopNode>> children_;
  std::unordered_map<int, LoopNode*> child_index_;
  std::vector<std::unique_ptr<RefNode>> refs_;
  std::unordered_map<uint32_t, RefNode*> ref_index_;
};

/// Per-reference dynamic information: identity, traffic counters, the
/// affine-recovery state of Algorithm 3 and the footprint set used by the
/// Step 4 filter and Table III.
struct RefNode {
  RefNode(uint32_t instr, LoopNode* owner, size_t footprint_cap)
      : instr(instr), owner(owner), footprint_cap_(footprint_cap) {}

  uint32_t instr;
  LoopNode* owner;

  uint8_t access_size = 0;
  bool has_read = false;
  bool has_write = false;
  trace::AccessKind kind = trace::AccessKind::Data;

  uint64_t exec_count = 0;
  AffineState affine;

  void note_address(uint32_t addr) {
    if (footprint_.size() < footprint_cap_) {
      footprint_.insert(addr);
    } else if (!footprint_.count(addr)) {
      saturated_ = true;
    }
  }
  uint64_t footprint_size() const { return footprint_.size(); }
  bool footprint_saturated() const { return saturated_; }
  const std::unordered_set<uint32_t>& footprint() const { return footprint_; }

 private:
  std::unordered_set<uint32_t> footprint_;
  size_t footprint_cap_;
  bool saturated_ = false;
};

/// Owns the root node and the indexing policy (hash-table indices per the
/// paper's complexity argument, or linear scans for the E8 ablation).
class LoopTree {
 public:
  explicit LoopTree(bool hash_index = true,
                    size_t footprint_cap = LoopNode::kDefaultFootprintCap)
      : root_(std::make_unique<LoopNode>(-1, nullptr, hash_index,
                                         footprint_cap)),
        hash_index_(hash_index) {}

  LoopNode* root() { return root_.get(); }
  const LoopNode* root() const { return root_.get(); }
  bool hash_index() const { return hash_index_; }

  /// Total heap footprint of all nodes — the analyzer's working-set size
  /// (constant in trace length, linear in distinct loop contexts).
  size_t state_bytes() const;

  /// Total loop nodes / reference nodes in the tree.
  int loop_node_count() const;
  int ref_node_count() const;

 private:
  std::unique_ptr<LoopNode> root_;
  bool hash_index_;
};

/// Depth-first visit of all loop nodes (pre-order, root included).
template <typename Fn>
void for_each_node(const LoopNode& node, Fn&& fn) {
  fn(node);
  for (const auto& child : node.children()) {
    for_each_node(*child, fn);
  }
}

}  // namespace foray::core
