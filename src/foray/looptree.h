// The dynamic loop/reference tree of Algorithm 2.
//
// Nodes are created lazily as checkpoints stream by. The tree is
// *call-context sensitive*: the same source loop reached through two
// different dynamic paths (e.g. a function called from two places) yields
// two distinct LoopNodes — this is exactly the paper's "functions appear
// to be inlined in our model" behavior (§4, inter-function optimizations).
//
// Every node maintains the normalized iteration counter the paper
// describes ("each loop node maintains the current value of a variable
// that counts the number of loop iterations"); these counters are the
// iterator values consumed by Algorithm 3.
//
// Indices are insert-only flat hash tables (util/flat_hash.h) — the
// child and reference lookups run once per checkpoint / per access and
// were the analyzer's hot path. Nodes and references carry a
// `first_seen` stamp (the trace position at which they were created) so
// that trees built by parallel shards of one trace can be merged back
// into the exact sequential creation order (LoopTree::merge).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "foray/affine.h"
#include "trace/record.h"
#include "util/flat_hash.h"

namespace foray::core {

struct RefNode;

/// Collision handler for merges of trees that may both carry Algorithm 3
/// state for one reference (time-partition sharding, foray/timeshard.h).
/// Called with the surviving node and the one about to be dropped; the
/// handler folds `from`'s state into `into` (or marks `into` for a
/// rescan). Context sharding never collides, so its merges pass none and
/// keep the collision FORAY_CHECK.
using RefMergeFn = std::function<void(RefNode* into, RefNode* from)>;

class LoopNode {
 public:
  static constexpr size_t kDefaultFootprintCap = 1u << 20;

  LoopNode(int loop_id, LoopNode* parent, bool hash_index,
           size_t footprint_cap = kDefaultFootprintCap)
      : loop_id_(loop_id),
        parent_(parent),
        depth_(parent == nullptr ? 0 : parent->depth_ + 1),
        hash_index_(hash_index),
        footprint_cap_(footprint_cap) {}

  int loop_id() const { return loop_id_; }
  LoopNode* parent() const { return parent_; }
  /// Number of loops enclosing references attached here (root = 0).
  int depth() const { return depth_; }

  // -- Algorithm 2 state ------------------------------------------------

  int64_t cur_iter = -1;       ///< normalized iterator value (this entry)
  int64_t max_trip = 0;        ///< max iterations over all entries
  uint64_t entries = 0;        ///< times this loop was entered
  uint64_t total_iterations = 0;
  /// Trace position at which this node was created (set by the
  /// extractor); total order over nodes == sequential creation order.
  uint64_t first_seen = 0;

  // -- children / references ---------------------------------------------

  /// Child for `site_id`, creating it on first sight (stamped `stamp`).
  LoopNode* get_or_create_child(int site_id, uint64_t stamp = 0) {
    if (LoopNode* found = find_child(site_id)) return found;
    return create_child(site_id, stamp);
  }
  /// Child for `site_id` or nullptr. Inline — this runs per checkpoint.
  LoopNode* find_child(int site_id) {
    if (hash_index_) {
      LoopNode** found = child_index_.find(static_cast<uint32_t>(site_id));
      return found == nullptr ? nullptr : *found;
    }
    return find_child_linear(site_id);
  }

  /// Reference node for `instr`, creating it on first sight (stamped
  /// `stamp`). Sets `*created` when a new node was made.
  RefNode* get_or_create_ref(uint32_t instr, bool* created,
                             uint64_t stamp = 0) {
    if (RefNode* found = find_ref(instr)) {
      if (created != nullptr) *created = false;
      return found;
    }
    if (created != nullptr) *created = true;
    return create_ref(instr, stamp);
  }
  /// Reference for `instr` or nullptr. Inline — this runs per access.
  RefNode* find_ref(uint32_t instr) {
    if (hash_index_) {
      RefNode** found = ref_index_.find(instr);
      return found == nullptr ? nullptr : *found;
    }
    return find_ref_linear(instr);
  }

  const std::vector<std::unique_ptr<LoopNode>>& children() const {
    return children_;
  }
  const std::vector<std::unique_ptr<RefNode>>& refs() const { return refs_; }

  /// Folds `other` (a node for the same loop site, built by a shard of
  /// the same trace) into this node: counters are combined, children and
  /// references are adopted or recursively merged, and both orders are
  /// restored to sequential first-seen order via the stamps. Colliding
  /// references go through `on_collision` when given, else they are a
  /// sharder bug (FORAY_CHECK).
  void merge_from(LoopNode&& other, const RefMergeFn* on_collision = nullptr);

  /// Approximate heap bytes held by this node (excluding children),
  /// used by the constant-space ablation (E7/E9).
  size_t state_bytes() const;

 private:
  LoopNode* create_child(int site_id, uint64_t stamp);
  LoopNode* find_child_linear(int site_id);
  RefNode* create_ref(uint32_t instr, uint64_t stamp);
  RefNode* find_ref_linear(uint32_t instr);
  void adopt_child(std::unique_ptr<LoopNode> child);
  void adopt_ref(std::unique_ptr<RefNode> ref);

  int loop_id_;
  LoopNode* parent_;
  int depth_;
  bool hash_index_;
  size_t footprint_cap_;

  std::vector<std::unique_ptr<LoopNode>> children_;
  util::FlatMap32<LoopNode*> child_index_;
  std::vector<std::unique_ptr<RefNode>> refs_;
  util::FlatMap32<RefNode*> ref_index_;
};

/// Per-reference dynamic information: identity, traffic counters, the
/// affine-recovery state of Algorithm 3 and the footprint set used by the
/// Step 4 filter and Table III.
struct RefNode {
  RefNode(uint32_t instr_id, LoopNode* owner_node, size_t footprint_cap)
      : instr(instr_id), owner(owner_node), footprint_cap_(footprint_cap) {}

  // Hot-first layout: everything the extractor touches per access
  // (identity, counters, the affine fast-path head) packs into the
  // node's first cache lines; bookkeeping read at model-build time
  // trails at the end.
  uint32_t instr;
  uint8_t access_size = 0;
  bool has_read = false;
  bool has_write = false;
  trace::AccessKind kind = trace::AccessKind::Data;

  uint64_t exec_count = 0;
  /// Extractor epoch (checkpoint count) of the last observation; lets
  /// the extractor prove "same iterators as my previous execution"
  /// without comparing iterator vectors.
  uint64_t last_epoch = ~0ull;
  AffineState affine;

  void note_address(uint32_t addr) {
    // One-entry MRU: the dominant patterns — a scalar touched every
    // iteration, the load/store pair of a compound assignment — hit the
    // same address back to back.
    if (addr == last_addr_) return;
    last_addr_ = addr;
    if (footprint_.size() < footprint_cap_) {
      footprint_.insert(addr);
    } else if (!footprint_.contains(addr)) {
      saturated_ = true;
    }
  }
  /// note_address() that also reports whether `addr` entered the
  /// footprint — the signal time-shard slices log so the merge can
  /// replay their insertions in sequential order.
  bool note_address_logged(uint32_t addr) {
    if (addr == last_addr_) return false;
    last_addr_ = addr;
    if (footprint_.size() < footprint_cap_) return footprint_.insert(addr);
    if (!footprint_.contains(addr)) saturated_ = true;
    return false;
  }
  /// Replays a slice's footprint insertions (in slice insertion order)
  /// with note_address()'s cap/saturation semantics. Addresses already
  /// present are no-ops, so page insertion order stays sequential.
  void replay_footprint_inserts(const std::vector<uint32_t>& addrs) {
    for (uint32_t addr : addrs) {
      last_addr_ = addr;
      if (footprint_.size() < footprint_cap_) {
        footprint_.insert(addr);
      } else if (!footprint_.contains(addr)) {
        saturated_ = true;
      }
    }
  }
  uint64_t footprint_size() const { return footprint_.size(); }
  bool footprint_saturated() const { return saturated_; }
  const util::PagedAddrSet& footprint() const { return footprint_; }

  LoopNode* owner;
  /// Creation stamp, see LoopNode::first_seen.
  uint64_t first_seen = 0;
  static constexpr uint32_t kNoSideSlot = 0xffffffffu;
  /// Scratch for time-partition sharding (foray/timeshard.cpp): on a
  /// slice's refs, the index of its side log; on the merged tree, a
  /// rescan mark. Reset on adoption; unused everywhere else.
  uint32_t side_slot = kNoSideSlot;

 private:
  friend class LoopNode;

  uint64_t last_addr_ = ~0ull;  ///< out of the u32 range = no MRU yet
  util::PagedAddrSet footprint_;
  size_t footprint_cap_;
  bool saturated_ = false;
};

/// Owns the root node and the indexing policy (hash-table indices per the
/// paper's complexity argument, or linear scans for the E8 ablation).
class LoopTree {
 public:
  explicit LoopTree(bool hash_index = true,
                    size_t footprint_cap = LoopNode::kDefaultFootprintCap)
      : root_(std::make_unique<LoopNode>(-1, nullptr, hash_index,
                                         footprint_cap)),
        hash_index_(hash_index) {}

  LoopNode* root() { return root_.get(); }
  const LoopNode* root() const { return root_.get(); }
  bool hash_index() const { return hash_index_; }

  /// Merges a tree built over a shard of the same trace into this one.
  /// Counters accumulate; disjoint subtrees are adopted wholesale;
  /// first_seen stamps restore the sequential creation order, so merging
  /// the shards of a partitioned trace (in any order) reproduces the
  /// tree a single sequential extraction would have built. Colliding
  /// references must carry Algorithm 3 state on at most one side — the
  /// sharder guarantees that by keeping each loop context whole — unless
  /// the caller supplies `on_collision` (time-partition sharding).
  void merge(LoopTree&& other, const RefMergeFn* on_collision = nullptr) {
    root_->merge_from(std::move(*other.root_), on_collision);
  }

  /// Total heap footprint of all nodes — the analyzer's working-set size
  /// (constant in trace length, linear in distinct loop contexts).
  size_t state_bytes() const;

  /// Total loop nodes / reference nodes in the tree.
  int loop_node_count() const;
  int ref_node_count() const;

 private:
  std::unique_ptr<LoopNode> root_;
  bool hash_index_;
};

/// Depth-first visit of all loop nodes (pre-order, root included).
template <typename Fn>
void for_each_node(const LoopNode& node, Fn&& fn) {
  fn(node);
  for (const auto& child : node.children()) {
    for_each_node(*child, fn);
  }
}

}  // namespace foray::core
