#include "foray/timeshard.h"

#include <algorithm>
#include <exception>
#include <vector>

#include "foray/affine.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace foray::core {
namespace {

using trace::CheckpointType;
using trace::Record;
using trace::RecordType;

/// side_slot value marking a running-tree reference for the fix-up skim.
/// Distinct from kNoSideSlot and unreachable as a log index.
constexpr uint32_t kRescanMark = 0xfffffffeu;

// ---------------------------------------------------------------------------
// Boundary pre-pass
// ---------------------------------------------------------------------------

/// Loop-context stack + duplicate-detection epoch at one cut position.
struct Boundary {
  uint64_t pos = 0;
  uint64_t epoch = 0;
  std::vector<SeedFrame> stack;  ///< outermost first
};

/// Sequential checkpoint-only walk recording the extractor state at every
/// cut. Mirrors Extractor::on_checkpoint's tolerant pop-to-loop handling
/// exactly, so the seeded slices navigate the same contexts a sequential
/// run would be in. O(records) with no Algorithm 3 work — this is the
/// sequential fraction of the time-shard scheme.
std::vector<Boundary> scan_boundaries(std::span<const Record> trace,
                                      std::span<const uint64_t> cuts) {
  std::vector<Boundary> out;
  out.reserve(cuts.size());
  std::vector<SeedFrame> stack;
  uint64_t epoch = 0;
  size_t ci = 0;
  for (uint64_t i = 0; i < trace.size() && ci < cuts.size(); ++i) {
    if (cuts[ci] == i) {
      out.push_back({i, epoch, stack});
      ++ci;
      if (ci == cuts.size()) break;
    }
    const Record& r = trace[i];
    if (r.type() != RecordType::Checkpoint) continue;
    ++epoch;
    switch (r.cp()) {
      case CheckpointType::LoopEnter:
        stack.push_back({r.loop_id(), -1});
        break;
      case CheckpointType::BodyBegin: {
        while (!stack.empty() && stack.back().loop_id != r.loop_id()) {
          stack.pop_back();
        }
        FORAY_CHECK(!stack.empty(),
                    "body_begin checkpoint for a loop that never entered");
        ++stack.back().cur_iter;
        break;
      }
      case CheckpointType::BodyEnd:
        break;
      case CheckpointType::LoopExit: {
        while (!stack.empty() && stack.back().loop_id != r.loop_id()) {
          stack.pop_back();
        }
        FORAY_CHECK(!stack.empty(),
                    "loop_exit checkpoint without matching loop_enter");
        stack.pop_back();
        break;
      }
    }
  }
  FORAY_CHECK(out.size() == cuts.size(),
              "timeshard: cut position beyond end of trace");
  return out;
}

// ---------------------------------------------------------------------------
// Slice-side logging
// ---------------------------------------------------------------------------

/// Per-reference side log a slice keeps so the merge can decide whether
/// the slice was *event-free* from the running state's point of view —
/// without re-reading the slice.
struct RefLog {
  /// Events are rare (first sight, coefficient solves, mispredictions,
  /// Step 4 exclusions); a reference accumulating more than this many is
  /// not going to compose anyway, so stop logging and let it rescan.
  static constexpr size_t kMaxEvents = 24;

  struct Event {
    int64_t addr = 0;    ///< observed address IND
    uint64_t epoch = 0;  ///< extractor epoch at the observation
    /// Iterator values at the observation (innermost first, [0, n)).
    int64_t iters[AffineState::kInlineNest] = {0, 0, 0, 0};
    /// Post-observation slice state, for the interval-constancy check.
    int64_t post_const = 0;
    int64_t post_itp[AffineState::kInlineNest] = {0, 0, 0, 0};
    uint8_t unknown_mask = 0;  ///< bit i: slice coef i UNKNOWN post-event
    uint8_t size = 0;
    trace::AccessKind kind = trace::AccessKind::Data;
    uint32_t nondup_index = 0;  ///< 0-based non-duplicate ordinal
  };

  std::vector<Event> events;
  std::vector<uint32_t> fp_inserts;  ///< footprint insertions, in order
  uint32_t nondup_count = 0;         ///< non-duplicate observations seen
  bool fallback = false;             ///< log unusable; force a rescan
};

/// AccessHook that performs the footprint note + Algorithm 3 observation
/// for a slice while logging (a) footprint insertions and (b) every
/// observation that was an *event* — one whose effect on the slice state
/// went beyond the solved fast path's obs/ITP/INDP bookkeeping.
class SliceLogger final : public AccessHook {
 public:
  std::vector<RefLog> logs;

  RefLog* log_for(const RefNode* ref) {
    return ref->side_slot == RefNode::kNoSideSlot ? nullptr
                                                  : &logs[ref->side_slot];
  }

  void nondup_observe(RefNode* ref, std::span<const int64_t> iters,
                      int64_t ind, uint32_t addr, uint64_t epoch) override {
    if (ref->side_slot == RefNode::kNoSideSlot) {
      ref->side_slot = static_cast<uint32_t>(logs.size());
      logs.emplace_back();
    }
    // NOTE: logs may reallocate above; re-take the reference afterwards.
    RefLog& lg = logs[ref->side_slot];
    if (ref->note_address_logged(addr)) lg.fp_inserts.push_back(addr);

    AffineState& st = ref->affine;
    // Pre-observation event triggers: first sight, or an unknown-
    // coefficient iterator changed (Step 3 solve or Step 4 exclusion
    // will fire inside observe_access).
    bool event = !st.initialized;
    if (!event && st.analyzable && static_cast<int>(iters.size()) == st.n) {
      const int64_t* c = st.coef();
      const int64_t* itp = st.itp();
      for (int i = 0; i < st.n; ++i) {
        if (c[i] == AffineState::kUnknown && iters[i] != itp[i]) {
          event = true;
          break;
        }
      }
    }
    const uint64_t pre_mis = st.mispredictions;
    const bool pre_analyzable = st.analyzable;
    observe_access(st, iters, ind);
    event = event || st.mispredictions != pre_mis ||
            st.analyzable != pre_analyzable;

    const uint32_t idx = lg.nondup_count++;
    if (lg.fallback) return;
    if (st.n > AffineState::kInlineNest) {
      lg.fallback = true;
      return;
    }
    if (!event) return;
    if (lg.events.size() >= RefLog::kMaxEvents) {
      lg.fallback = true;
      return;
    }
    RefLog::Event ev;
    ev.addr = ind;
    ev.epoch = epoch;
    ev.nondup_index = idx;
    ev.size = ref->access_size;
    ev.kind = ref->kind;
    ev.post_const = st.const_term;
    const int64_t* c = st.coef();
    const int64_t* itp = st.itp();
    for (int i = 0; i < st.n; ++i) {
      ev.iters[i] = iters[i];
      ev.post_itp[i] = itp[i];
      if (c[i] == AffineState::kUnknown) ev.unknown_mask |= uint8_t(1u << i);
    }
    lg.events.push_back(ev);
  }
};

// ---------------------------------------------------------------------------
// O(1) composition at a slice boundary
// ---------------------------------------------------------------------------

/// Decides whether a sequential fold arriving at the boundary with solved
/// state `e` would have stayed on the solved fast path through the whole
/// slice (no misprediction, no Step 3/4). Sufficient conditions, checked
/// against the slice's bounded event log:
///
///  1. Every coefficient the slice solved matches `e`'s — so between
///     events, slice predictions and `e` predictions move in lockstep.
///  2. Every *event* access directly satisfies e's function:
///     e.CONST + sum(e.C[i] * iters[i]) == addr.
///  3. For every non-empty run of non-event accesses following an event,
///     e's prediction error is constant (the slice's unknown-coefficient
///     iterators provably held their post-event values through the run,
///     and all other terms agree by 1.), and it is zero at the
///     event itself by 2. — so the whole run predicted correctly.
///
/// Duplicate (epoch-equal, same-address) accesses need no checking: the
/// sequential fold only bumps the observation count for them.
bool verify_event_free(const AffineState& e, const AffineState& s,
                       const RefLog& lg) {
  const int n = e.n;
  const int64_t* ec = e.coef();
  const int64_t* sc = s.coef();
  for (int i = 0; i < n; ++i) {
    if (sc[i] != AffineState::kUnknown && sc[i] != ec[i]) return false;
  }
  for (size_t j = 0; j < lg.events.size(); ++j) {
    const RefLog::Event& ev = lg.events[j];
    int64_t pred = e.const_term;
    for (int i = 0; i < n; ++i) pred += ec[i] * ev.iters[i];
    if (pred != ev.addr) return false;
    const uint32_t next_index = j + 1 < lg.events.size()
                                    ? lg.events[j + 1].nondup_index
                                    : lg.nondup_count;
    if (next_index > ev.nondup_index + 1) {
      // e's prediction error over the following non-event run:
      //   e.CONST - s.CONST - sum_{i unknown} s-implied contribution,
      // with the slice's unknown iterators frozen at post_itp. Zero
      // means the run predicted correctly under e.
      int64_t delta = e.const_term - ev.post_const;
      for (int i = 0; i < n; ++i) {
        if (ev.unknown_mask & (1u << i)) delta += ec[i] * ev.post_itp[i];
      }
      if (delta != 0) return false;
    }
  }
  return true;
}

/// Traffic/footprint tail shared by both compose modes: these fields end
/// at the slice's final values in a sequential run regardless of affine
/// state (the one access whose duplicate classification can differ —
/// the slice's first — provably leaves them unchanged either way).
void compose_tail(RefNode* e, const RefNode* s, const RefLog& lg) {
  e->exec_count += s->exec_count;
  e->has_read = e->has_read || s->has_read;
  e->has_write = e->has_write || s->has_write;
  e->access_size = s->access_size;
  e->kind = s->kind;
  e->last_epoch = s->last_epoch;
  e->replay_footprint_inserts(lg.fp_inserts);
}

struct ComposeCounters {
  uint64_t composed = 0;
  uint64_t rescanned = 0;
};

/// Collision handler for one boundary merge: folds the slice's partial
/// state for a reference into the running state in O(1) when provably
/// exact, else marks the running reference for the fix-up skim.
void compose_collision(RefNode* e, RefNode* s, SliceLogger& logger,
                       std::vector<RefNode*>& rescan, ComposeCounters& ctr) {
  const RefLog* lg = logger.log_for(s);
  AffineState& es = e->affine;
  const AffineState& ss = s->affine;
  const bool shape_ok = lg != nullptr && !s->footprint_saturated() &&
                        es.initialized && ss.initialized && es.n == ss.n;
  if (shape_ok && !es.analyzable) {
    // Excluded reference: the sequential fold takes the excluded inline
    // path for every slice access — each one is obs += 1, INDP = IND —
    // so the composition is pure bookkeeping.
    es.observations += ss.observations;
    es.indp = ss.indp;
    compose_tail(e, s, *lg);
    ++ctr.composed;
    return;
  }
  if (shape_ok && !lg->fallback && es.analyzable && es.unknown_left == 0 &&
      ss.analyzable && verify_event_free(es, ss, *lg)) {
    // Event-free slice under e: the sequential fold would have run the
    // solved fast path throughout. C/CONST/M/S/mispredictions keep e's
    // values; obs/INDP/ITP advance to the slice's end.
    //
    // ITP corner: if the slice saw exactly one non-duplicate access and
    // the sequential fold would have classified *it* as a duplicate of
    // e's last observation (same epoch, address, shape — checked on e's
    // pre-compose values), then sequentially ITP was never rewritten.
    bool keep_itp = false;
    if (lg->nondup_count == 1) {
      const RefLog::Event& ev0 = lg->events.front();
      keep_itp = e->last_epoch == ev0.epoch && ev0.addr == es.indp &&
                 ev0.size == e->access_size && ev0.kind == e->kind;
    }
    es.observations += ss.observations;
    es.indp = ss.indp;
    if (!keep_itp) {
      const int64_t* sitp = ss.itp();
      int64_t* eitp = es.itp();
      for (int i = 0; i < es.n; ++i) eitp[i] = sitp[i];
    }
    compose_tail(e, s, *lg);
    ++ctr.composed;
    return;
  }
  // Speculation failed for this reference: leave e untouched and replay
  // its slice observations sequentially in the fix-up skim.
  e->side_slot = kRescanMark;
  rescan.push_back(e);
  ++ctr.rescanned;
}

// ---------------------------------------------------------------------------
// Fix-up skim
// ---------------------------------------------------------------------------

/// Re-walks one slice over the *merged* tree, applying full extractor
/// access semantics to just the marked references. Checkpoints only
/// navigate (every loop counter was already merged exactly); accesses to
/// unmarked references cost one lookup. This is the slow path of the
/// speculation — still far cheaper than a full re-extraction because
/// Algorithm 3 runs only for the marked few.
void rescan_slice(LoopTree& tree, std::span<const Record> slice,
                  const Boundary& b) {
  LoopNode* cur = tree.root();
  for (const SeedFrame& f : b.stack) {
    LoopNode* child = cur->find_child(f.loop_id);
    FORAY_CHECK(child != nullptr, "timeshard rescan: missing seeded context");
    child->cur_iter = f.cur_iter;
    cur = child;
  }
  uint64_t epoch = b.epoch;
  std::vector<int64_t> iters;
  bool iters_valid = false;
  for (const Record& r : slice) {
    switch (r.type()) {
      case RecordType::Checkpoint: {
        ++epoch;
        iters_valid = false;
        switch (r.cp()) {
          case CheckpointType::LoopEnter: {
            LoopNode* child = cur->find_child(r.loop_id());
            FORAY_CHECK(child != nullptr,
                        "timeshard rescan: loop missing from merged tree");
            cur = child;
            cur->cur_iter = -1;
            break;
          }
          case CheckpointType::BodyBegin: {
            while (cur->loop_id() != r.loop_id() && cur->parent() != nullptr) {
              cur = cur->parent();
            }
            FORAY_CHECK(cur->loop_id() == r.loop_id(),
                        "body_begin checkpoint for a loop that never entered");
            // cur_iter is dead state after extraction; scribbling over it
            // here (and in LoopEnter above) is what lets the skim reuse
            // the merged nodes instead of shadowing the whole stack.
            ++cur->cur_iter;
            break;
          }
          case CheckpointType::BodyEnd:
            break;
          case CheckpointType::LoopExit: {
            while (cur->loop_id() != r.loop_id() && cur->parent() != nullptr) {
              cur = cur->parent();
            }
            FORAY_CHECK(cur->parent() != nullptr,
                        "loop_exit checkpoint without matching loop_enter");
            cur = cur->parent();
            break;
          }
        }
        break;
      }
      case RecordType::Access: {
        RefNode* ref = cur->find_ref(r.instr());
        if (ref == nullptr || ref->side_slot != kRescanMark) break;
        if (r.is_write()) {
          ref->has_write = true;
        } else {
          ref->has_read = true;
        }
        ++ref->exec_count;
        const int64_t ind = static_cast<int64_t>(r.addr());
        if (ref->last_epoch == epoch && ref->affine.initialized &&
            ind == ref->affine.indp && r.size() == ref->access_size &&
            r.kind() == ref->kind) {
          ++ref->affine.observations;
          break;
        }
        ref->last_epoch = epoch;
        ref->access_size = r.size();
        ref->kind = r.kind();
        ref->note_address(r.addr());
        if (!iters_valid) {
          iters.clear();
          for (LoopNode* n = cur; n->parent() != nullptr; n = n->parent()) {
            iters.push_back(n->cur_iter);
          }
          iters_valid = true;
        }
        observe_access(ref->affine, iters, ind);
        break;
      }
      case RecordType::Call:
      case RecordType::Ret:
        break;
    }
  }
}

Extractor extract_sequential(std::span<const Record> trace,
                             const ExtractorOptions& opts,
                             TimeShardReport* report, int requested) {
  Extractor ex(opts);
  ex.on_chunk(trace.data(), trace.size());
  if (report != nullptr) {
    *report = {};
    report->slices_requested = requested;
    report->slices_used = 1;
    report->records = trace.size();
    report->refs_adopted = static_cast<uint64_t>(ex.tree().ref_node_count());
  }
  return ex;
}

}  // namespace

Extractor extract_time_sharded_at(std::span<const Record> trace,
                                  const ExtractorOptions& opts,
                                  std::span<const uint64_t> cuts,
                                  TimeShardReport* report) {
  // Normalize: strictly interior, ascending, unique. Dropping boundary
  // and out-of-range positions handles K > records gracefully.
  std::vector<uint64_t> cs(cuts.begin(), cuts.end());
  std::sort(cs.begin(), cs.end());
  cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
  std::erase_if(cs, [&](uint64_t c) { return c == 0 || c >= trace.size(); });
  const int requested = static_cast<int>(cuts.size()) + 1;
  if (cs.empty()) return extract_sequential(trace, opts, report, requested);

  const std::vector<Boundary> boundaries = scan_boundaries(trace, cs);
  const size_t n_slices = cs.size() + 1;

  std::vector<Extractor> slices;
  slices.reserve(n_slices);
  for (size_t k = 0; k < n_slices; ++k) slices.emplace_back(opts);
  // One logger per seeded slice (slice 0 starts from the true initial
  // state and needs no log). Index k logs slice k.
  std::vector<SliceLogger> loggers(n_slices);

  std::vector<std::exception_ptr> errors(n_slices);
  {
    util::ThreadPool pool(n_slices);
    for (size_t k = 0; k < n_slices; ++k) {
      const uint64_t start = k == 0 ? 0 : cs[k - 1];
      const uint64_t end = k + 1 < n_slices ? cs[k] : trace.size();
      pool.submit([k, start, end, &trace, &slices, &loggers, &boundaries,
                   &errors] {
        try {
          Extractor& ex = slices[k];
          if (k > 0) {
            const Boundary& b = boundaries[k - 1];
            ex.seed_context(b.stack, b.epoch, b.pos);
            ex.set_access_hook(&loggers[k]);
          }
          ex.on_chunk(trace.data() + start, end - start);
        } catch (...) {
          errors[k] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }

  TimeShardReport rep;
  rep.slices_requested = requested;
  rep.slices_used = static_cast<int>(n_slices);
  rep.records = trace.size();
  rep.refs_adopted = static_cast<uint64_t>(slices[0].tree().ref_node_count());

  Extractor& running = slices[0];
  for (size_t k = 1; k < n_slices; ++k) {
    const uint64_t slice_refs =
        static_cast<uint64_t>(slices[k].tree().ref_node_count());
    ComposeCounters ctr;
    std::vector<RefNode*> rescan;
    SliceLogger& logger = loggers[k];
    const RefMergeFn on_collision = [&](RefNode* into, RefNode* from) {
      compose_collision(into, from, logger, rescan, ctr);
    };
    running.absorb_composed(std::move(slices[k]), on_collision);
    rep.refs_composed += ctr.composed;
    rep.refs_rescanned += ctr.rescanned;
    rep.refs_adopted += slice_refs - ctr.composed - ctr.rescanned;
    if (!rescan.empty()) {
      ++rep.rescan_passes;
      const uint64_t start = cs[k - 1];
      const uint64_t end = k < cs.size() ? cs[k] : trace.size();
      rescan_slice(running.tree(), trace.subspan(start, end - start),
                   boundaries[k - 1]);
      for (RefNode* ref : rescan) ref->side_slot = RefNode::kNoSideSlot;
    }
  }
  if (report != nullptr) *report = rep;
  return std::move(running);
}

Extractor extract_time_sharded(std::span<const Record> trace,
                               const ExtractorOptions& opts, int slices,
                               TimeShardReport* report) {
  if (slices <= 1 || trace.size() < 2) {
    return extract_sequential(trace, opts, report, std::max(slices, 1));
  }
  const uint64_t k = std::min<uint64_t>(static_cast<uint64_t>(slices),
                                        trace.size());
  std::vector<uint64_t> cuts;
  cuts.reserve(k - 1);
  for (uint64_t i = 1; i < k; ++i) cuts.push_back(trace.size() * i / k);
  Extractor ex = extract_time_sharded_at(trace, opts, cuts, report);
  if (report != nullptr) report->slices_requested = slices;
  return ex;
}

}  // namespace foray::core
