#include "foray/extractor.h"

#include "util/status.h"

namespace foray::core {

using trace::CheckpointType;
using trace::Record;
using trace::RecordType;

Extractor::Extractor(ExtractorOptions opts)
    : opts_(opts), tree_(opts.hash_index, opts.footprint_cap) {
  cur_ = tree_.root();
}

void Extractor::on_record(const Record& r) {
  ++records_;
  switch (r.type) {
    case RecordType::Checkpoint:
      ++checkpoints_;
      on_checkpoint(r);
      break;
    case RecordType::Access:
      ++accesses_;
      on_access(r);
      break;
    case RecordType::Call:
    case RecordType::Ret:
      // Function boundaries do not affect the loop tree: the model
      // treats functions as inlined (§4).
      break;
  }
}

void Extractor::on_checkpoint(const Record& r) {
  switch (r.cp) {
    case CheckpointType::LoopEnter: {
      cur_ = cur_->get_or_create_child(r.loop_id);
      cur_->cur_iter = -1;
      ++cur_->entries;
      break;
    }
    case CheckpointType::BodyBegin: {
      // Tolerate traces that omit exit records for early-terminated
      // loops (the paper's three-checkpoint encoding): pop to the loop.
      while (cur_->loop_id() != r.loop_id && cur_->parent() != nullptr) {
        cur_ = cur_->parent();
      }
      FORAY_CHECK(cur_->loop_id() == r.loop_id,
                  "body_begin checkpoint for a loop that never entered");
      ++cur_->cur_iter;
      ++cur_->total_iterations;
      if (cur_->cur_iter + 1 > cur_->max_trip) {
        cur_->max_trip = cur_->cur_iter + 1;
      }
      break;
    }
    case CheckpointType::BodyEnd:
      // Iteration counting keys off body_begin; nothing to update.
      break;
    case CheckpointType::LoopExit: {
      while (cur_->loop_id() != r.loop_id && cur_->parent() != nullptr) {
        cur_ = cur_->parent();
      }
      FORAY_CHECK(cur_->parent() != nullptr,
                  "loop_exit checkpoint without matching loop_enter");
      cur_ = cur_->parent();
      break;
    }
  }
}

void Extractor::on_access(const Record& r) {
  bool created = false;
  RefNode* ref = cur_->get_or_create_ref(r.instr, &created);
  ref->access_size = r.size;
  ref->kind = r.kind;
  if (r.is_write) {
    ref->has_write = true;
  } else {
    ref->has_read = true;
  }
  ++ref->exec_count;
  ref->note_address(r.addr);

  // Gather current normalized iterator values, innermost first
  // (Algorithm 2 hands these to Algorithm 3).
  iter_buf_.clear();
  for (LoopNode* n = cur_; n->parent() != nullptr; n = n->parent()) {
    iter_buf_.push_back(n->cur_iter);
  }
  observe_access(ref->affine, iter_buf_, static_cast<int64_t>(r.addr));
}

}  // namespace foray::core
