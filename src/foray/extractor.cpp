#include "foray/extractor.h"

#include "minic/ast.h"
#include "util/status.h"

namespace foray::core {

using trace::CheckpointType;
using trace::Record;
using trace::RecordType;

Extractor::Extractor(ExtractorOptions opts)
    : opts_(opts), tree_(opts.hash_index, opts.footprint_cap) {
  cur_ = tree_.root();
}

void Extractor::on_checkpoint(const Record& r) {
  switch (r.cp()) {
    case CheckpointType::LoopEnter: {
      cur_ = cur_->get_or_create_child(r.loop_id(), stamp_);
      cur_->cur_iter = -1;
      ++cur_->entries;
      break;
    }
    case CheckpointType::BodyBegin: {
      // Tolerate traces that omit exit records for early-terminated
      // loops (the paper's three-checkpoint encoding): pop to the loop.
      while (cur_->loop_id() != r.loop_id() && cur_->parent() != nullptr) {
        cur_ = cur_->parent();
      }
      FORAY_CHECK(cur_->loop_id() == r.loop_id(),
                  "body_begin checkpoint for a loop that never entered");
      ++cur_->cur_iter;
      ++cur_->total_iterations;
      if (cur_->cur_iter + 1 > cur_->max_trip) {
        cur_->max_trip = cur_->cur_iter + 1;
      }
      break;
    }
    case CheckpointType::BodyEnd:
      // Iteration counting keys off body_begin; nothing to update.
      break;
    case CheckpointType::LoopExit: {
      while (cur_->loop_id() != r.loop_id() && cur_->parent() != nullptr) {
        cur_ = cur_->parent();
      }
      FORAY_CHECK(cur_->parent() != nullptr,
                  "loop_exit checkpoint without matching loop_enter");
      cur_ = cur_->parent();
      break;
    }
  }
}

void Extractor::rebuild_iters() {
  // Gather current normalized iterator values, innermost first
  // (Algorithm 2 hands these to Algorithm 3).
  iter_buf_.clear();
  for (LoopNode* n = cur_; n->parent() != nullptr; n = n->parent()) {
    iter_buf_.push_back(n->cur_iter);
  }
  iters_valid_ = true;
}

RefNode* Extractor::lookup_ref(uint32_t instr) {
  // Instruction addresses outside the synthetic text segment (traces
  // fed by hand or from other tools) skip the cache.
  const uint32_t idx = (instr - minic::kInstrBase) / 4u;
  if (idx >= (1u << 22)) {
    return cur_->get_or_create_ref(instr, nullptr, stamp_);
  }
  if (idx >= ref_cache_.size()) {
    ref_cache_.resize(std::max<size_t>(idx + 1, 256));
  }
  RefCacheEntry& entry = ref_cache_[idx];
  if (entry.owner != cur_) {
    entry.owner = cur_;
    entry.ref = cur_->get_or_create_ref(instr, nullptr, stamp_);
  }
  return entry.ref;
}

void Extractor::on_access(const Record& r) {
  RefNode* ref = lookup_ref(r.instr());
  if (r.is_write()) {
    ref->has_write = true;
  } else {
    ref->has_read = true;
  }
  ++ref->exec_count;

  const int64_t ind = static_cast<int64_t>(r.addr());

  // Duplicate fast path: this reference already executed in the current
  // epoch (so every iterator provably equals its ITP) at the same
  // address with the same shape. Algorithm 3 then sees H = 0 and — by
  // the post-observation invariant predict(ITP) == INDP — a correct
  // prediction, so its entire effect is the observation count; the
  // address is in the footprint since the previous execution put it
  // there. This is the load/store pair of every compound assignment and
  // increment.
  if (ref->last_epoch == epoch_ && ref->affine.initialized &&
      ind == ref->affine.indp && r.size() == ref->access_size &&
      r.kind() == ref->kind) {
    ++ref->affine.observations;
    return;
  }
  ref->last_epoch = epoch_;
  ref->access_size = r.size();
  ref->kind = r.kind();
  if (hook_ != nullptr) [[unlikely]] {
    // Time-shard slices: the hook performs the footprint note and the
    // Algorithm 3 observation itself, logging around them.
    if (!iters_valid_) rebuild_iters();
    hook_->nondup_observe(ref, iter_buf_, ind, r.addr(), epoch_);
    return;
  }
  ref->note_address(r.addr());

  if (!iters_valid_) rebuild_iters();
  observe_access(ref->affine, iter_buf_, ind);
}

void Extractor::absorb(Extractor&& shard) {
  tree_.merge(std::move(shard.tree_));
  records_ += shard.records_;
  accesses_ += shard.accesses_;
  checkpoints_ += shard.checkpoints_;
  // The shard's node pointers died with its tree.
  cur_ = tree_.root();
  iters_valid_ = false;
}

void Extractor::absorb_composed(Extractor&& slice,
                                const RefMergeFn& on_collision) {
  tree_.merge(std::move(slice.tree_), &on_collision);
  records_ += slice.records_;
  accesses_ += slice.accesses_;
  checkpoints_ += slice.checkpoints_;
  cur_ = tree_.root();
  iters_valid_ = false;
}

void Extractor::seed_context(std::span<const SeedFrame> frames,
                             uint64_t epoch, uint64_t stream_pos) {
  set_stream_pos(stream_pos);
  epoch_ = epoch;
  cur_ = tree_.root();
  for (const SeedFrame& f : frames) {
    // Rebuild the path without bumping `entries` — the slice that saw
    // the LoopEnter records counts them. Stamp with the slice-start
    // position: the true creator's earlier stamp wins at merge time.
    cur_ = cur_->get_or_create_child(f.loop_id, stream_pos + 1);
    cur_->cur_iter = f.cur_iter;
  }
  iters_valid_ = false;
}

}  // namespace foray::core
