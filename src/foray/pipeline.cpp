#include "foray/pipeline.h"

#include <cstdio>

#include "foray/online_pipeline.h"
#include "foray/shard.h"
#include "foray/timeshard.h"
#include "minic/parser.h"
#include "sim/interp_impl.h"
#include "spm/address_stream.h"
#include "spm/cache_sim.h"
#include "trace/sink.h"

namespace foray::core {
namespace {

/// The three profiling strategies are decided from options alone so that
/// profile_phase and extract_phase agree without extra state:
/// pipelined (overlapped, nothing materialized) beats materialized
/// (offline replay / context shards / time shards) beats fused online.
bool pipelined_profile(const PipelineOptions& opts) {
  return opts.profile_pipeline && !opts.offline &&
         opts.profile_timeshards <= 1;
}

bool materialized_profile(const PipelineOptions& opts) {
  return !pipelined_profile(opts) &&
         (opts.offline || opts.profile_shards > 1 ||
          opts.profile_timeshards > 1);
}

}  // namespace

util::Status frontend_phase(std::string_view source, PipelineResult* result) {
  util::DiagList diags;
  result->program = minic::parse_program(source, &diags);
  if (!diags.empty()) {
    // A program that fails to parse or type-check is the user's fault,
    // never ours: classify as invalid_input so the CLI/sweep map it to
    // the right exit code / error row.
    result->status = util::Status::failure(util::ErrorCode::kInvalidInput,
                                           "parse", std::move(diags));
    return result->status;
  }
  result->sema = minic::run_sema(result->program.get(), &diags);
  if (!diags.empty()) {
    result->status = util::Status::failure(util::ErrorCode::kInvalidInput,
                                           "sema", std::move(diags));
    return result->status;
  }
  return result->status;
}

util::Status instrument_phase(PipelineResult* result) {
  FORAY_CHECK(result->program != nullptr,
              "instrument_phase requires frontend_phase");
  result->loop_sites = instrument::annotate_loops(result->program.get());
  return result->status;
}

util::Status profile_phase(const PipelineOptions& opts,
                           PipelineResult* result) {
  FORAY_CHECK(result->program != nullptr,
              "profile_phase requires instrument_phase");
  result->extractor = std::make_unique<Extractor>(opts.extractor);
  if (pipelined_profile(opts)) {
    // Overlapped online mode: the simulator produces chunks into rings,
    // consumer threads extract them while the next chunk simulates.
    result->run = run_profile_pipelined(
        *result->program, opts.run, opts.extractor,
        std::max(opts.profile_shards, 1), result->extractor.get(),
        &result->shard_report);
    result->trace_records = result->extractor->records_processed();
  } else if (materialized_profile(opts)) {
    // Materialize the trace; Extract replays it (sharded when asked).
    trace::VectorSink trace_sink(opts.run.trace_reserve_hint);
    result->run =
        sim::run_program_with(*result->program, &trace_sink, opts.run);
    result->trace_records = trace_sink.size();
    result->offline_trace = trace_sink.take();
  } else {
    // Online constant-space mode: the extractor IS the sink, and the
    // concrete instantiation inlines the whole record path into the
    // interpreter — zero virtual calls per record.
    result->run = sim::run_program_with(*result->program,
                                        result->extractor.get(), opts.run);
    result->trace_records = result->extractor->records_processed();
  }
  if (!result->run.ok()) result->status = result->run.status;
  return result->status;
}

util::Status extract_phase(const PipelineOptions& opts,
                           PipelineResult* result) {
  FORAY_CHECK(result->extractor != nullptr,
              "extract_phase requires profile_phase");
  if (materialized_profile(opts)) {
    if (opts.profile_timeshards > 1) {
      *result->extractor = extract_time_sharded(
          std::span<const trace::Record>(result->offline_trace),
          opts.extractor, opts.profile_timeshards,
          &result->timeshard_report);
    } else if (opts.profile_shards > 1) {
      *result->extractor = extract_sharded(
          std::span<const trace::Record>(result->offline_trace),
          opts.extractor, opts.profile_shards, &result->shard_report);
    } else {
      result->extractor->on_chunk(result->offline_trace.data(),
                                  result->offline_trace.size());
    }
    result->offline_trace.clear();
    result->offline_trace.shrink_to_fit();
  }
  result->model = build_model(*result->extractor, opts.filter);
  result->foray_source = emit_minic(result->model, opts.emit);
  result->foray_paper_style = emit_paper_style(result->model);
  result->model_built = true;
  return result->status;
}

SpmReport solve_spm(const ForayModel& model, const SpmPhaseOptions& opts,
                    const std::vector<spm::BufferCandidate>* candidates) {
  SpmReport report;
  report.capacity = opts.dse.spm_capacity;
  report.candidates = candidates != nullptr
                          ? *candidates
                          : spm::enumerate_candidates(model, opts.reuse);
  report.exact = spm::select_buffers(report.candidates, opts.dse);
  report.greedy = spm::select_buffers_greedy(report.candidates, opts.dse);
  report.baseline = spm::evaluate_baseline(model, opts.dse.energy);
  report.with_spm = spm::evaluate_selection(model, report.exact, opts.dse);
  if (opts.compare_cache) {
    for (int assoc : opts.cache_assocs) {
      spm::CacheSim cache(spm::CacheConfig{opts.dse.spm_capacity,
                                           opts.cache_line_bytes, assoc});
      spm::for_each_address(model,
                            [&](uint32_t addr) { cache.access(addr); });
      report.caches.push_back(SpmReport::CacheComparison{
          assoc, cache.hits(), cache.misses(),
          cache.energy_nj(opts.dse.energy)});
    }
  }
  return report;
}

util::Status spm_phase(const SpmPhaseOptions& opts, PipelineResult* result) {
  FORAY_CHECK(result->model_built, "spm_phase requires extract_phase");
  result->spm = solve_spm(result->model, opts);
  result->spm_ran = true;
  return result->status;
}

util::Status spm_replay_phase(const PipelineOptions& opts,
                              PipelineResult* result) {
  FORAY_CHECK(result->spm_ran, "spm_replay_phase requires spm_phase");
  spm::ReplayOptions ropts;
  ropts.run = opts.run;
  ropts.dse = opts.spm.dse;
  ropts.dse.spm_capacity = result->spm.capacity;
  result->replay =
      spm::replay_selection(result->model, result->spm.exact, ropts);
  result->replay_ran = true;
  if (!result->replay.status.ok()) result->status = result->replay.status;
  return result->status;
}

PipelineResult run_pipeline(std::string_view source,
                            const PipelineOptions& opts) {
  PipelineResult result;
  if (!frontend_phase(source, &result).ok()) return result;
  if (!instrument_phase(&result).ok()) return result;
  if (!profile_phase(opts, &result).ok()) return result;
  if (!extract_phase(opts, &result).ok()) return result;
  if (opts.with_spm || opts.with_replay) {
    if (!spm_phase(opts.spm, &result).ok()) return result;
    if (opts.with_replay) spm_replay_phase(opts, &result);
  }
  return result;
}

std::string describe_spm_report(const SpmReport& report,
                                const ForayModel& model) {
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "SPM capacity %uB: %zu candidate buffer(s), %zu chosen\n",
                report.capacity, report.candidates.size(),
                report.exact.chosen.size());
  out += buf;

  auto names = assign_array_names(model);
  for (const auto& c : report.exact.chosen) {
    const auto& ref = model.refs[c.ref_index];
    std::snprintf(buf, sizeof buf,
                  "  %s (%s): %lluB buffer over innermost %d loop(s)%s\n",
                  names[c.ref_index].c_str(),
                  describe_reference(ref).c_str(),
                  static_cast<unsigned long long>(c.size_bytes), c.level,
                  c.sliding_window ? ", sliding window" : "");
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "  bytes used: %llu / %u\n",
                static_cast<unsigned long long>(report.exact.bytes_used),
                report.capacity);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  predicted saving: %.1f nJ (%.1f%% of the all-DRAM "
                "baseline)\n",
                report.exact.saved_nj, report.with_spm.savings_pct());
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  greedy heuristic would save %.1f nJ with %zu buffer(s)\n",
                report.greedy.saved_nj, report.greedy.chosen.size());
  out += buf;
  for (const auto& c : report.caches) {
    const uint64_t accesses = c.hits + c.misses;
    std::snprintf(buf, sizeof buf,
                  "  cache %d-way %uB: %.1f%% hit rate, %.1f nJ (%.1f%% of "
                  "the all-DRAM baseline)\n",
                  c.assoc, report.capacity,
                  accesses != 0 ? 100.0 * static_cast<double>(c.hits) /
                                      static_cast<double>(accesses)
                                : 0.0,
                  c.energy_nj,
                  report.baseline.baseline_nj > 0.0
                      ? 100.0 * c.energy_nj / report.baseline.baseline_nj
                      : 100.0);
    out += buf;
  }
  return out;
}

}  // namespace foray::core
