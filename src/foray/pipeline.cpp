#include "foray/pipeline.h"

#include "minic/parser.h"
#include "trace/sink.h"

namespace foray::core {

PipelineResult run_pipeline(std::string_view source,
                            const PipelineOptions& opts) {
  PipelineResult result;

  // Front end.
  util::DiagList diags;
  result.program = minic::parse_program(source, &diags);
  if (!diags.empty()) {
    result.error = "parse error:\n" + diags.str();
    return result;
  }
  result.sema = minic::run_sema(result.program.get(), &diags);
  if (!diags.empty()) {
    result.error = "sema error:\n" + diags.str();
    return result;
  }

  // Step 1 of Algorithm 1: annotate loop sites.
  result.loop_sites = instrument::annotate_loops(result.program.get());

  // Steps 2 + 3: profile with the analyzer attached (online), or via a
  // stored trace (offline).
  result.extractor = std::make_unique<Extractor>(opts.extractor);
  if (opts.offline) {
    trace::VectorSink trace_sink;
    result.run = sim::run_program(*result.program, &trace_sink, opts.run);
    result.trace_records = trace_sink.size();
    for (const auto& rec : trace_sink.records()) {
      result.extractor->on_record(rec);
    }
  } else {
    result.run = sim::run_program(*result.program, result.extractor.get(),
                                  opts.run);
    result.trace_records = result.extractor->records_processed();
  }
  if (!result.run.ok) {
    result.error = "simulation error: " + result.run.error;
    return result;
  }

  // Step 4 + emission.
  result.model = build_model(*result.extractor, opts.filter);
  result.foray_source = emit_minic(result.model, opts.emit);
  result.foray_paper_style = emit_paper_style(result.model);
  result.ok = true;
  return result;
}

}  // namespace foray::core
