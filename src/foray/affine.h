// Algorithm 3: incremental recovery of (partial) affine index expressions.
//
// For each memory reference the paper fits
//
//     index = CONST + C1*iter1 + C2*iter2 + ... + CN*iterN
//
// where iter1 is the *innermost* loop iterator. Coefficients start
// UNKNOWN and are solved one at a time whenever exactly one
// unknown-coefficient iterator changed between consecutive executions
// (Step 3). When the prediction INDC disagrees with the observed address
// (Step 6), CONST is re-fitted and the expression degrades to a *partial*
// affine function over the innermost M iterators; the S flags record
// which iterators were ever innocent (unchanged) at a misprediction, so M
// ends up just inside the outermost iterator that changed at every
// misprediction — exactly the paper's rule.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace foray::core {

struct AffineState {
  static constexpr int64_t kUnknown = INT64_MIN;

  /// Loop nest level N of the reference (0 = outside all loops).
  int n = 0;
  /// Number of innermost iterators in the (partial) expression, M <= N.
  /// Starts at N and only shrinks at mispredictions.
  int m = 0;
  int64_t const_term = 0;   ///< CONST
  std::vector<int64_t> coef;     ///< C1..CN, kUnknown until solved
  std::vector<int64_t> itp;      ///< ITP1..ITPN: iterators at previous exec
  std::vector<uint8_t> sticky_s; ///< S1..SN
  int64_t indp = 0;              ///< INDP: previous address
  bool initialized = false;
  /// Cleared in Step 4 when several unknown-coefficient iterators change
  /// at once; such references are excluded from further consideration.
  bool analyzable = true;
  uint64_t observations = 0;
  uint64_t mispredictions = 0;

  bool is_partial() const { return analyzable && m < n; }
  bool coef_known(int i) const { return coef[i] != kUnknown; }

  /// True if the final expression contains at least one iterator with a
  /// known non-zero coefficient within the partial range (the Step 4
  /// "includes at least one iterator" condition).
  bool has_effective_iterator() const {
    for (int i = 0; i < m; ++i) {
      if (coef_known(i) && coef[i] != 0) return true;
    }
    return false;
  }

  /// Predicted address for iterator values `iters` (innermost first),
  /// using all currently-known coefficients (Step 5).
  int64_t predict(std::span<const int64_t> iters) const;
};

/// Feeds one observed execution of a reference into Algorithm 3.
/// `iters[0]` is the innermost loop's current normalized iteration count;
/// `ind` is the accessed address. The first call initializes the state
/// (Step 1); later calls run Steps 2–7.
void observe_access(AffineState& st, std::span<const int64_t> iters,
                    int64_t ind);

/// A finalized affine function in *emission order* (outermost first),
/// produced from an AffineState at model-build time.
struct AffineFunction {
  int64_t const_term = 0;
  std::vector<int64_t> coefs;   ///< outermost..innermost; 0 if never solved
  std::vector<bool> known;      ///< per coefficient
  int m = 0;                    ///< innermost iterators in the partial expr
  bool analyzable = true;

  int n() const { return static_cast<int>(coefs.size()); }
  bool partial() const { return m < n(); }

  /// Address at the given iterator values (outermost first).
  int64_t evaluate(std::span<const int64_t> iters_outer_first) const;
};

AffineFunction finalize(const AffineState& st);

}  // namespace foray::core
