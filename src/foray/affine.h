// Algorithm 3: incremental recovery of (partial) affine index expressions.
//
// For each memory reference the paper fits
//
//     index = CONST + C1*iter1 + C2*iter2 + ... + CN*iterN
//
// where iter1 is the *innermost* loop iterator. Coefficients start
// UNKNOWN and are solved one at a time whenever exactly one
// unknown-coefficient iterator changed between consecutive executions
// (Step 3). When the prediction INDC disagrees with the observed address
// (Step 6), CONST is re-fitted and the expression degrades to a *partial*
// affine function over the innermost M iterators; the S flags record
// which iterators were ever innocent (unchanged) at a misprediction, so M
// ends up just inside the outermost iterator that changed at every
// misprediction — exactly the paper's rule.
//
// The state is observed once per traced memory access — the single
// hottest call in online analysis — so its arrays (C, ITP, S) live
// inline for the loop depths real programs have (<= kInlineNest) and
// spill to one heap block only beyond that. A reference whose
// coefficients are all solved takes a short-circuit path: with no
// UNKNOWN coefficient Step 2's H is zero by definition, so only the
// Step 5 prediction and the Step 7 bookkeeping remain.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace foray::core {

struct AffineState {
  static constexpr int64_t kUnknown = INT64_MIN;
  /// Loop depths up to this live in the inline arrays; deeper nests
  /// spill to `spill_` / `spill_sticky_` (one vector each, allocated
  /// once at initialization).
  static constexpr int kInlineNest = 4;

  // Field order is deliberate: the solved fast path touches const_term,
  // indp, observations, the discriminator block and C/ITP — keep those
  // in the first cache lines of the owning RefNode.
  int64_t const_term = 0;  ///< CONST
  int64_t indp = 0;        ///< INDP: previous address
  uint64_t observations = 0;
  /// Loop nest level N of the reference (0 = outside all loops).
  int n = 0;
  /// Number of innermost iterators in the (partial) expression, M <= N.
  /// Starts at N and only shrinks at mispredictions.
  int m = 0;
  /// Coefficients still UNKNOWN; 0 enables the solved fast path.
  int unknown_left = 0;
  bool initialized = false;
  /// Cleared in Step 4 when several unknown-coefficient iterators change
  /// at once; such references are excluded from further consideration.
  bool analyzable = true;

  // -- storage (innermost-first, index 0 = innermost iterator) -----------
  //
  // Access C/ITP/S through coef()/itp()/sticky(); the pointers are
  // recomputed per call so the default copy/move of the whole state
  // stays correct.

  int64_t* coef() { return n <= kInlineNest ? coef_in_.data() : spill_.data(); }
  const int64_t* coef() const {
    return n <= kInlineNest ? coef_in_.data() : spill_.data();
  }
  int64_t* itp() {
    return n <= kInlineNest ? itp_in_.data() : spill_.data() + n;
  }
  const int64_t* itp() const {
    return n <= kInlineNest ? itp_in_.data() : spill_.data() + n;
  }
  uint8_t* sticky() {
    return n <= kInlineNest ? sticky_in_.data() : spill_sticky_.data();
  }
  const uint8_t* sticky() const {
    return n <= kInlineNest ? sticky_in_.data() : spill_sticky_.data();
  }

  int64_t coef_at(int i) const { return coef()[i]; }
  bool coef_known(int i) const { return coef()[i] != kUnknown; }

  bool is_partial() const { return analyzable && m < n; }

  /// True if the final expression contains at least one iterator with a
  /// known non-zero coefficient within the partial range (the Step 4
  /// "includes at least one iterator" condition).
  bool has_effective_iterator() const {
    const int64_t* c = coef();
    for (int i = 0; i < m; ++i) {
      if (c[i] != kUnknown && c[i] != 0) return true;
    }
    return false;
  }

  /// Predicted address for iterator values `iters` (innermost first),
  /// using all currently-known coefficients (Step 5).
  int64_t predict(std::span<const int64_t> iters) const;

  /// Approximate heap bytes beyond sizeof(AffineState) (spilled nests).
  size_t heap_bytes() const {
    return spill_.capacity() * sizeof(int64_t) + spill_sticky_.capacity();
  }

  std::array<int64_t, kInlineNest> coef_in_;
  std::array<int64_t, kInlineNest> itp_in_;
  std::array<uint8_t, kInlineNest> sticky_in_;
  uint64_t mispredictions = 0;
  std::vector<int64_t> spill_;        ///< [C1..CN | ITP1..ITPN] when n > inline
  std::vector<uint8_t> spill_sticky_; ///< [S1..SN] when n > inline
};

/// Slow half of observe_access(): Step 1 initialization, Step 2–4
/// coefficient solving, non-analyzable bookkeeping (affine.cpp).
void observe_access_general(AffineState& st, std::span<const int64_t> iters,
                            int64_t ind);
/// Step 6 + 7 for a solved state whose prediction just missed.
void observe_access_mispredicted(AffineState& st,
                                 std::span<const int64_t> iters, int64_t ind,
                                 int64_t indc);

/// Feeds one observed execution of a reference into Algorithm 3.
/// `iters[0]` is the innermost loop's current normalized iteration count;
/// `ind` is the accessed address. The first call initializes the state
/// (Step 1); later calls run Steps 2–7.
///
/// Inline so the dominant case — every coefficient solved, prediction
/// correct — runs as a handful of mul-adds inside the extractor's chunk
/// loop. With no UNKNOWN coefficient Step 2's H is zero by definition,
/// so Steps 3/4 cannot fire and only predict + bookkeeping remain.
inline void observe_access(AffineState& st, std::span<const int64_t> iters,
                           int64_t ind) {
  if (st.initialized && st.analyzable && st.unknown_left == 0 &&
      static_cast<int>(iters.size()) == st.n) [[likely]] {
    const int n = st.n;
    ++st.observations;
    const int64_t* c = st.coef();
    int64_t indc = st.const_term;
    for (int i = 0; i < n; ++i) indc += iters[i] * c[i];
    if (indc == ind) [[likely]] {
      int64_t* itp = st.itp();
      for (int i = 0; i < n; ++i) itp[i] = iters[i];
      st.indp = ind;
      return;
    }
    observe_access_mispredicted(st, iters, ind, indc);
    return;
  }
  if (st.initialized && !st.analyzable &&
      static_cast<int>(iters.size()) == st.n) {
    // Excluded by a previous Step 4: nothing can change any more. ITP is
    // dead state for an excluded reference (only Step 2 reads it); INDP
    // feeds the extractor's duplicate detection, so keep it fresh.
    ++st.observations;
    st.indp = ind;
    return;
  }
  observe_access_general(st, iters, ind);
}

/// A finalized affine function in *emission order* (outermost first),
/// produced from an AffineState at model-build time.
struct AffineFunction {
  int64_t const_term = 0;
  std::vector<int64_t> coefs;   ///< outermost..innermost; 0 if never solved
  std::vector<bool> known;      ///< per coefficient
  int m = 0;                    ///< innermost iterators in the partial expr
  bool analyzable = true;

  int n() const { return static_cast<int>(coefs.size()); }
  bool partial() const { return m < n(); }

  /// Address at the given iterator values (outermost first).
  int64_t evaluate(std::span<const int64_t> iters_outer_first) const;
};

AffineFunction finalize(const AffineState& st);

}  // namespace foray::core
