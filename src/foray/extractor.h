// Algorithm 2 + driver: reconstructs the loop tree from the checkpoint
// stream and feeds every memory access into Algorithm 3.
//
// The extractor is a trace::Sink, so it can be attached directly to the
// simulator (online analysis: "the proposed algorithm can be executed
// during profiling and there is no need to save the trace file" — §4) or
// fed from a stored trace for the offline mode. Both paths produce
// identical trees (property-tested in E9).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "foray/looptree.h"
#include "trace/record.h"
#include "trace/sink.h"

namespace foray::core {

struct ExtractorOptions {
  /// Use hash-table indices for loop-child and reference lookup (the
  /// paper's constant-average-complexity claim); false = linear scans
  /// (the E8 ablation baseline).
  bool hash_index = true;
  /// Per-reference distinct-address cap; beyond it the footprint count is
  /// reported as saturated (lower bound).
  size_t footprint_cap = LoopNode::kDefaultFootprintCap;
};

class Extractor final : public trace::Sink {
 public:
  explicit Extractor(ExtractorOptions opts = {});

  // trace::Sink
  void on_record(const trace::Record& r) override;

  const LoopTree& tree() const { return tree_; }
  LoopTree& tree() { return tree_; }

  // -- stream statistics ------------------------------------------------

  uint64_t records_processed() const { return records_; }
  uint64_t accesses_processed() const { return accesses_; }
  uint64_t checkpoints_processed() const { return checkpoints_; }

  /// Analyzer working-set size in bytes (constant w.r.t. trace length).
  size_t state_bytes() const { return tree_.state_bytes(); }

 private:
  void on_checkpoint(const trace::Record& r);
  void on_access(const trace::Record& r);

  ExtractorOptions opts_;
  LoopTree tree_;
  LoopNode* cur_;
  std::vector<int64_t> iter_buf_;  ///< reused innermost-first iterator vector
  uint64_t records_ = 0;
  uint64_t accesses_ = 0;
  uint64_t checkpoints_ = 0;
};

}  // namespace foray::core
