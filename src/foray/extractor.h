// Algorithm 2 + driver: reconstructs the loop tree from the checkpoint
// stream and feeds every memory access into Algorithm 3.
//
// The extractor is a trace::Sink, so it can be attached directly to the
// simulator (online analysis: "the proposed algorithm can be executed
// during profiling and there is no need to save the trace file" — §4) or
// fed from a stored trace for the offline mode. Both paths produce
// identical trees (property-tested in E9).
//
// Delivery is chunk-first: on_chunk() consumes a run of records with a
// single dispatch, and the class is `final` so a caller holding a
// concrete Extractor (the templated simulator, the shard runner) gets
// the whole per-record path inlined — zero virtual calls per record.
// Record-at-a-time on_record() remains for generic Sink users.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "foray/looptree.h"
#include "trace/record.h"
#include "trace/sink.h"

namespace foray::core {

struct ExtractorOptions {
  /// Use hash-table indices for loop-child and reference lookup (the
  /// paper's constant-average-complexity claim); false = linear scans
  /// (the E8 ablation baseline).
  bool hash_index = true;
  /// Per-reference distinct-address cap; beyond it the footprint count is
  /// reported as saturated (lower bound).
  size_t footprint_cap = LoopNode::kDefaultFootprintCap;
};

/// One frame of a loop-context stack used to start an extractor
/// mid-stream (time-partition sharding): the loop site and the iteration
/// the slice boundary fell into.
struct SeedFrame {
  int loop_id = -1;
  int64_t cur_iter = -1;
};

/// Observer of the extractor's non-duplicate access path. When attached
/// (time-shard slices only), it runs *instead of* the footprint note +
/// Algorithm 3 observation and must perform both itself — that is what
/// lets it log footprint insertions and pre/post affine state without a
/// second pass. The hot sequential path pays one predictable branch.
class AccessHook {
 public:
  virtual ~AccessHook() = default;
  virtual void nondup_observe(RefNode* ref, std::span<const int64_t> iters,
                              int64_t ind, uint32_t addr, uint64_t epoch) = 0;
};

class Extractor final : public trace::Sink {
 public:
  explicit Extractor(ExtractorOptions opts = {});

  // trace::Sink
  void on_record(const trace::Record& r) override {
    ++records_;
    process(r);
  }
  void on_chunk(const trace::Record* r, size_t n) override {
    records_ += n;
    for (size_t i = 0; i < n; ++i) process(r[i]);
  }

  const LoopTree& tree() const { return tree_; }
  LoopTree& tree() { return tree_; }

  // -- sharding support -------------------------------------------------

  /// Declares the global trace position of the next record, so node
  /// creation stamps (LoopNode/RefNode::first_seen) are positions in the
  /// *whole* trace even when this extractor only sees a shard of it. A
  /// fresh extractor starts at position 0 — the sequential case needs no
  /// call.
  void set_stream_pos(uint64_t pos) { stamp_ = pos; }

  /// Folds a shard's extraction into this one: trees merge in sequential
  /// first-seen order, stream statistics accumulate. The shard must have
  /// processed a disjoint part of the same trace (see foray/shard.h).
  void absorb(Extractor&& shard);

  // -- time-partition sharding support (foray/timeshard.h) --------------

  /// absorb() for a *time slice* of the same trace: references observed
  /// on both sides are reconciled through `on_collision` instead of
  /// being a sharder bug.
  void absorb_composed(Extractor&& slice, const RefMergeFn& on_collision);

  /// Starts this extractor mid-stream: rebuilds the loop-context stack
  /// (root -> innermost, without counting loop entries), and seeds the
  /// global checkpoint count and stream position, so iterator values,
  /// duplicate-detection epochs and creation stamps all read as they
  /// would in a sequential run arriving at `stream_pos`.
  void seed_context(std::span<const SeedFrame> frames, uint64_t epoch,
                    uint64_t stream_pos);

  /// Attaches (or detaches, nullptr) the non-duplicate access observer.
  void set_access_hook(AccessHook* hook) { hook_ = hook; }

  /// Global checkpoint count — the duplicate-detection epoch.
  uint64_t epoch() const { return epoch_; }

  // -- stream statistics ------------------------------------------------

  uint64_t records_processed() const { return records_; }
  uint64_t accesses_processed() const { return accesses_; }
  uint64_t checkpoints_processed() const { return checkpoints_; }

  /// Analyzer working-set size in bytes (constant w.r.t. trace length).
  size_t state_bytes() const { return tree_.state_bytes(); }

 private:
  /// One record through Algorithm 2 (records_ already counted).
  void process(const trace::Record& r) {
    ++stamp_;
    switch (r.type()) {
      case trace::RecordType::Checkpoint:
        ++checkpoints_;
        ++epoch_;
        iters_valid_ = false;
        on_checkpoint(r);
        break;
      case trace::RecordType::Access:
        ++accesses_;
        on_access(r);
        break;
      case trace::RecordType::Call:
      case trace::RecordType::Ret:
        // Function boundaries do not affect the loop tree: the model
        // treats functions as inlined (§4).
        break;
    }
  }

  void on_checkpoint(const trace::Record& r);
  void on_access(const trace::Record& r);
  void rebuild_iters();
  RefNode* lookup_ref(uint32_t instr);

  ExtractorOptions opts_;
  LoopTree tree_;
  LoopNode* cur_;
  /// Iterator values of the current loop path, innermost first. Between
  /// two checkpoints neither cur_ nor any cur_iter can change, so the
  /// buffer is rebuilt at most once per checkpoint-delimited run of
  /// accesses instead of once per access.
  std::vector<int64_t> iter_buf_;
  bool iters_valid_ = false;
  /// Checkpoint counter; two accesses in the same epoch provably see
  /// identical iterator values (used for the duplicate fast path).
  uint64_t epoch_ = 0;
  /// Global trace position of the next record (creation stamps).
  uint64_t stamp_ = 0;
  /// Direct-indexed reference cache. Synthetic instruction addresses are
  /// dense (kInstrBase + 4*node_id), so `(instr - base) / 4` indexes a
  /// flat table; an entry is valid only for the context it was filled
  /// under (owner == cur_), which makes shadowing across call contexts
  /// self-invalidating. Adjacent source expressions get adjacent
  /// entries, so a loop body's whole working set shares cache lines.
  struct RefCacheEntry {
    LoopNode* owner = nullptr;
    RefNode* ref = nullptr;
  };
  std::vector<RefCacheEntry> ref_cache_;
  AccessHook* hook_ = nullptr;
  uint64_t records_ = 0;
  uint64_t accesses_ = 0;
  uint64_t checkpoints_ = 0;
};

}  // namespace foray::core
