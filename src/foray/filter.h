// Step 4 of Algorithm 1: purge uninteresting memory references.
//
// The paper keeps only references that (a) have an affine index
// expression including at least one iterator, (b) executed at least
// Nexec times and (c) touch at least Nloc distinct locations, with
// Nexec = 20 and Nloc = 10 in the paper's experiments. The thresholds
// drop tiny arrays (better handled by whole-object placement techniques
// [8][9][10]) and references without reuse — including all the implicit
// stack/spill traffic the simulator records.
#pragma once

#include <cstdint>
#include <string>

#include "foray/looptree.h"

namespace foray::core {

struct FilterOptions {
  uint64_t min_exec = 20;       ///< Nexec
  uint64_t min_locations = 10;  ///< Nloc
  /// Require at least one iterator with a known non-zero coefficient in
  /// the (partial) expression — the paper's regularity condition.
  bool require_iterator = true;
  /// Keep partial affine references (M < N). The paper keeps them: they
  /// are what lets SPM analysis still optimize the inner loops.
  bool keep_partial = true;
  /// Drop System-kind references (the paper does not model system
  /// libraries in the FORAY model).
  bool exclude_system = true;
};

enum class FilterReason : uint8_t {
  Kept,
  NonAnalyzable,    ///< excluded by Algorithm 3 Step 4 (H > 1)
  NoIterator,       ///< no effective iterator in the expression
  PartialExcluded,  ///< partial and keep_partial is false
  TooFewExecs,      ///< exec_count < Nexec
  TooFewLocations,  ///< footprint < Nloc
  SystemReference,  ///< traffic from intrinsics / system libraries
};

const char* filter_reason_name(FilterReason r);

FilterReason classify_reference(const RefNode& ref, const FilterOptions& o);

inline bool passes_filter(const RefNode& ref, const FilterOptions& o) {
  return classify_reference(ref, o) == FilterReason::Kept;
}

}  // namespace foray::core
