#include "foray/online_pipeline.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "sim/interp_impl.h"
#include "trace/chunk_ring.h"
#include "util/flat_hash.h"
#include "util/status.h"

namespace foray::core {

namespace {

using trace::CheckpointType;
using trace::ChunkRing;
using trace::Record;
using trace::RecordType;

// Ring geometry: a handful of slots big enough to amortize the lock to
// ~nothing (one mutex round-trip per 32K records) while keeping the
// in-flight working set cache-friendly (4 x 384 KiB per consumer).
constexpr size_t kRingSlots = 4;
constexpr size_t kSlotRecords = 1u << 15;

/// Producer-side cursor into one consumer's ring: fills slots record by
/// record, starts a new Run whenever the stream position jumps (i.e. the
/// router switched contexts in between).
class RingWriter {
 public:
  explicit RingWriter(ChunkRing* ring) : ring_(ring) {}

  void append(const Record& r, uint64_t pos) {
    if (slot_ == nullptr || slot_->used == slot_->records.size()) {
      roll();
      if (slot_ == nullptr) return;  // consumer aborted: discard
    }
    if (slot_->runs.empty() || pos != next_pos_) {
      slot_->runs.push_back(
          ChunkRing::Run{pos, static_cast<uint32_t>(slot_->used), 0});
    }
    slot_->records[slot_->used++] = r;
    ++slot_->runs.back().len;
    next_pos_ = pos + 1;
    ++routed_;
  }

  /// Publishes a partial slot (end of stream).
  void flush() {
    if (slot_ != nullptr && slot_->used > 0) {
      ring_->producer_publish();
      slot_ = nullptr;
    }
  }

  uint64_t routed() const { return routed_; }

 private:
  void roll() {
    if (slot_ != nullptr) ring_->producer_publish();
    slot_ = ring_->producer_acquire();
  }

  ChunkRing* ring_;
  ChunkRing::Slot* slot_ = nullptr;
  uint64_t next_pos_ = ~0ull;
  uint64_t routed_ = 0;
};

/// The producer's sink: routes each record to a consumer ring. With one
/// consumer every record goes to writer 0 with no inspection; with
/// several, top-level loop contexts are assigned sticky shards on first
/// sight (least loaded at that moment) and root-level gaps pin to 0 —
/// the same exactness argument as foray/shard.h.
class RouterSink final {
 public:
  explicit RouterSink(const std::vector<std::unique_ptr<ChunkRing>>& rings) {
    writers_.reserve(rings.size());
    for (const auto& ring : rings) writers_.emplace_back(ring.get());
  }

  void on_record(const Record& r) { route(r); }
  void on_chunk(const Record* r, size_t n) {
    if (writers_.size() == 1) {
      for (size_t i = 0; i < n; ++i) writers_[0].append(r[i], pos_++);
      return;
    }
    for (size_t i = 0; i < n; ++i) route(r[i]);
  }

  void finish() {
    for (auto& w : writers_) w.flush();
  }

  uint64_t records() const { return pos_; }
  const std::vector<RingWriter>& writers() const { return writers_; }

 private:
  void route(const Record& r) {
    if (writers_.size() == 1) {
      writers_[0].append(r, pos_++);
      return;
    }
    bool close_after = false;
    if (r.type() == RecordType::Checkpoint) {
      if (r.cp() == CheckpointType::LoopEnter) {
        if (depth_ == 0) cur_ = shard_for(r.loop_id());
        ++depth_;
      } else if (r.cp() == CheckpointType::LoopExit) {
        if (depth_ > 0) --depth_;
        if (depth_ == 0) close_after = true;  // exit record ends the segment
      }
    }
    writers_[cur_].append(r, pos_++);
    if (close_after) cur_ = 0;  // back to the root gap, pinned to 0
  }

  size_t shard_for(int site_id) {
    uint32_t* found = site_shard_.find(static_cast<uint32_t>(site_id));
    if (found != nullptr) return *found;
    size_t target = 0;
    for (size_t s = 1; s < writers_.size(); ++s) {
      if (writers_[s].routed() < writers_[target].routed()) target = s;
    }
    site_shard_.insert(static_cast<uint32_t>(site_id),
                       static_cast<uint32_t>(target));
    return target;
  }

  std::vector<RingWriter> writers_;
  util::FlatMap32<uint32_t> site_shard_;
  uint64_t pos_ = 0;
  int depth_ = 0;
  size_t cur_ = 0;
};

void consume(ChunkRing* ring, Extractor* ex, std::exception_ptr* err) {
  try {
    while (ChunkRing::Slot* s = ring->consumer_pop()) {
      for (const ChunkRing::Run& run : s->runs) {
        ex->set_stream_pos(run.start_pos);
        ex->on_chunk(s->records.data() + run.offset, run.len);
      }
      ring->consumer_release(s);
    }
  } catch (...) {
    *err = std::current_exception();
    ring->consumer_abort();
  }
}

}  // namespace

sim::RunResult run_profile_pipelined(const minic::Program& prog,
                                     const sim::RunOptions& run_opts,
                                     const ExtractorOptions& ex_opts,
                                     int shards, Extractor* out,
                                     ShardReport* report) {
  const size_t n = static_cast<size_t>(std::max(shards, 1));
  // Rings hold a mutex, so they live behind stable pointers.
  std::vector<std::unique_ptr<ChunkRing>> rings;
  rings.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    rings.push_back(std::make_unique<ChunkRing>(kRingSlots, kSlotRecords));
  }

  std::vector<Extractor> consumers;
  consumers.reserve(n);
  for (size_t s = 0; s < n; ++s) consumers.emplace_back(ex_opts);

  RouterSink router(rings);
  std::vector<std::exception_ptr> errors(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    threads.emplace_back(consume, rings[s].get(), &consumers[s], &errors[s]);
  }

  sim::RunResult run;
  std::exception_ptr producer_err;
  try {
    run = sim::run_program_with(prog, &router, run_opts);
    router.finish();
  } catch (...) {
    producer_err = std::current_exception();
  }
  for (auto& ring : rings) ring->close();
  for (auto& t : threads) t.join();

  // Consumer failures (a malformed trace tripping a FORAY_CHECK) outrank
  // producer ones — the producer may only have failed because an aborted
  // ring made it drop records.
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  if (producer_err) std::rethrow_exception(producer_err);

  ShardReport rep;
  rep.shards_requested = static_cast<int>(n);
  rep.records = router.records();
  uint64_t max_load = 0;
  for (const auto& w : router.writers()) {
    if (w.routed() > 0) ++rep.shards_used;
    max_load = std::max(max_load, w.routed());
  }
  if (rep.shards_used > 0 && rep.records > 0) {
    rep.balance = static_cast<double>(max_load) * rep.shards_used /
                  static_cast<double>(rep.records);
  }
  if (report != nullptr) *report = rep;

  // Merge in shard order; first_seen stamps restore sequential order.
  for (size_t s = 0; s < n; ++s) out->absorb(std::move(consumers[s]));
  return run;
}

}  // namespace foray::core
