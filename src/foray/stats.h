// Statistics over an extraction — the quantities behind the paper's
// Tables I, II and III.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "foray/filter.h"
#include "foray/looptree.h"
#include "foray/model.h"
#include "instrument/annotator.h"

namespace foray::core {

/// Table I: benchmark complexity and loop-form distribution. Loop counts
/// are *executed* loop sites ("excluding the loops that were not executed
/// during profiling").
struct LoopMix {
  int lines = 0;
  int total = 0;
  int for_loops = 0;
  int while_loops = 0;
  int do_loops = 0;

  double pct_for() const { return total ? 100.0 * for_loops / total : 0; }
  double pct_while() const { return total ? 100.0 * while_loops / total : 0; }
  double pct_do() const { return total ? 100.0 * do_loops / total : 0; }
};

LoopMix compute_loop_mix(const LoopTree& tree,
                         const instrument::LoopSiteTable& sites,
                         int source_lines);

/// One bucket of Table III.
struct BehaviorBucket {
  uint64_t refs = 0;
  uint64_t accesses = 0;
  uint64_t footprint = 0;  ///< distinct addresses (buckets may overlap)
};

/// Table III: how the FORAY model covers the program's memory behavior.
/// Buckets follow the paper: references captured by the model, system
/// library references, everything else. Footprints are computed per
/// bucket independently, so they may overlap (as in the paper, where
/// jpeg's three footprint shares add to >100%).
struct BehaviorStats {
  BehaviorBucket total;
  BehaviorBucket model;
  BehaviorBucket system;
  BehaviorBucket other;
};

BehaviorStats compute_behavior(const LoopTree& tree,
                               const FilterOptions& filter);

/// Loop-site ids that were entered at least once during profiling.
std::vector<int> executed_loop_sites(const LoopTree& tree);

}  // namespace foray::core
