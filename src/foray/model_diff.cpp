#include "foray/model_diff.h"

#include <map>
#include <sstream>

namespace foray::core {

namespace {
using Key = std::pair<uint32_t, std::vector<int>>;

Key key_of(const ModelReference& r) { return {r.instr, r.loop_path}; }
}  // namespace

ModelDiff diff_models(const ForayModel& a, const ForayModel& b) {
  ModelDiff out;
  std::map<Key, const ModelReference*> bmap;
  for (const auto& r : b.refs) bmap[key_of(r)] = &r;

  std::map<Key, bool> seen_in_a;
  for (const auto& ra : a.refs) {
    RefMatch m;
    m.instr = ra.instr;
    m.loop_path = ra.loop_path;
    seen_in_a[key_of(ra)] = true;
    auto it = bmap.find(key_of(ra));
    if (it == bmap.end()) {
      m.status = RefMatchStatus::OnlyInA;
      ++out.only_a;
    } else {
      const ModelReference& rb = *it->second;
      const bool coefs_same = ra.emitted_coefs() == rb.emitted_coefs() &&
                              ra.fn.m == rb.fn.m;
      const bool trips_same = ra.emitted_trips() == rb.emitted_trips();
      if (coefs_same && trips_same) {
        m.status = RefMatchStatus::Stable;
        ++out.stable;
      } else if (coefs_same) {
        m.status = RefMatchStatus::TripDrift;
        ++out.trip_drift;
      } else {
        m.status = RefMatchStatus::CoefMismatch;
        ++out.coef_mismatch;
      }
    }
    out.matches.push_back(std::move(m));
  }
  for (const auto& rb : b.refs) {
    if (!seen_in_a.count(key_of(rb))) {
      RefMatch m;
      m.instr = rb.instr;
      m.loop_path = rb.loop_path;
      m.status = RefMatchStatus::OnlyInB;
      ++out.only_b;
      out.matches.push_back(std::move(m));
    }
  }
  return out;
}

std::string ModelDiff::summary() const {
  std::ostringstream os;
  os << stable << " stable, " << trip_drift << " trip-drift, "
     << coef_mismatch << " coef-mismatch, " << only_a << "/" << only_b
     << " one-sided; structural stability "
     << static_cast<int>(100.0 * structural_stability() + 0.5) << "%";
  return os.str();
}

}  // namespace foray::core
