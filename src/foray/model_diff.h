// FORAY-model comparison across profiling runs.
//
// The paper's stated future work is studying how input data affects the
// extracted model. This module makes that measurable: two models are
// matched reference-by-reference (instruction x dynamic context) and
// classified. The useful result for the methodology is that *affine
// structure* (coefficients, partial depth) is input-independent for the
// code the model targets, while trip counts and the reference population
// may drift with data-dependent control flow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "foray/model.h"

namespace foray::core {

enum class RefMatchStatus : uint8_t {
  Stable,        ///< same coefficients, partial depth, and trips
  TripDrift,     ///< same affine structure, different trip counts
  CoefMismatch,  ///< different coefficients or partial depth
  OnlyInA,
  OnlyInB,
};

struct RefMatch {
  uint32_t instr = 0;
  std::vector<int> loop_path;
  RefMatchStatus status = RefMatchStatus::Stable;
};

struct ModelDiff {
  int stable = 0;
  int trip_drift = 0;
  int coef_mismatch = 0;
  int only_a = 0;
  int only_b = 0;
  std::vector<RefMatch> matches;

  int total() const {
    return stable + trip_drift + coef_mismatch + only_a + only_b;
  }
  /// Share of the union with input-independent affine structure.
  double structural_stability() const {
    return total() > 0
               ? static_cast<double>(stable + trip_drift) / total()
               : 1.0;
  }
  /// Share with identical everything (incl. trips).
  double exact_stability() const {
    return total() > 0 ? static_cast<double>(stable) / total() : 1.0;
  }

  std::string summary() const;
};

ModelDiff diff_models(const ForayModel& a, const ForayModel& b);

}  // namespace foray::core
