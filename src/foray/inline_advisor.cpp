#include "foray/inline_advisor.h"

#include <map>
#include <set>

#include "foray/emitter.h"

namespace foray::core {

std::vector<InlineHint> compute_inline_hints(
    const ForayModel& model, const instrument::LoopSiteTable& sites) {
  // A reference's innermost loop tells us which function it (dynamically)
  // executed in. Group references by (function, instr): the same
  // instruction in several distinct loop paths means the function was
  // reached from several contexts.
  struct PerInstr {
    std::set<std::vector<int>> contexts;
    std::vector<const ModelReference*> refs;
  };
  std::map<std::pair<int, uint32_t>, PerInstr> by_func_instr;

  for (const auto& ref : model.refs) {
    if (ref.loop_path.empty()) continue;
    const int inner_site = ref.loop_path.back();
    const auto& site = sites.site(inner_site);
    auto& slot = by_func_instr[{site.func_id, ref.instr}];
    slot.contexts.insert(ref.loop_path);
    slot.refs.push_back(&ref);
  }

  std::map<int, InlineHint> hints;
  for (const auto& [key, per] : by_func_instr) {
    if (per.contexts.size() < 2) continue;
    const int func_id = key.first;
    InlineHint& hint = hints[func_id];
    hint.func_id = func_id;
    hint.contexts =
        std::max(hint.contexts, static_cast<int>(per.contexts.size()));
    // Patterns differ when any two contexts disagree on coefficients or
    // constants of the same instruction.
    bool differ = false;
    for (size_t i = 1; i < per.refs.size(); ++i) {
      if (per.refs[i]->fn.coefs != per.refs[0]->fn.coefs ||
          per.refs[i]->fn.const_term != per.refs[0]->fn.const_term) {
        differ = true;
        break;
      }
    }
    if (differ && !hint.patterns_differ) {
      hint.patterns_differ = true;
      for (const ModelReference* r : per.refs) {
        hint.details.push_back(describe_reference(*r));
      }
    }
  }

  std::vector<InlineHint> out;
  for (auto& [func_id, hint] : hints) {
    // Resolve the function name from any loop site of this function.
    for (const auto& s : sites.sites) {
      if (s.func_id == func_id) {
        hint.func_name = s.func_name;
        break;
      }
    }
    out.push_back(std::move(hint));
  }
  return out;
}

}  // namespace foray::core
