#include "foray/model.h"

#include <set>

#include "util/status.h"

namespace foray::core {

namespace {

void collect(const LoopNode& node, std::vector<int>* path,
             std::vector<int64_t>* trips, const FilterOptions& filter,
             ForayModel* model) {
  for (const auto& ref : node.refs()) {
    ++model->build_stats.total_refs;
    switch (classify_reference(*ref, filter)) {
      case FilterReason::Kept: {
        ++model->build_stats.kept;
        ModelReference mr;
        mr.instr = ref->instr;
        mr.loop_path = *path;
        mr.trips = *trips;
        mr.fn = finalize(ref->affine);
        mr.exec_count = ref->exec_count;
        mr.footprint = ref->footprint_size();
        mr.footprint_saturated = ref->footprint_saturated();
        mr.access_size = ref->access_size;
        mr.has_read = ref->has_read;
        mr.has_write = ref->has_write;
        FORAY_CHECK(mr.fn.n() == mr.n(),
                    "affine function arity must match loop path");
        model->refs.push_back(std::move(mr));
        break;
      }
      case FilterReason::NonAnalyzable:
        ++model->build_stats.dropped_non_analyzable;
        break;
      case FilterReason::NoIterator:
        ++model->build_stats.dropped_no_iterator;
        break;
      case FilterReason::PartialExcluded:
        ++model->build_stats.dropped_partial;
        break;
      case FilterReason::TooFewExecs:
        ++model->build_stats.dropped_exec;
        break;
      case FilterReason::TooFewLocations:
        ++model->build_stats.dropped_locations;
        break;
      case FilterReason::SystemReference:
        ++model->build_stats.dropped_system;
        break;
    }
  }
  for (const auto& child : node.children()) {
    path->push_back(child->loop_id());
    trips->push_back(child->max_trip);
    collect(*child, path, trips, filter, model);
    path->pop_back();
    trips->pop_back();
  }
}

}  // namespace

int ForayModel::distinct_loops() const {
  std::set<int> sites;
  for (const auto& r : refs) {
    for (int id : r.emitted_loop_path()) sites.insert(id);
  }
  return static_cast<int>(sites.size());
}

int ForayModel::loop_contexts() const {
  std::set<std::vector<int>> contexts;
  for (const auto& r : refs) {
    std::vector<int> prefix;
    for (int id : r.emitted_loop_path()) {
      prefix.push_back(id);
      contexts.insert(prefix);
    }
  }
  return static_cast<int>(contexts.size());
}

uint64_t ForayModel::total_accesses() const {
  uint64_t n = 0;
  for (const auto& r : refs) n += r.exec_count;
  return n;
}

ForayModel build_model(const Extractor& extractor,
                       const FilterOptions& filter) {
  ForayModel model;
  std::vector<int> path;
  std::vector<int64_t> trips;
  collect(*extractor.tree().root(), &path, &trips, filter, &model);
  return model;
}

}  // namespace foray::core
