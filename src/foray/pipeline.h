// One-call FORAY-GEN pipeline (Phase I of the paper's design flow):
// parse -> sema -> annotate -> profile on the simulator -> extract ->
// filter -> model + emitted sources + statistics.
//
// The default is the paper's online mode: the extractor is the trace sink
// and no trace is materialized. Offline mode stores the full trace first
// and replays it (used by the E9 ablation); both produce identical
// models.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "foray/emitter.h"
#include "foray/extractor.h"
#include "foray/filter.h"
#include "foray/model.h"
#include "foray/stats.h"
#include "instrument/annotator.h"
#include "minic/ast.h"
#include "minic/sema.h"
#include "sim/interpreter.h"

namespace foray::core {

struct PipelineOptions {
  sim::RunOptions run;
  ExtractorOptions extractor;
  FilterOptions filter;
  EmitOptions emit;
  /// false (default): online analysis during profiling, constant space.
  /// true: materialize the trace in memory, then analyze.
  bool offline = false;
};

struct PipelineResult {
  bool ok = false;
  std::string error;  ///< front-end diagnostics or simulator fault

  std::unique_ptr<minic::Program> program;
  minic::SemaInfo sema;
  instrument::LoopSiteTable loop_sites;
  sim::RunResult run;
  std::unique_ptr<Extractor> extractor;  ///< retains the loop tree
  ForayModel model;
  std::string foray_source;       ///< compilable MiniC FORAY model
  std::string foray_paper_style;  ///< Figure 2-style display form

  /// Trace volume seen by the analyzer (records).
  uint64_t trace_records = 0;
};

PipelineResult run_pipeline(std::string_view source,
                            const PipelineOptions& opts = {});

}  // namespace foray::core
