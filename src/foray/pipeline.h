// The FORAY-GEN pipeline as explicit, individually-invokable phases.
//
// Phase I of the paper's design flow (Algorithm 1):
//   Frontend    parse + sema
//   Instrument  annotate loop sites (Step 1)
//   Profile     run the simulator with trace sinks attached (Steps 2+3)
//   Extract     build the model, apply the Step 4 filter, emit sources
// Phase II (the SPM design flow the model exists to feed):
//   SpmPhase    reuse analysis -> buffer candidates -> group-knapsack /
//               greedy selection -> energy evaluation, as an SpmReport.
//
// Each phase is a free function that advances a PipelineResult and records
// its util::Status both in the return value and in `result.status`; a
// failed phase leaves later artifacts untouched. run_pipeline() composes
// them; callers that need finer control (the batch driver re-running only
// the SpmPhase across capacities, the CLI's annotate/trace commands)
// invoke phases directly.
//
// The default is the paper's online mode: the extractor is the trace sink
// and no trace is materialized. Offline mode stores the full trace first
// and replays it during Extract (used by the E9 ablation); both produce
// identical models.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "foray/emitter.h"
#include "foray/extractor.h"
#include "foray/filter.h"
#include "foray/model.h"
#include "foray/shard.h"
#include "foray/stats.h"
#include "foray/timeshard.h"
#include "instrument/annotator.h"
#include "minic/ast.h"
#include "minic/sema.h"
#include "sim/interpreter.h"
#include "spm/dse.h"
#include "spm/replay.h"
#include "spm/reuse.h"
#include "spm/spm_sim.h"
#include "util/status.h"

namespace foray::core {

struct SpmPhaseOptions {
  spm::ReuseOptions reuse;
  spm::DseOptions dse;  ///< capacity, DP granule, energy model
  /// Also replay the model's address stream through set-associative LRU
  /// caches of the same capacity (the Banakar-style comparison the SPM
  /// argument rests on) and record them in SpmReport::caches.
  bool compare_cache = false;
  uint32_t cache_line_bytes = 32;
  std::vector<int> cache_assocs = {2, 4};
};

struct PipelineOptions {
  /// Simulator knobs, including RunOptions::engine: profiling runs on
  /// the bytecode VM by default, with the tree-walking interpreter
  /// selectable as the reference oracle (CLI --engine, FORAY_ENGINE).
  /// Both engines produce bit-identical traces, so every downstream
  /// phase — extraction, filter, SPM DSE — is engine-agnostic.
  sim::RunOptions run;
  ExtractorOptions extractor;
  FilterOptions filter;
  EmitOptions emit;
  /// false (default): online analysis during profiling, constant space.
  /// true: materialize the trace in memory, then analyze.
  bool offline = false;
  /// Shard the extraction of one program's trace across this many
  /// concurrent extractors (foray/shard.h); results are bit-identical to
  /// sequential extraction. Values > 1 imply materializing the trace
  /// (as in offline mode), trading the constant-space property for
  /// parallelism on giant inputs. 1 = sequential.
  int profile_shards = 1;
  /// Overlap profiling and extraction: run the simulator as a producer
  /// thread streaming record chunks through lock-light rings to
  /// consumer extractor thread(s) (foray/online_pipeline.h). Keeps the
  /// online constant-space property — no trace is materialized — and
  /// produces a bit-identical model. Composes with profile_shards: the
  /// producer routes top-level contexts, one consumer per shard.
  /// Ignored in offline mode and under profile_timeshards.
  bool profile_pipeline = false;
  /// Cut the (materialized) trace into this many *time* slices,
  /// extract them concurrently and reconcile exactly
  /// (foray/timeshard.h) — parallelism even when one context dominates.
  /// Values > 1 imply materializing the trace and take precedence over
  /// profile_shards/profile_pipeline. 1 = sequential.
  int profile_timeshards = 1;
  /// Run the SpmPhase after Extract (Phase II of the design flow).
  bool with_spm = false;
  SpmPhaseOptions spm;
  /// After the SpmPhase, execute the transformed program and lock its
  /// simulated SPM/main/transfer traffic against the analytic counters
  /// (spm/replay.h). Implies with_spm under run_pipeline(). A failure to
  /// *execute* the transformed program fails the pipeline; counter
  /// mismatches are recorded in PipelineResult::replay for the caller
  /// (the CLI exits nonzero, the batch report carries a replay column).
  bool with_replay = false;
};

/// Phase II output: everything the DSE decided for one SPM capacity.
struct SpmReport {
  uint32_t capacity = 0;  ///< SPM bytes the selection was solved for
  std::vector<spm::BufferCandidate> candidates;
  spm::Selection exact;        ///< group-knapsack DP selection
  spm::Selection greedy;       ///< density heuristic (ablation baseline)
  spm::EnergyReport baseline;  ///< every access served by main memory
  spm::EnergyReport with_spm;  ///< under the exact selection

  /// One cache of the same capacity per requested associativity
  /// (SpmPhaseOptions::compare_cache); empty when the comparison was
  /// not requested.
  struct CacheComparison {
    int assoc = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    double energy_nj = 0.0;
  };
  std::vector<CacheComparison> caches;
};

struct PipelineResult {
  util::Status status;  ///< front-end diagnostics or simulator fault

  // Frontend.
  std::unique_ptr<minic::Program> program;
  minic::SemaInfo sema;
  // Instrument.
  instrument::LoopSiteTable loop_sites;
  // Profile.
  sim::RunResult run;
  std::unique_ptr<Extractor> extractor;  ///< retains the loop tree
  /// Offline mode only: holds the materialized trace between the Profile
  /// and Extract phases; released after the Extract replay so a finished
  /// result does not pin millions of records.
  std::vector<trace::Record> offline_trace;
  /// Trace volume seen by the analyzer (records).
  uint64_t trace_records = 0;
  /// Filled when profile_shards > 1 or profile_pipeline: how the trace
  /// was spread across extractors.
  ShardReport shard_report;
  /// Filled when profile_timeshards > 1: how the time slices reconciled.
  TimeShardReport timeshard_report;
  // Extract.
  bool model_built = false;  ///< extract_phase completed
  ForayModel model;
  std::string foray_source;       ///< compilable MiniC FORAY model
  std::string foray_paper_style;  ///< Figure 2-style display form
  // SpmPhase.
  bool spm_ran = false;
  SpmReport spm;
  // TransformReplayPhase.
  bool replay_ran = false;
  spm::ReplayReport replay;

  bool ok() const { return status.ok(); }
  std::string error() const { return status.message(); }
};

// -- the phases --------------------------------------------------------------

/// Parse + sema. Populates program/sema.
util::Status frontend_phase(std::string_view source, PipelineResult* result);

/// Step 1 of Algorithm 1: annotate loop sites. Requires frontend_phase.
util::Status instrument_phase(PipelineResult* result);

/// Steps 2+3: profile on the simulator with the analyzer attached
/// (online), or into a stored trace (offline). Requires instrument_phase.
util::Status profile_phase(const PipelineOptions& opts,
                           PipelineResult* result);

/// Step 4 + emission: build + filter the model, emit both renderings.
/// In offline mode this is where the stored trace is replayed. Requires
/// profile_phase.
util::Status extract_phase(const PipelineOptions& opts,
                           PipelineResult* result);

/// Phase II: reuse analysis, buffer selection (exact + greedy) and energy
/// evaluation over the extracted model. Requires extract_phase. May be
/// re-run with different options (e.g. a capacity sweep); each run
/// replaces result->spm wholesale.
util::Status spm_phase(const SpmPhaseOptions& opts, PipelineResult* result);

/// The pure form of the SpmPhase: solves one Phase II configuration over
/// an immutable model and returns the report, touching no shared state —
/// safe to call concurrently on the same model (the sweep driver fans
/// grid points across a pool this way). `candidates` optionally supplies
/// a pre-enumerated candidate list (they depend only on the model and
/// opts.reuse, never on capacity/energy/cache, so sweep callers enumerate
/// once and reuse); nullptr enumerates from scratch.
SpmReport solve_spm(const ForayModel& model, const SpmPhaseOptions& opts,
                    const std::vector<spm::BufferCandidate>* candidates =
                        nullptr);

/// Phase II exit check: emit the transformed program for the SpmPhase's
/// exact selection, execute it on the simulator (same engine as the
/// profiling run) and lock the classified traffic against the analytic
/// counters. Requires spm_phase. Fails the pipeline status only when the
/// transformed program itself fails to build or run — counter mismatches
/// land in result->replay.mismatches (see spm/replay.h).
util::Status spm_replay_phase(const PipelineOptions& opts,
                              PipelineResult* result);

/// All of Phase I (and Phase II when opts.with_spm, plus the replay
/// check when opts.with_replay).
PipelineResult run_pipeline(std::string_view source,
                            const PipelineOptions& opts = {});

/// Deterministic human-readable rendering of an SpmReport (chosen buffers
/// with array names, bytes used, predicted nJ saved, greedy comparison).
/// Shared by the CLI `spm` command, the batch driver and the benches.
std::string describe_spm_report(const SpmReport& report,
                                const ForayModel& model);

}  // namespace foray::core
