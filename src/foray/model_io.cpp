#include "foray/model_io.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

namespace foray::core {

// Layout (all integers little-endian):
//   magic   "FMDL"
//   u32     format version (kModelFormatVersion)
//   u32     reference count
//   8 x u32 ModelBuildStats (total, kept, then the six dropped_* counts)
//   per reference:
//     u32   instr
//     u32   n       (loop nest depth; sizes loop_path/trips/coefs/known)
//     u32   m       (innermost iterators in the partial expression, <= n)
//     u8    flags   (bit0 analyzable, bit1 footprint_saturated,
//                    bit2 has_read, bit3 has_write)
//     u8    access_size
//     u64   const_term (two's complement)
//     u64   exec_count
//     u64   footprint
//     n x u32  loop_path (site ids, two's complement)
//     n x u64  trips     (two's complement)
//     n x u64  coefs     (two's complement)
//     n x u8   known

namespace {

constexpr char kMagic[4] = {'F', 'M', 'D', 'L'};

/// Fixed bytes of one reference record (n == 0). A count claiming more
/// records than remaining/kMinRefBytes is lying.
constexpr uint64_t kMinRefBytes = 4 + 4 + 4 + 1 + 1 + 8 + 8 + 8;

/// Loop nests deeper than this never come out of the extractor; a header
/// claiming one is hostile, not merely truncated.
constexpr uint32_t kMaxNestDepth = 4096;

/// Reserve cap when the stream is not seekable and the count cannot be
/// validated against the remaining bytes (mirrors trace/io.cpp).
constexpr uint32_t kUncheckedReserveCap = 1u << 16;

void put_u32(std::ostream& os, uint32_t v) {
  char b[4] = {static_cast<char>(v & 0xff),
               static_cast<char>((v >> 8) & 0xff),
               static_cast<char>((v >> 16) & 0xff),
               static_cast<char>((v >> 24) & 0xff)};
  os.write(b, 4);
}

void put_u64(std::ostream& os, uint64_t v) {
  put_u32(os, static_cast<uint32_t>(v & 0xffffffffu));
  put_u32(os, static_cast<uint32_t>(v >> 32));
}

void put_i64(std::ostream& os, int64_t v) {
  put_u64(os, static_cast<uint64_t>(v));
}

bool get_u32(std::istream& is, uint32_t* v) {
  unsigned char b[4];
  if (!is.read(reinterpret_cast<char*>(b), 4)) return false;
  *v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
       (static_cast<uint32_t>(b[2]) << 16) |
       (static_cast<uint32_t>(b[3]) << 24);
  return true;
}

bool get_u64(std::istream& is, uint64_t* v) {
  uint32_t lo = 0, hi = 0;
  if (!get_u32(is, &lo) || !get_u32(is, &hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool get_i64(std::istream& is, int64_t* v) {
  uint64_t u = 0;
  if (!get_u64(is, &u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

util::Status bad_input(const std::string& msg) {
  return util::Status::failure(util::ErrorCode::kInvalidInput, "model-io", 0,
                               msg);
}

util::Status io_error(const std::string& msg) {
  return util::Status::failure(util::ErrorCode::kIoError, "model-io", 0,
                               msg);
}

}  // namespace

void write_model(std::ostream& os, const ForayModel& model) {
  os.write(kMagic, 4);
  put_u32(os, kModelFormatVersion);
  put_u32(os, static_cast<uint32_t>(model.refs.size()));
  const ModelBuildStats& s = model.build_stats;
  const int stats[8] = {s.total_refs,      s.kept,
                        s.dropped_non_analyzable, s.dropped_no_iterator,
                        s.dropped_partial, s.dropped_exec,
                        s.dropped_locations, s.dropped_system};
  for (const int v : stats) put_u32(os, static_cast<uint32_t>(v));
  for (const ModelReference& ref : model.refs) {
    const uint32_t n = static_cast<uint32_t>(ref.loop_path.size());
    put_u32(os, ref.instr);
    put_u32(os, n);
    put_u32(os, static_cast<uint32_t>(ref.fn.m));
    const uint8_t flags =
        static_cast<uint8_t>((ref.fn.analyzable ? 1u : 0u) |
                             (ref.footprint_saturated ? 2u : 0u) |
                             (ref.has_read ? 4u : 0u) |
                             (ref.has_write ? 8u : 0u));
    os.put(static_cast<char>(flags));
    os.put(static_cast<char>(ref.access_size));
    put_i64(os, ref.fn.const_term);
    put_u64(os, ref.exec_count);
    put_u64(os, ref.footprint);
    for (const int site : ref.loop_path) {
      put_u32(os, static_cast<uint32_t>(site));
    }
    for (const int64_t t : ref.trips) put_i64(os, t);
    for (const int64_t c : ref.fn.coefs) put_i64(os, c);
    for (const bool k : ref.fn.known) os.put(k ? 1 : 0);
  }
}

std::string model_to_bytes(const ForayModel& model) {
  std::ostringstream os;
  write_model(os, model);
  return os.str();
}

util::Status read_model(std::istream& is, ForayModel* out) {
  *out = ForayModel();
  char magic[4];
  if (!is.read(magic, 4) ||
      std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    return bad_input("bad model magic");
  }
  uint32_t version = 0;
  if (!get_u32(is, &version)) return io_error("truncated model header");
  if (version != kModelFormatVersion) {
    // A stale (or future) format is recomputable input, not an I/O fault:
    // the cache layer drops the entry and rebuilds the model.
    return bad_input("unsupported model format version " +
                     std::to_string(version) + " (this build reads " +
                     std::to_string(kModelFormatVersion) + ")");
  }
  uint32_t count = 0;
  if (!get_u32(is, &count)) return io_error("truncated model header");

  // Validate the claimed count against the bytes actually present before
  // sizing any allocation from it (oversized-header hardening, mirroring
  // trace::read_binary).
  uint32_t reserve_count = std::min(count, kUncheckedReserveCap);
  const std::istream::pos_type body = is.tellg();
  if (body != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end = is.tellg();
    is.seekg(body);
    if (end != std::istream::pos_type(-1) && is) {
      const uint64_t remaining = static_cast<uint64_t>(end - body);
      if (8u * sizeof(uint32_t) > remaining ||
          static_cast<uint64_t>(count) * kMinRefBytes >
              remaining - 8u * sizeof(uint32_t)) {
        return bad_input("model header claims " + std::to_string(count) +
                         " references but only " + std::to_string(remaining) +
                         " bytes follow");
      }
      reserve_count = count;
    }
  }
  is.clear();  // tellg(-1) on non-seekable streams sets failbit

  ModelBuildStats stats;
  int* const stat_fields[8] = {
      &stats.total_refs,      &stats.kept,
      &stats.dropped_non_analyzable, &stats.dropped_no_iterator,
      &stats.dropped_partial, &stats.dropped_exec,
      &stats.dropped_locations, &stats.dropped_system};
  for (int* field : stat_fields) {
    uint32_t v = 0;
    if (!get_u32(is, &v)) return io_error("truncated model build stats");
    *field = static_cast<int>(v);
  }

  ForayModel model;
  model.build_stats = stats;
  model.refs.reserve(reserve_count);
  for (uint32_t i = 0; i < count; ++i) {
    const std::string at = " (reference " + std::to_string(i) + " of " +
                           std::to_string(count) + ")";
    ModelReference ref;
    uint32_t n = 0, m = 0;
    if (!get_u32(is, &ref.instr) || !get_u32(is, &n) || !get_u32(is, &m)) {
      return io_error("truncated reference header" + at);
    }
    if (n > kMaxNestDepth) {
      return bad_input("implausible loop nest depth " + std::to_string(n) +
                       at);
    }
    if (m > n) {
      // emitted_loop_path()/emitted_coefs() index loop_path by m; a lying
      // m would read out of bounds downstream, so it dies here.
      return bad_input("partial-expression size " + std::to_string(m) +
                       " exceeds nest depth " + std::to_string(n) + at);
    }
    const int flags = is.get();
    const int access_size = is.get();
    if (flags < 0 || access_size < 0 ||
        !get_i64(is, &ref.fn.const_term) || !get_u64(is, &ref.exec_count) ||
        !get_u64(is, &ref.footprint)) {
      return io_error("truncated reference record" + at);
    }
    if ((flags & ~0x0f) != 0) {
      return bad_input("unknown reference flags " + std::to_string(flags) +
                       at);
    }
    ref.fn.analyzable = (flags & 1) != 0;
    ref.footprint_saturated = (flags & 2) != 0;
    ref.has_read = (flags & 4) != 0;
    ref.has_write = (flags & 8) != 0;
    ref.access_size = static_cast<uint8_t>(access_size);
    ref.fn.m = static_cast<int>(m);
    ref.loop_path.resize(n);
    ref.trips.resize(n);
    ref.fn.coefs.resize(n);
    ref.fn.known.resize(n);
    for (uint32_t j = 0; j < n; ++j) {
      uint32_t site = 0;
      if (!get_u32(is, &site)) {
        return io_error("truncated loop path" + at);
      }
      ref.loop_path[j] = static_cast<int>(site);
    }
    for (uint32_t j = 0; j < n; ++j) {
      if (!get_i64(is, &ref.trips[j])) {
        return io_error("truncated trip counts" + at);
      }
    }
    for (uint32_t j = 0; j < n; ++j) {
      if (!get_i64(is, &ref.fn.coefs[j])) {
        return io_error("truncated coefficients" + at);
      }
    }
    for (uint32_t j = 0; j < n; ++j) {
      const int k = is.get();
      if (k < 0) return io_error("truncated known flags" + at);
      if (k > 1) {
        return bad_input("known flag out of range" + at);
      }
      ref.fn.known[j] = k != 0;
    }
    model.refs.push_back(std::move(ref));
  }
  // Trailing bytes mean the producer and this reader disagree about the
  // layout — reject rather than silently ignore half the file.
  if (is.peek() != std::istream::traits_type::eof()) {
    return bad_input("trailing bytes after the last reference");
  }
  *out = std::move(model);
  return util::Status();
}

util::Status model_from_bytes(std::string_view bytes, ForayModel* out) {
  std::istringstream is{std::string(bytes)};
  return read_model(is, out);
}

}  // namespace foray::core
