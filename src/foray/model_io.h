// Versioned binary serialization of the extracted FORAY model.
//
// Phase I (profile + extract) is expensive and deterministic; its output
// — the ForayModel: per-context affine references plus build statistics —
// is small. This format lets a model be written once and re-loaded by
// later processes (the content-addressed model cache in driver/model_cache
// and the `foraygen serve` loop), turning warm sweeps into pure Phase II
// work.
//
// Hardened the same way as the golden-trace reader (trace/io.cpp): magic
// and version checks, count-vs-bytes plausibility *before* any allocation
// is sized from a header field, and truncation detection — every failure
// comes back as a classified util::Status (kInvalidInput for malformed
// bytes, kIoError for bytes that end too early), never a crash or a
// silently wrong model. The writer is deterministic: serializing a loaded
// model reproduces the input bytes exactly, which is what lets cache
// entries be verified by round-trip.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "foray/model.h"
#include "util/status.h"

namespace foray::core {

/// Bump on any layout change; readers reject other versions as
/// kInvalidInput (a stale cache entry is recomputed, never guessed at).
inline constexpr uint32_t kModelFormatVersion = 1;

/// Writes `model` in the FMDL binary format. Deterministic: equal models
/// produce equal bytes, and write(read(bytes)) == bytes.
void write_model(std::ostream& os, const ForayModel& model);
std::string model_to_bytes(const ForayModel& model);

/// Reads one FMDL model. On failure `*out` is reset to an empty model and
/// the status classifies the problem (phase "model-io").
util::Status read_model(std::istream& is, ForayModel* out);
util::Status model_from_bytes(std::string_view bytes, ForayModel* out);

}  // namespace foray::core
