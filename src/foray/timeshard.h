// Speculative time-partition sharding of one context's record stream.
//
// Context sharding (foray/shard.h) cannot spread a single dominant
// top-level loop. This module attacks that headroom by cutting the
// trace into K *time* slices and extracting them concurrently — which is
// speculative, because Algorithm 3 is a strictly sequential fold per
// reference: a slice that starts mid-stream begins every reference it
// touches with unknown-entry affine state. A cheap sequential fix-up
// pass then reconciles the slices in order:
//
//   - A reference first seen inside one slice is adopted wholesale
//     (its slice fold IS the sequential fold: seeded loop-context
//     stacks give slices true global iterator values and epochs).
//   - A reference observed on both sides of a boundary is composed O(1)
//     when the running state provably makes the slice *event-free*: the
//     running fold is fully solved, and the slice's bounded event log
//     (first sight, coefficient solves, mispredictions) shows that every
//     logged access satisfies the running affine function while the
//     intervals between events kept the then-unknown iterators constant
//     — so a sequential fold arriving at the boundary would have taken
//     the solved fast path through the entire slice, changing only
//     observation counts, INDP/ITP and the footprint. Excluded
//     (non-analyzable) running references compose the same way.
//   - Anything else falls back to a rescan: a sequential skim of the
//     slice's records that re-applies full extractor semantics to just
//     the marked references (checkpoint navigation plus a lookup per
//     access — memory-bandwidth work, not Algorithm 3 work).
//
// The result is bit-identical to sequential extraction — the same
// fingerprint contract tests/shard_equivalence_test.cpp locks for
// context sharding.
#pragma once

#include <cstdint>
#include <span>

#include "foray/extractor.h"
#include "trace/record.h"

namespace foray::core {

struct TimeShardReport {
  int slices_requested = 0;
  int slices_used = 0;
  uint64_t records = 0;
  uint64_t refs_adopted = 0;    ///< first seen inside one slice
  uint64_t refs_composed = 0;   ///< boundary collisions resolved O(1)
  uint64_t refs_rescanned = 0;  ///< collisions resolved by the fix-up skim
  uint64_t rescan_passes = 0;   ///< slices that needed a skim
};

/// Extracts `trace` as `slices` equal time slices run concurrently, then
/// reconciles them in order. Bit-identical to sequential extraction.
/// slices <= 1 (or a trace too small to cut) runs plain extraction.
Extractor extract_time_sharded(std::span<const trace::Record> trace,
                               const ExtractorOptions& opts, int slices,
                               TimeShardReport* report = nullptr);

/// Test seam: cut at explicit trace positions (any order/duplicates;
/// out-of-range and boundary positions are dropped), so equivalence
/// tests can force pathological boundaries — mid-loop-nest, mid-epoch,
/// more cuts than records.
Extractor extract_time_sharded_at(std::span<const trace::Record> trace,
                                  const ExtractorOptions& opts,
                                  std::span<const uint64_t> cuts,
                                  TimeShardReport* report = nullptr);

}  // namespace foray::core
