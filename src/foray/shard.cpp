#include "foray/shard.h"

#include <algorithm>
#include <exception>

#include "util/status.h"
#include "util/thread_pool.h"

namespace foray::core {

using trace::CheckpointType;
using trace::Record;
using trace::RecordType;

TraceIndex index_trace(std::span<const Record> trace) {
  TraceIndex idx;
  idx.records = trace.size();
  int depth = 0;
  uint64_t seg_start = 0;
  int seg_site = -1;  // -1 while inside a gap
  for (uint64_t i = 0; i < trace.size(); ++i) {
    const Record& r = trace[i];
    if (r.type() != RecordType::Checkpoint) continue;
    if (r.cp() == CheckpointType::LoopEnter) {
      if (depth == 0) {
        if (i > seg_start) {
          idx.segments.push_back({seg_start, i, -1});
        }
        seg_start = i;
        seg_site = r.loop_id();
      }
      ++depth;
    } else if (r.cp() == CheckpointType::LoopExit) {
      if (depth > 0) --depth;
      if (depth == 0 && seg_site >= 0) {
        idx.segments.push_back({seg_start, i + 1, seg_site});
        seg_start = i + 1;
        seg_site = -1;
      }
    }
  }
  if (seg_start < trace.size()) {
    // Tail: either root-level records after the last top-level loop, or
    // a truncated activation (simulator fault mid-loop) — both are a
    // single final segment so coverage stays exact.
    idx.segments.push_back({seg_start, trace.size(), seg_site});
  }
  return idx;
}

namespace {

/// All segments of one top-level site (or the root gaps, site -1).
struct ContextGroup {
  int site_id = -1;
  uint64_t records = 0;
  uint64_t first_seen = 0;  ///< begin of the group's first segment
  std::vector<const TraceSegment*> segments;  ///< in trace order
};

}  // namespace

Extractor extract_sharded(std::span<const Record> trace,
                          const ExtractorOptions& opts, int shards,
                          ShardReport* report) {
  ShardReport rep;
  rep.shards_requested = shards;
  rep.records = trace.size();
  if (shards <= 1) {
    rep.shards_used = 1;
    Extractor ex(opts);
    ex.on_chunk(trace.data(), trace.size());
    if (report != nullptr) *report = rep;
    return ex;
  }

  const TraceIndex idx = index_trace(trace);

  // Group segments by top-level site, in first-seen order.
  std::vector<ContextGroup> groups;
  for (const TraceSegment& seg : idx.segments) {
    ContextGroup* g = nullptr;
    for (auto& cand : groups) {
      if (cand.site_id == seg.site_id) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back(ContextGroup{seg.site_id, 0, seg.begin, {}});
      g = &groups.back();
    }
    g->records += seg.end - seg.begin;
    g->segments.push_back(&seg);
  }

  // Greedy balance: biggest group to the least-loaded shard. The root
  // gaps (site -1) are pinned to shard 0 — their references' Algorithm 3
  // folds must stay whole just like any context's.
  std::stable_sort(groups.begin(), groups.end(),
                   [](const ContextGroup& a, const ContextGroup& b) {
                     if (a.records != b.records) return a.records > b.records;
                     return a.first_seen < b.first_seen;
                   });
  const size_t n_shards = static_cast<size_t>(shards);
  std::vector<uint64_t> load(n_shards, 0);
  std::vector<std::vector<const ContextGroup*>> plan(n_shards);
  for (const auto& g : groups) {
    size_t target = 0;
    if (g.site_id == -1) {
      target = 0;
    } else {
      for (size_t s = 1; s < n_shards; ++s) {
        if (load[s] < load[target]) target = s;
      }
    }
    load[target] += g.records;
    plan[target].push_back(&g);
  }

  // Run the shards. Each extractor walks its segments in trace order and
  // stamps creations with global trace positions, so the merge can
  // restore sequential creation order exactly.
  std::vector<Extractor> shard_ex;
  shard_ex.reserve(n_shards);
  for (size_t s = 0; s < n_shards; ++s) shard_ex.emplace_back(opts);
  std::vector<std::exception_ptr> errors(n_shards);
  {
    util::ThreadPool pool(n_shards);
    for (size_t s = 0; s < n_shards; ++s) {
      pool.submit([s, &plan, &shard_ex, &trace, &errors] {
        try {
          // Segments of different groups interleave in time; process
          // them in trace order (irrelevant for exactness — groups are
          // independent — but it keeps the memory walk forward).
          std::vector<const TraceSegment*> segs;
          for (const ContextGroup* g : plan[s]) {
            segs.insert(segs.end(), g->segments.begin(), g->segments.end());
          }
          std::sort(segs.begin(), segs.end(),
                    [](const TraceSegment* a, const TraceSegment* b) {
                      return a->begin < b->begin;
                    });
          for (const TraceSegment* seg : segs) {
            shard_ex[s].set_stream_pos(seg->begin);
            shard_ex[s].on_chunk(trace.data() + seg->begin,
                                 seg->end - seg->begin);
          }
        } catch (...) {
          errors[s] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }

  uint64_t max_load = 0;
  for (size_t s = 0; s < n_shards; ++s) {
    if (load[s] > 0) ++rep.shards_used;
    max_load = std::max(max_load, load[s]);
  }
  if (rep.shards_used > 0 && rep.records > 0) {
    rep.balance = static_cast<double>(max_load) * rep.shards_used /
                  static_cast<double>(rep.records);
  }
  if (report != nullptr) *report = rep;

  Extractor merged(opts);
  for (size_t s = 0; s < n_shards; ++s) {
    merged.absorb(std::move(shard_ex[s]));
  }
  return merged;
}

}  // namespace foray::core
