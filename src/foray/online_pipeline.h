// Pipeline-overlapped online profiling: VM producer + Extractor consumers.
//
// The fused online mode (sim::run_program_with<Extractor>) interleaves
// simulation and analysis on one thread, so its throughput is
// 1/(t_sim + t_extract). This module splits the two across threads: the
// calling thread runs the simulator, streaming records through bounded
// ChunkRings (trace/chunk_ring.h), while consumer threads run Extractors
// — throughput becomes 1/max(t_sim, t_extract), the slower side hiding
// the faster side entirely.
//
// Composition with context sharding: with shards > 1 the producer routes
// records by top-level loop context exactly like foray/shard.h — a
// context's records all go to one consumer, root-level gaps to consumer
// 0 — so each consumer sees whole Algorithm 3 folds and the merged
// result is bit-identical to sequential extraction (the same argument as
// extract_sharded, locked by tests/pipeline_equivalence_test.cpp).
// Unlike extract_sharded, routing happens online: nothing is
// materialized, and context assignment is least-loaded-at-first-sight
// instead of a full-knowledge plan (the report's balance reflects that).
#pragma once

#include "foray/extractor.h"
#include "foray/shard.h"
#include "minic/ast.h"
#include "sim/interpreter.h"

namespace foray::core {

/// Runs `prog` on the calling thread with `shards` Extractor consumer
/// threads fed through chunk rings; the merged extraction lands in `*out`
/// (which must be freshly constructed with `ex_opts`). The returned
/// RunResult is the simulator's. `report` (optional) records how records
/// were spread over consumers. shards <= 1 uses a single consumer.
sim::RunResult run_profile_pipelined(const minic::Program& prog,
                                     const sim::RunOptions& run_opts,
                                     const ExtractorOptions& ex_opts,
                                     int shards, Extractor* out,
                                     ShardReport* report = nullptr);

}  // namespace foray::core
