#include "foray/stats.h"

#include <set>
#include <unordered_set>

namespace foray::core {

std::vector<int> executed_loop_sites(const LoopTree& tree) {
  std::set<int> sites;
  for_each_node(*tree.root(), [&](const LoopNode& n) {
    if (n.loop_id() >= 0 && n.entries > 0) sites.insert(n.loop_id());
  });
  return std::vector<int>(sites.begin(), sites.end());
}

LoopMix compute_loop_mix(const LoopTree& tree,
                         const instrument::LoopSiteTable& sites,
                         int source_lines) {
  LoopMix mix;
  mix.lines = source_lines;
  for (int id : executed_loop_sites(tree)) {
    ++mix.total;
    switch (sites.site(id).kind) {
      case instrument::LoopKind::For: ++mix.for_loops; break;
      case instrument::LoopKind::While: ++mix.while_loops; break;
      case instrument::LoopKind::Do: ++mix.do_loops; break;
    }
  }
  return mix;
}

BehaviorStats compute_behavior(const LoopTree& tree,
                               const FilterOptions& filter) {
  BehaviorStats out;
  std::unordered_set<uint32_t> fp_total, fp_model, fp_system, fp_other;
  for_each_node(*tree.root(), [&](const LoopNode& node) {
    for (const auto& ref : node.refs()) {
      out.total.refs += 1;
      out.total.accesses += ref->exec_count;
      ref->footprint().for_each([&](uint32_t a) { fp_total.insert(a); });

      BehaviorBucket* bucket = nullptr;
      std::unordered_set<uint32_t>* fp = nullptr;
      if (ref->kind == trace::AccessKind::System) {
        bucket = &out.system;
        fp = &fp_system;
      } else if (passes_filter(*ref, filter)) {
        bucket = &out.model;
        fp = &fp_model;
      } else {
        bucket = &out.other;
        fp = &fp_other;
      }
      bucket->refs += 1;
      bucket->accesses += ref->exec_count;
      ref->footprint().for_each([&](uint32_t a) { fp->insert(a); });
    }
  });
  out.total.footprint = fp_total.size();
  out.model.footprint = fp_model.size();
  out.system.footprint = fp_system.size();
  out.other.footprint = fp_other.size();
  return out;
}

}  // namespace foray::core
