// FORAY model emission: renders the model IR as C source.
//
// Two renderings:
//  - emit_minic(): a *valid MiniC program*. Every reference's address
//    function is rebased to a zero-origin array of exactly the spanned
//    size, so the program parses, checks and runs on the bundled
//    simulator. Re-extracting a FORAY model from this program recovers
//    the same loop trips and coefficients (round-trip property test).
//  - emit_paper_style(): the display form of the paper's Figure 2/4(d),
//    with absolute base addresses (not compilable; documentation only).
#pragma once

#include <string>
#include <vector>

#include "foray/model.h"

namespace foray::core {

struct EmitOptions {
  /// Merge references sharing a loop nest into one emitted nest
  /// (compact); false emits one nest per reference like Figure 2.
  bool group_by_nest = true;
  /// Per-reference provenance comments (instr, context, expression).
  bool metadata_comments = true;
};

/// Stable, collision-free array names for every model reference
/// ("A<instr-hex>", with "_c2", "_c3" suffixes for the same instruction
/// in additional dynamic contexts).
std::vector<std::string> assign_array_names(const ForayModel& model);

std::string emit_minic(const ForayModel& model, const EmitOptions& = {});

std::string emit_paper_style(const ForayModel& model);

/// Human-readable form of one reference's affine function, e.g.
/// "0x7fff5934 + 1*i15 + 103*i12 (full)" — used in reports and hints.
std::string describe_reference(const ModelReference& ref);

}  // namespace foray::core
