#include "foray/affine.h"

#include "util/status.h"

namespace foray::core {

int64_t AffineState::predict(std::span<const int64_t> iters) const {
  const int64_t* c = coef();
  int64_t indc = const_term;
  for (int i = 0; i < n; ++i) {
    if (c[i] != kUnknown) indc += iters[i] * c[i];
  }
  return indc;
}

/// Step 6: re-fit CONST, record the innocent iterators, shrink M; then
/// Step 7. Shared by the inline fast path and the general path.
void observe_access_mispredicted(AffineState& st,
                                 std::span<const int64_t> iters, int64_t ind,
                                 int64_t indc) {
  ++st.mispredictions;
  const int64_t* itp = st.itp();
  uint8_t* s = st.sticky();
  for (int i = 0; i < st.n; ++i) {
    if (iters[i] == itp[i]) s[i] = 1;
  }
  st.const_term += ind - indc;
  // M = (outermost iterator that changed at every misprediction) - 1.
  st.m = 0;
  for (int i = 0; i < st.n; ++i) {
    if (s[i] == 0) st.m = i;  // i is 0-based: M = i_1based - 1
  }
  int64_t* it = st.itp();
  for (int i = 0; i < st.n; ++i) it[i] = iters[i];
  st.indp = ind;
}

void observe_access_general(AffineState& st, std::span<const int64_t> iters,
                            int64_t ind) {
  const int n = static_cast<int>(iters.size());

  // Step 1: first sight of this reference — record the base address and
  // mark every coefficient unknown.
  if (!st.initialized) {
    st.initialized = true;
    st.n = n;
    st.m = n;
    st.unknown_left = n;
    st.const_term = ind;
    if (n > AffineState::kInlineNest) {
      st.spill_.assign(static_cast<size_t>(n) * 2, 0);
      st.spill_sticky_.assign(static_cast<size_t>(n), 0);
    }
    int64_t* c = st.coef();
    int64_t* itp = st.itp();
    uint8_t* s = st.sticky();
    for (int i = 0; i < n; ++i) {
      c[i] = AffineState::kUnknown;
      itp[i] = iters[i];
      s[i] = 0;
    }
    st.indp = ind;
    st.observations = 1;
    return;
  }
  FORAY_CHECK(n == st.n, "reference observed at two different nest depths");
  ++st.observations;

  if (!st.analyzable) {
    // Excluded in a previous Step 4 (the inline path catches this too).
    st.indp = ind;
    return;
  }

  int64_t* c = st.coef();
  int64_t* itp = st.itp();

  // Step 2: H = iterators with UNKNOWN coefficient that changed value.
  // The same pass accumulates the known-coefficient part of Step 5's
  // prediction, so the solving-phase path touches C/ITP once.
  int h = 0;
  int k = -1;
  int64_t indc = st.const_term;
  for (int i = 0; i < n; ++i) {
    if (c[i] == AffineState::kUnknown) {
      if (iters[i] != itp[i]) {
        ++h;
        k = i;
      }
    } else {
      indc += c[i] * iters[i];
    }
  }

  if (h == 1) {
    // Step 3: solve the single newly-determined coefficient.
    //   IND - INDP = Ck*(ITk - ITPk) + sum_known Ci*(ITi - ITPi)
    int64_t adj = 0;
    for (int i = 0; i < n; ++i) {
      if (i != k && c[i] != AffineState::kUnknown && iters[i] != itp[i]) {
        adj += c[i] * (iters[i] - itp[i]);
      }
    }
    const int64_t dit = iters[k] - itp[k];
    const int64_t num = ind - adj - st.indp;
    if (num % dit == 0) {
      c[k] = num / dit;
      --st.unknown_left;
      indc += c[k] * iters[k];  // the prediction gains the new term
    }
    // A non-integral solution means this iterator does not linearly
    // drive the address; leave it UNKNOWN and let Step 6 absorb the
    // discrepancy into CONST.
  } else if (h > 1) {
    // Step 4: several unknowns changed at once — under-determined;
    // the paper marks such references non-analyzable.
    st.analyzable = false;
    for (int i = 0; i < n; ++i) itp[i] = iters[i];
    st.indp = ind;
    return;
  }

  // Step 5: the prediction with everything known so far (accumulated
  // alongside Steps 2/3 above).

  // Step 6 on misprediction (re-fit CONST, shrink the partial range),
  // then Step 7: remember this execution.
  if (indc != ind) {
    observe_access_mispredicted(st, iters, ind, indc);
    return;
  }
  for (int i = 0; i < n; ++i) itp[i] = iters[i];
  st.indp = ind;
}

int64_t AffineFunction::evaluate(
    std::span<const int64_t> iters_outer_first) const {
  FORAY_CHECK(iters_outer_first.size() == coefs.size(),
              "iterator count mismatch in AffineFunction::evaluate");
  int64_t v = const_term;
  for (size_t i = 0; i < coefs.size(); ++i) {
    v += coefs[i] * iters_outer_first[i];
  }
  return v;
}

AffineFunction finalize(const AffineState& st) {
  AffineFunction fn;
  fn.analyzable = st.analyzable;
  fn.const_term = st.const_term;
  fn.m = st.m;
  fn.coefs.resize(static_cast<size_t>(st.n));
  fn.known.resize(static_cast<size_t>(st.n));
  // State is innermost-first; emission order is outermost-first.
  for (int i = 0; i < st.n; ++i) {
    const int out = st.n - 1 - i;
    const bool known = st.coef_known(i);
    fn.coefs[static_cast<size_t>(out)] = known ? st.coef_at(i) : 0;
    fn.known[static_cast<size_t>(out)] = known;
  }
  return fn;
}

}  // namespace foray::core
