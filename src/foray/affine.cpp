#include "foray/affine.h"

#include "util/status.h"

namespace foray::core {

int64_t AffineState::predict(std::span<const int64_t> iters) const {
  int64_t indc = const_term;
  for (int i = 0; i < n; ++i) {
    if (coef_known(i)) indc += iters[i] * coef[i];
  }
  return indc;
}

void observe_access(AffineState& st, std::span<const int64_t> iters,
                    int64_t ind) {
  const int n = static_cast<int>(iters.size());

  // Step 1: first sight of this reference — record the base address and
  // mark every coefficient unknown.
  if (!st.initialized) {
    st.initialized = true;
    st.n = n;
    st.m = n;
    st.const_term = ind;
    st.coef.assign(n, AffineState::kUnknown);
    st.sticky_s.assign(n, 0);
    st.itp.assign(iters.begin(), iters.end());
    st.indp = ind;
    st.observations = 1;
    return;
  }
  FORAY_CHECK(n == st.n, "reference observed at two different nest depths");
  ++st.observations;
  if (!st.analyzable) {
    // Excluded in a previous Step 4; keep ITP/INDP fresh for counters.
    st.itp.assign(iters.begin(), iters.end());
    st.indp = ind;
    return;
  }

  // Step 2: H = iterators with UNKNOWN coefficient that changed value.
  int h = 0;
  int k = -1;
  for (int i = 0; i < n; ++i) {
    if (!st.coef_known(i) && iters[i] != st.itp[i]) {
      ++h;
      k = i;
    }
  }

  if (h == 1) {
    // Step 3: solve the single newly-determined coefficient.
    //   IND - INDP = Ck*(ITk - ITPk) + sum_known Ci*(ITi - ITPi)
    int64_t adj = 0;
    for (int i = 0; i < n; ++i) {
      if (i != k && st.coef_known(i) && iters[i] != st.itp[i]) {
        adj += st.coef[i] * (iters[i] - st.itp[i]);
      }
    }
    const int64_t dit = iters[k] - st.itp[k];
    const int64_t num = ind - adj - st.indp;
    if (num % dit == 0) {
      st.coef[k] = num / dit;
    }
    // A non-integral solution means this iterator does not linearly
    // drive the address; leave it UNKNOWN and let Step 6 absorb the
    // discrepancy into CONST.
  } else if (h > 1) {
    // Step 4: several unknowns changed at once — under-determined;
    // the paper marks such references non-analyzable.
    st.analyzable = false;
    st.itp.assign(iters.begin(), iters.end());
    st.indp = ind;
    return;
  }

  // Step 5: predict with everything known so far.
  const int64_t indc = st.predict(iters);

  // Step 6: on misprediction, re-fit CONST and shrink the partial range.
  if (indc != ind) {
    ++st.mispredictions;
    for (int i = 0; i < n; ++i) {
      if (iters[i] == st.itp[i]) st.sticky_s[i] = 1;
    }
    st.const_term += ind - indc;
    // M = (outermost iterator that changed at every misprediction) - 1.
    st.m = 0;
    for (int i = 0; i < n; ++i) {
      if (st.sticky_s[i] == 0) st.m = i;  // i is 0-based: M = i_1based - 1
    }
  }

  // Step 7: remember this execution.
  st.itp.assign(iters.begin(), iters.end());
  st.indp = ind;
}

int64_t AffineFunction::evaluate(
    std::span<const int64_t> iters_outer_first) const {
  FORAY_CHECK(iters_outer_first.size() == coefs.size(),
              "iterator count mismatch in AffineFunction::evaluate");
  int64_t v = const_term;
  for (size_t i = 0; i < coefs.size(); ++i) {
    v += coefs[i] * iters_outer_first[i];
  }
  return v;
}

AffineFunction finalize(const AffineState& st) {
  AffineFunction fn;
  fn.analyzable = st.analyzable;
  fn.const_term = st.const_term;
  fn.m = st.m;
  fn.coefs.resize(static_cast<size_t>(st.n));
  fn.known.resize(static_cast<size_t>(st.n));
  // State is innermost-first; emission order is outermost-first.
  for (int i = 0; i < st.n; ++i) {
    const int out = st.n - 1 - i;
    const bool known = st.coef_known(i);
    fn.coefs[static_cast<size_t>(out)] = known ? st.coef[i] : 0;
    fn.known[static_cast<size_t>(out)] = known;
  }
  return fn;
}

}  // namespace foray::core
