// Inter-function optimization hints (§4 "Inter-function optimizations").
//
// The FORAY model has no function hierarchy — functions appear inlined.
// When the same loop site (hence the function containing it) shows up in
// several places of the dynamic loop tree, the paper suggests hinting the
// designer that *duplicating* the function lets each call context's
// access pattern be optimized separately (Figure 9). The advisor surfaces
// exactly that: functions whose loops appear under ≥2 distinct contexts,
// flagging those whose recovered access patterns actually differ.
#pragma once

#include <string>
#include <vector>

#include "foray/model.h"
#include "instrument/annotator.h"

namespace foray::core {

struct InlineHint {
  int func_id = -1;
  std::string func_name;
  int contexts = 0;  ///< distinct dynamic contexts of the function's loops
  /// True when at least one reference recovers different affine
  /// coefficients or constants across contexts — the Figure 9 situation
  /// where one-size-fits-all optimization would be suboptimal.
  bool patterns_differ = false;
  /// Human-readable per-context descriptions of one differing reference.
  std::vector<std::string> details;
};

/// Derives duplication hints from a built model. `sites` maps loop ids to
/// their enclosing functions.
std::vector<InlineHint> compute_inline_hints(
    const ForayModel& model, const instrument::LoopSiteTable& sites);

}  // namespace foray::core
