#include "foray/looptree.h"

#include "util/status.h"

namespace foray::core {

LoopNode* LoopNode::create_child(int site_id, uint64_t stamp) {
  auto child =
      std::make_unique<LoopNode>(site_id, this, hash_index_, footprint_cap_);
  child->first_seen = stamp;
  LoopNode* raw = child.get();
  children_.push_back(std::move(child));
  if (hash_index_) {
    child_index_.insert(static_cast<uint32_t>(site_id), raw);
  }
  return raw;
}

LoopNode* LoopNode::find_child_linear(int site_id) {
  for (const auto& c : children_) {
    if (c->loop_id() == site_id) return c.get();
  }
  return nullptr;
}

RefNode* LoopNode::create_ref(uint32_t instr, uint64_t stamp) {
  auto ref = std::make_unique<RefNode>(instr, this, footprint_cap_);
  ref->first_seen = stamp;
  RefNode* raw = ref.get();
  refs_.push_back(std::move(ref));
  if (hash_index_) ref_index_.insert(instr, raw);
  return raw;
}

RefNode* LoopNode::find_ref_linear(uint32_t instr) {
  for (const auto& r : refs_) {
    if (r->instr == instr) return r.get();
  }
  return nullptr;
}

void LoopNode::adopt_child(std::unique_ptr<LoopNode> child) {
  child->parent_ = this;
  LoopNode* raw = child.get();
  children_.push_back(std::move(child));
  if (hash_index_) {
    child_index_.insert(static_cast<uint32_t>(raw->loop_id()), raw);
  }
}

void LoopNode::adopt_ref(std::unique_ptr<RefNode> ref) {
  ref->owner = this;
  ref->side_slot = RefNode::kNoSideSlot;  // slice-local scratch dies here
  RefNode* raw = ref.get();
  refs_.push_back(std::move(ref));
  if (hash_index_) ref_index_.insert(raw->instr, raw);
}

void LoopNode::merge_from(LoopNode&& other, const RefMergeFn* on_collision) {
  FORAY_CHECK(loop_id_ == other.loop_id_,
              "LoopNode::merge_from: different loop sites");
  // A node was "touched" by the shard whose partition comes later in the
  // trace; for everything except the root each context lives whole in
  // one shard, so at most one side carries activity.
  if (other.entries > 0) cur_iter = other.cur_iter;
  entries += other.entries;
  total_iterations += other.total_iterations;
  max_trip = std::max(max_trip, other.max_trip);
  first_seen = std::min(first_seen, other.first_seen);

  for (auto& oref : other.refs_) {
    // Algorithm 3 state is a strictly sequential fold over the
    // reference's observations — it cannot be combined from two partial
    // runs. The context sharder routes every observation of a reference
    // to one shard (a context lives whole in one shard, root refs in
    // shard 0), so a reference appearing on both sides is a sharder bug
    // — except under time-partition sharding, whose merge supplies the
    // collision handler that reconciles the two partial folds.
    if (RefNode* mine = find_ref(oref->instr)) {
      FORAY_CHECK(on_collision != nullptr,
                  "LoopTree::merge: reference observed by two shards");
      (*on_collision)(mine, oref.get());
      continue;
    }
    adopt_ref(std::move(oref));
  }

  for (auto& ochild : other.children_) {
    LoopNode* mine = find_child(ochild->loop_id());
    if (mine == nullptr) {
      adopt_child(std::move(ochild));
    } else {
      mine->merge_from(std::move(*ochild), on_collision);
    }
  }

  // Restore the sequential creation order (stamps are trace positions).
  std::stable_sort(refs_.begin(), refs_.end(),
            [](const auto& a, const auto& b) {
              return a->first_seen < b->first_seen;
            });
  std::stable_sort(children_.begin(), children_.end(),
            [](const auto& a, const auto& b) {
              return a->first_seen < b->first_seen;
            });
}

size_t LoopNode::state_bytes() const {
  size_t bytes = sizeof(LoopNode);
  bytes += children_.capacity() * sizeof(void*);
  bytes += child_index_.heap_bytes();
  bytes += refs_.capacity() * sizeof(void*);
  bytes += ref_index_.heap_bytes();
  for (const auto& r : refs_) {
    bytes += sizeof(RefNode);
    bytes += r->affine.heap_bytes();
    bytes += r->footprint().heap_bytes();
  }
  return bytes;
}

size_t LoopTree::state_bytes() const {
  size_t total = 0;
  for_each_node(*root_, [&](const LoopNode& n) { total += n.state_bytes(); });
  return total;
}

int LoopTree::loop_node_count() const {
  int n = -1;  // exclude the synthetic root
  for_each_node(*root_, [&](const LoopNode&) { ++n; });
  return n;
}

int LoopTree::ref_node_count() const {
  int n = 0;
  for_each_node(*root_, [&](const LoopNode& node) {
    n += static_cast<int>(node.refs().size());
  });
  return n;
}

}  // namespace foray::core
