#include "foray/looptree.h"

namespace foray::core {

LoopNode* LoopNode::get_or_create_child(int site_id) {
  if (LoopNode* found = find_child(site_id)) return found;
  auto child =
      std::make_unique<LoopNode>(site_id, this, hash_index_, footprint_cap_);
  LoopNode* raw = child.get();
  children_.push_back(std::move(child));
  if (hash_index_) child_index_[site_id] = raw;
  return raw;
}

LoopNode* LoopNode::find_child(int site_id) {
  if (hash_index_) {
    auto it = child_index_.find(site_id);
    return it == child_index_.end() ? nullptr : it->second;
  }
  for (const auto& c : children_) {
    if (c->loop_id() == site_id) return c.get();
  }
  return nullptr;
}

RefNode* LoopNode::get_or_create_ref(uint32_t instr, bool* created) {
  if (RefNode* found = find_ref(instr)) {
    if (created != nullptr) *created = false;
    return found;
  }
  auto ref = std::make_unique<RefNode>(instr, this, footprint_cap_);
  RefNode* raw = ref.get();
  refs_.push_back(std::move(ref));
  if (hash_index_) ref_index_[instr] = raw;
  if (created != nullptr) *created = true;
  return raw;
}

RefNode* LoopNode::find_ref(uint32_t instr) {
  if (hash_index_) {
    auto it = ref_index_.find(instr);
    return it == ref_index_.end() ? nullptr : it->second;
  }
  for (const auto& r : refs_) {
    if (r->instr == instr) return r.get();
  }
  return nullptr;
}

size_t LoopNode::state_bytes() const {
  size_t bytes = sizeof(LoopNode);
  bytes += children_.capacity() * sizeof(void*);
  bytes += child_index_.size() * (sizeof(int) + sizeof(void*) * 2);
  bytes += refs_.capacity() * sizeof(void*);
  bytes += ref_index_.size() * (sizeof(uint32_t) + sizeof(void*) * 2);
  for (const auto& r : refs_) {
    bytes += sizeof(RefNode);
    bytes += r->affine.coef.capacity() * sizeof(int64_t) * 2;
    bytes += r->affine.sticky_s.capacity();
    bytes += r->footprint().size() * sizeof(uint32_t) * 2;
  }
  return bytes;
}

size_t LoopTree::state_bytes() const {
  size_t total = 0;
  for_each_node(*root_, [&](const LoopNode& n) { total += n.state_bytes(); });
  return total;
}

int LoopTree::loop_node_count() const {
  int n = -1;  // exclude the synthetic root
  for_each_node(*root_, [&](const LoopNode&) { ++n; });
  return n;
}

int LoopTree::ref_node_count() const {
  int n = 0;
  for_each_node(*root_, [&](const LoopNode& node) {
    n += static_cast<int>(node.refs().size());
  });
  return n;
}

}  // namespace foray::core
