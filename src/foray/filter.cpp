#include "foray/filter.h"

namespace foray::core {

const char* filter_reason_name(FilterReason r) {
  switch (r) {
    case FilterReason::Kept: return "kept";
    case FilterReason::NonAnalyzable: return "non-analyzable";
    case FilterReason::NoIterator: return "no-iterator";
    case FilterReason::PartialExcluded: return "partial-excluded";
    case FilterReason::TooFewExecs: return "too-few-execs";
    case FilterReason::TooFewLocations: return "too-few-locations";
    case FilterReason::SystemReference: return "system-reference";
  }
  return "?";
}

FilterReason classify_reference(const RefNode& ref, const FilterOptions& o) {
  if (o.exclude_system && ref.kind == trace::AccessKind::System) {
    return FilterReason::SystemReference;
  }
  if (!ref.affine.analyzable) return FilterReason::NonAnalyzable;
  if (o.require_iterator && !ref.affine.has_effective_iterator()) {
    return FilterReason::NoIterator;
  }
  if (!o.keep_partial && ref.affine.is_partial()) {
    return FilterReason::PartialExcluded;
  }
  if (ref.exec_count < o.min_exec) return FilterReason::TooFewExecs;
  if (ref.footprint_size() < o.min_locations) {
    return FilterReason::TooFewLocations;
  }
  return FilterReason::Kept;
}

}  // namespace foray::core
