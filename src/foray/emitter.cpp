#include "foray/emitter.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "util/status.h"
#include "util/strings.h"

namespace foray::core {

namespace {

/// Offset extremes of the emitted (innermost-M) part of the function,
/// relative to const_term.
struct Span {
  int64_t min_off = 0;  ///< most negative iterator contribution
  int64_t max_off = 0;  ///< most positive iterator contribution
};

Span offset_span(const ModelReference& ref) {
  Span s;
  auto coefs = ref.emitted_coefs();
  auto trips = ref.emitted_trips();
  for (size_t i = 0; i < coefs.size(); ++i) {
    const int64_t reach = coefs[i] * std::max<int64_t>(trips[i] - 1, 0);
    if (reach < 0) {
      s.min_off += reach;
    } else {
      s.max_off += reach;
    }
  }
  return s;
}

/// Loop-variable name for position `pos` of an emitted path. Usually
/// "i<loop_id>"; recursion can repeat a site in one path, in which case
/// later occurrences get a positional suffix.
std::string loop_var(const std::vector<int>& path, size_t pos) {
  int dup = 0;
  for (size_t i = 0; i < pos; ++i) {
    if (path[i] == path[pos]) ++dup;
  }
  std::string name = "i" + std::to_string(path[pos]);
  if (dup > 0) name += "_" + std::to_string(dup);
  return name;
}

/// Renders "base + c*iN + ..." with zero coefficients omitted.
std::string index_expr(int64_t base, const std::vector<int64_t>& coefs,
                       const std::vector<int>& path) {
  std::ostringstream os;
  os << base;
  for (size_t i = 0; i < coefs.size(); ++i) {
    if (coefs[i] == 0) continue;
    if (coefs[i] >= 0) {
      os << " + " << coefs[i];
    } else {
      os << " - " << -coefs[i];
    }
    os << " * " << loop_var(path, i);
  }
  return os.str();
}

struct NestGroup {
  std::vector<int> path;
  std::vector<int64_t> trips;
  std::vector<size_t> ref_indices;
};

std::vector<NestGroup> group_refs(const ForayModel& model, bool grouped) {
  std::vector<NestGroup> groups;
  std::map<std::pair<std::vector<int>, std::vector<int64_t>>, size_t> index;
  for (size_t i = 0; i < model.refs.size(); ++i) {
    const auto& r = model.refs[i];
    NestGroup g;
    g.path = r.emitted_loop_path();
    g.trips = r.emitted_trips();
    if (!grouped) {
      g.ref_indices.push_back(i);
      groups.push_back(std::move(g));
      continue;
    }
    auto key = std::make_pair(g.path, g.trips);
    auto it = index.find(key);
    if (it == index.end()) {
      g.ref_indices.push_back(i);
      index[key] = groups.size();
      groups.push_back(std::move(g));
    } else {
      groups[it->second].ref_indices.push_back(i);
    }
  }
  return groups;
}

}  // namespace

std::vector<std::string> assign_array_names(const ForayModel& model) {
  std::vector<std::string> names;
  names.reserve(model.refs.size());
  std::unordered_map<uint32_t, int> seen;
  for (const auto& r : model.refs) {
    int n = ++seen[r.instr];
    std::string name = "A" + util::to_hex(r.instr);
    if (n > 1) name += "_c" + std::to_string(n);
    names.push_back(std::move(name));
  }
  return names;
}

std::string describe_reference(const ModelReference& ref) {
  std::ostringstream os;
  os << "instr=" << util::to_hex(ref.instr) << " addr = 0x"
     << util::to_hex(static_cast<uint64_t>(ref.fn.const_term));
  // Innermost-first term order, matching the paper's Figure 2 style.
  // Terms outside the partial range (coefficients of excluded outer
  // iterators) are not part of the expression and are not shown.
  const auto& path = ref.loop_path;
  const int first_kept = ref.fn.n() - ref.fn.m;
  for (int i = ref.fn.n() - 1; i >= first_kept; --i) {
    const int64_t c = ref.fn.coefs[static_cast<size_t>(i)];
    if (c == 0) continue;
    os << (c >= 0 ? " + " : " - ") << (c >= 0 ? c : -c) << "*"
       << loop_var(path, static_cast<size_t>(i));
  }
  os << (ref.partial() ? " (partial, M=" + std::to_string(ref.fn.m) + ")"
                       : " (full)");
  os << " execs=" << ref.exec_count << " footprint=" << ref.footprint;
  return os.str();
}

std::string emit_minic(const ForayModel& model, const EmitOptions& opts) {
  std::ostringstream os;
  auto names = assign_array_names(model);
  os << "// FORAY model (auto-generated). Each array reference reproduces\n"
        "// one memory reference of the profiled program, rebased to a\n"
        "// zero-origin array of exactly the spanned size.\n";

  // Array declarations.
  std::vector<int64_t> bases(model.refs.size());
  for (size_t i = 0; i < model.refs.size(); ++i) {
    const auto& r = model.refs[i];
    Span s = offset_span(r);
    bases[i] = -s.min_off;  // rebased constant term
    const int64_t len = s.max_off - s.min_off + r.access_size;
    if (opts.metadata_comments) {
      os << "// " << describe_reference(r) << "\n";
    }
    os << "char " << names[i] << "[" << len << "];\n";
  }
  os << "int foray_acc;\n\n";
  os << "int main(void) {\n";

  auto groups = group_refs(model, opts.group_by_nest);
  for (const auto& g : groups) {
    int level = 1;
    auto indent = [&]() { return std::string(static_cast<size_t>(level) * 2,
                                             ' '); };
    for (size_t d = 0; d < g.path.size(); ++d) {
      std::string v = loop_var(g.path, d);
      os << indent() << "for (int " << v << " = 0; " << v << " < "
         << g.trips[d] << "; " << v << "++)";
      os << (d + 1 == g.path.size() ? " {\n" : "\n");
      ++level;
    }
    if (g.path.empty()) {
      os << indent() << "{\n";
      ++level;
    }
    for (size_t idx : g.ref_indices) {
      const auto& r = model.refs[idx];
      std::string expr = index_expr(bases[idx], r.emitted_coefs(), g.path);
      if (r.has_write) {
        os << indent() << names[idx] << "[" << expr << "] = 1;\n";
      } else {
        os << indent() << "foray_acc += " << names[idx] << "[" << expr
           << "];\n";
      }
    }
    --level;
    os << indent() << "}\n";
  }

  os << "  return 0;\n}\n";
  return os.str();
}

std::string emit_paper_style(const ForayModel& model) {
  std::ostringstream os;
  auto names = assign_array_names(model);
  for (size_t i = 0; i < model.refs.size(); ++i) {
    const auto& r = model.refs[i];
    auto path = r.emitted_loop_path();
    auto trips = r.emitted_trips();
    auto coefs = r.emitted_coefs();
    for (size_t d = 0; d < path.size(); ++d) {
      os << std::string(d * 4, ' ') << "for (int " << loop_var(path, d)
         << "=0; " << loop_var(path, d) << "<" << trips[d] << "; "
         << loop_var(path, d) << "++)\n";
    }
    // Figure 2 prints the constant in decimal and terms innermost-first.
    os << std::string(path.size() * 4, ' ') << names[i] << "["
       << r.fn.const_term;
    for (size_t d = coefs.size(); d-- > 0;) {
      if (coefs[d] == 0) continue;
      os << (coefs[d] >= 0 ? "+" : "-") << std::llabs(coefs[d]) << "*"
         << loop_var(path, d);
    }
    os << "]";
    if (r.partial()) os << "  /* partial: base varies with outer context */";
    os << "\n";
  }
  return os.str();
}

}  // namespace foray::core
