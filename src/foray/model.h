// The FORAY model IR: the paper's "another C program consisting of for
// loops and array references with affine index expressions", held as data
// before emission.
//
// Each ModelReference is one surviving memory reference together with the
// loop nest (dynamic context) it executes in. For partial-affine
// references only the innermost M loops are meaningful to downstream SPM
// analysis; the emitter and the reuse analysis both honor that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "foray/affine.h"
#include "foray/extractor.h"
#include "foray/filter.h"

namespace foray::core {

struct ModelReference {
  uint32_t instr = 0;
  /// Dynamic loop context, outermost first (loop site ids).
  std::vector<int> loop_path;
  /// Max observed trip count per loop, aligned with loop_path.
  std::vector<int64_t> trips;
  /// The recovered affine address function (outermost-first coefficients).
  AffineFunction fn;

  uint64_t exec_count = 0;
  uint64_t footprint = 0;
  bool footprint_saturated = false;
  uint8_t access_size = 4;
  bool has_read = false;
  bool has_write = false;

  int n() const { return static_cast<int>(loop_path.size()); }
  bool partial() const { return fn.partial(); }

  /// Loops actually present in the emitted model: all N for full affine
  /// references, the innermost M for partial ones (outermost-first
  /// suffix of loop_path).
  std::vector<int> emitted_loop_path() const {
    const size_t keep = static_cast<size_t>(fn.m);
    return std::vector<int>(loop_path.end() - static_cast<long>(keep),
                            loop_path.end());
  }
  std::vector<int64_t> emitted_trips() const {
    const size_t keep = static_cast<size_t>(fn.m);
    return std::vector<int64_t>(trips.end() - static_cast<long>(keep),
                                trips.end());
  }
  /// Coefficients for the emitted loops (outermost-first suffix).
  std::vector<int64_t> emitted_coefs() const {
    const size_t keep = static_cast<size_t>(fn.m);
    return std::vector<int64_t>(fn.coefs.end() - static_cast<long>(keep),
                                fn.coefs.end());
  }
};

struct ModelBuildStats {
  int total_refs = 0;  ///< reference nodes in the tree
  int kept = 0;
  int dropped_non_analyzable = 0;
  int dropped_no_iterator = 0;
  int dropped_partial = 0;
  int dropped_exec = 0;
  int dropped_locations = 0;
  int dropped_system = 0;
};

struct ForayModel {
  std::vector<ModelReference> refs;
  ModelBuildStats build_stats;

  /// Distinct loop sites appearing in emitted nests (Table II "number of
  /// loops ... represented by FORAY form").
  int distinct_loops() const;
  /// Distinct loop sites counting call contexts separately (functions
  /// considered inlined, as in the paper's experimental note).
  int loop_contexts() const;
  uint64_t total_accesses() const;
};

/// Builds the model from a finished extraction: walks the loop tree,
/// applies the Step 4 filter and finalizes every surviving reference's
/// affine function.
ForayModel build_model(const Extractor& extractor,
                       const FilterOptions& filter = {});

}  // namespace foray::core
