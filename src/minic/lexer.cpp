#include "minic/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <unordered_map>

namespace foray::minic {

namespace {

const std::unordered_map<std::string_view, Tok>& keyword_map() {
  static const std::unordered_map<std::string_view, Tok> kMap = {
      {"void", Tok::kwVoid},         {"char", Tok::kwChar},
      {"short", Tok::kwShort},       {"int", Tok::kwInt},
      {"float", Tok::kwFloat},       {"if", Tok::kwIf},
      {"else", Tok::kwElse},         {"for", Tok::kwFor},
      {"while", Tok::kwWhile},       {"do", Tok::kwDo},
      {"return", Tok::kwReturn},     {"break", Tok::kwBreak},
      {"continue", Tok::kwContinue}, {"const", Tok::kwConst},
  };
  return kMap;
}

}  // namespace

std::string_view tok_name(Tok t) {
  switch (t) {
    case Tok::kIntLit: return "integer literal";
    case Tok::kFloatLit: return "float literal";
    case Tok::kCharLit: return "char literal";
    case Tok::kStrLit: return "string literal";
    case Tok::kIdent: return "identifier";
    case Tok::kwVoid: return "'void'";
    case Tok::kwChar: return "'char'";
    case Tok::kwShort: return "'short'";
    case Tok::kwInt: return "'int'";
    case Tok::kwFloat: return "'float'";
    case Tok::kwIf: return "'if'";
    case Tok::kwElse: return "'else'";
    case Tok::kwFor: return "'for'";
    case Tok::kwWhile: return "'while'";
    case Tok::kwDo: return "'do'";
    case Tok::kwReturn: return "'return'";
    case Tok::kwBreak: return "'break'";
    case Tok::kwContinue: return "'continue'";
    case Tok::kwConst: return "'const'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kComma: return "','";
    case Tok::kSemi: return "';'";
    case Tok::kQuestion: return "'?'";
    case Tok::kColon: return "':'";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kTilde: return "'~'";
    case Tok::kBang: return "'!'";
    case Tok::kLt: return "'<'";
    case Tok::kGt: return "'>'";
    case Tok::kLe: return "'<='";
    case Tok::kGe: return "'>='";
    case Tok::kEqEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kAmpAmp: return "'&&'";
    case Tok::kPipePipe: return "'||'";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
    case Tok::kAssign: return "'='";
    case Tok::kPlusEq: return "'+='";
    case Tok::kMinusEq: return "'-='";
    case Tok::kStarEq: return "'*='";
    case Tok::kSlashEq: return "'/='";
    case Tok::kPercentEq: return "'%='";
    case Tok::kAmpEq: return "'&='";
    case Tok::kPipeEq: return "'|='";
    case Tok::kCaretEq: return "'^='";
    case Tok::kShlEq: return "'<<='";
    case Tok::kShrEq: return "'>>='";
    case Tok::kPlusPlus: return "'++'";
    case Tok::kMinusMinus: return "'--'";
    case Tok::kEof: return "end of file";
    case Tok::kError: return "invalid token";
  }
  return "?";
}

Lexer::Lexer(std::string_view source, util::DiagList* diags)
    : src_(source), diags_(diags) {}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  for (;;) {
    Token t = next();
    bool done = t.kind == Tok::kEof;
    out.push_back(std::move(t));
    if (done) break;
  }
  return out;
}

char Lexer::peek(int ahead) const {
  size_t i = pos_ + static_cast<size_t>(ahead);
  return i < src_.size() ? src_[i] : '\0';
}

char Lexer::advance() {
  char c = peek();
  ++pos_;
  if (c == '\n') ++line_;
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

void Lexer::skip_ws_and_comments() {
  for (;;) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          diags_->add(line_, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::make(Tok kind) {
  Token t;
  t.kind = kind;
  t.line = line_;
  t.text = std::string(src_.substr(tok_start_, pos_ - tok_start_));
  return t;
}

Token Lexer::error_token(const std::string& msg) {
  diags_->add(line_, msg);
  return make(Tok::kError);
}

Token Lexer::next() {
  skip_ws_and_comments();
  tok_start_ = pos_;
  char c = peek();
  if (c == '\0') return make(Tok::kEof);

  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
    return lex_number();
  }
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    return lex_ident_or_keyword();
  }
  if (c == '\'') return lex_char_lit();
  if (c == '"') return lex_string_lit();

  advance();
  switch (c) {
    case '(': return make(Tok::kLParen);
    case ')': return make(Tok::kRParen);
    case '{': return make(Tok::kLBrace);
    case '}': return make(Tok::kRBrace);
    case '[': return make(Tok::kLBracket);
    case ']': return make(Tok::kRBracket);
    case ',': return make(Tok::kComma);
    case ';': return make(Tok::kSemi);
    case '?': return make(Tok::kQuestion);
    case ':': return make(Tok::kColon);
    case '~': return make(Tok::kTilde);
    case '+':
      if (match('+')) return make(Tok::kPlusPlus);
      if (match('=')) return make(Tok::kPlusEq);
      return make(Tok::kPlus);
    case '-':
      if (match('-')) return make(Tok::kMinusMinus);
      if (match('=')) return make(Tok::kMinusEq);
      return make(Tok::kMinus);
    case '*':
      if (match('=')) return make(Tok::kStarEq);
      return make(Tok::kStar);
    case '/':
      if (match('=')) return make(Tok::kSlashEq);
      return make(Tok::kSlash);
    case '%':
      if (match('=')) return make(Tok::kPercentEq);
      return make(Tok::kPercent);
    case '&':
      if (match('&')) return make(Tok::kAmpAmp);
      if (match('=')) return make(Tok::kAmpEq);
      return make(Tok::kAmp);
    case '|':
      if (match('|')) return make(Tok::kPipePipe);
      if (match('=')) return make(Tok::kPipeEq);
      return make(Tok::kPipe);
    case '^':
      if (match('=')) return make(Tok::kCaretEq);
      return make(Tok::kCaret);
    case '!':
      if (match('=')) return make(Tok::kNe);
      return make(Tok::kBang);
    case '=':
      if (match('=')) return make(Tok::kEqEq);
      return make(Tok::kAssign);
    case '<':
      if (match('<')) {
        if (match('=')) return make(Tok::kShlEq);
        return make(Tok::kShl);
      }
      if (match('=')) return make(Tok::kLe);
      return make(Tok::kLt);
    case '>':
      if (match('>')) {
        if (match('=')) return make(Tok::kShrEq);
        return make(Tok::kShr);
      }
      if (match('=')) return make(Tok::kGe);
      return make(Tok::kGt);
    default:
      return error_token(std::string("unexpected character '") + c + "'");
  }
}

Token Lexer::lex_number() {
  bool is_float = false;
  bool is_hex = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    is_hex = true;
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek()))) advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    if (peek() == '.') {
      is_float = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      is_float = true;
      advance();
      if (peek() == '+' || peek() == '-') advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
  }
  if (!is_hex && (peek() == 'f' || peek() == 'F')) {
    is_float = true;
    advance();
  }
  Token t = make(is_float ? Tok::kFloatLit : Tok::kIntLit);
  std::string spelling = t.text;
  if (is_float && !spelling.empty() &&
      (spelling.back() == 'f' || spelling.back() == 'F')) {
    spelling.pop_back();
  }
  if (is_float) {
    t.float_val = std::strtod(spelling.c_str(), nullptr);
  } else {
    // strtoull saturates out-of-range input to ULLONG_MAX with only
    // errno to show for it — unchecked, "18446744073709551616" would
    // silently become a different (maximal) constant. A bare "0x" is
    // caught by the end-pointer check.
    const char* begin = spelling.c_str() + (is_hex ? 2 : 0);
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(begin, &end, is_hex ? 16 : 10);
    if (end == begin || *end != '\0') {
      return error_token("malformed integer literal '" + spelling + "'");
    }
    if (errno == ERANGE) {
      return error_token("integer literal '" + spelling +
                         "' overflows 64 bits");
    }
    t.int_val = static_cast<long long>(value);
  }
  return t;
}

Token Lexer::lex_ident_or_keyword() {
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
    advance();
  }
  Token t = make(Tok::kIdent);
  auto it = keyword_map().find(t.text);
  if (it != keyword_map().end()) t.kind = it->second;
  return t;
}

bool Lexer::decode_escape(char* out) {
  char c = advance();
  if (c != '\\') {
    *out = c;
    return true;
  }
  char e = advance();
  switch (e) {
    case 'n': *out = '\n'; return true;
    case 't': *out = '\t'; return true;
    case 'r': *out = '\r'; return true;
    case '0': *out = '\0'; return true;
    case '\\': *out = '\\'; return true;
    case '\'': *out = '\''; return true;
    case '"': *out = '"'; return true;
    default:
      diags_->add(line_, std::string("unknown escape '\\") + e + "'");
      *out = e;
      return false;
  }
}

Token Lexer::lex_char_lit() {
  advance();  // opening quote
  if (peek() == '\0') return error_token("unterminated char literal");
  char v = 0;
  decode_escape(&v);
  if (!match('\'')) return error_token("unterminated char literal");
  Token t = make(Tok::kCharLit);
  t.int_val = static_cast<long long>(static_cast<unsigned char>(v));
  return t;
}

Token Lexer::lex_string_lit() {
  advance();  // opening quote
  std::string payload;
  while (peek() != '"') {
    if (peek() == '\0' || peek() == '\n') {
      return error_token("unterminated string literal");
    }
    char v = 0;
    decode_escape(&v);
    payload.push_back(v);
  }
  advance();  // closing quote
  Token t = make(Tok::kStrLit);
  t.str_val = std::move(payload);
  return t;
}

}  // namespace foray::minic
