// Token definitions for the MiniC front-end.
//
// MiniC is the C subset this reproduction uses as its program substrate:
// enough of C to express the MiBench-style idioms FORAY-GEN confronts
// (pointer walks, all three loop forms, data-dependent offsets, function
// calls) while staying executable on the bundled instruction-set
// simulator.
#pragma once

#include <string>
#include <string_view>

namespace foray::minic {

enum class Tok {
  // literals / identifiers
  kIntLit,
  kFloatLit,
  kCharLit,
  kStrLit,
  kIdent,
  // keywords
  kwVoid,
  kwChar,
  kwShort,
  kwInt,
  kwFloat,
  kwIf,
  kwElse,
  kwFor,
  kwWhile,
  kwDo,
  kwReturn,
  kwBreak,
  kwContinue,
  kwConst,
  // punctuation
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemi,
  kQuestion,
  kColon,
  // operators
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kBang,
  kLt,
  kGt,
  kLe,
  kGe,
  kEqEq,
  kNe,
  kAmpAmp,
  kPipePipe,
  kShl,
  kShr,
  kAssign,
  kPlusEq,
  kMinusEq,
  kStarEq,
  kSlashEq,
  kPercentEq,
  kAmpEq,
  kPipeEq,
  kCaretEq,
  kShlEq,
  kShrEq,
  kPlusPlus,
  kMinusMinus,
  kEof,
  kError,
};

/// Human-readable token-kind name for diagnostics.
std::string_view tok_name(Tok t);

struct Token {
  Tok kind = Tok::kEof;
  int line = 0;
  std::string text;     ///< identifier spelling / literal spelling
  long long int_val = 0;
  double float_val = 0.0;
  std::string str_val;  ///< decoded string literal payload
};

}  // namespace foray::minic
