// The MiniC intrinsic (built-in) function table.
//
// Intrinsics stand in for the system libraries of the paper's platform:
// their memory traffic is tagged trace::AccessKind::System, which is what
// gives Table III its "in system calls" category. The front end (sema)
// uses this table for call checking; the interpreter implements the
// semantics.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "minic/ast.h"

namespace foray::minic {

enum class Intrinsic {
  Printf,    ///< printf(fmt, ...) -> int
  Putchar,   ///< putchar(c) -> int
  Puts,      ///< puts(s) -> int
  Malloc,    ///< malloc(n) -> char*
  Free,      ///< free(p) -> void
  Memset,    ///< memset(dst, val, n) -> char*   (System-tagged traffic)
  Memcpy,    ///< memcpy(dst, src, n) -> char*   (System-tagged traffic)
  Rand,      ///< rand() -> int  (deterministic splitmix64)
  Srand,     ///< srand(seed) -> void
  Abs,       ///< abs(x) -> int
  Sqrtf,     ///< sqrtf(x) -> float
  Sinf,      ///< sinf(x) -> float
  Cosf,      ///< cosf(x) -> float
  Expf,      ///< expf(x) -> float
  Logf,      ///< logf(x) -> float
  Powf,      ///< powf(x, y) -> float
  Fabsf,     ///< fabsf(x) -> float
  Floorf,    ///< floorf(x) -> float
  Assert,    ///< assert(cond) -> void; aborts the simulation when cond == 0
  Exit,      ///< exit(code) -> void; terminates the simulated program
};

struct IntrinsicInfo {
  Intrinsic id;
  std::string_view name;
  Type ret;
  int min_args;
  int max_args;  ///< -1 = variadic
};

/// Look up an intrinsic by source name; nullopt if `name` is not one.
std::optional<IntrinsicInfo> find_intrinsic(std::string_view name);

/// All intrinsics (for documentation and tests).
const std::vector<IntrinsicInfo>& all_intrinsics();

}  // namespace foray::minic
