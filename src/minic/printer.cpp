#include "minic/printer.h"

#include <sstream>

#include "util/status.h"

namespace foray::minic {

namespace {

const char* bin_op_str(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::BitAnd: return "&";
    case BinaryOp::BitOr: return "|";
    case BinaryOp::BitXor: return "^";
    case BinaryOp::LogAnd: return "&&";
    case BinaryOp::LogOr: return "||";
  }
  return "?";
}

const char* assign_op_str(AssignOp op) {
  switch (op) {
    case AssignOp::Assign: return "=";
    case AssignOp::AddA: return "+=";
    case AssignOp::SubA: return "-=";
    case AssignOp::MulA: return "*=";
    case AssignOp::DivA: return "/=";
    case AssignOp::ModA: return "%=";
    case AssignOp::ShlA: return "<<=";
    case AssignOp::ShrA: return ">>=";
    case AssignOp::AndA: return "&=";
    case AssignOp::OrA: return "|=";
    case AssignOp::XorA: return "^=";
  }
  return "?";
}

std::string escape_string(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\0': out += "\\0"; break;
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      default: out += c;
    }
  }
  return out;
}

class Printer {
 public:
  explicit Printer(const PrintOptions& opts) : opts_(opts) {}

  std::string print(const Program& prog) {
    for (const auto& g : prog.globals) {
      print_var_decl(g);
      out_ << ";\n";
    }
    if (!prog.globals.empty()) out_ << "\n";
    for (const auto& f : prog.funcs) {
      print_function(*f);
      out_ << "\n";
    }
    return out_.str();
  }

  void expr(const Expr& e) { print_expr_prec(e, 0); }

  std::string str() { return out_.str(); }

 private:
  void indent() {
    for (int i = 0; i < level_ * opts_.indent_width; ++i) out_ << ' ';
  }

  void print_var_decl(const VarDecl& d) {
    out_ << d.type.str() << " " << d.name;
    if (d.array_len >= 0) out_ << "[" << d.array_len << "]";
    if (d.init) {
      out_ << " = ";
      expr(*d.init);
    } else if (!d.init_list.empty()) {
      out_ << " = {";
      for (size_t i = 0; i < d.init_list.size(); ++i) {
        if (i > 0) out_ << ", ";
        expr(*d.init_list[i]);
      }
      out_ << "}";
    }
  }

  void print_function(const Function& f) {
    out_ << f.ret.str() << " " << f.name << "(";
    if (f.params.empty()) {
      out_ << "void";
    } else {
      for (size_t i = 0; i < f.params.size(); ++i) {
        if (i > 0) out_ << ", ";
        out_ << f.params[i].type.str() << " " << f.params[i].name;
      }
    }
    out_ << ") ";
    print_stmt(*f.body);
  }

  void print_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Expr:
        indent();
        if (s.expr) expr(*s.expr);
        out_ << ";\n";
        break;
      case StmtKind::Decl:
        indent();
        for (size_t i = 0; i < s.decls.size(); ++i) {
          if (i > 0) {
            out_ << ";\n";
            indent();
          }
          print_var_decl(s.decls[i]);
        }
        out_ << ";\n";
        break;
      case StmtKind::If:
        indent();
        out_ << "if (";
        expr(*s.cond);
        out_ << ")\n";
        print_branch(*s.then_branch);
        if (s.else_branch) {
          indent();
          out_ << "else\n";
          print_branch(*s.else_branch);
        }
        break;
      case StmtKind::While:
        print_loop_head(s, [&] {
          out_ << "while (";
          expr(*s.cond);
          out_ << ")";
        });
        break;
      case StmtKind::DoWhile:
        if (annotating(s)) {
          indent();
          out_ << "{ CHECKPOINT(loop_enter, " << s.loop_id << ");\n";
          ++level_;
        }
        indent();
        out_ << "do\n";
        print_loop_body(s);
        indent();
        out_ << "while (";
        expr(*s.cond);
        out_ << ");\n";
        if (annotating(s)) {
          indent();
          out_ << "CHECKPOINT(loop_exit, " << s.loop_id << "); }\n";
          --level_;
        }
        break;
      case StmtKind::For:
        print_loop_head(s, [&] {
          out_ << "for (";
          print_for_init(s);
          out_ << " ";
          if (s.cond) expr(*s.cond);
          out_ << "; ";
          if (s.step) expr(*s.step);
          out_ << ")";
        });
        break;
      case StmtKind::Block:
        indent();
        out_ << "{\n";
        ++level_;
        for (const auto& st : s.stmts) print_stmt(*st);
        --level_;
        indent();
        out_ << "}\n";
        break;
      case StmtKind::Return:
        indent();
        out_ << "return";
        if (s.expr) {
          out_ << " ";
          expr(*s.expr);
        }
        out_ << ";\n";
        break;
      case StmtKind::Break:
        indent();
        out_ << "break;\n";
        break;
      case StmtKind::Continue:
        indent();
        out_ << "continue;\n";
        break;
      case StmtKind::Empty:
        indent();
        out_ << ";\n";
        break;
    }
  }

  bool annotating(const Stmt& s) const {
    return opts_.annotate_checkpoints && s.loop_id >= 0;
  }

  void print_for_init(const Stmt& s) {
    // For-initializer prints inline, without trailing newline.
    if (s.init == nullptr || s.init->kind == StmtKind::Empty) {
      out_ << ";";
      return;
    }
    if (s.init->kind == StmtKind::Expr) {
      expr(*s.init->expr);
      out_ << ";";
      return;
    }
    FORAY_CHECK(s.init->kind == StmtKind::Decl, "unexpected for-init kind");
    for (size_t i = 0; i < s.init->decls.size(); ++i) {
      if (i > 0) out_ << ", ";
      print_var_decl(s.init->decls[i]);
    }
    out_ << ";";
  }

  template <typename HeadFn>
  void print_loop_head(const Stmt& s, HeadFn head) {
    if (annotating(s)) {
      indent();
      out_ << "{ CHECKPOINT(loop_enter, " << s.loop_id << ");\n";
      ++level_;
    }
    indent();
    head();
    out_ << "\n";
    print_loop_body(s);
    if (annotating(s)) {
      indent();
      out_ << "CHECKPOINT(loop_exit, " << s.loop_id << "); }\n";
      --level_;
    }
  }

  void print_loop_body(const Stmt& s) {
    if (!annotating(s)) {
      print_branch(*s.body);
      return;
    }
    ++level_;
    indent();
    out_ << "{ CHECKPOINT(body_begin, " << s.loop_id << ");\n";
    ++level_;
    print_stmt_or_block_contents(*s.body);
    --level_;
    indent();
    out_ << "CHECKPOINT(body_end, " << s.loop_id << "); }\n";
    --level_;
  }

  void print_stmt_or_block_contents(const Stmt& s) {
    if (s.kind == StmtKind::Block) {
      for (const auto& st : s.stmts) print_stmt(*st);
    } else {
      print_stmt(s);
    }
  }

  void print_branch(const Stmt& s) {
    if (s.kind == StmtKind::Block) {
      print_stmt(s);
    } else {
      ++level_;
      print_stmt(s);
      --level_;
    }
  }

  // Precedence-aware expression printing; parenthesizes conservatively.
  void print_expr_prec(const Expr& e, int parent_prec) {
    switch (e.kind) {
      case ExprKind::IntLit:
        out_ << e.int_val;
        break;
      case ExprKind::FloatLit: {
        std::ostringstream tmp;
        tmp << e.float_val;
        std::string s = tmp.str();
        out_ << s;
        if (s.find('.') == std::string::npos &&
            s.find('e') == std::string::npos) {
          out_ << ".0";
        }
        out_ << "f";
        break;
      }
      case ExprKind::StrLit:
        out_ << '"' << escape_string(e.str_val) << '"';
        break;
      case ExprKind::Ident:
        out_ << e.name;
        break;
      case ExprKind::Unary:
        print_unary(e, parent_prec);
        break;
      case ExprKind::Binary: {
        int prec = 3;  // conservative: always parenthesize nested binaries
        if (parent_prec > 0) out_ << "(";
        print_expr_prec(*e.a, prec);
        out_ << " " << bin_op_str(e.bin_op) << " ";
        print_expr_prec(*e.b, prec);
        if (parent_prec > 0) out_ << ")";
        break;
      }
      case ExprKind::Assign:
        if (parent_prec > 0) out_ << "(";
        print_expr_prec(*e.a, 1);
        out_ << " " << assign_op_str(e.as_op) << " ";
        print_expr_prec(*e.b, 0);
        if (parent_prec > 0) out_ << ")";
        break;
      case ExprKind::Cond:
        if (parent_prec > 0) out_ << "(";
        print_expr_prec(*e.a, 1);
        out_ << " ? ";
        print_expr_prec(*e.b, 0);
        out_ << " : ";
        print_expr_prec(*e.c, 0);
        if (parent_prec > 0) out_ << ")";
        break;
      case ExprKind::Call:
        out_ << e.name << "(";
        for (size_t i = 0; i < e.args.size(); ++i) {
          if (i > 0) out_ << ", ";
          print_expr_prec(*e.args[i], 0);
        }
        out_ << ")";
        break;
      case ExprKind::Index:
        print_expr_prec(*e.a, 11);
        out_ << "[";
        print_expr_prec(*e.b, 0);
        out_ << "]";
        break;
      case ExprKind::Cast:
        if (parent_prec > 0) out_ << "(";
        out_ << "(" << e.cast_type.str() << ")";
        print_expr_prec(*e.a, 11);
        if (parent_prec > 0) out_ << ")";
        break;
    }
  }

  void print_unary(const Expr& e, int parent_prec) {
    const bool paren = parent_prec > 0;
    if (paren) out_ << "(";
    switch (e.un_op) {
      case UnaryOp::Neg: out_ << "-"; print_expr_prec(*e.a, 11); break;
      case UnaryOp::Not: out_ << "!"; print_expr_prec(*e.a, 11); break;
      case UnaryOp::BitNot: out_ << "~"; print_expr_prec(*e.a, 11); break;
      case UnaryOp::Deref: out_ << "*"; print_expr_prec(*e.a, 11); break;
      case UnaryOp::AddrOf: out_ << "&"; print_expr_prec(*e.a, 11); break;
      case UnaryOp::PreInc: out_ << "++"; print_expr_prec(*e.a, 11); break;
      case UnaryOp::PreDec: out_ << "--"; print_expr_prec(*e.a, 11); break;
      case UnaryOp::PostInc: print_expr_prec(*e.a, 11); out_ << "++"; break;
      case UnaryOp::PostDec: print_expr_prec(*e.a, 11); out_ << "--"; break;
    }
    if (paren) out_ << ")";
  }

  PrintOptions opts_;
  std::ostringstream out_;
  int level_ = 0;
};

}  // namespace

std::string print_program(const Program& prog, const PrintOptions& opts) {
  Printer p(opts);
  return p.print(prog);
}

std::string print_expr(const Expr& e) {
  Printer p(PrintOptions{});
  p.expr(e);
  return p.str();
}

}  // namespace foray::minic
