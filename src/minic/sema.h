// Semantic analysis for MiniC: name resolution, type checking and
// propagation, lvalue validation, call checking against user functions and
// the intrinsic table.
//
// Sema also records, for every expression node, the function it belongs to
// (Program-level side table) — the inlining advisor and the statistics
// module use this to attribute dynamic references back to source
// functions.
#pragma once

#include "minic/ast.h"
#include "util/status.h"

namespace foray::minic {

/// Side information produced by sema, stored alongside the Program.
struct SemaInfo {
  /// node_id -> func_id of the enclosing function (-1 for globals' inits).
  std::vector<int> node_func;
  /// node_id -> 1 if the node is an lvalue expression that denotes a
  /// memory object (candidate memory-access site).
  std::vector<uint8_t> node_is_memory_site;
};

/// Runs semantic analysis in place: fills Expr::type / decayed_array and
/// returns side info. Errors are appended to `diags`; the returned info is
/// only meaningful when no errors were produced.
SemaInfo run_sema(Program* prog, util::DiagList* diags);

}  // namespace foray::minic
