#include "minic/sema.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "minic/intrinsics.h"

namespace foray::minic {

namespace {

std::string Type_str(const Type& t) { return t.str(); }

struct Symbol {
  Type type;
  bool is_array = false;
  int array_len = -1;
};

class Sema {
 public:
  Sema(Program* prog, util::DiagList* diags) : prog_(prog), diags_(diags) {
    info_.node_func.assign(static_cast<size_t>(prog->num_nodes), -1);
    info_.node_is_memory_site.assign(static_cast<size_t>(prog->num_nodes), 0);
  }

  SemaInfo run() {
    // Register all functions first so forward calls resolve.
    for (const auto& f : prog_->funcs) {
      if (funcs_.count(f->name)) {
        diags_->add(f->line, "duplicate function '" + f->name + "'");
      }
      if (find_intrinsic(f->name)) {
        diags_->add(f->line,
                    "function '" + f->name + "' shadows an intrinsic");
      }
      funcs_[f->name] = f.get();
    }
    // Globals.
    for (auto& g : prog_->globals) {
      declare(g, /*global=*/true);
      cur_func_ = -1;
      if (g.init) check_expr(g.init.get());
      for (auto& e : g.init_list) check_expr(e.get());
    }
    // Function bodies.
    for (auto& f : prog_->funcs) {
      cur_func_ = f->func_id;
      push_scope();
      for (const auto& p : f->params) {
        if (p.type.is_void()) {
          diags_->add(p.line, "parameter '" + p.name + "' has void type");
        }
        declare_raw(p.name, Symbol{p.type, false, -1}, p.line);
      }
      cur_ret_ = f->ret;
      loop_depth_ = 0;
      check_stmt(f->body.get());
      pop_scope();
    }
    if (!funcs_.count("main")) {
      diags_->add(0, "program has no 'main' function");
    }
    return std::move(info_);
  }

 private:
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }

  void declare_raw(const std::string& name, Symbol sym, int line) {
    auto& scope = scopes_.empty() ? globals_ : scopes_.back();
    if (scope.count(name)) {
      diags_->add(line, "redeclaration of '" + name + "'");
    }
    scope[name] = sym;
  }

  void declare(const VarDecl& d, bool global) {
    Symbol sym;
    sym.type = d.type;
    sym.is_array = d.array_len >= 0;
    sym.array_len = d.array_len;
    if (d.type.is_void() && d.array_len < 0 && d.type.ptr == 0) {
      diags_->add(d.line, "variable '" + d.name + "' has void type");
    }
    if (d.array_len == 0) {
      diags_->add(d.line, "array '" + d.name + "' has zero length");
    }
    if (global) {
      if (globals_.count(d.name)) {
        diags_->add(d.line, "redeclaration of global '" + d.name + "'");
      }
      globals_[d.name] = sym;
    } else {
      declare_raw(d.name, sym, d.line);
    }
  }

  const Symbol* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return &f->second;
    }
    auto g = globals_.find(name);
    if (g != globals_.end()) return &g->second;
    return nullptr;
  }

  // -- statements -----------------------------------------------------------

  void check_stmt(Stmt* s) {
    if (s == nullptr) return;
    switch (s->kind) {
      case StmtKind::Expr:
        check_expr(s->expr.get());
        break;
      case StmtKind::Decl:
        for (auto& d : s->decls) {
          declare(d, /*global=*/false);
          if (d.init) {
            check_expr(d.init.get());
            check_convertible(d.init->type, d.type, d.line, "initializer");
          }
          for (auto& e : d.init_list) check_expr(e.get());
          if (!d.init_list.empty() && d.array_len >= 0 &&
              static_cast<int>(d.init_list.size()) > d.array_len) {
            diags_->add(d.line, "too many initializers for '" + d.name + "'");
          }
        }
        break;
      case StmtKind::If:
        check_expr(s->cond.get());
        check_stmt(s->then_branch.get());
        check_stmt(s->else_branch.get());
        break;
      case StmtKind::While:
      case StmtKind::DoWhile:
        check_expr(s->cond.get());
        ++loop_depth_;
        check_stmt(s->body.get());
        --loop_depth_;
        break;
      case StmtKind::For:
        push_scope();
        check_stmt(s->init.get());
        if (s->cond) check_expr(s->cond.get());
        if (s->step) check_expr(s->step.get());
        ++loop_depth_;
        check_stmt(s->body.get());
        --loop_depth_;
        pop_scope();
        break;
      case StmtKind::Block:
        push_scope();
        for (auto& st : s->stmts) check_stmt(st.get());
        pop_scope();
        break;
      case StmtKind::Return:
        if (s->expr) {
          check_expr(s->expr.get());
          if (cur_ret_.is_void()) {
            diags_->add(s->line, "returning a value from a void function");
          }
        } else if (!cur_ret_.is_void()) {
          diags_->add(s->line, "non-void function must return a value");
        }
        break;
      case StmtKind::Break:
        if (loop_depth_ == 0) diags_->add(s->line, "'break' outside a loop");
        break;
      case StmtKind::Continue:
        if (loop_depth_ == 0) {
          diags_->add(s->line, "'continue' outside a loop");
        }
        break;
      case StmtKind::Empty:
        break;
    }
  }

  // -- expressions ----------------------------------------------------------

  bool is_lvalue(const Expr* e) const {
    if (e == nullptr) return false;
    switch (e->kind) {
      case ExprKind::Ident:
        return !e->decayed_array;  // arrays are not assignable
      case ExprKind::Index:
        return true;
      case ExprKind::Unary:
        return e->un_op == UnaryOp::Deref;
      default:
        return false;
    }
  }

  void check_convertible(const Type& from, const Type& to, int line,
                         const char* ctx) {
    if (from == to) return;
    // Numeric conversions are implicit; pointer<->pointer allowed (as a
    // deliberate laxness that keeps benchmark sources terse); pointer<->int
    // allowed to model address manipulation idioms.
    if (to.is_void()) {
      diags_->add(line, std::string("cannot convert to void in ") + ctx);
      return;
    }
    (void)from;
  }

  Type check_expr(Expr* e) {
    if (e == nullptr) return make_type(BaseType::Int);
    info_.node_func[static_cast<size_t>(e->node_id)] = cur_func_;
    switch (e->kind) {
      case ExprKind::IntLit:
        e->type = make_type(BaseType::Int);
        break;
      case ExprKind::FloatLit:
        e->type = make_type(BaseType::Float);
        break;
      case ExprKind::StrLit:
        e->type = make_type(BaseType::Char, 1);
        break;
      case ExprKind::Ident: {
        const Symbol* sym = lookup(e->name);
        if (sym == nullptr) {
          diags_->add(e->line, "use of undeclared identifier '" + e->name +
                                   "'");
          e->type = make_type(BaseType::Int);
          break;
        }
        if (sym->is_array) {
          e->type = sym->type.address_of();
          e->decayed_array = true;
        } else {
          e->type = sym->type;
          info_.node_is_memory_site[static_cast<size_t>(e->node_id)] = 1;
        }
        break;
      }
      case ExprKind::Unary:
        e->type = check_unary(e);
        break;
      case ExprKind::Binary:
        e->type = check_binary(e);
        break;
      case ExprKind::Assign: {
        Type lhs = check_expr(e->a.get());
        Type rhs = check_expr(e->b.get());
        if (!is_lvalue(e->a.get())) {
          diags_->add(e->line, "assignment target is not an lvalue");
        }
        if (e->as_op != AssignOp::Assign && lhs.is_pointer()) {
          // Only += and -= make sense on pointers.
          if (e->as_op != AssignOp::AddA && e->as_op != AssignOp::SubA) {
            diags_->add(e->line, "invalid compound assignment on pointer");
          }
        }
        check_convertible(rhs, lhs, e->line, "assignment");
        e->type = lhs;
        break;
      }
      case ExprKind::Cond: {
        check_expr(e->a.get());
        Type bt = check_expr(e->b.get());
        Type ct = check_expr(e->c.get());
        e->type = (bt.is_float() || ct.is_float()) && !bt.is_pointer() &&
                          !ct.is_pointer()
                      ? make_type(BaseType::Float)
                      : bt;
        break;
      }
      case ExprKind::Call:
        e->type = check_call(e);
        break;
      case ExprKind::Index: {
        Type base = check_expr(e->a.get());
        Type idx = check_expr(e->b.get());
        if (!base.is_pointer()) {
          diags_->add(e->line, "subscripted value is not a pointer or array");
          e->type = make_type(BaseType::Int);
          break;
        }
        if (idx.is_float()) {
          diags_->add(e->line, "array index must be an integer");
        }
        e->type = base.deref();
        info_.node_is_memory_site[static_cast<size_t>(e->node_id)] = 1;
        break;
      }
      case ExprKind::Cast: {
        check_expr(e->a.get());
        e->type = e->cast_type;
        break;
      }
    }
    return e->type;
  }

  Type check_unary(Expr* e) {
    Type t = check_expr(e->a.get());
    switch (e->un_op) {
      case UnaryOp::Neg:
        if (t.is_pointer()) {
          diags_->add(e->line, "cannot negate a pointer");
        }
        return t;
      case UnaryOp::Not:
        return make_type(BaseType::Int);
      case UnaryOp::BitNot:
        if (!t.is_integer()) {
          diags_->add(e->line, "operand of '~' must be an integer");
        }
        return make_type(BaseType::Int);
      case UnaryOp::Deref:
        if (!t.is_pointer()) {
          diags_->add(e->line, "cannot dereference non-pointer type " +
                                   Type_str(t));
          return make_type(BaseType::Int);
        }
        if (t.deref().is_void()) {
          diags_->add(e->line, "cannot dereference a void pointer");
          return make_type(BaseType::Int);
        }
        info_.node_is_memory_site[static_cast<size_t>(e->node_id)] = 1;
        return t.deref();
      case UnaryOp::AddrOf:
        if (!is_lvalue(e->a.get())) {
          diags_->add(e->line, "cannot take the address of an rvalue");
        }
        return t.address_of();
      case UnaryOp::PreInc:
      case UnaryOp::PreDec:
      case UnaryOp::PostInc:
      case UnaryOp::PostDec:
        if (!is_lvalue(e->a.get())) {
          diags_->add(e->line, "operand of ++/-- must be an lvalue");
        }
        if (t.is_float()) {
          diags_->add(e->line, "++/-- on float is not supported in MiniC");
        }
        return t;
    }
    return t;
  }

  Type check_binary(Expr* e) {
    Type a = check_expr(e->a.get());
    Type b = check_expr(e->b.get());
    switch (e->bin_op) {
      case BinaryOp::Add:
        if (a.is_pointer() && b.is_pointer()) {
          diags_->add(e->line, "cannot add two pointers");
          return a;
        }
        if (a.is_pointer()) return a;
        if (b.is_pointer()) return b;
        return arith_type(a, b);
      case BinaryOp::Sub:
        if (a.is_pointer() && b.is_pointer()) {
          if (!(a == b)) {
            diags_->add(e->line, "subtracting incompatible pointers");
          }
          return make_type(BaseType::Int);
        }
        if (a.is_pointer()) return a;
        if (b.is_pointer()) {
          diags_->add(e->line, "cannot subtract a pointer from an integer");
          return make_type(BaseType::Int);
        }
        return arith_type(a, b);
      case BinaryOp::Mul:
      case BinaryOp::Div:
        if (a.is_pointer() || b.is_pointer()) {
          diags_->add(e->line, "invalid pointer operands to '*' or '/'");
          return make_type(BaseType::Int);
        }
        return arith_type(a, b);
      case BinaryOp::Mod:
      case BinaryOp::Shl:
      case BinaryOp::Shr:
      case BinaryOp::BitAnd:
      case BinaryOp::BitOr:
      case BinaryOp::BitXor:
        if (!a.is_integer() || !b.is_integer()) {
          diags_->add(e->line, "bitwise/mod operands must be integers");
        }
        return make_type(BaseType::Int);
      case BinaryOp::Lt:
      case BinaryOp::Gt:
      case BinaryOp::Le:
      case BinaryOp::Ge:
      case BinaryOp::Eq:
      case BinaryOp::Ne:
      case BinaryOp::LogAnd:
      case BinaryOp::LogOr:
        return make_type(BaseType::Int);
    }
    return make_type(BaseType::Int);
  }

  static Type arith_type(const Type& a, const Type& b) {
    if (a.is_float() || b.is_float()) return make_type(BaseType::Float);
    return make_type(BaseType::Int);
  }

  Type check_call(Expr* e) {
    for (auto& arg : e->args) check_expr(arg.get());
    if (auto intr = find_intrinsic(e->name)) {
      int n = static_cast<int>(e->args.size());
      if (n < intr->min_args ||
          (intr->max_args >= 0 && n > intr->max_args)) {
        diags_->add(e->line, "wrong number of arguments to intrinsic '" +
                                 e->name + "'");
      }
      return intr->ret;
    }
    auto it = funcs_.find(e->name);
    if (it == funcs_.end()) {
      diags_->add(e->line, "call to undeclared function '" + e->name + "'");
      return make_type(BaseType::Int);
    }
    const Function* fn = it->second;
    if (fn->params.size() != e->args.size()) {
      diags_->add(e->line, "wrong number of arguments to '" + e->name +
                               "': expected " +
                               std::to_string(fn->params.size()) + ", got " +
                               std::to_string(e->args.size()));
    }
    return fn->ret;
  }

  Program* prog_;
  util::DiagList* diags_;
  SemaInfo info_;
  std::unordered_map<std::string, Symbol> globals_;
  std::vector<std::unordered_map<std::string, Symbol>> scopes_;
  std::unordered_map<std::string, const Function*> funcs_;
  Type cur_ret_;
  int cur_func_ = -1;
  int loop_depth_ = 0;
};

}  // namespace

SemaInfo run_sema(Program* prog, util::DiagList* diags) {
  Sema sema(prog, diags);
  return sema.run();
}

std::string Type::str() const {
  std::string s;
  switch (base) {
    case BaseType::Void: s = "void"; break;
    case BaseType::Char: s = "char"; break;
    case BaseType::Short: s = "short"; break;
    case BaseType::Int: s = "int"; break;
    case BaseType::Float: s = "float"; break;
  }
  for (int i = 0; i < ptr; ++i) s += '*';
  return s;
}

}  // namespace foray::minic
