// Abstract syntax tree for MiniC.
//
// The tree is a tagged-union style AST: one Expr struct and one Stmt
// struct, each with a kind discriminator. This keeps the interpreter (the
// instruction-set-simulator substrate) a single dense switch and makes
// node identity trivial: every expression carries a unique `node_id`
// assigned at parse time, from which the simulator derives the synthetic
// "instruction address" recorded in traces (see sim/interpreter.h).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/inline.h"

namespace foray::minic {

// ---------------------------------------------------------------------------
// Types

enum class BaseType : uint8_t { Void, Char, Short, Int, Float };

/// A MiniC value type: a base type plus pointer indirection depth.
/// Array-ness lives on declarations (VarDecl::array_len); in expressions
/// arrays decay to pointers, as in C.
struct Type {
  BaseType base = BaseType::Int;
  int ptr = 0;  ///< pointer indirection levels (0 = scalar value)

  // The type predicates and size() run several times per simulated
  // evaluation step; forced inline so the engines' large dispatch loops
  // (where the inliner's budget runs out) never pay a call for them.
  FORAY_ALWAYS_INLINE bool is_void() const {
    return base == BaseType::Void && ptr == 0;
  }
  FORAY_ALWAYS_INLINE bool is_pointer() const { return ptr > 0; }
  FORAY_ALWAYS_INLINE bool is_float() const {
    return base == BaseType::Float && ptr == 0;
  }
  bool is_integer() const { return !is_float() && !is_pointer() && !is_void(); }

  /// Size in bytes of a value of this type (pointers are 32-bit).
  FORAY_ALWAYS_INLINE int size() const {
    if (ptr > 0) return 4;
    switch (base) {
      case BaseType::Void: return 0;
      case BaseType::Char: return 1;
      case BaseType::Short: return 2;
      case BaseType::Int: return 4;
      case BaseType::Float: return 4;
    }
    return 0;
  }

  /// The type obtained by dereferencing this pointer type once.
  Type deref() const {
    Type t = *this;
    t.ptr -= 1;
    return t;
  }
  /// The type of &expr where expr has this type.
  Type address_of() const {
    Type t = *this;
    t.ptr += 1;
    return t;
  }

  bool operator==(const Type& o) const {
    return base == o.base && ptr == o.ptr;
  }

  std::string str() const;
};

inline Type make_type(BaseType b, int ptr = 0) { return Type{b, ptr}; }

// ---------------------------------------------------------------------------
// Expressions

enum class ExprKind : uint8_t {
  IntLit,
  FloatLit,
  StrLit,
  Ident,
  Unary,
  Binary,
  Assign,
  Cond,   ///< ternary ?:
  Call,
  Index,  ///< a[i]
  Cast,
};

enum class UnaryOp : uint8_t {
  Neg,
  Not,      ///< logical !
  BitNot,
  Deref,
  AddrOf,
  PreInc,
  PreDec,
  PostInc,
  PostDec,
};

enum class BinaryOp : uint8_t {
  Add, Sub, Mul, Div, Mod,
  Shl, Shr,
  Lt, Gt, Le, Ge, Eq, Ne,
  BitAnd, BitOr, BitXor,
  LogAnd, LogOr,
};

enum class AssignOp : uint8_t {
  Assign, AddA, SubA, MulA, DivA, ModA, ShlA, ShrA, AndA, OrA, XorA,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  int node_id = 0;  ///< unique per translation unit; basis of instr address
  int line = 0;
  Type type;        ///< filled in by sema

  // Literal payloads.
  long long int_val = 0;
  double float_val = 0.0;
  std::string str_val;

  // Ident spelling / Call target name.
  std::string name;

  // Operators.
  UnaryOp un_op = UnaryOp::Neg;
  BinaryOp bin_op = BinaryOp::Add;
  AssignOp as_op = AssignOp::Assign;

  // Children. Meaning depends on kind:
  //   Unary: a            Binary: a, b        Assign: a (lhs), b (rhs)
  //   Cond: a ? b : c     Index: a[b]         Cast: a
  ExprPtr a, b, c;
  std::vector<ExprPtr> args;  ///< Call arguments

  // Sema results.
  Type cast_type;               ///< Cast target
  bool decayed_array = false;   ///< Ident names an array (decays to pointer)
};

// ---------------------------------------------------------------------------
// Statements

enum class StmtKind : uint8_t {
  Expr,
  Decl,
  If,
  While,
  DoWhile,
  For,
  Block,
  Return,
  Break,
  Continue,
  Empty,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One declared variable (global or local).
struct VarDecl {
  std::string name;
  Type type;
  int array_len = -1;  ///< -1: scalar; >=0: array of that many elements
  ExprPtr init;        ///< scalar initializer (may be null)
  std::vector<ExprPtr> init_list;  ///< array initializer elements
  int line = 0;
  /// Unique node id for the declaration itself — the synthetic "store
  /// instruction" that writes the initializer. Distinct from the init
  /// expression's node id so the two never share a trace identity.
  int node_id = -1;
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  ExprPtr expr;                 // Expr / Return value (may be null)
  std::vector<VarDecl> decls;   // Decl

  StmtPtr init;                 // For initializer (Expr or Decl stmt)
  ExprPtr cond;                 // If / While / DoWhile / For (For may be null)
  ExprPtr step;                 // For increment (may be null)
  StmtPtr then_branch, else_branch;  // If
  StmtPtr body;                 // loops
  std::vector<StmtPtr> stmts;   // Block

  /// Loop site id assigned by the instrumentation pass (Step 1 of
  /// Algorithm 1); -1 when not a loop or not yet annotated.
  int loop_id = -1;
};

// ---------------------------------------------------------------------------
// Top level

struct Param {
  std::string name;
  Type type;
  int line = 0;
  /// Unique node id: the synthetic "store instruction" that spills this
  /// argument into the callee's frame.
  int node_id = -1;
};

struct Function {
  std::string name;
  Type ret;
  std::vector<Param> params;
  StmtPtr body;
  int line = 0;
  int func_id = 0;  ///< dense index within Program::funcs
};

struct Program {
  std::vector<VarDecl> globals;
  std::vector<std::unique_ptr<Function>> funcs;
  int num_nodes = 0;   ///< total expression nodes allocated (node_id bound)
  int source_lines = 0;

  /// Returns the function with the given name, or nullptr.
  const Function* find_function(const std::string& name) const {
    for (const auto& f : funcs)
      if (f->name == name) return f.get();
    return nullptr;
  }
};

/// The synthetic "text segment" layout: expression node `id` is deemed to
/// live at instruction address kInstrBase + 4*id, mirroring the
/// instruction addresses a real ISS (SimpleScalar in the paper) reports.
inline constexpr uint32_t kInstrBase = 0x400000;
inline constexpr uint32_t instr_addr_for_node(int node_id) {
  return kInstrBase + 4u * static_cast<uint32_t>(node_id);
}
inline constexpr int node_for_instr_addr(uint32_t addr) {
  return static_cast<int>((addr - kInstrBase) / 4u);
}

}  // namespace foray::minic
