// Hand-written lexer for MiniC.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "minic/token.h"
#include "util/status.h"

namespace foray::minic {

/// Tokenizes a full MiniC translation unit. Lexing never throws; malformed
/// input produces kError tokens and diagnostics.
class Lexer {
 public:
  Lexer(std::string_view source, util::DiagList* diags);

  /// Lex the whole input, ending with a kEof token.
  std::vector<Token> lex_all();

 private:
  Token next();
  char peek(int ahead = 0) const;
  char advance();
  bool match(char expected);
  void skip_ws_and_comments();
  Token make(Tok kind);
  Token lex_number();
  Token lex_ident_or_keyword();
  Token lex_char_lit();
  Token lex_string_lit();
  /// Decode one (possibly escaped) character of a char/string literal.
  bool decode_escape(char* out);
  Token error_token(const std::string& msg);

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  size_t tok_start_ = 0;
  util::DiagList* diags_;
};

}  // namespace foray::minic
