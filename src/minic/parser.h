// Recursive-descent parser for MiniC.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "minic/ast.h"
#include "minic/token.h"
#include "util/status.h"

namespace foray::minic {

/// Parse a full translation unit. On syntax errors, diagnostics are added
/// to `diags` and a best-effort partial Program is still returned; callers
/// must treat the result as unusable unless `diags` is empty.
std::unique_ptr<Program> parse_program(std::string_view source,
                                       util::DiagList* diags);

/// Convenience for tests and tools: parse + sema in one call. Returns
/// nullptr and fills diags on any front-end error.
std::unique_ptr<Program> parse_and_check(std::string_view source,
                                         util::DiagList* diags);

}  // namespace foray::minic
