#include "minic/intrinsics.h"

namespace foray::minic {

namespace {
Type ty_int() { return make_type(BaseType::Int); }
Type ty_void() { return make_type(BaseType::Void); }
Type ty_float() { return make_type(BaseType::Float); }
Type ty_charp() { return make_type(BaseType::Char, 1); }
}  // namespace

const std::vector<IntrinsicInfo>& all_intrinsics() {
  static const std::vector<IntrinsicInfo> kTable = {
      {Intrinsic::Printf, "printf", ty_int(), 1, -1},
      {Intrinsic::Putchar, "putchar", ty_int(), 1, 1},
      {Intrinsic::Puts, "puts", ty_int(), 1, 1},
      {Intrinsic::Malloc, "malloc", ty_charp(), 1, 1},
      {Intrinsic::Free, "free", ty_void(), 1, 1},
      {Intrinsic::Memset, "memset", ty_charp(), 3, 3},
      {Intrinsic::Memcpy, "memcpy", ty_charp(), 3, 3},
      {Intrinsic::Rand, "rand", ty_int(), 0, 0},
      {Intrinsic::Srand, "srand", ty_void(), 1, 1},
      {Intrinsic::Abs, "abs", ty_int(), 1, 1},
      {Intrinsic::Sqrtf, "sqrtf", ty_float(), 1, 1},
      {Intrinsic::Sinf, "sinf", ty_float(), 1, 1},
      {Intrinsic::Cosf, "cosf", ty_float(), 1, 1},
      {Intrinsic::Expf, "expf", ty_float(), 1, 1},
      {Intrinsic::Logf, "logf", ty_float(), 1, 1},
      {Intrinsic::Powf, "powf", ty_float(), 2, 2},
      {Intrinsic::Fabsf, "fabsf", ty_float(), 1, 1},
      {Intrinsic::Floorf, "floorf", ty_float(), 1, 1},
      {Intrinsic::Assert, "assert", ty_void(), 1, 1},
      {Intrinsic::Exit, "exit", ty_void(), 1, 1},
  };
  return kTable;
}

std::optional<IntrinsicInfo> find_intrinsic(std::string_view name) {
  for (const auto& info : all_intrinsics()) {
    if (info.name == name) return info;
  }
  return std::nullopt;
}

}  // namespace foray::minic
