#include "minic/parser.h"

#include <utility>

#include "minic/lexer.h"
#include "minic/sema.h"
#include "util/strings.h"

namespace foray::minic {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, util::DiagList* diags)
      : toks_(std::move(tokens)), diags_(diags) {}

  std::unique_ptr<Program> parse() {
    auto prog = std::make_unique<Program>();
    while (!at(Tok::kEof)) {
      if (diags_->size() > 50) break;  // runaway error recovery
      parse_top_level(prog.get());
    }
    prog->num_nodes = next_node_id_;
    for (size_t i = 0; i < prog->funcs.size(); ++i) {
      prog->funcs[i]->func_id = static_cast<int>(i);
    }
    return prog;
  }

 private:
  // -- token plumbing -------------------------------------------------------

  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(int ahead = 1) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool at(Tok k) const { return cur().kind == k; }
  Token take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool accept(Tok k) {
    if (!at(k)) return false;
    take();
    return true;
  }
  Token expect(Tok k, const char* ctx) {
    if (at(k)) return take();
    error(std::string("expected ") + std::string(tok_name(k)) + " " + ctx +
          ", got " + std::string(tok_name(cur().kind)) +
          (cur().text.empty() ? "" : " '" + cur().text + "'"));
    return cur();
  }
  void error(const std::string& msg) { diags_->add(cur().line, msg); }

  /// Skip tokens until a likely statement boundary (error recovery).
  void synchronize() {
    while (!at(Tok::kEof) && !at(Tok::kSemi) && !at(Tok::kRBrace)) take();
    accept(Tok::kSemi);
  }

  // -- node factories -------------------------------------------------------

  ExprPtr make_expr(ExprKind k, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = k;
    e->node_id = next_node_id_++;
    e->line = line;
    return e;
  }
  StmtPtr make_stmt(StmtKind k, int line) {
    auto s = std::make_unique<Stmt>();
    s->kind = k;
    s->line = line;
    return s;
  }

  // -- types ----------------------------------------------------------------

  bool at_type_keyword() const {
    switch (cur().kind) {
      case Tok::kwVoid:
      case Tok::kwChar:
      case Tok::kwShort:
      case Tok::kwInt:
      case Tok::kwFloat:
      case Tok::kwConst:
        return true;
      default:
        return false;
    }
  }

  /// Parse base type keyword(s); `const` is accepted and ignored.
  Type parse_base_type() {
    while (accept(Tok::kwConst)) {
    }
    Type t;
    switch (cur().kind) {
      case Tok::kwVoid: t.base = BaseType::Void; break;
      case Tok::kwChar: t.base = BaseType::Char; break;
      case Tok::kwShort: t.base = BaseType::Short; break;
      case Tok::kwInt: t.base = BaseType::Int; break;
      case Tok::kwFloat: t.base = BaseType::Float; break;
      default:
        error("expected type name");
        return t;
    }
    take();
    while (accept(Tok::kwConst)) {
    }
    return t;
  }

  /// Parse '*'* pointer suffix onto a base type.
  Type parse_pointer_suffix(Type t) {
    while (accept(Tok::kStar)) {
      t.ptr++;
      while (accept(Tok::kwConst)) {
      }
    }
    return t;
  }

  // -- top level ------------------------------------------------------------

  void parse_top_level(Program* prog) {
    if (!at_type_keyword()) {
      error("expected declaration at top level");
      synchronize();
      return;
    }
    Type base = parse_base_type();
    Type full = parse_pointer_suffix(base);
    Token name = expect(Tok::kIdent, "in top-level declaration");
    if (at(Tok::kLParen)) {
      parse_function(prog, full, name);
    } else {
      parse_global_tail(prog, base, full, name);
    }
  }

  void parse_function(Program* prog, Type ret, const Token& name) {
    auto fn = std::make_unique<Function>();
    fn->name = name.text;
    fn->ret = ret;
    fn->line = name.line;
    expect(Tok::kLParen, "after function name");
    if (at(Tok::kwVoid) && peek().kind == Tok::kRParen) {
      take();
    } else if (!at(Tok::kRParen)) {
      do {
        Param p;
        Type pb = parse_base_type();
        p.type = parse_pointer_suffix(pb);
        Token pn = expect(Tok::kIdent, "in parameter list");
        p.name = pn.text;
        p.line = pn.line;
        p.node_id = next_node_id_++;
        if (accept(Tok::kLBracket)) {
          // Array parameters decay to pointers, as in C.
          if (at(Tok::kIntLit)) take();
          expect(Tok::kRBracket, "in array parameter");
          p.type.ptr++;
        }
        fn->params.push_back(std::move(p));
      } while (accept(Tok::kComma));
    }
    expect(Tok::kRParen, "after parameters");
    if (accept(Tok::kSemi)) return;  // prototype: ignored
    fn->body = parse_block();
    prog->funcs.push_back(std::move(fn));
  }

  void parse_global_tail(Program* prog, Type base, Type first_type,
                         const Token& first_name) {
    VarDecl d = parse_declarator_tail(first_type, first_name);
    prog->globals.push_back(std::move(d));
    while (accept(Tok::kComma)) {
      Type t = parse_pointer_suffix(base);
      Token n = expect(Tok::kIdent, "in declaration");
      prog->globals.push_back(parse_declarator_tail(t, n));
    }
    expect(Tok::kSemi, "after declaration");
  }

  /// Parses the "[N]? (= init)?" part of a declarator.
  VarDecl parse_declarator_tail(Type t, const Token& name) {
    VarDecl d;
    d.name = name.text;
    d.type = t;
    d.line = name.line;
    d.node_id = next_node_id_++;
    if (accept(Tok::kLBracket)) {
      Token len = expect(Tok::kIntLit, "as array length");
      d.array_len = static_cast<int>(len.int_val);
      expect(Tok::kRBracket, "after array length");
    }
    if (accept(Tok::kAssign)) {
      if (accept(Tok::kLBrace)) {
        if (!at(Tok::kRBrace)) {
          do {
            d.init_list.push_back(parse_assignment());
          } while (accept(Tok::kComma) && !at(Tok::kRBrace));
        }
        expect(Tok::kRBrace, "after initializer list");
      } else {
        d.init = parse_assignment();
      }
    }
    return d;
  }

  // -- statements -----------------------------------------------------------

  StmtPtr parse_block() {
    auto s = make_stmt(StmtKind::Block, cur().line);
    expect(Tok::kLBrace, "to open block");
    while (!at(Tok::kRBrace) && !at(Tok::kEof)) {
      if (diags_->size() > 50) break;
      s->stmts.push_back(parse_stmt());
    }
    expect(Tok::kRBrace, "to close block");
    return s;
  }

  StmtPtr parse_decl_stmt() {
    auto s = make_stmt(StmtKind::Decl, cur().line);
    Type base = parse_base_type();
    do {
      Type t = parse_pointer_suffix(base);
      Token n = expect(Tok::kIdent, "in declaration");
      s->decls.push_back(parse_declarator_tail(t, n));
    } while (accept(Tok::kComma));
    expect(Tok::kSemi, "after declaration");
    return s;
  }

  StmtPtr parse_stmt() {
    int line = cur().line;
    switch (cur().kind) {
      case Tok::kLBrace:
        return parse_block();
      case Tok::kSemi:
        take();
        return make_stmt(StmtKind::Empty, line);
      case Tok::kwIf: {
        take();
        auto s = make_stmt(StmtKind::If, line);
        expect(Tok::kLParen, "after 'if'");
        s->cond = parse_expr();
        expect(Tok::kRParen, "after if condition");
        s->then_branch = parse_stmt();
        if (accept(Tok::kwElse)) s->else_branch = parse_stmt();
        return s;
      }
      case Tok::kwWhile: {
        take();
        auto s = make_stmt(StmtKind::While, line);
        expect(Tok::kLParen, "after 'while'");
        s->cond = parse_expr();
        expect(Tok::kRParen, "after while condition");
        s->body = parse_stmt();
        return s;
      }
      case Tok::kwDo: {
        take();
        auto s = make_stmt(StmtKind::DoWhile, line);
        s->body = parse_stmt();
        expect(Tok::kwWhile, "after do body");
        expect(Tok::kLParen, "after 'while'");
        s->cond = parse_expr();
        expect(Tok::kRParen, "after do-while condition");
        expect(Tok::kSemi, "after do-while");
        return s;
      }
      case Tok::kwFor: {
        take();
        auto s = make_stmt(StmtKind::For, line);
        expect(Tok::kLParen, "after 'for'");
        if (at(Tok::kSemi)) {
          take();
          s->init = make_stmt(StmtKind::Empty, line);
        } else if (at_type_keyword()) {
          s->init = parse_decl_stmt();
        } else {
          auto init = make_stmt(StmtKind::Expr, cur().line);
          init->expr = parse_expr();
          expect(Tok::kSemi, "after for initializer");
          s->init = std::move(init);
        }
        if (!at(Tok::kSemi)) s->cond = parse_expr();
        expect(Tok::kSemi, "after for condition");
        if (!at(Tok::kRParen)) s->step = parse_expr();
        expect(Tok::kRParen, "after for clauses");
        s->body = parse_stmt();
        return s;
      }
      case Tok::kwReturn: {
        take();
        auto s = make_stmt(StmtKind::Return, line);
        if (!at(Tok::kSemi)) s->expr = parse_expr();
        expect(Tok::kSemi, "after return");
        return s;
      }
      case Tok::kwBreak: {
        take();
        expect(Tok::kSemi, "after break");
        return make_stmt(StmtKind::Break, line);
      }
      case Tok::kwContinue: {
        take();
        expect(Tok::kSemi, "after continue");
        return make_stmt(StmtKind::Continue, line);
      }
      default:
        if (at_type_keyword()) return parse_decl_stmt();
        {
          auto s = make_stmt(StmtKind::Expr, line);
          s->expr = parse_expr();
          expect(Tok::kSemi, "after expression");
          if (diags_->size() > 0 && !at(Tok::kEof) && s->expr == nullptr) {
            synchronize();
          }
          return s;
        }
    }
  }

  // -- expressions ----------------------------------------------------------

  ExprPtr parse_expr() { return parse_assignment(); }

  static bool is_assign_op(Tok k) {
    switch (k) {
      case Tok::kAssign:
      case Tok::kPlusEq:
      case Tok::kMinusEq:
      case Tok::kStarEq:
      case Tok::kSlashEq:
      case Tok::kPercentEq:
      case Tok::kAmpEq:
      case Tok::kPipeEq:
      case Tok::kCaretEq:
      case Tok::kShlEq:
      case Tok::kShrEq:
        return true;
      default:
        return false;
    }
  }

  static AssignOp to_assign_op(Tok k) {
    switch (k) {
      case Tok::kAssign: return AssignOp::Assign;
      case Tok::kPlusEq: return AssignOp::AddA;
      case Tok::kMinusEq: return AssignOp::SubA;
      case Tok::kStarEq: return AssignOp::MulA;
      case Tok::kSlashEq: return AssignOp::DivA;
      case Tok::kPercentEq: return AssignOp::ModA;
      case Tok::kShlEq: return AssignOp::ShlA;
      case Tok::kShrEq: return AssignOp::ShrA;
      case Tok::kAmpEq: return AssignOp::AndA;
      case Tok::kPipeEq: return AssignOp::OrA;
      case Tok::kCaretEq: return AssignOp::XorA;
      default: return AssignOp::Assign;
    }
  }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_conditional();
    if (is_assign_op(cur().kind)) {
      Token op = take();
      auto e = make_expr(ExprKind::Assign, op.line);
      e->as_op = to_assign_op(op.kind);
      e->a = std::move(lhs);
      e->b = parse_assignment();
      return e;
    }
    return lhs;
  }

  ExprPtr parse_conditional() {
    ExprPtr cond = parse_binary(0);
    if (at(Tok::kQuestion)) {
      Token q = take();
      auto e = make_expr(ExprKind::Cond, q.line);
      e->a = std::move(cond);
      e->b = parse_expr();
      expect(Tok::kColon, "in conditional expression");
      e->c = parse_conditional();
      return e;
    }
    return cond;
  }

  struct BinOpInfo {
    BinaryOp op;
    int prec;
  };

  static bool binop_info(Tok k, BinOpInfo* out) {
    switch (k) {
      case Tok::kPipePipe: *out = {BinaryOp::LogOr, 1}; return true;
      case Tok::kAmpAmp: *out = {BinaryOp::LogAnd, 2}; return true;
      case Tok::kPipe: *out = {BinaryOp::BitOr, 3}; return true;
      case Tok::kCaret: *out = {BinaryOp::BitXor, 4}; return true;
      case Tok::kAmp: *out = {BinaryOp::BitAnd, 5}; return true;
      case Tok::kEqEq: *out = {BinaryOp::Eq, 6}; return true;
      case Tok::kNe: *out = {BinaryOp::Ne, 6}; return true;
      case Tok::kLt: *out = {BinaryOp::Lt, 7}; return true;
      case Tok::kGt: *out = {BinaryOp::Gt, 7}; return true;
      case Tok::kLe: *out = {BinaryOp::Le, 7}; return true;
      case Tok::kGe: *out = {BinaryOp::Ge, 7}; return true;
      case Tok::kShl: *out = {BinaryOp::Shl, 8}; return true;
      case Tok::kShr: *out = {BinaryOp::Shr, 8}; return true;
      case Tok::kPlus: *out = {BinaryOp::Add, 9}; return true;
      case Tok::kMinus: *out = {BinaryOp::Sub, 9}; return true;
      case Tok::kStar: *out = {BinaryOp::Mul, 10}; return true;
      case Tok::kSlash: *out = {BinaryOp::Div, 10}; return true;
      case Tok::kPercent: *out = {BinaryOp::Mod, 10}; return true;
      default: return false;
    }
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      BinOpInfo info;
      if (!binop_info(cur().kind, &info) || info.prec < min_prec) return lhs;
      Token op = take();
      ExprPtr rhs = parse_binary(info.prec + 1);
      auto e = make_expr(ExprKind::Binary, op.line);
      e->bin_op = info.op;
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      lhs = std::move(e);
    }
  }

  bool at_cast() const {
    if (!at(Tok::kLParen)) return false;
    switch (peek().kind) {
      case Tok::kwVoid:
      case Tok::kwChar:
      case Tok::kwShort:
      case Tok::kwInt:
      case Tok::kwFloat:
      case Tok::kwConst:
        return true;
      default:
        return false;
    }
  }

  ExprPtr parse_unary() {
    int line = cur().line;
    if (at_cast()) {
      take();  // '('
      Type t = parse_pointer_suffix(parse_base_type());
      expect(Tok::kRParen, "after cast type");
      auto e = make_expr(ExprKind::Cast, line);
      e->cast_type = t;
      e->a = parse_unary();
      return e;
    }
    UnaryOp op;
    switch (cur().kind) {
      case Tok::kMinus: op = UnaryOp::Neg; break;
      case Tok::kBang: op = UnaryOp::Not; break;
      case Tok::kTilde: op = UnaryOp::BitNot; break;
      case Tok::kStar: op = UnaryOp::Deref; break;
      case Tok::kAmp: op = UnaryOp::AddrOf; break;
      case Tok::kPlusPlus: op = UnaryOp::PreInc; break;
      case Tok::kMinusMinus: op = UnaryOp::PreDec; break;
      case Tok::kPlus: {
        take();
        return parse_unary();  // unary plus is a no-op
      }
      default:
        return parse_postfix();
    }
    take();
    auto e = make_expr(ExprKind::Unary, line);
    e->un_op = op;
    e->a = parse_unary();
    return e;
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    for (;;) {
      int line = cur().line;
      if (at(Tok::kLParen) && e && e->kind == ExprKind::Ident) {
        take();
        auto call = make_expr(ExprKind::Call, line);
        call->name = e->name;
        if (!at(Tok::kRParen)) {
          do {
            call->args.push_back(parse_assignment());
          } while (accept(Tok::kComma));
        }
        expect(Tok::kRParen, "after call arguments");
        e = std::move(call);
      } else if (accept(Tok::kLBracket)) {
        auto idx = make_expr(ExprKind::Index, line);
        idx->a = std::move(e);
        idx->b = parse_expr();
        expect(Tok::kRBracket, "after array index");
        e = std::move(idx);
      } else if (at(Tok::kPlusPlus) || at(Tok::kMinusMinus)) {
        Token op = take();
        auto u = make_expr(ExprKind::Unary, line);
        u->un_op = op.kind == Tok::kPlusPlus ? UnaryOp::PostInc
                                             : UnaryOp::PostDec;
        u->a = std::move(e);
        e = std::move(u);
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_primary() {
    int line = cur().line;
    switch (cur().kind) {
      case Tok::kIntLit: {
        Token t = take();
        auto e = make_expr(ExprKind::IntLit, line);
        e->int_val = t.int_val;
        return e;
      }
      case Tok::kCharLit: {
        Token t = take();
        auto e = make_expr(ExprKind::IntLit, line);
        e->int_val = t.int_val;
        return e;
      }
      case Tok::kFloatLit: {
        Token t = take();
        auto e = make_expr(ExprKind::FloatLit, line);
        e->float_val = t.float_val;
        return e;
      }
      case Tok::kStrLit: {
        Token t = take();
        auto e = make_expr(ExprKind::StrLit, line);
        e->str_val = t.str_val;
        return e;
      }
      case Tok::kIdent: {
        Token t = take();
        auto e = make_expr(ExprKind::Ident, line);
        e->name = t.text;
        return e;
      }
      case Tok::kLParen: {
        take();
        ExprPtr e = parse_expr();
        expect(Tok::kRParen, "after parenthesized expression");
        return e;
      }
      default:
        error(std::string("expected expression, got ") +
              std::string(tok_name(cur().kind)));
        take();
        return make_expr(ExprKind::IntLit, line);
    }
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  util::DiagList* diags_;
  int next_node_id_ = 0;
};

}  // namespace

std::unique_ptr<Program> parse_program(std::string_view source,
                                       util::DiagList* diags) {
  Lexer lexer(source, diags);
  std::vector<Token> tokens = lexer.lex_all();
  Parser parser(std::move(tokens), diags);
  auto prog = parser.parse();
  prog->source_lines = util::count_lines(source);
  return prog;
}

std::unique_ptr<Program> parse_and_check(std::string_view source,
                                         util::DiagList* diags) {
  auto prog = parse_program(source, diags);
  if (!diags->empty()) return nullptr;
  run_sema(prog.get(), diags);
  if (!diags->empty()) return nullptr;
  return prog;
}

}  // namespace foray::minic
