// Pretty-printer: renders a MiniC AST back to compilable source text.
//
// With `annotate_checkpoints` enabled it renders the checkpoint-annotated
// view of the program the paper shows in Figure 4(b): CHECKPOINT(...)
// pseudo-calls around every loop, using the loop ids assigned by the
// instrumentation pass.
#pragma once

#include <string>

#include "minic/ast.h"

namespace foray::minic {

struct PrintOptions {
  bool annotate_checkpoints = false;
  int indent_width = 2;
};

std::string print_program(const Program& prog, const PrintOptions& opts = {});
std::string print_expr(const Expr& e);

}  // namespace foray::minic
