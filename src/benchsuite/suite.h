// The benchmark suite: six MiniC programs structurally modeled on the
// MiBench applications the paper evaluates (jpeg, lame, susan, fft, gsm,
// adpcm).
//
// MiBench itself is tens of thousands of lines of host C; these programs
// are scaled-down substitutes that preserve the properties the paper's
// tables measure: the loop-form mix (for/while/do), the idioms that
// defeat static analysis (pointer walks, data-dependent offsets,
// multi-context functions), the system-library traffic, and the
// concentration of accesses into few references. Each benchmark carries
// the paper's reported numbers so the bench binaries can print
// paper-vs-measured side by side (see DESIGN.md §2 for the substitution
// rationale).
#pragma once

#include <string>
#include <vector>

namespace foray::benchsuite {

/// Paper-reported values for one MiBench application (Tables I-III).
struct PaperRow {
  int lines = 0;
  int loops = 0;
  int pct_for = 0;
  int pct_while = 0;
  int pct_do = 0;
  // Table II.
  int model_loops = 0;
  int model_refs = 0;
  int pct_loops_not_foray = 0;
  int pct_refs_not_foray = 0;
  // Table III (percent shares; footprints of the three buckets may
  // overlap).
  double total_refs = 0;
  double total_accesses = 0;   ///< absolute
  double total_footprint = 0;  ///< absolute
  double model_ref_pct = 0, model_access_pct = 0, model_fp_pct = 0;
  double sys_ref_pct = 0, sys_access_pct = 0, sys_fp_pct = 0;
  double other_fp_pct = 0;
};

struct Benchmark {
  std::string name;         ///< "jpeg"
  std::string description;  ///< what the kernel models
  std::string source;       ///< MiniC program text
  PaperRow paper;
};

/// All six benchmarks, in the paper's table order.
const std::vector<Benchmark>& all_benchmarks();

/// Lookup by name; throws util::InternalError for unknown names.
const Benchmark& get_benchmark(const std::string& name);

// Individual accessors (defined one per translation unit).
const Benchmark& jpeg_like();
const Benchmark& lame_like();
const Benchmark& susan_like();
const Benchmark& fft_like();
const Benchmark& gsm_like();
const Benchmark& adpcm_like();

}  // namespace foray::benchsuite
