// susan-like: image recognition (smoothing + corner response).
//
// Models susan's structure: a brightness lookup table, 3x3 mask
// smoothing over a small image with canonical subscripts, and
// edge/corner scanning passes written as pointer walks inside while
// loops (the statically-opaque majority of its loops).
#include "benchsuite/suite.h"

namespace foray::benchsuite {

namespace {

const char* kSource = R"(// susan-like image recognition kernel (MiniC)
int img[4256];      // 76 x 56
int smooth[4256];
int response[4256];
int corners[256];
int bright_lut[516];
int n_corners;

int main(void) {
  int x;
  int y;
  int i;
  int dx;
  int dy;

  // Brightness LUT (canonical).
  for (i = 0; i < 516; i++) {
    int d = i - 258;
    bright_lut[i] = 100 / (1 + (d * d) / 120);
  }

  // Synthetic input image.
  for (y = 0; y < 56; y++) {
    for (x = 0; x < 76; x++) {
      img[y * 76 + x] = (((x * x + y * y) >> 3) + rand() % 32) & 255;
    }
  }

  // Clear the response planes through the system library.
  memset(response, 0, 17024);
  memset(smooth, 0, 17024);

  // 3x3 smoothing with canonical, statically-affine subscripts.
  for (y = 1; y < 55; y++) {
    for (x = 1; x < 75; x++) {
      int acc = 0;
      for (dy = 0; dy < 3; dy++) {
        for (dx = 0; dx < 3; dx++) {
          acc += img[(y + dy - 1) * 76 + (x + dx - 1)];
        }
      }
      smooth[y * 76 + x] = acc / 9;
    }
  }

  // USAN response via pointer walk (statically opaque while loop).
  {
    int *p = smooth + 77;
    int *r = response + 77;
    int n = 4256 - 154;
    while (n > 0) {
      int c = *p;
      int usan = bright_lut[258 + c - p[-1]] + bright_lut[258 + c - p[1]] +
                 bright_lut[258 + c - p[-76]] + bright_lut[258 + c - p[76]];
      *r = usan;
      p++;
      r++;
      n--;
    }
  }

  // Corner collection: second walking scan.
  n_corners = 0;
  {
    int *r = response + 77;
    int remaining = 4256 - 154;
    while (remaining > 0) {
      if (*r > 360 && n_corners < 256) {
        corners[n_corners] = 4256 - 77 - remaining;
        n_corners++;
      }
      r++;
      remaining--;
    }
  }

  {
    int check = 0;
    for (i = 0; i < 4256; i++) {
      check += smooth[i] + response[i];
    }
    printf("susan-like: corners=%d check=%d\n", n_corners, check & 65535);
  }
  return 0;
}
)";

}  // namespace

const Benchmark& susan_like() {
  static const Benchmark kBench = [] {
    Benchmark b;
    b.name = "susan";
    b.description = "image recognition: LUT smoothing with canonical "
                    "subscripts, USAN response and corner scan as pointer "
                    "walks in while loops";
    b.source = kSource;
    b.paper = PaperRow{
        .lines = 2173, .loops = 14,
        .pct_for = 79, .pct_while = 21, .pct_do = 0,
        .model_loops = 9, .model_refs = 10,
        .pct_loops_not_foray = 78, .pct_refs_not_foray = 50,
        .total_refs = 1162, .total_accesses = 5.0e6,
        .total_footprint = 24778,
        .model_ref_pct = 1, .model_access_pct = 66, .model_fp_pct = 72,
        .sys_ref_pct = 85, .sys_access_pct = 1, .sys_fp_pct = 47,
        .other_fp_pct = 1};
    return b;
  }();
  return kBench;
}

}  // namespace foray::benchsuite
