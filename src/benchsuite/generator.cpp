#include "benchsuite/generator.h"

#include <sstream>

#include "util/status.h"

namespace foray::benchsuite {

namespace {

/// Renders "base + c0*i0 - c1*i1 ..." skipping zero terms.
std::string index_expr(int64_t base, const std::vector<int64_t>& coefs,
                       int nest_id) {
  std::ostringstream os;
  os << base;
  for (size_t k = 0; k < coefs.size(); ++k) {
    if (coefs[k] == 0) continue;
    os << (coefs[k] > 0 ? " + " : " - ")
       << (coefs[k] > 0 ? coefs[k] : -coefs[k]) << " * i" << nest_id << "_"
       << k;
  }
  return os.str();
}

std::string ind(int depth) { return std::string(2 * (depth + 1), ' '); }

}  // namespace

GeneratedProgram generate_affine_program(const GeneratorOptions& opts) {
  util::Rng rng(opts.seed);
  GeneratedProgram out;
  std::ostringstream decls, body;

  for (int n = 0; n < opts.num_nests; ++n) {
    ExpectedNest nest;
    nest.array_name = "A" + std::to_string(n);

    const int depth = static_cast<int>(rng.next_in(1, opts.max_depth));
    for (int k = 0; k < depth; ++k) {
      nest.trips.push_back(rng.next_in(opts.min_trip, opts.max_trip));
      // Innermost coefficient stays non-zero so the reference has an
      // effective iterator (passes the Step 4 regularity condition).
      int64_t c = rng.next_in(-opts.max_coef, opts.max_coef);
      if (k == depth - 1 && c == 0) c = 1 + rng.next_in(0, opts.max_coef - 1);
      nest.elem_coefs.push_back(c);
    }

    // Base offset keeps every index non-negative; array length covers
    // the maximal index.
    int64_t min_off = 0, max_off = 0;
    for (int k = 0; k < depth; ++k) {
      const int64_t reach = nest.elem_coefs[k] * (nest.trips[k] - 1);
      if (reach < 0) {
        min_off += reach;
      } else {
        max_off += reach;
      }
    }
    nest.elem_base = -min_off;
    const int64_t len = nest.elem_base + max_off + 1;
    decls << "int " << nest.array_name << "[" << len << "];\n";

    // Pick a surface syntax.
    std::vector<NestStyle> styles = {NestStyle::Subscript};
    if (opts.allow_pointer_for) styles.push_back(NestStyle::PointerFor);
    if (opts.allow_pointer_while) styles.push_back(NestStyle::PointerWhile);
    nest.style = styles[rng.next_below(styles.size())];

    body << "  // nest " << n << "\n";
    body << "  {\n";
    const bool pointer = nest.style != NestStyle::Subscript;
    if (pointer) {
      body << ind(0) << "int *p" << n << " = " << nest.array_name << " + "
           << nest.elem_base << ";\n";
    }
    // Open loops.
    for (int k = 0; k < depth; ++k) {
      const std::string iv = "i" + std::to_string(n) + "_" +
                             std::to_string(k);
      if (nest.style == NestStyle::PointerWhile) {
        body << ind(k) << "int " << iv << " = 0;\n";
        body << ind(k) << "while (" << iv << " < " << nest.trips[k]
             << ") {\n";
      } else {
        body << ind(k) << "for (int " << iv << " = 0; " << iv << " < "
             << nest.trips[k] << "; " << iv << "++) {\n";
      }
    }
    // Innermost body.
    if (pointer) {
      body << ind(depth) << "*p" << n << " = i" << n << "_" << (depth - 1)
           << " & 127;\n";
      body << ind(depth) << "p" << n << " += "
           << nest.elem_coefs[depth - 1] << ";\n";
    } else {
      body << ind(depth) << nest.array_name << "["
           << index_expr(nest.elem_base, nest.elem_coefs, n) << "] = i" << n
           << "_" << (depth - 1) << " & 127;\n";
    }
    // Close loops with pointer re-adjustments between levels.
    for (int k = depth - 1; k >= 0; --k) {
      if (nest.style == NestStyle::PointerWhile) {
        body << ind(k + 1) << "i" << n << "_" << k << "++;\n";
      }
      body << ind(k) << "}\n";
      if (pointer && k > 0) {
        // Stepping i_{k-1} by one while i_k rewinds from trips[k] to 0.
        const int64_t adj = nest.elem_coefs[k - 1] -
                            nest.elem_coefs[k] * nest.trips[k];
        if (adj != 0) {
          body << ind(k - 1) << "p" << n << " += " << adj << ";\n";
        }
      }
    }
    body << "  }\n";
    out.nests.push_back(std::move(nest));
  }

  std::ostringstream src;
  src << "// auto-generated affine program (seed " << opts.seed << ")\n";
  src << decls.str();
  src << "int main(void) {\n" << body.str() << "  return 0;\n}\n";
  out.source = src.str();
  return out;
}

// ---------------------------------------------------------------------------
// Stress programs

namespace {

/// Emits a random but by-construction safe MiniC program: every loop is
/// counter-bounded, every index masked into its (power-of-two-sized)
/// array, every divisor forced odd, recursion depth masked small. The
/// result has no ground truth; it exists to drive the two execution
/// engines over the same wide slice of the language.
class StressGen {
 public:
  explicit StressGen(const StressOptions& opts)
      : opts_(opts), rng_(opts.seed ^ 0x5741c0de) {}

  std::string run() {
    std::ostringstream src;
    src << "// auto-generated stress program (seed " << opts_.seed << ")\n";
    src << "int GA[32];\nint GB[32];\nchar GC8[64];\n";
    src << "int GS = " << rng_.next_in(-9, 9) << ";\nfloat GF;\n";
    src << "char GC;\nshort GH = " << rng_.next_in(-300, 300) << ";\n";

    // A bounded-recursion helper plus expression helpers.
    src << "int rec0(int n) {\n"
           "  if (n <= 0) return 1;\n"
           "  return rec0(n - 1) + (n & 7);\n"
           "}\n";
    for (int h = 0; h < opts_.num_helpers; ++h) {
      push_scope();
      locals_.back().push_back("a");
      locals_.back().push_back("b");
      std::ostringstream body;
      body << "  GS " << pick_compound_op() << " " << expr(1) << ";\n";
      body << "  return " << expr(2) << ";\n";
      pop_scope();
      src << "int h" << h << "(int a, int b) {\n" << body.str() << "}\n";
    }
    helpers_ready_ = true;

    src << "int main(void) {\n";
    push_scope();
    for (int i = 0; i < opts_.num_stmts; ++i) src << stmt(1);
    src << "  printf(\"%d %d %f\\n\", GS, GA[" << rng_.next_in(0, 31)
        << "], GF);\n";
    src << "  return GS & 127;\n";
    pop_scope();
    src << "}\n";
    return src.str();
  }

 private:
  std::string ind(int depth) { return std::string(2 * depth, ' '); }

  void push_scope() {
    locals_.emplace_back();
    loop_vars_.emplace_back();
  }
  void pop_scope() {
    locals_.pop_back();
    loop_vars_.pop_back();
  }

  std::string fresh_local() { return "l" + std::to_string(next_local_++); }

  /// A random int scalar currently in scope (globals always qualify;
  /// loop counters are readable but never assignable, which is what
  /// keeps every generated loop provably terminating).
  std::string scalar() {
    std::vector<std::string> pool = {"GS", "(int)GC", "GH"};
    for (const auto& scope : locals_)
      for (const auto& name : scope) pool.push_back(name);
    for (const auto& scope : loop_vars_)
      for (const auto& name : scope) pool.push_back(name);
    return pool[rng_.next_below(pool.size())];
  }

  /// A scalar lvalue (assignable — excludes loop counters).
  std::string scalar_lvalue() {
    std::vector<std::string> pool = {"GS", "GC", "GH"};
    for (const auto& scope : locals_)
      for (const auto& name : scope) pool.push_back(name);
    return pool[rng_.next_below(pool.size())];
  }

  std::string pick_compound_op() {
    static const char* kOps[] = {"+=", "-=", "*=", "^=", "|=", "&="};
    return kOps[rng_.next_below(6)];
  }

  std::string array_ref(int depth) {
    const char* arr = rng_.next_bool() ? "GA" : "GB";
    return std::string(arr) + "[(" + expr(depth) + ") & 31]";
  }

  /// Random int-valued expression, depth-bounded.
  std::string expr(int depth) {
    if (depth >= opts_.max_expr_depth) {
      switch (rng_.next_below(3)) {
        case 0: return std::to_string(rng_.next_in(-9, 99));
        case 1: return scalar();
        default: return array_ref(depth + 1);
      }
    }
    switch (rng_.next_below(12)) {
      case 0: return std::to_string(rng_.next_in(-99, 999));
      case 1: return scalar();
      case 2: return array_ref(depth + 1);
      case 3: {  // arithmetic; divisors forced odd so they cannot be zero
        static const char* kOps[] = {"+", "-", "*", "&", "|", "^",
                                     "<<", ">>"};
        if (rng_.next_bool(0.25)) {
          const char* op = rng_.next_bool() ? "/" : "%";
          return "(" + expr(depth + 1) + " " + op + " ((" +
                 expr(depth + 1) + ") | 1))";
        }
        return "(" + expr(depth + 1) + " " + kOps[rng_.next_below(8)] +
               " " + expr(depth + 1) + ")";
      }
      case 4: {  // comparisons / logical with side-effect-bearing operands
        static const char* kOps[] = {"<", ">", "<=", ">=", "==", "!=",
                                     "&&", "||"};
        return "(" + expr(depth + 1) + " " + kOps[rng_.next_below(8)] +
               " " + expr(depth + 1) + ")";
      }
      case 5:
        return "(" + expr(depth + 1) + " ? " + expr(depth + 1) + " : " +
               expr(depth + 1) + ")";
      case 6: {
        static const char* kOps[] = {"-", "!", "~"};
        return std::string(kOps[rng_.next_below(3)]) + "(" +
               expr(depth + 1) + ")";
      }
      case 7:  // assignment as an expression
        return "(" + scalar_lvalue() + " = " + expr(depth + 1) + ")";
      case 8: {  // pre/post increment of a scalar
        const std::string v = scalar_lvalue();
        static const char* kForms[] = {"++%s", "--%s", "%s++", "%s--"};
        char buf[64];
        std::snprintf(buf, sizeof buf, kForms[rng_.next_below(4)],
                      v.c_str());
        return std::string("(") + buf + ")";
      }
      case 9:
        if (helpers_ready_ && opts_.num_helpers > 0) {
          return "h" +
                 std::to_string(rng_.next_below(
                     static_cast<uint64_t>(opts_.num_helpers))) +
                 "(" + expr(depth + 1) + ", " + expr(depth + 1) + ")";
        }
        return scalar();
      case 10:
        if (helpers_ready_) {
          return "rec0((" + expr(depth + 1) + ") & 7)";
        }
        return std::to_string(rng_.next_in(0, 63));
      default:
        switch (rng_.next_below(3)) {
          case 0: return "(rand() & 255)";
          case 1: return "abs(" + expr(depth + 1) + ")";
          default: return "(int)(GF * " +
                          std::to_string(rng_.next_in(1, 7)) + ".0f)";
        }
    }
  }

  std::string stmt(int depth) {
    std::ostringstream os;
    const std::string pad = ind(depth);
    if (depth >= 4) {  // keep nesting bounded
      os << pad << array_ref(1) << " = " << expr(1) << ";\n";
      return os.str();
    }
    switch (rng_.next_below(12)) {
      case 0: {  // fresh scalar declaration
        const std::string name = fresh_local();
        os << pad << "int " << name << " = " << expr(1) << ";\n";
        locals_.back().push_back(name);
        break;
      }
      case 1:
        os << pad << array_ref(1) << " " << pick_compound_op() << " "
           << expr(1) << ";\n";
        break;
      case 2:
        os << pad << scalar_lvalue() << " = " << expr(1) << ";\n";
        break;
      case 3: {  // if / else (each branch scopes its declarations)
        os << pad << "if (" << expr(1) << ") {\n";
        push_scope();
        os << stmt(depth + 1);
        pop_scope();
        os << pad << "} else {\n";
        push_scope();
        os << stmt(depth + 1);
        pop_scope();
        os << pad << "}\n";
        break;
      }
      case 4: {  // forward for loop
        const std::string iv = fresh_local();
        const int64_t trip = rng_.next_in(3, 8);
        os << pad << "for (int " << iv << " = 0; " << iv << " < " << trip
           << "; " << iv << "++) {\n";
        push_scope();
        loop_vars_.back().push_back(iv);
        if (rng_.next_bool(0.3)) {
          os << ind(depth + 1) << "if ((" << iv << " & 3) == 1) "
             << (rng_.next_bool() ? "continue" : "break") << ";\n";
        }
        os << stmt(depth + 1);
        pop_scope();
        os << pad << "}\n";
        break;
      }
      case 5: {  // negative-stride for loop
        const std::string iv = fresh_local();
        const int64_t from = rng_.next_in(5, 12);
        const int64_t stride = rng_.next_in(1, 3);
        os << pad << "for (int " << iv << " = " << from << "; " << iv
           << " >= 0; " << iv << " -= " << stride << ") {\n";
        push_scope();
        loop_vars_.back().push_back(iv);
        os << stmt(depth + 1);
        pop_scope();
        os << pad << "}\n";
        break;
      }
      case 6: {  // while with countdown
        const std::string iv = fresh_local();
        os << pad << "{\n";
        push_scope();
        os << ind(depth + 1) << "int " << iv << " = "
           << rng_.next_in(2, 6) << ";\n";
        loop_vars_.back().push_back(iv);
        os << ind(depth + 1) << "while (" << iv << " > 0) {\n";
        os << stmt(depth + 2);
        os << ind(depth + 2) << iv << "--;\n";
        os << ind(depth + 1) << "}\n";
        pop_scope();
        os << pad << "}\n";
        break;
      }
      case 7: {  // do-while
        const std::string iv = fresh_local();
        os << pad << "{\n";
        push_scope();
        os << ind(depth + 1) << "int " << iv << " = 0;\n";
        loop_vars_.back().push_back(iv);
        os << ind(depth + 1) << "do {\n";
        os << stmt(depth + 2);
        os << ind(depth + 2) << iv << "++;\n";
        os << ind(depth + 1) << "} while (" << iv << " < "
           << rng_.next_in(2, 5) << ");\n";
        pop_scope();
        os << pad << "}\n";
        break;
      }
      case 8: {  // pointer walk over a global array
        const std::string pv = fresh_local();
        const std::string iv = fresh_local();
        const char* arr = rng_.next_bool() ? "GA" : "GB";
        const int64_t steps = rng_.next_in(4, 16);
        os << pad << "{\n";
        os << ind(depth + 1) << "int *" << pv << " = " << arr << ";\n";
        os << ind(depth + 1) << "for (int " << iv << " = 0; " << iv
           << " < " << steps << "; " << iv << "++) {\n";
        os << ind(depth + 2) << "*" << pv << " += " << iv << " + "
           << rng_.next_in(0, 9) << ";\n";
        os << ind(depth + 2) << pv << "++;\n";
        os << ind(depth + 1) << "}\n";
        os << pad << "}\n";
        break;
      }
      case 9:  // float updates feed back into integer state
        os << pad << "GF = GF * 0.5f + (float)((" << expr(1)
           << ") & 15) + " << rng_.next_in(0, 3) << "."
           << rng_.next_in(0, 9) << "f;\n";
        break;
      case 10: {  // intrinsic traffic
        switch (rng_.next_below(4)) {
          case 0:
            os << pad << "srand(" << rng_.next_in(0, 255) << ");\n";
            break;
          case 1:
            os << pad << "memset(GC8, " << rng_.next_in(0, 255) << ", "
               << rng_.next_in(1, 32) << ");\n";
            break;
          case 2:
            os << pad << "memcpy(GC8 + 32, GC8, " << rng_.next_in(1, 16)
               << ");\n";
            break;
          default:
            os << pad << "putchar(65 + ((" << expr(2) << ") & 15));\n";
        }
        break;
      }
      default: {  // nested block with shadowing declaration
        os << pad << "{\n";
        push_scope();
        const std::string name = fresh_local();
        os << ind(depth + 1) << "int " << name << " = " << expr(1)
           << ";\n";
        locals_.back().push_back(name);
        os << stmt(depth + 1);
        os << ind(depth + 1) << "GS += " << name << ";\n";
        pop_scope();
        os << pad << "}\n";
        break;
      }
    }
    return os.str();
  }

  const StressOptions& opts_;
  util::Rng rng_;
  std::vector<std::vector<std::string>> locals_;
  /// Loop counters per scope: readable like locals, never assignable.
  std::vector<std::vector<std::string>> loop_vars_;
  int next_local_ = 0;
  bool helpers_ready_ = false;
};

}  // namespace

std::string generate_stress_program(const StressOptions& opts) {
  return StressGen(opts).run();
}

}  // namespace foray::benchsuite
