#include "benchsuite/generator.h"

#include <sstream>

#include "util/status.h"

namespace foray::benchsuite {

namespace {

/// Renders "base + c0*i0 - c1*i1 ..." skipping zero terms.
std::string index_expr(int64_t base, const std::vector<int64_t>& coefs,
                       int nest_id) {
  std::ostringstream os;
  os << base;
  for (size_t k = 0; k < coefs.size(); ++k) {
    if (coefs[k] == 0) continue;
    os << (coefs[k] > 0 ? " + " : " - ")
       << (coefs[k] > 0 ? coefs[k] : -coefs[k]) << " * i" << nest_id << "_"
       << k;
  }
  return os.str();
}

std::string ind(int depth) { return std::string(2 * (depth + 1), ' '); }

}  // namespace

GeneratedProgram generate_affine_program(const GeneratorOptions& opts) {
  util::Rng rng(opts.seed);
  GeneratedProgram out;
  std::ostringstream decls, body;

  for (int n = 0; n < opts.num_nests; ++n) {
    ExpectedNest nest;
    nest.array_name = "A" + std::to_string(n);

    const int depth = static_cast<int>(rng.next_in(1, opts.max_depth));
    for (int k = 0; k < depth; ++k) {
      nest.trips.push_back(rng.next_in(opts.min_trip, opts.max_trip));
      // Innermost coefficient stays non-zero so the reference has an
      // effective iterator (passes the Step 4 regularity condition).
      int64_t c = rng.next_in(-opts.max_coef, opts.max_coef);
      if (k == depth - 1 && c == 0) c = 1 + rng.next_in(0, opts.max_coef - 1);
      nest.elem_coefs.push_back(c);
    }

    // Base offset keeps every index non-negative; array length covers
    // the maximal index.
    int64_t min_off = 0, max_off = 0;
    for (int k = 0; k < depth; ++k) {
      const int64_t reach = nest.elem_coefs[k] * (nest.trips[k] - 1);
      if (reach < 0) {
        min_off += reach;
      } else {
        max_off += reach;
      }
    }
    nest.elem_base = -min_off;
    const int64_t len = nest.elem_base + max_off + 1;
    decls << "int " << nest.array_name << "[" << len << "];\n";

    // Pick a surface syntax.
    std::vector<NestStyle> styles = {NestStyle::Subscript};
    if (opts.allow_pointer_for) styles.push_back(NestStyle::PointerFor);
    if (opts.allow_pointer_while) styles.push_back(NestStyle::PointerWhile);
    nest.style = styles[rng.next_below(styles.size())];

    body << "  // nest " << n << "\n";
    body << "  {\n";
    const bool pointer = nest.style != NestStyle::Subscript;
    if (pointer) {
      body << ind(0) << "int *p" << n << " = " << nest.array_name << " + "
           << nest.elem_base << ";\n";
    }
    // Open loops.
    for (int k = 0; k < depth; ++k) {
      const std::string iv = "i" + std::to_string(n) + "_" +
                             std::to_string(k);
      if (nest.style == NestStyle::PointerWhile) {
        body << ind(k) << "int " << iv << " = 0;\n";
        body << ind(k) << "while (" << iv << " < " << nest.trips[k]
             << ") {\n";
      } else {
        body << ind(k) << "for (int " << iv << " = 0; " << iv << " < "
             << nest.trips[k] << "; " << iv << "++) {\n";
      }
    }
    // Innermost body.
    if (pointer) {
      body << ind(depth) << "*p" << n << " = i" << n << "_" << (depth - 1)
           << " & 127;\n";
      body << ind(depth) << "p" << n << " += "
           << nest.elem_coefs[depth - 1] << ";\n";
    } else {
      body << ind(depth) << nest.array_name << "["
           << index_expr(nest.elem_base, nest.elem_coefs, n) << "] = i" << n
           << "_" << (depth - 1) << " & 127;\n";
    }
    // Close loops with pointer re-adjustments between levels.
    for (int k = depth - 1; k >= 0; --k) {
      if (nest.style == NestStyle::PointerWhile) {
        body << ind(k + 1) << "i" << n << "_" << k << "++;\n";
      }
      body << ind(k) << "}\n";
      if (pointer && k > 0) {
        // Stepping i_{k-1} by one while i_k rewinds from trips[k] to 0.
        const int64_t adj = nest.elem_coefs[k - 1] -
                            nest.elem_coefs[k] * nest.trips[k];
        if (adj != 0) {
          body << ind(k - 1) << "p" << n << " += " << adj << ";\n";
        }
      }
    }
    body << "  }\n";
    out.nests.push_back(std::move(nest));
  }

  std::ostringstream src;
  src << "// auto-generated affine program (seed " << opts.seed << ")\n";
  src << decls.str();
  src << "int main(void) {\n" << body.str() << "  return 0;\n}\n";
  out.source = src.str();
  return out;
}

}  // namespace foray::benchsuite
