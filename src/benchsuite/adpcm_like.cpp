// adpcm-like: IMA ADPCM encoder.
//
// The paper's smallest benchmark: exactly two loops (one for, one while,
// matching Table I's 50/50 split), both walking pointers — nothing is in
// FORAY form statically (Table II reports 100%), yet the access streams
// are perfectly affine dynamically.
#include "benchsuite/suite.h"

namespace foray::benchsuite {

namespace {

const char* kSource = R"(// adpcm-like IMA encoder kernel (MiniC)
int pcm_in[4000];
char code_out[2000];
int step_size;
int predicted;

int main(void) {
  int n;
  int check;

  // Input synthesis through a walking pointer: a for loop that is NOT
  // canonical (no iterator-based subscripts), as in the original code.
  {
    int *p = pcm_in;
    int phase = 0;
    for (n = 4000; n > 0; n--) {
      *p++ = ((phase & 1023) - 512) * 3 + rand() % 64;
      phase += 37;
    }
  }

  // The encoder: one while loop over samples, pointer in, pointer out,
  // 4-bit codes packed two per byte.
  memset(code_out, 0, 2000);
  step_size = 16;
  predicted = 0;
  check = 0;
  {
    int *in = pcm_in;
    char *out = code_out;
    int len = 4000;
    int buffer = 0;
    int bufferstep = 1;
    while (len-- > 0) {
      int val = *in++;
      int diff = val - predicted;
      int sign = 0;
      int delta = 0;
      if (diff < 0) {
        sign = 8;
        diff = -diff;
      }
      if (diff >= step_size) {
        delta = 4;
        diff -= step_size;
      }
      if (diff >= (step_size >> 1)) {
        delta += 2;
        diff -= step_size >> 1;
      }
      if (diff >= (step_size >> 2)) {
        delta += 1;
      }
      predicted += (sign ? -1 : 1) *
                   ((delta * step_size) >> 2);
      if (predicted > 32767) predicted = 32767;
      if (predicted < -32768) predicted = -32768;
      step_size += (delta >= 4 ? 8 : -1);
      if (step_size < 16) step_size = 16;
      if (step_size > 1552) step_size = 1552;
      if (bufferstep) {
        buffer = (delta | sign) << 4;
      } else {
        *out = (char)(buffer | delta | sign);
        check += *out;
        out++;
      }
      bufferstep = !bufferstep;
    }
  }

  printf("adpcm-like: check=%d\n", check & 65535);
  return 0;
}
)";

}  // namespace

const Benchmark& adpcm_like() {
  static const Benchmark kBench = [] {
    Benchmark b;
    b.name = "adpcm";
    b.description = "IMA ADPCM encoding: two pointer-walking loops; "
                    "nothing in FORAY form statically, everything "
                    "recoverable dynamically";
    b.source = kSource;
    b.paper = PaperRow{
        .lines = 782, .loops = 2,
        .pct_for = 50, .pct_while = 50, .pct_do = 0,
        .model_loops = 2, .model_refs = 1,
        .pct_loops_not_foray = 100, .pct_refs_not_foray = 100,
        .total_refs = 546, .total_accesses = 5.5e6,
        .total_footprint = 4964,
        .model_ref_pct = 0.2, .model_access_pct = 28, .model_fp_pct = 20,
        .sys_ref_pct = 97, .sys_access_pct = 0.2, .sys_fp_pct = 68,
        .other_fp_pct = 12};
    return b;
  }();
  return kBench;
}

}  // namespace foray::benchsuite
