// lame-like: MP3 encoder front half.
//
// Models the loop-heavy structure of lame: polyphase subband analysis
// windows, MDCT-style transforms, a psychoacoustic spreading pass,
// scalefactor-band energy via data-dependent band offsets (partial
// affine), and the iterative quantization search (do-while loops). A
// shared windowing helper runs from two contexts (left/right granule) to
// exercise the inlining advisor.
#include "benchsuite/suite.h"

namespace foray::benchsuite {

namespace {

const char* kSource = R"(// lame-like MP3 encoder kernel (MiniC)
int pcm[2048];
int window_tab[512];
int poly_out[576];
int mdct_in[576];
int mdct_out[576];
int energy[64];
int spread[64];
int sfb_offset[22] = {0, 4, 8, 12, 16, 20, 24, 30, 36, 44, 52, 62,
                      74, 90, 110, 134, 162, 196, 238, 288, 342, 418};
int sfb_energy[21];
int quant[576];
int bitstream[2048];
int granule_gain[4];
int frames_done;
int transient_energy;

// Windowed dot product over 64 taps at a data-dependent offset. Called
// from two different granule loops -> two dynamic contexts.
int window_block(int offset) {
  int acc = 0;
  int t;
  for (t = 0; t < 64; t++) {
    acc += pcm[offset + t] * window_tab[t & 255];
  }
  return acc >> 6;
}

void mdct36(int *in, int *out, int n) {
  int i;
  int j;
  for (i = 0; i < n; i++) {
    int s = 0;
    for (j = 0; j < 36; j++) {
      s += in[i * 18 + (j >> 1)] * ((j & 1) ? 3 : 5);
    }
    out[i * 18] = s >> 4;
    for (j = 1; j < 18; j++) {
      out[i * 18 + j] = (in[i * 18 + j] * 7 - s) >> 5;
    }
  }
}

int quantize_granule(int gr) {
  int step = 8;
  int over;
  int iter = 0;
  // The classic outer quantization loop: iterate until the spectrum
  // fits the bit budget.
  do {
    int i;
    over = 0;
    for (i = 0; i < 576; i++) {
      quant[i] = mdct_out[i] / step;
      if (quant[i] > 8191) over++;
      if (quant[i] < -8191) over++;
    }
    step += 4;
    iter++;
  } while (over > 0 && iter < 8);
  granule_gain[gr] = step;
  return iter;
}

int main(void) {
  int f;
  int s;
  int b;
  int g;
  int i;
  int k;

  // Window table (canonical).
  for (s = 0; s < 512; s++) {
    window_tab[s] = 128 - ((s * s) >> 10) % 128;
  }

  frames_done = 0;
  f = 0;
  while (f < 3) {   // frame loop
    memset(quant, 0, 2304);
    // Synthesize one frame of PCM.
    for (s = 0; s < 2048; s++) {
      pcm[s] = ((((s * 13 + f * 101) & 1023) - 512) >> 1) + rand() % 32;
    }

    // Transient pre-scan: the window length depends on the signal, so
    // this loop's trip count is input-dependent (model-stability study).
    {
      int active = 1024 + (pcm[16] & 511);
      int e = 0;
      for (s = 0; s < active; s++) {
        e += (pcm[s] >> 4) * (pcm[s] >> 4);
      }
      transient_energy = e >> 10;
    }

    // Polyphase subband analysis: 32 subbands x 18 granule slots.
    for (b = 0; b < 32; b++) {
      for (k = 0; k < 18; k++) {
        poly_out[b * 18 + k] = window_block(b * 32 + k * 16) >> 2;
      }
    }

    // Granule staging: bulk copy through the system library, then a
    // pointer-walk fixup pass (statically opaque).
    memcpy(mdct_in, poly_out, 2304);
    {
      int *dst = mdct_in;
      int n = 576;
      while (n-- > 0) {
        *dst = (*dst * 31) >> 5;
        dst++;
      }
    }

    mdct36(mdct_in, mdct_out, 32);

    // Psychoacoustic energies per band (canonical affine loops).
    for (b = 0; b < 64; b++) {
      int e = 0;
      for (i = 0; i < 9; i++) {
        e += mdct_out[b * 9 + i] * mdct_out[b * 9 + i];
      }
      energy[b] = e >> 8;
    }
    // Spreading function: neighborhood smear.
    for (b = 0; b < 64; b++) {
      int acc = 0;
      for (i = 0; i < 5; i++) {
        int idx = b + i - 2;
        if (idx < 0) idx = 0;
        if (idx > 63) idx = 63;
        acc += energy[idx] >> (i > 2 ? i - 2 : 2 - i);
      }
      spread[b] = acc;
    }

    // Scalefactor-band energies through the offset table: the base of
    // each inner run is data-dependent (partial affine).
    for (b = 0; b < 21; b++) {
      int e = 0;
      int lo = sfb_offset[b];
      int hi = sfb_offset[b + 1];
      for (i = lo; i < hi; i++) {
        e += mdct_out[i] * mdct_out[i];
      }
      sfb_energy[b] = e >> 6;
    }

    // Two granule contexts of the shared window helper.
    for (g = 0; g < 2; g++) {
      int acc = 0;
      for (k = 0; k < 18; k++) {
        acc += window_block(1024 + g * 512 + k * 8);
      }
      granule_gain[g + 2] = acc & 1023;
    }

    quantize_granule(0);
    quantize_granule(1);

    // Bit reservoir drain: do-while over the emitted words.
    {
      int *out = bitstream + f * 576;
      int n = 0;
      do {
        *out++ = quant[n] ^ spread[n & 63];
        n++;
      } while (n < 576);
    }

    frames_done++;
    f++;
  }

  // Final checksum (keeps everything live).
  {
    int check = 0;
    for (i = 0; i < 576; i++) {
      check += quant[i] + bitstream[i] + bitstream[576 + i];
    }
    printf("lame-like: frames=%d gain=%d check=%d\n", frames_done,
           granule_gain[0], check);
  }
  return 0;
}
)";

}  // namespace

const Benchmark& lame_like() {
  static const Benchmark kBench = [] {
    Benchmark b;
    b.name = "lame";
    b.description = "MP3 encoding: polyphase filterbank, MDCT, "
                    "psychoacoustics, iterative quantization (do-while), "
                    "scalefactor bands with data-dependent offsets";
    b.source = kSource;
    b.paper = PaperRow{
        .lines = 22846, .loops = 479,
        .pct_for = 83, .pct_while = 8, .pct_do = 9,
        .model_loops = 232, .model_refs = 980,
        .pct_loops_not_foray = 42, .pct_refs_not_foray = 38,
        .total_refs = 16805, .total_accesses = 43e6,
        .total_footprint = 127052,
        .model_ref_pct = 6, .model_access_pct = 22, .model_fp_pct = 26,
        .sys_ref_pct = 40, .sys_access_pct = 20, .sys_fp_pct = 33,
        .other_fp_pct = 66};
    return b;
  }();
  return kBench;
}

}  // namespace foray::benchsuite
