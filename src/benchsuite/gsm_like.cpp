// gsm-like: GSM full-rate speech encoder front end.
//
// Models the gsm structure: per-frame preprocessing, LPC autocorrelation
// over 160-sample frames (affine two-iterator subscripts s[i-k]),
// long-term-prediction lag search through pointer arithmetic (statically
// opaque, dynamically affine), and RPE grid selection with a pointer-walk
// encoder in a while loop.
#include "benchsuite/suite.h"

namespace foray::benchsuite {

namespace {

const char* kSource = R"(// gsm-like speech encoder kernel (MiniC)
int speech[1120];     // 7 frames x 160 samples
int frame[160];
int weighted[160];
int acorr[9];
int refl[8];
int history[280];
int lag_score[81];    // lags 40..120
int rpe_bits[560];
int frames_done;
int total_bits;

int saturate(int v) {
  if (v > 32767) return 32767;
  if (v < -32768) return -32768;
  return v;
}

int main(void) {
  int f;
  int i;
  int k;
  int lag;

  // Synthetic speech input (canonical).
  for (i = 0; i < 1120; i++) {
    speech[i] = (((i * 37) & 511) - 256) + (rand() & 127) - 64;
  }

  frames_done = 0;
  total_bits = 0;
  f = 0;
  while (f < 7) {   // frame loop
    // Frame extraction with offset-compensation preprocessing.
    for (i = 0; i < 160; i++) {
      frame[i] = saturate(speech[f * 160 + i] - (speech[f * 160 + i] >> 6));
    }

    // Pre-emphasis through a short pointer walk.
    {
      int *p = frame + 159;
      int n = 159;
      while (n > 0) {
        *p = saturate(*p - ((p[-1] * 28180) >> 15));
        p--;
        n--;
      }
    }

    // LPC autocorrelation: two-iterator affine subscripts.
    for (k = 0; k < 9; k++) {
      int acc = 0;
      for (i = k; i < 160; i++) {
        acc += (frame[i] >> 3) * (frame[i - k] >> 3);
      }
      acorr[k] = acc;
    }

    // Schur-style reflection coefficients (tiny loops; filtered out of
    // the model by Nloc).
    for (k = 0; k < 8; k++) {
      refl[k] = acorr[k + 1] / (1 + (acorr[0] >> 10));
    }

    // Short-term weighting filter.
    for (i = 0; i < 160; i++) {
      int acc = frame[i] << 2;
      for (k = 0; k < 8; k++) {
        int j = i - k - 1;
        if (j >= 0) {
          acc -= (refl[k] * frame[j]) >> 9;
        }
      }
      weighted[i] = saturate(acc);
    }

    // Update the LTP history ring: shift via the system library, then
    // append the new frame with a pointer walk.
    memcpy(history, history + 160, 480);
    {
      int *src = weighted;
      int *dst = history + 120;
      int n = 160;
      while (n-- > 0) {
        *dst++ = *src++;
      }
    }

    // Long-term-prediction lag search: *(d - lambda) style accesses,
    // statically opaque, dynamically affine in (lag, i).
    for (lag = 0; lag < 81; lag++) {
      int acc = 0;
      int *d = history + 120;
      for (i = 0; i < 40; i++) {
        acc += (d[i] >> 3) * (*(d + i - lag - 40) >> 3);
      }
      lag_score[lag] = acc;
    }

    // RPE grid encode: pointer walk emitting one code per 3 samples.
    {
      int *w = weighted;
      int *out = rpe_bits + f * 80;
      int n = 0;
      while (n < 80) {
        int v = (w[0] + w[1]) / 2;
        *out++ = (v >> 4) & 7;
        w += 2;
        n++;
      }
      total_bits += 3 * 80;
    }

    frames_done++;
    f++;
  }

  {
    int check = 0;
    for (i = 0; i < 560; i++) {
      check += rpe_bits[i];
    }
    for (i = 0; i < 81; i++) {
      check += lag_score[i] & 15;
    }
    printf("gsm-like: frames=%d bits=%d check=%d\n", frames_done,
           total_bits, check & 65535);
  }
  return 0;
}
)";

}  // namespace

const Benchmark& gsm_like() {
  static const Benchmark kBench = [] {
    Benchmark b;
    b.name = "gsm";
    b.description = "speech encoding: autocorrelation LPC, weighting "
                    "filter, LTP lag search via pointer arithmetic, RPE "
                    "pointer-walk encoder";
    b.source = kSource;
    b.paper = PaperRow{
        .lines = 7089, .loops = 38,
        .pct_for = 87, .pct_while = 13, .pct_do = 0,
        .model_loops = 17, .model_refs = 86,
        .pct_loops_not_foray = 59, .pct_refs_not_foray = 74,
        .total_refs = 2091, .total_accesses = 37e6,
        .total_footprint = 16215,
        .model_ref_pct = 4, .model_access_pct = 32, .model_fp_pct = 5,
        .sys_ref_pct = 49, .sys_access_pct = 3, .sys_fp_pct = 93,
        .other_fp_pct = 8};
    return b;
  }();
  return kBench;
}

}  // namespace foray::benchsuite
