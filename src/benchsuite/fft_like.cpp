// fft-like: fixed-point FFT on 64 points.
//
// Matches the paper's observation that fft is the one benchmark already
// fully in FORAY form: every loop is a canonical for loop, every
// reference a direct affine subscript (the bit-reversal permutation is
// replaced by an affine 8x8 transpose reorder, and each butterfly stage
// is written out with literal strides, as unrolled DSP code commonly is).
#include "benchsuite/suite.h"

namespace foray::benchsuite {

namespace {

const char* kSource = R"(// fft-like 64-point fixed-point transform (MiniC)
int re[64];
int im[64];
int tmp_re[64];
int tmp_im[64];
int tw_re[64];
int tw_im[64];
int spectrum[64];

int main(void) {
  int i;
  int j;
  int k;
  int rounds;

  // Twiddle tables (quadratic phase surrogate, canonical loops).
  for (i = 0; i < 64; i++) {
    tw_re[i] = 256 - ((i * i) & 255);
    tw_im[i] = ((i * 3) & 127) - 64;
  }

  for (rounds = 0; rounds < 200; rounds++) {
    // Input frame.
    for (i = 0; i < 64; i++) {
      re[i] = (((i * 29 + rounds * 17) & 255) - 128) + rand() % 8;
      im[i] = 0;
    }

    // Affine reorder (transpose of the 8x8 view).
    for (i = 0; i < 8; i++) {
      for (j = 0; j < 8; j++) {
        tmp_re[i * 8 + j] = re[j * 8 + i];
        tmp_im[i * 8 + j] = im[j * 8 + i];
      }
    }
    memcpy(re, tmp_re, 256);
    memcpy(im, tmp_im, 256);

    // Six butterfly stages with literal strides (1,2,4,8,16,32).
    for (k = 0; k < 64; k += 2) {
      for (j = 0; j < 1; j++) {
        int a = re[k + j]; int b = re[k + j + 1];
        int c = im[k + j]; int d = im[k + j + 1];
        re[k + j] = a + b; re[k + j + 1] = a - b;
        im[k + j] = c + d; im[k + j + 1] = c - d;
      }
    }
    for (k = 0; k < 64; k += 4) {
      for (j = 0; j < 2; j++) {
        int a = re[k + j]; int b = (re[k + j + 2] * tw_re[j * 16]) >> 8;
        int c = im[k + j]; int d = (im[k + j + 2] * tw_re[j * 16]) >> 8;
        re[k + j] = a + b; re[k + j + 2] = a - b;
        im[k + j] = c + d; im[k + j + 2] = c - d;
      }
    }
    for (k = 0; k < 64; k += 8) {
      for (j = 0; j < 4; j++) {
        int a = re[k + j]; int b = (re[k + j + 4] * tw_re[j * 8]) >> 8;
        int c = im[k + j]; int d = (im[k + j + 4] * tw_im[j * 8]) >> 8;
        re[k + j] = a + b; re[k + j + 4] = a - b;
        im[k + j] = c + d; im[k + j + 4] = c - d;
      }
    }
    for (k = 0; k < 64; k += 16) {
      for (j = 0; j < 8; j++) {
        int a = re[k + j]; int b = (re[k + j + 8] * tw_re[j * 4]) >> 8;
        int c = im[k + j]; int d = (im[k + j + 8] * tw_im[j * 4]) >> 8;
        re[k + j] = a + b; re[k + j + 8] = a - b;
        im[k + j] = c + d; im[k + j + 8] = c - d;
      }
    }
    for (k = 0; k < 64; k += 32) {
      for (j = 0; j < 16; j++) {
        int a = re[k + j]; int b = (re[k + j + 16] * tw_re[j * 2]) >> 8;
        int c = im[k + j]; int d = (im[k + j + 16] * tw_im[j * 2]) >> 8;
        re[k + j] = a + b; re[k + j + 16] = a - b;
        im[k + j] = c + d; im[k + j + 16] = c - d;
      }
    }
    for (j = 0; j < 32; j++) {
      int a = re[j]; int b = (re[j + 32] * tw_re[j]) >> 8;
      int c = im[j]; int d = (im[j + 32] * tw_im[j]) >> 8;
      re[j] = a + b; re[j + 32] = a - b;
      im[j] = c + d; im[j + 32] = c - d;
    }

    // Power spectrum accumulation.
    for (i = 0; i < 64; i++) {
      spectrum[i] += (re[i] * re[i] + im[i] * im[i]) >> 12;
    }
  }

  {
    int check = 0;
    for (i = 0; i < 64; i++) {
      check += spectrum[i];
    }
    printf("fft-like: check=%d\n", check & 65535);
  }
  return 0;
}
)";

}  // namespace

const Benchmark& fft_like() {
  static const Benchmark kBench = [] {
    Benchmark b;
    b.name = "fft";
    b.description = "64-point fixed-point FFT: twiddle tables, affine "
                    "transpose reorder, six literal-stride butterfly "
                    "stages — everything already in FORAY form";
    b.source = kSource;
    b.paper = PaperRow{
        .lines = 493, .loops = 11,
        .pct_for = 100, .pct_while = 0, .pct_do = 0,
        .model_loops = 8, .model_refs = 19,
        .pct_loops_not_foray = 0, .pct_refs_not_foray = 0,
        .total_refs = 2420, .total_accesses = 22e6,
        .total_footprint = 28804,
        .model_ref_pct = 1, .model_access_pct = 1, .model_fp_pct = 57,
        .sys_ref_pct = 95, .sys_access_pct = 96, .sys_fp_pct = 43,
        .other_fp_pct = 29};
    return b;
  }();
  return kBench;
}

}  // namespace foray::benchsuite
