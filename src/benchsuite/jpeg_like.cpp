// jpeg-like: image compression kernel.
//
// Models the cjpeg structure the paper's Figure 1 quotes: component /
// coefficient loops writing through walking pointers, row chunking with a
// while loop around a counting for loop, per-block forward DCT through a
// pointer parameter (called from two contexts: luma and chroma), zigzag
// reordering through a permutation table (deliberately non-affine), and
// row staging via memcpy (system traffic).
#include "benchsuite/suite.h"

namespace foray::benchsuite {

namespace {

const char* kSource = R"(// jpeg-like image compression kernel (MiniC)
int width = 64;
int height = 48;
int image[3072];        // 64x48 luma plane
int chroma[1536];       // 32x48 subsampled chroma
int coef[3072];
int ccoef[1536];
int qtab_luma[64];
int qtab_chroma[64];
int zigzag[64] = {
   0,  1,  8, 16,  9,  2,  3, 10,
  17, 24, 32, 25, 18, 11,  4,  5,
  12, 19, 26, 33, 40, 48, 41, 34,
  27, 20, 13,  6,  7, 14, 21, 28,
  35, 42, 49, 56, 57, 50, 43, 36,
  29, 22, 15, 23, 30, 37, 44, 51,
  58, 59, 52, 45, 38, 31, 39, 46,
  53, 60, 61, 54, 47, 55, 62, 63};
int zz_out[3072];
int last_bitpos[192];   // 3 components x 64 coefficients
int result_rows[48];
int rowbuf[64];
int bit_budget;

void build_qtab(int *tab, int quality) {
  int i;
  for (i = 0; i < 64; i++) {
    tab[i] = 1 + (i * quality) / 32;
  }
}

// Forward DCT surrogate on one 8x8 block, through a pointer parameter:
// the block base is data-dependent, so these references are partial
// affine (regular inside, shifting base outside).
void fdct_block(int *blk) {
  int u;
  int x;
  for (u = 0; u < 8; u++) {
    int s = 0;
    for (x = 0; x < 8; x++) {
      s += blk[x * 8 + u];
    }
    blk[u] = s - (s >> 3);
  }
  for (x = 0; x < 8; x++) {
    int s = 0;
    for (u = 0; u < 8; u++) {
      s += blk[x * 8 + u];
    }
    blk[x * 8] = s - (s >> 3);
  }
}

int count_bits(int v) {
  int n = 0;
  if (v < 0) v = -v;
  while (v) {            // huffman-ish magnitude loop
    v >>= 1;
    n++;
  }
  return n;
}

// JFIF-style marker emission: straight-line cold code, one access per
// site — the kind of reference real applications have in droves and the
// Step 4 filter drops.
int header[96];
void write_headers(int quality) {
  header[0] = 255; header[1] = 216;       // SOI
  header[2] = 255; header[3] = 224;       // APP0
  header[4] = 0;   header[5] = 16;
  header[6] = 74;  header[7] = 70;  header[8] = 73; header[9] = 70;
  header[10] = 0;  header[11] = 1;  header[12] = 1;
  header[13] = 0;  header[14] = 0;  header[15] = 96;
  header[16] = 0;  header[17] = 96; header[18] = 0; header[19] = 0;
  header[20] = 255; header[21] = 219;     // DQT luma
  header[22] = 0;   header[23] = 67; header[24] = 0;
  header[25] = 255; header[26] = 219;     // DQT chroma
  header[27] = 0;   header[28] = 67; header[29] = 1;
  header[30] = 255; header[31] = 192;     // SOF0
  header[32] = 0;   header[33] = 17; header[34] = 8;
  header[35] = 0;   header[36] = 48;      // height
  header[37] = 0;   header[38] = 64;      // width
  header[39] = 3;
  header[40] = 1;  header[41] = 34; header[42] = 0;
  header[43] = 2;  header[44] = 17; header[45] = 1;
  header[46] = 3;  header[47] = 17; header[48] = 1;
  header[49] = 255; header[50] = 196;     // DHT
  header[51] = 0;   header[52] = 31; header[53] = 0;
  header[54] = 255; header[55] = 218;     // SOS
  header[56] = 0;   header[57] = 12; header[58] = 3;
  header[59] = 1;   header[60] = 0;
  header[61] = 2;   header[62] = 17;
  header[63] = 3;   header[64] = 17;
  header[65] = 0;   header[66] = 63; header[67] = 0;
  header[68] = quality & 255;
  header[69] = (quality >> 8) & 255;
  header[70] = 255; header[71] = 217;     // EOI
}

int main(void) {
  int r;
  int c;
  int b;
  int i;
  int ci;
  int coefi;

  // Synthetic input image (canonical, statically analyzable loops).
  for (r = 0; r < 48; r++) {
    for (c = 0; c < 64; c++) {
      image[r * 64 + c] = ((r * 7 + c * 3 + rand() % 16) & 255) - 128;
    }
  }
  for (r = 0; r < 48; r++) {
    for (c = 0; c < 32; c++) {
      chroma[r * 32 + c] = ((r * 5 + c * 11) & 255) - 128;
    }
  }

  build_qtab(qtab_luma, 50);
  build_qtab(qtab_chroma, 70);

  // Stage rows through a bounce buffer (system-library traffic).
  for (r = 0; r < 48; r++) {
    memcpy(rowbuf, image + r * 64, 256);
    coef[r * 64] = rowbuf[0] + rowbuf[63];
  }

  write_headers(50);

  // Copy planes into the coefficient arrays with an unrolled pointer
  // walk inside a while loop (Figure 1 style: not analyzable
  // statically, and array-access dense like compiled copy loops).
  {
    int *src = image;
    int *dst = coef;
    int n = 3072;
    while (n > 0) {
      dst[0] = src[0];
      dst[1] = src[1];
      dst[2] = src[2];
      dst[3] = src[3];
      dst += 4;
      src += 4;
      n -= 4;
    }
  }

  // Per-block forward DCT: luma blocks (context 1).
  for (b = 0; b < 42; b++) {
    fdct_block(coef + b * 64);
  }
  // Chroma blocks (context 2: same function, different pattern).
  {
    int *csrc = chroma;
    int *cdst = ccoef;
    int n = 1536;
    while (n > 0) {
      cdst[0] = csrc[0];
      cdst[1] = csrc[1];
      cdst[2] = csrc[2];
      cdst[3] = csrc[3];
      cdst += 4;
      csrc += 4;
      n -= 4;
    }
  }
  for (b = 0; b < 24; b++) {
    fdct_block(ccoef + b * 64);
  }

  // Quantization (canonical loops, affine refs).
  for (b = 0; b < 42; b++) {
    for (i = 0; i < 64; i++) {
      coef[b * 64 + i] = coef[b * 64 + i] / qtab_luma[i];
    }
  }
  for (b = 0; b < 24; b++) {
    for (i = 0; i < 64; i++) {
      ccoef[b * 64 + i] = ccoef[b * 64 + i] / qtab_chroma[i];
    }
  }

  // Zigzag reordering: permutation-table index, intentionally not an
  // affine function of the iterators.
  for (b = 0; b < 42; b++) {
    for (i = 0; i < 64; i++) {
      zz_out[b * 64 + i] = coef[b * 64 + zigzag[i]];
    }
  }

  // Figure 1, first excerpt: progression bit positions via pointer walk.
  {
    int *last_bitpos_ptr = last_bitpos;
    for (ci = 0; ci < 3; ci++) {
      for (coefi = 0; coefi < 64; coefi++) {
        *last_bitpos_ptr++ = -1;
      }
    }
  }

  // Figure 1, second excerpt: row chunking.
  {
    int currow = 0;
    int numrows = 48;
    int rowsperchunk = 8;
    while (currow < numrows) {
      for (i = rowsperchunk; i > 0; i--) {
        result_rows[currow++] = currow * 3;
      }
    }
  }

  // Entropy-coding bit budget (while loops inside count_bits).
  bit_budget = 0;
  for (b = 0; b < 42; b++) {
    for (i = 0; i < 64; i++) {
      bit_budget += count_bits(zz_out[b * 64 + i]);
    }
  }

  printf("jpeg-like: bits=%d check=%d\n", bit_budget,
         coef[100] + ccoef[100] + result_rows[47] + last_bitpos[10]);
  return 0;
}
)";

}  // namespace

const Benchmark& jpeg_like() {
  static const Benchmark kBench = [] {
    Benchmark b;
    b.name = "jpeg";
    b.description = "image compression: block DCT, quantization, zigzag, "
                    "pointer-walk plane copies (Figure 1 idioms)";
    b.source = kSource;
    b.paper = PaperRow{
        .lines = 34590, .loops = 169,
        .pct_for = 65, .pct_while = 34, .pct_do = 1,
        .model_loops = 73, .model_refs = 73,
        .pct_loops_not_foray = 41, .pct_refs_not_foray = 38,
        .total_refs = 6151, .total_accesses = 8.3e6,
        .total_footprint = 123625,
        .model_ref_pct = 1, .model_access_pct = 27, .model_fp_pct = 87,
        .sys_ref_pct = 33, .sys_access_pct = 2, .sys_fp_pct = 9,
        .other_fp_pct = 91};
    return b;
  }();
  return kBench;
}

}  // namespace foray::benchsuite
