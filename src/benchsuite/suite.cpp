#include "benchsuite/suite.h"

#include "util/status.h"

namespace foray::benchsuite {

const std::vector<Benchmark>& all_benchmarks() {
  static const std::vector<Benchmark> kAll = {
      jpeg_like(), lame_like(), susan_like(),
      fft_like(),  gsm_like(),  adpcm_like(),
  };
  return kAll;
}

const Benchmark& get_benchmark(const std::string& name) {
  for (const auto& b : all_benchmarks()) {
    if (b.name == name) return b;
  }
  throw util::InternalError("unknown benchmark '" + name + "'");
}

}  // namespace foray::benchsuite
