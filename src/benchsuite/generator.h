// Random affine-program generator with ground truth.
//
// Produces MiniC programs whose memory behavior is known by
// construction: every generated loop nest writes one array through a
// randomly chosen surface syntax (direct subscript, pointer walk in a
// for loop, or pointer walk in a while loop) but always realizes a known
// affine address function. Property tests then assert FORAY-GEN recovers
// exactly the constructed coefficients and trip counts regardless of the
// syntax — the paper's core claim, checked over a randomized family of
// programs instead of hand-picked examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace foray::benchsuite {

enum class NestStyle : uint8_t {
  Subscript,    ///< a[c1*i + c2*j + ...]: statically visible
  PointerFor,   ///< walking pointer inside canonical for loops
  PointerWhile, ///< walking pointer inside while loops
};

struct ExpectedNest {
  std::string array_name;
  NestStyle style = NestStyle::Subscript;
  /// Trip counts, outermost first.
  std::vector<int64_t> trips;
  /// Element-granular coefficients, outermost first (bytes = 4x).
  std::vector<int64_t> elem_coefs;
  int64_t elem_base = 0;  ///< constant element offset within the array

  uint64_t accesses() const {
    uint64_t n = 1;
    for (int64_t t : trips) n *= static_cast<uint64_t>(t);
    return n;
  }
};

struct GeneratorOptions {
  uint64_t seed = 1;
  int num_nests = 4;
  int max_depth = 3;
  int64_t min_trip = 3;
  int64_t max_trip = 6;
  int64_t max_coef = 9;  ///< element-granular coefficient magnitude bound
  bool allow_pointer_for = true;
  bool allow_pointer_while = true;
};

struct GeneratedProgram {
  std::string source;
  std::vector<ExpectedNest> nests;
};

/// Generates a checked-by-construction program: all indices stay within
/// array bounds, every nest's accesses realize its ExpectedNest function.
GeneratedProgram generate_affine_program(const GeneratorOptions& opts);

// ---------------------------------------------------------------------------
// Stress programs for the engine-equivalence harness.

struct StressOptions {
  uint64_t seed = 1;
  int num_stmts = 14;    ///< top-level statements in main
  int num_helpers = 2;   ///< helper functions (calls, recursion)
  int max_expr_depth = 3;
};

/// Generates a terminating, fault-free MiniC program exercising far more
/// of the language than the affine generator: mixed char/short/int/float
/// scalars, global and local arrays, pointer walks, short-circuit
/// operators with side effects, ternaries, compound assignment,
/// pre/post increment, negative-stride and do-while loops, recursion,
/// rand()/srand(), and printf output. There is no ground-truth model —
/// the point is that the AST interpreter and the bytecode VM must agree
/// bit-for-bit on the trace, output, memory image, and exit code
/// (tests/engine_equivalence_test.cpp). Array indices are masked to the
/// (power-of-two) array sizes and divisors are forced odd, so programs
/// never fault; every program parses and passes sema by construction.
std::string generate_stress_program(const StressOptions& opts);

}  // namespace foray::benchsuite
