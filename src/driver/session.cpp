#include "driver/session.h"

#include <exception>
#include <utility>

namespace foray::driver {

Session::Session(std::string name, std::string source, SessionOptions opts)
    : name_(std::move(name)),
      source_(std::move(source)),
      opts_(std::move(opts)) {}

const util::Status& Session::run() {
  if (ran_) return result_.status;
  ran_ = true;
  try {
    result_ = core::run_pipeline(source_, opts_.pipeline);
  } catch (const std::exception& e) {
    result_.status = util::Status::failure("internal", 0, e.what());
  }
  return result_.status;
}

const core::SpmReport& Session::rerun_spm(uint32_t capacity_bytes) {
  FORAY_CHECK(ran_ && result_.ok(), "rerun_spm requires a successful run()");
  core::SpmPhaseOptions opts = opts_.pipeline.spm;
  opts.dse.spm_capacity = capacity_bytes;
  core::spm_phase(opts, &result_);
  return result_.spm;
}

std::string Session::spm_report_text() const {
  if (!result_.spm_ran) return "";
  return core::describe_spm_report(result_.spm, result_.model);
}

}  // namespace foray::driver
