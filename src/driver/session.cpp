#include "driver/session.h"

#include <exception>
#include <new>
#include <utility>

namespace foray::driver {

Session::Session(std::string name, std::string source, SessionOptions opts)
    : name_(std::move(name)),
      source_(std::move(source)),
      opts_(std::move(opts)) {}

const util::Status& Session::run() {
  if (ran_) return result_.status;
  ran_ = true;
  try {
    result_ = core::run_pipeline(source_, opts_.pipeline);
  } catch (const util::StatusError& e) {
    // Carries its own classification (e.g. an injected sink fault).
    result_.status = e.status();
  } catch (const std::bad_alloc&) {
    result_.status =
        util::Status::failure(util::ErrorCode::kResourceExhausted,
                              "pipeline", 0, "out of memory");
  } catch (const std::exception& e) {
    // Anything else escaping the pipeline is a bug in this library.
    result_.status = util::Status::failure("internal", 0, e.what());
  }
  return result_.status;
}

void Session::adopt_model(core::ForayModel model) {
  FORAY_CHECK(!ran_, "adopt_model on a session that already ran");
  ran_ = true;
  adopted_ = true;
  result_.model = std::move(model);
  result_.model_built = true;
}

const core::SpmReport& Session::resolve(const core::SpmPhaseOptions& opts) {
  return resolve(opts, opts_.pipeline.with_replay);
}

const core::SpmReport& Session::resolve(const core::SpmPhaseOptions& opts,
                                        bool with_replay) {
  // Phase I artifacts are what the re-solve needs; a *replay* failure at
  // a previous point is that point's outcome, not this one's, so it is
  // cleared here (per-cell failure isolation for the sweep grid).
  FORAY_CHECK(ran_ && result_.model_built,
              "resolve requires a run() that built the model");
  result_.status = util::Status();
  // Likewise a previous point's replay ledger must not leak into a point
  // that does not replay.
  result_.replay_ran = false;
  result_.replay = spm::ReplayReport();
  // The candidate list is a function of (model, reuse filter) only; a
  // capacity/energy/cache re-solve reuses the memoized one.
  if (!candidates_valid_ ||
      candidates_reuse_.max_buffer_bytes != opts.reuse.max_buffer_bytes ||
      candidates_reuse_.min_reuse != opts.reuse.min_reuse) {
    candidates_ = spm::enumerate_candidates(result_.model, opts.reuse);
    candidates_reuse_ = opts.reuse;
    candidates_valid_ = true;
  }
  result_.spm = core::solve_spm(result_.model, opts, &candidates_);
  result_.spm_ran = true;
  // The replay check is per-selection, so every re-solve re-runs it.
  if (with_replay) {
    core::PipelineOptions popts = opts_.pipeline;
    popts.spm = opts;
    core::spm_replay_phase(popts, &result_);
  }
  return result_.spm;
}

const core::SpmReport& Session::rerun_spm(uint32_t capacity_bytes) {
  core::SpmPhaseOptions opts = opts_.pipeline.spm;
  opts.dse.spm_capacity = capacity_bytes;
  return resolve(opts);
}

std::string Session::spm_report_text() const {
  if (!result_.spm_ran) return "";
  std::string out = core::describe_spm_report(result_.spm, result_.model);
  if (result_.replay_ran) {
    out += spm::describe_replay_report(result_.replay, result_.model);
  }
  return out;
}

}  // namespace foray::driver
