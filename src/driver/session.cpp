#include "driver/session.h"

#include <exception>
#include <utility>

namespace foray::driver {

Session::Session(std::string name, std::string source, SessionOptions opts)
    : name_(std::move(name)),
      source_(std::move(source)),
      opts_(std::move(opts)) {}

const util::Status& Session::run() {
  if (ran_) return result_.status;
  ran_ = true;
  try {
    result_ = core::run_pipeline(source_, opts_.pipeline);
  } catch (const std::exception& e) {
    result_.status = util::Status::failure("internal", 0, e.what());
  }
  return result_.status;
}

const core::SpmReport& Session::rerun_spm(uint32_t capacity_bytes) {
  // Phase I artifacts are what the re-solve needs; a *replay* failure at
  // a previous capacity is that capacity's outcome, not this one's, so
  // it is cleared here (per-cell failure isolation for the batch grid).
  FORAY_CHECK(ran_ && result_.model_built,
              "rerun_spm requires a run() that built the model");
  result_.status = util::Status();
  core::SpmPhaseOptions opts = opts_.pipeline.spm;
  opts.dse.spm_capacity = capacity_bytes;
  core::spm_phase(opts, &result_);
  // The replay check is per-selection, so a capacity re-solve re-runs it.
  if (opts_.pipeline.with_replay) {
    core::PipelineOptions popts = opts_.pipeline;
    popts.spm = opts;
    core::spm_replay_phase(popts, &result_);
  }
  return result_.spm;
}

std::string Session::spm_report_text() const {
  if (!result_.spm_ran) return "";
  std::string out = core::describe_spm_report(result_.spm, result_.model);
  if (result_.replay_ran) {
    out += spm::describe_replay_report(result_.replay, result_.model);
  }
  return out;
}

}  // namespace foray::driver
