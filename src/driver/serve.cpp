#include "driver/serve.h"

#include <algorithm>
#include <istream>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>
#include <utility>
#include <vector>

#include "benchsuite/suite.h"
#include "driver/model_cache.h"
#include "driver/sweep.h"
#include "sim/budget.h"
#include "staticforay/checker.h"
#include "util/json.h"

namespace foray::driver {

namespace {

/// Identifies a request on its response rows: the client's id when it
/// sent one (string or number), the input line number otherwise.
struct RequestTag {
  bool has_id = false;
  bool id_is_string = false;
  std::string id_str;
  double id_num = 0.0;
  int line = 0;

  void write(util::JsonWriter& w) const {
    if (!has_id) {
      w.key("line").value(static_cast<int64_t>(line));
    } else if (id_is_string) {
      w.key("id").value(id_str);
    } else {
      w.key("id").value(id_num);
    }
  }
};

/// Cancels the request's token the moment the client-facing stream stops
/// accepting bytes, so in-flight simulations die cooperatively at their
/// next chunk boundary instead of sweeping on for a client that is gone.
class CancelOnErrorBuf : public std::streambuf {
 public:
  CancelOnErrorBuf(std::streambuf* dst, sim::CancelToken* token)
      : dst_(dst), token_(token) {}

 protected:
  int overflow(int ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) {
      return sync() == 0 ? 0 : traits_type::eof();
    }
    if (traits_type::eq_int_type(
            dst_->sputc(traits_type::to_char_type(ch)),
            traits_type::eof())) {
      token_->cancel();
      return traits_type::eof();
    }
    return ch;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    const std::streamsize written = dst_->sputn(s, n);
    if (written != n) token_->cancel();
    return written;
  }
  int sync() override {
    const int r = dst_->pubsync();
    if (r != 0) token_->cancel();
    return r;
  }

 private:
  std::streambuf* dst_;
  sim::CancelToken* token_;
};

util::Status bad_request(const std::string& msg) {
  return util::Status::failure(util::ErrorCode::kInvalidInput, "serve", 0,
                               msg);
}

/// Layers the request's optional "budget" object over the server
/// defaults. Field values arrive as JSON numbers (doubles); the step and
/// record guards take their integer part.
util::Status apply_budget(const util::JsonValue& req, sim::Budget* budget) {
  const util::JsonValue* b = req.find("budget");
  if (b == nullptr) return util::Status();
  if (!b->is_object()) return bad_request("\"budget\" must be an object");
  for (const auto& [key, v] : b->fields) {
    if (!v.is_number() || v.num < 0 || !std::isfinite(v.num)) {
      return bad_request("budget field \"" + key +
                         "\" must be a non-negative number");
    }
    if (key == "max_steps") {
      budget->max_steps = static_cast<uint64_t>(v.num);
    } else if (key == "max_records") {
      budget->max_records = static_cast<uint64_t>(v.num);
    } else if (key == "timeout_seconds") {
      budget->timeout_seconds = v.num;
    } else {
      return bad_request("unknown budget field \"" + key + "\"");
    }
  }
  return util::Status();
}

/// Builds the request's SweepOptions and job list. Every failure is a
/// classified status for the done row; the loop itself never dies on a
/// bad request.
util::Status parse_request(const util::JsonValue& req,
                           const ServeOptions& opts, SweepOptions* sopts,
                           std::vector<SweepJob>* jobs) {
  static constexpr const char* kKnown[] = {
      "id", "axes", "program", "source", "name", "threads", "budget",
      "engine"};
  for (const auto& [key, value] : req.fields) {
    (void)value;
    if (std::find_if(std::begin(kKnown), std::end(kKnown),
                     [&key = key](const char* k) { return key == k; }) ==
        std::end(kKnown)) {
      return bad_request("unknown request field \"" + key + "\"");
    }
  }

  sopts->pipeline = opts.pipeline;
  sopts->transient_retries = opts.transient_retries;
  sopts->model_cache = opts.model_cache;
  sopts->threads = std::max(opts.threads, 1);
  if (const util::JsonValue* t = req.find("threads"); t != nullptr) {
    if (!t->is_number() || t->num < 1) {
      return bad_request("\"threads\" must be a positive number");
    }
    // A request may use fewer workers than the server allows, never more.
    sopts->threads =
        std::min(sopts->threads, static_cast<int>(std::min(t->num, 1024.0)));
  }

  if (const util::JsonValue* axes = req.find("axes"); axes != nullptr) {
    if (!axes->is_object()) {
      return bad_request("\"axes\" must be an object of axis -> values");
    }
    for (const auto& [axis, values] : axes->fields) {
      if (!values.is_string()) {
        return bad_request("axis \"" + axis +
                           "\" must be a comma-separated string");
      }
      util::Status st = sopts->spec.parse_axis(axis, values.str);
      if (!st.ok()) return st;
    }
  }

  // Optional per-request engine override; same values as CLI --engine.
  // All engines stream byte-identical responses (the differential
  // harness guarantees it), so this only trades simulation speed.
  if (const util::JsonValue* e = req.find("engine"); e != nullptr) {
    if (!e->is_string()) return bad_request("\"engine\" must be a string");
    if (e->str == "ast") {
      sopts->pipeline.run.engine = sim::Engine::Ast;
    } else if (e->str == "bytecode") {
      sopts->pipeline.run.engine = sim::Engine::Bytecode;
    } else if (e->str == "jit") {
      sopts->pipeline.run.engine = sim::Engine::Jit;
    } else {
      return bad_request("unknown engine \"" + e->str +
                         "\" (want ast, bytecode or jit)");
    }
  }

  util::Status st = apply_budget(req, &sopts->pipeline.run.budget);
  if (!st.ok()) return st;

  const util::JsonValue* source = req.find("source");
  const util::JsonValue* program = req.find("program");
  if (source != nullptr && program != nullptr) {
    return bad_request("request has both \"source\" and \"program\"");
  }
  if (source != nullptr) {
    if (!source->is_string()) {
      return bad_request("\"source\" must be a MiniC program string");
    }
    std::string name = "inline";
    if (const util::JsonValue* n = req.find("name"); n != nullptr) {
      if (!n->is_string()) return bad_request("\"name\" must be a string");
      name = n->str;
    }
    jobs->push_back(SweepJob{std::move(name), source->str});
  } else if (program != nullptr) {
    if (!program->is_string()) {
      return bad_request("\"program\" must be a benchsuite kernel name");
    }
    for (const auto& b : benchsuite::all_benchmarks()) {
      if (b.name == program->str) {
        jobs->push_back(SweepJob{b.name, b.source});
        break;
      }
    }
    if (jobs->empty()) {
      return bad_request("unknown benchsuite program \"" + program->str +
                         "\" (send \"source\" for a custom program)");
    }
  } else {
    *jobs = SweepDriver::benchsuite_jobs();
  }
  return util::Status();
}

/// `--static-admission`: refuses a request whose static *minimum* cost
/// bound already exceeds the request's effective execution budget — the
/// run provably cannot finish inside it, so simulating would only burn
/// the budget to learn what the checker already knows. Runs before any
/// Phase I work or response row. Programs the frontend rejects pass
/// (the sweep classifies them itself), so admitted requests stream
/// byte-identical responses with or without admission.
util::Status admit_static(const std::vector<SweepJob>& jobs,
                          const sim::Budget& budget) {
  for (const SweepJob& job : jobs) {
    staticforay::CheckReport rep;
    if (!staticforay::lint_source(job.source, &rep).ok()) continue;
    const staticforay::StaticCost& cost = rep.cost;
    const bool over_records =
        budget.max_records != 0 && cost.min_records > budget.max_records;
    const bool over_steps =
        budget.max_steps != 0 && cost.min_steps > budget.max_steps;
    if (!over_records && !over_steps) continue;
    const uint64_t need = over_records ? cost.min_records : cost.min_steps;
    const uint64_t cap =
        over_records ? budget.max_records : budget.max_steps;
    return util::Status::failure(
        util::ErrorCode::kResourceExhausted, "lint-admission", 0,
        job.name + ": static bound of at least " + std::to_string(need) +
            (over_records ? " trace records" : " steps") +
            " exceeds the request budget of " + std::to_string(cap) +
            " (raise the budget or drop the program)");
  }
  return util::Status();
}

void done_row(std::ostream& out, const RequestTag& tag,
              const util::Status& st) {
  util::JsonWriter w;
  w.begin_object();
  w.key("kind").value("done");
  tag.write(w);
  w.key("ok").value(st.ok());
  if (!st.ok()) {
    w.key("error_class").value(st.code_name());
    w.key("phase").value(st.phase());
    w.key("error").value(st.message());
  }
  w.end_object();
  out << w.take() << '\n';
}

}  // namespace

util::Status serve_loop(std::istream& in, std::ostream& out,
                        const ServeOptions& opts) {
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank lines are keepalives, not requests
    }
    RequestTag tag;
    tag.line = line_no;
    util::Status st;
    util::JsonValue req;
    std::string err;
    if (!util::parse_json(line, &req, &err)) {
      st = bad_request("request is not valid JSON: " + err);
    } else if (!req.is_object()) {
      st = bad_request("request must be a JSON object");
    } else if (const util::JsonValue* id = req.find("id"); id != nullptr) {
      if (id->is_string()) {
        tag.has_id = true;
        tag.id_is_string = true;
        tag.id_str = id->str;
      } else if (id->is_number()) {
        tag.has_id = true;
        tag.id_num = id->num;
      } else {
        st = bad_request("\"id\" must be a string or number");
      }
    }

    SweepOptions sopts;
    std::vector<SweepJob> jobs;
    if (st.ok() && req.is_object()) {
      st = parse_request(req, opts, &sopts, &jobs);
    }
    if (st.ok() && opts.static_admission) {
      st = admit_static(jobs, sopts.pipeline.run.budget);
    }
    if (st.ok()) {
      auto token = std::make_shared<sim::CancelToken>();
      sopts.pipeline.run.budget.cancel = token;
      SweepDriver driver(std::move(sopts));
      const uint64_t total =
          static_cast<uint64_t>(driver.grid().points_per_job()) * jobs.size();
      if (opts.max_points != 0 && total > opts.max_points) {
        // Admission control: refused before any Phase I/II work runs.
        st = util::Status::failure(
            util::ErrorCode::kResourceExhausted, "serve-admission", 0,
            "request expands to " + std::to_string(total) +
                " grid points, over this server's cap of " +
                std::to_string(opts.max_points) +
                " (split the request or restart with --max-points)");
      } else {
        util::JsonWriter w;
        w.begin_object();
        w.key("kind").value("request");
        tag.write(w);
        w.key("programs").begin_array();
        for (const SweepJob& job : jobs) w.value(job.name);
        w.end_array();
        w.key("points").value(total);
        w.end_object();
        out << w.take() << '\n';
        out.flush();
        // The sweep body streams through the cancel-wiring buffer; the
        // protocol rows above/below go straight to `out` so a mid-sweep
        // sink failure still attempts an honest done row (and the flush
        // check below ends the loop if the client is truly gone).
        CancelOnErrorBuf guard(out.rdbuf(), token.get());
        std::ostream guarded(&guard);
        st = driver.run_ndjson(jobs, guarded);
      }
    }
    done_row(out, tag, st);
    out.flush();
    if (!out) {
      return util::Status::failure(
          util::ErrorCode::kIoError, "serve", line_no,
          "response stream failed (client disconnected?)");
    }
  }
  return util::Status();
}

}  // namespace foray::driver
