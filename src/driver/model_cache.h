// Content-addressed cache of extracted Phase I models.
//
// The key is (hash of the program source) x (hash of the option
// fingerprint) — every option that can change the extracted model is in
// the fingerprint, everything proven bit-identical by the equivalence
// harnesses (engine choice, parallel extraction modes, chunking) is
// deliberately NOT, so a model profiled on one engine serves warm sweeps
// on the other. Execution budgets are also excluded: a budget that trips
// never produces a model to store, and a cached model needs no budget to
// load.
//
// Entries are FMDL blobs (foray/model_io.h). On-disk writes go to a
// per-process temporary name and are renamed into place, so concurrent
// processes sharing one cache directory never observe a torn entry — the
// worst race is two processes computing the same model and one rename
// winning. Every load re-validates the format; a corrupt or stale entry
// is reported as a classified Status and the caller recomputes (and
// overwrites) it — a cache entry is never trusted.
//
// Thread-safe: the sweep driver calls lookup/store from pool workers, and
// `foraygen serve` shares one cache across requests (the in-memory layer
// is what makes back-to-back requests for the same program pure Phase II
// even without a cache directory).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "foray/model.h"
#include "foray/pipeline.h"
#include "util/status.h"

namespace foray::driver {

struct ModelCacheOptions {
  /// On-disk cache directory (created on first store). Empty: in-memory
  /// only — still useful to a long-lived serve loop.
  std::string dir;
  /// Retain looked-up / stored models in memory for this process.
  bool memory = true;
  /// Bound on the directory's total entry bytes (0 = unbounded). After
  /// each successful store, entries are evicted oldest-modified first
  /// until the directory fits; the freshly renamed entry is the newest,
  /// so it only goes when the bound is smaller than the entry itself.
  /// Eviction is best-effort across processes (a concurrent replace of
  /// the victim just wins the rename race) and counted in Stats.
  uint64_t max_bytes = 0;
};

class ModelCache {
 public:
  struct Stats {
    uint64_t hits = 0;         ///< lookups served (memory or disk)
    uint64_t memory_hits = 0;  ///< subset of hits served without I/O
    uint64_t misses = 0;       ///< no entry anywhere
    uint64_t rejected = 0;     ///< entry present but corrupt/stale
    uint64_t stores = 0;          ///< store() calls (memory and/or disk)
    uint64_t store_failures = 0;  ///< disk writes that failed (non-fatal)
    uint64_t evictions = 0;  ///< disk entries deleted by the size bound
  };

  explicit ModelCache(ModelCacheOptions opts = {});

  /// The content address of (source, options): two fixed-width hex hashes
  /// joined by '-'. Includes the model format version, so a format bump
  /// invalidates wholesale.
  static std::string key(std::string_view source,
                         const core::PipelineOptions& opts);
  /// The option half of the key, as the human-readable string that gets
  /// hashed (exposed for tests and debugging).
  static std::string fingerprint(const core::PipelineOptions& opts);

  /// True: `*model` holds the cached model. False with `why->ok()`: a
  /// plain miss. False with a failed `*why`: an entry existed but was
  /// corrupt, truncated or of a stale version — the classified status
  /// says which; the caller recomputes and store() overwrites the bad
  /// entry atomically.
  bool lookup(const std::string& key, core::ForayModel* model,
              util::Status* why);

  /// Best-effort store; disk failures are counted, never thrown.
  void store(const std::string& key, const core::ForayModel& model);

  Stats stats() const;

 private:
  std::string entry_path(const std::string& key) const;
  void enforce_disk_bound();

  ModelCacheOptions opts_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, core::ForayModel> memory_;
  Stats stats_;
  uint64_t tmp_seq_ = 0;  ///< distinguishes concurrent in-process writers
};

}  // namespace foray::driver
