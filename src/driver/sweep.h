// The design-space sweep driver: N programs × a multi-axis DSE grid.
//
// The paper's Phase II is a design-space exploration, but "sweep" used to
// mean exactly one axis (a list of SPM capacities baked into the old
// batch driver's options). This module makes the sweep a first-class,
// composable object: a SweepSpec declares values along five axes —
//
//   capacity    SPM bytes the group-knapsack is solved for
//   energy      named EnergyModel presets with field overrides
//               (spm/energy.h: "default", "dram-heavy", ...)
//   cache       Banakar-style cache comparison geometry
//               (line bytes × associativity, or off)
//   algorithm   which selection is the point's headline: exact DP or
//               the greedy density heuristic
//   replay      transform-replay validation of the point's exact
//               selection on or off
//
// — and expands them into a deterministic row-major grid of SweepPoints.
// Per program the driver runs Phase I once, enumerates the buffer
// candidates once (they depend only on the model and the reuse filter,
// which no axis varies), and solves Phase II per *solve group* — a
// maximal run of consecutive points sharing (capacity, energy, cache,
// replay); the algorithm axis only relabels the headline selection. A
// P-program × K-point grid costs P pipeline runs, P candidate
// enumerations and at most P·K cheap DSE solves.
//
// Both jobs AND the solve groups within one job are fanned across the
// thread pool (core::solve_spm is pure over the immutable model), so a
// single-program sweep saturates every worker instead of serializing on
// one. Results land in pre-allocated slots indexed by PointKey, so every
// report is byte-for-byte identical whatever the thread count — the
// determinism contract locked by driver_test / sweep_test.
//
// Reporting: SweepReport extracts Pareto frontiers (energy saved vs SPM
// bytes used; per program and aggregated across programs) and renders
// the grid as NDJSON — one self-contained JSON object per line, so a
// million-point grid can stream to disk. SweepDriver::run_ndjson writes
// those lines *while the grid runs*, job by job in deterministic order,
// retaining only rendered lines and reduction scalars instead of the
// whole report.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "driver/session.h"
#include "foray/pipeline.h"
#include "util/status.h"

namespace foray::driver {

class ModelCache;

/// One program to sweep.
struct SweepJob {
  std::string name;
  std::string source;
};

/// Which selection a grid point reports as its headline.
enum class Algorithm { kExactDp, kGreedy };
const char* algorithm_name(Algorithm a);

/// One value of the energy axis: a resolved model plus the spec string
/// that produced it ("default", "dram-heavy:dram_nj=5.2", ...).
struct EnergyAxisValue {
  std::string name;
  spm::EnergyModel model;
};

/// One value of the cache-comparison axis. `enabled == false` is the
/// explicit "off" value; `assocs` usually holds one associativity per
/// axis value ("32x2"), but the base-inherited value keeps the session's
/// full list so the pre-sweep `--compare-cache` behavior survives the
/// batch adapter unchanged.
struct CacheAxisValue {
  bool enabled = false;
  uint32_t line_bytes = 32;
  std::vector<int> assocs;
  std::string label = "off";
};

/// The declared sweep: values along every axis. An empty axis means
/// "inherit the base PipelineOptions" and contributes a single point, so
/// a default-constructed spec reproduces the old single-capacity batch.
struct SweepSpec {
  std::vector<uint32_t> capacities;
  std::vector<EnergyAxisValue> energy_models;
  std::vector<CacheAxisValue> caches;
  std::vector<Algorithm> algorithms;
  std::vector<bool> replays;

  /// Parses one comma-separated axis list into the spec. Axis names:
  /// capacity (e.g. "1024,4096"), energy ("default,dram-heavy:dram_nj=5"),
  /// cache ("off,32x2,64x4"), algorithm ("dp,greedy"), replay ("off,on").
  util::Status parse_axis(std::string_view axis, std::string_view values);

  /// Parses a key=value spec file (one axis per line, '#' comments,
  /// blank lines ignored; keys are the parse_axis names). Unknown keys
  /// are errors that name the key and line.
  util::Status parse_file(std::string_view text);
};

/// Coordinates of one grid cell: an index per axis plus the job index.
/// This replaces the old batch report's caller-supplied stride
/// arithmetic with structured, bounds-checked lookup.
struct PointKey {
  size_t job = 0;
  size_t capacity = 0;
  size_t energy = 0;
  size_t cache = 0;
  size_t algorithm = 0;
  size_t replay = 0;
};

/// One fully-resolved grid cell configuration (job-independent).
struct SweepPoint {
  PointKey key;  ///< axis indices; `job` is meaningless here (always 0)
  uint32_t capacity_bytes = 0;
  std::string energy_name;
  spm::EnergyModel energy;
  CacheAxisValue cache;
  Algorithm algorithm = Algorithm::kExactDp;
  bool replay = false;

  /// The SpmPhaseOptions this point resolves: `base` with the axis
  /// values applied on top.
  core::SpmPhaseOptions spm_options(const core::SpmPhaseOptions& base) const;
};

/// The normalized grid: per-axis value lists (inherit markers resolved
/// against the base pipeline options) and their row-major expansion.
/// Axis order capacity > energy > cache > algorithm > replay, last axis
/// fastest — the deterministic item order within one job.
struct SweepGrid {
  std::vector<uint32_t> capacities;
  std::vector<EnergyAxisValue> energy_models;
  std::vector<CacheAxisValue> caches;
  std::vector<Algorithm> algorithms;
  std::vector<bool> replays;
  std::vector<SweepPoint> points;

  size_t points_per_job() const { return points.size(); }
  /// Flat index of a key within one job's block; FORAY_CHECKs every
  /// axis index against its axis size.
  size_t flat_index(const PointKey& key) const;

  static SweepGrid expand(const SweepSpec& spec,
                          const core::PipelineOptions& base);
};

struct SweepOptions {
  int threads = 1;
  SweepSpec spec;
  /// Phase I configuration (engine, filter, shards) and the base Phase
  /// II options that empty axes inherit. with_spm is forced on.
  core::PipelineOptions pipeline;
  /// How many times a *transient* failure (ErrorCode::kIoError — the
  /// outside world failed, not the input and not this library) is
  /// retried per Phase I run / Phase II point before its error row is
  /// final. Deterministic classes (invalid_input, internal, budget
  /// trips) are never retried: rerunning them reproduces the failure.
  int transient_retries = 2;
  /// Optional content-addressed Phase I model cache (not owned; must
  /// outlive the driver). A hit skips profiling and extraction entirely —
  /// the job becomes pure Phase II — and a miss stores the freshly
  /// extracted model for the next run. Output is byte-identical either
  /// way; a corrupt or stale entry is reported on stderr and recomputed.
  ModelCache* model_cache = nullptr;
  /// Run the static checker (staticforay/checker.h) over each program
  /// before its Phase I. A program the checker *proves* will fault is
  /// failed up front with a single per-program diagnostic instead of N
  /// identical per-point failure rows: the streaming NDJSON emits one
  /// `lint` row (plus the program's empty pareto line) in place of the
  /// job's point block, and the buffered report marks every cell of the
  /// job with the same kInvalidInput / phase "lint" status. Programs the
  /// checker cannot prove faulty — including ones that fail the frontend,
  /// which Phase I classifies on its own — run normally, byte-identical
  /// to lint_first = false.
  bool lint_first = false;
};

/// One (program, grid point) cell.
struct SweepItem {
  std::string program;
  PointKey key;           ///< including the job index
  SweepPoint point;       ///< the resolved configuration
  util::Status status;
  size_t model_refs = 0;
  /// Buffer candidates the DSE chose from (recorded separately so the
  /// streaming path can drop the candidates vector itself).
  size_t candidate_count = 0;
  /// Full Phase II result (both selections). On the streaming NDJSON
  /// path the candidates vector — the bulk of an SpmReport, and unread
  /// by the renderer — is left empty.
  core::SpmReport spm;
  /// Energy evaluation of the *headline* selection (== spm.with_spm for
  /// the exact DP, recomputed for greedy points).
  spm::EnergyReport energy;
  bool replay_ran = false;
  spm::ReplayReport replay;
  std::string report;     ///< describe_spm_report() (+ replay) text

  /// The selection the point's algorithm axis names.
  const spm::Selection& selection() const {
    return point.algorithm == Algorithm::kGreedy ? spm.greedy : spm.exact;
  }
};

/// One Pareto-frontier point: the (SPM bytes used, energy saved)
/// trade-off of a grid cell, with the key to look the full item up.
struct ParetoPoint {
  PointKey key;
  uint64_t bytes_used = 0;
  double saved_nj = 0.0;
};

struct SweepReport {
  SweepGrid grid;
  std::vector<std::string> programs;  ///< job order
  /// Job-major, grid-minor (grid.points order) — the deterministic order.
  std::vector<SweepItem> items;
  /// One finished session per job, in job order.
  std::vector<std::unique_ptr<Session>> sessions;

  /// Bounds-checked structured lookup (FORAY_CHECK on any bad index).
  const SweepItem& at(const PointKey& key) const;

  /// Per-program Pareto frontier over the job's successful points:
  /// maximal energy saved for minimal SPM bytes used, sorted by bytes
  /// ascending; dominated and duplicate trade-offs dropped.
  std::vector<ParetoPoint> pareto(size_t job) const;
  /// Aggregate frontier: each grid point's bytes/savings summed across
  /// programs (points where any program failed are skipped), then the
  /// same non-domination filter. Key::job is meaningless here.
  std::vector<ParetoPoint> pareto_aggregate() const;

  /// Summary table, one row per item.
  std::string table() const;

  /// Single-document JSON: an "items" array (per-point DSE results,
  /// replay ledger, cache comparison) and a "sessions" array of per-run
  /// simulator counters — the CLI `batch --json` format.
  std::string to_json() const;

  /// The full report as NDJSON: a `sweep` header line (axes, programs),
  /// one `point` line per item, a `pareto` line per program, and one
  /// aggregate `pareto` line. Byte-identical to run_ndjson's streaming
  /// output over the same jobs.
  void write_ndjson(std::ostream& out) const;
  std::string ndjson() const;
};

/// What `--resume` recovered from a previous run's NDJSON journal: the
/// verbatim header line (revalidated against the new run's grid) and,
/// per (job, flat point), the verbatim point line plus the two reduction
/// scalars the Pareto/aggregate passes need. Cached lines are re-emitted
/// byte-for-byte; only missing or failed points run again.
struct SweepCheckpoint {
  struct CachedPoint {
    bool have = false;
    std::string line;       ///< verbatim journal line
    uint64_t bytes = 0;     ///< bytes_used (reduction input)
    double saved = 0.0;     ///< saved_nj (reduction input)
  };

  std::string header;                          ///< verbatim journal header
  std::vector<std::string> programs;           ///< by job index
  std::vector<std::vector<CachedPoint>> points;  ///< [job][flat index]

  bool point_cached(size_t job, size_t flat) const {
    return job < points.size() && flat < points[job].size() &&
           points[job][flat].have;
  }
  bool job_fully_cached(size_t job, size_t per_job) const {
    if (job >= points.size() || points[job].size() < per_job) return false;
    for (size_t i = 0; i < per_job; ++i) {
      if (!points[job][i].have) return false;
    }
    return true;
  }
};

class SweepDriver {
 public:
  explicit SweepDriver(SweepOptions opts = {});

  const SweepGrid& grid() const { return grid_; }

  /// Runs every job across every grid point, retaining all items.
  /// Blocking; one driver, one call at a time.
  SweepReport run(const std::vector<SweepJob>& jobs) const;

  /// Streaming variant: each point is rendered to its NDJSON line and
  /// reduced (Pareto objective, aggregate sums) the moment it resolves,
  /// and finished jobs' text is written in deterministic job order — a
  /// million-point grid never holds more than one SpmReport per worker,
  /// plus the rendered text of out-of-order finished jobs. Output is
  /// byte-identical to run(jobs).ndjson(); sessions are not retained.
  /// Returns the first failure: a failed point's status, a validation
  /// failure for a replay-axis point whose simulated counters mismatched
  /// (the whole grid is still swept and written), or kIoError the moment
  /// the output stream itself fails (the sweep is then abandoned; the
  /// partial journal — whole job blocks in order — is a valid --resume
  /// checkpoint).
  ///
  /// With `resume`, points cached in the checkpoint are re-emitted
  /// verbatim instead of re-run; a checkpoint whose header does not
  /// match this grid and job list fails as kInvalidInput up front.
  util::Status run_ndjson(const std::vector<SweepJob>& jobs,
                          std::ostream& out,
                          const SweepCheckpoint* resume = nullptr) const;

  /// Parses a previous run_ndjson journal (possibly truncated mid-line:
  /// a partial tail line is ignored) into a checkpoint. Grid-shape
  /// validation happens here (point keys out of range fail as
  /// kInvalidInput); job-list validation happens in run_ndjson. Failed
  /// point rows (ok:false) and rows whose replay check mismatched are
  /// deliberately NOT cached, so resuming retries exactly those.
  util::Status parse_resume(std::string_view journal,
                            SweepCheckpoint* out) const;

  /// The six benchsuite kernels as sweep jobs, in the paper's order.
  static std::vector<SweepJob> benchsuite_jobs();

 private:
  SweepOptions opts_;
  SweepGrid grid_;
};

}  // namespace foray::driver
