#include "driver/batch.h"

#include <cstdio>

#include <utility>

#include "benchsuite/suite.h"
#include "util/json.h"
#include "util/strings.h"

namespace foray::driver {

BatchDriver::BatchDriver(BatchOptions opts) : opts_(std::move(opts)) {
  opts_.pipeline.with_spm = true;
  if (opts_.capacities.empty()) opts_.capacities.push_back(4096);
  if (opts_.threads < 1) opts_.threads = 1;
}

BatchReport BatchDriver::run(const std::vector<BatchJob>& jobs) const {
  // The whole batch contract — thread-pooled sessions, one Phase II
  // re-solve per capacity, deterministic job-major/capacity-minor item
  // order, failure isolation — lives in the SweepDriver now; this
  // adapter only maps the capacity list onto the sweep's capacity axis
  // (every other axis inherits the pipeline options) and reshapes the
  // items.
  SweepOptions sopts;
  sopts.threads = opts_.threads;
  sopts.pipeline = opts_.pipeline;
  sopts.spec.capacities = opts_.capacities;

  std::vector<SweepJob> sweep_jobs;
  sweep_jobs.reserve(jobs.size());
  for (const auto& job : jobs) {
    sweep_jobs.push_back(SweepJob{job.name, job.source});
  }
  SweepReport sweep = SweepDriver(sopts).run(sweep_jobs);
  FORAY_CHECK(sweep.grid.points_per_job() == opts_.capacities.size(),
              "batch adapter expects a capacity-only sweep grid");

  BatchReport report;
  report.capacities_per_job = opts_.capacities.size();
  report.items.reserve(sweep.items.size());
  for (auto& item : sweep.items) {
    BatchItem out;
    out.name = std::move(item.program);
    out.capacity = item.point.capacity_bytes;
    out.status = std::move(item.status);
    out.model_refs = item.model_refs;
    out.spm = std::move(item.spm);
    out.replay_ran = item.replay_ran;
    out.replay = std::move(item.replay);
    out.report = std::move(item.report);
    report.items.push_back(std::move(out));
  }
  report.sessions = std::move(sweep.sessions);
  return report;
}

std::vector<BatchJob> BatchDriver::benchsuite_jobs() {
  std::vector<BatchJob> jobs;
  for (const auto& b : benchsuite::all_benchmarks()) {
    jobs.push_back(BatchJob{b.name, b.source});
  }
  return jobs;
}

std::string BatchReport::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("items").begin_array();
  for (const auto& item : items) {
    w.begin_object();
    w.key("program").value(item.name);
    w.key("capacity_bytes").value(item.capacity);
    w.key("ok").value(item.status.ok());
    if (!item.status.ok()) {
      w.key("error").value(item.status.message());
      w.end_object();
      continue;
    }
    w.key("model_refs").value(static_cast<uint64_t>(item.model_refs));
    w.key("candidates").value(static_cast<uint64_t>(item.spm.candidates.size()));
    w.key("buffers_chosen").value(static_cast<uint64_t>(item.spm.exact.chosen.size()));
    w.key("bytes_used").value(item.spm.exact.bytes_used);
    w.key("saved_nj").value(item.spm.exact.saved_nj);
    w.key("greedy_saved_nj").value(item.spm.greedy.saved_nj);
    w.key("baseline_nj").value(item.spm.baseline.baseline_nj);
    w.key("with_spm_nj").value(item.spm.with_spm.total_nj);
    if (item.replay_ran) {
      const auto& r = item.replay;
      w.key("replay").begin_object();
      w.key("ok").value(r.matches());
      w.key("rectangular").value(r.rectangular);
      w.key("sim_spm_accesses").value(r.sim_spm_accesses);
      w.key("sim_main_accesses").value(r.sim_main_accesses);
      w.key("sim_transfer_words").value(r.sim_transfer_words);
      w.key("analytic_spm_accesses").value(r.ana_spm_accesses);
      w.key("analytic_main_accesses").value(r.ana_main_accesses);
      w.key("analytic_transfer_words").value(r.ana_transfer_words);
      if (!r.mismatches.empty()) {
        w.key("mismatches").begin_array();
        for (const auto& m : r.mismatches) w.value(m);
        w.end_array();
      }
      w.end_object();
    }
    if (!item.spm.caches.empty()) {
      w.key("caches").begin_array();
      for (const auto& c : item.spm.caches) {
        w.begin_object();
        w.key("assoc").value(c.assoc);
        w.key("hits").value(c.hits);
        w.key("misses").value(c.misses);
        w.key("energy_nj").value(c.energy_nj);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.key("sessions").begin_array();
  for (const auto& session : sessions) {
    if (session == nullptr) continue;
    w.begin_object();
    w.key("program").value(session->name());
    w.key("ok").value(session->status().ok());
    if (session->status().ok()) {
      const auto& res = session->result();
      w.key("steps").value(res.run.steps);
      w.key("accesses").value(res.run.accesses);
      w.key("trace_records").value(res.trace_records);
      w.key("analyzer_state_bytes")
          .value(static_cast<uint64_t>(
              res.extractor != nullptr ? res.extractor->state_bytes() : 0));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string BatchReport::table() const {
  util::TablePrinter tp({"program", "SPM", "refs", "buffers", "bytes used",
                         "saved nJ", "greedy nJ", "energy vs DRAM",
                         "replay"});
  for (const auto& item : items) {
    if (!item.status.ok()) {
      tp.add_row({item.name, std::to_string(item.capacity) + "B", "-", "-",
                  "-", "-", "-", "FAILED", "-"});
      continue;
    }
    char saved[32], greedy[32], pct[32];
    std::snprintf(saved, sizeof saved, "%.1f", item.spm.exact.saved_nj);
    std::snprintf(greedy, sizeof greedy, "%.1f", item.spm.greedy.saved_nj);
    std::snprintf(pct, sizeof pct, "%.1f%%",
                  item.spm.baseline.baseline_nj > 0.0
                      ? 100.0 * item.spm.with_spm.total_nj /
                            item.spm.baseline.baseline_nj
                      : 100.0);
    tp.add_row({item.name, std::to_string(item.capacity) + "B",
                std::to_string(item.model_refs),
                std::to_string(item.spm.exact.chosen.size()),
                std::to_string(item.spm.exact.bytes_used), saved, greedy,
                pct,
                !item.replay_ran ? "-"
                : item.replay.matches() ? "ok"
                                        : "MISMATCH"});
  }
  return tp.str();
}

}  // namespace foray::driver
