#include "driver/batch.h"

#include <cstdio>

#include "benchsuite/suite.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace foray::driver {

BatchDriver::BatchDriver(BatchOptions opts) : opts_(std::move(opts)) {
  opts_.pipeline.with_spm = true;
  if (opts_.capacities.empty()) opts_.capacities.push_back(4096);
  if (opts_.threads < 1) opts_.threads = 1;
}

BatchReport BatchDriver::run(const std::vector<BatchJob>& jobs) const {
  const size_t n_caps = opts_.capacities.size();
  BatchReport report;
  report.items.resize(jobs.size() * n_caps);
  report.sessions.resize(jobs.size());

  util::ThreadPool pool(static_cast<size_t>(opts_.threads));
  for (size_t j = 0; j < jobs.size(); ++j) {
    pool.submit([this, j, n_caps, &jobs, &report] {
      SessionOptions sopts;
      sopts.pipeline = opts_.pipeline;
      sopts.pipeline.spm.dse.spm_capacity = opts_.capacities[0];
      auto session = std::make_unique<Session>(jobs[j].name, jobs[j].source,
                                               sopts);
      session->run();
      // Phase I failures doom every capacity cell; a replay execution
      // failure is per-capacity (each capacity replays its own
      // selection), so later cells still get their own attempt.
      const bool phase1_ok = session->result().model_built;
      for (size_t c = 0; c < n_caps; ++c) {
        BatchItem& item = report.items[j * n_caps + c];
        item.name = jobs[j].name;
        item.capacity = opts_.capacities[c];
        item.status = session->status();
        if (!phase1_ok) continue;
        if (c > 0) {
          // Keep the failure-isolation promise even for internal errors
          // during a capacity re-solve: mark this item, keep the batch.
          try {
            session->rerun_spm(opts_.capacities[c]);
          } catch (const std::exception& e) {
            item.status = util::Status::failure("internal", 0, e.what());
            continue;
          }
          item.status = session->status();
        }
        if (!item.status.ok()) continue;
        item.model_refs = session->result().model.refs.size();
        item.spm = session->result().spm;
        item.replay_ran = session->result().replay_ran;
        if (item.replay_ran) item.replay = session->result().replay;
        item.report = session->spm_report_text();
      }
      report.sessions[j] = std::move(session);
    });
  }
  pool.wait_idle();
  return report;
}

std::vector<BatchJob> BatchDriver::benchsuite_jobs() {
  std::vector<BatchJob> jobs;
  for (const auto& b : benchsuite::all_benchmarks()) {
    jobs.push_back(BatchJob{b.name, b.source});
  }
  return jobs;
}

std::string BatchReport::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("items").begin_array();
  for (const auto& item : items) {
    w.begin_object();
    w.key("program").value(item.name);
    w.key("capacity_bytes").value(item.capacity);
    w.key("ok").value(item.status.ok());
    if (!item.status.ok()) {
      w.key("error").value(item.status.message());
      w.end_object();
      continue;
    }
    w.key("model_refs").value(static_cast<uint64_t>(item.model_refs));
    w.key("candidates").value(static_cast<uint64_t>(item.spm.candidates.size()));
    w.key("buffers_chosen").value(static_cast<uint64_t>(item.spm.exact.chosen.size()));
    w.key("bytes_used").value(item.spm.exact.bytes_used);
    w.key("saved_nj").value(item.spm.exact.saved_nj);
    w.key("greedy_saved_nj").value(item.spm.greedy.saved_nj);
    w.key("baseline_nj").value(item.spm.baseline.baseline_nj);
    w.key("with_spm_nj").value(item.spm.with_spm.total_nj);
    if (item.replay_ran) {
      const auto& r = item.replay;
      w.key("replay").begin_object();
      w.key("ok").value(r.matches());
      w.key("rectangular").value(r.rectangular);
      w.key("sim_spm_accesses").value(r.sim_spm_accesses);
      w.key("sim_main_accesses").value(r.sim_main_accesses);
      w.key("sim_transfer_words").value(r.sim_transfer_words);
      w.key("analytic_spm_accesses").value(r.ana_spm_accesses);
      w.key("analytic_main_accesses").value(r.ana_main_accesses);
      w.key("analytic_transfer_words").value(r.ana_transfer_words);
      if (!r.mismatches.empty()) {
        w.key("mismatches").begin_array();
        for (const auto& m : r.mismatches) w.value(m);
        w.end_array();
      }
      w.end_object();
    }
    if (!item.spm.caches.empty()) {
      w.key("caches").begin_array();
      for (const auto& c : item.spm.caches) {
        w.begin_object();
        w.key("assoc").value(c.assoc);
        w.key("hits").value(c.hits);
        w.key("misses").value(c.misses);
        w.key("energy_nj").value(c.energy_nj);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.key("sessions").begin_array();
  for (const auto& session : sessions) {
    if (session == nullptr) continue;
    w.begin_object();
    w.key("program").value(session->name());
    w.key("ok").value(session->status().ok());
    if (session->status().ok()) {
      const auto& res = session->result();
      w.key("steps").value(res.run.steps);
      w.key("accesses").value(res.run.accesses);
      w.key("trace_records").value(res.trace_records);
      w.key("analyzer_state_bytes")
          .value(static_cast<uint64_t>(
              res.extractor != nullptr ? res.extractor->state_bytes() : 0));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string BatchReport::table() const {
  util::TablePrinter tp({"program", "SPM", "refs", "buffers", "bytes used",
                         "saved nJ", "greedy nJ", "energy vs DRAM",
                         "replay"});
  for (const auto& item : items) {
    if (!item.status.ok()) {
      tp.add_row({item.name, std::to_string(item.capacity) + "B", "-", "-",
                  "-", "-", "-", "FAILED", "-"});
      continue;
    }
    char saved[32], greedy[32], pct[32];
    std::snprintf(saved, sizeof saved, "%.1f", item.spm.exact.saved_nj);
    std::snprintf(greedy, sizeof greedy, "%.1f", item.spm.greedy.saved_nj);
    std::snprintf(pct, sizeof pct, "%.1f%%",
                  item.spm.baseline.baseline_nj > 0.0
                      ? 100.0 * item.spm.with_spm.total_nj /
                            item.spm.baseline.baseline_nj
                      : 100.0);
    tp.add_row({item.name, std::to_string(item.capacity) + "B",
                std::to_string(item.model_refs),
                std::to_string(item.spm.exact.chosen.size()),
                std::to_string(item.spm.exact.bytes_used), saved, greedy,
                pct,
                !item.replay_ran ? "-"
                : item.replay.matches() ? "ok"
                                        : "MISMATCH"});
  }
  return tp.str();
}

}  // namespace foray::driver
