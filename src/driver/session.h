// One program's journey through the phase pipeline.
//
// A Session owns the source text, the options and every phase artifact
// for a single MiniC program, so the CLI, the bench binaries and the
// batch driver all share one code path instead of each hand-rolling
// run_pipeline + spm calls. Sessions are single-threaded objects; the
// sweep driver gives each worker its own.
#pragma once

#include <string>

#include "foray/pipeline.h"
#include "util/status.h"

namespace foray::driver {

struct SessionOptions {
  /// Full phase configuration, including pipeline.profile_shards: set it
  /// above 1 to shard this session's extraction across a thread pool
  /// (bit-identical output; see foray/shard.h). Sweep users note the
  /// two levels compose — SweepDriver threads run whole sessions,
  /// profile_shards parallelizes inside one.
  core::PipelineOptions pipeline;
};

class Session {
 public:
  Session(std::string name, std::string source, SessionOptions opts = {});

  const std::string& name() const { return name_; }
  const SessionOptions& options() const { return opts_; }

  /// Runs every phase (Frontend..Extract, plus SpmPhase when
  /// options().pipeline.with_spm). Idempotent: later calls return the
  /// stored status without re-running. Internal errors (FORAY_CHECK) are
  /// converted into a failed Status rather than escaping, so one broken
  /// session never takes down a batch.
  const util::Status& run();

  /// Installs a previously-extracted model (a model-cache hit) instead of
  /// running Phase I. The session becomes ran() with an ok status and
  /// model_built, so resolve() works immediately; the simulator-side
  /// artifacts (run counters, trace, extractor) stay empty — from_cache()
  /// tells reporting code apart. Only legal before run().
  void adopt_model(core::ForayModel model);
  bool from_cache() const { return adopted_; }

  bool ran() const { return ran_; }
  const util::Status& status() const { return result_.status; }
  const core::PipelineResult& result() const { return result_; }

  /// Moves the result out, for callers whose artifacts outlive the
  /// session (bench_util). The session stays ran() but holds an empty
  /// result afterwards.
  core::PipelineResult take_result() { return std::move(result_); }

  /// Re-solves only the SpmPhase under arbitrary Phase II options —
  /// capacity, energy model, cache comparison, all of SpmPhaseOptions —
  /// reusing the Phase I artifacts (model extraction dominates the cost;
  /// the DSE is cheap). This is the per-point workhorse for capacity
  /// sweeps: one run() then one resolve() per configuration. The buffer
  /// candidates are memoized across resolves — they depend only on the
  /// model and opts.reuse, so back-to-back re-solves that vary capacity,
  /// energy or cache skip re-enumeration entirely. Requires a run() that
  /// built the model; a previous resolve's failure is cleared first, so
  /// status() afterwards reflects this point alone. Returns the
  /// refreshed report, which also replaces result().spm.
  ///
  /// `with_replay` additionally re-runs the transform-replay check for
  /// the new exact selection; the overload without it follows the
  /// session's pipeline options.
  const core::SpmReport& resolve(const core::SpmPhaseOptions& opts);
  const core::SpmReport& resolve(const core::SpmPhaseOptions& opts,
                                 bool with_replay);

  /// Capacity-only convenience: resolve() with only dse.spm_capacity
  /// changed.
  const core::SpmReport& rerun_spm(uint32_t capacity_bytes);

  /// Deterministic text report of the current SpmReport (empty when the
  /// SpmPhase has not run).
  std::string spm_report_text() const;

 private:
  std::string name_;
  std::string source_;
  SessionOptions opts_;
  core::PipelineResult result_;
  bool ran_ = false;
  bool adopted_ = false;  ///< model came from the cache, not a pipeline run
  /// Buffer candidates memoized across resolve() calls, with the reuse
  /// filter they were enumerated under (the only Phase II options they
  /// depend on besides the — immutable — model).
  std::vector<spm::BufferCandidate> candidates_;
  spm::ReuseOptions candidates_reuse_;
  bool candidates_valid_ = false;
};

}  // namespace foray::driver
