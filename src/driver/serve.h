// `foraygen serve`: a long-lived sweep service over NDJSON.
//
// One request per input line, one NDJSON response stream per request:
//
//   request  {"id":1,"axes":{"capacity":"1024,4096"},"program":"adpcm"}
//   ack      {"kind":"request","id":1,"programs":["adpcm"],"points":2}
//   body     the ordinary sweep NDJSON (header, point, pareto lines —
//            byte-identical to `foraygen sweep --ndjson` over the same
//            spec and jobs)
//   done     {"kind":"done","id":1,"ok":true}
//
// Request fields (all optional except `axes` may be empty):
//   id       number or string, echoed on the ack and done rows; rows for
//            an id-less request carry the input line number instead
//   axes     object: axis name -> comma-separated values, exactly the
//            strings `foraygen sweep --axis` accepts
//   program  one benchsuite kernel by name; "source" (+"name") sweeps an
//            inline MiniC program instead; absent = the whole benchsuite
//   threads  worker threads for this request, clamped to the server's
//            --threads
//   budget   {"max_steps":N,"max_records":N,"timeout_seconds":S} — per-
//            request execution bounds layered over the server defaults
//
// A malformed request never kills the loop: it produces a single done
// row with ok:false and the classified error. Admission control bounds
// each request's grid (`ServeOptions::max_points`); a request over the
// cap is refused as resource_exhausted before any work runs. Every
// request gets its own sim::CancelToken, wired to the output stream: the
// moment a response write fails (client went away) the token trips and
// in-flight simulations die cooperatively at the next chunk boundary.
//
// Phase I models are reused across requests through the shared
// ModelCache — the whole point of serving: request 2 for the same
// program under the same profile options is pure Phase II.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "foray/pipeline.h"
#include "util/status.h"

namespace foray::driver {

class ModelCache;

struct ServeOptions {
  /// Worker-thread ceiling; each request may ask for fewer.
  int threads = 1;
  /// Server-side Phase I/II defaults (engine, filter, budgets); requests
  /// layer axes and budget overrides on top.
  core::PipelineOptions pipeline;
  /// Per-request grid-size cap (jobs x points); 0 = unlimited.
  uint64_t max_points = 4096;
  /// Shared across requests (not owned; may be null for no caching).
  ModelCache* model_cache = nullptr;
  /// Transient-failure retries, as SweepOptions::transient_retries.
  int transient_retries = 2;
  /// Static cost-bound admission (`--static-admission`): run the
  /// staticforay checker over each requested program and refuse the
  /// request — resource_exhausted, phase "lint-admission", before any
  /// Phase I work or response row — when a program's *minimum* static
  /// step or record bound already exceeds the request's effective budget
  /// (server defaults + the request's "budget" overrides). Programs the
  /// frontend rejects are not refused here: the normal sweep path
  /// classifies them, so admitted requests stream byte-identical
  /// responses whether this flag is on or off.
  bool static_admission = false;
};

/// Runs the request loop until `in` reaches EOF (ok) or `out` stops
/// accepting bytes (kIoError, phase "serve" — the client disconnected).
/// Per-request failures are reported on their done rows, never returned.
util::Status serve_loop(std::istream& in, std::ostream& out,
                        const ServeOptions& opts);

}  // namespace foray::driver
