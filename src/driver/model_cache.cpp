#include "driver/model_cache.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "foray/model_io.h"
#include "util/hash.h"

namespace foray::driver {

namespace {

/// Process id for temp-file uniqueness without pulling in <unistd.h>
/// everywhere; getpid is POSIX, and this tree already assumes it.
uint64_t process_id() {
#if defined(_WIN32)
  return 0;
#else
  return static_cast<uint64_t>(::getpid());
#endif
}

}  // namespace

ModelCache::ModelCache(ModelCacheOptions opts) : opts_(std::move(opts)) {}

std::string ModelCache::fingerprint(const core::PipelineOptions& opts) {
  // Everything that can change the extracted model, and nothing that
  // cannot: engine and the parallel extraction modes are bit-identical
  // by contract (engine_equivalence / shard / pipeline / timeshard
  // harnesses), budgets never produce a partial model, and the emit /
  // Phase II options run downstream of extraction.
  std::string fp;
  fp.reserve(192);
  const auto flag = [&](const char* name, bool v) {
    fp += name;
    fp += v ? "=1;" : "=0;";
  };
  const auto num = [&](const char* name, uint64_t v) {
    fp += name;
    fp += '=';
    fp += std::to_string(v);
    fp += ';';
  };
  num("fmt", core::kModelFormatVersion);
  num("seed", opts.run.rng_seed);
  flag("checkpoints", opts.run.emit_checkpoints);
  flag("calls", opts.run.emit_calls);
  flag("scalars", opts.run.trace_scalars);
  flag("data", opts.run.trace_data);
  flag("system", opts.run.trace_system);
  num("heap", opts.run.heap_capacity);
  num("stack", opts.run.stack_capacity);
  flag("hash_index", opts.extractor.hash_index);
  num("fpcap", opts.extractor.footprint_cap);
  num("nexec", opts.filter.min_exec);
  num("nloc", opts.filter.min_locations);
  flag("reqiter", opts.filter.require_iterator);
  flag("partial", opts.filter.keep_partial);
  flag("nosys", opts.filter.exclude_system);
  return fp;
}

std::string ModelCache::key(std::string_view source,
                            const core::PipelineOptions& opts) {
  return util::hex64(util::fnv1a(source)) + "-" +
         util::hex64(util::fnv1a(fingerprint(opts)));
}

std::string ModelCache::entry_path(const std::string& key) const {
  return opts_.dir + "/" + key + ".fmodel";
}

bool ModelCache::lookup(const std::string& key, core::ForayModel* model,
                        util::Status* why) {
  *why = util::Status();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = memory_.find(key);
    if (it != memory_.end()) {
      *model = it->second;
      ++stats_.hits;
      ++stats_.memory_hits;
      return true;
    }
  }
  if (opts_.dir.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return false;
  }
  const std::string path = entry_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return false;
  }
  util::Status st = core::read_model(in, model);
  if (!st.ok()) {
    // Detected, classified, and left for store() to atomically replace
    // once the caller has recomputed — never deleted in place (another
    // process may be mid-replace already).
    *why = util::Status::failure(st.code(), "model-cache", 0,
                                 path + ": " + st.message());
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (opts_.memory) memory_.emplace(key, *model);
  ++stats_.hits;
  return true;
}

void ModelCache::store(const std::string& key,
                       const core::ForayModel& model) {
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (opts_.memory) memory_[key] = model;
    ++stats_.stores;
    seq = ++tmp_seq_;
  }
  if (opts_.dir.empty()) return;

  const auto failed = [this] {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.store_failures;
  };
  std::error_code ec;
  std::filesystem::create_directories(opts_.dir, ec);
  const std::string path = entry_path(key);
  const std::string tmp = path + ".tmp." + std::to_string(process_id()) +
                          "." + std::to_string(seq);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      failed();
      return;
    }
    core::write_model(out, model);
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      failed();
      return;
    }
  }
  // rename(2) atomically replaces the destination: readers see either the
  // old complete entry or the new complete entry, never a torn one.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    failed();
    return;
  }
  enforce_disk_bound();
}

void ModelCache::enforce_disk_bound() {
  if (opts_.dir.empty() || opts_.max_bytes == 0) return;
  struct Entry {
    std::filesystem::path path;
    std::filesystem::file_time_type mtime;
    uint64_t size = 0;
  };
  std::vector<Entry> entries;
  uint64_t total = 0;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(opts_.dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::filesystem::directory_entry& de = *it;
    if (de.path().extension() != ".fmodel") continue;
    std::error_code fec;
    if (!de.is_regular_file(fec) || fec) continue;
    Entry e;
    e.path = de.path();
    e.size = de.file_size(fec);
    if (fec) continue;
    e.mtime = de.last_write_time(fec);
    if (fec) continue;
    total += e.size;
    entries.push_back(std::move(e));
  }
  if (total <= opts_.max_bytes) return;
  // Oldest-modified first; path breaks mtime ties so the victim order is
  // deterministic on filesystems with coarse timestamps.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;
            });
  uint64_t evicted = 0;
  for (const Entry& e : entries) {
    if (total <= opts_.max_bytes) break;
    std::error_code rec;
    if (std::filesystem::remove(e.path, rec) && !rec) {
      total -= e.size;
      ++evicted;
    }
  }
  if (evicted != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.evictions += evicted;
  }
}

ModelCache::Stats ModelCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace foray::driver
