// The capacity-only batch driver — a thin compatibility adapter over the
// sweep API (driver/sweep.h), kept for one release.
//
// BatchOptions::capacities maps onto the sweep's capacity axis with every
// other axis inherited from the pipeline options, so the behavior —
// parallel sessions, job-major/capacity-minor deterministic item order,
// per-session failure isolation — is the SweepDriver's, unchanged from
// the pre-sweep BatchDriver. New code should declare a SweepSpec and use
// SweepDriver directly; multi-axis grids, Pareto surfaces and streaming
// NDJSON exist only there.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "driver/session.h"
#include "driver/sweep.h"
#include "foray/pipeline.h"
#include "util/status.h"

namespace foray::driver {

/// One program to analyze (same shape as SweepJob).
struct BatchJob {
  std::string name;
  std::string source;
};

struct BatchOptions {
  int threads = 1;
  /// SPM capacities (bytes) to solve the DSE for, per program.
  std::vector<uint32_t> capacities = {4096};
  /// Phase options shared by every session (with_spm is forced on).
  core::PipelineOptions pipeline;
};

/// One (program, capacity) cell of the batch grid.
struct BatchItem {
  std::string name;
  uint32_t capacity = 0;
  util::Status status;
  size_t model_refs = 0;      ///< references in the extracted model
  core::SpmReport spm;        ///< the full Phase II result
  /// Transform-replay validation of this cell's exact selection (only
  /// when the batch pipeline runs with_replay; see spm/replay.h).
  bool replay_ran = false;
  spm::ReplayReport replay;
  std::string report;         ///< describe_spm_report() text
};

struct BatchReport {
  /// Job-major, capacity-minor — the deterministic order.
  std::vector<BatchItem> items;
  /// One finished session per job, in job order (model access for
  /// downstream consumers like the cache-comparison benches).
  std::vector<std::unique_ptr<Session>> sessions;

  /// Capacities per job of the grid this report was built from (set by
  /// BatchDriver::run) — the authoritative stride item() checks callers
  /// against.
  size_t capacities_per_job = 0;

  /// Bounds-checked (job, capacity) lookup. `n_capacities` is the
  /// caller's belief about the stride; it must equal the grid the
  /// report was built with — a mismatch used to read a wrong cell
  /// silently, now it fails loudly. The sweep API's structured
  /// SweepReport::at(PointKey) replaces this.
  const BatchItem& item(size_t job, size_t capacity_index,
                        size_t n_capacities) const {
    FORAY_CHECK(n_capacities == capacities_per_job,
                "BatchReport::item stride does not match the report grid");
    FORAY_CHECK(capacity_index < n_capacities,
                "BatchReport::item capacity index out of range");
    const size_t index = job * n_capacities + capacity_index;
    FORAY_CHECK(index < items.size(),
                "BatchReport::item job index out of range");
    return items[index];
  }

  /// Summary table (one row per item): name, capacity, refs, buffers,
  /// bytes used, nJ saved (exact + greedy), % of baseline.
  std::string table() const;

  /// Machine-readable form of the whole grid (`foraygen batch --json`,
  /// bench figures, external tooling): one item object per (program,
  /// capacity) cell with the selection, energy and cache-comparison
  /// numbers, plus per-program profile statistics.
  std::string to_json() const;
};

class BatchDriver {
 public:
  explicit BatchDriver(BatchOptions opts = {});

  /// Runs every job across every capacity. Blocking; thread-safe against
  /// nothing (one driver, one call at a time).
  BatchReport run(const std::vector<BatchJob>& jobs) const;

  /// The six benchsuite kernels as batch jobs, in the paper's order.
  static std::vector<BatchJob> benchsuite_jobs();

 private:
  BatchOptions opts_;
};

}  // namespace foray::driver
